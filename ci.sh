#!/usr/bin/env bash
# Repository CI gate: formatting, lints, and the tier-1 verify
# (ROADMAP.md). Run from the repo root; fails fast on the first error.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "CI OK"
