#!/usr/bin/env bash
# Repository CI gate: formatting, lints, docs, and the tier-1 verify
# (ROADMAP.md). Run from the repo root; fails fast on the first error.
#
# Flags:
#   --update-baseline   write the full-grid and service-scaling reports to
#                       the checked-in BENCH_grid.json / BENCH_serve.json
#                       (default: temp dir, tree stays clean)
set -euo pipefail
cd "$(dirname "$0")"

UPDATE_BASELINE=0
for arg in "$@"; do
  case "$arg" in
    --update-baseline) UPDATE_BASELINE=1 ;;
    *) echo "ci.sh: unknown flag '$arg'" >&2; exit 2 ;;
  esac
done

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo doc --no-deps (deny rustdoc warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> hw-crypto lane: build + tests with the hardware kernels compiled in"
# The hw backends detect AES-NI/AVX2 at runtime and fall back to the
# portable engines when the ISA is absent, so this lane is safe on any
# host: with the extensions it exercises the AES-NI/4-lane-SHA-512
# kernels, without them it validates the fallback path (graceful skip
# happens inside the backends, not here).  The release binaries the
# gates below run are rebuilt by this lane, so the equivalence smokes
# and the grid baseline exercise the hardware-class hot path.  The
# feature must be enabled per package (--workspace), not just on the
# root facade crate — a bare `--features hw-crypto` from the root only
# rebuilds the facade and leaves the gate binaries on scalar kernels.
cargo build --release --workspace --features hw-crypto
cargo test -q --workspace --features hw-crypto

echo "==> backend-equivalence smoke (scalar == multiblock == hw on fuzzed traces)"
# The suite sweeps every backend against the scalar reference: digests,
# grid JSON, crash/recovery verdicts, telemetry-on/off parity, plus the
# arena stress test.  Run against the hw-crypto build so a detected
# AES-NI/AVX2 host pins the real hardware kernels to the reference.
cargo test -q --features hw-crypto --test backend_equivalence

echo "==> crypto_micro regression guard (batched fold >= 2x scalar)"
# Fails if the multi-block batched HMAC fold is not at least 2x faster
# than the scalar backend; self-skips (with a notice) on hosts where the
# vectorized hash kernel is unavailable.
./target/release/crypto_micro --check

echo "==> eager-vs-lazy metadata equivalence smoke (all schemes)"
# equiv_smoke exits nonzero if the lazy metadata engine's observable
# outputs (grid JSON, crash report, persisted root, stats, recovery)
# diverge from the eager engine's on a fuzzed trace.
./target/release/equiv_smoke 10000

echo "==> fault-injection storm smoke (crash storms, brown-outs, bit flips)"
# fault_storm exits nonzero on any panic, silent corruption, accounting
# mismatch, or undetected bit flip across all schemes, both metadata
# engines, and both drain policies; --quick keeps this to a few seconds.
./target/release/fault_storm --quick

echo "==> grid determinism smoke (2 workloads x 2 schemes, serial vs parallel, telemetered)"
# bench_grid exits nonzero if the parallel grid diverges from the serial
# one; --smoke keeps this to a few seconds.  With --telemetry the serial
# pass runs with live rings attached, so the determinism gate also
# proves telemetry events observe without steering.
./target/release/bench_grid 50000 --jobs 4 --smoke --json /tmp/bench_grid_smoke_tel.json --telemetry
./target/release/bench_grid 50000 --jobs 4 --smoke --json /tmp/bench_grid_smoke.json
# Telemetry-on vs telemetry-off must produce byte-identical reports once
# host-timing and ring-accounting fields are stripped: every simulated
# number (cycles, ipc, recovery verdicts, recovery_cycles) is unchanged.
normalize_grid() {
  grep -vE '"(serial_seconds|parallel_seconds|speedup|serial_instructions_per_second|parallel_instructions_per_second|serial_ns_per_store|ns_per_store|telemetry|telemetry_events|telemetry_dropped)"' "$1"
}
if ! diff <(normalize_grid /tmp/bench_grid_smoke.json) <(normalize_grid /tmp/bench_grid_smoke_tel.json); then
  echo "ci.sh: telemetry-on grid diverged from telemetry-off" >&2
  exit 1
fi
rm -f /tmp/bench_grid_smoke.json /tmp/bench_grid_smoke_tel.json

echo "==> grid parallel-determinism pin (--validate-parallel on every CI run)"
# --validate-parallel pins the parallel pass to 2 workers so even a
# 1-core CI host proves the serial/parallel byte-identity contract; the
# report must record that the check ran.
./target/release/bench_grid 50000 --smoke --validate-parallel --json /tmp/bench_grid_smoke_vp.json
grep -q '"parallel_determinism_validated": true' /tmp/bench_grid_smoke_vp.json \
  || { echo "ci.sh: grid smoke did not validate parallel determinism" >&2; exit 1; }
rm -f /tmp/bench_grid_smoke_vp.json

echo "==> sharded service smoke (secpb serve --quick)"
# The serve command itself exits nonzero on zero drained stores, any
# model-invariant anomaly, a QoS-violation counter > 0, or an
# inconsistent recovery sweep; assert the healthy lines anyway so a
# silent output regression cannot slip through.
SERVE_OUT=$(./target/release/secpb serve --quick)
echo "$SERVE_OUT" | grep -q '^anomalies       0$' || { echo "ci.sh: serve reported anomalies" >&2; exit 1; }
echo "$SERVE_OUT" | grep -q '^qos violations  0$' || { echo "ci.sh: serve reported QoS violations" >&2; exit 1; }
echo "$SERVE_OUT" | grep -q '^consistent      true$' || { echo "ci.sh: serve recovery inconsistent" >&2; exit 1; }
echo "$SERVE_OUT" | grep -Eq '^stores drained  [1-9]' || { echo "ci.sh: serve drained zero stores" >&2; exit 1; }

echo "==> checkpoint restore+replay byte-identity gate (tests/checkpoint_replay.rs)"
# Restoring a checkpoint at epoch N and replaying N..M must be
# byte-identical to the uninterrupted run for every scheme, metadata
# mode, and tree organisation — the contract shard crash-recovery and
# the soak's restart storms build on.
cargo test --release -q --test checkpoint_replay

echo "==> scheme byte-identity + persistence-policy gate (tests/scheme_equivalence.rs)"
# Pins the refactor's byte-identity contract: the 8 named schemes are
# one instantiation of the PersistencePolicy layer (round-trip +
# 32-combination legality sweep), the Triad/fast-recovery layouts
# never perturb a timing metric, and the baseline recovery accounting
# reproduces the historical root-only formula exactly.
cargo test --release -q --test scheme_equivalence
cargo test --release -q -p secpb-core --lib policy::

echo "==> recovery-latency sweep smoke (secpb recover-sweep --quick)"
# recover-sweep exits nonzero if any policy point recovers inconsistent
# or the write-amp vs recovery-latency curve loses its pinned monotone
# ordering (fastrec <= triad-full <= nogap <= cobcm); assert the
# verdict line anyway.  The same curve is embedded in BENCH_grid.json
# as recovery_curve by the full grid run below.
SWEEP_OUT=$(./target/release/secpb recover-sweep --quick)
echo "$SWEEP_OUT" | grep -q 'curve monotone' || { echo "ci.sh: recovery sweep curve not monotone" >&2; exit 1; }

echo "==> trace ingest truncation fuzz (tests/trace_io_fuzz.rs)"
# Every truncation point and seeded corruption of an SPB1 stream must
# fail with the item index and byte offset — never a panic or a
# silently short trace.
cargo test --release -q --test trace_io_fuzz

echo "==> fault-tolerance soak smoke (secpb soak --quick)"
# The soak exits nonzero unless it converged: crashes actually fired
# and were recovered, restored shards digest-identical to a crash-free
# reference, shed counts crash-invariant, restart storm byte-identical,
# zero anomalies, zero QoS violations.  Assert the verdict lines anyway.
SOAK_OUT=$(./target/release/secpb soak --quick)
echo "$SOAK_OUT" | grep -q 'match crash-free reference' || { echo "ci.sh: soak shard digests diverged" >&2; exit 1; }
echo "$SOAK_OUT" | grep -q 'byte-identical' || { echo "ci.sh: soak restart storm diverged" >&2; exit 1; }
echo "$SOAK_OUT" | grep -q '^converged         true$' || { echo "ci.sh: soak did not converge" >&2; exit 1; }

# The long-horizon storm (100+ injected mid-epoch shard crashes) is
# opt-in: SECPB_SOAK=1 ./ci.sh
if [ "${SECPB_SOAK:-0}" = "1" ]; then
  echo "==> full fault-tolerance soak (SECPB_SOAK=1, 100+ crashes)"
  ./target/release/secpb soak
fi

echo "==> service scaling + determinism smoke (serve_bench --smoke)"
# serve_bench exits nonzero if any shard outcome diverges from a solo
# re-run of its tenants (the shard-determinism contract) or, where the
# host has the cores to make wall-clock ratios meaningful, if aggregate
# stores/sec degrades as shards are added.  Validate the report fields
# the baseline depends on either way.
./target/release/serve_bench --smoke --json /tmp/bench_serve_smoke.json
grep -q '"determinism_validated": true' /tmp/bench_serve_smoke.json \
  || { echo "ci.sh: serve_bench did not validate shard determinism" >&2; exit 1; }
grep -q '"scaling_valid":' /tmp/bench_serve_smoke.json \
  || { echo "ci.sh: serve_bench report missing scaling_valid" >&2; exit 1; }
grep -q '"aggregate_stores_per_sec":' /tmp/bench_serve_smoke.json \
  || { echo "ci.sh: serve_bench report missing throughput fields" >&2; exit 1; }
if grep -q '"scaling_valid": true' /tmp/bench_serve_smoke.json; then
  grep -q '"monotone_throughput": true' /tmp/bench_serve_smoke.json \
    || { echo "ci.sh: serve_bench throughput degraded with shard count" >&2; exit 1; }
fi
rm -f /tmp/bench_serve_smoke.json

echo "==> live telemetry watch smoke (storm cell, snapshots + zero anomalies)"
# secpb watch exits nonzero if it streams no snapshots, observes any
# model-invariant anomaly, or a storm-mode recovery is inconsistent.
WATCH_OUT=$(./target/release/secpb watch gamess cobcm --quick)
echo "$WATCH_OUT" | grep -q '"seq":1' || { echo "ci.sh: watch streamed no snapshots" >&2; exit 1; }
echo "$WATCH_OUT" | grep -q '^anomalies    0$' || { echo "ci.sh: watch reported anomalies" >&2; exit 1; }

if [ "$UPDATE_BASELINE" = 1 ]; then
  echo "==> regenerate BENCH_grid.json (full grid wall-clock baseline)"
  ./target/release/bench_grid 200000 --jobs 4 --update-baseline
  echo "==> regenerate BENCH_serve.json (service scaling baseline)"
  ./target/release/serve_bench --update-baseline
else
  echo "==> full grid run (temp output; --update-baseline refreshes BENCH_grid.json)"
  ./target/release/bench_grid 200000 --jobs 4
fi

echo "CI OK"
