//! The `secpb` command-line interface.
//!
//! A hand-rolled (dependency-free) dispatcher so the whole surface is
//! unit-testable: [`dispatch`] takes argv and returns the output text or
//! a usage error.
//!
//! ```text
//! secpb run <bench> <scheme> [entries] [instructions] [--front F]   simulate + metrics
//! secpb watch <bench> <scheme> [instructions] [--front F] [...]  stream health snapshots
//! secpb grid [instructions] [--jobs N]                  scheme×workload grid (Table IV)
//! secpb crash <bench> <scheme> [instructions] [--front F]  crash + verified recovery
//! secpb storm [--quick] [--seed N] [--brown-out F]      crash-storm fault injection
//! secpb battery [entries]                               battery sizing table
//! secpb trace gen <bench> <file> [instructions]         save a trace
//! secpb trace info <file>                               trace statistics
//! secpb trace run <file> <scheme>                       replay a saved trace
//! secpb serve [--quick] [--shards N] [...]              sharded multi-tenant service
//! secpb soak [--quick] [--seed N]                       fault-tolerance soak storm
//! secpb recover-sweep [--quick] [...]                   recovery-latency vs write-amp curve
//! secpb schemes                                         scheme/front/policy table
//! secpb list                                            benchmarks + schemes
//! ```
//!
//! `--front` selects the system front (`secpb`, `eadr`, `mc<N>` for an
//! N-core machine, `triad<N>` for Triad-NVM selective tree persistence,
//! or `fastrec` for the Huang & Hua fast-recovery layout); every front
//! is driven through the
//! [`PersistSystem`](secpb_core::facade::PersistSystem) facade, so
//! `run` and `crash` are written once.

use std::fmt::Write as _;

use secpb_bench::experiments;
use secpb_bench::storm::{build_front, StormFront};
use secpb_bench::watch::{run_watch, WatchConfig};
use secpb_core::crash::{CrashKind, DrainPolicy};
use secpb_core::scheme::Scheme;
use secpb_core::system::SecureSystem;
use secpb_energy::battery::BatteryTech;
use secpb_energy::drain::{secpb_drain_energy, SchemeKind};
use secpb_sim::config::SystemConfig;
use secpb_sim::telemetry::ChromeTraceStream;
use secpb_sim::trace::TraceSummary;
use secpb_workloads::trace_io;
use secpb_workloads::{TraceGenerator, WorkloadProfile};

/// Top-level usage text.
pub const USAGE: &str = "usage:
  secpb run <bench> <scheme> [entries] [instructions] [--front secpb|eadr|mc<N>]
  secpb watch <bench> <scheme> [instructions] [--front secpb|eadr|mc<N>] [--interval N]
              [--out FILE] [--trace-out FILE] [--crash-every N] [--quick]
  secpb grid [instructions] [--jobs N]
  secpb crash <bench> <scheme> [instructions] [--front secpb|eadr|mc<N>]
  secpb storm [--quick] [--seed N] [--brown-out F]
  secpb battery [entries]
  secpb trace gen <bench> <file> [instructions]
  secpb trace info <file>
  secpb trace run <file> <scheme>
  secpb serve [--quick] [--shards N] [--workers N] [--tenants N] [--instructions N]
              [--epoch N] [--seed N] [--trace NAME=PATH]...
  secpb soak [--quick] [--seed N]
  secpb recover-sweep [--quick] [--instructions N] [--seed N] [--json FILE]
  secpb schemes
  secpb list

fronts: secpb, eadr, mc<N>, triad<N>, fastrec";

/// Executes one CLI invocation (argv without the program name).
///
/// # Errors
///
/// Returns a usage/diagnostic message on bad arguments or I/O failure.
pub fn dispatch(args: &[String]) -> Result<String, String> {
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("watch") => cmd_watch(&args[1..]),
        Some("grid") => cmd_grid(&args[1..]),
        Some("crash") => cmd_crash(&args[1..]),
        Some("storm") => cmd_storm(&args[1..]),
        Some("battery") => cmd_battery(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("soak") => cmd_soak(&args[1..]),
        Some("recover-sweep") => cmd_recover_sweep(&args[1..]),
        Some("schemes") => Ok(cmd_schemes()),
        Some("list") => Ok(cmd_list()),
        _ => Err(USAGE.to_owned()),
    }
}

fn parse_profile(name: &str) -> Result<WorkloadProfile, String> {
    WorkloadProfile::named(name).ok_or_else(|| {
        format!(
            "unknown benchmark `{name}`; try: {}",
            WorkloadProfile::SPEC_NAMES.join(", ")
        )
    })
}

fn parse_scheme(name: &str) -> Result<Scheme, String> {
    name.parse::<Scheme>().map_err(|e| e.to_string())
}

/// Extracts `--front <name>` from the argument list (defaulting to the
/// single-core SecPB front), returning the front and remaining args.
fn take_front(args: &[String]) -> Result<(StormFront, Vec<String>), String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut front = StormFront::SecPb;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--front" {
            i += 1;
            front = args
                .get(i)
                .ok_or("--front takes secpb, eadr, mc<N>, triad<N>, or fastrec")?
                .parse()?;
        } else {
            rest.push(args[i].clone());
        }
        i += 1;
    }
    Ok((front, rest))
}

fn cmd_run(args: &[String]) -> Result<String, String> {
    let (front, args) = take_front(args)?;
    let bench = args.first().ok_or(USAGE)?;
    let scheme = parse_scheme(args.get(1).ok_or(USAGE)?)?;
    let entries: usize = args
        .get(2)
        .map(|s| s.parse().map_err(|_| USAGE))
        .transpose()?
        .unwrap_or(32);
    let instructions: u64 = args
        .get(3)
        .map(|s| s.parse().map_err(|_| USAGE))
        .transpose()?
        .unwrap_or(200_000);
    let profile = parse_profile(bench)?;
    let cfg = SystemConfig::default().with_secpb_entries(entries);
    let trace = TraceGenerator::new(profile, 42).generate(instructions);
    let mut sys = build_front(front, cfg, scheme, 42)?;
    let r = sys.run_trace(&trace);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "bench={bench} front={} scheme={} entries={entries}",
        front.name(),
        sys.scheme()
    );
    let _ = writeln!(out, "cycles       {}", r.cycles);
    let _ = writeln!(out, "ipc          {:.3}", r.ipc());
    let _ = writeln!(out, "ppti         {:.1}", r.ppti());
    let _ = writeln!(out, "nwpe         {:.2}", r.nwpe());
    let _ = writeln!(
        out,
        "bmt/store    {:.1}%",
        r.bmt_updates_per_store() * 100.0
    );
    let anomalies = sys.anomalies();
    let _ = writeln!(out, "anomalies    {anomalies}");
    if anomalies > 0 {
        let _ = writeln!(
            out,
            "WARNING: {anomalies} model-invariant anomalies recorded — the run completed but \
             violated internal invariants; stream details with `secpb watch`"
        );
    }
    Ok(out)
}

/// Parses a `--flag <number>` pair out of `args`, removing both tokens.
fn take_numeric_flag<T: std::str::FromStr>(
    args: &mut Vec<String>,
    flag: &str,
) -> Result<Option<T>, String> {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            if i + 1 >= args.len() {
                return Err(format!("{flag} takes a number"));
            }
            let value = args[i + 1]
                .parse::<T>()
                .map_err(|_| format!("{flag} takes a number"))?;
            args.drain(i..=i + 1);
            Ok(Some(value))
        }
        None => Ok(None),
    }
}

/// Parses a `--flag <path>` pair out of `args`, removing both tokens.
fn take_path_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            if i + 1 >= args.len() {
                return Err(format!("{flag} takes a file path"));
            }
            let value = args[i + 1].clone();
            args.drain(i..=i + 1);
            Ok(Some(value))
        }
        None => Ok(None),
    }
}

fn cmd_watch(args: &[String]) -> Result<String, String> {
    let (front, mut args) = take_front(args)?;
    let quick = args.iter().any(|a| a == "--quick");
    args.retain(|a| a != "--quick");
    let interval = take_numeric_flag::<u64>(&mut args, "--interval")?;
    let crash_every = take_numeric_flag::<u64>(&mut args, "--crash-every")?;
    let out_path = take_path_flag(&mut args, "--out")?;
    let trace_path = take_path_flag(&mut args, "--trace-out")?;
    let bench = args.first().ok_or(USAGE)?;
    let scheme = parse_scheme(args.get(1).ok_or(USAGE)?)?;
    let instructions: Option<u64> = args
        .get(2)
        .map(|s| s.parse().map_err(|_| USAGE))
        .transpose()?;

    let mut cfg = WatchConfig::new(front, scheme, parse_profile(bench)?);
    if quick {
        cfg = cfg.quick();
    }
    if let Some(n) = instructions {
        cfg.instructions = n;
    }
    if let Some(n) = interval {
        cfg.interval = n;
    }
    if let Some(n) = crash_every {
        cfg.crash_every = Some(n);
    }

    let mut jsonl: Vec<u8> = Vec::new();
    let mut trace_stream = match &trace_path {
        Some(path) => {
            let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
            Some(
                ChromeTraceStream::new(std::io::BufWriter::new(file), "secpb watch", 0)
                    .map_err(|e| format!("{path}: {e}"))?,
            )
        }
        None => None,
    };
    let outcome = run_watch(&cfg, Some(&mut jsonl), trace_stream.as_mut())?;
    if let Some(stream) = trace_stream.as_mut() {
        stream.finish(outcome.dropped).map_err(|e| e.to_string())?;
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "watch bench={bench} front={} scheme={scheme} instructions={} interval={}",
        front.name(),
        cfg.instructions,
        cfg.interval
    );
    match &out_path {
        Some(path) => {
            std::fs::write(path, &jsonl).map_err(|e| format!("{path}: {e}"))?;
            let _ = writeln!(out, "snapshots    {} -> {path}", outcome.snapshots.len());
        }
        None => {
            out.push_str(&String::from_utf8_lossy(&jsonl));
            let _ = writeln!(out, "snapshots    {}", outcome.snapshots.len());
        }
    }
    if let Some(path) = &trace_path {
        let _ = writeln!(out, "chrome trace {path}");
    }
    let _ = writeln!(out, "events       {}", outcome.events);
    let _ = writeln!(out, "dropped      {}", outcome.dropped);
    let _ = writeln!(out, "crashes      {}", outcome.crashes);
    let _ = writeln!(out, "cycles       {}", outcome.cycles);
    let _ = writeln!(out, "anomalies    {}", outcome.anomalies);
    let _ = writeln!(out, "consistent   {}", outcome.consistent);
    if outcome.snapshots.is_empty() {
        return Err(format!("watch streamed no snapshots:\n{out}"));
    }
    if outcome.anomalies > 0 {
        return Err(format!("watch observed model-invariant anomalies:\n{out}"));
    }
    if !outcome.consistent {
        return Err(format!("watch recovery sweep was inconsistent:\n{out}"));
    }
    Ok(out)
}

fn cmd_grid(args: &[String]) -> Result<String, String> {
    let parsed =
        secpb_bench::args::RunnerArgs::parse(args, 100_000).map_err(|e| format!("{e}\n{USAGE}"))?;
    let study = experiments::table4(parsed.instructions, parsed.jobs);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "scheme×workload grid @ {} instructions, {} jobs (slowdown vs bbb, geomean)",
        parsed.instructions, parsed.jobs
    );
    for (scheme, v) in &study.averages {
        let _ = writeln!(out, " {:<6} {v:.3}", scheme.name());
    }
    Ok(out)
}

fn cmd_crash(args: &[String]) -> Result<String, String> {
    let (front, args) = take_front(args)?;
    let bench = args.first().ok_or(USAGE)?;
    let scheme = parse_scheme(args.get(1).ok_or(USAGE)?)?;
    let instructions: u64 = args
        .get(2)
        .map(|s| s.parse().map_err(|_| USAGE))
        .transpose()?
        .unwrap_or(100_000);
    let profile = parse_profile(bench)?;
    let trace = TraceGenerator::new(profile, 42).generate(instructions);
    let mut sys = build_front(front, SystemConfig::default(), scheme, 42)?;
    sys.run_trace(&trace);
    let report = sys
        .crash(CrashKind::PowerLoss, DrainPolicy::DrainAll)
        .map_err(|e| format!("crash drain failed: {e}"))?;
    let recovery = sys.recover();
    let mut out = String::new();
    let _ = writeln!(out, "crash at cycle {}", report.at.raw());
    let _ = writeln!(out, "entries drained      {}", report.work.entries);
    let _ = writeln!(
        out,
        "sec-sync complete    cycle {}",
        report.secsync_complete_at.raw()
    );
    let _ = writeln!(out, "macs on battery      {}", report.work.macs);
    let _ = writeln!(out, "bmt hashes on battery {}", report.work.bmt_node_hashes);
    let _ = writeln!(out, "blocks recovered     {}", recovery.blocks_checked);
    let _ = writeln!(
        out,
        "estimated recovery   {} cycles",
        sys.estimated_recovery_cycles()
    );
    let _ = writeln!(out, "consistent           {}", recovery.is_consistent());
    if !recovery.is_consistent() {
        return Err(format!("recovery failed:\n{out}"));
    }
    Ok(out)
}

fn cmd_storm(args: &[String]) -> Result<String, String> {
    let mut quick = false;
    let mut seed: u64 = 0x5EC9_B0A2;
    let mut brown_out: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--seed takes a number")?;
            }
            "--brown-out" => {
                i += 1;
                let f: f64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--brown-out takes a fraction in (0, 1]")?;
                if !(0.0..=1.0).contains(&f) || f == 0.0 {
                    return Err("--brown-out takes a fraction in (0, 1]".to_owned());
                }
                brown_out = Some(f);
            }
            other => return Err(format!("unknown storm flag `{other}`\n{USAGE}")),
        }
        i += 1;
    }
    let mut cfg = if quick {
        secpb_bench::storm::StormConfig::quick(seed)
    } else {
        secpb_bench::storm::StormConfig::full(seed)
    };
    if let Some(f) = brown_out {
        cfg = cfg.with_brown_out(f);
    }
    let report = secpb_bench::storm::run_storm(&cfg);
    let text = report.render_text();
    if report.passed() {
        Ok(text)
    } else {
        Err(format!("fault storm failed:\n{text}"))
    }
}

fn cmd_battery(args: &[String]) -> Result<String, String> {
    let entries: usize = args
        .first()
        .map(|s| s.parse().map_err(|_| USAGE))
        .transpose()?
        .unwrap_or(32);
    let mut out = String::new();
    let _ = writeln!(out, "battery sizing for a {entries}-entry SecPB:");
    for kind in SchemeKind::ALL {
        let joules = secpb_drain_energy(kind, entries);
        let _ = writeln!(
            out,
            " {:<6} {:>10.2} uJ  SuperCap {:>8.3} mm3 ({:>5.1}% core)  Li-Thin {:>7.4} mm3",
            kind.name(),
            joules * 1e6,
            BatteryTech::SuperCap.volume_mm3(joules),
            BatteryTech::SuperCap.core_area_ratio_pct(joules),
            BatteryTech::LiThin.volume_mm3(joules),
        );
    }
    Ok(out)
}

fn cmd_trace(args: &[String]) -> Result<String, String> {
    match args.first().map(String::as_str) {
        Some("gen") => {
            let bench = args.get(1).ok_or(USAGE)?;
            let path = args.get(2).ok_or(USAGE)?;
            let instructions: u64 = args
                .get(3)
                .map(|s| s.parse().map_err(|_| USAGE))
                .transpose()?
                .unwrap_or(100_000);
            let profile = parse_profile(bench)?;
            let trace = TraceGenerator::new(profile, 42).generate(instructions);
            let file = std::fs::File::create(path).map_err(|e| e.to_string())?;
            trace_io::write_trace(std::io::BufWriter::new(file), &trace)
                .map_err(|e| e.to_string())?;
            Ok(format!("wrote {} items to {path}\n", trace.len()))
        }
        Some("info") => {
            let path = args.get(1).ok_or(USAGE)?;
            let file = std::fs::File::open(path).map_err(|e| e.to_string())?;
            let trace =
                trace_io::read_trace(std::io::BufReader::new(file)).map_err(|e| e.to_string())?;
            let s = TraceSummary::of(&trace);
            let mut out = String::new();
            let _ = writeln!(out, "items        {}", trace.len());
            let _ = writeln!(out, "instructions {}", s.instructions);
            let _ = writeln!(out, "loads        {}", s.loads);
            let _ = writeln!(out, "stores       {}", s.stores);
            let _ = writeln!(out, "store blocks {}", s.store_blocks);
            let _ = writeln!(out, "ppti         {:.1}", s.stores_per_kilo_instr());
            let _ = writeln!(out, "stores/block {:.2}", s.stores_per_block());
            Ok(out)
        }
        Some("run") => {
            let path = args.get(1).ok_or(USAGE)?;
            let scheme = parse_scheme(args.get(2).ok_or(USAGE)?)?;
            let file = std::fs::File::open(path).map_err(|e| e.to_string())?;
            let trace =
                trace_io::read_trace(std::io::BufReader::new(file)).map_err(|e| e.to_string())?;
            let mut sys = SecureSystem::new(SystemConfig::default(), scheme, 42);
            let r = sys.run_trace(trace);
            Ok(format!(
                "scheme={scheme} cycles={} ipc={:.3} ppti={:.1}\n",
                r.cycles,
                r.ipc(),
                r.ppti()
            ))
        }
        _ => Err(USAGE.to_owned()),
    }
}

fn cmd_serve(args: &[String]) -> Result<String, String> {
    use secpb_bench::serve::{run_serve, PrivilegeToken, QosClass, ServeConfig, TenantSpec};

    let mut args = args.to_vec();
    let quick = args.iter().any(|a| a == "--quick");
    args.retain(|a| a != "--quick");
    let shards = take_numeric_flag::<usize>(&mut args, "--shards")?;
    let workers = take_numeric_flag::<usize>(&mut args, "--workers")?;
    let tenant_count = take_numeric_flag::<usize>(&mut args, "--tenants")?;
    let instructions = take_numeric_flag::<u64>(&mut args, "--instructions")?;
    let epoch = take_numeric_flag::<usize>(&mut args, "--epoch")?;
    let seed = take_numeric_flag::<u64>(&mut args, "--seed")?;
    let mut file_tenants: Vec<(String, String)> = Vec::new();
    while let Some(spec) = take_path_flag(&mut args, "--trace")? {
        let (name, path) = spec
            .split_once('=')
            .ok_or("--trace takes NAME=PATH (a tenant name and an SPB1 trace file)")?;
        file_tenants.push((name.to_owned(), path.to_owned()));
    }
    if let Some(stray) = args.first() {
        return Err(format!("unknown serve argument `{stray}`\n{USAGE}"));
    }

    let mut cfg = if quick {
        ServeConfig::quick()
    } else {
        // Default shape: 2 shards, 4 synthetic tenants over the SPEC
        // suite with cycling QoS classes, telemetry on.
        let mut cfg = ServeConfig::new(2);
        cfg.telemetry = true;
        let suite = WorkloadProfile::spec_suite();
        let classes = [QosClass::Gold, QosClass::Silver, QosClass::Bronze];
        let token = PrivilegeToken::acquire();
        for i in 0..tenant_count.unwrap_or(4) {
            let profile = suite[i % suite.len()].clone();
            let name = format!("t{i}-{}", profile.name);
            cfg.tenants
                .push(TenantSpec::synthetic(&name, profile, 20_000));
            cfg.set_qos(&name, classes[i % classes.len()], &token)
                .expect("tenant just added");
        }
        cfg
    };
    if let Some(n) = shards {
        cfg.shards = n;
        cfg.workers = n.max(1);
    }
    if let Some(n) = workers {
        cfg.workers = n;
    }
    if let Some(n) = epoch {
        cfg.epoch_len = n;
    }
    if let Some(n) = seed {
        cfg.seed = n;
    }
    if let Some(n) = instructions {
        for t in &mut cfg.tenants {
            t.instructions = n;
        }
    }
    for (name, path) in &file_tenants {
        cfg.tenants.push(TenantSpec::from_file(name, path));
    }

    let out = run_serve(&cfg).map_err(|e| e.to_string())?;
    let mut text = String::new();
    let _ = writeln!(
        text,
        "serve shards={} workers={} tenants={} epoch={} scheme={} seed={:#x}",
        cfg.shards,
        cfg.workers,
        cfg.tenants.len(),
        cfg.epoch_len,
        cfg.scheme.name(),
        cfg.seed
    );
    for s in out.shards.iter().filter(|s| !s.tenants.is_empty()) {
        let _ = writeln!(
            text,
            "shard {}  tenants=[{}] epochs={} items={} stores={} persists={} \
             sync_hashes={} snapshots={} digest={}",
            s.shard,
            s.tenants.join(","),
            s.epochs,
            s.items,
            s.stores,
            s.persists,
            s.sync_hashes,
            s.snapshots.len(),
            &s.digest()[..16],
        );
    }
    for t in &out.tenants {
        let _ = writeln!(
            text,
            "tenant {}  shard={} asid={} qos={} quota={} items={} stores={} epochs={}",
            t.name,
            t.shard,
            t.asid,
            t.qos.name(),
            t.quota,
            t.items,
            t.stores,
            t.epochs_used
        );
    }
    let _ = writeln!(
        text,
        "pool   executed={} stolen={} max_steal_run={} max_queue_depth={} backpressure_waits={} \
         stall_timeouts={} crash_recoveries={}",
        out.pool.executed,
        out.pool.stolen,
        out.pool.max_steal_run,
        out.pool.max_queue_depth,
        out.pool.backpressure_waits,
        out.pool.stall_timeouts,
        out.pool.crash_recoveries
    );
    let _ = writeln!(
        text,
        "resilience      shed={} replayed={} restored={}",
        out.total_shed(),
        out.total_replayed(),
        out.total_restored()
    );
    let _ = writeln!(text, "stores drained  {}", out.total_stores());
    let _ = writeln!(text, "anomalies       {}", out.total_anomalies());
    let _ = writeln!(text, "qos violations  {}", out.total_qos_violations());
    let _ = writeln!(text, "consistent      {}", out.consistent());

    if out.total_stores() == 0 {
        return Err(format!("serve drained zero stores:\n{text}"));
    }
    if out.total_anomalies() > 0 {
        return Err(format!("serve observed model-invariant anomalies:\n{text}"));
    }
    if out.total_qos_violations() > 0 {
        let mut msg = format!(
            "serve observed {} QoS violation(s):\n",
            out.total_qos_violations()
        );
        for v in out.qos_events() {
            let _ = writeln!(msg, "  {v}");
        }
        msg.push_str(&text);
        return Err(msg);
    }
    if !out.consistent() {
        return Err(format!("serve recovery sweep was inconsistent:\n{text}"));
    }
    Ok(text)
}

fn cmd_soak(args: &[String]) -> Result<String, String> {
    use secpb_bench::soak::{run_soak, SoakConfig};

    let mut args = args.to_vec();
    let quick = args.iter().any(|a| a == "--quick");
    args.retain(|a| a != "--quick");
    let seed = take_numeric_flag::<u64>(&mut args, "--seed")?.unwrap_or(0x50AC);
    if let Some(stray) = args.first() {
        return Err(format!("unknown soak argument `{stray}`\n{USAGE}"));
    }

    let cfg = if quick {
        SoakConfig::quick(seed)
    } else {
        SoakConfig::full(seed)
    };
    let out = run_soak(&cfg).map_err(|e| e.to_string())?;
    let text = format!(
        "soak {} seed={seed:#x}\n{}",
        if quick { "--quick" } else { "full" },
        out.render_text()
    );
    if !out.converged() {
        return Err(format!("soak did not converge:\n{text}"));
    }
    Ok(text)
}

fn cmd_recover_sweep(args: &[String]) -> Result<String, String> {
    use secpb_bench::recovery_sweep::{run_sweep, SweepConfig};

    let mut args = args.to_vec();
    let quick = args.iter().any(|a| a == "--quick");
    args.retain(|a| a != "--quick");
    let instructions = take_numeric_flag::<u64>(&mut args, "--instructions")?;
    let seed = take_numeric_flag::<u64>(&mut args, "--seed")?.unwrap_or(0x5EC9_B0A2);
    let json_path = take_path_flag(&mut args, "--json")?;
    if let Some(stray) = args.first() {
        return Err(format!("unknown recover-sweep argument `{stray}`\n{USAGE}"));
    }

    let mut cfg = if quick {
        SweepConfig::quick(seed)
    } else {
        SweepConfig::new(seed)
    };
    if let Some(n) = instructions {
        cfg.instructions = n;
    }
    let report = run_sweep(&cfg);
    if let Some(path) = json_path {
        std::fs::write(&path, report.to_json().to_pretty()).map_err(|e| e.to_string())?;
    }
    let text = report.render_text();
    if report.passed() {
        Ok(text)
    } else {
        Err(format!("recovery sweep failed:\n{text}"))
    }
}

fn cmd_schemes() -> String {
    use secpb_core::policy::PersistencePolicy;

    let step_list = |ew: secpb_core::scheme::EarlyWork, early: bool| -> String {
        let steps = [
            (ew.counter, "counter"),
            (ew.otp, "otp"),
            (ew.bmt, "bmt"),
            (ew.ciphertext, "ct"),
            (ew.mac, "mac"),
        ];
        let picked: Vec<&str> = steps
            .iter()
            .filter(|(on, _)| *on == early)
            .map(|(_, n)| *n)
            .collect();
        if picked.is_empty() {
            "-".to_string()
        } else {
            picked.join(",")
        }
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8} {:>6} {:<24} {:<24} policy",
        "scheme", "secure", "early (at persist)", "late (at drain/sync)"
    );
    for scheme in Scheme::ALL {
        let ew = scheme.early_work();
        let policy = PersistencePolicy::for_scheme(scheme);
        let _ = writeln!(
            out,
            "{:<8} {:>6} {:<24} {:<24} {}",
            scheme.name(),
            if scheme.is_secure() { "yes" } else { "no" },
            step_list(ew, true),
            step_list(ew, false),
            if policy.is_baseline() {
                "root-only/plain"
            } else {
                "custom"
            }
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "fronts (select with --front):");
    let _ = writeln!(
        out,
        "  secpb     single-core SecPB pipeline (baseline root-only tree)"
    );
    let _ = writeln!(out, "  eadr      secure-eADR whole-hierarchy drain");
    let _ = writeln!(out, "  mc<N>     N-core directory-coherence SecPB");
    let _ = writeln!(
        out,
        "  triad<N>  Triad-NVM selective persistence: tree levels 0..N durable,\n            \
         recovery folds the rest from the level N-1 frontier"
    );
    let _ = writeln!(
        out,
        "  fastrec   Huang & Hua fast-recovery layout: durable shadow of the BMT\n            \
         root, near-constant recovery validation"
    );
    out
}

fn cmd_list() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "benchmarks: {}",
        WorkloadProfile::SPEC_NAMES.join(", ")
    );
    let schemes: Vec<&str> = Scheme::ALL.iter().map(|s| s.name()).collect();
    let _ = writeln!(out, "schemes   : {}", schemes.join(", "));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> Result<String, String> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        dispatch(&v)
    }

    #[test]
    fn no_args_prints_usage() {
        assert_eq!(run(&[]).unwrap_err(), USAGE);
        assert_eq!(run(&["bogus"]).unwrap_err(), USAGE);
    }

    #[test]
    fn list_enumerates() {
        let out = run(&["list"]).unwrap();
        assert!(out.contains("gamess"));
        assert!(out.contains("cobcm"));
    }

    #[test]
    fn run_produces_metrics() {
        let out = run(&["run", "hmmer", "cobcm", "32", "20000"]).unwrap();
        assert!(out.contains("ipc"));
        assert!(out.contains("ppti"));
    }

    #[test]
    fn run_drives_every_front_through_the_facade() {
        for front in ["secpb", "eadr", "mc2", "triad4", "fastrec"] {
            let out = run(&["run", "hmmer", "cobcm", "32", "20000", "--front", front]).unwrap();
            assert!(out.contains(&format!("front={front}")), "{out}");
            assert!(out.contains("cycles"), "{out}");
        }
    }

    #[test]
    fn crash_recovers_on_every_front() {
        for front in ["secpb", "eadr", "mc2", "triad4", "fastrec"] {
            let out = run(&["crash", "sjeng", "bcm", "20000", "--front", front]).unwrap();
            assert!(out.contains("consistent           true"), "{front}: {out}");
        }
    }

    #[test]
    fn triad_front_rejects_depths_beyond_the_tree() {
        let err = run(&[
            "run", "hmmer", "cobcm", "32", "20000", "--front", "triad200",
        ])
        .unwrap_err();
        assert!(err.contains("invalid configuration"), "{err}");
        assert!(err.contains("depth"), "{err}");
    }

    #[test]
    fn invalid_front_configs_get_friendly_messages() {
        let err = run(&["crash", "sjeng", "sp", "20000", "--front", "mc2"]).unwrap_err();
        assert!(
            err.contains("invalid configuration") && err.contains("persist-buffer scheme"),
            "{err}"
        );
        let err = run(&["run", "hmmer", "cobcm", "--front", "mc0"]).unwrap_err();
        assert!(err.contains("invalid configuration"), "{err}");
        let err = run(&["run", "hmmer", "cobcm", "--front", "warp"]).unwrap_err();
        assert!(err.contains("unknown front"), "{err}");
        let err = run(&["run", "hmmer", "cobcm", "--front"]).unwrap_err();
        assert!(err.contains("--front takes"), "{err}");
    }

    #[test]
    fn run_rejects_unknowns() {
        assert!(run(&["run", "nonesuch", "cobcm"])
            .unwrap_err()
            .contains("unknown benchmark"));
        assert!(run(&["run", "hmmer", "nonesuch"])
            .unwrap_err()
            .contains("unknown scheme"));
    }

    #[test]
    fn run_reports_anomaly_counter() {
        let out = run(&["run", "hmmer", "cobcm", "32", "20000"]).unwrap();
        assert!(out.contains("anomalies    0"), "{out}");
        assert!(!out.contains("WARNING"), "{out}");
    }

    #[test]
    fn watch_quick_streams_health_snapshots() {
        let out = run(&["watch", "gamess", "cobcm", "--quick"]).unwrap();
        assert!(out.contains("\"seq\":1"), "{out}");
        assert!(out.contains("\"drain_latency\""), "{out}");
        assert!(out.contains("anomalies    0"), "{out}");
        assert!(out.contains("consistent   true"), "{out}");
        assert!(out.contains("crashes"), "{out}");
    }

    #[test]
    fn watch_writes_jsonl_and_chrome_trace_files() {
        let dir = std::env::temp_dir().join("secpb_cli_watch_test");
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("health.jsonl").to_string_lossy().into_owned();
        let trace = dir.join("trace.json").to_string_lossy().into_owned();
        let out = run(&[
            "watch",
            "gamess",
            "cobcm",
            "--quick",
            "--out",
            &snap,
            "--trace-out",
            &trace,
        ])
        .unwrap();
        assert!(out.contains(&snap), "{out}");
        let jsonl = std::fs::read_to_string(&snap).unwrap();
        for line in jsonl.lines() {
            let parsed = secpb_sim::json::Json::parse(line).expect("each line parses");
            assert!(parsed.get("occupancy").is_some(), "{line}");
        }
        let doc = std::fs::read_to_string(&trace).unwrap();
        assert!(
            secpb_sim::json::Json::parse(&doc).is_ok(),
            "chrome trace must be valid JSON"
        );
        std::fs::remove_file(&snap).ok();
        std::fs::remove_file(&trace).ok();
    }

    #[test]
    fn watch_rejects_bad_flags() {
        assert!(run(&["watch"]).is_err());
        assert!(run(&["watch", "gamess"]).is_err());
        assert!(run(&["watch", "gamess", "cobcm", "--interval"])
            .unwrap_err()
            .contains("--interval takes a number"));
        assert!(run(&["watch", "gamess", "cobcm", "--out"])
            .unwrap_err()
            .contains("--out takes a file path"));
    }

    #[test]
    fn grid_reports_all_schemes_and_ignores_job_count() {
        let serial = run(&["grid", "20000", "--jobs", "1"]).unwrap();
        let parallel = run(&["grid", "20000", "--jobs", "4"]).unwrap();
        for name in ["cobcm", "nogap", "cm"] {
            assert!(serial.contains(name), "{serial}");
        }
        // Byte-identical numbers regardless of worker count (only the
        // header line reports the job count itself).
        let rows = |s: &str| s.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert_eq!(rows(&serial), rows(&parallel));
    }

    #[test]
    fn grid_rejects_bad_arguments() {
        assert!(run(&["grid", "--jobs"]).is_err());
        assert!(run(&["grid", "notanumber"]).is_err());
    }

    #[test]
    fn crash_reports_consistency() {
        let out = run(&["crash", "sjeng", "bcm", "20000"]).unwrap();
        assert!(out.contains("consistent           true"));
        assert!(out.contains("blocks recovered"));
    }

    #[test]
    fn storm_quick_passes_and_rejects_bad_flags() {
        let out = run(&["storm", "--quick", "--seed", "3"]).unwrap();
        assert!(out.contains("PASS"), "{out}");
        assert!(out.contains("cobcm/lazy"), "{out}");
        assert!(run(&["storm", "--seed"]).is_err());
        assert!(run(&["storm", "--brown-out", "2.0"]).is_err());
        assert!(run(&["storm", "--bogus"]).is_err());
    }

    #[test]
    fn storm_quick_brown_out_reports_losses() {
        let out = run(&["storm", "--quick", "--brown-out", "0.25"]).unwrap();
        let lost: u64 = out
            .lines()
            .find(|l| l.starts_with("storm:"))
            .and_then(|l| {
                l.split(',')
                    .find(|p| p.contains("entries lost"))
                    .and_then(|p| p.split_whitespace().next())
                    .and_then(|n| n.parse().ok())
            })
            .unwrap_or(0);
        assert!(lost > 0, "brown-out storm should lose entries:\n{out}");
    }

    #[test]
    fn recover_sweep_quick_reports_monotone_curve() {
        let out = run(&["recover-sweep", "--quick"]).unwrap();
        for name in ["fastrec", "triad-full", "nogap", "cobcm"] {
            assert!(out.contains(name), "{out}");
        }
        assert!(out.contains("monotone"), "{out}");
    }

    #[test]
    fn recover_sweep_writes_json_and_rejects_strays() {
        let dir = std::env::temp_dir().join("secpb_cli_sweep_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("curve.json").to_string_lossy().into_owned();
        run(&["recover-sweep", "--quick", "--json", &path]).unwrap();
        let doc = std::fs::read_to_string(&path).unwrap();
        let parsed = secpb_sim::json::Json::parse(&doc).expect("sweep JSON parses");
        assert!(parsed.get("points").is_some(), "{doc}");
        std::fs::remove_file(&path).ok();
        assert!(run(&["recover-sweep", "--bogus"])
            .unwrap_err()
            .contains("unknown recover-sweep argument"));
        assert!(run(&["recover-sweep", "--seed"]).is_err());
    }

    #[test]
    fn schemes_table_lists_every_scheme_and_front() {
        let out = run(&["schemes"]).unwrap();
        for scheme in Scheme::ALL {
            assert!(out.contains(scheme.name()), "{out}");
        }
        for token in ["counter", "mac", "triad<N>", "fastrec", "root-only/plain"] {
            assert!(out.contains(token), "{out}");
        }
    }

    #[test]
    fn battery_lists_all_schemes() {
        let out = run(&["battery", "64"]).unwrap();
        for name in ["cobcm", "nogap", "bbb"] {
            assert!(out.contains(name), "{out}");
        }
    }

    #[test]
    fn trace_gen_info_run_round_trip() {
        let dir = std::env::temp_dir().join("secpb_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.spb").to_string_lossy().into_owned();
        let gen = run(&["trace", "gen", "milc", &path, "10000"]).unwrap();
        assert!(gen.contains("wrote"));
        let info = run(&["trace", "info", &path]).unwrap();
        assert!(info.contains("stores"));
        let replay = run(&["trace", "run", &path, "cobcm"]).unwrap();
        assert!(replay.contains("cycles="));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serve_quick_drains_and_recovers() {
        let out = run(&["serve", "--quick"]).unwrap();
        assert!(out.contains("stores drained"), "{out}");
        assert!(out.contains("anomalies       0"), "{out}");
        assert!(out.contains("qos violations  0"), "{out}");
        assert!(out.contains("consistent      true"), "{out}");
        assert!(out.contains("digest="), "{out}");
        // Telemetry is on in quick mode: shards stream snapshots.
        assert!(!out.contains("snapshots=0"), "{out}");
    }

    #[test]
    fn serve_is_deterministic_across_worker_counts() {
        let body = |workers: &str| {
            run(&["serve", "--quick", "--workers", workers])
                .unwrap()
                .lines()
                .filter(|l| l.starts_with("shard") || l.starts_with("tenant"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(body("1"), body("4"));
    }

    #[test]
    fn serve_replays_trace_file_tenants() {
        let dir = std::env::temp_dir().join("secpb_cli_serve_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tenant.spb").to_string_lossy().into_owned();
        run(&["trace", "gen", "mcf", &path, "8000"]).unwrap();
        let out = run(&["serve", "--quick", "--trace", &format!("ext={path}")]).unwrap();
        assert!(out.contains("tenant ext"), "{out}");
        assert!(out.contains("consistent      true"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serve_reports_malformed_trace_with_offset() {
        let dir = std::env::temp_dir().join("secpb_cli_serve_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.spb").to_string_lossy().into_owned();
        std::fs::write(&path, b"not a trace at all").unwrap();
        let err = run(&["serve", "--quick", "--trace", &format!("bad={path}")]).unwrap_err();
        assert!(err.contains("byte offset"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serve_rejects_bad_flags() {
        assert!(run(&["serve", "--shards"])
            .unwrap_err()
            .contains("--shards takes a number"));
        assert!(run(&["serve", "--trace", "noequals"])
            .unwrap_err()
            .contains("NAME=PATH"));
        assert!(run(&["serve", "stray"])
            .unwrap_err()
            .contains("unknown serve argument"));
    }

    #[test]
    fn trace_subcommand_usage() {
        assert_eq!(run(&["trace"]).unwrap_err(), USAGE);
        assert!(run(&["trace", "info", "/nonexistent/file"]).is_err());
    }

    #[test]
    fn soak_quick_converges() {
        let out = run(&["soak", "--quick", "--seed", "9"]).unwrap();
        assert!(out.contains("soak crashes="), "{out}");
        assert!(out.contains("match crash-free reference"), "{out}");
        assert!(out.contains("byte-identical"), "{out}");
        assert!(out.contains("converged         true"), "{out}");
    }

    #[test]
    fn soak_rejects_bad_flags() {
        assert!(run(&["soak", "stray"])
            .unwrap_err()
            .contains("unknown soak argument"));
        assert!(run(&["soak", "--seed"])
            .unwrap_err()
            .contains("--seed takes a number"));
    }
}
