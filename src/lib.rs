//! # secpb — secure battery-backed persist buffers for non-volatile memory
//!
//! A full reproduction of *SecPB: Architectures for Secure Non-Volatile
//! Memory with Battery-Backed Persist Buffers* (HPCA 2023) as a Rust
//! library: the SecPB architecture and its six metadata-persistence
//! schemes, every substrate it depends on (counter-mode encryption, MACs,
//! Bonsai Merkle Trees/Forests, a cache-hierarchy + NVM timing model), a
//! battery/energy model, synthetic SPEC-2006-style workloads, and an
//! experiment harness regenerating every table and figure of the paper's
//! evaluation.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! name.
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`sim`] | `secpb-sim` | cycles, addresses, config, stats, traces |
//! | [`crypto`] | `secpb-crypto` | AES, SHA-512, HMAC, split counters, OTP, MAC, BMT, BMF |
//! | [`mem`] | `secpb-mem` | caches, memory controller, WPQ, NVM model |
//! | [`core`] | `secpb-core` | the SecPB, schemes, crash/recovery, coherence |
//! | [`energy`] | `secpb-energy` | drain energy and battery sizing |
//! | [`workloads`] | `secpb-workloads` | trace generation, SPEC profiles |
//!
//! # Quickstart
//!
//! ```
//! use secpb::core::scheme::Scheme;
//! use secpb::core::system::SecureSystem;
//! use secpb::core::crash::{CrashKind, DrainPolicy};
//! use secpb::sim::config::SystemConfig;
//! use secpb::workloads::{TraceGenerator, WorkloadProfile};
//!
//! // Run a synthetic gamess-like workload on the COBCM scheme.
//! let profile = WorkloadProfile::named("gamess").unwrap();
//! let trace = TraceGenerator::new(profile, 42).generate(50_000);
//! let mut system = SecureSystem::new(SystemConfig::default(), Scheme::Cobcm, 42);
//! let result = system.run_trace(trace);
//! assert!(result.ipc() > 0.0);
//!
//! // Crash, then verify the persisted state recovers byte-for-byte.
//! system.crash(CrashKind::PowerLoss, DrainPolicy::DrainAll).expect("crash drain");
//! assert!(system.recover().is_consistent());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;

pub use secpb_bench as bench;
pub use secpb_core as core;
pub use secpb_crypto as crypto;
pub use secpb_energy as energy;
pub use secpb_mem as mem;
pub use secpb_sim as sim;
pub use secpb_workloads as workloads;
