//! The `secpb` command-line tool: simulate, crash, recover, size
//! batteries, and manage traces.  Run with no arguments for usage.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match secpb::cli::dispatch(&args) {
        Ok(output) => print!("{output}"),
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    }
}
