//! The background drain engine.
//!
//! Entries leave the SecPB for the memory controller when the high
//! watermark is reached (down to the low watermark), when the buffer is
//! full and a new store needs a slot, or wholesale on a crash.  The engine
//! models the MC-side *sec-sync* pipeline: drains are issued back-to-back
//! at an initiation interval set by the busiest shared unit (the BMT hash
//! unit or the MAC unit at 40 cycles each when the scheme leaves that work
//! to drain time), and each drain's slot is only freed when its full
//! memory-tuple update completes — which is what produces the COBCM
//! "backflow" stalls the paper reports for write-intensive workloads.

use secpb_sim::cycle::Cycle;
use secpb_sim::event::EventWheel;
use secpb_sim::wire::{WireError, WireReader, WireWriter};

/// Drain engine statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DrainStats {
    /// Drains issued.
    pub issued: u64,
    /// Total cycles from issue request to pipeline acceptance
    /// (initiation-interval queueing).
    pub issue_delay_cycles: u64,
    /// Total end-to-end drain latency (issue request to slot free),
    /// summed over issued drains.
    pub latency_cycles: u64,
    /// Longest single drain observed.
    pub max_latency_cycles: u64,
}

impl DrainStats {
    /// Mean end-to-end latency of a drain, or 0.0 before any issue.
    pub fn mean_latency(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.latency_cycles as f64 / self.issued as f64
        }
    }
}

/// Models the MC-side drain pipeline: bounded in-flight drains with a
/// per-issue initiation interval.
///
/// # Example
///
/// ```
/// use secpb_core::drain::DrainEngine;
/// use secpb_sim::cycle::Cycle;
///
/// let mut eng = DrainEngine::new();
/// let done = eng.issue(Cycle(0), 40, 360);
/// assert_eq!(done, Cycle(360));
/// // The next drain cannot issue before the 40-cycle initiation interval.
/// let done2 = eng.issue(Cycle(0), 40, 360);
/// assert_eq!(done2, Cycle(400));
/// ```
#[derive(Debug, Clone)]
pub struct DrainEngine {
    /// Completion times of in-flight drains (slot frees at completion).
    inflight: EventWheel<()>,
    /// Earliest cycle the next drain may issue.
    next_issue: Cycle,
    stats: DrainStats,
}

impl Default for DrainEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl DrainEngine {
    /// Creates an idle engine.
    pub fn new() -> Self {
        DrainEngine {
            inflight: EventWheel::new(),
            next_issue: Cycle::ZERO,
            stats: DrainStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> DrainStats {
        self.stats
    }

    /// Issues one drain at `now` with the given initiation interval and
    /// total latency; returns the completion cycle (when the SecPB slot is
    /// free again).
    pub fn issue(&mut self, now: Cycle, initiation_interval: u64, latency: u64) -> Cycle {
        let start = now.max(self.next_issue);
        self.stats.issue_delay_cycles += start.since(now);
        self.next_issue = start + initiation_interval;
        let completion = start + latency;
        self.inflight.schedule(completion, ());
        self.stats.issued += 1;
        let end_to_end = completion.since(now);
        self.stats.latency_cycles += end_to_end;
        self.stats.max_latency_cycles = self.stats.max_latency_cycles.max(end_to_end);
        completion
    }

    /// Retires completed drains; returns how many slots freed by `now`.
    pub fn retire(&mut self, now: Cycle) -> usize {
        let mut freed = 0;
        while self.inflight.pop_due(now).is_some() {
            freed += 1;
        }
        freed
    }

    /// Number of drains still in flight (after retiring up to `now`).
    pub fn in_flight(&mut self, now: Cycle) -> usize {
        self.retire(now);
        self.inflight.len()
    }

    /// The completion time of the earliest in-flight drain, if any.
    pub fn next_completion(&self) -> Option<Cycle> {
        self.inflight.next_due()
    }

    /// The completion time of the *last* in-flight drain — i.e. when the
    /// whole pipeline runs dry (crash-drain completion).
    pub fn all_complete_at(&mut self) -> Cycle {
        let mut last = self.next_issue;
        while let Some((c, ())) = self.inflight.pop() {
            last = last.max(c);
        }
        last
    }

    /// Appends the in-flight wheel (including its FIFO tie-break
    /// sequencing), the issue horizon, and the statistics to a
    /// checkpoint.
    pub fn encode_into(&self, w: &mut WireWriter) {
        let (entries, next_seq) = self.inflight.dump();
        w.usize(entries.len());
        for (due, seq, ()) in entries {
            w.u64(due.raw());
            w.u64(seq);
        }
        w.u64(next_seq);
        w.u64(self.next_issue.raw());
        w.u64(self.stats.issued);
        w.u64(self.stats.issue_delay_cycles);
        w.u64(self.stats.latency_cycles);
        w.u64(self.stats.max_latency_cycles);
    }

    /// Rebuilds an engine from [`encode_into`](Self::encode_into) bytes.
    ///
    /// # Errors
    ///
    /// Propagates truncation/malformation with the byte offset.
    pub fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.seq_len(8 + 8)?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let due = Cycle(r.u64()?);
            let seq = r.u64()?;
            entries.push((due, seq, ()));
        }
        let next_seq = r.u64()?;
        Ok(DrainEngine {
            inflight: EventWheel::load(entries, next_seq),
            next_issue: Cycle(r.u64()?),
            stats: DrainStats {
                issued: r.u64()?,
                issue_delay_cycles: r.u64()?,
                latency_cycles: r.u64()?,
                max_latency_cycles: r.u64()?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_returns_completion() {
        let mut e = DrainEngine::new();
        assert_eq!(e.issue(Cycle(10), 40, 100), Cycle(110));
        assert_eq!(e.stats().issued, 1);
    }

    #[test]
    fn initiation_interval_serializes_issues() {
        let mut e = DrainEngine::new();
        e.issue(Cycle(0), 40, 360);
        let c2 = e.issue(Cycle(5), 40, 360);
        assert_eq!(c2, Cycle(400), "second drain issues at cycle 40");
        assert_eq!(e.stats().issue_delay_cycles, 35);
    }

    #[test]
    fn latency_accounting() {
        let mut e = DrainEngine::new();
        e.issue(Cycle(0), 40, 100); // end-to-end 100
        e.issue(Cycle(0), 40, 100); // queued to 40, end-to-end 140
        let s = e.stats();
        assert_eq!(s.latency_cycles, 240);
        assert_eq!(s.max_latency_cycles, 140);
        assert!((s.mean_latency() - 120.0).abs() < 1e-12);
        assert_eq!(DrainStats::default().mean_latency(), 0.0);
    }

    #[test]
    fn slots_free_at_completion() {
        let mut e = DrainEngine::new();
        e.issue(Cycle(0), 10, 100);
        e.issue(Cycle(0), 10, 100); // completes at 110
        assert_eq!(e.in_flight(Cycle(99)), 2);
        assert_eq!(e.in_flight(Cycle(100)), 1);
        assert_eq!(e.in_flight(Cycle(110)), 0);
    }

    #[test]
    fn retire_counts_freed_slots() {
        let mut e = DrainEngine::new();
        e.issue(Cycle(0), 1, 50);
        e.issue(Cycle(0), 1, 60);
        assert_eq!(e.retire(Cycle(55)), 1);
        assert_eq!(e.retire(Cycle(55)), 0);
        assert_eq!(e.retire(Cycle(61)), 1);
    }

    #[test]
    fn next_completion_is_earliest() {
        let mut e = DrainEngine::new();
        assert_eq!(e.next_completion(), None);
        e.issue(Cycle(0), 1, 100);
        e.issue(Cycle(0), 1, 50); // issues at 1, completes at 51
        assert_eq!(e.next_completion(), Some(Cycle(51)));
    }

    #[test]
    fn all_complete_drains_pipeline() {
        let mut e = DrainEngine::new();
        e.issue(Cycle(0), 10, 100);
        e.issue(Cycle(0), 10, 100);
        let done = e.all_complete_at();
        assert_eq!(done, Cycle(110));
        assert_eq!(e.in_flight(done), 0);
    }
}
