//! The whole machine: core, caches, SecPB, memory controller, and NVM.
//!
//! [`SecureSystem`] replays instruction traces against one of the
//! Table II schemes, producing both *timing* (execution cycles, the
//! quantity behind Table IV and Figures 6/7/9) and *function* (a real
//! encrypted, MAC'd, BMT-protected persistent image that post-crash
//! recovery decrypts and verifies).
//!
//! ## Timing model
//!
//! The core retires up to `retire_width` instructions per cycle.  Stores
//! retire into a store buffer and are released to the SecPB serially and
//! in order (strict persistency); the acceptance latency of a store is the
//! scheme's *early* metadata work from Figure 4.  The core feels that work
//! two ways: a configurable exposure fraction models store bursts defeating
//! the buffer's latency hiding, and full back-pressure kicks in when the
//! store buffer or the SecPB itself fills.  Draining to the memory
//! controller proceeds in the background through a pipelined drain engine
//! (PLP-style overlapped tree updates); a slot frees only when the full
//! tuple is durable, so NVM write bandwidth backpressures the buffer and
//! produces the COBCM "backflow" stalls the paper reports for
//! write-intensive workloads.

use std::collections::VecDeque;

use secpb_crypto::counter::{CounterBlock, IncrementOutcome, SplitCounter};
use secpb_crypto::mac::BlockMac;
use secpb_crypto::memo::DigestMemo;
use secpb_crypto::otp::OtpEngine;
use secpb_crypto::sha512::{Digest, Sha512};
use secpb_mem::cache::LineState;
use secpb_mem::hierarchy::{Hierarchy, HitLevel};
use secpb_mem::metadata::{MetadataCaches, MetadataKind};
use secpb_mem::nvm::NvmTiming;
use secpb_mem::store::NvmStore;
use secpb_mem::wpq::WritePendingQueue;
use secpb_sim::addr::BlockAddr;
use secpb_sim::config::{MetadataMode, SystemConfig};
use secpb_sim::cycle::Cycle;
use secpb_sim::fxhash::FxHashMap;
use secpb_sim::stats::{HistId, StatId, Stats};
use secpb_sim::trace::{Access, AccessKind, TraceItem};
use secpb_sim::tracer::{Phase, Tracer};

use crate::buffer::SecPb;
use crate::crash::{
    BlockVerdict, CrashKind, CrashReport, DrainPolicy, DrainWork, RecoveryError, RecoveryReport,
};
use crate::drain::DrainEngine;
use crate::metrics::{counters, histograms, CycleBreakdown, RunResult};
use crate::scheme::Scheme;
use crate::tree::{IntegrityTree, TreeKind};

/// BMT arity used throughout (8-ary, 8 levels covers 16 M pages).
const BMT_ARITY: usize = 8;

/// Typed handles for every hot-path counter and histogram, resolved once
/// at construction so the store/drain paths never hash a counter name.
#[derive(Debug, Clone, Copy)]
struct StatHandles {
    instructions: StatId,
    loads: StatId,
    stores: StatId,
    persists: StatId,
    allocations: StatId,
    drains: StatId,
    full_stall_cycles: StatId,
    bmt_root_updates: StatId,
    bmt_node_hashes: StatId,
    otps: StatId,
    macs: StatId,
    ciphertexts: StatId,
    counter_increments: StatId,
    counter_misses: StatId,
    page_overflows: StatId,
    load_misses: StatId,
    l1_hits: StatId,
    l2_hits: StatId,
    l3_hits: StatId,
    blocking_verifications: StatId,
    sb_stall_cycles: StatId,
    early_bmt_walks: StatId,
    late_bmt_node_hashes: StatId,
    anomalies: StatId,
    occupancy: HistId,
    drain_latency: HistId,
    entry_lifetime: HistId,
    writes_per_entry: HistId,
}

impl StatHandles {
    fn register(stats: &mut Stats) -> Self {
        StatHandles {
            instructions: stats.counter(counters::INSTRUCTIONS),
            loads: stats.counter(counters::LOADS),
            stores: stats.counter(counters::STORES),
            persists: stats.counter(counters::PERSISTS),
            allocations: stats.counter(counters::ALLOCATIONS),
            drains: stats.counter(counters::DRAINS),
            full_stall_cycles: stats.counter(counters::FULL_STALL_CYCLES),
            bmt_root_updates: stats.counter(counters::BMT_ROOT_UPDATES),
            bmt_node_hashes: stats.counter(counters::BMT_NODE_HASHES),
            otps: stats.counter(counters::OTPS),
            macs: stats.counter(counters::MACS),
            ciphertexts: stats.counter(counters::CIPHERTEXTS),
            counter_increments: stats.counter(counters::COUNTER_INCREMENTS),
            counter_misses: stats.counter(counters::COUNTER_MISSES),
            page_overflows: stats.counter(counters::PAGE_OVERFLOWS),
            load_misses: stats.counter(counters::LOAD_MISSES),
            l1_hits: stats.counter(counters::L1_HITS),
            l2_hits: stats.counter(counters::L2_HITS),
            l3_hits: stats.counter(counters::L3_HITS),
            blocking_verifications: stats.counter(counters::BLOCKING_VERIFICATIONS),
            sb_stall_cycles: stats.counter(counters::SB_STALL_CYCLES),
            early_bmt_walks: stats.counter(counters::EARLY_BMT_WALKS),
            late_bmt_node_hashes: stats.counter(counters::LATE_BMT_NODE_HASHES),
            anomalies: stats.counter(counters::ANOMALIES),
            occupancy: stats.histogram_id(histograms::OCCUPANCY),
            drain_latency: stats.histogram_id(histograms::DRAIN_LATENCY),
            entry_lifetime: stats.histogram_id(histograms::ENTRY_LIFETIME),
            writes_per_entry: stats.histogram_id(histograms::WRITES_PER_ENTRY),
        }
    }
}

/// Attribution target for one core-clock advance (see [`CycleBreakdown`]).
#[derive(Debug, Clone, Copy)]
enum Attr {
    Retire,
    Load,
    StoreAccept,
    SbStall,
    NogapWait,
}

/// The complete simulated system.
pub struct SecureSystem {
    cfg: SystemConfig,
    scheme: Scheme,
    tree_kind: TreeKind,
    key_seed: u64,

    // ---- timing state ----
    now: Cycle,
    /// Cycle at which the current measurement region began (see
    /// [`reset_measurement`](Self::reset_measurement)).
    measure_from: Cycle,
    frac: f64,
    pb_busy_until: Cycle,
    bmt_busy_until: Cycle,
    store_buffer: VecDeque<Cycle>,
    hierarchy: Hierarchy,
    metadata: MetadataCaches,
    wpq: WritePendingQueue,
    nvm_timing: NvmTiming,
    drain_engine: DrainEngine,

    // ---- functional state ----
    pb: SecPb,
    golden: FxHashMap<BlockAddr, [u8; 64]>,
    counters: FxHashMap<u64, CounterBlock>,
    nvm: NvmStore,
    otp_engine: OtpEngine,
    mac_engine: BlockMac,
    tree: IntegrityTree,
    /// Eager or lazy security-metadata engine (see [`MetadataMode`]).
    mode: MetadataMode,
    /// Counter-block digest memo, active in lazy mode (digests are pure
    /// functions of the 64 counter bytes).
    ctr_digests: DigestMemo,

    stats: Stats,
    h: StatHandles,
    tracer: Tracer,
    breakdown: CycleBreakdown,
}

impl std::fmt::Debug for SecureSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecureSystem")
            .field("scheme", &self.scheme)
            .field("now", &self.now)
            .field("pb_occupancy", &self.pb.occupancy())
            .finish_non_exhaustive()
    }
}

impl SecureSystem {
    /// Builds a system with the default monolithic BMT.
    ///
    /// `key_seed` derives the encryption/MAC/tree keys (any value; runs
    /// with equal seeds are bit-identical).
    pub fn new(cfg: SystemConfig, scheme: Scheme, key_seed: u64) -> Self {
        Self::with_tree(cfg, scheme, TreeKind::Monolithic, key_seed)
    }

    /// Builds a system with an explicit integrity-tree organisation
    /// (Figure 9's DBMF/SBMF variants).
    pub fn with_tree(
        cfg: SystemConfig,
        scheme: Scheme,
        tree_kind: TreeKind,
        key_seed: u64,
    ) -> Self {
        let mut aes_key = [0u8; 24];
        for (i, b) in aes_key.iter_mut().enumerate() {
            *b = (key_seed.rotate_left(i as u32) ^ (i as u64 * 0x9E37)) as u8;
        }
        let mac_key = key_seed.to_le_bytes();
        let tree_key = (key_seed ^ 0xB111_7AB1E).to_le_bytes();
        let mut tree = IntegrityTree::new(tree_kind, &tree_key, BMT_ARITY, cfg.security.bmt_levels);
        let mode = cfg.security.metadata_mode;
        let mut otp_engine = OtpEngine::new(&aes_key);
        if mode == MetadataMode::Lazy {
            tree.set_lazy(true);
            otp_engine.enable_pad_cache(secpb_crypto::memo::DEFAULT_CAPACITY);
        }
        let mut stats = Stats::new();
        let h = StatHandles::register(&mut stats);
        SecureSystem {
            hierarchy: Hierarchy::new(&cfg),
            metadata: MetadataCaches::new(&cfg),
            wpq: WritePendingQueue::new(cfg.wpq_entries),
            nvm_timing: NvmTiming::new(cfg.nvm),
            drain_engine: DrainEngine::new(),
            pb: SecPb::new(cfg.secpb),
            golden: FxHashMap::default(),
            counters: FxHashMap::default(),
            nvm: NvmStore::new(),
            otp_engine,
            mac_engine: BlockMac::new(&mac_key),
            tree,
            mode,
            ctr_digests: DigestMemo::new(secpb_crypto::memo::DEFAULT_CAPACITY),
            stats,
            h,
            tracer: Tracer::new(),
            breakdown: CycleBreakdown::default(),
            now: Cycle::ZERO,
            measure_from: Cycle::ZERO,
            frac: 0.0,
            pb_busy_until: Cycle::ZERO,
            bmt_busy_until: Cycle::ZERO,
            store_buffer: VecDeque::new(),
            scheme,
            tree_kind,
            key_seed,
            cfg,
        }
    }

    /// The scheme under simulation.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Whether the security-metadata engine is eager or lazy.
    pub fn metadata_mode(&self) -> MetadataMode {
        self.mode
    }

    /// The integrity tree (for inspecting fold statistics).
    pub fn integrity_tree(&self) -> &IntegrityTree {
        &self.tree
    }

    /// Pad-cache hit/miss statistics, when the lazy engine is active.
    pub fn pad_cache_stats(&self) -> Option<secpb_crypto::memo::MemoStats> {
        self.otp_engine.pad_cache().map(|c| c.stats())
    }

    /// The SHA-512 digest of a counter block, memoized in lazy mode.
    fn counter_digest(&self, page: u64, cb: &CounterBlock) -> Digest {
        let bytes = cb.to_bytes();
        match self.mode {
            MetadataMode::Eager => Sha512::digest(&bytes),
            MetadataMode::Lazy => self.ctr_digests.digest(page, &bytes),
        }
    }

    /// Persists the tree root into NVM after a drain-time leaf update.
    /// The lazy engine skips this: the root register is only *read* at
    /// recovery, which always follows [`sync_metadata`](Self::sync_metadata)
    /// (via [`crash`](Self::crash)), where the folded root is persisted.
    fn persist_root(&mut self) {
        if self.mode == MetadataMode::Eager {
            self.nvm.set_bmt_root(self.tree.root());
        }
    }

    /// Folds all deferred integrity-tree work and persists the root —
    /// the observation point that makes lazy and eager states identical.
    /// Returns the analytic hash count charged to the sec-sync gap (BMF
    /// root-cache folds; zero for a monolithic tree in both modes).
    pub fn sync_metadata(&mut self) -> u64 {
        let sync_hashes = self.tree.sync();
        self.stats.add(self.h.bmt_node_hashes, sync_hashes);
        if self.scheme.is_secure() {
            self.nvm.set_bmt_root(self.tree.root());
        }
        sync_hashes
    }

    /// Raw statistics accumulated so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The cycle-attribution tracer (span aggregates, and captured events
    /// when capture is enabled).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Enables span-event capture (for Chrome-trace export) with the given
    /// buffer capacity; aggregates are always maintained regardless.
    /// Discards anything traced so far.
    pub fn enable_trace_capture(&mut self, capacity: usize) {
        self.tracer = Tracer::with_capture(capacity);
    }

    /// Where the measured cycles have gone so far.  `drain_wait` is only
    /// computed when a run completes, so this in-progress view omits it.
    pub fn cycle_breakdown(&self) -> CycleBreakdown {
        self.breakdown
    }

    /// Per-level hit counts from the data-cache hierarchy.
    pub fn hierarchy_stats(&self) -> secpb_mem::hierarchy::HierarchyStats {
        self.hierarchy.stats()
    }

    /// The SecPB (for occupancy inspection in tests).
    pub fn persist_buffer(&self) -> &SecPb {
        &self.pb
    }

    /// The durable state (for tamper injection in recovery tests).
    pub fn nvm_store_mut(&mut self) -> &mut NvmStore {
        &mut self.nvm
    }

    /// The durable state, read-only.
    pub fn nvm_store(&self) -> &NvmStore {
        &self.nvm
    }

    /// The architecturally-expected plaintext of a block (all stores
    /// applied).
    pub fn expected_plaintext(&self, block: BlockAddr) -> [u8; 64] {
        self.golden.get(&block).copied().unwrap_or([0u8; 64])
    }

    // ---------------------------------------------------------------
    // Trace replay
    // ---------------------------------------------------------------

    /// Replays a trace to completion and returns the run result (cycles
    /// counted since the last [`reset_measurement`](Self::reset_measurement),
    /// or from time zero).
    pub fn run_trace<I: IntoIterator<Item = TraceItem>>(&mut self, items: I) -> RunResult {
        for item in items {
            self.step(item);
        }
        let end = self.finish_time();
        let mut breakdown = self.breakdown;
        breakdown.drain_wait = end.since(self.now.max(self.measure_from));
        RunResult {
            scheme: self.scheme,
            cycles: end.since(self.measure_from),
            breakdown,
            stats: self.stats.clone(),
        }
    }

    /// Ends the warm-up region: zeroes the statistics and restarts the
    /// cycle count, keeping all microarchitectural state (cache and SecPB
    /// contents, counters, NVM image) warm — the equivalent of the
    /// paper's fast-forward to a representative SimPoint region.
    pub fn reset_measurement(&mut self) {
        self.measure_from = self.finish_time();
        self.stats.reset();
        self.tracer.reset();
        self.breakdown = CycleBreakdown::default();
        self.hierarchy.reset_stats();
    }

    /// Executes a single trace item.
    pub fn step(&mut self, item: TraceItem) {
        if item.non_mem_instrs > 0 {
            self.stats
                .add(self.h.instructions, u64::from(item.non_mem_instrs));
            self.advance(
                f64::from(item.non_mem_instrs) / f64::from(self.cfg.core.retire_width),
                Attr::Retire,
            );
        }
        if let Some(access) = item.access {
            self.stats.inc(self.h.instructions);
            self.advance(1.0 / f64::from(self.cfg.core.retire_width), Attr::Retire);
            match access.kind {
                AccessKind::Load => self.do_load(access),
                AccessKind::Store => self.do_store(access),
            }
        }
    }

    /// The execution time if the trace ended now: the core must wait for
    /// outstanding store-buffer entries to persist.
    pub fn finish_time(&self) -> Cycle {
        let sb_tail = self.store_buffer.back().copied().unwrap_or(Cycle::ZERO);
        self.now.max(self.pb_busy_until).max(sb_tail)
    }

    fn advance(&mut self, cycles: f64, attr: Attr) {
        self.frac += cycles;
        let whole = self.frac.floor();
        if whole >= 1.0 {
            let old = self.now;
            self.now += whole as u64;
            self.frac -= whole;
            self.attribute(attr, old);
        }
    }

    /// Credits the clock movement from `old` to `self.now` to `attr`,
    /// clipped to the measurement region so the breakdown sums exactly to
    /// the measured cycles.
    fn attribute(&mut self, attr: Attr, old: Cycle) {
        let delta = self
            .now
            .max(self.measure_from)
            .since(old.max(self.measure_from));
        if delta == 0 {
            return;
        }
        match attr {
            Attr::Retire => self.breakdown.retire += delta,
            Attr::Load => self.breakdown.load += delta,
            Attr::StoreAccept => self.breakdown.store_accept += delta,
            Attr::SbStall => self.breakdown.sb_stall += delta,
            Attr::NogapWait => self.breakdown.nogap_wait += delta,
        }
    }

    fn do_load(&mut self, access: Access) {
        self.stats.inc(self.h.loads);
        let block = access.addr.block();
        let out = self
            .hierarchy
            .load_traced(block, self.now, &mut self.tracer);
        let mut extra = out.latency.saturating_sub(self.cfg.l1.access_latency);
        match out.hit_level {
            HitLevel::L1 => self.stats.inc(self.h.l1_hits),
            HitLevel::L2 => self.stats.inc(self.h.l2_hits),
            HitLevel::L3 => self.stats.inc(self.h.l3_hits),
            HitLevel::Memory => {
                let done = self.nvm_timing.read(block, self.now);
                extra += done.since(self.now);
                self.stats.inc(self.h.load_misses);
                if self.scheme.is_secure() && !self.cfg.security.speculative_verification {
                    // Blocking verification: decrypt + MAC check before use.
                    extra += self.cfg.security.otp_latency + self.cfg.security.mac_latency;
                    self.stats.inc(self.h.blocking_verifications);
                }
            }
        }
        for wb in out.writebacks {
            self.wpq.enqueue(wb, self.now, &mut self.nvm_timing);
        }
        self.advance(self.cfg.core.load_exposure * extra as f64, Attr::Load);
    }

    fn do_store(&mut self, access: Access) {
        self.stats.inc(self.h.stores);
        let block = access.addr.block();
        // Architectural effect.
        let entry = self.golden.entry(block).or_insert([0u8; 64]);
        let offset = access.addr.block_offset();
        let size = usize::from(access.size);
        let bytes = access.value.to_le_bytes();
        entry[offset..offset + size].copy_from_slice(&bytes[..size]);

        if self.scheme == Scheme::Sp {
            self.sp_store(access);
        } else {
            self.pb_store(access);
        }
    }

    // ---------------------------------------------------------------
    // SecPB store path
    // ---------------------------------------------------------------

    fn pb_store(&mut self, access: Access) {
        let block = access.addr.block();
        let offset = access.addr.block_offset();
        let size = usize::from(access.size);
        self.hierarchy.store(block, LineState::PersistDirty);

        if self.scheme == Scheme::NoGap {
            // NoGap only raises its unblocking signal at the *completion*
            // of the full metadata persist (Section IV-B): the store
            // buffer cannot accept a new store until then, so the
            // previous persist serializes with the core directly.
            let old = self.now;
            self.now = self.now.max(self.pb_busy_until);
            self.attribute(Attr::NogapWait, old);
        }
        let mut release = self.now.max(self.pb_busy_until);
        self.drain_engine.retire(release);
        let ew = self.scheme.early_work();
        let secure = self.scheme.is_secure();
        let pb_lat = self.cfg.secpb.access_latency;

        let accept_end;
        if self.pb.contains(block) {
            // Coalescing hit.
            match self.pb.entry_mut(block) {
                Some(e) => e.apply_store(offset, access.value, size),
                None => self.stats.inc(self.h.anomalies),
            }
            self.pb.note_persist();
            self.stats.inc(self.h.persists);
            let mut t = release + pb_lat;
            if secure && !self.cfg.security.value_independent_coalescing && ew.counter {
                // Ablation: redo value-independent metadata on every store.
                let (done, ctr) = self.early_counter_increment(block, t);
                t = done;
                if let Some(e) = self.pb.entry_mut(block) {
                    e.counter = ctr;
                    e.valid.counter = true;
                } else {
                    self.stats.inc(self.h.anomalies);
                }
                if ew.otp {
                    t = self.early_otp(block, t);
                }
                if ew.bmt {
                    t = self.early_bmt_walk(block, t);
                }
            }
            if secure && ew.ciphertext {
                t = self.early_ciphertext(block, t);
            }
            if secure && ew.mac {
                t = self.early_mac(block, t);
            }
            accept_end = t;
        } else {
            // Allocation path: wait for a slot if necessary.
            release = self.wait_for_slot(release);
            let base = self.base_plaintext(block);
            let e = self.pb.allocate(block, access.asid, base);
            e.apply_store(offset, access.value, size);
            e.born = release;
            self.pb.note_persist();
            self.stats.inc(self.h.persists);
            self.stats.inc(self.h.allocations);

            let mut t = release + pb_lat;
            if self.scheme == Scheme::Obcm {
                // OBCM pays a second SecPB access to check the counter
                // valid bit before unblocking the L1D (Section VI-B).
                t += pb_lat;
            }
            if secure && ew.counter {
                let (done, ctr) = self.early_counter_increment(block, t);
                t = done;
                if let Some(e) = self.pb.entry_mut(block) {
                    e.counter = ctr;
                    e.valid.counter = true;
                } else {
                    self.stats.inc(self.h.anomalies);
                }
            }
            let mut data_done = t;
            if secure && ew.otp {
                data_done = self.early_otp(block, data_done);
                if ew.ciphertext {
                    data_done = self.early_ciphertext(block, data_done);
                    if ew.mac {
                        data_done = self.early_mac(block, data_done);
                    }
                }
            }
            let bmt_done = if secure && ew.bmt {
                self.early_bmt_walk(block, t)
            } else {
                t
            };
            accept_end = data_done.max(bmt_done);

            if self.pb.above_high_watermark() {
                self.issue_background_drains(accept_end);
            }
        }

        self.pb_busy_until = accept_end;
        self.tracer.span(Phase::StorePersist, release, accept_end);
        self.stats
            .record(self.h.occupancy, self.pb.occupancy() as u64);
        let work = accept_end.since(release + pb_lat);
        self.push_store_buffer(accept_end);
        self.advance(
            self.cfg.core.store_exposure * work as f64,
            Attr::StoreAccept,
        );
    }

    /// The plaintext a fresh SecPB entry starts from: the block's current
    /// architectural value before this store.
    fn base_plaintext(&self, block: BlockAddr) -> [u8; 64] {
        self.golden.get(&block).copied().unwrap_or([0u8; 64])
    }

    fn push_store_buffer(&mut self, accept_end: Cycle) {
        while self.store_buffer.front().is_some_and(|&c| c <= self.now) {
            self.store_buffer.pop_front();
        }
        if self.store_buffer.len() >= self.cfg.core.store_buffer_entries {
            if let Some(oldest) = self.store_buffer.pop_front() {
                let stall = oldest.since(self.now);
                self.stats.add(self.h.sb_stall_cycles, stall);
                let old = self.now;
                self.now = self.now.max(oldest);
                self.attribute(Attr::SbStall, old);
            }
        }
        self.store_buffer.push_back(accept_end);
    }

    /// Blocks until a SecPB slot is available, issuing drains as needed.
    fn wait_for_slot(&mut self, mut release: Cycle) -> Cycle {
        loop {
            let in_flight = self.drain_engine.in_flight(release);
            if self.pb.occupancy() + in_flight < self.cfg.secpb.entries {
                return release;
            }
            match self.drain_engine.next_completion() {
                None => {
                    if !self.issue_drains(release, 1) {
                        // Nothing drainable and nothing in flight: the
                        // buffer cannot make progress — accept the store
                        // rather than deadlock, and flag the anomaly.
                        self.stats.inc(self.h.anomalies);
                        return release;
                    }
                }
                Some(c) => {
                    self.stats.add(self.h.full_stall_cycles, c.since(release));
                    self.tracer.span(Phase::FullStall, release, c);
                    release = release.max(c);
                    self.drain_engine.retire(release);
                }
            }
        }
    }

    fn issue_background_drains(&mut self, now: Cycle) {
        let target = self.cfg.secpb.low_watermark_entries();
        while self.pb.occupancy() > target {
            if !self.issue_drains(now, 1) {
                break;
            }
        }
    }

    /// Issues up to `n` oldest-first drains; returns whether any issued.
    fn issue_drains(&mut self, now: Cycle, n: usize) -> bool {
        let mut any = false;
        for _ in 0..n {
            let Some(block) = self.pb.oldest() else { break };
            match self.drain_one(block, now) {
                Ok(_) => any = true,
                Err(_) => {
                    // `oldest` said the block was resident but `remove`
                    // disagreed; count it and stop issuing this round.
                    self.stats.inc(self.h.anomalies);
                    break;
                }
            }
        }
        any
    }

    /// Drains one entry: timing through the drain engine, function through
    /// [`flush_entry`](Self::flush_entry).
    fn drain_one(&mut self, block: BlockAddr, now: Cycle) -> Result<Cycle, RecoveryError> {
        let entry = self
            .pb
            .remove(block)
            .ok_or(RecoveryError::MissingPbEntry(block))?;
        let (ii, latency) = self.drain_timing(&entry, now);
        let completion = self.drain_engine.issue(now, ii, latency);
        self.tracer.span(Phase::Drain, now, completion);
        self.stats
            .record(self.h.drain_latency, completion.since(now));
        self.stats
            .record(self.h.entry_lifetime, now.since(entry.born));
        self.stats.record(self.h.writes_per_entry, entry.stores);
        self.flush_entry(entry);
        self.stats.inc(self.h.drains);
        Ok(completion)
    }

    /// Computes (initiation interval, latency) of draining `entry` at
    /// `now`: the scheme's *late* work plus the PM writes.
    fn drain_timing(&mut self, entry: &crate::entry::Entry, now: Cycle) -> (u64, u64) {
        let block = entry.block;
        let page = NvmStore::page_of(block);
        let sec = &self.cfg.security;
        let pb_lat = self.cfg.secpb.access_latency;
        // The MC-side sec-sync pipeline overlaps drains (PLP-style
        // pipelined tree updates): the initiation interval models the
        // PB read port, with NVM write bandwidth applying backpressure
        // through the WPQ below.
        let ii = 8u64;
        let mut t = now + pb_lat;

        if self.scheme.is_secure() {
            if !entry.valid.counter {
                let md = self.metadata.access(
                    MetadataKind::Counter,
                    page,
                    true,
                    t,
                    &mut self.nvm_timing,
                );
                if !md.hit {
                    self.stats.inc(self.h.counter_misses);
                }
                self.tracer.span(Phase::CounterFetch, t, md.done + 1);
                t = md.done + 1;
            }
            let mut data_t = t;
            if !entry.valid.otp {
                self.tracer
                    .span(Phase::OtpGen, data_t, data_t + sec.otp_latency);
                data_t += sec.otp_latency;
            }
            if !entry.valid.ciphertext {
                data_t += 1;
            }
            if !entry.valid.mac {
                self.tracer
                    .span(Phase::Mac, data_t, data_t + sec.mac_latency);
                data_t += sec.mac_latency;
            }
            let mut bmt_t = t;
            if !entry.valid.bmt {
                let hashes = self.tree.update_cost_hashes(page);
                let mut walk = bmt_t;
                for lvl in 1..=hashes {
                    let idx = (lvl << 32) | (page >> (3 * lvl as u32).min(63));
                    let md = self.metadata.access(
                        MetadataKind::BmtNode,
                        idx,
                        true,
                        walk,
                        &mut self.nvm_timing,
                    );
                    walk = md.done + sec.bmt_hash_latency;
                }
                self.tracer.span(Phase::BmtUpdate, bmt_t, walk);
                bmt_t = walk;
            }
            t = data_t.max(bmt_t);
            // PM writes: data, counter block, MAC block.
            let a1 = self.wpq.enqueue(block, t, &mut self.nvm_timing);
            let a2 = self.wpq.enqueue(
                MetadataCaches::region_block(MetadataKind::Counter, page),
                t,
                &mut self.nvm_timing,
            );
            let a3 = self.wpq.enqueue(
                MetadataCaches::region_block(MetadataKind::Mac, block.index() / 8),
                t,
                &mut self.nvm_timing,
            );
            t = a1.max(a2).max(a3);
        } else {
            // Insecure bbb: just move the data block to the WPQ.
            t = self.wpq.enqueue(block, t, &mut self.nvm_timing);
        }
        (ii, t.since(now))
    }

    // ---------------------------------------------------------------
    // Early metadata work (timing + function)
    // ---------------------------------------------------------------

    /// Fetches and increments the block's counter (timing through the
    /// counter cache; function through the logical counter state).
    fn early_counter_increment(&mut self, block: BlockAddr, t: Cycle) -> (Cycle, SplitCounter) {
        let page = NvmStore::page_of(block);
        let md = self
            .metadata
            .access(MetadataKind::Counter, page, true, t, &mut self.nvm_timing);
        if !md.hit {
            self.stats.inc(self.h.counter_misses);
        }
        self.tracer.span(Phase::CounterFetch, t, md.done + 1);
        let ctr = self.increment_logical(block);
        (md.done + 1, ctr)
    }

    fn early_otp(&mut self, block: BlockAddr, t: Cycle) -> Cycle {
        let Some(e) = self.pb.entry(block) else {
            self.stats.inc(self.h.anomalies);
            return t;
        };
        let ctr = e.counter;
        let pad = self.otp_engine.generate(block.index(), ctr);
        if let Some(e) = self.pb.entry_mut(block) {
            e.otp = pad;
            e.valid.otp = true;
        }
        self.stats.inc(self.h.otps);
        self.tracer
            .span(Phase::OtpGen, t, t + self.cfg.security.otp_latency);
        t + self.cfg.security.otp_latency
    }

    fn early_ciphertext(&mut self, block: BlockAddr, t: Cycle) -> Cycle {
        let Some(e) = self.pb.entry_mut(block) else {
            self.stats.inc(self.h.anomalies);
            return t;
        };
        debug_assert!(e.valid.otp, "ciphertext requires a valid pad (Figure 4)");
        e.ciphertext = OtpEngine::apply_pad(&e.plaintext, &e.otp);
        e.valid.ciphertext = true;
        self.stats.inc(self.h.ciphertexts);
        t + 1
    }

    fn early_mac(&mut self, block: BlockAddr, t: Cycle) -> Cycle {
        let Some(e) = self.pb.entry(block) else {
            self.stats.inc(self.h.anomalies);
            return t;
        };
        debug_assert!(e.valid.ciphertext, "MAC requires the ciphertext (Figure 4)");
        let mac = self
            .mac_engine
            .compute(&e.ciphertext, block.index(), e.counter);
        if let Some(e) = self.pb.entry_mut(block) {
            e.mac = Some(mac);
            e.valid.mac = true;
        }
        self.stats.inc(self.h.macs);
        self.tracer
            .span(Phase::Mac, t, t + self.cfg.security.mac_latency);
        t + self.cfg.security.mac_latency
    }

    /// Walks the BMT from leaf to root for timing (the functional leaf
    /// update happens at drain).  Serialized to one in flight when
    /// configured.
    fn early_bmt_walk(&mut self, block: BlockAddr, t: Cycle) -> Cycle {
        let page = NvmStore::page_of(block);
        let sec = &self.cfg.security;
        let start = if sec.single_inflight_bmt {
            t.max(self.bmt_busy_until)
        } else {
            t
        };
        let hashes = self.tree.update_cost_hashes(page);
        let mut walk = start;
        for lvl in 1..=hashes {
            let idx = (lvl << 32) | (page >> (3 * lvl as u32).min(63));
            let md =
                self.metadata
                    .access(MetadataKind::BmtNode, idx, true, walk, &mut self.nvm_timing);
            walk = md.done + sec.bmt_hash_latency;
        }
        if sec.single_inflight_bmt {
            self.bmt_busy_until = walk;
        }
        self.stats.inc(self.h.early_bmt_walks);
        self.tracer.span(Phase::BmtUpdate, start, walk);
        if let Some(e) = self.pb.entry_mut(block) {
            e.valid.bmt = true;
        }
        walk
    }

    /// Increments the logical counter of `block`, handling page overflow
    /// (re-encryption).
    fn increment_logical(&mut self, block: BlockAddr) -> SplitCounter {
        let page = NvmStore::page_of(block);
        let slot = NvmStore::page_slot_of(block);
        let cb = self.counters.entry(page).or_default();
        let outcome = cb.increment(slot);
        self.stats.inc(self.h.counter_increments);
        if outcome == IncrementOutcome::PageOverflow {
            self.reencrypt_page(page);
        }
        match self.counters.get(&page) {
            Some(cb) => cb.counter_of(slot),
            None => {
                self.stats.inc(self.h.anomalies);
                SplitCounter::default()
            }
        }
    }

    /// Page re-encryption after a minor-counter overflow (Section IV-A
    /// notes SecPB's once-per-dirty-block increments delay this).
    fn reencrypt_page(&mut self, page: u64) {
        self.stats.inc(self.h.page_overflows);
        let old_cb = self.nvm.read_counters(page);
        let Some(new_cb) = self.counters.get(&page).cloned() else {
            self.stats.inc(self.h.anomalies);
            return;
        };
        let blocks: Vec<BlockAddr> = self
            .nvm
            .data_blocks()
            .filter(|b| NvmStore::page_of(*b) == page)
            .collect();
        for block in blocks {
            let slot = NvmStore::page_slot_of(block);
            let old_ctr = old_cb.counter_of(slot);
            let new_ctr = new_cb.counter_of(slot);
            let ct = self.nvm.read_data(block);
            let pt = self.otp_engine.decrypt(&ct, block.index(), old_ctr);
            let new_ct = self.otp_engine.encrypt(&pt, block.index(), new_ctr);
            let new_mac = self.mac_engine.compute(&new_ct, block.index(), new_ctr);
            self.nvm.write_data(block, new_ct);
            self.nvm.write_mac(block, new_mac.truncate_u64());
            self.stats.inc(self.h.otps);
            self.stats.inc(self.h.ciphertexts);
            self.stats.inc(self.h.macs);
        }
        // Persist the fresh counter block and fold it into the tree.
        self.nvm.write_counters(page, new_cb.clone());
        let digest = self.counter_digest(page, &new_cb);
        let hashes = self.tree.update_leaf(page, digest);
        self.stats.inc(self.h.bmt_root_updates);
        self.stats.add(self.h.bmt_node_hashes, hashes);
        self.persist_root();
        // Refresh in-flight SecPB entries of the page: their recorded
        // counters are stale after the major bump.
        let resident: Vec<BlockAddr> = self
            .pb
            .iter()
            .filter(|e| NvmStore::page_of(e.block) == page)
            .map(|e| e.block)
            .collect();
        for block in resident {
            let slot = NvmStore::page_slot_of(block);
            let fresh = new_cb.counter_of(slot);
            let Some(e) = self.pb.entry_mut(block) else {
                self.stats.inc(self.h.anomalies);
                continue;
            };
            if e.valid.counter {
                e.counter = fresh;
            }
            e.valid.otp = false;
            e.valid.ciphertext = false;
            e.valid.mac = false;
            e.mac = None;
        }
    }

    // ---------------------------------------------------------------
    // Functional flush (drain completion)
    // ---------------------------------------------------------------

    /// Applies an entry's full memory-tuple update to the durable state.
    fn flush_entry(&mut self, mut entry: crate::entry::Entry) {
        let block = entry.block;
        if !self.scheme.is_secure() {
            self.nvm.write_data(block, entry.plaintext);
            return;
        }
        let page = NvmStore::page_of(block);
        let slot = NvmStore::page_slot_of(block);

        if !entry.valid.counter {
            entry.counter = self.increment_logical(block);
            entry.valid.counter = true;
        }
        let ctr = entry.counter;
        let pad = if entry.valid.otp {
            entry.otp
        } else {
            self.stats.inc(self.h.otps);
            self.otp_engine.generate(block.index(), ctr)
        };
        let ct = if entry.valid.ciphertext {
            entry.ciphertext
        } else {
            self.stats.inc(self.h.ciphertexts);
            OtpEngine::apply_pad(&entry.plaintext, &pad)
        };
        let mac = match entry.mac {
            Some(m) if entry.valid.mac => m,
            _ => {
                self.stats.inc(self.h.macs);
                self.mac_engine.compute(&ct, block.index(), ctr)
            }
        };

        self.nvm.write_data(block, ct);
        self.nvm.write_mac(block, mac.truncate_u64());
        let mut cb = self.nvm.read_counters(page);
        cb.set_counter(slot, ctr);
        self.nvm.write_counters(page, cb.clone());
        let digest = self.counter_digest(page, &cb);
        let hashes = self.tree.update_leaf(page, digest);
        self.stats.inc(self.h.bmt_root_updates);
        self.stats.add(self.h.bmt_node_hashes, hashes);
        if !entry.valid.bmt {
            // Only schemes that left the BMT update *late* charge these
            // hashes to the drain (battery) budget; eager schemes already
            // paid at store time.
            self.stats.add(self.h.late_bmt_node_hashes, hashes);
        }
        self.persist_root();
    }

    // ---------------------------------------------------------------
    // SP baseline (SPoP at the memory controller, no SecPB)
    // ---------------------------------------------------------------

    fn sp_store(&mut self, access: Access) {
        let block = access.addr.block();
        // Caches hold a clean copy (the store persists through the MC).
        self.hierarchy.store(block, LineState::Clean);
        let release = self.now.max(self.pb_busy_until);
        let sec = self.cfg.security;

        // Counter fetch + increment (per store: no coalescing).
        let (t, ctr) = {
            let page = NvmStore::page_of(block);
            let md = self.metadata.access(
                MetadataKind::Counter,
                page,
                true,
                release,
                &mut self.nvm_timing,
            );
            if !md.hit {
                self.stats.inc(self.h.counter_misses);
            }
            self.tracer.span(Phase::CounterFetch, release, md.done + 1);
            (md.done + 1, self.increment_logical(block))
        };

        // Data-dependent chain and BMT walk in parallel.
        let data_done = t + sec.otp_latency + 1 + sec.mac_latency;
        self.stats.inc(self.h.otps);
        self.stats.inc(self.h.ciphertexts);
        self.stats.inc(self.h.macs);
        self.tracer.span(Phase::OtpGen, t, t + sec.otp_latency);
        self.tracer
            .span(Phase::Mac, t + sec.otp_latency + 1, data_done);
        let bmt_done = self.sp_bmt_walk(block, t);

        let mut done = data_done.max(bmt_done);
        // Persist through the WPQ.
        let page = NvmStore::page_of(block);
        let a1 = self.wpq.enqueue(block, done, &mut self.nvm_timing);
        let a2 = self.wpq.enqueue(
            MetadataCaches::region_block(MetadataKind::Counter, page),
            done,
            &mut self.nvm_timing,
        );
        done = a1.max(a2);

        self.pb_busy_until = done;
        self.stats.inc(self.h.persists);
        self.tracer.span(Phase::StorePersist, release, done);
        self.push_store_buffer(done);
        self.advance(
            self.cfg.core.store_exposure * done.since(release) as f64,
            Attr::StoreAccept,
        );

        // Functional: persist the tuple immediately.
        let pt = self.golden.get(&block).copied().unwrap_or([0u8; 64]);
        let ct = self.otp_engine.encrypt(&pt, block.index(), ctr);
        let mac = self.mac_engine.compute(&ct, block.index(), ctr);
        self.nvm.write_data(block, ct);
        self.nvm.write_mac(block, mac.truncate_u64());
        let slot = NvmStore::page_slot_of(block);
        let mut cb = self.nvm.read_counters(page);
        cb.set_counter(slot, ctr);
        self.nvm.write_counters(page, cb.clone());
        let digest = self.counter_digest(page, &cb);
        let hashes = self.tree.update_leaf(page, digest);
        self.stats.inc(self.h.bmt_root_updates);
        self.stats.add(self.h.bmt_node_hashes, hashes);
        self.persist_root();
    }

    fn sp_bmt_walk(&mut self, block: BlockAddr, t: Cycle) -> Cycle {
        let page = NvmStore::page_of(block);
        let sec = &self.cfg.security;
        let start = if sec.single_inflight_bmt {
            t.max(self.bmt_busy_until)
        } else {
            t
        };
        let hashes = self.tree.update_cost_hashes(page);
        let mut walk = start;
        for lvl in 1..=hashes {
            let idx = (lvl << 32) | (page >> (3 * lvl as u32).min(63));
            let md =
                self.metadata
                    .access(MetadataKind::BmtNode, idx, true, walk, &mut self.nvm_timing);
            walk = md.done + sec.bmt_hash_latency;
        }
        if sec.single_inflight_bmt {
            self.bmt_busy_until = walk;
        }
        self.tracer.span(Phase::BmtUpdate, start, walk);
        walk
    }

    // ---------------------------------------------------------------
    // Crash and recovery
    // ---------------------------------------------------------------

    /// Handles a crash: the battery drains the SecPB (per `policy` for
    /// application crashes) and completes all security metadata, closing
    /// the draining and sec-sync gaps.
    pub fn crash(
        &mut self,
        kind: CrashKind,
        policy: DrainPolicy,
    ) -> Result<CrashReport, RecoveryError> {
        self.crash_with_budget(kind, policy, None)
    }

    /// [`crash`](Self::crash) under a battery budget: at most
    /// `max_drain_entries` entries drain (oldest first, the drain order);
    /// anything younger is *lost* — dropped undrained and reported in
    /// [`CrashReport::lost_blocks`] — modelling a brown-out where the
    /// provisioned energy runs out mid-drain.  `None` means a fully
    /// provisioned battery.
    pub fn crash_with_budget(
        &mut self,
        kind: CrashKind,
        policy: DrainPolicy,
        max_drain_entries: Option<u64>,
    ) -> Result<CrashReport, RecoveryError> {
        let at = self.finish_time();
        let before = self.stats.clone();

        let mut blocks: Vec<BlockAddr> = match (kind, policy) {
            (CrashKind::ApplicationCrash(asid), DrainPolicy::DrainProcess) => {
                self.pb.blocks_of_asid(asid)
            }
            _ => self.pb.blocks_oldest_first(),
        };
        let budget = usize::try_from(max_drain_entries.unwrap_or(u64::MAX)).unwrap_or(usize::MAX);
        let lost_blocks: Vec<BlockAddr> = if blocks.len() > budget {
            blocks.split_off(budget)
        } else {
            Vec::new()
        };
        let entries = blocks.len() as u64;
        let mut last_drain_issue = at;
        for block in blocks {
            let completion = self.drain_one(block, last_drain_issue)?;
            // The PB-to-MC move itself is quick; track pipeline occupancy
            // through the drain engine.
            last_drain_issue = last_drain_issue.max(completion.min(last_drain_issue + 8));
        }
        // Battery exhausted: the remaining entries never leave the SecPB,
        // and with power gone the buffer contents evaporate.
        for &block in &lost_blocks {
            if self.pb.remove(block).is_none() {
                return Err(RecoveryError::MissingPbEntry(block));
            }
        }
        let drain_complete_at = last_drain_issue;
        let mut secsync = self.drain_engine.all_complete_at().max(drain_complete_at);
        secsync = secsync.max(self.wpq.drained_at());
        // Fold any cached BMF subtree roots (and, in lazy mode, all
        // deferred tree updates) into the persisted root.
        let sync_hashes = self.sync_metadata();
        secsync += sync_hashes * self.cfg.security.bmt_hash_latency;

        let full_power_cycle = !matches!(kind, CrashKind::ApplicationCrash(_));
        if full_power_cycle {
            self.hierarchy.clear();
            self.metadata.clear();
            self.store_buffer.clear();
        }

        let after = &self.stats;
        let delta = |name: &str| after.get(name).saturating_sub(before.get(name));
        // Bytes of entry state per drain: only the fields the scheme
        // actually populates move to the MC (Figure 5's field table).
        let entry_footprint: u64 = match self.scheme {
            Scheme::Bbb => 64,
            Scheme::Cobcm | Scheme::Obcm => 65,
            Scheme::Bcm => 130,
            Scheme::Cm => 131,
            Scheme::M => 196,
            Scheme::NoGap | Scheme::Sp => 260,
        };
        let work = DrainWork {
            entries,
            bytes_pb_to_mc: entries * entry_footprint,
            // Table III's movement costs are end-to-end (SecPB *to PM*),
            // so the PM delivery of the entry's own tuple is already
            // covered by `bytes_pb_to_mc`; nothing extra accrues here.
            bytes_mc_to_pm: 0,
            counter_fetches: delta(counters::COUNTER_MISSES),
            bmt_node_hashes: delta(counters::LATE_BMT_NODE_HASHES),
            bmt_node_fetches: delta(counters::LATE_BMT_NODE_HASHES),
            otps: delta(counters::OTPS),
            macs: delta(counters::MACS),
            ciphertexts: delta(counters::CIPHERTEXTS),
        };

        Ok(CrashReport {
            kind,
            at,
            drain_complete_at,
            secsync_complete_at: secsync,
            work,
            lost_blocks,
        })
    }

    /// Whether background drains are currently in flight (issued but not
    /// retired) — the [`secpb_sim::fault::CrashTrigger::MidDrain`]
    /// observation point.
    pub fn drains_in_flight(&self) -> bool {
        self.drain_engine.next_completion().is_some()
    }

    /// Estimated post-crash recovery latency in cycles: fetching every
    /// persisted counter block and folding it into the rebuilt BMT, then
    /// fetching, decrypting, and MAC-verifying every data block.  NVM
    /// reads pipeline across banks; crypto units pipeline at their
    /// occupancy (one hash per `bmt_hash_latency`).
    ///
    /// This is the quantity recovery-time work like Anubis (Zubair &
    /// Awad, ISCA'19 — the paper's \[74\]) optimizes; exposing it lets the
    /// benches show how recovery time scales with the persistent
    /// footprint.
    pub fn estimated_recovery_cycles(&self) -> u64 {
        let sec = &self.cfg.security;
        let banks = self.cfg.nvm.banks.max(1) as u64;
        let read = self.cfg.nvm.read_latency.raw();
        let pages = self.nvm.counter_pages().count() as u64;
        let blocks = self.nvm.data_block_count() as u64;
        // Counter fetches and tree rebuild.
        let counter_fetch = pages * read / banks + read.min(pages * read);
        let tree_rebuild = pages * u64::from(sec.bmt_levels) * sec.bmt_hash_latency;
        // Data fetch + decrypt + verify, pipelined.
        let data_fetch = blocks * read / banks + if blocks > 0 { read } else { 0 };
        let verify = blocks * sec.mac_latency.max(sec.otp_latency);
        counter_fetch + tree_rebuild + data_fetch + verify
    }

    /// Post-crash recovery: rebuilds the integrity tree from the persisted
    /// counters, verifies the root register, decrypts and MAC-verifies
    /// every data block, and checks the plaintext against the
    /// architecturally expected post-crash state.
    pub fn recover(&self) -> RecoveryReport {
        self.recover_with(&[])
    }

    /// [`recover`](Self::recover) with lost-block accounting: blocks
    /// listed in `lost` (a brown-out crash report's
    /// [`CrashReport::lost_blocks`]) and blocks still SecPB-resident
    /// (e.g. survivors of a [`DrainPolicy::DrainProcess`] drain) are
    /// *expected* to read back stale — they get
    /// [`BlockVerdict::LostStale`] / [`BlockVerdict::InFlightStale`]
    /// verdicts instead of counting as plaintext mismatches.
    pub fn recover_with(&self, lost: &[BlockAddr]) -> RecoveryReport {
        let mut report = RecoveryReport::default();
        let stale_verdict = |block: BlockAddr| {
            if lost.contains(&block) {
                BlockVerdict::LostStale
            } else if self.pb.contains(block) {
                BlockVerdict::InFlightStale
            } else {
                BlockVerdict::PlaintextMismatch
            }
        };
        let mut blocks: Vec<BlockAddr> = self.nvm.data_blocks().collect();
        blocks.sort_unstable();

        if !self.scheme.is_secure() {
            report.root_ok = true;
            for block in blocks {
                report.blocks_checked += 1;
                let pt = self.nvm.read_data(block);
                let verdict = if pt == self.expected_plaintext(block) {
                    BlockVerdict::Verified
                } else {
                    stale_verdict(block)
                };
                match verdict {
                    BlockVerdict::PlaintextMismatch => report.plaintext_mismatches.push(block),
                    BlockVerdict::LostStale => report.lost_stale.push(block),
                    BlockVerdict::InFlightStale => report.in_flight_stale.push(block),
                    _ => {}
                }
                report.verdicts.push((block, verdict));
            }
            return report;
        }

        // Rebuild the tree from the persisted counter blocks.
        let tree_key = (self.key_seed ^ 0xB111_7AB1E).to_le_bytes();
        let mut rebuilt = IntegrityTree::new(
            self.tree_kind,
            &tree_key,
            BMT_ARITY,
            self.cfg.security.bmt_levels,
        );
        if self.mode == MetadataMode::Lazy {
            // The rebuild is itself an N-update batch folded once at the
            // end — the lazy engine's sweet spot.
            rebuilt.set_lazy(true);
        }
        let mut pages: Vec<u64> = self.nvm.counter_pages().collect();
        pages.sort_unstable();
        for page in pages {
            let cb = self.nvm.read_counters(page);
            rebuilt.update_leaf(page, self.counter_digest(page, &cb));
        }
        rebuilt.sync();
        report.root_ok = self.nvm.bmt_root() == Some(rebuilt.root());

        for block in blocks {
            report.blocks_checked += 1;
            let page = NvmStore::page_of(block);
            let slot = NvmStore::page_slot_of(block);
            let ctr = self.nvm.read_counters(page).counter_of(slot);
            let ct = self.nvm.read_data(block);
            let verdict = if !self.mac_engine.verify_truncated(
                &ct,
                block.index(),
                ctr,
                self.nvm.read_mac(block),
            ) {
                report.mac_failures.push(block);
                BlockVerdict::MacMismatch
            } else {
                let pt = self.otp_engine.decrypt(&ct, block.index(), ctr);
                if pt == self.expected_plaintext(block) {
                    BlockVerdict::Verified
                } else {
                    let v = stale_verdict(block);
                    match v {
                        BlockVerdict::PlaintextMismatch => report.plaintext_mismatches.push(block),
                        BlockVerdict::LostStale => report.lost_stale.push(block),
                        BlockVerdict::InFlightStale => report.in_flight_stale.push(block),
                        _ => {}
                    }
                    v
                }
            };
            report.verdicts.push((block, verdict));
        }
        report
    }

    /// Re-reads the durable image of brown-out-lost blocks back into the
    /// architectural expectation, modelling the application observing
    /// what actually persisted before continuing.  Without this a storm
    /// could not keep running after a brown-out: the golden state would
    /// remember stores whose entries evaporated with the battery.
    pub fn resync_lost_golden(&mut self, lost: &[BlockAddr]) {
        for &block in lost {
            if !self.nvm.contains_data(block) {
                // Never persisted at all: the durable view is zeros.
                self.golden.remove(&block);
                continue;
            }
            let pt = if self.scheme.is_secure() {
                let page = NvmStore::page_of(block);
                let slot = NvmStore::page_slot_of(block);
                let ctr = self.nvm.read_counters(page).counter_of(slot);
                self.otp_engine
                    .decrypt(&self.nvm.read_data(block), block.index(), ctr)
            } else {
                self.nvm.read_data(block)
            };
            self.golden.insert(block, pt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secpb_sim::addr::{Address, Asid};

    fn store_trace(n: u64, stride: u64) -> Vec<TraceItem> {
        (0..n)
            .map(|i| TraceItem::then(9, Access::store(Address(0x10000 + i * stride), i + 1)))
            .collect()
    }

    fn system(scheme: Scheme) -> SecureSystem {
        SecureSystem::new(SystemConfig::default(), scheme, 42)
    }

    #[test]
    fn runs_a_simple_trace() {
        let mut sys = system(Scheme::Cobcm);
        let r = sys.run_trace(store_trace(100, 64));
        assert_eq!(r.instructions(), 1000);
        assert!(r.cycles > 0);
        assert_eq!(r.stats.get(counters::STORES), 100);
        assert_eq!(r.stats.get(counters::PERSISTS), 100);
    }

    #[test]
    fn coalescing_reduces_allocations() {
        let mut sys = system(Scheme::Cobcm);
        // 100 stores to the same block: 1 allocation.
        let r = sys.run_trace(store_trace(100, 8).into_iter().map(|mut t| {
            if let Some(a) = &mut t.access {
                a.addr = Address(0x10000 + (a.addr.0 - 0x10000) % 64);
            }
            t
        }));
        assert_eq!(r.stats.get(counters::ALLOCATIONS), 1);
        assert_eq!(r.stats.get(counters::PERSISTS), 100);
    }

    #[test]
    fn eager_schemes_cost_more_cycles() {
        // Mix fresh blocks with reuse so both the allocation path (BMT,
        // OTP) and the coalescing hit path (per-store MAC for NoGap)
        // contribute.
        let trace: Vec<TraceItem> = (0..600u64)
            .map(|i| {
                // Alternate fresh blocks (allocation path) with a 16-block
                // hot set (coalescing hits).
                let addr = if i % 2 == 0 {
                    Address(0x100_0000 + i * 64)
                } else {
                    Address(0x10000 + (i % 16) * 64)
                };
                TraceItem::then(9, Access::store(addr, i))
            })
            .collect();
        let mut results = Vec::new();
        for scheme in [
            Scheme::Bbb,
            Scheme::Cobcm,
            Scheme::Bcm,
            Scheme::Cm,
            Scheme::NoGap,
        ] {
            let mut sys = system(scheme);
            results.push((scheme, sys.run_trace(trace.clone()).cycles));
        }
        let cycles: FxHashMap<Scheme, u64> = results.into_iter().collect();
        assert!(cycles[&Scheme::Cobcm] >= cycles[&Scheme::Bbb]);
        assert!(cycles[&Scheme::Bcm] > cycles[&Scheme::Cobcm]);
        assert!(cycles[&Scheme::Cm] > cycles[&Scheme::Bcm]);
        assert!(cycles[&Scheme::NoGap] > cycles[&Scheme::Cm]);
    }

    #[test]
    fn crash_then_recover_is_consistent_for_all_schemes() {
        for scheme in Scheme::ALL {
            let mut sys = system(scheme);
            sys.run_trace(store_trace(200, 64));
            sys.crash(CrashKind::PowerLoss, DrainPolicy::DrainAll)
                .unwrap();
            let rec = sys.recover();
            assert!(
                rec.is_consistent(),
                "{scheme}: root_ok={} macs={:?} pts={:?}",
                rec.root_ok,
                rec.mac_failures.len(),
                rec.plaintext_mismatches.len()
            );
            assert!(rec.blocks_checked > 0, "{scheme}: nothing persisted");
        }
    }

    #[test]
    fn tampering_is_detected_after_crash() {
        let mut sys = system(Scheme::Cobcm);
        sys.run_trace(store_trace(50, 64));
        sys.crash(CrashKind::PowerLoss, DrainPolicy::DrainAll)
            .unwrap();
        let victim = sys.nvm_store().data_blocks().next().unwrap();
        sys.nvm_store_mut().tamper_data(victim, 0, 0);
        let rec = sys.recover();
        assert!(!rec.integrity_ok());
        assert!(rec.mac_failures.contains(&victim));
    }

    #[test]
    fn replayed_tuple_is_caught_by_tree() {
        let mut sys = system(Scheme::Cobcm);
        let block = Address(0x10000).block();
        // First round: persist version 1 everywhere.
        sys.run_trace(vec![TraceItem::then(9, Access::store(Address(0x10000), 1))]);
        sys.crash(CrashKind::PowerLoss, DrainPolicy::DrainAll)
            .unwrap();
        let old_data = sys.nvm_store().read_data(block);
        let old_mac = sys.nvm_store().read_mac(block);
        // Second round: overwrite with version 2.
        sys.run_trace(vec![TraceItem::then(9, Access::store(Address(0x10000), 2))]);
        sys.crash(CrashKind::PowerLoss, DrainPolicy::DrainAll)
            .unwrap();
        // Replay the whole old (data, MAC) tuple; the stale counter in the
        // tuple no longer matches the persisted counter block.
        sys.nvm_store_mut().replay_tuple(block, old_data, old_mac);
        let rec = sys.recover();
        assert!(!rec.integrity_ok(), "replay must be detected");
    }

    #[test]
    fn app_crash_drain_process_keeps_other_entries() {
        let mut sys = system(Scheme::Cobcm);
        let a1 = Asid(1);
        let a2 = Asid(2);
        let t1 = TraceItem::then(9, Access::store(Address(0x10000), 1).with_asid(a1));
        let t2 = TraceItem::then(9, Access::store(Address(0x20000), 2).with_asid(a2));
        sys.run_trace(vec![t1, t2]);
        assert_eq!(sys.persist_buffer().occupancy(), 2);
        let report = sys
            .crash(CrashKind::ApplicationCrash(a1), DrainPolicy::DrainProcess)
            .unwrap();
        assert_eq!(report.work.entries, 1);
        assert_eq!(sys.persist_buffer().occupancy(), 1);
        assert!(sys.persist_buffer().contains(Address(0x20000).block()));
    }

    #[test]
    fn drain_all_empties_buffer_on_app_crash() {
        let mut sys = system(Scheme::Cobcm);
        let t1 = TraceItem::then(9, Access::store(Address(0x10000), 1).with_asid(Asid(1)));
        let t2 = TraceItem::then(9, Access::store(Address(0x20000), 2).with_asid(Asid(2)));
        sys.run_trace(vec![t1, t2]);
        sys.crash(CrashKind::ApplicationCrash(Asid(1)), DrainPolicy::DrainAll)
            .unwrap();
        assert_eq!(sys.persist_buffer().occupancy(), 0);
    }

    #[test]
    fn brown_out_crash_accounts_every_lost_block() {
        let mut sys = system(Scheme::Cobcm);
        // Round 1: persist version 1 of every block so lost blocks have
        // an *older* durable image to fall back to.
        sys.run_trace(store_trace(40, 4096));
        sys.crash(CrashKind::PowerLoss, DrainPolicy::DrainAll)
            .unwrap();
        // Round 2: overwrite with different values, then brown out
        // mid-drain.
        sys.run_trace(
            (0..40u64)
                .map(|i| TraceItem::then(9, Access::store(Address(0x10000 + i * 4096), i + 500))),
        );
        let occupancy = sys.persist_buffer().occupancy() as u64;
        assert!(occupancy > 4, "need buffered entries to lose");
        let budget = 3u64;
        let report = sys
            .crash_with_budget(CrashKind::PowerLoss, DrainPolicy::DrainAll, Some(budget))
            .unwrap();
        assert_eq!(report.work.entries, budget);
        assert_eq!(report.lost_block_count(), occupancy - budget);
        assert!(!report.drain_was_complete());
        assert_eq!(sys.persist_buffer().occupancy(), 0, "power loss empties PB");

        // Recovery with accounting: integrity holds, lost blocks read
        // back stale but are classified, not reported as corruption.
        let rec = sys.recover_with(&report.lost_blocks);
        assert!(rec.integrity_ok(), "partial drain keeps tuple consistent");
        assert!(rec.is_consistent(), "lost staleness is accounted");
        assert!(
            !rec.lost_stale.is_empty(),
            "at least one lost block had an older durable image"
        );
        // Without accounting the same state shows plaintext mismatches.
        let unaccounted = sys.recover();
        assert_eq!(unaccounted.plaintext_mismatches.len(), rec.lost_stale.len());

        // Resync golden to the durable image; now everything verifies.
        let lost = report.lost_blocks.clone();
        sys.resync_lost_golden(&lost);
        assert!(sys.recover().is_consistent());
    }

    #[test]
    fn budgeted_crash_with_enough_budget_loses_nothing() {
        let mut sys = system(Scheme::Cobcm);
        sys.run_trace(store_trace(30, 4096));
        let occupancy = sys.persist_buffer().occupancy() as u64;
        let report = sys
            .crash_with_budget(CrashKind::PowerLoss, DrainPolicy::DrainAll, Some(occupancy))
            .unwrap();
        assert!(report.drain_was_complete());
        assert_eq!(report.work.entries, occupancy);
        assert!(sys.recover().is_consistent());
    }

    #[test]
    fn recovery_verdicts_cover_every_checked_block() {
        let mut sys = system(Scheme::Cobcm);
        sys.run_trace(store_trace(60, 64));
        sys.crash(CrashKind::PowerLoss, DrainPolicy::DrainAll)
            .unwrap();
        let rec = sys.recover();
        assert_eq!(rec.verdicts.len() as u64, rec.blocks_checked);
        assert!(rec
            .verdicts
            .iter()
            .all(|(_, v)| *v == BlockVerdict::Verified));
        let blocks: Vec<_> = rec.verdicts.iter().map(|(b, _)| b.index()).collect();
        let mut sorted = blocks.clone();
        sorted.sort_unstable();
        assert_eq!(blocks, sorted, "verdicts are in block order");
    }

    #[test]
    fn watermark_drains_keep_occupancy_bounded() {
        let mut sys = system(Scheme::Cobcm);
        sys.run_trace(store_trace(500, 64));
        assert!(sys.persist_buffer().occupancy() <= sys.config().secpb.entries);
        assert!(
            sys.stats().get(counters::DRAINS) > 0,
            "watermark drains must fire"
        );
    }

    #[test]
    fn bmt_updates_coalesce_with_buffer() {
        // Repeated stores to few blocks: far fewer BMT root updates than
        // stores (Figure 8's effect).
        let mut sys = system(Scheme::Cm);
        let trace: Vec<TraceItem> = (0..400u64)
            .map(|i| TraceItem::then(9, Access::store(Address(0x10000 + (i % 4) * 64), i)))
            .collect();
        let r = sys.run_trace(trace);
        let updates = r.stats.get(counters::ALLOCATIONS);
        assert!(
            updates < 40,
            "400 stores to 4 blocks should allocate rarely, got {updates}"
        );
    }

    #[test]
    fn sp_persists_every_store() {
        let mut sys = system(Scheme::Sp);
        let r = sys.run_trace(store_trace(20, 64));
        assert_eq!(r.stats.get(counters::PERSISTS), 20);
        assert_eq!(r.stats.get(counters::BMT_ROOT_UPDATES), 20);
        sys.crash(CrashKind::PowerLoss, DrainPolicy::DrainAll)
            .unwrap();
        assert!(sys.recover().is_consistent());
    }

    #[test]
    fn observer_sees_gap_timing() {
        let mut sys = system(Scheme::Cobcm);
        sys.run_trace(store_trace(100, 64));
        let report = sys
            .crash(CrashKind::PowerLoss, DrainPolicy::DrainAll)
            .unwrap();
        assert!(report.secsync_complete_at >= report.drain_complete_at);
        assert!(report.drain_complete_at >= report.at);
    }

    #[test]
    fn page_overflow_triggers_reencryption_and_stays_consistent() {
        let mut cfg = SystemConfig::default();
        cfg.secpb.entries = 4;
        let mut sys = SecureSystem::new(cfg, Scheme::Cobcm, 7);
        // Hammer two blocks in the same page so their entries thrash and
        // the minor counters climb past 127.
        let mut trace = Vec::new();
        for i in 0..600u64 {
            trace.push(TraceItem::then(
                0,
                Access::store(Address(0x40000 + (i % 2) * 64), i),
            ));
            // Interleave stores to other pages to force drains (thrash).
            trace.push(TraceItem::then(
                0,
                Access::store(Address(0x80000 + (i % 8) * 4096), i),
            ));
        }
        let r = sys.run_trace(trace);
        assert!(
            r.stats.get(counters::PAGE_OVERFLOWS) > 0,
            "expected at least one minor-counter overflow"
        );
        sys.crash(CrashKind::PowerLoss, DrainPolicy::DrainAll)
            .unwrap();
        assert!(sys.recover().is_consistent());
    }

    #[test]
    fn finish_time_waits_for_store_buffer() {
        let mut sys = system(Scheme::NoGap);
        sys.run_trace(store_trace(10, 64));
        assert!(sys.finish_time() >= sys.now);
    }

    #[test]
    fn recovery_time_grows_with_persistent_footprint() {
        let measure = |stores: u64| {
            let mut sys = system(Scheme::Cobcm);
            sys.run_trace(store_trace(stores, 4096));
            sys.crash(CrashKind::PowerLoss, DrainPolicy::DrainAll)
                .unwrap();
            sys.estimated_recovery_cycles()
        };
        let small = measure(20);
        let large = measure(400);
        assert!(small > 0);
        assert!(
            large > 5 * small,
            "recovery time must scale: {small} vs {large}"
        );
    }

    #[test]
    fn empty_system_recovers_instantly() {
        let sys = system(Scheme::Cobcm);
        assert_eq!(sys.estimated_recovery_cycles(), 0);
    }

    #[test]
    fn blocking_verification_slows_memory_loads() {
        // A load stream with no reuse: every load misses to memory.
        let trace: Vec<TraceItem> = (0..500u64)
            .map(|i| TraceItem::then(9, Access::load(Address(0x800_0000 + i * 4096))))
            .collect();
        let run = |speculative: bool| {
            let cfg = SystemConfig::default().with_speculative_verification(speculative);
            let mut sys = SecureSystem::new(cfg, Scheme::Cobcm, 3);
            sys.run_trace(trace.clone())
        };
        let spec = run(true);
        let blocking = run(false);
        assert!(
            blocking.cycles > spec.cycles,
            "{} !> {}",
            blocking.cycles,
            spec.cycles
        );
        assert_eq!(blocking.stats.get("mem.blocking_verifications"), 500);
        assert_eq!(spec.stats.get("mem.blocking_verifications"), 0);
    }

    #[test]
    fn reset_measurement_starts_a_fresh_region() {
        let mut sys = system(Scheme::Cobcm);
        sys.run_trace(store_trace(100, 64));
        sys.reset_measurement();
        let r = sys.run_trace(store_trace(50, 64));
        assert_eq!(r.stats.get(counters::STORES), 50, "stats restart at zero");
        assert!(
            r.cycles > 0 && r.cycles < 100_000,
            "cycles measured from the region start"
        );
    }

    #[test]
    fn obcm_pays_double_buffer_access_on_allocation() {
        // Pure allocation stream with counter-cache hits: OBCM's extra
        // access is visible against BCM minus the OTP latency.
        let mut obcm = system(Scheme::Obcm);
        let r = obcm.run_trace(store_trace(100, 64));
        assert_eq!(r.stats.get(counters::ALLOCATIONS), 100);
        assert_eq!(r.stats.get(counters::COUNTER_INCREMENTS), 100);
        // OBCM generates no OTPs at store time.
        // (They appear only at drains.)
        let drains = r.stats.get(counters::DRAINS);
        assert_eq!(r.stats.get(counters::OTPS), drains);
    }

    #[test]
    fn breakdown_sums_to_cycles_for_all_schemes() {
        for scheme in Scheme::ALL {
            let mut sys = system(scheme);
            let r = sys.run_trace(store_trace(300, 64));
            assert_eq!(r.breakdown.total(), r.cycles, "{scheme}");
        }
    }

    #[test]
    fn breakdown_sums_after_measurement_reset() {
        for scheme in Scheme::ALL {
            let mut sys = system(scheme);
            sys.run_trace(store_trace(100, 64));
            sys.reset_measurement();
            let r = sys.run_trace(store_trace(200, 64));
            assert_eq!(r.breakdown.total(), r.cycles, "{scheme}");
        }
    }

    #[test]
    fn histograms_and_spans_populate() {
        let mut sys = system(Scheme::Cobcm);
        sys.enable_trace_capture(1 << 16);
        let r = sys.run_trace(store_trace(500, 64));
        let occ = r
            .stats
            .histogram(histograms::OCCUPANCY)
            .expect("occupancy recorded");
        assert_eq!(occ.total(), r.stats.get(counters::PERSISTS));
        let wpe = r
            .stats
            .histogram(histograms::WRITES_PER_ENTRY)
            .expect("NWPE recorded");
        assert_eq!(wpe.total(), r.stats.get(counters::DRAINS));
        let lat = r
            .stats
            .histogram(histograms::DRAIN_LATENCY)
            .expect("latency recorded");
        assert_eq!(lat.total(), r.stats.get(counters::DRAINS));
        assert_eq!(sys.tracer().count(Phase::StorePersist), 500);
        assert!(sys.tracer().count(Phase::Drain) > 0);
        assert!(sys.tracer().cycles(Phase::Drain) > 0);
        assert!(!sys.tracer().events().is_empty(), "capture was enabled");
    }

    #[test]
    fn sp_works_with_forest_trees() {
        for kind in [TreeKind::Dbmf, TreeKind::Sbmf] {
            let mut sys = SecureSystem::with_tree(SystemConfig::default(), Scheme::Sp, kind, 5);
            sys.run_trace(store_trace(40, 4096));
            sys.crash(CrashKind::PowerLoss, DrainPolicy::DrainAll)
                .unwrap();
            assert!(sys.recover().is_consistent(), "{kind:?}");
        }
    }

    #[test]
    fn cm_with_forest_recovers() {
        for kind in [TreeKind::Dbmf, TreeKind::Sbmf] {
            let mut sys = SecureSystem::with_tree(SystemConfig::default(), Scheme::Cm, kind, 6);
            sys.run_trace(store_trace(120, 4096));
            sys.crash(CrashKind::PowerLoss, DrainPolicy::DrainAll)
                .unwrap();
            assert!(sys.recover().is_consistent(), "{kind:?}");
        }
    }
}
