//! The whole machine: core, caches, SecPB, memory controller, and NVM.
//!
//! [`SecureSystem`] replays instruction traces against one of the
//! Table II schemes, producing both *timing* (execution cycles, the
//! quantity behind Table IV and Figures 6/7/9) and *function* (a real
//! encrypted, MAC'd, BMT-protected persistent image that post-crash
//! recovery decrypts and verifies).  The functional state lives in the
//! shared [`PersistDomain`] kernel; this module owns the timing state and
//! the trace-replay loop, the per-store pipeline lives in
//! [`pipeline`](crate::pipeline), and the crash/recovery kernel in
//! [`recovery`](crate::recovery).
//!
//! ## Timing model
//!
//! The core retires up to `retire_width` instructions per cycle.  Stores
//! retire into a store buffer and are released to the SecPB serially and
//! in order (strict persistency); the acceptance latency of a store is the
//! scheme's *early* metadata work from Figure 4.  The core feels that work
//! two ways: a configurable exposure fraction models store bursts defeating
//! the buffer's latency hiding, and full back-pressure kicks in when the
//! store buffer or the SecPB itself fills.  Draining to the memory
//! controller proceeds in the background through a pipelined drain engine
//! (PLP-style overlapped tree updates); a slot frees only when the full
//! tuple is durable, so NVM write bandwidth backpressures the buffer and
//! produces the COBCM "backflow" stalls the paper reports for
//! write-intensive workloads.

use std::collections::VecDeque;

use secpb_mem::hierarchy::Hierarchy;
use secpb_mem::metadata::MetadataCaches;
use secpb_mem::nvm::NvmTiming;
use secpb_mem::store::NvmStore;
use secpb_mem::wpq::WritePendingQueue;
use secpb_sim::addr::BlockAddr;
use secpb_sim::config::{MetadataMode, SystemConfig};
use secpb_sim::cycle::Cycle;
use secpb_sim::stats::{HistId, StatId, Stats};
use secpb_sim::telemetry::TelemetrySink;
use secpb_sim::trace::{AccessKind, TraceItem};
use secpb_sim::tracer::Tracer;

use crate::buffer::SecPb;
use crate::domain::{DomainKeys, PersistDomain};
use crate::drain::DrainEngine;
use crate::metrics::{counters, histograms, CycleBreakdown, RunResult};
use crate::policy::{PersistencePolicy, PolicyState};
use crate::scheme::Scheme;
use crate::tree::{IntegrityTree, TreeKind};

/// Typed handles for every hot-path counter and histogram, resolved once
/// at construction so the store/drain paths never hash a counter name.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StatHandles {
    pub(crate) instructions: StatId,
    pub(crate) loads: StatId,
    pub(crate) stores: StatId,
    pub(crate) persists: StatId,
    pub(crate) allocations: StatId,
    pub(crate) drains: StatId,
    pub(crate) full_stall_cycles: StatId,
    pub(crate) bmt_root_updates: StatId,
    pub(crate) bmt_node_hashes: StatId,
    pub(crate) otps: StatId,
    pub(crate) macs: StatId,
    pub(crate) ciphertexts: StatId,
    pub(crate) counter_increments: StatId,
    pub(crate) counter_misses: StatId,
    pub(crate) page_overflows: StatId,
    pub(crate) load_misses: StatId,
    pub(crate) l1_hits: StatId,
    pub(crate) l2_hits: StatId,
    pub(crate) l3_hits: StatId,
    pub(crate) blocking_verifications: StatId,
    pub(crate) sb_stall_cycles: StatId,
    pub(crate) early_bmt_walks: StatId,
    pub(crate) late_bmt_node_hashes: StatId,
    pub(crate) anomalies: StatId,
    pub(crate) occupancy: HistId,
    pub(crate) drain_latency: HistId,
    pub(crate) entry_lifetime: HistId,
    pub(crate) writes_per_entry: HistId,
}

impl StatHandles {
    fn register(stats: &mut Stats) -> Self {
        StatHandles {
            instructions: stats.counter(counters::INSTRUCTIONS),
            loads: stats.counter(counters::LOADS),
            stores: stats.counter(counters::STORES),
            persists: stats.counter(counters::PERSISTS),
            allocations: stats.counter(counters::ALLOCATIONS),
            drains: stats.counter(counters::DRAINS),
            full_stall_cycles: stats.counter(counters::FULL_STALL_CYCLES),
            bmt_root_updates: stats.counter(counters::BMT_ROOT_UPDATES),
            bmt_node_hashes: stats.counter(counters::BMT_NODE_HASHES),
            otps: stats.counter(counters::OTPS),
            macs: stats.counter(counters::MACS),
            ciphertexts: stats.counter(counters::CIPHERTEXTS),
            counter_increments: stats.counter(counters::COUNTER_INCREMENTS),
            counter_misses: stats.counter(counters::COUNTER_MISSES),
            page_overflows: stats.counter(counters::PAGE_OVERFLOWS),
            load_misses: stats.counter(counters::LOAD_MISSES),
            l1_hits: stats.counter(counters::L1_HITS),
            l2_hits: stats.counter(counters::L2_HITS),
            l3_hits: stats.counter(counters::L3_HITS),
            blocking_verifications: stats.counter(counters::BLOCKING_VERIFICATIONS),
            sb_stall_cycles: stats.counter(counters::SB_STALL_CYCLES),
            early_bmt_walks: stats.counter(counters::EARLY_BMT_WALKS),
            late_bmt_node_hashes: stats.counter(counters::LATE_BMT_NODE_HASHES),
            anomalies: stats.counter(counters::ANOMALIES),
            occupancy: stats.histogram_id(histograms::OCCUPANCY),
            drain_latency: stats.histogram_id(histograms::DRAIN_LATENCY),
            entry_lifetime: stats.histogram_id(histograms::ENTRY_LIFETIME),
            writes_per_entry: stats.histogram_id(histograms::WRITES_PER_ENTRY),
        }
    }
}

/// Attribution target for one core-clock advance (see [`CycleBreakdown`]).
#[derive(Debug, Clone, Copy)]
pub(crate) enum Attr {
    Retire,
    Load,
    StoreAccept,
    SbStall,
    NogapWait,
}

/// The complete simulated system.
pub struct SecureSystem {
    pub(crate) cfg: SystemConfig,
    pub(crate) scheme: Scheme,

    // ---- timing state ----
    pub(crate) now: Cycle,
    /// Cycle at which the current measurement region began (see
    /// [`reset_measurement`](Self::reset_measurement)).
    pub(crate) measure_from: Cycle,
    pub(crate) frac: f64,
    pub(crate) pb_busy_until: Cycle,
    pub(crate) bmt_busy_until: Cycle,
    pub(crate) store_buffer: VecDeque<Cycle>,
    pub(crate) hierarchy: Hierarchy,
    pub(crate) metadata: MetadataCaches,
    pub(crate) wpq: WritePendingQueue,
    pub(crate) nvm_timing: NvmTiming,
    pub(crate) drain_engine: DrainEngine,

    // ---- functional state ----
    pub(crate) pb: SecPb,
    /// The shared security/persistence kernel (golden state, counters,
    /// NVM image, crypto engines, integrity tree).
    pub(crate) domain: PersistDomain,

    pub(crate) stats: Stats,
    pub(crate) h: StatHandles,
    pub(crate) tracer: Tracer,
    pub(crate) breakdown: CycleBreakdown,
}

impl std::fmt::Debug for SecureSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecureSystem")
            .field("scheme", &self.scheme)
            .field("now", &self.now)
            .field("pb_occupancy", &self.pb.occupancy())
            .finish_non_exhaustive()
    }
}

impl SecureSystem {
    /// Builds a system with the default monolithic BMT.
    ///
    /// `key_seed` derives the encryption/MAC/tree keys (any value; runs
    /// with equal seeds are bit-identical).
    pub fn new(cfg: SystemConfig, scheme: Scheme, key_seed: u64) -> Self {
        Self::with_tree(cfg, scheme, TreeKind::Monolithic, key_seed)
    }

    /// Builds a system with an explicit integrity-tree organisation
    /// (Figure 9's DBMF/SBMF variants).
    ///
    /// # Panics
    ///
    /// Panics if the persistence-policy knobs in `cfg.security`
    /// (`triad_levels`, `shadow_counters`) are illegal for this tree;
    /// use [`build`](Self::build) to get a typed error instead.  The
    /// default knobs are always legal.
    pub fn with_tree(
        cfg: SystemConfig,
        scheme: Scheme,
        tree_kind: TreeKind,
        key_seed: u64,
    ) -> Self {
        Self::build(cfg, scheme, tree_kind, key_seed).expect("invalid persistence policy")
    }

    /// [`with_tree`](Self::with_tree) with policy validation surfaced as
    /// a value: the persistence policy is resolved from the scheme plus
    /// the `triad_levels`/`shadow_counters` knobs and rejected with a
    /// typed [`ConfigError::Policy`](crate::crash::ConfigError) when the
    /// combination is illegal (depth beyond the tree height, selective
    /// depth on a forest).
    ///
    /// # Errors
    ///
    /// [`ConfigError::Policy`](crate::crash::ConfigError) on an illegal
    /// policy assignment.
    pub fn build(
        cfg: SystemConfig,
        scheme: Scheme,
        tree_kind: TreeKind,
        key_seed: u64,
    ) -> Result<Self, crate::crash::ConfigError> {
        let policy = PersistencePolicy::resolve(scheme, &cfg.security, tree_kind)?;
        let domain = PersistDomain::new(
            DomainKeys::SECPB,
            tree_kind,
            cfg.security.bmt_levels,
            cfg.security.metadata_mode,
            cfg.security.crypto_backend,
            key_seed,
            policy,
        );
        let mut stats = Stats::new();
        let h = StatHandles::register(&mut stats);
        Ok(SecureSystem {
            hierarchy: Hierarchy::new(&cfg),
            metadata: MetadataCaches::new(&cfg),
            wpq: WritePendingQueue::new(cfg.wpq_entries),
            nvm_timing: NvmTiming::new(cfg.nvm),
            drain_engine: DrainEngine::new(),
            pb: SecPb::new(cfg.secpb),
            domain,
            stats,
            h,
            tracer: Tracer::new(),
            breakdown: CycleBreakdown::default(),
            now: Cycle::ZERO,
            measure_from: Cycle::ZERO,
            frac: 0.0,
            pb_busy_until: Cycle::ZERO,
            bmt_busy_until: Cycle::ZERO,
            store_buffer: VecDeque::new(),
            scheme,
            cfg,
        })
    }

    /// The persistence policy driving this system.
    pub fn policy(&self) -> PersistencePolicy {
        self.domain.policy()
    }

    /// Analytic write-amplification counters accumulated by the policy.
    pub fn policy_state(&self) -> &PolicyState {
        self.domain.policy_state()
    }

    /// The scheme under simulation.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Whether the security-metadata engine is eager or lazy.
    pub fn metadata_mode(&self) -> MetadataMode {
        self.domain.mode
    }

    /// The integrity tree (for inspecting fold statistics).
    pub fn integrity_tree(&self) -> &IntegrityTree {
        &self.domain.tree
    }

    /// Pad-cache hit/miss statistics, when the lazy engine is active.
    pub fn pad_cache_stats(&self) -> Option<secpb_crypto::memo::MemoStats> {
        self.domain.otp_engine.pad_cache().map(|c| c.stats())
    }

    /// Combined memo-cache statistics (pad cache + counter-digest memo).
    pub fn memo_stats(&self) -> secpb_crypto::memo::MemoStats {
        self.domain.memo_stats()
    }

    /// Folds all deferred integrity-tree work and persists the root —
    /// the observation point that makes lazy and eager states identical.
    /// Returns the analytic hash count charged to the sec-sync gap (BMF
    /// root-cache folds; zero for a monolithic tree in both modes).
    pub fn sync_metadata(&mut self) -> u64 {
        let sync_hashes = self.domain.sync_root(self.scheme.is_secure());
        self.stats.add(self.h.bmt_node_hashes, sync_hashes);
        sync_hashes
    }

    /// Raw statistics accumulated so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The cycle-attribution tracer (span aggregates, and captured events
    /// when capture is enabled).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Enables span-event capture (for Chrome-trace export) with the given
    /// buffer capacity; aggregates are always maintained regardless.
    /// Discards anything traced so far (but keeps an attached telemetry
    /// sink).
    pub fn enable_trace_capture(&mut self, capacity: usize) {
        let sink = self.tracer.sink().cloned();
        self.tracer = Tracer::with_capture(capacity);
        self.tracer.set_sink(sink);
    }

    /// Attaches (or with `None` detaches) a live telemetry sink: every
    /// stat delta, histogram sample, and span — plus crash/drain/recovery
    /// markers — is mirrored into the ring.  Events observe, never steer:
    /// a run with a sink attached is byte-identical to one without.
    pub fn set_telemetry(&mut self, sink: Option<TelemetrySink>) {
        self.stats.set_sink(sink.clone());
        self.tracer.set_sink(sink);
    }

    /// The attached telemetry sink, if any.
    pub fn telemetry(&self) -> Option<&TelemetrySink> {
        self.stats.sink()
    }

    /// Where the measured cycles have gone so far.  `drain_wait` is only
    /// computed when a run completes, so this in-progress view omits it.
    pub fn cycle_breakdown(&self) -> CycleBreakdown {
        self.breakdown
    }

    /// Per-level hit counts from the data-cache hierarchy.
    pub fn hierarchy_stats(&self) -> secpb_mem::hierarchy::HierarchyStats {
        self.hierarchy.stats()
    }

    /// The SecPB (for occupancy inspection in tests).
    pub fn persist_buffer(&self) -> &SecPb {
        &self.pb
    }

    /// The durable state (for tamper injection in recovery tests).
    pub fn nvm_store_mut(&mut self) -> &mut NvmStore {
        &mut self.domain.nvm
    }

    /// The durable state, read-only.
    pub fn nvm_store(&self) -> &NvmStore {
        &self.domain.nvm
    }

    /// The architecturally-expected plaintext of a block (all stores
    /// applied).
    pub fn expected_plaintext(&self, block: BlockAddr) -> [u8; 64] {
        self.domain.expected_plaintext(block)
    }

    // ---------------------------------------------------------------
    // Trace replay
    // ---------------------------------------------------------------

    /// Replays a trace to completion and returns the run result (cycles
    /// counted since the last [`reset_measurement`](Self::reset_measurement),
    /// or from time zero).
    pub fn run_trace<I: IntoIterator<Item = TraceItem>>(&mut self, items: I) -> RunResult {
        for item in items {
            self.step(item);
        }
        let end = self.finish_time();
        let mut breakdown = self.breakdown;
        breakdown.drain_wait = end.since(self.now.max(self.measure_from));
        RunResult {
            scheme: self.scheme,
            cycles: end.since(self.measure_from),
            breakdown,
            stats: self.stats.clone(),
        }
    }

    /// Ends the warm-up region: zeroes the statistics and restarts the
    /// cycle count, keeping all microarchitectural state (cache and SecPB
    /// contents, counters, NVM image) warm — the equivalent of the
    /// paper's fast-forward to a representative SimPoint region.
    pub fn reset_measurement(&mut self) {
        self.measure_from = self.finish_time();
        self.stats.reset();
        self.tracer.reset();
        self.breakdown = CycleBreakdown::default();
        self.hierarchy.reset_stats();
    }

    /// Executes a single trace item.
    pub fn step(&mut self, item: TraceItem) {
        if item.non_mem_instrs > 0 {
            self.stats
                .add(self.h.instructions, u64::from(item.non_mem_instrs));
            self.advance(
                f64::from(item.non_mem_instrs) / f64::from(self.cfg.core.retire_width),
                Attr::Retire,
            );
        }
        if let Some(access) = item.access {
            self.stats.inc(self.h.instructions);
            self.advance(1.0 / f64::from(self.cfg.core.retire_width), Attr::Retire);
            match access.kind {
                AccessKind::Load => self.do_load(access),
                AccessKind::Store => self.do_store(access),
            }
        }
    }

    /// The execution time if the trace ended now: the core must wait for
    /// outstanding store-buffer entries to persist.
    pub fn finish_time(&self) -> Cycle {
        let sb_tail = self.store_buffer.back().copied().unwrap_or(Cycle::ZERO);
        self.now.max(self.pb_busy_until).max(sb_tail)
    }

    pub(crate) fn advance(&mut self, cycles: f64, attr: Attr) {
        self.frac += cycles;
        // `frac` is a sum of non-negative latencies, so the truncating
        // cast equals `floor()` exactly — without the libm call the
        // baseline (pre-SSE4.1) target would emit for `floor`.
        let whole = self.frac as u64;
        if whole >= 1 {
            let old = self.now;
            self.now += whole;
            self.frac -= whole as f64;
            self.attribute(attr, old);
        }
    }

    /// Credits the clock movement from `old` to `self.now` to `attr`,
    /// clipped to the measurement region so the breakdown sums exactly to
    /// the measured cycles.
    pub(crate) fn attribute(&mut self, attr: Attr, old: Cycle) {
        let delta = self
            .now
            .max(self.measure_from)
            .since(old.max(self.measure_from));
        if delta == 0 {
            return;
        }
        match attr {
            Attr::Retire => self.breakdown.retire += delta,
            Attr::Load => self.breakdown.load += delta,
            Attr::StoreAccept => self.breakdown.store_accept += delta,
            Attr::SbStall => self.breakdown.sb_stall += delta,
            Attr::NogapWait => self.breakdown.nogap_wait += delta,
        }
    }
}

#[cfg(test)]
#[path = "system_tests.rs"]
mod tests;
