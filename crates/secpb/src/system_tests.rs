//! Tests for the single-core system (trace replay, pipeline, crash and
//! recovery), kept in their own file so `system.rs` stays focused.

use secpb_sim::addr::{Address, Asid};
use secpb_sim::config::SystemConfig;
use secpb_sim::fxhash::FxHashMap;
use secpb_sim::trace::{Access, TraceItem};
use secpb_sim::tracer::Phase;

use crate::crash::{BlockVerdict, CrashKind, DrainPolicy};
use crate::facade::PersistSystem as _;
use crate::metrics::{counters, histograms};
use crate::scheme::Scheme;
use crate::system::SecureSystem;
use crate::tree::TreeKind;

fn store_trace(n: u64, stride: u64) -> Vec<TraceItem> {
    (0..n)
        .map(|i| TraceItem::then(9, Access::store(Address(0x10000 + i * stride), i + 1)))
        .collect()
}

fn system(scheme: Scheme) -> SecureSystem {
    SecureSystem::new(SystemConfig::default(), scheme, 42)
}

#[test]
fn runs_a_simple_trace() {
    let mut sys = system(Scheme::Cobcm);
    let r = sys.run_trace(store_trace(100, 64));
    assert_eq!(r.instructions(), 1000);
    assert!(r.cycles > 0);
    assert_eq!(r.stats.get(counters::STORES), 100);
    assert_eq!(r.stats.get(counters::PERSISTS), 100);
}

#[test]
fn coalescing_reduces_allocations() {
    let mut sys = system(Scheme::Cobcm);
    // 100 stores to the same block: 1 allocation.
    let r = sys.run_trace(store_trace(100, 8).into_iter().map(|mut t| {
        if let Some(a) = &mut t.access {
            a.addr = Address(0x10000 + (a.addr.0 - 0x10000) % 64);
        }
        t
    }));
    assert_eq!(r.stats.get(counters::ALLOCATIONS), 1);
    assert_eq!(r.stats.get(counters::PERSISTS), 100);
}

#[test]
fn eager_schemes_cost_more_cycles() {
    // Mix fresh blocks with reuse so both the allocation path (BMT,
    // OTP) and the coalescing hit path (per-store MAC for NoGap)
    // contribute.
    let trace: Vec<TraceItem> = (0..600u64)
        .map(|i| {
            // Alternate fresh blocks (allocation path) with a 16-block
            // hot set (coalescing hits).
            let addr = if i % 2 == 0 {
                Address(0x100_0000 + i * 64)
            } else {
                Address(0x10000 + (i % 16) * 64)
            };
            TraceItem::then(9, Access::store(addr, i))
        })
        .collect();
    let mut results = Vec::new();
    for scheme in [
        Scheme::Bbb,
        Scheme::Cobcm,
        Scheme::Bcm,
        Scheme::Cm,
        Scheme::NoGap,
    ] {
        let mut sys = system(scheme);
        results.push((scheme, sys.run_trace(trace.clone()).cycles));
    }
    let cycles: FxHashMap<Scheme, u64> = results.into_iter().collect();
    assert!(cycles[&Scheme::Cobcm] >= cycles[&Scheme::Bbb]);
    assert!(cycles[&Scheme::Bcm] > cycles[&Scheme::Cobcm]);
    assert!(cycles[&Scheme::Cm] > cycles[&Scheme::Bcm]);
    assert!(cycles[&Scheme::NoGap] > cycles[&Scheme::Cm]);
}

#[test]
fn crash_then_recover_is_consistent_for_all_schemes() {
    for scheme in Scheme::ALL {
        let mut sys = system(scheme);
        sys.run_trace(store_trace(200, 64));
        sys.crash(CrashKind::PowerLoss, DrainPolicy::DrainAll)
            .unwrap();
        let rec = sys.recover();
        assert!(
            rec.is_consistent(),
            "{scheme}: root_ok={} macs={:?} pts={:?}",
            rec.root_ok,
            rec.mac_failures.len(),
            rec.plaintext_mismatches.len()
        );
        assert!(rec.blocks_checked > 0, "{scheme}: nothing persisted");
    }
}

#[test]
fn tampering_is_detected_after_crash() {
    let mut sys = system(Scheme::Cobcm);
    sys.run_trace(store_trace(50, 64));
    sys.crash(CrashKind::PowerLoss, DrainPolicy::DrainAll)
        .unwrap();
    let victim = sys.nvm_store().data_blocks().next().unwrap();
    sys.nvm_store_mut().tamper_data(victim, 0, 0);
    let rec = sys.recover();
    assert!(!rec.integrity_ok());
    assert!(rec.mac_failures.contains(&victim));
}

#[test]
fn replayed_tuple_is_caught_by_tree() {
    let mut sys = system(Scheme::Cobcm);
    let block = Address(0x10000).block();
    // First round: persist version 1 everywhere.
    sys.run_trace(vec![TraceItem::then(9, Access::store(Address(0x10000), 1))]);
    sys.crash(CrashKind::PowerLoss, DrainPolicy::DrainAll)
        .unwrap();
    let old_data = sys.nvm_store().read_data(block);
    let old_mac = sys.nvm_store().read_mac(block);
    // Second round: overwrite with version 2.
    sys.run_trace(vec![TraceItem::then(9, Access::store(Address(0x10000), 2))]);
    sys.crash(CrashKind::PowerLoss, DrainPolicy::DrainAll)
        .unwrap();
    // Replay the whole old (data, MAC) tuple; the stale counter in the
    // tuple no longer matches the persisted counter block.
    sys.nvm_store_mut().replay_tuple(block, old_data, old_mac);
    let rec = sys.recover();
    assert!(!rec.integrity_ok(), "replay must be detected");
}

#[test]
fn app_crash_drain_process_keeps_other_entries() {
    let mut sys = system(Scheme::Cobcm);
    let a1 = Asid(1);
    let a2 = Asid(2);
    let t1 = TraceItem::then(9, Access::store(Address(0x10000), 1).with_asid(a1));
    let t2 = TraceItem::then(9, Access::store(Address(0x20000), 2).with_asid(a2));
    sys.run_trace(vec![t1, t2]);
    assert_eq!(sys.persist_buffer().occupancy(), 2);
    let report = sys
        .crash(CrashKind::ApplicationCrash(a1), DrainPolicy::DrainProcess)
        .unwrap();
    assert_eq!(report.work.entries, 1);
    assert_eq!(sys.persist_buffer().occupancy(), 1);
    assert!(sys.persist_buffer().contains(Address(0x20000).block()));
}

#[test]
fn drain_all_empties_buffer_on_app_crash() {
    let mut sys = system(Scheme::Cobcm);
    let t1 = TraceItem::then(9, Access::store(Address(0x10000), 1).with_asid(Asid(1)));
    let t2 = TraceItem::then(9, Access::store(Address(0x20000), 2).with_asid(Asid(2)));
    sys.run_trace(vec![t1, t2]);
    sys.crash(CrashKind::ApplicationCrash(Asid(1)), DrainPolicy::DrainAll)
        .unwrap();
    assert_eq!(sys.persist_buffer().occupancy(), 0);
}

#[test]
fn brown_out_crash_accounts_every_lost_block() {
    let mut sys = system(Scheme::Cobcm);
    // Round 1: persist version 1 of every block so lost blocks have
    // an *older* durable image to fall back to.
    sys.run_trace(store_trace(40, 4096));
    sys.crash(CrashKind::PowerLoss, DrainPolicy::DrainAll)
        .unwrap();
    // Round 2: overwrite with different values, then brown out
    // mid-drain.
    sys.run_trace(
        (0..40u64).map(|i| TraceItem::then(9, Access::store(Address(0x10000 + i * 4096), i + 500))),
    );
    let occupancy = sys.persist_buffer().occupancy() as u64;
    assert!(occupancy > 4, "need buffered entries to lose");
    let budget = 3u64;
    let report = sys
        .crash_with_budget(CrashKind::PowerLoss, DrainPolicy::DrainAll, Some(budget))
        .unwrap();
    assert_eq!(report.work.entries, budget);
    assert_eq!(report.lost_block_count(), occupancy - budget);
    assert!(!report.drain_was_complete());
    assert_eq!(sys.persist_buffer().occupancy(), 0, "power loss empties PB");

    // Recovery with accounting: integrity holds, lost blocks read
    // back stale but are classified, not reported as corruption.
    let rec = sys.recover_with(&report.lost_blocks);
    assert!(rec.integrity_ok(), "partial drain keeps tuple consistent");
    assert!(rec.is_consistent(), "lost staleness is accounted");
    assert!(
        !rec.lost_stale.is_empty(),
        "at least one lost block had an older durable image"
    );
    // Without accounting the same state shows plaintext mismatches.
    let unaccounted = sys.recover();
    assert_eq!(unaccounted.plaintext_mismatches.len(), rec.lost_stale.len());

    // Resync golden to the durable image; now everything verifies.
    let lost = report.lost_blocks.clone();
    sys.resync_lost_golden(&lost);
    assert!(sys.recover().is_consistent());
}

#[test]
fn budgeted_crash_with_enough_budget_loses_nothing() {
    let mut sys = system(Scheme::Cobcm);
    sys.run_trace(store_trace(30, 4096));
    let occupancy = sys.persist_buffer().occupancy() as u64;
    let report = sys
        .crash_with_budget(CrashKind::PowerLoss, DrainPolicy::DrainAll, Some(occupancy))
        .unwrap();
    assert!(report.drain_was_complete());
    assert_eq!(report.work.entries, occupancy);
    assert!(sys.recover().is_consistent());
}

#[test]
fn recovery_verdicts_cover_every_checked_block() {
    let mut sys = system(Scheme::Cobcm);
    sys.run_trace(store_trace(60, 64));
    sys.crash(CrashKind::PowerLoss, DrainPolicy::DrainAll)
        .unwrap();
    let rec = sys.recover();
    assert_eq!(rec.verdicts.len() as u64, rec.blocks_checked);
    assert!(rec
        .verdicts
        .iter()
        .all(|(_, v)| *v == BlockVerdict::Verified));
    let blocks: Vec<_> = rec.verdicts.iter().map(|(b, _)| b.index()).collect();
    let mut sorted = blocks.clone();
    sorted.sort_unstable();
    assert_eq!(blocks, sorted, "verdicts are in block order");
}

#[test]
fn watermark_drains_keep_occupancy_bounded() {
    let mut sys = system(Scheme::Cobcm);
    sys.run_trace(store_trace(500, 64));
    assert!(sys.persist_buffer().occupancy() <= sys.config().secpb.entries);
    assert!(
        sys.stats().get(counters::DRAINS) > 0,
        "watermark drains must fire"
    );
}

#[test]
fn bmt_updates_coalesce_with_buffer() {
    // Repeated stores to few blocks: far fewer BMT root updates than
    // stores (Figure 8's effect).
    let mut sys = system(Scheme::Cm);
    let trace: Vec<TraceItem> = (0..400u64)
        .map(|i| TraceItem::then(9, Access::store(Address(0x10000 + (i % 4) * 64), i)))
        .collect();
    let r = sys.run_trace(trace);
    let updates = r.stats.get(counters::ALLOCATIONS);
    assert!(
        updates < 40,
        "400 stores to 4 blocks should allocate rarely, got {updates}"
    );
}

#[test]
fn sp_persists_every_store() {
    let mut sys = system(Scheme::Sp);
    let r = sys.run_trace(store_trace(20, 64));
    assert_eq!(r.stats.get(counters::PERSISTS), 20);
    assert_eq!(r.stats.get(counters::BMT_ROOT_UPDATES), 20);
    sys.crash(CrashKind::PowerLoss, DrainPolicy::DrainAll)
        .unwrap();
    assert!(sys.recover().is_consistent());
}

#[test]
fn observer_sees_gap_timing() {
    let mut sys = system(Scheme::Cobcm);
    sys.run_trace(store_trace(100, 64));
    let report = sys
        .crash(CrashKind::PowerLoss, DrainPolicy::DrainAll)
        .unwrap();
    assert!(report.secsync_complete_at >= report.drain_complete_at);
    assert!(report.drain_complete_at >= report.at);
}

#[test]
fn page_overflow_triggers_reencryption_and_stays_consistent() {
    let mut cfg = SystemConfig::default();
    cfg.secpb.entries = 4;
    let mut sys = SecureSystem::new(cfg, Scheme::Cobcm, 7);
    // Hammer two blocks in the same page so their entries thrash and
    // the minor counters climb past 127.
    let mut trace = Vec::new();
    for i in 0..600u64 {
        trace.push(TraceItem::then(
            0,
            Access::store(Address(0x40000 + (i % 2) * 64), i),
        ));
        // Interleave stores to other pages to force drains (thrash).
        trace.push(TraceItem::then(
            0,
            Access::store(Address(0x80000 + (i % 8) * 4096), i),
        ));
    }
    let r = sys.run_trace(trace);
    assert!(
        r.stats.get(counters::PAGE_OVERFLOWS) > 0,
        "expected at least one minor-counter overflow"
    );
    sys.crash(CrashKind::PowerLoss, DrainPolicy::DrainAll)
        .unwrap();
    assert!(sys.recover().is_consistent());
}

#[test]
fn finish_time_waits_for_store_buffer() {
    let mut sys = system(Scheme::NoGap);
    sys.run_trace(store_trace(10, 64));
    assert!(sys.finish_time() >= sys.now);
}

#[test]
fn recovery_time_grows_with_persistent_footprint() {
    let measure = |stores: u64| {
        let mut sys = system(Scheme::Cobcm);
        sys.run_trace(store_trace(stores, 4096));
        sys.crash(CrashKind::PowerLoss, DrainPolicy::DrainAll)
            .unwrap();
        sys.estimated_recovery_cycles()
    };
    let small = measure(20);
    let large = measure(400);
    assert!(small > 0);
    assert!(
        large > 5 * small,
        "recovery time must scale: {small} vs {large}"
    );
}

#[test]
fn empty_system_recovers_instantly() {
    let sys = system(Scheme::Cobcm);
    assert_eq!(sys.estimated_recovery_cycles(), 0);
}

#[test]
fn blocking_verification_slows_memory_loads() {
    // A load stream with no reuse: every load misses to memory.
    let trace: Vec<TraceItem> = (0..500u64)
        .map(|i| TraceItem::then(9, Access::load(Address(0x800_0000 + i * 4096))))
        .collect();
    let run = |speculative: bool| {
        let cfg = SystemConfig::default().with_speculative_verification(speculative);
        let mut sys = SecureSystem::new(cfg, Scheme::Cobcm, 3);
        sys.run_trace(trace.clone())
    };
    let spec = run(true);
    let blocking = run(false);
    assert!(
        blocking.cycles > spec.cycles,
        "{} !> {}",
        blocking.cycles,
        spec.cycles
    );
    assert_eq!(blocking.stats.get("mem.blocking_verifications"), 500);
    assert_eq!(spec.stats.get("mem.blocking_verifications"), 0);
}

#[test]
fn reset_measurement_starts_a_fresh_region() {
    let mut sys = system(Scheme::Cobcm);
    sys.run_trace(store_trace(100, 64));
    sys.reset_measurement();
    let r = sys.run_trace(store_trace(50, 64));
    assert_eq!(r.stats.get(counters::STORES), 50, "stats restart at zero");
    assert!(
        r.cycles > 0 && r.cycles < 100_000,
        "cycles measured from the region start"
    );
}

#[test]
fn obcm_pays_double_buffer_access_on_allocation() {
    // Pure allocation stream with counter-cache hits: OBCM's extra
    // access is visible against BCM minus the OTP latency.
    let mut obcm = system(Scheme::Obcm);
    let r = obcm.run_trace(store_trace(100, 64));
    assert_eq!(r.stats.get(counters::ALLOCATIONS), 100);
    assert_eq!(r.stats.get(counters::COUNTER_INCREMENTS), 100);
    // OBCM generates no OTPs at store time.
    // (They appear only at drains.)
    let drains = r.stats.get(counters::DRAINS);
    assert_eq!(r.stats.get(counters::OTPS), drains);
}

#[test]
fn breakdown_sums_to_cycles_for_all_schemes() {
    for scheme in Scheme::ALL {
        let mut sys = system(scheme);
        let r = sys.run_trace(store_trace(300, 64));
        assert_eq!(r.breakdown.total(), r.cycles, "{scheme}");
    }
}

#[test]
fn breakdown_sums_after_measurement_reset() {
    for scheme in Scheme::ALL {
        let mut sys = system(scheme);
        sys.run_trace(store_trace(100, 64));
        sys.reset_measurement();
        let r = sys.run_trace(store_trace(200, 64));
        assert_eq!(r.breakdown.total(), r.cycles, "{scheme}");
    }
}

#[test]
fn histograms_and_spans_populate() {
    let mut sys = system(Scheme::Cobcm);
    sys.enable_trace_capture(1 << 16);
    let r = sys.run_trace(store_trace(500, 64));
    let occ = r
        .stats
        .histogram(histograms::OCCUPANCY)
        .expect("occupancy recorded");
    assert_eq!(occ.total(), r.stats.get(counters::PERSISTS));
    let wpe = r
        .stats
        .histogram(histograms::WRITES_PER_ENTRY)
        .expect("NWPE recorded");
    assert_eq!(wpe.total(), r.stats.get(counters::DRAINS));
    let lat = r
        .stats
        .histogram(histograms::DRAIN_LATENCY)
        .expect("latency recorded");
    assert_eq!(lat.total(), r.stats.get(counters::DRAINS));
    assert_eq!(sys.tracer().count(Phase::StorePersist), 500);
    assert!(sys.tracer().count(Phase::Drain) > 0);
    assert!(sys.tracer().cycles(Phase::Drain) > 0);
    assert!(!sys.tracer().events().is_empty(), "capture was enabled");
}

#[test]
fn sp_works_with_forest_trees() {
    for kind in [TreeKind::Dbmf, TreeKind::Sbmf] {
        let mut sys = SecureSystem::with_tree(SystemConfig::default(), Scheme::Sp, kind, 5);
        sys.run_trace(store_trace(40, 4096));
        sys.crash(CrashKind::PowerLoss, DrainPolicy::DrainAll)
            .unwrap();
        assert!(sys.recover().is_consistent(), "{kind:?}");
    }
}

#[test]
fn cm_with_forest_recovers() {
    for kind in [TreeKind::Dbmf, TreeKind::Sbmf] {
        let mut sys = SecureSystem::with_tree(SystemConfig::default(), Scheme::Cm, kind, 6);
        sys.run_trace(store_trace(120, 4096));
        sys.crash(CrashKind::PowerLoss, DrainPolicy::DrainAll)
            .unwrap();
        assert!(sys.recover().is_consistent(), "{kind:?}");
    }
}
