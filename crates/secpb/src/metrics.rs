//! Run results and the derived statistics the paper reports.
//!
//! The evaluation section leans on three derived metrics: instructions per
//! cycle (IPC), *persists per thousand instructions* (PPTI — stores
//! accepted by the SecPB per kilo-instruction), and *number of writes per
//! SecPB entry* (NWPE — the coalescing factor).  [`RunResult`] wraps the
//! raw counters with accessors for each, plus slowdown computation against
//! a baseline run.

use secpb_sim::json::Json;
use secpb_sim::stats::Stats;

use crate::scheme::Scheme;

/// Well-known counter names emitted by the system model.
pub mod counters {
    /// Total instructions retired.
    pub const INSTRUCTIONS: &str = "core.instructions";
    /// Loads executed.
    pub const LOADS: &str = "core.loads";
    /// Stores executed.
    pub const STORES: &str = "core.stores";
    /// Stores accepted by the SecPB (persists).
    pub const PERSISTS: &str = "secpb.persists";
    /// SecPB entry allocations.
    pub const ALLOCATIONS: &str = "secpb.allocations";
    /// Entries drained.
    pub const DRAINS: &str = "secpb.drains";
    /// Cycles the core spent stalled on a full SecPB (COBCM backflow).
    pub const FULL_STALL_CYCLES: &str = "secpb.full_stall_cycles";
    /// BMT root updates performed (early or at drain).
    pub const BMT_ROOT_UPDATES: &str = "bmt.root_updates";
    /// BMT node hashes performed.
    pub const BMT_NODE_HASHES: &str = "bmt.node_hashes";
    /// OTPs generated.
    pub const OTPS: &str = "crypto.otps";
    /// MACs computed.
    pub const MACS: &str = "crypto.macs";
    /// Ciphertexts generated (pad XORs).
    pub const CIPHERTEXTS: &str = "crypto.ciphertexts";
    /// Counter increments.
    pub const COUNTER_INCREMENTS: &str = "crypto.counter_increments";
    /// Counter-cache misses on the early counter-fetch path.
    pub const COUNTER_MISSES: &str = "metadata.counter_misses";
    /// Encryption-page overflows (page re-encryption events).
    pub const PAGE_OVERFLOWS: &str = "crypto.page_overflows";
    /// Loads that missed every cache level.
    pub const LOAD_MISSES: &str = "mem.load_misses";
    /// Loads satisfied by the L1.
    pub const L1_HITS: &str = "mem.l1_hits";
    /// Loads satisfied by the L2.
    pub const L2_HITS: &str = "mem.l2_hits";
    /// Loads satisfied by the LLC.
    pub const L3_HITS: &str = "mem.l3_hits";
    /// Memory loads that paid blocking decrypt-and-verify latency.
    pub const BLOCKING_VERIFICATIONS: &str = "mem.blocking_verifications";
    /// Cycles the core spent stalled on a full store buffer.
    pub const SB_STALL_CYCLES: &str = "core.sb_stall_cycles";
    /// BMT walks performed eagerly at store-accept time.
    pub const EARLY_BMT_WALKS: &str = "bmt.early_walks";
    /// BMT node hashes charged to the drain (battery) budget.
    pub const LATE_BMT_NODE_HASHES: &str = "bmt.late_node_hashes";
    /// Broken internal invariants survived gracefully (e.g. a metadata
    /// step found its SecPB entry evicted).  Always zero on a healthy
    /// model; the fault-injection storms assert on it.
    pub const ANOMALIES: &str = "fault.anomalies";
}

/// Well-known histogram names emitted by the system model.
pub mod histograms {
    /// SecPB occupancy sampled at every accepted persist.
    pub const OCCUPANCY: &str = "secpb.occupancy";
    /// End-to-end drain latency (issue request to slot free), per drain.
    pub const DRAIN_LATENCY: &str = "secpb.drain_latency";
    /// Cycles an entry spent resident, allocation to drain.
    pub const ENTRY_LIFETIME: &str = "secpb.entry_lifetime";
    /// Stores coalesced into each drained entry (the NWPE distribution).
    pub const WRITES_PER_ENTRY: &str = "secpb.writes_per_entry";
}

/// Where the measured cycles went: every advance of the core clock is
/// attributed to exactly one category, so the fields sum to the run's
/// `cycles` exactly (the residual between the last retired instruction
/// and the final store-buffer/SecPB completion lands in `drain_wait`).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CycleBreakdown {
    /// Instruction retirement at the core's retire width.
    pub retire: u64,
    /// Exposed load latency (cache walk, NVM reads, blocking verification).
    pub load: u64,
    /// Exposed store-acceptance latency (early metadata work).
    pub store_accept: u64,
    /// Full store buffer back-pressure.
    pub sb_stall: u64,
    /// NoGap serialization on the previous persist's completion.
    pub nogap_wait: u64,
    /// Trailing wait for outstanding persists after the last instruction.
    pub drain_wait: u64,
}

impl CycleBreakdown {
    /// The categories as `(name, cycles)` pairs, in a stable order.
    pub fn entries(&self) -> [(&'static str, u64); 6] {
        [
            ("retire", self.retire),
            ("load", self.load),
            ("store_accept", self.store_accept),
            ("sb_stall", self.sb_stall),
            ("nogap_wait", self.nogap_wait),
            ("drain_wait", self.drain_wait),
        ]
    }

    /// Sum over all categories; equals the run's `cycles`.
    pub fn total(&self) -> u64 {
        self.entries().iter().map(|(_, v)| v).sum()
    }

    /// JSON object keyed by category name.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        for (name, v) in self.entries() {
            obj = obj.field(name, v);
        }
        obj
    }
}

/// The result of replaying one trace on one scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// The scheme that produced this result.
    pub scheme: Scheme,
    /// Total execution cycles.
    pub cycles: u64,
    /// Where those cycles went; `breakdown.total() == cycles`.
    pub breakdown: CycleBreakdown,
    /// All raw counters.
    pub stats: Stats,
}

impl RunResult {
    /// Instructions retired.
    pub fn instructions(&self) -> u64 {
        self.stats.get(counters::INSTRUCTIONS)
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions() as f64 / self.cycles as f64
        }
    }

    /// Persists (SecPB-accepted stores) per thousand instructions.
    pub fn ppti(&self) -> f64 {
        self.stats.ratio(counters::PERSISTS, counters::INSTRUCTIONS) * 1000.0
    }

    /// Mean writes per SecPB entry, over drained entries.
    pub fn nwpe(&self) -> f64 {
        self.stats.ratio(counters::PERSISTS, counters::ALLOCATIONS)
    }

    /// BMT root updates per SecPB-accepted store — Figure 8's metric when
    /// normalized to the per-store (`sec_wt`) policy, where it would be
    /// exactly 1.0.
    pub fn bmt_updates_per_store(&self) -> f64 {
        self.stats
            .ratio(counters::BMT_ROOT_UPDATES, counters::PERSISTS)
    }

    /// Execution-time ratio of `self` to `baseline` (e.g. 1.713 = 71.3%
    /// overhead).
    ///
    /// # Panics
    ///
    /// Panics if the two runs retired different instruction counts (they
    /// would not be comparable).
    pub fn slowdown_vs(&self, baseline: &RunResult) -> f64 {
        assert_eq!(
            self.instructions(),
            baseline.instructions(),
            "cannot compare runs over different instruction counts"
        );
        assert!(baseline.cycles > 0, "baseline ran zero cycles");
        self.cycles as f64 / baseline.cycles as f64
    }

    /// Overhead versus baseline as a percentage (71.3 for a 1.713×
    /// slowdown).
    pub fn overhead_pct_vs(&self, baseline: &RunResult) -> f64 {
        (self.slowdown_vs(baseline) - 1.0) * 100.0
    }

    /// Full JSON dump: scheme, cycles, derived metrics, cycle breakdown,
    /// and every raw counter and histogram (the `--stats-json` payload).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("scheme", self.scheme.to_string())
            .field("cycles", self.cycles)
            .field("instructions", self.instructions())
            .field("ipc", self.ipc())
            .field("ppti", self.ppti())
            .field("nwpe", self.nwpe())
            .field("breakdown", self.breakdown.to_json())
            .field("stats", self.stats.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(scheme: Scheme, cycles: u64, instrs: u64, persists: u64, allocs: u64) -> RunResult {
        let mut stats = Stats::new();
        stats.bump_by(counters::INSTRUCTIONS, instrs);
        stats.bump_by(counters::PERSISTS, persists);
        stats.bump_by(counters::ALLOCATIONS, allocs);
        stats.bump_by(counters::BMT_ROOT_UPDATES, allocs);
        RunResult {
            scheme,
            cycles,
            breakdown: CycleBreakdown {
                retire: cycles,
                ..CycleBreakdown::default()
            },
            stats,
        }
    }

    #[test]
    fn derived_metrics() {
        let r = result(Scheme::Cm, 2000, 1000, 50, 10);
        assert!((r.ipc() - 0.5).abs() < 1e-12);
        assert!((r.ppti() - 50.0).abs() < 1e-12);
        assert!((r.nwpe() - 5.0).abs() < 1e-12);
        assert!((r.bmt_updates_per_store() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn slowdown_vs_baseline() {
        let base = result(Scheme::Bbb, 1000, 1000, 50, 10);
        let cm = result(Scheme::Cm, 1713, 1000, 50, 10);
        assert!((cm.slowdown_vs(&base) - 1.713).abs() < 1e-9);
        assert!((cm.overhead_pct_vs(&base) - 71.3).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "different instruction counts")]
    fn mismatched_runs_cannot_compare() {
        let base = result(Scheme::Bbb, 1000, 999, 50, 10);
        let cm = result(Scheme::Cm, 1713, 1000, 50, 10);
        cm.slowdown_vs(&base);
    }

    #[test]
    fn breakdown_sums_and_serializes() {
        let b = CycleBreakdown {
            retire: 10,
            load: 5,
            store_accept: 3,
            sb_stall: 2,
            nogap_wait: 1,
            drain_wait: 4,
        };
        assert_eq!(b.total(), 25);
        let j = b.to_json();
        assert_eq!(j.get("load").and_then(Json::as_u64), Some(5));
        assert_eq!(j.get("drain_wait").and_then(Json::as_u64), Some(4));
    }

    #[test]
    fn run_result_json_carries_everything() {
        let r = result(Scheme::Cm, 2000, 1000, 50, 10);
        let j = r.to_json();
        assert_eq!(j.get("scheme").and_then(Json::as_str), Some("cm"));
        assert_eq!(j.get("cycles").and_then(Json::as_u64), Some(2000));
        let bd = j.get("breakdown").expect("breakdown present");
        assert_eq!(bd.get("retire").and_then(Json::as_u64), Some(2000));
        let stats = j.get("stats").expect("stats present");
        assert_eq!(
            stats
                .get("counters")
                .and_then(|c| c.get(counters::PERSISTS))
                .and_then(Json::as_u64),
            Some(50)
        );
    }

    #[test]
    fn zero_cycle_edge_cases() {
        let r = result(Scheme::Bbb, 0, 0, 0, 0);
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.ppti(), 0.0);
        assert_eq!(r.nwpe(), 0.0);
    }
}
