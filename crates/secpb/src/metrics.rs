//! Run results and the derived statistics the paper reports.
//!
//! The evaluation section leans on three derived metrics: instructions per
//! cycle (IPC), *persists per thousand instructions* (PPTI — stores
//! accepted by the SecPB per kilo-instruction), and *number of writes per
//! SecPB entry* (NWPE — the coalescing factor).  [`RunResult`] wraps the
//! raw counters with accessors for each, plus slowdown computation against
//! a baseline run.

use serde::{Deserialize, Serialize};
use secpb_sim::stats::Stats;

use crate::scheme::Scheme;

/// Well-known counter names emitted by the system model.
pub mod counters {
    /// Total instructions retired.
    pub const INSTRUCTIONS: &str = "core.instructions";
    /// Loads executed.
    pub const LOADS: &str = "core.loads";
    /// Stores executed.
    pub const STORES: &str = "core.stores";
    /// Stores accepted by the SecPB (persists).
    pub const PERSISTS: &str = "secpb.persists";
    /// SecPB entry allocations.
    pub const ALLOCATIONS: &str = "secpb.allocations";
    /// Entries drained.
    pub const DRAINS: &str = "secpb.drains";
    /// Cycles the core spent stalled on a full SecPB (COBCM backflow).
    pub const FULL_STALL_CYCLES: &str = "secpb.full_stall_cycles";
    /// BMT root updates performed (early or at drain).
    pub const BMT_ROOT_UPDATES: &str = "bmt.root_updates";
    /// BMT node hashes performed.
    pub const BMT_NODE_HASHES: &str = "bmt.node_hashes";
    /// OTPs generated.
    pub const OTPS: &str = "crypto.otps";
    /// MACs computed.
    pub const MACS: &str = "crypto.macs";
    /// Ciphertexts generated (pad XORs).
    pub const CIPHERTEXTS: &str = "crypto.ciphertexts";
    /// Counter increments.
    pub const COUNTER_INCREMENTS: &str = "crypto.counter_increments";
    /// Counter-cache misses on the early counter-fetch path.
    pub const COUNTER_MISSES: &str = "metadata.counter_misses";
    /// Encryption-page overflows (page re-encryption events).
    pub const PAGE_OVERFLOWS: &str = "crypto.page_overflows";
}

/// The result of replaying one trace on one scheme.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// The scheme that produced this result.
    pub scheme: Scheme,
    /// Total execution cycles.
    pub cycles: u64,
    /// All raw counters.
    pub stats: Stats,
}

impl RunResult {
    /// Instructions retired.
    pub fn instructions(&self) -> u64 {
        self.stats.get(counters::INSTRUCTIONS)
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions() as f64 / self.cycles as f64
        }
    }

    /// Persists (SecPB-accepted stores) per thousand instructions.
    pub fn ppti(&self) -> f64 {
        self.stats.ratio(counters::PERSISTS, counters::INSTRUCTIONS) * 1000.0
    }

    /// Mean writes per SecPB entry, over drained entries.
    pub fn nwpe(&self) -> f64 {
        self.stats.ratio(counters::PERSISTS, counters::ALLOCATIONS)
    }

    /// BMT root updates per SecPB-accepted store — Figure 8's metric when
    /// normalized to the per-store (`sec_wt`) policy, where it would be
    /// exactly 1.0.
    pub fn bmt_updates_per_store(&self) -> f64 {
        self.stats.ratio(counters::BMT_ROOT_UPDATES, counters::PERSISTS)
    }

    /// Execution-time ratio of `self` to `baseline` (e.g. 1.713 = 71.3%
    /// overhead).
    ///
    /// # Panics
    ///
    /// Panics if the two runs retired different instruction counts (they
    /// would not be comparable).
    pub fn slowdown_vs(&self, baseline: &RunResult) -> f64 {
        assert_eq!(
            self.instructions(),
            baseline.instructions(),
            "cannot compare runs over different instruction counts"
        );
        assert!(baseline.cycles > 0, "baseline ran zero cycles");
        self.cycles as f64 / baseline.cycles as f64
    }

    /// Overhead versus baseline as a percentage (71.3 for a 1.713×
    /// slowdown).
    pub fn overhead_pct_vs(&self, baseline: &RunResult) -> f64 {
        (self.slowdown_vs(baseline) - 1.0) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(scheme: Scheme, cycles: u64, instrs: u64, persists: u64, allocs: u64) -> RunResult {
        let mut stats = Stats::new();
        stats.bump_by(counters::INSTRUCTIONS, instrs);
        stats.bump_by(counters::PERSISTS, persists);
        stats.bump_by(counters::ALLOCATIONS, allocs);
        stats.bump_by(counters::BMT_ROOT_UPDATES, allocs);
        RunResult { scheme, cycles, stats }
    }

    #[test]
    fn derived_metrics() {
        let r = result(Scheme::Cm, 2000, 1000, 50, 10);
        assert!((r.ipc() - 0.5).abs() < 1e-12);
        assert!((r.ppti() - 50.0).abs() < 1e-12);
        assert!((r.nwpe() - 5.0).abs() < 1e-12);
        assert!((r.bmt_updates_per_store() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn slowdown_vs_baseline() {
        let base = result(Scheme::Bbb, 1000, 1000, 50, 10);
        let cm = result(Scheme::Cm, 1713, 1000, 50, 10);
        assert!((cm.slowdown_vs(&base) - 1.713).abs() < 1e-9);
        assert!((cm.overhead_pct_vs(&base) - 71.3).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "different instruction counts")]
    fn mismatched_runs_cannot_compare() {
        let base = result(Scheme::Bbb, 1000, 999, 50, 10);
        let cm = result(Scheme::Cm, 1713, 1000, 50, 10);
        cm.slowdown_vs(&base);
    }

    #[test]
    fn zero_cycle_edge_cases() {
        let r = result(Scheme::Bbb, 0, 0, 0, 0);
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.ppti(), 0.0);
        assert_eq!(r.nwpe(), 0.0);
    }
}
