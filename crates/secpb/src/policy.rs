//! The composable persistence-policy layer.
//!
//! The paper's design spectrum (Section IV, Figure 4) fixes *what
//! security metadata is generated early* per scheme; this module widens
//! that single axis into a [`PersistencePolicy`] with three independent
//! dimensions:
//!
//! * **early work** — which Figure 4 steps run at store-persist time
//!   (the original [`Scheme`] axis, now one instantiation of the policy),
//! * **tree persistence** — how much of the integrity tree is kept
//!   durable online: the baseline root-only register, or Triad-NVM-style
//!   selective depth (Awad et al.): persist levels `0..N` and
//!   reconstruct only `N..` at recovery,
//! * **counter layout** — the plain layout, or the Huang & Hua-style
//!   write-friendly fast-recovery layout that maintains a durable shadow
//!   of the BMT root so recovery validates in near-constant tree work.
//!
//! [`PersistDomain`](crate::domain::PersistDomain), the recovery kernel,
//! and the [`PersistSystem`](crate::facade::PersistSystem) facade are all
//! driven by the policy; the default resolution
//! ([`PersistencePolicy::for_scheme`]) reproduces the pre-policy
//! behaviour bit for bit.  [`RecoveryCost`] replaces the facade's old
//! estimate with exact accounting (blocks swept, hashes folded, cycles),
//! which the `recovery_sweep` bench promotes to a swept grid metric.

use std::fmt;

use secpb_crypto::sha512::Digest;
use secpb_sim::config::{SecurityConfig, SystemConfig};

use crate::scheme::{EarlyWork, Scheme};
use crate::tree::TreeKind;

/// How much of the integrity tree is persisted online.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TreePersistence {
    /// Only the root register is durable; recovery rebuilds the whole
    /// tree from the persisted counter blocks (the paper's baseline).
    #[default]
    RootOnly,
    /// Triad-NVM-style selective persistence: node levels `0..n` are
    /// durable alongside the root, so recovery reads the level `n-1`
    /// frontier and folds only levels `n..` (Awad et al.).
    Levels(u8),
}

impl TreePersistence {
    /// Extra durable node writes charged per leaf persist (zero for the
    /// root-only baseline).
    pub fn node_writes_per_persist(self) -> u64 {
        match self {
            TreePersistence::RootOnly => 0,
            TreePersistence::Levels(n) => u64::from(n),
        }
    }
}

/// Durable counter/root layout.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CounterLayout {
    /// The paper's baseline layout.
    #[default]
    Plain,
    /// Huang & Hua-style write-friendly fast-recovery layout: a durable
    /// shadow of the BMT root is refreshed on every persist, so recovery
    /// validates the root in near-constant work instead of a rebuild.
    Shadow,
}

/// A composable persistence policy: what metadata is persisted when.
///
/// Every [`Scheme`] is one instantiation
/// ([`for_scheme`](Self::for_scheme)); the `triad<N>` and `fastrec`
/// fronts are others.  Constructors validate the Figure 4 dependency
/// chain and the tree-depth bounds with typed [`PolicyError`]s.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PersistencePolicy {
    /// Which Figure 4 steps run early (at store persist time).
    pub early: EarlyWork,
    /// How much of the integrity tree stays durable online.
    pub tree: TreePersistence,
    /// Durable counter/root layout.
    pub counters: CounterLayout,
}

impl PersistencePolicy {
    /// Builds a policy, rejecting early-work assignments that violate the
    /// Figure 4 dependency chain.
    ///
    /// # Errors
    ///
    /// [`PolicyError::DependencyViolation`] when a step is early but one
    /// of its producers is not.
    pub fn new(
        early: EarlyWork,
        tree: TreePersistence,
        counters: CounterLayout,
    ) -> Result<Self, PolicyError> {
        if !early.respects_dependencies() {
            return Err(PolicyError::DependencyViolation(early));
        }
        Ok(PersistencePolicy {
            early,
            tree,
            counters,
        })
    }

    /// The policy a plain [`Scheme`] names: its early-work assignment
    /// with the baseline root-only/plain layouts.  Bit-identical to the
    /// pre-policy behaviour.
    pub fn for_scheme(scheme: Scheme) -> Self {
        PersistencePolicy {
            early: scheme.early_work(),
            tree: TreePersistence::RootOnly,
            counters: CounterLayout::Plain,
        }
    }

    /// Resolves the full policy for `scheme` under the configured
    /// tree-persistence and counter-layout knobs
    /// (`cfg.triad_levels` / `cfg.shadow_counters`).
    ///
    /// # Errors
    ///
    /// * [`PolicyError::DepthOutOfRange`] when `triad_levels` exceeds the
    ///   tree height,
    /// * [`PolicyError::UnsupportedTree`] when selective depth is asked
    ///   of a forest (subtree roots already play the frontier role),
    /// * [`PolicyError::DependencyViolation`] is impossible for named
    ///   schemes but kept for hand-built `EarlyWork` assignments.
    pub fn resolve(
        scheme: Scheme,
        sec: &SecurityConfig,
        tree_kind: TreeKind,
    ) -> Result<Self, PolicyError> {
        let tree = match sec.triad_levels {
            0 => TreePersistence::RootOnly,
            n => {
                if tree_kind != TreeKind::Monolithic {
                    return Err(PolicyError::UnsupportedTree(tree_kind));
                }
                if u32::from(n) > sec.bmt_levels {
                    return Err(PolicyError::DepthOutOfRange {
                        depth: n,
                        levels: sec.bmt_levels,
                    });
                }
                TreePersistence::Levels(n)
            }
        };
        let counters = if sec.shadow_counters {
            CounterLayout::Shadow
        } else {
            CounterLayout::Plain
        };
        PersistencePolicy::new(scheme.early_work(), tree, counters)
    }

    /// Whether this is the baseline layout every existing scheme uses
    /// (root-only tree, plain counters) — the fast path that must stay
    /// byte-identical across the refactor.
    pub fn is_baseline(&self) -> bool {
        self.tree == TreePersistence::RootOnly && self.counters == CounterLayout::Plain
    }
}

/// Typed rejection of an illegal policy assignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyError {
    /// The early-work assignment is not a legal prefix of the Figure 4
    /// dependency chain.
    DependencyViolation(EarlyWork),
    /// `triad_levels` exceeds the configured tree height.
    DepthOutOfRange {
        /// The requested persistence depth.
        depth: u8,
        /// The configured tree height in levels.
        levels: u32,
    },
    /// Selective tree depth was requested on a forest organisation.
    UnsupportedTree(TreeKind),
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::DependencyViolation(ew) => write!(
                f,
                "early-work assignment {ew:?} violates the Figure 4 dependency chain"
            ),
            PolicyError::DepthOutOfRange { depth, levels } => write!(
                f,
                "triad persistence depth {depth} exceeds the {levels}-level tree"
            ),
            PolicyError::UnsupportedTree(kind) => write!(
                f,
                "selective tree persistence requires a monolithic tree, got {kind:?}"
            ),
        }
    }
}

impl std::error::Error for PolicyError {}

/// Per-domain dynamic policy state: the durable shadow root and the
/// write-amplification counters the recovery sweep reports.  Lives
/// outside [`Stats`](secpb_sim::stats::Stats) so existing grid outputs
/// stay byte-identical.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct PolicyState {
    /// The durable shadow copy of the BMT root (fast-recovery layout
    /// only; `None` until the first persist).
    pub shadow_root: Option<Digest>,
    /// Durable tree-node writes charged by selective persistence.
    pub node_writes: u64,
    /// Durable shadow-root writes charged by the fast-recovery layout.
    pub shadow_writes: u64,
    /// Leaf persists observed (the write-amplification denominator).
    pub leaf_persists: u64,
}

impl PolicyState {
    /// Write amplification of the policy's metadata traffic: durable
    /// writes per leaf persist, over the 3-write baseline tuple
    /// (data + MAC + counter block).
    pub fn write_amplification(&self) -> f64 {
        if self.leaf_persists == 0 {
            return 1.0;
        }
        let base = 3 * self.leaf_persists;
        (base + self.node_writes + self.shadow_writes) as f64 / base as f64
    }
}

/// Exact recovery accounting: what a post-crash sweep reads, folds, and
/// costs under a given policy.  Replaces the facade's old closed-form
/// estimate — the [`root_only`](Self::root_only) constructor reproduces
/// that formula exactly, so every existing front reports unchanged
/// numbers.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryCost {
    /// Persisted counter pages fetched.
    pub counter_pages_read: u64,
    /// Persisted tree-frontier nodes fetched (selective persistence).
    pub tree_nodes_read: u64,
    /// Node hashes folded to revalidate the root.
    pub hashes_folded: u64,
    /// Data blocks fetched, decrypted, and MAC-verified.
    pub blocks_swept: u64,
    /// Total recovery latency in cycles.
    pub cycles: u64,
}

impl RecoveryCost {
    /// The baseline root-only rebuild: fetch every persisted counter
    /// block and fold it into the rebuilt BMT, then fetch, decrypt, and
    /// MAC-verify every data block.  NVM reads pipeline across banks;
    /// crypto units pipeline at their occupancy.  This is exactly the
    /// facade's historical `estimated_recovery_cycles` formula.
    pub fn root_only(cfg: &SystemConfig, pages: u64, blocks: u64) -> Self {
        let sec = &cfg.security;
        let banks = cfg.nvm.banks.max(1) as u64;
        let read = cfg.nvm.read_latency.raw();
        // Counter fetches and tree rebuild.
        let counter_fetch = pages * read / banks + read.min(pages * read);
        let tree_rebuild = pages * u64::from(sec.bmt_levels) * sec.bmt_hash_latency;
        // Data fetch + decrypt + verify, pipelined.
        let data_fetch = blocks * read / banks + if blocks > 0 { read } else { 0 };
        let verify = blocks * sec.mac_latency.max(sec.otp_latency);
        RecoveryCost {
            counter_pages_read: pages,
            tree_nodes_read: 0,
            hashes_folded: pages * u64::from(sec.bmt_levels),
            blocks_swept: blocks,
            cycles: counter_fetch + tree_rebuild + data_fetch + verify,
        }
    }

    /// Triad-NVM selective persistence: the tree rebuild shrinks to
    /// fetching the persisted level frontier (`frontier_nodes` nodes)
    /// and folding `hashes_folded` node hashes up to the root; counter
    /// and data sweeps are unchanged.
    pub fn selective(
        cfg: &SystemConfig,
        pages: u64,
        blocks: u64,
        frontier_nodes: u64,
        hashes_folded: u64,
    ) -> Self {
        let sec = &cfg.security;
        let banks = cfg.nvm.banks.max(1) as u64;
        let read = cfg.nvm.read_latency.raw();
        let counter_fetch = pages * read / banks + read.min(pages * read);
        let frontier_fetch = frontier_nodes * read / banks + read.min(frontier_nodes * read);
        let tree_fold = hashes_folded * sec.bmt_hash_latency;
        let data_fetch = blocks * read / banks + if blocks > 0 { read } else { 0 };
        let verify = blocks * sec.mac_latency.max(sec.otp_latency);
        RecoveryCost {
            counter_pages_read: pages,
            tree_nodes_read: frontier_nodes,
            hashes_folded,
            blocks_swept: blocks,
            cycles: counter_fetch + frontier_fetch + tree_fold + data_fetch + verify,
        }
    }

    /// Huang & Hua fast recovery: one durable shadow-root read and one
    /// comparison hash validate the tree; counter and data sweeps are
    /// unchanged.
    pub fn fast_recovery(cfg: &SystemConfig, pages: u64, blocks: u64) -> Self {
        let sec = &cfg.security;
        let banks = cfg.nvm.banks.max(1) as u64;
        let read = cfg.nvm.read_latency.raw();
        let counter_fetch = pages * read / banks + read.min(pages * read);
        let data_fetch = blocks * read / banks + if blocks > 0 { read } else { 0 };
        let verify = blocks * sec.mac_latency.max(sec.otp_latency);
        RecoveryCost {
            counter_pages_read: pages,
            tree_nodes_read: 1,
            hashes_folded: 1,
            blocks_swept: blocks,
            cycles: counter_fetch + read + sec.bmt_hash_latency + data_fetch + verify,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_early_work_policy_round_trips() {
        for scheme in Scheme::SECPB_SCHEMES {
            let policy = PersistencePolicy::for_scheme(scheme);
            assert!(policy.is_baseline());
            assert_eq!(Scheme::from_early_work(policy.early), Some(scheme));
        }
    }

    #[test]
    fn exactly_nine_legal_early_assignments() {
        // The Figure 4 chain admits exactly 9 of the 32 combinations:
        // counter=0 forces everything off (1); counter=1/otp=0 leaves
        // only bmt free (2); otp=1 frees bmt x {ct=0, ct=1/mac free} (6).
        let mut legal = 0;
        for bits in 0u32..32 {
            let ew = EarlyWork {
                counter: bits & 1 != 0,
                otp: bits & 2 != 0,
                bmt: bits & 4 != 0,
                ciphertext: bits & 8 != 0,
                mac: bits & 16 != 0,
            };
            let ok =
                PersistencePolicy::new(ew, TreePersistence::RootOnly, CounterLayout::Plain).is_ok();
            assert_eq!(ok, ew.respects_dependencies());
            if ok {
                legal += 1;
            } else {
                assert_eq!(
                    PersistencePolicy::new(ew, TreePersistence::RootOnly, CounterLayout::Plain),
                    Err(PolicyError::DependencyViolation(ew))
                );
            }
        }
        assert_eq!(legal, 9);
    }

    #[test]
    fn resolve_maps_config_knobs() {
        let sec = SecurityConfig::default();
        let p = PersistencePolicy::resolve(Scheme::Cobcm, &sec, TreeKind::Monolithic).unwrap();
        assert!(p.is_baseline());

        let mut triad = sec;
        triad.triad_levels = 4;
        let p = PersistencePolicy::resolve(Scheme::NoGap, &triad, TreeKind::Monolithic).unwrap();
        assert_eq!(p.tree, TreePersistence::Levels(4));
        assert_eq!(p.counters, CounterLayout::Plain);

        let mut shadow = sec;
        shadow.shadow_counters = true;
        let p = PersistencePolicy::resolve(Scheme::NoGap, &shadow, TreeKind::Monolithic).unwrap();
        assert_eq!(p.counters, CounterLayout::Shadow);
    }

    #[test]
    fn resolve_rejects_illegal_depth_and_forests() {
        let mut sec = SecurityConfig::default();
        sec.triad_levels = 9; // > 8-level tree
        assert_eq!(
            PersistencePolicy::resolve(Scheme::NoGap, &sec, TreeKind::Monolithic),
            Err(PolicyError::DepthOutOfRange {
                depth: 9,
                levels: 8
            })
        );
        sec.triad_levels = 2;
        assert_eq!(
            PersistencePolicy::resolve(Scheme::NoGap, &sec, TreeKind::Dbmf),
            Err(PolicyError::UnsupportedTree(TreeKind::Dbmf))
        );
        // Full-height depth is legal (triad(full)).
        sec.triad_levels = 8;
        assert!(PersistencePolicy::resolve(Scheme::NoGap, &sec, TreeKind::Monolithic).is_ok());
    }

    #[test]
    fn policy_errors_render() {
        let e = PolicyError::DepthOutOfRange {
            depth: 9,
            levels: 8,
        };
        assert!(e.to_string().contains("9"));
        assert!(PolicyError::UnsupportedTree(TreeKind::Sbmf)
            .to_string()
            .contains("monolithic"));
    }

    #[test]
    fn write_amplification_counts_extra_writes() {
        let mut st = PolicyState::default();
        assert_eq!(st.write_amplification(), 1.0);
        st.leaf_persists = 10;
        assert_eq!(st.write_amplification(), 1.0);
        st.node_writes = 30; // Levels(3): 3 extra writes per persist
        assert_eq!(st.write_amplification(), 2.0);
        st.node_writes = 0;
        st.shadow_writes = 10;
        assert!((st.write_amplification() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn recovery_costs_order_fastrec_below_selective_below_root_only() {
        let cfg = SystemConfig::default();
        let (pages, blocks) = (500, 4_000);
        let root_only = RecoveryCost::root_only(&cfg, pages, blocks);
        // A level-7 frontier of a well-filled 8-ary tree is ~pages/8
        // nodes; folding from there costs far fewer hashes than the full
        // pages * levels rebuild.
        let selective = RecoveryCost::selective(&cfg, pages, blocks, pages / 8, pages / 8 + 8);
        let fast = RecoveryCost::fast_recovery(&cfg, pages, blocks);
        assert!(fast.cycles <= selective.cycles);
        assert!(selective.cycles <= root_only.cycles);
        assert_eq!(root_only.blocks_swept, blocks);
        assert_eq!(fast.hashes_folded, 1);
    }
}
