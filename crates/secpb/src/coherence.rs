//! Multi-core SecPB coherence (Section IV-C of the paper).
//!
//! With one SecPB per core, two replication hazards appear:
//!
//! 1. **Metadata replication** — eager schemes keep counters/OTPs/MACs in
//!    SecPB entries; the metadata caches are tagged with a *directory*
//!    recording which SecPB (if any) a metadata block also lives in, and a
//!    miss in another core's SecPB *migrates* the entry rather than
//!    replicating it.
//! 2. **Data replication** — a block may live in one core's SecPB while
//!    other cores want it.  A remote *read* flushes the owner's entry to
//!    PM and services the request in parallel; a remote *write* migrates
//!    the entry to the requesting core.
//!
//! The paper evaluates a single core (Table I); this module implements the
//! protocol so multi-core configurations are functionally correct, and its
//! tests double as the protocol's specification.

use std::hash::Hash;

use secpb_sim::addr::{Asid, BlockAddr};
use secpb_sim::config::SecPbConfig;
use secpb_sim::fxhash::FxHashMap;

use crate::buffer::SecPb;
use crate::crash::ConfigError;
use crate::entry::Entry;

/// A directory mapping a key (data block or metadata block) to the single
/// SecPB that currently owns it — the "no replication" invariant.
#[derive(Debug, Clone, Default)]
pub struct Directory<K: Eq + Hash> {
    owner: FxHashMap<K, usize>,
}

impl<K: Eq + Hash + Copy> Directory<K> {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Directory {
            owner: FxHashMap::default(),
        }
    }

    /// The current owner core, if any.
    pub fn owner(&self, key: K) -> Option<usize> {
        self.owner.get(&key).copied()
    }

    /// Claims ownership for `core`, returning the previous owner if the
    /// key moved.
    pub fn claim(&mut self, key: K, core: usize) -> Option<usize> {
        let prev = self.owner.insert(key, core);
        prev.filter(|&p| p != core)
    }

    /// Releases ownership (drain to PM).
    pub fn release(&mut self, key: K) -> Option<usize> {
        self.owner.remove(&key)
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.owner.len()
    }

    /// Whether nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.owner.is_empty()
    }
}

/// What the coherence controller did to satisfy an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoherenceAction {
    /// The block was already in the requesting core's SecPB.
    LocalHit,
    /// The block was in no SecPB; a fresh entry was allocated locally.
    Allocated,
    /// A remote write request: the entry migrated from `from` to the
    /// requester (metadata travels with it — eager schemes avoid
    /// regenerating data-value-independent metadata, Section IV-C(c)).
    MigratedFrom {
        /// The previous owner core.
        from: usize,
    },
    /// A remote read request: the owner's entry was flushed to PM and the
    /// data serviced in parallel; the entry left all SecPBs.
    FlushedFrom {
        /// The core whose SecPB held (and flushed) the entry.
        from: usize,
    },
}

/// A bank of per-core SecPBs with the Section IV-C directory protocol.
#[derive(Debug, Clone)]
pub struct CoherenceController {
    pbs: Vec<SecPb>,
    directory: Directory<BlockAddr>,
    /// Entries flushed to PM by remote reads, handed back for the system
    /// model to complete functionally.
    flushed: Vec<Entry>,
}

impl CoherenceController {
    /// Creates `cores` SecPBs with identical configuration.
    ///
    /// Rejects a zero-core bank or degenerate SecPB geometry with a
    /// typed [`ConfigError`] instead of panicking.
    pub fn new(cores: usize, config: SecPbConfig) -> Result<Self, ConfigError> {
        if cores == 0 {
            return Err(ConfigError::ZeroCores);
        }
        ConfigError::check_secpb(&config)?;
        Ok(CoherenceController {
            pbs: (0..cores).map(|_| SecPb::new(config)).collect(),
            directory: Directory::new(),
            flushed: Vec::new(),
        })
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.pbs.len()
    }

    /// A core's SecPB.
    pub fn pb(&self, core: usize) -> &SecPb {
        &self.pbs[core]
    }

    /// Mutable access to a core's SecPB (for applying coalesced stores to
    /// a resident entry).
    pub fn pb_mut(&mut self, core: usize) -> &mut SecPb {
        &mut self.pbs[core]
    }

    /// Entries flushed by remote reads since the last take.
    pub fn take_flushed(&mut self) -> Vec<Entry> {
        std::mem::take(&mut self.flushed)
    }

    /// A store by `core` to `block`.
    ///
    /// # Panics
    ///
    /// Panics if the requesting core's SecPB is full when an allocation or
    /// migration is needed (the caller must drain first, as in the
    /// single-core flow).
    pub fn write(
        &mut self,
        core: usize,
        block: BlockAddr,
        asid: Asid,
        base: [u8; 64],
    ) -> CoherenceAction {
        match self.directory.owner(block) {
            Some(owner) if owner == core => {
                self.pbs[core].note_persist();
                CoherenceAction::LocalHit
            }
            Some(owner) => {
                // Migrate: the entry moves wholesale; valid metadata moves
                // with it so data-value-independent work is not redone.
                let entry = self.pbs[owner]
                    .remove(block)
                    .expect("directory tracked entry");
                assert!(
                    !self.pbs[core].is_full(),
                    "requesting SecPB full: drain first"
                );
                let e = self.pbs[core].allocate(block, entry.asid, entry.plaintext);
                e.otp = entry.otp;
                e.ciphertext = entry.ciphertext;
                e.counter = entry.counter;
                e.mac = entry.mac;
                e.valid = entry.valid;
                e.stores = entry.stores;
                self.pbs[core].note_persist();
                self.directory.claim(block, core);
                CoherenceAction::MigratedFrom { from: owner }
            }
            None => {
                assert!(
                    !self.pbs[core].is_full(),
                    "requesting SecPB full: drain first"
                );
                self.pbs[core].allocate(block, asid, base);
                self.pbs[core].note_persist();
                self.directory.claim(block, core);
                CoherenceAction::Allocated
            }
        }
    }

    /// A load by `core` of `block`.  Remote hits flush the owner's entry
    /// (it is handed to [`take_flushed`](Self::take_flushed) for the
    /// system model to persist) and the datum is serviced in parallel.
    pub fn read(&mut self, core: usize, block: BlockAddr) -> Option<CoherenceAction> {
        match self.directory.owner(block) {
            Some(owner) if owner == core => Some(CoherenceAction::LocalHit),
            Some(owner) => {
                let entry = self.pbs[owner]
                    .remove(block)
                    .expect("directory tracked entry");
                self.flushed.push(entry);
                self.directory.release(block);
                Some(CoherenceAction::FlushedFrom { from: owner })
            }
            None => None,
        }
    }

    /// Removes a drained entry from its owner's SecPB and the directory.
    pub fn drain(&mut self, block: BlockAddr) -> Option<Entry> {
        let owner = self.directory.release(block)?;
        self.pbs[owner].remove(block)
    }

    /// Checks the no-replication invariant: every block lives in at most
    /// one SecPB and the directory agrees.
    pub fn replication_free(&self) -> bool {
        let mut seen: FxHashMap<BlockAddr, usize> = FxHashMap::default();
        for (core, pb) in self.pbs.iter().enumerate() {
            for e in pb.iter() {
                if seen.insert(e.block, core).is_some() {
                    return false;
                }
                if self.directory.owner(e.block) != Some(core) {
                    return false;
                }
            }
        }
        seen.len() == self.directory.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> CoherenceController {
        CoherenceController::new(2, SecPbConfig::default()).unwrap()
    }

    #[test]
    fn local_write_allocates_once() {
        let mut c = controller();
        assert_eq!(
            c.write(0, BlockAddr(1), Asid(0), [0; 64]),
            CoherenceAction::Allocated
        );
        assert_eq!(
            c.write(0, BlockAddr(1), Asid(0), [0; 64]),
            CoherenceAction::LocalHit
        );
        assert_eq!(c.pb(0).occupancy(), 1);
        assert!(c.replication_free());
    }

    #[test]
    fn remote_write_migrates_entry_and_metadata() {
        let mut c = controller();
        c.write(0, BlockAddr(1), Asid(0), [7; 64]);
        // Mark some metadata valid on core 0's entry.
        // (Simulating an eager scheme having done early work.)
        {
            let pb = &mut c.pbs[0];
            let e = pb.entry_mut(BlockAddr(1)).unwrap();
            e.valid.counter = true;
            e.counter.minor = 3;
        }
        let action = c.write(1, BlockAddr(1), Asid(0), [0; 64]);
        assert_eq!(action, CoherenceAction::MigratedFrom { from: 0 });
        assert_eq!(c.pb(0).occupancy(), 0);
        assert_eq!(c.pb(1).occupancy(), 1);
        let e = c.pb(1).entry(BlockAddr(1)).unwrap();
        assert!(
            e.valid.counter,
            "data-value-independent metadata travels with the entry"
        );
        assert_eq!(e.counter.minor, 3);
        assert_eq!(e.plaintext, [7; 64]);
        assert!(c.replication_free());
    }

    #[test]
    fn remote_read_flushes_owner_entry() {
        let mut c = controller();
        c.write(0, BlockAddr(1), Asid(0), [9; 64]);
        let action = c.read(1, BlockAddr(1));
        assert_eq!(action, Some(CoherenceAction::FlushedFrom { from: 0 }));
        assert_eq!(c.pb(0).occupancy(), 0, "owner entry flushed to PM");
        let flushed = c.take_flushed();
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].plaintext, [9; 64]);
        assert!(c.replication_free());
    }

    #[test]
    fn local_read_hits_without_flush() {
        let mut c = controller();
        c.write(0, BlockAddr(1), Asid(0), [0; 64]);
        assert_eq!(c.read(0, BlockAddr(1)), Some(CoherenceAction::LocalHit));
        assert_eq!(c.pb(0).occupancy(), 1);
    }

    #[test]
    fn read_of_untracked_block_is_none() {
        let mut c = controller();
        assert_eq!(c.read(0, BlockAddr(5)), None);
    }

    #[test]
    fn drain_releases_directory() {
        let mut c = controller();
        c.write(0, BlockAddr(1), Asid(0), [0; 64]);
        let entry = c.drain(BlockAddr(1));
        assert!(entry.is_some());
        assert!(c.replication_free());
        assert!(c.drain(BlockAddr(1)).is_none());
    }

    #[test]
    fn ping_pong_migration_never_replicates() {
        let mut c = controller();
        for i in 0..20 {
            let core = i % 2;
            c.write(core, BlockAddr(7), Asid(0), [0; 64]);
            assert!(c.replication_free(), "iteration {i}");
        }
        assert_eq!(c.pb(0).occupancy() + c.pb(1).occupancy(), 1);
    }

    #[test]
    fn directory_claim_and_release() {
        let mut d: Directory<BlockAddr> = Directory::new();
        assert!(d.is_empty());
        assert_eq!(d.claim(BlockAddr(1), 0), None);
        assert_eq!(
            d.claim(BlockAddr(1), 0),
            None,
            "re-claim by same owner is silent"
        );
        assert_eq!(
            d.claim(BlockAddr(1), 1),
            Some(0),
            "movement reports previous owner"
        );
        assert_eq!(d.owner(BlockAddr(1)), Some(1));
        assert_eq!(d.release(BlockAddr(1)), Some(1));
        assert_eq!(d.owner(BlockAddr(1)), None);
        assert_eq!(d.len(), 0);
    }

    #[test]
    fn zero_cores_rejected() {
        assert_eq!(
            CoherenceController::new(0, SecPbConfig::default()).err(),
            Some(ConfigError::ZeroCores)
        );
    }
}
