//! Versioned whole-system checkpoints for crash-recovery and soak
//! restarts.
//!
//! A checkpoint captures *everything* a [`SecureSystem`] needs to resume
//! a run mid-stream and stay byte-identical to an uninterrupted
//! execution: the functional kernel (golden state, logical counters, NVM
//! image, integrity tree), the SecPB and its drain pipeline, every
//! timing structure whose state feeds the digested statistics (cache
//! LRU clocks, WPQ backpressure, NVM bank horizons, the store buffer,
//! the fractional-cycle accumulator), and the statistics themselves.
//!
//! ## Wire format
//!
//! ```text
//! magic "SPBC" | version u32 | config fingerprint u64 | sections...
//!   ... | "SPOL" | policy state (shadow root, write-amp counters)
//! ```
//!
//! The fingerprint is the first eight bytes of a SHA-512 over the wire
//! encoding of every configuration scalar plus the scheme, tree kind,
//! and key seed.  Geometry and keys are therefore never serialised —
//! restore targets must be *constructed* with the identical
//! configuration, and the fingerprint rejects a mismatch up front
//! instead of letting a shape check fail deep inside a section.
//!
//! ## Restore + replay ≡ straight-through
//!
//! The equivalence argument: every output of a run (the [`ShardOutcome`]
//! digest in the serve plane covers stats counters, histogram counts,
//! and cycle scalars) is a pure function of the state captured here and
//! the remaining trace.  The only state *not* captured is explicitly
//! output-invisible: the tracer's span aggregates (never digested), the
//! telemetry sink (observes, never steers), and the lazy engine's memo
//! caches (pure memoization over keys/counters — a cold memo recomputes
//! the same pads and digests).  Restore clears those; everything else
//! overlays exactly, so replaying epochs N..M after restoring at N
//! reproduces the uninterrupted run byte for byte —
//! `tests/checkpoint_replay.rs` pins this for every scheme × metadata
//! mode.
//!
//! [`ShardOutcome`]: https://docs.rs/secpb-bench

use secpb_crypto::sha512::{Digest, Sha512};
use secpb_sim::config::{CacheConfig, SystemConfig};
use secpb_sim::cycle::Cycle;
use secpb_sim::stats::Stats;
use secpb_sim::wire::{WireError, WireReader, WireWriter};

use crate::buffer::SecPb;
use crate::drain::DrainEngine;
use crate::metrics::CycleBreakdown;
use crate::scheme::Scheme;
use crate::system::SecureSystem;
use crate::tree::TreeKind;

/// The four magic bytes opening every checkpoint.
pub const MAGIC: [u8; 4] = *b"SPBC";

/// Current checkpoint wire-format version.
///
/// Version history:
/// - 1: initial format.
/// - 2: persistence-policy knobs join the config fingerprint and a
///   tagged [`POLICY_TAG`] section carrying the policy's analytic
///   state (shadow root, write-amplification counters) closes the
///   payload.
pub const VERSION: u32 = 2;

/// The four tag bytes opening the persistence-policy section (v2+).
pub const POLICY_TAG: [u8; 4] = *b"SPOL";

/// Why a checkpoint could not be produced or applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The front does not implement checkpointing (only the single-core
    /// [`SecureSystem`] front does).
    Unsupported,
    /// The bytes do not start with the `SPBC` magic.
    BadMagic,
    /// The checkpoint was written by a different wire-format version.
    VersionMismatch {
        /// The version found in the header.
        found: u32,
    },
    /// The checkpoint was taken on a system with a different
    /// configuration, scheme, tree kind, or key seed.
    ConfigMismatch,
    /// A section failed to decode (truncation or corruption).
    Wire(WireError),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Unsupported => {
                write!(f, "this front does not support checkpoint/restore")
            }
            CheckpointError::BadMagic => write!(f, "not a SecPB checkpoint (bad magic)"),
            CheckpointError::VersionMismatch { found } => write!(
                f,
                "checkpoint version {found} does not match supported version {VERSION}"
            ),
            CheckpointError::ConfigMismatch => write!(
                f,
                "checkpoint was taken under a different configuration/scheme/seed"
            ),
            CheckpointError::Wire(e) => write!(f, "checkpoint payload: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for CheckpointError {
    fn from(e: WireError) -> Self {
        CheckpointError::Wire(e)
    }
}

fn encode_cache_config(w: &mut WireWriter, c: &CacheConfig) {
    w.usize(c.size_bytes);
    w.usize(c.ways);
    w.usize(c.block_bytes);
    w.u64(c.access_latency);
}

/// The identity a checkpoint binds to: the first eight bytes of a
/// SHA-512 over every configuration scalar plus the scheme, integrity-
/// tree kind, and key seed.  Two systems with equal fingerprints decode
/// each other's checkpoints; anything else is rejected with
/// [`CheckpointError::ConfigMismatch`].
pub fn config_fingerprint(
    cfg: &SystemConfig,
    scheme: Scheme,
    tree_kind: TreeKind,
    key_seed: u64,
) -> u64 {
    let mut w = WireWriter::new();
    w.str(scheme.name());
    w.u8(match tree_kind {
        TreeKind::Monolithic => 0,
        TreeKind::Dbmf => 1,
        TreeKind::Sbmf => 2,
    });
    w.u64(key_seed);
    w.f64(cfg.core.freq_hz);
    w.u32(cfg.core.retire_width);
    w.usize(cfg.core.store_buffer_entries);
    w.f64(cfg.core.load_exposure);
    w.f64(cfg.core.store_exposure);
    for cache in [
        &cfg.l1,
        &cfg.l2,
        &cfg.l3,
        &cfg.counter_cache,
        &cfg.mac_cache,
        &cfg.bmt_cache,
    ] {
        encode_cache_config(&mut w, cache);
    }
    w.usize(cfg.wpq_entries);
    w.usize(cfg.secpb.entries);
    w.usize(cfg.secpb.entry_bytes);
    w.u64(cfg.secpb.access_latency);
    w.f64(cfg.secpb.high_watermark);
    w.f64(cfg.secpb.low_watermark);
    w.u32(cfg.security.bmt_levels);
    w.u64(cfg.security.mac_latency);
    w.u64(cfg.security.otp_latency);
    w.u64(cfg.security.bmt_hash_latency);
    w.bool(cfg.security.single_inflight_bmt);
    w.bool(cfg.security.value_independent_coalescing);
    w.bool(cfg.security.speculative_verification);
    w.u8(cfg.security.triad_levels);
    w.bool(cfg.security.shadow_counters);
    w.str(cfg.security.metadata_mode.name());
    w.str(cfg.security.crypto_backend.name());
    w.u64(cfg.nvm.size_bytes);
    w.u64(cfg.nvm.read_latency.raw());
    w.u64(cfg.nvm.write_latency.raw());
    w.usize(cfg.nvm.write_queue_entries);
    w.usize(cfg.nvm.read_queue_entries);
    w.usize(cfg.nvm.banks);
    let digest = Sha512::digest(&w.into_bytes());
    u64::from_le_bytes(digest.0[..8].try_into().expect("SHA-512 is 64 bytes"))
}

impl SecureSystem {
    fn fingerprint(&self) -> u64 {
        config_fingerprint(
            &self.cfg,
            self.scheme,
            self.domain.tree_kind,
            self.domain.seed,
        )
    }

    /// Serialises the complete system state into a versioned checkpoint.
    ///
    /// The capture is deterministic: checkpointing the same state twice
    /// produces identical bytes, and checkpointing a restored system
    /// reproduces the original checkpoint.
    pub fn checkpoint_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.raw(&MAGIC);
        w.u32(VERSION);
        w.u64(self.fingerprint());
        // ---- timing scalars ----
        w.u64(self.now.raw());
        w.u64(self.measure_from.raw());
        w.f64(self.frac);
        w.u64(self.pb_busy_until.raw());
        w.u64(self.bmt_busy_until.raw());
        w.usize(self.store_buffer.len());
        for c in &self.store_buffer {
            w.u64(c.raw());
        }
        // ---- timing structures ----
        self.hierarchy.encode_into(&mut w);
        self.metadata.encode_into(&mut w);
        self.wpq.encode_into(&mut w);
        self.nvm_timing.encode_into(&mut w);
        self.drain_engine.encode_into(&mut w);
        // ---- functional state ----
        self.pb.encode_into(&mut w);
        self.domain.encode_into(&mut w);
        // ---- observability ----
        self.stats.encode_into(&mut w);
        for (_, v) in self.breakdown.entries() {
            w.u64(v);
        }
        // ---- persistence-policy section (v2) ----
        w.raw(&POLICY_TAG);
        let ps = self.domain.policy_state();
        match ps.shadow_root {
            Some(d) => {
                w.bool(true);
                w.raw(&d.0);
            }
            None => w.bool(false),
        }
        w.u64(ps.node_writes);
        w.u64(ps.shadow_writes);
        w.u64(ps.leaf_persists);
        w.into_bytes()
    }

    /// Overlays a checkpoint produced by
    /// [`checkpoint_bytes`](Self::checkpoint_bytes) onto this system.
    ///
    /// The target must have been constructed with the identical
    /// configuration, scheme, tree kind, and key seed; the header
    /// fingerprint rejects anything else.  The attached telemetry sink
    /// survives the restore (telemetry observes, never steers); the
    /// tracer's span aggregates and the lazy engine's memo caches are
    /// reset — both are output-invisible.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] on bad magic, version or
    /// fingerprint mismatch, or payload truncation/corruption.  On a
    /// payload error the target may be partially overwritten and must be
    /// discarded.
    pub fn restore_bytes(&mut self, bytes: &[u8]) -> Result<(), CheckpointError> {
        let mut r = WireReader::new(bytes);
        if r.array::<4>().map_err(CheckpointError::Wire)? != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let found = r.u32()?;
        if found != VERSION {
            return Err(CheckpointError::VersionMismatch { found });
        }
        if r.u64()? != self.fingerprint() {
            return Err(CheckpointError::ConfigMismatch);
        }
        // ---- timing scalars ----
        self.now = Cycle(r.u64()?);
        self.measure_from = Cycle(r.u64()?);
        self.frac = r.f64()?;
        self.pb_busy_until = Cycle(r.u64()?);
        self.bmt_busy_until = Cycle(r.u64()?);
        let n = r.seq_len(8)?;
        self.store_buffer.clear();
        for _ in 0..n {
            self.store_buffer.push_back(Cycle(r.u64()?));
        }
        // ---- timing structures ----
        self.hierarchy.restore_from(&mut r)?;
        self.metadata.restore_from(&mut r)?;
        self.wpq.restore_from(&mut r)?;
        self.nvm_timing.restore_from(&mut r)?;
        self.drain_engine = DrainEngine::decode_from(&mut r)?;
        // ---- functional state ----
        self.pb = SecPb::decode_from(self.cfg.secpb, &mut r)?;
        self.domain.restore_from(&mut r)?;
        // ---- observability ----
        let sink = self.stats.sink().cloned();
        let mut stats = Stats::decode_from(&mut r)?;
        stats.set_sink(sink);
        self.stats = stats;
        self.breakdown = CycleBreakdown {
            retire: r.u64()?,
            load: r.u64()?,
            store_accept: r.u64()?,
            sb_stall: r.u64()?,
            nogap_wait: r.u64()?,
            drain_wait: r.u64()?,
        };
        self.tracer.reset();
        // ---- persistence-policy section (v2) ----
        if r.array::<4>()? != POLICY_TAG {
            return Err(CheckpointError::Wire(
                r.malformed("missing persistence-policy section tag"),
            ));
        }
        self.domain.policy_state.shadow_root = if r.bool()? {
            Some(Digest(r.array::<64>()?))
        } else {
            None
        };
        self.domain.policy_state.node_writes = r.u64()?;
        self.domain.policy_state.shadow_writes = r.u64()?;
        self.domain.policy_state.leaf_persists = r.u64()?;
        if !r.is_empty() {
            return Err(CheckpointError::Wire(
                r.malformed("trailing bytes after checkpoint payload"),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secpb_sim::addr::Address;
    use secpb_sim::trace::{Access, TraceItem};

    fn store_trace(base: u64, n: u64) -> Vec<TraceItem> {
        (0..n)
            .map(|i| TraceItem::then(7, Access::store(Address(base + (i % 40) * 64), i + 1)))
            .collect()
    }

    #[test]
    fn checkpoint_round_trip_is_byte_identical() {
        let mut sys = SecureSystem::new(SystemConfig::default(), Scheme::Cobcm, 42);
        sys.run_trace(store_trace(0x10_0000, 300).into_iter());
        let bytes = sys.checkpoint_bytes();

        let mut restored = SecureSystem::new(SystemConfig::default(), Scheme::Cobcm, 42);
        restored.restore_bytes(&bytes).unwrap();
        assert_eq!(
            restored.checkpoint_bytes(),
            bytes,
            "checkpointing a restored system must reproduce the checkpoint"
        );
    }

    #[test]
    fn restore_then_replay_matches_straight_through() {
        let first = store_trace(0x10_0000, 250);
        let second = store_trace(0x20_0000, 250);

        let mut reference = SecureSystem::new(SystemConfig::default(), Scheme::Cm, 7);
        reference.run_trace(first.iter().copied());
        let bytes = reference.checkpoint_bytes();
        reference.run_trace(second.iter().copied());
        reference.sync_metadata();

        let mut resumed = SecureSystem::new(SystemConfig::default(), Scheme::Cm, 7);
        resumed.restore_bytes(&bytes).unwrap();
        resumed.run_trace(second.iter().copied());
        resumed.sync_metadata();

        assert_eq!(resumed.checkpoint_bytes(), reference.checkpoint_bytes());
    }

    #[test]
    fn header_mismatches_are_rejected() {
        let sys = SecureSystem::new(SystemConfig::default(), Scheme::Cobcm, 1);
        let bytes = sys.checkpoint_bytes();

        let mut other_seed = SecureSystem::new(SystemConfig::default(), Scheme::Cobcm, 2);
        assert_eq!(
            other_seed.restore_bytes(&bytes),
            Err(CheckpointError::ConfigMismatch)
        );
        let mut other_scheme = SecureSystem::new(SystemConfig::default(), Scheme::Cm, 1);
        assert_eq!(
            other_scheme.restore_bytes(&bytes),
            Err(CheckpointError::ConfigMismatch)
        );
        let mut other_cfg = SecureSystem::new(
            SystemConfig::default().with_secpb_entries(64),
            Scheme::Cobcm,
            1,
        );
        assert_eq!(
            other_cfg.restore_bytes(&bytes),
            Err(CheckpointError::ConfigMismatch)
        );

        let mut same = SecureSystem::new(SystemConfig::default(), Scheme::Cobcm, 1);
        assert_eq!(
            same.restore_bytes(b"nope"),
            Err(CheckpointError::BadMagic),
            "short/garbage input is not a checkpoint"
        );
        let mut versioned = bytes.clone();
        versioned[4] = 0xFF;
        assert!(matches!(
            same.restore_bytes(&versioned),
            Err(CheckpointError::VersionMismatch { .. })
        ));
    }

    #[test]
    fn truncated_payload_reports_wire_error() {
        let mut sys = SecureSystem::new(SystemConfig::default(), Scheme::Cobcm, 9);
        sys.run_trace(store_trace(0x30_0000, 50).into_iter());
        let bytes = sys.checkpoint_bytes();
        let mut target = SecureSystem::new(SystemConfig::default(), Scheme::Cobcm, 9);
        let err = target.restore_bytes(&bytes[..bytes.len() - 3]).unwrap_err();
        assert!(matches!(err, CheckpointError::Wire(_)), "got {err:?}");
    }
}
