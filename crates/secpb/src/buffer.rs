//! The SecPB buffer: a small, fully-associative, battery-backed table of
//! [`Entry`]s with store coalescing, drain watermarks, and oldest-first
//! drain order (Sections III-B and IV-B of the paper).
//!
//! Entries live in a fixed-capacity [`EntryArena`] (one allocation for
//! the whole table); a block→handle index serves coalescing lookups and
//! a FIFO of handles serves drain ordering, so `oldest()` is O(1)
//! instead of a full-table scan and the store→drain steady state never
//! touches the allocator.

use std::collections::VecDeque;

use secpb_sim::addr::{Asid, BlockAddr};
use secpb_sim::config::SecPbConfig;
use secpb_sim::fxhash::FxHashMap;
use secpb_sim::wire::{WireError, WireReader, WireWriter};

use crate::arena::{EntryArena, Handle};
use crate::entry::Entry;

/// SecPB activity statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SecPbStats {
    /// Stores accepted (each is a persist: PPTI's numerator).
    pub persists: u64,
    /// Entries allocated (new blocks).
    pub allocations: u64,
    /// Entries drained (by watermark, eviction, or crash).
    pub drained_entries: u64,
    /// Total stores carried by drained entries (NWPE's numerator).
    pub drained_stores: u64,
    /// Highest occupancy ever reached (battery sizing interest: the
    /// worst-case drain obligation actually observed).
    pub peak_occupancy: u64,
}

impl SecPbStats {
    /// Mean number of writes per drained SecPB entry — the paper's NWPE
    /// metric.
    pub fn nwpe(&self) -> f64 {
        if self.drained_entries == 0 {
            0.0
        } else {
            self.drained_stores as f64 / self.drained_entries as f64
        }
    }
}

/// The SecPB table.
///
/// # Example
///
/// ```
/// use secpb_core::buffer::SecPb;
/// use secpb_sim::addr::{Asid, BlockAddr};
/// use secpb_sim::config::SecPbConfig;
///
/// let mut pb = SecPb::new(SecPbConfig::default());
/// pb.allocate(BlockAddr(1), Asid(0), [0u8; 64]);
/// assert!(pb.contains(BlockAddr(1)));
/// assert_eq!(pb.occupancy(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SecPb {
    config: SecPbConfig,
    arena: EntryArena,
    /// Block → live arena handle (coalescing lookups).
    index: FxHashMap<BlockAddr, Handle>,
    /// Handles in allocation order.  Removal leaves a stale handle
    /// behind (the arena's generation check filters it), pruned from
    /// the front eagerly and compacted wholesale when stale nodes pile
    /// up, so the front is always the oldest live entry.
    fifo: VecDeque<Handle>,
    next_seq: u64,
    stats: SecPbStats,
}

impl SecPb {
    /// Creates an empty buffer.
    pub fn new(config: SecPbConfig) -> Self {
        let capacity = config.entries;
        SecPb {
            config,
            arena: EntryArena::with_capacity(capacity),
            index: FxHashMap::with_capacity_and_hasher(capacity * 2, Default::default()),
            fifo: VecDeque::with_capacity(capacity * 2),
            next_seq: 0,
            stats: SecPbStats::default(),
        }
    }

    /// The buffer configuration.
    pub fn config(&self) -> &SecPbConfig {
        &self.config
    }

    /// Statistics so far.
    pub fn stats(&self) -> SecPbStats {
        self.stats
    }

    /// Number of resident entries.
    pub fn occupancy(&self) -> usize {
        self.arena.live()
    }

    /// Whether every entry slot is occupied.
    pub fn is_full(&self) -> bool {
        self.arena.live() >= self.config.entries
    }

    /// Whether occupancy has reached the high watermark (start draining).
    pub fn above_high_watermark(&self) -> bool {
        self.arena.live() >= self.config.high_watermark_entries()
    }

    /// Whether occupancy has fallen to the low watermark (stop draining).
    pub fn at_low_watermark(&self) -> bool {
        self.arena.live() <= self.config.low_watermark_entries()
    }

    /// Whether the buffer holds `block`.
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.index.contains_key(&block)
    }

    /// Immutable access to an entry.
    pub fn entry(&self, block: BlockAddr) -> Option<&Entry> {
        self.arena.get(*self.index.get(&block)?)
    }

    /// Mutable access to an entry.
    pub fn entry_mut(&mut self, block: BlockAddr) -> Option<&mut Entry> {
        self.arena.get_mut(*self.index.get(&block)?)
    }

    /// Records a store hitting an existing entry (coalescing) or a fresh
    /// one; the caller applies the store to the entry itself.
    pub fn note_persist(&mut self) {
        self.stats.persists += 1;
    }

    /// Allocates a fresh entry for `block` whose plaintext starts from
    /// `base`.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full or the block is already resident —
    /// callers must drain first and must coalesce hits.
    pub fn allocate(&mut self, block: BlockAddr, asid: Asid, base: [u8; 64]) -> &mut Entry {
        assert!(!self.is_full(), "SecPB is full; drain before allocating");
        assert!(
            !self.contains(block),
            "{block} already resident; coalesce instead"
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.allocations += 1;
        let handle = match self.arena.insert(Entry::new(block, asid, base, seq)) {
            Ok(h) => h,
            Err(_) => unreachable!("fullness checked above"),
        };
        self.index.insert(block, handle);
        self.fifo.push_back(handle);
        // Bound the stale-node backlog: live handles can never exceed
        // capacity, so past 2x the queue is mostly tombstones.
        if self.fifo.len() > 2 * self.config.entries.max(8) {
            let arena = &self.arena;
            self.fifo.retain(|h| arena.get(*h).is_some());
        }
        self.stats.peak_occupancy = self.stats.peak_occupancy.max(self.arena.live() as u64);
        self.arena.get_mut(handle).expect("just inserted")
    }

    /// Removes and returns an entry (drain or migration), updating NWPE
    /// accounting.
    pub fn remove(&mut self, block: BlockAddr) -> Option<Entry> {
        let handle = self.index.remove(&block)?;
        let e = self.arena.remove(handle).expect("index maps live handles");
        // Keep the FIFO front live so `oldest` stays O(1).
        while let Some(front) = self.fifo.front() {
            if self.arena.get(*front).is_some() {
                break;
            }
            self.fifo.pop_front();
        }
        self.stats.drained_entries += 1;
        self.stats.drained_stores += e.stores;
        Some(e)
    }

    /// The oldest resident entry's block (FIFO drain order).
    pub fn oldest(&self) -> Option<BlockAddr> {
        self.live_oldest_first().next().map(|e| e.block)
    }

    /// The oldest resident entry matching `filter` (drain-process policy).
    pub fn oldest_matching(&self, filter: impl Fn(&Entry) -> bool) -> Option<BlockAddr> {
        self.live_oldest_first()
            .find(|e| filter(e))
            .map(|e| e.block)
    }

    /// Blocks of all resident entries, oldest first.
    pub fn blocks_oldest_first(&self) -> Vec<BlockAddr> {
        self.live_oldest_first().map(|e| e.block).collect()
    }

    /// Blocks of resident entries owned by `asid`, oldest first.
    pub fn blocks_of_asid(&self, asid: Asid) -> Vec<BlockAddr> {
        self.live_oldest_first()
            .filter(|e| e.asid == asid)
            .map(|e| e.block)
            .collect()
    }

    /// Iterates over all resident entries in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = &Entry> {
        self.arena.iter()
    }

    /// Live entries in allocation (seq) order: walks the handle FIFO and
    /// lets the arena's generation check drop tombstones.
    fn live_oldest_first(&self) -> impl Iterator<Item = &Entry> {
        self.fifo.iter().filter_map(|h| self.arena.get(*h))
    }

    /// Appends the arena, the handle FIFO exactly as it stands (stale
    /// tombstones included, so the compaction heuristic fires at the same
    /// point after restore), the allocation sequence, and the statistics
    /// to a checkpoint.  The block→handle index is derivable and is
    /// rebuilt on decode.
    pub fn encode_into(&self, w: &mut WireWriter) {
        self.arena.encode_into(w);
        w.usize(self.fifo.len());
        for h in &self.fifo {
            w.u32(h.slot());
            w.u32(h.generation());
        }
        w.u64(self.next_seq);
        w.u64(self.stats.persists);
        w.u64(self.stats.allocations);
        w.u64(self.stats.drained_entries);
        w.u64(self.stats.drained_stores);
        w.u64(self.stats.peak_occupancy);
    }

    /// Rebuilds a buffer from [`encode_into`](Self::encode_into) bytes.
    /// The snapshot's arena size must match `config.entries`.
    ///
    /// # Errors
    ///
    /// Fails on capacity mismatch, an inconsistent image, or truncation.
    pub fn decode_from(config: SecPbConfig, r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let arena = EntryArena::decode_from(r)?;
        if arena.capacity() != config.entries {
            return Err(r.malformed("SecPB snapshot capacity does not match config"));
        }
        let n = r.seq_len(4 + 4)?;
        let mut fifo = VecDeque::with_capacity(n.max(config.entries * 2));
        for _ in 0..n {
            let slot = r.u32()?;
            let generation = r.u32()?;
            fifo.push_back(Handle::from_parts(slot, generation));
        }
        let next_seq = r.u64()?;
        let stats = SecPbStats {
            persists: r.u64()?,
            allocations: r.u64()?,
            drained_entries: r.u64()?,
            drained_stores: r.u64()?,
            peak_occupancy: r.u64()?,
        };
        let mut index = FxHashMap::with_capacity_and_hasher(config.entries * 2, Default::default());
        for h in fifo.iter() {
            // The arena's generation check filters stale tombstones; the
            // survivors are exactly the handles the index must hold.
            if let Some(e) = arena.get(*h) {
                index.insert(e.block, *h);
            }
        }
        if index.len() != arena.live() {
            return Err(r.malformed("SecPB snapshot FIFO does not cover all live entries"));
        }
        Ok(SecPb {
            config,
            arena,
            index,
            fifo,
            next_seq,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pb(entries: usize) -> SecPb {
        SecPb::new(SecPbConfig {
            entries,
            ..SecPbConfig::default()
        })
    }

    #[test]
    fn allocate_and_lookup() {
        let mut b = pb(4);
        b.allocate(BlockAddr(1), Asid(0), [7u8; 64]);
        assert!(b.contains(BlockAddr(1)));
        assert_eq!(b.entry(BlockAddr(1)).unwrap().plaintext, [7u8; 64]);
        assert!(!b.contains(BlockAddr(2)));
        assert_eq!(b.stats().allocations, 1);
    }

    #[test]
    fn watermarks_track_occupancy() {
        let mut b = pb(8); // HWM = 6, LWM = 4
        for i in 0..5u64 {
            b.allocate(BlockAddr(i), Asid(0), [0u8; 64]);
        }
        assert!(!b.above_high_watermark());
        b.allocate(BlockAddr(5), Asid(0), [0u8; 64]);
        assert!(b.above_high_watermark());
        assert!(!b.at_low_watermark());
        b.remove(BlockAddr(0));
        b.remove(BlockAddr(1));
        assert!(b.at_low_watermark());
    }

    #[test]
    fn full_buffer_is_detected() {
        let mut b = pb(2);
        b.allocate(BlockAddr(0), Asid(0), [0u8; 64]);
        assert!(!b.is_full());
        b.allocate(BlockAddr(1), Asid(0), [0u8; 64]);
        assert!(b.is_full());
    }

    #[test]
    #[should_panic(expected = "full")]
    fn allocate_into_full_buffer_panics() {
        let mut b = pb(1);
        b.allocate(BlockAddr(0), Asid(0), [0u8; 64]);
        b.allocate(BlockAddr(1), Asid(0), [0u8; 64]);
    }

    #[test]
    #[should_panic(expected = "already resident")]
    fn duplicate_allocation_panics() {
        let mut b = pb(4);
        b.allocate(BlockAddr(0), Asid(0), [0u8; 64]);
        b.allocate(BlockAddr(0), Asid(0), [0u8; 64]);
    }

    #[test]
    fn oldest_first_order() {
        let mut b = pb(4);
        b.allocate(BlockAddr(9), Asid(0), [0u8; 64]);
        b.allocate(BlockAddr(3), Asid(0), [0u8; 64]);
        b.allocate(BlockAddr(7), Asid(0), [0u8; 64]);
        assert_eq!(b.oldest(), Some(BlockAddr(9)));
        assert_eq!(
            b.blocks_oldest_first(),
            vec![BlockAddr(9), BlockAddr(3), BlockAddr(7)]
        );
        b.remove(BlockAddr(9));
        assert_eq!(b.oldest(), Some(BlockAddr(3)));
    }

    #[test]
    fn nwpe_accounting() {
        let mut b = pb(4);
        b.allocate(BlockAddr(0), Asid(0), [0u8; 64]);
        b.entry_mut(BlockAddr(0)).unwrap().apply_store(0, 1, 8);
        b.entry_mut(BlockAddr(0)).unwrap().apply_store(8, 2, 8);
        b.entry_mut(BlockAddr(0)).unwrap().apply_store(0, 3, 8);
        b.allocate(BlockAddr(1), Asid(0), [0u8; 64]);
        b.entry_mut(BlockAddr(1)).unwrap().apply_store(0, 1, 8);
        b.remove(BlockAddr(0));
        b.remove(BlockAddr(1));
        // 4 stores over 2 drained entries.
        assert!((b.stats().nwpe() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn nwpe_of_nothing_is_zero() {
        assert_eq!(SecPbStats::default().nwpe(), 0.0);
    }

    #[test]
    fn peak_occupancy_tracks_high_water() {
        let mut b = pb(4);
        b.allocate(BlockAddr(0), Asid(0), [0u8; 64]);
        b.allocate(BlockAddr(1), Asid(0), [0u8; 64]);
        b.remove(BlockAddr(0));
        b.allocate(BlockAddr(2), Asid(0), [0u8; 64]);
        assert_eq!(b.stats().peak_occupancy, 2, "peak was two resident entries");
    }

    #[test]
    fn asid_filtering() {
        let mut b = pb(4);
        b.allocate(BlockAddr(0), Asid(1), [0u8; 64]);
        b.allocate(BlockAddr(1), Asid(2), [0u8; 64]);
        b.allocate(BlockAddr(2), Asid(1), [0u8; 64]);
        assert_eq!(b.blocks_of_asid(Asid(1)), vec![BlockAddr(0), BlockAddr(2)]);
        assert_eq!(b.blocks_of_asid(Asid(2)), vec![BlockAddr(1)]);
        assert_eq!(b.oldest_matching(|e| e.asid == Asid(2)), Some(BlockAddr(1)));
    }

    #[test]
    fn remove_absent_returns_none() {
        let mut b = pb(2);
        assert!(b.remove(BlockAddr(5)).is_none());
        assert_eq!(b.stats().drained_entries, 0);
    }
}
