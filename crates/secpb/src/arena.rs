//! A fixed-capacity, generation-indexed slab for SecPB [`Entry`]s.
//!
//! The buffer's hot loop is store→coalesce→drain at memory speed; a
//! `HashMap<BlockAddr, Entry>` keyed by block moves the ~¼ KiB entry
//! payload on every rehash and churns the allocator on every
//! allocate/drain pair.  The arena fixes the storage at construction
//! time — `capacity` slots in one contiguous allocation — and recycles
//! slots through a free list, so steady-state operation never touches
//! the allocator.
//!
//! Handles are (slot, generation) pairs.  Removing an entry bumps the
//! slot's generation, so a stale handle held elsewhere (the FIFO drain
//! queue keeps them) can never alias a later tenant of the same slot:
//! [`EntryArena::get`] checks the generation and returns `None` for
//! stale handles.  No `unsafe` anywhere — aliasing safety is a data
//! invariant, not a pointer trick.

use secpb_sim::wire::{WireError, WireReader, WireWriter};

use crate::entry::Entry;

/// A generation-checked reference to an arena slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Handle {
    slot: u32,
    generation: u32,
}

impl Handle {
    /// The raw slot index (stable while the handle is live).
    pub fn slot(self) -> u32 {
        self.slot
    }

    /// The generation this handle was minted at.
    pub fn generation(self) -> u32 {
        self.generation
    }

    /// Reassembles a handle from its parts (checkpoint restore only —
    /// the arena's generation check still guards every access).
    pub(crate) fn from_parts(slot: u32, generation: u32) -> Self {
        Handle { slot, generation }
    }
}

#[derive(Debug, Clone)]
struct Slot {
    generation: u32,
    entry: Option<Entry>,
}

/// The slab itself: fixed capacity, free-list recycling, generation
/// checks on every access.
#[derive(Debug, Clone)]
pub struct EntryArena {
    slots: Vec<Slot>,
    /// Free slot indices, used LIFO so a just-drained slot (host-cache
    /// warm) is the next one filled.
    free: Vec<u32>,
}

impl EntryArena {
    /// Creates an arena with all `capacity` slots free.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` exceeds `u32::MAX` slots.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(u32::try_from(capacity).is_ok(), "arena capacity too large");
        EntryArena {
            slots: (0..capacity)
                .map(|_| Slot {
                    generation: 0,
                    entry: None,
                })
                .collect(),
            free: (0..capacity as u32).rev().collect(),
        }
    }

    /// Total slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of live entries.
    pub fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Stores `entry` in a free slot and returns its handle, or gives the
    /// entry back when every slot is occupied.
    ///
    /// The large `Err` variant is the point: on overflow the caller gets
    /// its entry back by move, not via a heap box that would put the
    /// allocator right back on the hot path.
    #[allow(clippy::result_large_err)]
    pub fn insert(&mut self, entry: Entry) -> Result<Handle, Entry> {
        let Some(slot) = self.free.pop() else {
            return Err(entry);
        };
        let s = &mut self.slots[slot as usize];
        debug_assert!(s.entry.is_none(), "free-listed slot must be vacant");
        s.entry = Some(entry);
        Ok(Handle {
            slot,
            generation: s.generation,
        })
    }

    /// The entry behind `handle`, or `None` if the handle is stale (its
    /// tenant was removed, whatever now occupies the slot).
    pub fn get(&self, handle: Handle) -> Option<&Entry> {
        let s = self.slots.get(handle.slot as usize)?;
        if s.generation != handle.generation {
            return None;
        }
        s.entry.as_ref()
    }

    /// Mutable access behind `handle`, with the same staleness check.
    pub fn get_mut(&mut self, handle: Handle) -> Option<&mut Entry> {
        let s = self.slots.get_mut(handle.slot as usize)?;
        if s.generation != handle.generation {
            return None;
        }
        s.entry.as_mut()
    }

    /// Removes and returns the entry behind `handle`, bumping the slot's
    /// generation so every outstanding copy of the handle goes stale.
    pub fn remove(&mut self, handle: Handle) -> Option<Entry> {
        let s = self.slots.get_mut(handle.slot as usize)?;
        if s.generation != handle.generation {
            return None;
        }
        let entry = s.entry.take()?;
        s.generation = s.generation.wrapping_add(1);
        self.free.push(handle.slot);
        Some(entry)
    }

    /// Iterates over live entries in slot order (deterministic: a pure
    /// function of the operation history).
    pub fn iter(&self) -> impl Iterator<Item = &Entry> {
        self.slots.iter().filter_map(|s| s.entry.as_ref())
    }

    /// Appends every slot (generation + occupant) and the free list in
    /// exact LIFO order to a checkpoint, so slot reuse after restore
    /// follows the same sequence as the original run.
    pub fn encode_into(&self, w: &mut WireWriter) {
        w.usize(self.slots.len());
        for slot in &self.slots {
            w.u32(slot.generation);
            match &slot.entry {
                Some(e) => {
                    w.bool(true);
                    e.encode_into(w);
                }
                None => w.bool(false),
            }
        }
        w.usize(self.free.len());
        for &f in &self.free {
            w.u32(f);
        }
    }

    /// Rebuilds an arena from [`encode_into`](Self::encode_into) bytes.
    ///
    /// # Errors
    ///
    /// Fails if the free list disagrees with slot occupancy, or on
    /// truncation.
    pub fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.seq_len(5)?;
        let mut slots = Vec::with_capacity(n);
        for _ in 0..n {
            let generation = r.u32()?;
            let entry = if r.bool()? {
                Some(Entry::decode_from(r)?)
            } else {
                None
            };
            slots.push(Slot { generation, entry });
        }
        let free_len = r.seq_len(4)?;
        let mut free = Vec::with_capacity(free_len);
        let mut listed = vec![false; slots.len()];
        for _ in 0..free_len {
            let idx = r.u32()?;
            match slots.get(idx as usize) {
                Some(slot) if slot.entry.is_none() && !listed[idx as usize] => {
                    listed[idx as usize] = true;
                    free.push(idx);
                }
                _ => return Err(r.malformed("arena free list names an occupied slot")),
            }
        }
        let vacant = slots.iter().filter(|s| s.entry.is_none()).count();
        if vacant != free.len() {
            return Err(r.malformed("arena free list does not cover all vacant slots"));
        }
        Ok(EntryArena { slots, free })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secpb_sim::addr::{Asid, BlockAddr};

    fn entry(block: u64, seq: u64) -> Entry {
        Entry::new(BlockAddr(block), Asid(0), [block as u8; 64], seq)
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut a = EntryArena::with_capacity(2);
        let h = a.insert(entry(7, 0)).unwrap();
        assert_eq!(a.get(h).unwrap().block, BlockAddr(7));
        assert_eq!(a.live(), 1);
        let e = a.remove(h).unwrap();
        assert_eq!(e.block, BlockAddr(7));
        assert_eq!(a.live(), 0);
    }

    #[test]
    fn full_arena_returns_entry_back() {
        let mut a = EntryArena::with_capacity(1);
        a.insert(entry(1, 0)).unwrap();
        let back = a.insert(entry(2, 1)).unwrap_err();
        assert_eq!(back.block, BlockAddr(2));
    }

    #[test]
    fn stale_handle_cannot_alias_reused_slot() {
        let mut a = EntryArena::with_capacity(1);
        let h1 = a.insert(entry(1, 0)).unwrap();
        a.remove(h1).unwrap();
        let h2 = a.insert(entry(2, 1)).unwrap();
        // Same slot, new generation: the old handle must see nothing.
        assert_eq!(h1.slot(), h2.slot());
        assert!(a.get(h1).is_none());
        assert!(a.get_mut(h1).is_none());
        assert!(a.remove(h1).is_none());
        assert_eq!(a.get(h2).unwrap().block, BlockAddr(2));
    }

    #[test]
    fn double_remove_is_none() {
        let mut a = EntryArena::with_capacity(2);
        let h = a.insert(entry(3, 0)).unwrap();
        assert!(a.remove(h).is_some());
        assert!(a.remove(h).is_none());
    }

    #[test]
    fn iter_sees_only_live_entries() {
        let mut a = EntryArena::with_capacity(4);
        let h0 = a.insert(entry(10, 0)).unwrap();
        a.insert(entry(11, 1)).unwrap();
        a.remove(h0).unwrap();
        let blocks: Vec<_> = a.iter().map(|e| e.block).collect();
        assert_eq!(blocks, vec![BlockAddr(11)]);
    }

    #[test]
    fn slots_recycle_without_growth() {
        let mut a = EntryArena::with_capacity(3);
        for round in 0..100u64 {
            let h = a.insert(entry(round, round)).unwrap();
            assert_eq!(a.capacity(), 3);
            a.remove(h).unwrap();
        }
        assert_eq!(a.live(), 0);
    }
}
