//! The crash/verdict kernel: battery-powered crash drains for the
//! single-core system, and the post-crash recovery sweep shared by all
//! three fronts.
//!
//! Recovery rebuilds the integrity tree from the persisted counter
//! blocks, checks the root register, then decrypts and MAC-verifies every
//! data block, assigning each a [`BlockVerdict`].  The verdict order is
//! identical for every front: MAC mismatch → tampering detected;
//! decrypts-to-expected → verified; otherwise the staleness must be
//! *accounted* (brown-out loss or an entry still buffered at the crash)
//! or it is a plaintext mismatch — the dangerous case a storm fails on.

use secpb_crypto::counter::SplitCounter;
use secpb_mem::store::NvmStore;
use secpb_sim::addr::BlockAddr;
use secpb_sim::telemetry::TelemetryEvent;

use crate::crash::{
    BlockVerdict, CrashKind, CrashReport, DrainPolicy, DrainWork, RecoveryError, RecoveryReport,
};
use crate::domain::PersistDomain;
use crate::metrics::counters;
use crate::policy::CounterLayout;
use crate::system::SecureSystem;

impl PersistDomain {
    /// The recovery sweep.  `secure` selects the full decrypt/MAC/tree
    /// path (plain plaintext comparison otherwise — the `bbb` baseline);
    /// `in_flight` reports whether a block was still buffered at the
    /// crash (always `false` for the whole-hierarchy fronts, which never
    /// leave entries behind).
    pub(crate) fn recover_report(
        &self,
        lost: &[BlockAddr],
        secure: bool,
        in_flight: &dyn Fn(BlockAddr) -> bool,
    ) -> RecoveryReport {
        let mut report = RecoveryReport::default();
        let stale_verdict = |block: BlockAddr| {
            if lost.contains(&block) {
                BlockVerdict::LostStale
            } else if in_flight(block) {
                BlockVerdict::InFlightStale
            } else {
                BlockVerdict::PlaintextMismatch
            }
        };
        let mut blocks: Vec<BlockAddr> = self.nvm.data_blocks().collect();
        blocks.sort_unstable();

        if !secure {
            report.root_ok = true;
            for block in blocks {
                report.blocks_checked += 1;
                let pt = self.nvm.read_data(block);
                let verdict = if pt == self.expected_plaintext(block) {
                    BlockVerdict::Verified
                } else {
                    stale_verdict(block)
                };
                match verdict {
                    BlockVerdict::PlaintextMismatch => report.plaintext_mismatches.push(block),
                    BlockVerdict::LostStale => report.lost_stale.push(block),
                    BlockVerdict::InFlightStale => report.in_flight_stale.push(block),
                    _ => {}
                }
                report.verdicts.push((block, verdict));
            }
            return report;
        }

        // The functional oracle is policy-independent: rebuild the tree
        // from the persisted counter blocks and match it against the
        // durable root register, so a flip anywhere in the counter image
        // is caught under every durable-tree layout.  The *policy*
        // changes what the recovery-latency model charges for this sweep
        // ([`RecoveryCost`](crate::policy::RecoveryCost)) and adds its
        // own durable-layout consistency check on top.
        let rebuilt_ok = {
            let mut rebuilt = self.rebuilt_tree();
            let mut pages: Vec<u64> = self.nvm.counter_pages().collect();
            pages.sort_unstable();
            for page in pages {
                let cb = self.nvm.read_counters(page);
                rebuilt.update_leaf(page, self.counter_digest(page, &cb));
            }
            rebuilt.sync();
            self.nvm.bmt_root() == Some(rebuilt.root())
        };
        let layout_ok = if self.policy.counters == CounterLayout::Shadow {
            // Fast-recovery layout (Huang & Hua): the durable shadow of
            // the root must validate the register.  Every recovery
            // follows a sync, so the shadow reflects the final persisted
            // root in both metadata modes.
            self.nvm.bmt_root().is_some() && self.nvm.bmt_root() == self.policy_state.shadow_root
        } else if let Some(frontier) = self.persisted_frontier() {
            // Triad-NVM selective persistence: folding up from the
            // durable level frontier must land on the root register.
            self.nvm.bmt_root() == Some(frontier.root)
        } else {
            true
        };
        report.root_ok = rebuilt_ok && layout_ok;

        // The sweep MACs every persisted block; verifying a chunk at a
        // time turns the hot loop into a few multi-lane HMAC dispatches
        // per chunk instead of one full HMAC per block.
        const SWEEP_CHUNK: usize = 256;
        let mut cts: Vec<([u8; 64], SplitCounter)> = Vec::with_capacity(SWEEP_CHUNK);
        let mut tags: Vec<u64> = Vec::with_capacity(SWEEP_CHUNK);
        for chunk in blocks.chunks(SWEEP_CHUNK) {
            cts.clear();
            cts.extend(chunk.iter().map(|&block| {
                let page = NvmStore::page_of(block);
                let slot = NvmStore::page_slot_of(block);
                let ctr = self.nvm.read_counters(page).counter_of(slot);
                (self.nvm.read_data(block), ctr)
            }));
            let msgs: Vec<(&[u8; 64], u64, SplitCounter)> = chunk
                .iter()
                .zip(&cts)
                .map(|(&block, (ct, ctr))| (ct, block.index(), *ctr))
                .collect();
            tags.clear();
            self.mac_engine.compute_truncated_batch(&msgs, &mut tags);
            for ((&block, (ct, ctr)), &tag) in chunk.iter().zip(&cts).zip(&tags) {
                report.blocks_checked += 1;
                let verdict = if tag != self.nvm.read_mac(block) {
                    report.mac_failures.push(block);
                    BlockVerdict::MacMismatch
                } else {
                    let pt = self.otp_engine.decrypt(ct, block.index(), *ctr);
                    if pt == self.expected_plaintext(block) {
                        BlockVerdict::Verified
                    } else {
                        let v = stale_verdict(block);
                        match v {
                            BlockVerdict::PlaintextMismatch => {
                                report.plaintext_mismatches.push(block)
                            }
                            BlockVerdict::LostStale => report.lost_stale.push(block),
                            BlockVerdict::InFlightStale => report.in_flight_stale.push(block),
                            _ => {}
                        }
                        v
                    }
                };
                report.verdicts.push((block, verdict));
            }
        }
        report
    }

    /// Re-reads the durable image of brown-out-lost blocks back into the
    /// architectural expectation, modelling the application observing
    /// what actually persisted before continuing.  Without this a storm
    /// could not keep running after a brown-out: the golden state would
    /// remember stores whose entries evaporated with the battery.
    pub(crate) fn resync_lost(&mut self, lost: &[BlockAddr], secure: bool) {
        for &block in lost {
            if !self.nvm.contains_data(block) {
                // Never persisted at all: the durable view is zeros.
                self.golden.remove(&block);
                continue;
            }
            let pt = if secure {
                let page = NvmStore::page_of(block);
                let slot = NvmStore::page_slot_of(block);
                let ctr = self.nvm.read_counters(page).counter_of(slot);
                self.otp_engine
                    .decrypt(&self.nvm.read_data(block), block.index(), ctr)
            } else {
                self.nvm.read_data(block)
            };
            self.golden.insert(block, pt);
        }
    }
}

impl SecureSystem {
    /// Handles a crash: the battery drains the SecPB (per `policy` for
    /// application crashes) and completes all security metadata, closing
    /// the draining and sec-sync gaps.
    pub fn crash(
        &mut self,
        kind: CrashKind,
        policy: DrainPolicy,
    ) -> Result<CrashReport, RecoveryError> {
        self.crash_with_budget(kind, policy, None)
    }

    /// [`crash`](Self::crash) under a battery budget: at most
    /// `max_drain_entries` entries drain (oldest first, the drain order);
    /// anything younger is *lost* — dropped undrained and reported in
    /// [`CrashReport::lost_blocks`] — modelling a brown-out where the
    /// provisioned energy runs out mid-drain.  `None` means a fully
    /// provisioned battery.
    pub fn crash_with_budget(
        &mut self,
        kind: CrashKind,
        policy: DrainPolicy,
        max_drain_entries: Option<u64>,
    ) -> Result<CrashReport, RecoveryError> {
        let at = self.finish_time();
        let before = self.stats.clone();

        let mut blocks: Vec<BlockAddr> = match (kind, policy) {
            (CrashKind::ApplicationCrash(asid), DrainPolicy::DrainProcess) => {
                self.pb.blocks_of_asid(asid)
            }
            _ => self.pb.blocks_oldest_first(),
        };
        let budget = usize::try_from(max_drain_entries.unwrap_or(u64::MAX)).unwrap_or(usize::MAX);
        let lost_blocks: Vec<BlockAddr> = if blocks.len() > budget {
            blocks.split_off(budget)
        } else {
            Vec::new()
        };
        let entries = blocks.len() as u64;
        let mut last_drain_issue = at;
        for block in blocks {
            let completion = self.drain_one(block, last_drain_issue)?;
            // The PB-to-MC move itself is quick; track pipeline occupancy
            // through the drain engine.
            last_drain_issue = last_drain_issue.max(completion.min(last_drain_issue + 8));
        }
        // Battery exhausted: the remaining entries never leave the SecPB,
        // and with power gone the buffer contents evaporate.
        for &block in &lost_blocks {
            if self.pb.remove(block).is_none() {
                return Err(RecoveryError::MissingPbEntry(block));
            }
        }
        let drain_complete_at = last_drain_issue;
        let mut secsync = self.drain_engine.all_complete_at().max(drain_complete_at);
        secsync = secsync.max(self.wpq.drained_at());
        // Fold any cached BMF subtree roots (and, in lazy mode, all
        // deferred tree updates) into the persisted root.
        let sync_hashes = self.sync_metadata();
        secsync += sync_hashes * self.cfg.security.bmt_hash_latency;

        let full_power_cycle = !matches!(kind, CrashKind::ApplicationCrash(_));
        if full_power_cycle {
            self.hierarchy.clear();
            self.metadata.clear();
            self.store_buffer.clear();
        }

        let after = &self.stats;
        let delta = |name: &str| after.get(name).saturating_sub(before.get(name));
        let work = DrainWork {
            entries,
            // Bytes of entry state per drain: only the fields the scheme
            // actually populates move to the MC (Figure 5's field table).
            bytes_pb_to_mc: entries * self.scheme.entry_footprint_bytes(),
            // Table III's movement costs are end-to-end (SecPB *to PM*),
            // so the PM delivery of the entry's own tuple is already
            // covered by `bytes_pb_to_mc`; nothing extra accrues here.
            bytes_mc_to_pm: 0,
            counter_fetches: delta(counters::COUNTER_MISSES),
            bmt_node_hashes: delta(counters::LATE_BMT_NODE_HASHES),
            bmt_node_fetches: delta(counters::LATE_BMT_NODE_HASHES),
            otps: delta(counters::OTPS),
            macs: delta(counters::MACS),
            ciphertexts: delta(counters::CIPHERTEXTS),
        };

        if let Some(sink) = self.stats.sink() {
            sink.emit(&TelemetryEvent::CrashMarker {
                power_loss: full_power_cycle,
                cycle: at.raw(),
            });
            sink.emit(&TelemetryEvent::DrainMarker {
                entries,
                cycle: drain_complete_at.raw(),
            });
        }

        Ok(CrashReport {
            kind,
            at,
            drain_complete_at,
            secsync_complete_at: secsync,
            work,
            lost_blocks,
        })
    }

    /// Whether background drains are currently in flight (issued but not
    /// retired) — the [`secpb_sim::fault::CrashTrigger::MidDrain`]
    /// observation point.
    pub fn drains_in_flight(&self) -> bool {
        self.drain_engine.next_completion().is_some()
    }

    /// Post-crash recovery: rebuilds the integrity tree from the persisted
    /// counters, verifies the root register, decrypts and MAC-verifies
    /// every data block, and checks the plaintext against the
    /// architecturally expected post-crash state.
    pub fn recover(&self) -> RecoveryReport {
        self.recover_with(&[])
    }

    /// [`recover`](Self::recover) with lost-block accounting: blocks
    /// listed in `lost` (a brown-out crash report's
    /// [`CrashReport::lost_blocks`]) and blocks still SecPB-resident
    /// (e.g. survivors of a [`DrainPolicy::DrainProcess`] drain) are
    /// *expected* to read back stale — they get
    /// [`BlockVerdict::LostStale`] / [`BlockVerdict::InFlightStale`]
    /// verdicts instead of counting as plaintext mismatches.
    pub fn recover_with(&self, lost: &[BlockAddr]) -> RecoveryReport {
        let report = self
            .domain
            .recover_report(lost, self.scheme.is_secure(), &|b| self.pb.contains(b));
        if let Some(sink) = self.stats.sink() {
            sink.emit(&TelemetryEvent::RecoveryMarker {
                consistent: report.is_consistent(),
                blocks: report.blocks_checked,
                cycle: self.finish_time().raw(),
            });
        }
        report
    }

    /// Re-reads the durable image of brown-out-lost blocks back into the
    /// architectural expectation (see
    /// `PersistDomain::resync_lost`'s rationale).
    pub fn resync_lost_golden(&mut self, lost: &[BlockAddr]) {
        let secure = self.scheme.is_secure();
        self.domain.resync_lost(lost, secure);
    }
}
