//! The shared security/persistence kernel all three system fronts
//! delegate to.
//!
//! [`SecureSystem`](crate::system::SecureSystem),
//! [`EadrSystem`](crate::eadr::EadrSystem) and
//! [`MultiCoreSystem`](crate::multicore::MultiCoreSystem) differ in *when*
//! and *why* a memory tuple persists (SecPB drains, LLC writebacks, or
//! per-core coherence events) — but the tuple pipeline itself
//! (counter → OTP → BMT → ciphertext → MAC, Figure 4) and the durable
//! state it feeds are one machine.  [`PersistDomain`] owns that machine:
//! the architectural golden state, the logical counters, the NVM store,
//! the crypto engines, and the integrity tree, plus the flush/persist
//! kernels every front drives.  The crash-verdict and recovery kernels
//! live in [`recovery`](crate::recovery), implemented on this type.
//!
//! Each front keeps its historical key-derivation salts (a
//! [`DomainKeys`]) so the refactor is bit-identical to the three
//! hand-written implementations it replaces.

use secpb_crypto::backend::CryptoBackend;
use secpb_crypto::counter::{CounterBlock, SplitCounter};
use secpb_crypto::mac::BlockMac;
use secpb_crypto::memo::DigestMemo;
use secpb_crypto::otp::OtpEngine;
use secpb_crypto::sha512::{Digest, Sha512};
use secpb_mem::store::NvmStore;
use secpb_sim::addr::BlockAddr;
use secpb_sim::config::{CryptoBackendKind, MetadataMode};
use secpb_sim::fxhash::FxHashMap;
use secpb_sim::trace::Access;
use secpb_sim::wire::{WireError, WireReader, WireWriter};

use crate::entry::Entry;
use crate::policy::{CounterLayout, PersistencePolicy, PolicyState, TreePersistence};
use crate::tree::{IntegrityTree, TreeKind};

/// BMT arity used throughout (8-ary, 8 levels covers 16 M pages).
pub(crate) const BMT_ARITY: usize = 8;

/// Maps the dependency-free config name to the concrete crypto backend.
pub(crate) fn resolve_backend(kind: CryptoBackendKind) -> CryptoBackend {
    match kind {
        CryptoBackendKind::Auto => CryptoBackend::auto(),
        CryptoBackendKind::Scalar => CryptoBackend::Scalar,
        CryptoBackendKind::MultiBlock => CryptoBackend::MultiBlock,
        CryptoBackendKind::Hw => CryptoBackend::HwCrypto,
    }
}

/// Per-front key-derivation salts.  The three fronts historically derived
/// their AES/tree keys with different constants; preserving them keeps
/// every persisted image byte-identical to the pre-refactor code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomainKeys {
    /// Multiplier mixed into each AES key byte.
    pub aes_mult: u64,
    /// XOR salt applied to the key seed for the integrity-tree key.
    pub tree_xor: u64,
}

impl DomainKeys {
    /// Salts used by the single-core [`SecureSystem`](crate::system::SecureSystem).
    pub const SECPB: DomainKeys = DomainKeys {
        aes_mult: 0x9E37,
        tree_xor: 0xB111_7AB1E,
    };
    /// Salts used by [`EadrSystem`](crate::eadr::EadrSystem).
    pub const EADR: DomainKeys = DomainKeys {
        aes_mult: 0xEAD2,
        tree_xor: 0xEAD2,
    };
    /// Salts used by [`MultiCoreSystem`](crate::multicore::MultiCoreSystem).
    pub const MULTI_CORE: DomainKeys = DomainKeys {
        aes_mult: 0x517C,
        tree_xor: 0xC0_FFEE,
    };
}

/// What a `PersistDomain::flush_entry` call actually computed, so each
/// front can translate the work into its own statistics namespace.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FlushRecord {
    /// The entry arrived without a valid counter; the kernel incremented
    /// the logical counter (raw, no overflow handling).
    pub counter_incremented: bool,
    /// The OTP was generated at flush time (was not carried early).
    pub otp_generated: bool,
    /// The ciphertext was generated at flush time.
    pub ciphertext_generated: bool,
    /// The MAC was computed at flush time.
    pub mac_generated: bool,
    /// BMT node hashes charged by the leaf update.
    pub tree_hashes: u64,
}

/// The durable integrity-tree frontier a
/// [`TreePersistence::Levels`] policy keeps online (see
/// [`PersistDomain::persisted_frontier`]).
pub(crate) struct PersistedFrontier {
    /// `(index, digest)` pairs of the frontier level's nodes.
    pub(crate) nodes: Vec<(u64, Digest)>,
    /// The root the frontier folds up to.
    pub(crate) root: Digest,
    /// Hash invocations that fold costs (recovery accounting).
    pub(crate) fold_hashes: u64,
}

/// The shared persist-domain core: golden state, counters, NVM image,
/// crypto engines, and integrity tree.
///
/// Fields are crate-visible so the fronts (and the split
/// `pipeline`/`recovery` modules) can drive them directly; external users
/// go through the fronts or the [`PersistSystem`](crate::facade::PersistSystem)
/// facade.
pub struct PersistDomain {
    pub(crate) tree_kind: TreeKind,
    pub(crate) keys: DomainKeys,
    pub(crate) seed: u64,
    pub(crate) bmt_levels: u32,
    pub(crate) golden: FxHashMap<BlockAddr, [u8; 64]>,
    pub(crate) counters: FxHashMap<u64, CounterBlock>,
    pub(crate) nvm: NvmStore,
    pub(crate) otp_engine: OtpEngine,
    pub(crate) mac_engine: BlockMac,
    pub(crate) tree: IntegrityTree,
    pub(crate) mode: MetadataMode,
    /// Resolved crypto backend every engine dispatches through.
    pub(crate) backend: CryptoBackend,
    pub(crate) ctr_digests: DigestMemo,
    /// The persistence policy driving this domain (what metadata is
    /// persisted when); `PersistencePolicy::for_scheme` layouts are the
    /// byte-identical baseline.
    pub(crate) policy: PersistencePolicy,
    /// Dynamic policy state: shadow root + write-amplification counters.
    pub(crate) policy_state: PolicyState,
}

impl std::fmt::Debug for PersistDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PersistDomain")
            .field("tree_kind", &self.tree_kind)
            .field("mode", &self.mode)
            .field("data_blocks", &self.nvm.data_block_count())
            .finish_non_exhaustive()
    }
}

impl PersistDomain {
    /// Builds the kernel, deriving the AES/MAC/tree keys from `key_seed`
    /// with the front's salts.
    pub(crate) fn new(
        keys: DomainKeys,
        tree_kind: TreeKind,
        bmt_levels: u32,
        mode: MetadataMode,
        backend_kind: CryptoBackendKind,
        key_seed: u64,
        policy: PersistencePolicy,
    ) -> Self {
        let mut aes_key = [0u8; 24];
        for (i, b) in aes_key.iter_mut().enumerate() {
            *b = (key_seed.rotate_left(i as u32) ^ (i as u64 * keys.aes_mult)) as u8;
        }
        let backend = resolve_backend(backend_kind);
        let mac_key = key_seed.to_le_bytes();
        let tree_key = (key_seed ^ keys.tree_xor).to_le_bytes();
        let mut tree = IntegrityTree::new(tree_kind, &tree_key, BMT_ARITY, bmt_levels);
        tree.set_backend(backend);
        let mut otp_engine = OtpEngine::new(&aes_key);
        otp_engine.set_backend(backend);
        let mut mac_engine = BlockMac::new(&mac_key);
        mac_engine.set_backend(backend);
        if mode == MetadataMode::Lazy {
            tree.set_lazy(true);
            otp_engine.enable_pad_cache(secpb_crypto::memo::DEFAULT_CAPACITY);
        }
        PersistDomain {
            tree_kind,
            keys,
            seed: key_seed,
            bmt_levels,
            golden: FxHashMap::default(),
            counters: FxHashMap::default(),
            nvm: NvmStore::new(),
            otp_engine,
            mac_engine,
            tree,
            mode,
            backend,
            ctr_digests: DigestMemo::new(secpb_crypto::memo::DEFAULT_CAPACITY),
            policy,
            policy_state: PolicyState::default(),
        }
    }

    /// The persistence policy driving this domain.
    pub fn policy(&self) -> PersistencePolicy {
        self.policy
    }

    /// The policy's dynamic state (shadow root, write-amplification
    /// counters).
    pub fn policy_state(&self) -> &PolicyState {
        &self.policy_state
    }

    /// The architecturally-expected plaintext of a block (all stores
    /// applied).
    pub fn expected_plaintext(&self, block: BlockAddr) -> [u8; 64] {
        self.golden.get(&block).copied().unwrap_or([0u8; 64])
    }

    /// Applies a store's architectural effect to the golden state.
    pub(crate) fn apply_store_golden(&mut self, access: Access) {
        let block = access.addr.block();
        let entry = self.golden.entry(block).or_insert([0u8; 64]);
        let off = access.addr.block_offset();
        let size = usize::from(access.size);
        entry[off..off + size].copy_from_slice(&access.value.to_le_bytes()[..size]);
    }

    /// The SHA-512 digest of a counter block, memoized in lazy mode.
    pub(crate) fn counter_digest(&self, page: u64, cb: &CounterBlock) -> Digest {
        let bytes = cb.to_bytes();
        match self.mode {
            MetadataMode::Eager => Sha512::digest(&bytes),
            MetadataMode::Lazy => self.ctr_digests.digest(page, &bytes),
        }
    }

    /// Batched [`counter_digest`](Self::counter_digest): every miss in
    /// the burst rides one multi-lane hash dispatch.  Bit-identical
    /// digests to the per-item path.
    pub(crate) fn counter_digest_batch(&self, items: &[(u64, [u8; 64])], out: &mut Vec<Digest>) {
        match self.mode {
            MetadataMode::Eager => {
                let msgs: Vec<&[u8; 64]> = items.iter().map(|(_, bytes)| bytes).collect();
                secpb_crypto::sha512::digest64_batch(&self.backend, &msgs, out);
            }
            MetadataMode::Lazy => self.ctr_digests.digest_batch(&self.backend, items, out),
        }
    }

    /// Combined hit/miss/eviction counters of the domain's memo caches
    /// (the lazy engine's OTP pad cache and counter-digest memo).
    pub fn memo_stats(&self) -> secpb_crypto::memo::MemoStats {
        let pads = self
            .otp_engine
            .pad_cache()
            .map(|c| c.stats())
            .unwrap_or_default();
        pads.merged(self.ctr_digests.stats())
    }

    /// Persists the tree root into NVM after a leaf update, charging the
    /// policy's durable metadata traffic (selective node writes, shadow
    /// refreshes).  The lazy engine skips the register writes: durable
    /// roots are only *read* at recovery, which always follows a
    /// [`sync_root`](Self::sync_root).  The policy counters are analytic
    /// — charged identically in both modes, like the tree's hash counts.
    pub(crate) fn persist_root(&mut self) {
        self.policy_state.leaf_persists += 1;
        self.policy_state.node_writes += self.policy.tree.node_writes_per_persist();
        if self.policy.counters == CounterLayout::Shadow {
            self.policy_state.shadow_writes += 1;
        }
        if self.mode == MetadataMode::Eager {
            self.nvm.set_bmt_root(self.tree.root());
            if self.policy.counters == CounterLayout::Shadow {
                self.policy_state.shadow_root = Some(self.tree.root());
            }
        }
    }

    /// Raw logical-counter increment (no page-overflow handling — the
    /// eADR and multi-core fronts never re-encrypt; the single-core
    /// pipeline layers overflow handling on top in
    /// `SecureSystem::increment_logical`).
    pub(crate) fn increment_raw(&mut self, block: BlockAddr) -> SplitCounter {
        let page = NvmStore::page_of(block);
        let slot = NvmStore::page_slot_of(block);
        let cb = self.counters.entry(page).or_default();
        cb.increment(slot);
        cb.counter_of(slot)
    }

    /// Applies an entry's full memory-tuple update to the durable state —
    /// the drain-completion kernel shared by the SecPB fronts.
    ///
    /// With `secure == false` (the insecure `bbb` baseline) only the data
    /// block moves.  Otherwise any metadata the entry did not carry early
    /// is generated here; the returned [`FlushRecord`] says what was.
    pub(crate) fn flush_entry(&mut self, mut entry: Entry, secure: bool) -> FlushRecord {
        let block = entry.block;
        if !secure {
            self.nvm.write_data(block, entry.plaintext);
            return FlushRecord::default();
        }
        let page = NvmStore::page_of(block);
        let slot = NvmStore::page_slot_of(block);
        let mut rec = FlushRecord::default();

        if !entry.valid.counter {
            entry.counter = self.increment_raw(block);
            entry.valid.counter = true;
            rec.counter_incremented = true;
        }
        let ctr = entry.counter;
        let pad = if entry.valid.otp {
            entry.otp
        } else {
            rec.otp_generated = true;
            self.otp_engine.generate(block.index(), ctr)
        };
        let ct = if entry.valid.ciphertext {
            entry.ciphertext
        } else {
            rec.ciphertext_generated = true;
            OtpEngine::apply_pad(&entry.plaintext, &pad)
        };
        let mac = match entry.mac {
            Some(m) if entry.valid.mac => m,
            _ => {
                // `mac_generated` reports whether the *modeled* MAC unit
                // ran at drain; with `valid.mac` set the unit already ran
                // early and only the host-side tag was deferred here.
                rec.mac_generated = !entry.valid.mac;
                self.mac_engine.compute(&ct, block.index(), ctr)
            }
        };

        self.nvm.write_data(block, ct);
        self.nvm.write_mac(block, mac.truncate_u64());
        let mut cb = self.nvm.read_counters(page);
        cb.set_counter(slot, ctr);
        self.nvm.write_counters(page, cb.clone());
        let digest = self.counter_digest(page, &cb);
        rec.tree_hashes = self.tree.update_leaf(page, digest);
        self.persist_root();
        rec
    }

    /// Flushes a run of entries whose counter and ciphertext are already
    /// valid, computing the (stateless) block MACs in one multi-lane
    /// batch instead of one HMAC per entry.  Everything stateful — NVM
    /// writes, counter blocks, digests, tree leaves — still runs
    /// per-entry in input order, so the result is byte-identical to
    /// calling [`flush_entry`](Self::flush_entry) on each entry in turn.
    pub(crate) fn flush_ready_batch(&mut self, entries: &[Entry]) -> Vec<FlushRecord> {
        debug_assert!(
            entries
                .iter()
                .all(|e| e.valid.counter && e.valid.ciphertext),
            "batched flush requires resolved counters and ciphertexts"
        );
        let mut tags = Vec::with_capacity(entries.len());
        {
            let refs: Vec<(&[u8; 64], u64, SplitCounter)> = entries
                .iter()
                .map(|e| (&e.ciphertext, e.block.index(), e.counter))
                .collect();
            self.mac_engine.compute_truncated_batch(&refs, &mut tags);
        }
        // Pass 1, in drain order: data/MAC/counter writes, snapshotting
        // each entry's post-write counter block.  A later same-page entry
        // reads the earlier one's update exactly as the sequential path
        // would.
        let mut pages: Vec<(u64, [u8; 64])> = Vec::with_capacity(entries.len());
        for (entry, &tag64) in entries.iter().zip(&tags) {
            let block = entry.block;
            let page = NvmStore::page_of(block);
            let slot = NvmStore::page_slot_of(block);
            self.nvm.write_data(block, entry.ciphertext);
            self.nvm.write_mac(block, tag64);
            let mut cb = self.nvm.read_counters(page);
            cb.set_counter(slot, entry.counter);
            self.nvm.write_counters(page, cb.clone());
            pages.push((page, cb.to_bytes()));
        }
        // One multi-lane dispatch covers every counter digest the burst
        // needs; memo lookups and inserts stay in drain order.
        let mut digests = Vec::with_capacity(pages.len());
        self.counter_digest_batch(&pages, &mut digests);
        // Pass 2, in drain order: leaf updates against the snapshotted
        // digests.  Same-page entries update the leaf once per entry with
        // the same digest sequence as sequential flushing, so the final
        // tree state and per-entry hash counts are identical.
        entries
            .iter()
            .zip(&digests)
            .map(|(entry, &digest)| {
                let mut rec = FlushRecord {
                    mac_generated: !entry.valid.mac,
                    ..FlushRecord::default()
                };
                let page = NvmStore::page_of(entry.block);
                rec.tree_hashes = self.tree.update_leaf(page, digest);
                self.persist_root();
                rec
            })
            .collect()
    }

    /// Persists a block's full tuple from the golden state with an
    /// already-incremented counter — the per-store kernel shared by the
    /// SP baseline and the eADR writeback path.  Returns the BMT hashes
    /// charged by the leaf update.
    pub(crate) fn persist_with_counter(&mut self, block: BlockAddr, ctr: SplitCounter) -> u64 {
        let page = NvmStore::page_of(block);
        let slot = NvmStore::page_slot_of(block);
        let pt = self.golden.get(&block).copied().unwrap_or([0u8; 64]);
        let ct = self.otp_engine.encrypt(&pt, block.index(), ctr);
        let mac = self.mac_engine.compute(&ct, block.index(), ctr);
        self.nvm.write_data(block, ct);
        self.nvm.write_mac(block, mac.truncate_u64());
        let mut cb = self.nvm.read_counters(page);
        cb.set_counter(slot, ctr);
        self.nvm.write_counters(page, cb.clone());
        let digest = self.counter_digest(page, &cb);
        let hashes = self.tree.update_leaf(page, digest);
        self.persist_root();
        hashes
    }

    /// [`persist_with_counter`](Self::persist_with_counter) preceded by a
    /// raw counter increment (the eADR tuple-persist kernel).
    pub(crate) fn persist_block(&mut self, block: BlockAddr) -> u64 {
        let ctr = self.increment_raw(block);
        self.persist_with_counter(block, ctr)
    }

    /// Folds all deferred integrity-tree work; persists the root when
    /// `persist` is set (the fronts gate this on scheme security).
    /// Returns the analytic hash count charged to the sec-sync gap.
    pub(crate) fn sync_root(&mut self, persist: bool) -> u64 {
        let sync_hashes = self.tree.sync();
        if persist {
            self.nvm.set_bmt_root(self.tree.root());
            if self.policy.counters == CounterLayout::Shadow {
                self.policy_state.shadow_root = Some(self.tree.root());
            }
        }
        sync_hashes
    }

    /// The durable tree frontier a [`TreePersistence::Levels`] policy
    /// keeps online, plus the root it folds to and the hashes that fold
    /// costs.  An observation point: callers sync first (every recovery
    /// path does).  `None` under the root-only baseline or on forests.
    pub(crate) fn persisted_frontier(&self) -> Option<PersistedFrontier> {
        let TreePersistence::Levels(n) = self.policy.tree else {
            return None;
        };
        let frontier_level = u32::from(n) - 1;
        let nodes = self.tree.level_nodes(frontier_level)?;
        let (root, fold_hashes) = self.tree.root_from_level(frontier_level, &nodes)?;
        Some(PersistedFrontier {
            nodes,
            root,
            fold_hashes,
        })
    }

    /// Appends the domain's dynamic state — golden image, logical
    /// counters (both in sorted key order), NVM store, and integrity
    /// tree — to a checkpoint.  The crypto engines are pure functions of
    /// the construction scalars and are rebuilt, not serialised; the
    /// memo caches are host-side accelerators whose contents never reach
    /// any digested output, so [`restore_from`](Self::restore_from)
    /// simply clears them.
    pub(crate) fn encode_into(&self, w: &mut WireWriter) {
        let mut golden: Vec<_> = self.golden.iter().collect();
        golden.sort_by_key(|(b, _)| b.index());
        w.usize(golden.len());
        for (block, bytes) in golden {
            w.u64(block.index());
            w.raw(bytes);
        }
        let mut counters: Vec<_> = self.counters.iter().collect();
        counters.sort_by_key(|&(page, _)| *page);
        w.usize(counters.len());
        for (page, cb) in counters {
            w.u64(*page);
            w.raw(&cb.to_bytes());
        }
        self.nvm.encode_into(w);
        self.tree.encode_into(w);
    }

    /// Overlays state captured by [`encode_into`](Self::encode_into) onto
    /// a domain constructed with the same scalars (salts, tree kind,
    /// metadata mode, backend, key seed).
    pub(crate) fn restore_from(&mut self, r: &mut WireReader<'_>) -> Result<(), WireError> {
        let n = r.seq_len(8 + 64)?;
        let mut golden = FxHashMap::default();
        for _ in 0..n {
            let block = BlockAddr(r.u64()?);
            golden.insert(block, r.array::<64>()?);
        }
        let n = r.seq_len(8 + 64)?;
        let mut counters = FxHashMap::default();
        for _ in 0..n {
            let page = r.u64()?;
            let bytes = r.array::<64>()?;
            counters.insert(page, CounterBlock::from_bytes(&bytes));
        }
        let nvm = NvmStore::decode_from(r)?;
        self.tree.restore_from(r)?;
        self.golden = golden;
        self.counters = counters;
        self.nvm = nvm;
        self.ctr_digests.clear();
        if let Some(pads) = self.otp_engine.pad_cache() {
            pads.clear();
        }
        Ok(())
    }

    /// A fresh integrity tree keyed like this domain's, for the recovery
    /// rebuild.
    pub(crate) fn rebuilt_tree(&self) -> IntegrityTree {
        let tree_key = (self.seed ^ self.keys.tree_xor).to_le_bytes();
        let mut rebuilt = IntegrityTree::new(self.tree_kind, &tree_key, BMT_ARITY, self.bmt_levels);
        rebuilt.set_backend(self.backend);
        if self.mode == MetadataMode::Lazy {
            rebuilt.set_lazy(true);
        }
        rebuilt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secpb_sim::addr::Address;

    #[test]
    fn front_salts_are_distinct() {
        let salts = [DomainKeys::SECPB, DomainKeys::EADR, DomainKeys::MULTI_CORE];
        for (i, a) in salts.iter().enumerate() {
            for b in &salts[i + 1..] {
                assert_ne!(a, b, "fronts must not share a persisted key space");
            }
        }
    }

    #[test]
    fn flush_record_reports_late_work() {
        let mut d = PersistDomain::new(
            DomainKeys::SECPB,
            TreeKind::Monolithic,
            8,
            MetadataMode::Eager,
            CryptoBackendKind::Auto,
            7,
            PersistencePolicy::default(),
        );
        let block = Address(0x1000).block();
        d.golden.insert(block, [3u8; 64]);
        let entry = Entry::new(block, secpb_sim::addr::Asid(0), [3u8; 64], 0);
        let rec = d.flush_entry(entry, true);
        assert!(rec.counter_incremented && rec.otp_generated);
        assert!(rec.ciphertext_generated && rec.mac_generated);
        // Insecure flush does no metadata work at all.
        let entry = Entry::new(block, secpb_sim::addr::Asid(0), [3u8; 64], 0);
        assert_eq!(d.flush_entry(entry, false), FlushRecord::default());
    }

    #[test]
    fn persist_block_round_trips_through_decrypt() {
        let mut d = PersistDomain::new(
            DomainKeys::EADR,
            TreeKind::Monolithic,
            8,
            MetadataMode::Lazy,
            CryptoBackendKind::Auto,
            42,
            PersistencePolicy::default(),
        );
        let block = Address(0x2000).block();
        d.golden.insert(block, [9u8; 64]);
        d.persist_block(block);
        let page = NvmStore::page_of(block);
        let slot = NvmStore::page_slot_of(block);
        let ctr = d.nvm.read_counters(page).counter_of(slot);
        let pt = d
            .otp_engine
            .decrypt(&d.nvm.read_data(block), block.index(), ctr);
        assert_eq!(pt, [9u8; 64]);
    }
}
