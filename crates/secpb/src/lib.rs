//! # secpb-core — secure battery-backed persist buffers
//!
//! The paper's primary contribution: a battery-backed persist buffer
//! (SecPB) that aligns the *security point of persistency* (SPoP) with the
//! *point of persistency* (PoP) next to the core, plus the spectrum of six
//! metadata-persistence schemes that trade runtime overhead against
//! battery capacity.
//!
//! * [`scheme`] — the design spectrum: `NoGap`, `M`, `CM`, `BCM`, `OBCM`,
//!   `COBCM`, plus the `bbb` (insecure) and `SP` (SPoP-at-MC) baselines,
//! * [`entry`] — one SecPB entry with the `Dp/O/Dc/C/B/M` fields and their
//!   valid bits (Figure 5),
//! * [`buffer`] — the SecPB itself: coalescing, watermarks, FIFO drain
//!   order, and NWPE bookkeeping,
//! * [`drain`] — the background drain engine that empties the buffer to
//!   the memory controller,
//! * [`domain`] — the shared security/persistence kernel
//!   ([`PersistDomain`]) all three system fronts delegate to: golden
//!   state, logical counters, NVM image, crypto engines, integrity tree,
//! * [`system`] — the whole machine: core + caches + SecPB + metadata
//!   caches + WPQ + NVM, with both a timing model and a functional
//!   (actually encrypted and integrity-protected) persistent state,
//! * [`pipeline`] — the per-store early-work path, driven entirely by the
//!   policy's [`scheme::EarlyWork`] flags,
//! * [`policy`] — the composable persistence-policy layer: early/lazy
//!   step assignment, Triad-NVM-style selective tree depth, and the
//!   Huang & Hua fast-recovery layout, with exact recovery accounting,
//! * [`recovery`] — the battery-powered crash drain and the post-crash
//!   verdict kernel shared by all fronts,
//! * [`crash`] — crash kinds, drain policies (drain-all/drain-process),
//!   observer policies (blocking/warning), the battery-powered drain, and
//!   post-crash recovery with real decryption + MAC + BMT verification,
//! * [`checkpoint`] — versioned whole-system checkpoints: restore at
//!   epoch N then replay is byte-identical to the uninterrupted run,
//!   which is what shard crash-recovery and soak restarts build on,
//! * [`coherence`] — the metadata directory and SecPB-to-SecPB migration
//!   protocol of Section IV-C for multi-core configurations,
//! * [`facade`] — the [`PersistSystem`] trait: the one driving surface
//!   (replay, crash, recover, observe) every front implements, so storms
//!   and benches are written once against `dyn PersistSystem`,
//! * [`metrics`] — run results and the derived statistics the paper
//!   reports (IPC, PPTI, NWPE, BMT root updates).
//!
//! # Example
//!
//! ```
//! use secpb_core::scheme::Scheme;
//! use secpb_core::system::SecureSystem;
//! use secpb_sim::config::SystemConfig;
//! use secpb_sim::trace::{Access, TraceItem};
//! use secpb_sim::addr::Address;
//!
//! let mut sys = SecureSystem::new(SystemConfig::default(), Scheme::Cobcm, 1);
//! let trace = vec![TraceItem::then(10, Access::store(Address(0x1000), 7))];
//! let result = sys.run_trace(trace.iter().copied());
//! assert!(result.cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod buffer;
pub mod checkpoint;
pub mod coherence;
pub mod crash;
pub mod domain;
pub mod drain;
pub mod eadr;
pub mod entry;
pub mod facade;
pub mod metrics;
pub mod multicore;
pub mod pipeline;
pub mod policy;
pub mod recovery;
pub mod scheme;
pub mod system;
pub mod tree;

pub use buffer::SecPb;
pub use checkpoint::CheckpointError;
pub use crash::{ConfigError, CrashKind, DrainPolicy, ObserverPolicy, RecoveryReport};
pub use domain::{DomainKeys, PersistDomain};
pub use facade::PersistSystem;
pub use metrics::RunResult;
pub use policy::{PersistencePolicy, PolicyError, RecoveryCost};
pub use scheme::Scheme;
pub use system::SecureSystem;
