//! A secure-eADR system model (the paper's `s_eADR` comparison point,
//! Section V-B, here made runnable rather than analytic-only).
//!
//! Under eADR the *entire cache hierarchy* is inside the persistence
//! domain: a store is durable the moment it reaches the L1, no persist
//! buffer and no flushes.  Security metadata is generated lazily, when a
//! dirty line finally leaves the LLC (or wholesale on a crash) — so the
//! runtime cost is near zero, and the price is the battery that must
//! drain megabytes of dirty cache *and* complete every line's memory
//! tuple on power loss.  [`EadrSystem`] measures both: execution cycles
//! comparable to the SecPB systems, and the crash-drain work the energy
//! model prices for Table V.
//!
//! This front is a thin shell over the shared [`PersistDomain`] kernel:
//! it owns only the cache hierarchy, the core clock, and the
//! whole-hierarchy drain policy; the tuple pipeline, the durable image,
//! and the recovery sweep are the domain's.

use secpb_mem::cache::LineState;
use secpb_mem::hierarchy::{Hierarchy, HitLevel};
use secpb_mem::store::NvmStore;
use secpb_sim::addr::BlockAddr;
use secpb_sim::config::{MetadataMode, SystemConfig};
use secpb_sim::cycle::Cycle;
use secpb_sim::stats::Stats;
use secpb_sim::telemetry::TelemetrySink;
use secpb_sim::trace::{Access, AccessKind, TraceItem};

use crate::crash::{DrainWork, RecoveryReport};
use crate::domain::{DomainKeys, PersistDomain};
use crate::metrics::{counters, CycleBreakdown, RunResult};
use crate::policy::PersistencePolicy;
use crate::scheme::Scheme;
use crate::tree::TreeKind;

/// The secure-eADR machine.
pub struct EadrSystem {
    cfg: SystemConfig,
    now: Cycle,
    frac: f64,
    hierarchy: Hierarchy,
    domain: PersistDomain,
    stats: Stats,
}

impl std::fmt::Debug for EadrSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EadrSystem")
            .field("now", &self.now)
            .finish_non_exhaustive()
    }
}

impl EadrSystem {
    /// Creates a secure-eADR system.
    ///
    /// # Panics
    ///
    /// Panics if the persistence-policy knobs in `cfg.security` are
    /// inconsistent (e.g. a Triad depth deeper than the tree).
    pub fn new(cfg: SystemConfig, key_seed: u64) -> Self {
        let policy = PersistencePolicy::resolve(Scheme::NoGap, &cfg.security, TreeKind::Monolithic)
            .expect("invalid persistence policy");
        let domain = PersistDomain::new(
            DomainKeys::EADR,
            TreeKind::Monolithic,
            cfg.security.bmt_levels,
            cfg.security.metadata_mode,
            cfg.security.crypto_backend,
            key_seed,
            policy,
        );
        EadrSystem {
            hierarchy: Hierarchy::new(&cfg),
            domain,
            now: Cycle::ZERO,
            frac: 0.0,
            stats: Stats::new(),
            cfg,
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Attaches (or with `None` detaches) a live telemetry sink; stat
    /// deltas and crash/recovery markers are mirrored into the ring.
    /// Events observe, never steer.
    pub fn set_telemetry(&mut self, sink: Option<TelemetrySink>) {
        self.stats.set_sink(sink);
    }

    /// The attached telemetry sink, if any.
    pub fn telemetry(&self) -> Option<&TelemetrySink> {
        self.stats.sink()
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Whether the security-metadata engine is eager or lazy.
    pub fn metadata_mode(&self) -> MetadataMode {
        self.domain.mode
    }

    /// Combined memo-cache statistics (pad cache + counter-digest memo).
    pub fn memo_stats(&self) -> secpb_crypto::memo::MemoStats {
        self.domain.memo_stats()
    }

    /// The core clock.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of dirty lines currently buffered in the cache hierarchy
    /// (the persistence domain's exposure on a crash).
    pub fn dirty_lines(&self) -> usize {
        self.hierarchy.dirty_blocks().len()
    }

    /// The durable state (for tamper injection in tests).
    pub fn nvm_store_mut(&mut self) -> &mut NvmStore {
        &mut self.domain.nvm
    }

    /// The durable state, read-only.
    pub fn nvm_store(&self) -> &NvmStore {
        &self.domain.nvm
    }

    /// The architecturally expected plaintext of a block.
    pub fn expected_plaintext(&self, block: BlockAddr) -> [u8; 64] {
        self.domain.expected_plaintext(block)
    }

    fn advance(&mut self, cycles: f64) {
        self.frac += cycles;
        // Truncating cast == `floor()` for the non-negative accumulator,
        // minus the libm call (see `SecureSystem::advance`).
        let whole = self.frac as u64;
        if whole >= 1 {
            self.now += whole;
            self.frac -= whole as f64;
        }
    }

    /// Executes a single trace item.
    pub fn step(&mut self, item: TraceItem) {
        if item.non_mem_instrs > 0 {
            self.stats
                .bump_by(counters::INSTRUCTIONS, u64::from(item.non_mem_instrs));
            self.advance(f64::from(item.non_mem_instrs) / f64::from(self.cfg.core.retire_width));
        }
        if let Some(access) = item.access {
            self.stats.bump(counters::INSTRUCTIONS);
            self.advance(1.0 / f64::from(self.cfg.core.retire_width));
            match access.kind {
                AccessKind::Load => self.do_load(access),
                AccessKind::Store => self.do_store(access),
            }
        }
    }

    /// Replays a trace.  Stores persist at L1 speed; security work only
    /// happens when dirty lines leave the LLC.
    pub fn run_trace<I: IntoIterator<Item = TraceItem>>(&mut self, items: I) -> RunResult {
        for item in items {
            self.step(item);
        }
        self.run_result()
    }

    /// The run result so far (cycles, breakdown, statistics).
    pub fn run_result(&self) -> RunResult {
        RunResult {
            scheme: Scheme::Bbb,
            cycles: self.now.raw(),
            // The eADR model has no persist path: everything the core does
            // is plain retirement/exposure work.
            breakdown: CycleBreakdown {
                retire: self.now.raw(),
                ..CycleBreakdown::default()
            },
            stats: self.stats.clone(),
        }
    }

    fn do_load(&mut self, access: Access) {
        self.stats.bump(counters::LOADS);
        let out = self.hierarchy.load(access.addr.block());
        let extra = out.latency.saturating_sub(self.cfg.l1.access_latency);
        self.writeback(out.writebacks);
        self.advance(self.cfg.core.load_exposure * extra as f64);
    }

    fn do_store(&mut self, access: Access) {
        self.stats.bump(counters::STORES);
        self.stats.bump(counters::PERSISTS); // durable at L1 insert
        let block = access.addr.block();
        self.domain.apply_store_golden(access);
        // Dirty (not persist-dirty): eADR lines must write back with
        // their tuples when they leave the LLC.
        let out = self.hierarchy.store(block, LineState::Dirty);
        if out.hit_level == HitLevel::Memory {
            self.stats.bump("eadr.store_fills");
        }
        self.writeback(out.writebacks);
    }

    /// LLC writebacks carry the full tuple update (pipelined at the MC,
    /// off the critical path).
    fn writeback(&mut self, blocks: Vec<BlockAddr>) {
        for block in blocks {
            self.persist_tuple(block);
            self.stats.bump("eadr.writebacks");
        }
    }

    fn persist_tuple(&mut self, block: BlockAddr) {
        self.domain.persist_block(block);
        self.stats.bump(counters::MACS);
        self.stats.bump(counters::OTPS);
        self.stats.bump(counters::BMT_ROOT_UPDATES);
    }

    /// Power loss: the battery drains **every dirty cache line** and
    /// completes its memory tuple.  Returns the drain work for the energy
    /// model — this is the measured counterpart of Table V's `s_eADR`
    /// worst case.
    pub fn crash(&mut self) -> DrainWork {
        self.crash_with_budget(None).0
    }

    /// [`crash`](Self::crash) under a battery budget: at most
    /// `max_drain_entries` dirty lines complete their tuples; the rest
    /// are *lost* with the cache contents and returned for accounting.
    /// The s_eADR worst case makes this the most brown-out-exposed
    /// design: megabytes of dirty lines compete for the same joules.
    pub fn crash_with_budget(
        &mut self,
        max_drain_entries: Option<u64>,
    ) -> (DrainWork, Vec<BlockAddr>) {
        let mut dirty: Vec<BlockAddr> = self
            .hierarchy
            .dirty_blocks()
            .into_iter()
            .map(|(b, _)| b)
            .collect();
        // Deterministic drain (and therefore loss) order.
        dirty.sort_unstable();
        let budget = usize::try_from(max_drain_entries.unwrap_or(u64::MAX)).unwrap_or(usize::MAX);
        let lost: Vec<BlockAddr> = if dirty.len() > budget {
            dirty.split_off(budget)
        } else {
            Vec::new()
        };
        let levels = u64::from(self.cfg.security.bmt_levels);
        for &block in &dirty {
            self.persist_tuple(block);
        }
        // Observation point: fold all deferred tree work and persist the
        // root (a no-op for the eager engine, which persisted per tuple).
        self.domain.sync_root(true);
        self.hierarchy.clear();
        let n = dirty.len() as u64;
        self.stats.bump_by("eadr.crash_lines", n);
        self.stats.bump_by("eadr.lost_lines", lost.len() as u64);
        let work = DrainWork {
            entries: n,
            bytes_pb_to_mc: n * 64,
            bytes_mc_to_pm: 0,
            counter_fetches: n, // worst-case assumption 2: every access misses
            bmt_node_hashes: n * levels,
            bmt_node_fetches: n * levels,
            otps: n,
            macs: n,
            ciphertexts: n,
        };
        (work, lost)
    }

    /// Post-crash recovery, identical in spirit to the SecPB systems'.
    pub fn recover(&self) -> RecoveryReport {
        self.recover_with(&[])
    }

    /// [`recover`](Self::recover) with lost-line accounting: blocks in
    /// `lost` (from [`crash_with_budget`](Self::crash_with_budget)) read
    /// back stale by construction and get
    /// [`crate::crash::BlockVerdict::LostStale`].
    pub fn recover_with(&self, lost: &[BlockAddr]) -> RecoveryReport {
        // eADR never leaves entries buffered across a crash: the whole
        // hierarchy drains, so nothing is ever "in flight" at recovery.
        self.domain.recover_report(lost, true, &|_| false)
    }

    /// Re-reads the durable image of brown-out-lost lines back into the
    /// architectural expectation so a storm can continue past the crash.
    pub fn resync_lost_golden(&mut self, lost: &[BlockAddr]) {
        self.domain.resync_lost(lost, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secpb_energy::runtime::{measured_energy, MeasuredWork};
    use secpb_sim::addr::Address;

    fn store_trace(n: u64) -> Vec<TraceItem> {
        (0..n)
            .map(|i| TraceItem::then(9, Access::store(Address(0x10_0000 + i * 64), i)))
            .collect()
    }

    #[test]
    fn stores_are_near_free_at_runtime() {
        let mut sys = EadrSystem::new(SystemConfig::default(), 1);
        let r = sys.run_trace(store_trace(2_000));
        // Durable at L1: no persist-buffer serialization at all.
        assert_eq!(r.stats.get(counters::PERSISTS), 2_000);
        assert_eq!(
            r.stats.get("eadr.writebacks"),
            0,
            "nothing left the 4MB LLC"
        );
        assert!(r.ipc() > 2.0, "IPC {}", r.ipc());
    }

    #[test]
    fn crash_recovery_is_consistent() {
        let mut sys = EadrSystem::new(SystemConfig::default(), 2);
        sys.run_trace(store_trace(500));
        let work = sys.crash();
        assert_eq!(work.entries, 500);
        let rec = sys.recover();
        assert!(rec.is_consistent());
        assert_eq!(rec.blocks_checked, 500);
    }

    #[test]
    fn crash_work_dwarfs_secpb_crash_work() {
        // The paper's Table V point, measured: for the same store stream,
        // s_eADR's battery-powered work is orders of magnitude larger
        // than a 32-entry SecPB's.
        let trace = store_trace(3_000);
        let mut eadr = EadrSystem::new(SystemConfig::default(), 3);
        eadr.run_trace(trace.clone());
        let ew = eadr.crash();

        let mut secpb = crate::system::SecureSystem::new(SystemConfig::default(), Scheme::Cobcm, 3);
        secpb.run_trace(trace);
        let sr = secpb
            .crash(
                crate::crash::CrashKind::PowerLoss,
                crate::crash::DrainPolicy::DrainAll,
            )
            .unwrap();

        let convert = |w: DrainWork| MeasuredWork {
            entries: w.entries,
            bytes_pb_to_mc: w.bytes_pb_to_mc,
            bytes_mc_to_pm: w.bytes_mc_to_pm,
            counter_fetches: w.counter_fetches,
            bmt_node_hashes: w.bmt_node_hashes,
            bmt_node_fetches: w.bmt_node_fetches,
            otps: w.otps,
            macs: w.macs,
            ciphertexts: w.ciphertexts,
        };
        let e_eadr = measured_energy(&convert(ew));
        let e_secpb = measured_energy(&convert(sr.work));
        assert!(
            e_eadr > 20.0 * e_secpb,
            "eADR {e_eadr} J should dwarf SecPB {e_secpb} J"
        );
    }

    #[test]
    fn eadr_brown_out_loses_youngest_lines_with_accounting() {
        let mut sys = EadrSystem::new(SystemConfig::default(), 9);
        sys.run_trace(store_trace(200));
        let (work, lost) = sys.crash_with_budget(Some(50));
        assert_eq!(work.entries, 50);
        assert_eq!(lost.len(), 150);
        let rec = sys.recover_with(&lost);
        assert!(rec.integrity_ok(), "partial eADR drain keeps tuples sound");
        assert!(rec.is_consistent(), "lost lines are accounted, not corrupt");
        sys.resync_lost_golden(&lost);
        assert!(sys.recover().is_consistent());
    }

    #[test]
    fn tamper_detected_after_eadr_crash() {
        let mut sys = EadrSystem::new(SystemConfig::default(), 4);
        sys.run_trace(store_trace(50));
        sys.crash();
        let victim = Address(0x10_0000).block();
        sys.nvm_store_mut().tamper_data(victim, 3, 3);
        assert!(!sys.recover().integrity_ok());
    }

    #[test]
    fn llc_eviction_persists_tuple_during_execution() {
        // Overflow the 4 MB LLC so dirty lines write back with tuples.
        let mut sys = EadrSystem::new(SystemConfig::default(), 5);
        let blocks = (4 << 20) / 64 * 2; // 2x LLC capacity
        let trace: Vec<TraceItem> = (0..blocks as u64)
            .map(|i| TraceItem::then(1, Access::store(Address(0x10_0000 + i * 64), i)))
            .collect();
        let r = sys.run_trace(trace);
        assert!(r.stats.get("eadr.writebacks") > 0);
        assert!(sys.recover().blocks_checked > 0 || sys.nvm_store().data_block_count() > 0);
    }
}
