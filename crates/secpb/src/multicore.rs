//! Multi-core SecPB system (Section IV-C of the paper, made runnable).
//!
//! The paper evaluates one core (Table I) but specifies how per-core
//! SecPBs must behave in a multi-core machine: a directory prevents
//! metadata/data replication, remote writes *migrate* entries (carrying
//! their data-value-independent metadata so it is not regenerated), and
//! remote reads *flush* the owner's entry to PM while servicing the data
//! in parallel.  [`MultiCoreSystem`] wires the
//! [`CoherenceController`] to the
//! functional secure-memory state so multi-threaded store streams can be
//! replayed, crashed, and recovered end to end.
//!
//! Timing here is event-cost based (per-event constants for migrations,
//! flushes, and drains) rather than the single-core model's full
//! pipeline: the goal is protocol correctness plus first-order costs
//! (migration counts, flush counts, per-core cycle totals).

use secpb_crypto::counter::CounterBlock;
use secpb_crypto::mac::BlockMac;
use secpb_crypto::memo::DigestMemo;
use secpb_crypto::otp::OtpEngine;
use secpb_crypto::sha512::{Digest, Sha512};
use secpb_mem::store::NvmStore;
use secpb_sim::addr::BlockAddr;
use secpb_sim::config::{MetadataMode, SystemConfig};
use secpb_sim::cycle::Cycle;
use secpb_sim::fxhash::FxHashMap;
use secpb_sim::stats::Stats;
use secpb_sim::trace::Access;

use crate::coherence::{CoherenceAction, CoherenceController};
use crate::crash::{BlockVerdict, RecoveryError, RecoveryReport};
use crate::entry::Entry;
use crate::scheme::Scheme;
use crate::tree::{IntegrityTree, TreeKind};

/// Cycles charged for migrating a SecPB entry between cores (an L2-to-L2
/// class transfer).
const MIGRATION_LATENCY: u64 = 40;

/// Cycles charged to the reader for a remote flush-and-forward.
const REMOTE_READ_LATENCY: u64 = 60;

/// A store observed by one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreStore {
    /// Which core issues the store.
    pub core: usize,
    /// The access itself (must be a store).
    pub access: Access,
}

/// The multi-core secure-PM system.
pub struct MultiCoreSystem {
    cfg: SystemConfig,
    scheme: Scheme,
    coherence: CoherenceController,
    core_now: Vec<Cycle>,
    // Shared functional state.
    golden: FxHashMap<BlockAddr, [u8; 64]>,
    counters: FxHashMap<u64, CounterBlock>,
    nvm: NvmStore,
    otp_engine: OtpEngine,
    mac_engine: BlockMac,
    tree: IntegrityTree,
    mode: MetadataMode,
    ctr_digests: DigestMemo,
    seed: u64,
    stats: Stats,
}

impl std::fmt::Debug for MultiCoreSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiCoreSystem")
            .field("cores", &self.core_now.len())
            .field("scheme", &self.scheme)
            .finish_non_exhaustive()
    }
}

impl MultiCoreSystem {
    /// Creates a system with `cores` cores, each with its own SecPB.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or the scheme does not use a SecPB.
    pub fn new(cfg: SystemConfig, scheme: Scheme, cores: usize, key_seed: u64) -> Self {
        assert!(
            scheme.uses_secpb(),
            "multi-core model requires a SecPB scheme"
        );
        let mut aes_key = [0u8; 24];
        for (i, b) in aes_key.iter_mut().enumerate() {
            *b = (key_seed.rotate_left(i as u32) ^ (i as u64 * 0x517C)) as u8;
        }
        let mode = cfg.security.metadata_mode;
        let mut tree = IntegrityTree::new(
            TreeKind::Monolithic,
            &(key_seed ^ 0xC0_FFEE).to_le_bytes(),
            8,
            cfg.security.bmt_levels,
        );
        let mut otp_engine = OtpEngine::new(&aes_key);
        if mode == MetadataMode::Lazy {
            tree.set_lazy(true);
            otp_engine.enable_pad_cache(secpb_crypto::memo::DEFAULT_CAPACITY);
        }
        MultiCoreSystem {
            coherence: CoherenceController::new(cores, cfg.secpb),
            core_now: vec![Cycle::ZERO; cores],
            golden: FxHashMap::default(),
            counters: FxHashMap::default(),
            nvm: NvmStore::new(),
            otp_engine,
            mac_engine: BlockMac::new(&key_seed.to_le_bytes()),
            tree,
            mode,
            ctr_digests: DigestMemo::new(secpb_crypto::memo::DEFAULT_CAPACITY),
            seed: key_seed,
            stats: Stats::new(),
            scheme,
            cfg,
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.core_now.len()
    }

    /// A core's local clock.
    pub fn core_time(&self, core: usize) -> Cycle {
        self.core_now[core]
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The coherence controller (for invariant checks in tests).
    pub fn coherence(&self) -> &CoherenceController {
        &self.coherence
    }

    /// The durable state (for tamper injection in tests).
    pub fn nvm_store_mut(&mut self) -> &mut NvmStore {
        &mut self.nvm
    }

    /// The architecturally expected plaintext of a block.
    pub fn expected_plaintext(&self, block: BlockAddr) -> [u8; 64] {
        self.golden.get(&block).copied().unwrap_or([0u8; 64])
    }

    fn apply_golden(&mut self, access: Access) {
        let block = access.addr.block();
        let entry = self.golden.entry(block).or_insert([0u8; 64]);
        let off = access.addr.block_offset();
        let size = usize::from(access.size);
        entry[off..off + size].copy_from_slice(&access.value.to_le_bytes()[..size]);
    }

    /// Executes one store from a core, handling coherence.
    ///
    /// # Panics
    ///
    /// Panics if the access is not a store or the core index is out of
    /// range.
    pub fn store(&mut self, store: CoreStore) {
        assert!(store.access.is_store(), "store() requires a store access");
        let core = store.core;
        let block = store.access.addr.block();
        self.apply_golden(store.access);
        self.stats.bump("mc.stores");

        // Make room in the requesting core's SecPB first.
        while self.coherence.pb(core).is_full() && !self.coherence.pb(core).contains(block) {
            let Some(victim) = self.coherence.pb(core).oldest() else {
                // A full PB with no oldest entry is a broken invariant;
                // survive it and let the storm see the anomaly counter.
                self.stats.bump("mc.anomalies");
                break;
            };
            let Some(entry) = self.coherence.drain(victim) else {
                self.stats.bump("mc.anomalies");
                break;
            };
            self.flush_entry(entry);
            self.stats.bump("mc.capacity_drains");
            self.core_now[core] += 8;
        }

        let base = self.expected_plaintext(block);
        let action = self.coherence.write(core, block, store.access.asid, base);
        let latency = match action {
            CoherenceAction::LocalHit => self.cfg.secpb.access_latency,
            CoherenceAction::Allocated => {
                self.stats.bump("mc.allocations");
                self.cfg.secpb.access_latency
            }
            CoherenceAction::MigratedFrom { .. } => {
                self.stats.bump("mc.migrations");
                self.cfg.secpb.access_latency + MIGRATION_LATENCY
            }
            CoherenceAction::FlushedFrom { .. } => {
                // Writes never flush under the protocol; tolerate a
                // misbehaving controller instead of aborting.
                self.stats.bump("mc.anomalies");
                self.cfg.secpb.access_latency
            }
        };
        // Apply the store to the (now-local) entry.
        let pb_core = core;
        match self.coherence.pb_mut(pb_core).entry_mut(block) {
            Some(entry) => entry.apply_store(
                store.access.addr.block_offset(),
                store.access.value,
                usize::from(store.access.size),
            ),
            None => self.stats.bump("mc.anomalies"),
        }
        self.core_now[core] += latency;
    }

    /// Executes one load from a core: remote hits flush the owner's entry
    /// to PM (the paper's read rule) and the reader gets the fresh value.
    pub fn load(&mut self, core: usize, block: BlockAddr) -> [u8; 64] {
        self.stats.bump("mc.loads");
        match self.coherence.read(core, block) {
            Some(CoherenceAction::FlushedFrom { .. }) => {
                for entry in self.coherence.take_flushed() {
                    self.flush_entry(entry);
                }
                self.stats.bump("mc.remote_read_flushes");
                self.core_now[core] += REMOTE_READ_LATENCY;
            }
            Some(CoherenceAction::LocalHit) => {
                self.core_now[core] += self.cfg.secpb.access_latency;
            }
            _ => {
                self.core_now[core] += self.cfg.l1.access_latency;
            }
        }
        self.expected_plaintext(block)
    }

    /// Full crash: every core's SecPB drains and all metadata completes.
    /// Returns the number of entries drained.
    pub fn crash(&mut self) -> Result<u64, RecoveryError> {
        self.crash_with_budget(None).map(|(drained, _)| drained)
    }

    /// [`crash`](Self::crash) under a battery budget: at most
    /// `max_drain_entries` entries drain across all cores (core 0 first,
    /// oldest first within a core — the shared battery powers the drain
    /// network serially); the rest are *lost* with the buffers and
    /// returned for accounting.
    pub fn crash_with_budget(
        &mut self,
        max_drain_entries: Option<u64>,
    ) -> Result<(u64, Vec<BlockAddr>), RecoveryError> {
        let budget = max_drain_entries.unwrap_or(u64::MAX);
        let mut drained = 0u64;
        let mut lost = Vec::new();
        for core in 0..self.cores() {
            while let Some(block) = self.coherence.pb(core).oldest() {
                let entry = self
                    .coherence
                    .drain(block)
                    .ok_or(RecoveryError::UntrackedEntry(block))?;
                if drained < budget {
                    self.flush_entry(entry);
                    drained += 1;
                } else {
                    // Battery dead: the entry evaporates undrained.
                    lost.push(block);
                }
            }
        }
        // Observation point: fold any deferred tree work before reading
        // and persisting the root (a no-op for the eager engine).
        self.tree.sync();
        self.nvm.set_bmt_root(self.tree.root());
        self.stats.bump_by("mc.crash_drains", drained);
        self.stats.bump_by("mc.lost_entries", lost.len() as u64);
        Ok((drained, lost))
    }

    /// Post-crash recovery over the shared persistent image.
    pub fn recover(&self) -> RecoveryReport {
        self.recover_with(&[])
    }

    /// [`recover`](Self::recover) with lost-entry accounting: blocks in
    /// `lost` (from [`crash_with_budget`](Self::crash_with_budget)) read
    /// back stale by construction and get [`BlockVerdict::LostStale`].
    pub fn recover_with(&self, lost: &[BlockAddr]) -> RecoveryReport {
        let mut report = RecoveryReport::default();
        let mut rebuilt = IntegrityTree::new(
            TreeKind::Monolithic,
            &(self.seed ^ 0xC0_FFEE).to_le_bytes(),
            8,
            self.cfg.security.bmt_levels,
        );
        if self.mode == MetadataMode::Lazy {
            rebuilt.set_lazy(true);
        }
        let mut pages: Vec<u64> = self.nvm.counter_pages().collect();
        pages.sort_unstable();
        for page in pages {
            let cb = self.nvm.read_counters(page);
            rebuilt.update_leaf(page, self.counter_digest(page, &cb));
        }
        rebuilt.sync();
        report.root_ok = self.nvm.bmt_root() == Some(rebuilt.root());
        let mut blocks: Vec<BlockAddr> = self.nvm.data_blocks().collect();
        blocks.sort_unstable();
        for block in blocks {
            report.blocks_checked += 1;
            let page = NvmStore::page_of(block);
            let slot = NvmStore::page_slot_of(block);
            let ctr = self.nvm.read_counters(page).counter_of(slot);
            let ct = self.nvm.read_data(block);
            let verdict = if !self.mac_engine.verify_truncated(
                &ct,
                block.index(),
                ctr,
                self.nvm.read_mac(block),
            ) {
                report.mac_failures.push(block);
                BlockVerdict::MacMismatch
            } else if self.otp_engine.decrypt(&ct, block.index(), ctr)
                == self.expected_plaintext(block)
            {
                BlockVerdict::Verified
            } else if lost.contains(&block) {
                report.lost_stale.push(block);
                BlockVerdict::LostStale
            } else {
                report.plaintext_mismatches.push(block);
                BlockVerdict::PlaintextMismatch
            };
            report.verdicts.push((block, verdict));
        }
        report
    }

    /// Re-reads the durable image of brown-out-lost entries back into
    /// the architectural expectation so replay can continue.
    pub fn resync_lost_golden(&mut self, lost: &[BlockAddr]) {
        for &block in lost {
            if !self.nvm.contains_data(block) {
                self.golden.remove(&block);
                continue;
            }
            let page = NvmStore::page_of(block);
            let slot = NvmStore::page_slot_of(block);
            let ctr = self.nvm.read_counters(page).counter_of(slot);
            let pt = self
                .otp_engine
                .decrypt(&self.nvm.read_data(block), block.index(), ctr);
            self.golden.insert(block, pt);
        }
    }

    fn flush_entry(&mut self, mut entry: Entry) {
        let block = entry.block;
        let page = NvmStore::page_of(block);
        let slot = NvmStore::page_slot_of(block);
        if !entry.valid.counter {
            let cb = self.counters.entry(page).or_default();
            cb.increment(slot);
            entry.counter = cb.counter_of(slot);
        }
        let ctr = entry.counter;
        let pad = if entry.valid.otp {
            entry.otp
        } else {
            self.otp_engine.generate(block.index(), ctr)
        };
        let ct = if entry.valid.ciphertext {
            entry.ciphertext
        } else {
            OtpEngine::apply_pad(&entry.plaintext, &pad)
        };
        let mac = match entry.mac {
            Some(m) if entry.valid.mac => m,
            _ => self.mac_engine.compute(&ct, block.index(), ctr),
        };
        self.nvm.write_data(block, ct);
        self.nvm.write_mac(block, mac.truncate_u64());
        let mut cb = self.nvm.read_counters(page);
        cb.set_counter(slot, ctr);
        self.nvm.write_counters(page, cb.clone());
        let digest = self.counter_digest(page, &cb);
        self.tree.update_leaf(page, digest);
        if self.mode == MetadataMode::Eager {
            self.nvm.set_bmt_root(self.tree.root());
        }
        self.stats.bump("mc.flushes");
    }

    /// The SHA-512 digest of a counter block, memoized in lazy mode.
    fn counter_digest(&self, page: u64, cb: &CounterBlock) -> Digest {
        let bytes = cb.to_bytes();
        match self.mode {
            MetadataMode::Eager => Sha512::digest(&bytes),
            MetadataMode::Lazy => self.ctr_digests.digest(page, &bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secpb_sim::addr::{Address, Asid};

    fn sys(cores: usize) -> MultiCoreSystem {
        MultiCoreSystem::new(SystemConfig::default(), Scheme::Cobcm, cores, 1234)
    }

    fn st(core: usize, addr: u64, value: u64) -> CoreStore {
        CoreStore {
            core,
            access: Access::store(Address(addr), value).with_asid(Asid(core as u16)),
        }
    }

    #[test]
    fn independent_cores_do_not_interact() {
        let mut m = sys(2);
        m.store(st(0, 0x10_0000, 1));
        m.store(st(1, 0x20_0000, 2));
        assert_eq!(m.stats().get("mc.migrations"), 0);
        assert!(m.coherence().replication_free());
    }

    #[test]
    fn write_sharing_migrates() {
        let mut m = sys(2);
        m.store(st(0, 0x10_0000, 1));
        m.store(st(1, 0x10_0000, 2));
        assert_eq!(m.stats().get("mc.migrations"), 1);
        assert!(m.coherence().replication_free());
        // The final value is core 1's store.
        assert_eq!(
            m.expected_plaintext(Address(0x10_0000).block())[..8],
            2u64.to_le_bytes()
        );
    }

    #[test]
    fn remote_read_flushes_and_returns_fresh_value() {
        let mut m = sys(2);
        m.store(st(0, 0x10_0000, 7));
        let v = m.load(1, Address(0x10_0000).block());
        assert_eq!(v[..8], 7u64.to_le_bytes());
        assert_eq!(m.stats().get("mc.remote_read_flushes"), 1);
        // The flushed block is already durable and verifiable.
        assert!(m.coherence().replication_free());
    }

    #[test]
    fn crash_recovery_across_cores_is_consistent() {
        let mut m = sys(4);
        for i in 0..200u64 {
            let core = (i % 4) as usize;
            m.store(st(core, 0x10_0000 + (i % 37) * 64, i));
        }
        // Some cross-core traffic too.
        m.store(st(0, 0x10_0000, 999));
        m.store(st(3, 0x10_0000, 1000));
        let drained = m.crash().unwrap();
        assert!(drained > 0);
        let rec = m.recover();
        assert!(
            rec.is_consistent(),
            "root_ok={} macs={} mismatches={}",
            rec.root_ok,
            rec.mac_failures.len(),
            rec.plaintext_mismatches.len()
        );
    }

    #[test]
    fn capacity_drains_free_slots() {
        let mut m = MultiCoreSystem::new(
            {
                let mut cfg = SystemConfig::default();
                cfg.secpb.entries = 4;
                cfg
            },
            Scheme::Cobcm,
            1,
            7,
        );
        for i in 0..20u64 {
            m.store(st(0, 0x10_0000 + i * 64, i));
        }
        assert!(m.stats().get("mc.capacity_drains") > 0);
        m.crash().unwrap();
        assert!(m.recover().is_consistent());
    }

    #[test]
    fn multicore_brown_out_accounts_lost_entries() {
        let mut m = sys(4);
        for i in 0..40u64 {
            m.store(st((i % 4) as usize, 0x10_0000 + i * 64, i));
        }
        let (drained, lost) = m.crash_with_budget(Some(10)).unwrap();
        assert_eq!(drained, 10);
        assert_eq!(lost.len(), 30);
        let rec = m.recover_with(&lost);
        assert!(rec.integrity_ok());
        assert!(rec.is_consistent(), "lost entries are accounted");
        m.resync_lost_golden(&lost);
        assert!(m.recover().is_consistent());
    }

    #[test]
    fn tamper_after_multicore_crash_is_detected() {
        let mut m = sys(2);
        m.store(st(0, 0x10_0000, 1));
        m.store(st(1, 0x20_0000, 2));
        m.crash().unwrap();
        let victim = Address(0x10_0000).block();
        m.nvm_store_mut().tamper_data(victim, 0, 0);
        assert!(!m.recover().integrity_ok());
    }

    #[test]
    fn ping_pong_many_migrations_stay_consistent() {
        let mut m = sys(2);
        for i in 0..50u64 {
            m.store(st((i % 2) as usize, 0x10_0000, i));
        }
        assert_eq!(m.stats().get("mc.migrations"), 49);
        m.crash().unwrap();
        assert!(m.recover().is_consistent());
        assert_eq!(
            m.expected_plaintext(Address(0x10_0000).block())[..8],
            49u64.to_le_bytes()
        );
    }

    #[test]
    fn core_clocks_advance_independently() {
        let mut m = sys(2);
        for i in 0..10u64 {
            m.store(st(0, 0x10_0000 + i * 64, i));
        }
        assert!(m.core_time(0) > m.core_time(1));
    }
}
