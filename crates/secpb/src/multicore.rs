//! Multi-core SecPB system (Section IV-C of the paper, made runnable).
//!
//! The paper evaluates one core (Table I) but specifies how per-core
//! SecPBs must behave in a multi-core machine: a directory prevents
//! metadata/data replication, remote writes *migrate* entries (carrying
//! their data-value-independent metadata so it is not regenerated), and
//! remote reads *flush* the owner's entry to PM while servicing the data
//! in parallel.  [`MultiCoreSystem`] wires the
//! [`CoherenceController`] to the shared
//! [`PersistDomain`] kernel so multi-threaded store streams can be
//! replayed, crashed, and recovered end to end.
//!
//! Timing here is event-cost based (per-event constants for migrations,
//! flushes, and drains) rather than the single-core model's full
//! pipeline: the goal is protocol correctness plus first-order costs
//! (migration counts, flush counts, per-core cycle totals).
//!
//! This front is a thin shell over the [`PersistDomain`]: it owns only
//! the per-core SecPB bank, the directory protocol, and the per-core
//! clocks; the tuple pipeline, the durable image, and the recovery
//! sweep are the domain's.

use secpb_mem::store::NvmStore;
use secpb_sim::addr::BlockAddr;
use secpb_sim::config::{MetadataMode, SystemConfig};
use secpb_sim::cycle::Cycle;
use secpb_sim::stats::Stats;
use secpb_sim::telemetry::{TelemetryEvent, TelemetrySink};
use secpb_sim::trace::{Access, AccessKind, TraceItem};

use crate::coherence::{CoherenceAction, CoherenceController};
use crate::crash::{ConfigError, RecoveryError, RecoveryReport};
use crate::domain::{DomainKeys, PersistDomain};
use crate::entry::Entry;
use crate::metrics::{counters, CycleBreakdown, RunResult};
use crate::policy::PersistencePolicy;
use crate::scheme::Scheme;
use crate::tree::TreeKind;

/// Cycles charged for migrating a SecPB entry between cores (an L2-to-L2
/// class transfer).
const MIGRATION_LATENCY: u64 = 40;

/// Cycles charged to the reader for a remote flush-and-forward.
const REMOTE_READ_LATENCY: u64 = 60;

/// A store observed by one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreStore {
    /// Which core issues the store.
    pub core: usize,
    /// The access itself (must be a store).
    pub access: Access,
}

/// The multi-core secure-PM system.
pub struct MultiCoreSystem {
    cfg: SystemConfig,
    scheme: Scheme,
    coherence: CoherenceController,
    core_now: Vec<Cycle>,
    domain: PersistDomain,
    stats: Stats,
}

impl std::fmt::Debug for MultiCoreSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiCoreSystem")
            .field("cores", &self.core_now.len())
            .field("scheme", &self.scheme)
            .finish_non_exhaustive()
    }
}

impl MultiCoreSystem {
    /// Creates a system with `cores` cores, each with its own SecPB.
    ///
    /// Rejects zero cores, a scheme that keeps no SecPB, and degenerate
    /// SecPB geometry with a typed [`ConfigError`].
    pub fn new(
        cfg: SystemConfig,
        scheme: Scheme,
        cores: usize,
        key_seed: u64,
    ) -> Result<Self, ConfigError> {
        if !scheme.uses_secpb() {
            return Err(ConfigError::BufferlessScheme(scheme));
        }
        let policy = PersistencePolicy::resolve(scheme, &cfg.security, TreeKind::Monolithic)?;
        let domain = PersistDomain::new(
            DomainKeys::MULTI_CORE,
            TreeKind::Monolithic,
            cfg.security.bmt_levels,
            cfg.security.metadata_mode,
            cfg.security.crypto_backend,
            key_seed,
            policy,
        );
        Ok(MultiCoreSystem {
            coherence: CoherenceController::new(cores, cfg.secpb)?,
            core_now: vec![Cycle::ZERO; cores],
            domain,
            stats: Stats::new(),
            scheme,
            cfg,
        })
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.core_now.len()
    }

    /// The scheme the per-core SecPBs run.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// A core's local clock.
    pub fn core_time(&self, core: usize) -> Cycle {
        self.core_now[core]
    }

    /// Whether the security-metadata engine is eager or lazy.
    pub fn metadata_mode(&self) -> MetadataMode {
        self.domain.mode
    }

    /// Combined memo-cache statistics (pad cache + counter-digest memo).
    pub fn memo_stats(&self) -> secpb_crypto::memo::MemoStats {
        self.domain.memo_stats()
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Attaches (or with `None` detaches) a live telemetry sink; stat
    /// deltas, anomaly transitions, and crash/recovery markers are
    /// mirrored into the ring.  Events observe, never steer.
    pub fn set_telemetry(&mut self, sink: Option<TelemetrySink>) {
        self.stats.set_sink(sink);
    }

    /// The attached telemetry sink, if any.
    pub fn telemetry(&self) -> Option<&TelemetrySink> {
        self.stats.sink()
    }

    /// Records a model-invariant violation: bumps `mc.anomalies` and,
    /// when a telemetry sink is attached, emits an anomaly-transition
    /// marker carrying the new cumulative count.
    fn note_anomaly(&mut self) {
        self.stats.bump("mc.anomalies");
        if let Some(sink) = self.stats.sink() {
            let cycle = self.core_now.iter().map(|c| c.raw()).max().unwrap_or(0);
            sink.emit(&TelemetryEvent::AnomalyMarker {
                count: self.stats.get("mc.anomalies"),
                cycle,
            });
        }
    }

    /// The coherence controller (for invariant checks in tests).
    pub fn coherence(&self) -> &CoherenceController {
        &self.coherence
    }

    /// Entries currently resident across every core's SecPB.
    pub fn occupancy(&self) -> usize {
        (0..self.cores())
            .map(|c| self.coherence.pb(c).occupancy())
            .sum()
    }

    /// The durable state (for tamper injection in tests).
    pub fn nvm_store_mut(&mut self) -> &mut NvmStore {
        &mut self.domain.nvm
    }

    /// The durable state, read-only.
    pub fn nvm_store(&self) -> &NvmStore {
        &self.domain.nvm
    }

    /// The architecturally expected plaintext of a block.
    pub fn expected_plaintext(&self, block: BlockAddr) -> [u8; 64] {
        self.domain.expected_plaintext(block)
    }

    /// Executes one store from a core, handling coherence.
    ///
    /// # Panics
    ///
    /// Panics if the access is not a store or the core index is out of
    /// range.
    pub fn store(&mut self, store: CoreStore) {
        assert!(store.access.is_store(), "store() requires a store access");
        let core = store.core;
        let block = store.access.addr.block();
        self.domain.apply_store_golden(store.access);
        self.stats.bump("mc.stores");

        // Make room in the requesting core's SecPB first.
        while self.coherence.pb(core).is_full() && !self.coherence.pb(core).contains(block) {
            let Some(victim) = self.coherence.pb(core).oldest() else {
                // A full PB with no oldest entry is a broken invariant;
                // survive it and let the storm see the anomaly counter.
                self.note_anomaly();
                break;
            };
            let Some(entry) = self.coherence.drain(victim) else {
                self.note_anomaly();
                break;
            };
            self.flush_entry(entry);
            self.stats.bump("mc.capacity_drains");
            self.core_now[core] += 8;
        }

        let base = self.expected_plaintext(block);
        let action = self.coherence.write(core, block, store.access.asid, base);
        let latency = match action {
            CoherenceAction::LocalHit => self.cfg.secpb.access_latency,
            CoherenceAction::Allocated => {
                self.stats.bump("mc.allocations");
                self.cfg.secpb.access_latency
            }
            CoherenceAction::MigratedFrom { .. } => {
                self.stats.bump("mc.migrations");
                self.cfg.secpb.access_latency + MIGRATION_LATENCY
            }
            CoherenceAction::FlushedFrom { .. } => {
                // Writes never flush under the protocol; tolerate a
                // misbehaving controller instead of aborting.
                self.note_anomaly();
                self.cfg.secpb.access_latency
            }
        };
        // Apply the store to the (now-local) entry.
        let pb_core = core;
        let applied = self
            .coherence
            .pb_mut(pb_core)
            .entry_mut(block)
            .map(|entry| {
                entry.apply_store(
                    store.access.addr.block_offset(),
                    store.access.value,
                    usize::from(store.access.size),
                );
            })
            .is_some();
        if !applied {
            self.note_anomaly();
        }
        self.core_now[core] += latency;
    }

    /// Executes one load from a core: remote hits flush the owner's entry
    /// to PM (the paper's read rule) and the reader gets the fresh value.
    pub fn load(&mut self, core: usize, block: BlockAddr) -> [u8; 64] {
        self.stats.bump("mc.loads");
        match self.coherence.read(core, block) {
            Some(CoherenceAction::FlushedFrom { .. }) => {
                for entry in self.coherence.take_flushed() {
                    self.flush_entry(entry);
                }
                self.stats.bump("mc.remote_read_flushes");
                self.core_now[core] += REMOTE_READ_LATENCY;
            }
            Some(CoherenceAction::LocalHit) => {
                self.core_now[core] += self.cfg.secpb.access_latency;
            }
            _ => {
                self.core_now[core] += self.cfg.l1.access_latency;
            }
        }
        self.expected_plaintext(block)
    }

    /// Which core a trace access runs on: threads are identified by ASID
    /// and pinned round-robin, so a single-core system replays exactly
    /// the single-threaded stream.
    fn route(&self, access: Access) -> usize {
        usize::from(access.asid.0) % self.cores()
    }

    /// Executes a single trace item, routing by ASID.
    pub fn step(&mut self, item: TraceItem) {
        let core = item.access.map(|a| self.route(a)).unwrap_or(0);
        if item.non_mem_instrs > 0 {
            self.stats
                .bump_by(counters::INSTRUCTIONS, u64::from(item.non_mem_instrs));
            self.core_now[core] +=
                u64::from(item.non_mem_instrs).div_ceil(u64::from(self.cfg.core.retire_width));
        }
        if let Some(access) = item.access {
            self.stats.bump(counters::INSTRUCTIONS);
            match access.kind {
                AccessKind::Store => self.store(CoreStore { core, access }),
                AccessKind::Load => {
                    self.load(core, access.addr.block());
                }
            }
        }
    }

    /// Replays a trace, routing each access to a core by ASID.
    pub fn run_trace<I: IntoIterator<Item = TraceItem>>(&mut self, items: I) -> RunResult {
        for item in items {
            self.step(item);
        }
        self.run_result()
    }

    /// The run result so far: cycles are the slowest core's clock (the
    /// parallel-section critical path).
    pub fn run_result(&self) -> RunResult {
        let cycles = self
            .core_now
            .iter()
            .map(|c| c.raw())
            .max()
            .unwrap_or_default();
        RunResult {
            scheme: self.scheme,
            cycles,
            // The event-cost model has no pipeline attribution: everything
            // is first-order retirement/event work.
            breakdown: CycleBreakdown {
                retire: cycles,
                ..CycleBreakdown::default()
            },
            stats: self.stats.clone(),
        }
    }

    /// Full crash: every core's SecPB drains and all metadata completes.
    /// Returns the number of entries drained.
    pub fn crash(&mut self) -> Result<u64, RecoveryError> {
        self.crash_with_budget(None).map(|(drained, _)| drained)
    }

    /// [`crash`](Self::crash) under a battery budget: at most
    /// `max_drain_entries` entries drain across all cores (core 0 first,
    /// oldest first within a core — the shared battery powers the drain
    /// network serially); the rest are *lost* with the buffers and
    /// returned for accounting.
    pub fn crash_with_budget(
        &mut self,
        max_drain_entries: Option<u64>,
    ) -> Result<(u64, Vec<BlockAddr>), RecoveryError> {
        let budget = max_drain_entries.unwrap_or(u64::MAX);
        let mut drained = 0u64;
        let mut lost = Vec::new();
        for core in 0..self.cores() {
            while let Some(block) = self.coherence.pb(core).oldest() {
                let entry = self
                    .coherence
                    .drain(block)
                    .ok_or(RecoveryError::UntrackedEntry(block))?;
                if drained < budget {
                    self.flush_entry(entry);
                    drained += 1;
                } else {
                    // Battery dead: the entry evaporates undrained.
                    lost.push(block);
                }
            }
        }
        // Observation point: fold any deferred tree work before reading
        // and persisting the root (a no-op for the eager engine).
        self.domain.sync_root(true);
        self.stats.bump_by("mc.crash_drains", drained);
        self.stats.bump_by("mc.lost_entries", lost.len() as u64);
        Ok((drained, lost))
    }

    /// Post-crash recovery over the shared persistent image.
    pub fn recover(&self) -> RecoveryReport {
        self.recover_with(&[])
    }

    /// [`recover`](Self::recover) with lost-entry accounting: blocks in
    /// `lost` (from [`crash_with_budget`](Self::crash_with_budget)) read
    /// back stale by construction and get
    /// [`crate::crash::BlockVerdict::LostStale`]; blocks still resident
    /// in *any* core's SecPB get
    /// [`crate::crash::BlockVerdict::InFlightStale`].
    pub fn recover_with(&self, lost: &[BlockAddr]) -> RecoveryReport {
        self.domain.recover_report(lost, true, &|b| {
            (0..self.cores()).any(|c| self.coherence.pb(c).contains(b))
        })
    }

    /// Re-reads the durable image of brown-out-lost entries back into
    /// the architectural expectation so replay can continue.
    pub fn resync_lost_golden(&mut self, lost: &[BlockAddr]) {
        self.domain.resync_lost(lost, true);
    }

    fn flush_entry(&mut self, entry: Entry) {
        self.domain.flush_entry(entry, true);
        self.stats.bump("mc.flushes");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secpb_sim::addr::{Address, Asid};

    fn sys(cores: usize) -> MultiCoreSystem {
        MultiCoreSystem::new(SystemConfig::default(), Scheme::Cobcm, cores, 1234).unwrap()
    }

    fn st(core: usize, addr: u64, value: u64) -> CoreStore {
        CoreStore {
            core,
            access: Access::store(Address(addr), value).with_asid(Asid(core as u16)),
        }
    }

    #[test]
    fn independent_cores_do_not_interact() {
        let mut m = sys(2);
        m.store(st(0, 0x10_0000, 1));
        m.store(st(1, 0x20_0000, 2));
        assert_eq!(m.stats().get("mc.migrations"), 0);
        assert!(m.coherence().replication_free());
    }

    #[test]
    fn write_sharing_migrates() {
        let mut m = sys(2);
        m.store(st(0, 0x10_0000, 1));
        m.store(st(1, 0x10_0000, 2));
        assert_eq!(m.stats().get("mc.migrations"), 1);
        assert!(m.coherence().replication_free());
        // The final value is core 1's store.
        assert_eq!(
            m.expected_plaintext(Address(0x10_0000).block())[..8],
            2u64.to_le_bytes()
        );
    }

    #[test]
    fn remote_read_flushes_and_returns_fresh_value() {
        let mut m = sys(2);
        m.store(st(0, 0x10_0000, 7));
        let v = m.load(1, Address(0x10_0000).block());
        assert_eq!(v[..8], 7u64.to_le_bytes());
        assert_eq!(m.stats().get("mc.remote_read_flushes"), 1);
        // The flushed block is already durable and verifiable.
        assert!(m.coherence().replication_free());
    }

    #[test]
    fn crash_recovery_across_cores_is_consistent() {
        let mut m = sys(4);
        for i in 0..200u64 {
            let core = (i % 4) as usize;
            m.store(st(core, 0x10_0000 + (i % 37) * 64, i));
        }
        // Some cross-core traffic too.
        m.store(st(0, 0x10_0000, 999));
        m.store(st(3, 0x10_0000, 1000));
        let drained = m.crash().unwrap();
        assert!(drained > 0);
        let rec = m.recover();
        assert!(
            rec.is_consistent(),
            "root_ok={} macs={} mismatches={}",
            rec.root_ok,
            rec.mac_failures.len(),
            rec.plaintext_mismatches.len()
        );
    }

    #[test]
    fn capacity_drains_free_slots() {
        let mut m = MultiCoreSystem::new(
            {
                let mut cfg = SystemConfig::default();
                cfg.secpb.entries = 4;
                cfg
            },
            Scheme::Cobcm,
            1,
            7,
        )
        .unwrap();
        for i in 0..20u64 {
            m.store(st(0, 0x10_0000 + i * 64, i));
        }
        assert!(m.stats().get("mc.capacity_drains") > 0);
        m.crash().unwrap();
        assert!(m.recover().is_consistent());
    }

    #[test]
    fn multicore_brown_out_accounts_lost_entries() {
        let mut m = sys(4);
        for i in 0..40u64 {
            m.store(st((i % 4) as usize, 0x10_0000 + i * 64, i));
        }
        let (drained, lost) = m.crash_with_budget(Some(10)).unwrap();
        assert_eq!(drained, 10);
        assert_eq!(lost.len(), 30);
        let rec = m.recover_with(&lost);
        assert!(rec.integrity_ok());
        assert!(rec.is_consistent(), "lost entries are accounted");
        m.resync_lost_golden(&lost);
        assert!(m.recover().is_consistent());
    }

    #[test]
    fn tamper_after_multicore_crash_is_detected() {
        let mut m = sys(2);
        m.store(st(0, 0x10_0000, 1));
        m.store(st(1, 0x20_0000, 2));
        m.crash().unwrap();
        let victim = Address(0x10_0000).block();
        m.nvm_store_mut().tamper_data(victim, 0, 0);
        assert!(!m.recover().integrity_ok());
    }

    #[test]
    fn ping_pong_many_migrations_stay_consistent() {
        let mut m = sys(2);
        for i in 0..50u64 {
            m.store(st((i % 2) as usize, 0x10_0000, i));
        }
        assert_eq!(m.stats().get("mc.migrations"), 49);
        m.crash().unwrap();
        assert!(m.recover().is_consistent());
        assert_eq!(
            m.expected_plaintext(Address(0x10_0000).block())[..8],
            49u64.to_le_bytes()
        );
    }

    #[test]
    fn core_clocks_advance_independently() {
        let mut m = sys(2);
        for i in 0..10u64 {
            m.store(st(0, 0x10_0000 + i * 64, i));
        }
        assert!(m.core_time(0) > m.core_time(1));
    }

    #[test]
    fn invalid_configurations_are_typed_errors() {
        assert_eq!(
            MultiCoreSystem::new(SystemConfig::default(), Scheme::Cobcm, 0, 1)
                .err()
                .map(|e| e.to_string()),
            Some(ConfigError::ZeroCores.to_string())
        );
        assert!(matches!(
            MultiCoreSystem::new(SystemConfig::default(), Scheme::Sp, 2, 1).err(),
            Some(ConfigError::BufferlessScheme(Scheme::Sp))
        ));
        let mut cfg = SystemConfig::default();
        cfg.secpb.entries = 0;
        assert!(matches!(
            MultiCoreSystem::new(cfg, Scheme::Cobcm, 2, 1).err(),
            Some(ConfigError::ZeroSecPbEntries)
        ));
    }

    #[test]
    fn trace_replay_routes_by_asid() {
        let mut m = sys(2);
        let trace: Vec<TraceItem> = (0..40u64)
            .map(|i| {
                TraceItem::then(
                    3,
                    Access::store(Address(0x10_0000 + i * 64), i).with_asid(Asid((i % 2) as u16)),
                )
            })
            .collect();
        let r = m.run_trace(trace);
        assert_eq!(r.stats.get("mc.stores"), 40);
        assert!(m.core_time(0) > Cycle::ZERO && m.core_time(1) > Cycle::ZERO);
        assert!(r.cycles > 0);
        m.crash().unwrap();
        assert!(m.recover().is_consistent());
    }
}
