//! One SecPB entry (Figure 5 of the paper).
//!
//! Each entry tracks a 64-byte persistent block and the portion of its
//! memory tuple that the active scheme generates eagerly:
//!
//! * `Dp` — the data plaintext (64 B, always valid once allocated),
//! * `O`  — the precomputed one-time pad (64 B),
//! * `Dc` — the data ciphertext (64 B),
//! * `C`  — the incremented split counter (8 bits in hardware; we keep the
//!   logical `SplitCounter` for the functional model),
//! * `B`  — the BMT-root-update acknowledgement (1 bit),
//! * `M`  — the MAC (512 bits).
//!
//! Every field except `B` carries a valid bit; when all the fields the
//! scheme requires are valid, the entry's security persist is complete and
//! the entry is *drainable* (Section IV-B).

use secpb_crypto::counter::SplitCounter;
use secpb_crypto::sha512::Digest;
use secpb_sim::addr::{Asid, BlockAddr};
use secpb_sim::cycle::Cycle;
use secpb_sim::wire::{WireError, WireReader, WireWriter};

use crate::scheme::EarlyWork;

/// The valid bits of a SecPB entry's tuple fields.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ValidBits {
    /// `O` field holds the pad for the current counter.
    pub otp: bool,
    /// `Dc` field reflects the current plaintext.
    pub ciphertext: bool,
    /// `C` field holds the incremented counter.
    pub counter: bool,
    /// BMT root has been updated for this entry's counter (the `B` bit).
    pub bmt: bool,
    /// `M` field holds the MAC of the current ciphertext.
    pub mac: bool,
}

impl ValidBits {
    /// Whether all fields demanded by `required` are valid — the
    /// "security persist complete" condition that unblocks draining for
    /// eager schemes.
    pub fn satisfies(&self, required: EarlyWork) -> bool {
        (!required.counter || self.counter)
            && (!required.otp || self.otp)
            && (!required.bmt || self.bmt)
            && (!required.ciphertext || self.ciphertext)
            && (!required.mac || self.mac)
    }
}

/// One SecPB entry.
#[derive(Debug, Clone)]
pub struct Entry {
    /// The 64-byte block this entry shadows.
    pub block: BlockAddr,
    /// Owning address space (drain-process crash policy).
    pub asid: Asid,
    /// `Dp`: current plaintext of the block.
    pub plaintext: [u8; 64],
    /// `O`: precomputed pad (meaningful when `valid.otp`).
    pub otp: [u8; 64],
    /// `Dc`: ciphertext (meaningful when `valid.ciphertext`).
    pub ciphertext: [u8; 64],
    /// `C`: the incremented counter (meaningful when `valid.counter`).
    pub counter: SplitCounter,
    /// `M`: the MAC (meaningful when `valid.mac`).
    pub mac: Option<Digest>,
    /// Field valid bits.
    pub valid: ValidBits,
    /// Number of stores coalesced into this entry (drives NWPE).
    pub stores: u64,
    /// Allocation sequence number: drains proceed oldest-first.
    pub seq: u64,
    /// Allocation cycle (drives the entry-lifetime distribution).
    pub born: Cycle,
}

impl Entry {
    /// Creates a fresh entry for `block` with the given allocation
    /// sequence number.  The plaintext starts from the block's current
    /// memory contents (`base`), onto which stores are coalesced.
    pub fn new(block: BlockAddr, asid: Asid, base: [u8; 64], seq: u64) -> Self {
        Entry {
            block,
            asid,
            plaintext: base,
            otp: [0u8; 64],
            ciphertext: [0u8; 64],
            counter: SplitCounter::default(),
            mac: None,
            valid: ValidBits::default(),
            stores: 0,
            seq,
            born: Cycle::ZERO,
        }
    }

    /// Applies a store of `size` bytes of `value` at byte offset `offset`
    /// and invalidates the data-value-dependent fields (`Dc`, `M`), which
    /// must track every plaintext change (Section IV-A).  Data-value-
    /// *independent* fields (`C`, `O`, `B`) stay valid: the counter is
    /// incremented once per dirty block, not once per store.
    ///
    /// # Panics
    ///
    /// Panics if the write would cross the 64-byte block boundary.
    pub fn apply_store(&mut self, offset: usize, value: u64, size: usize) {
        assert!((1..=8).contains(&size), "store size must be 1..=8 bytes");
        assert!(offset + size <= 64, "store crosses block boundary");
        let bytes = value.to_le_bytes();
        self.plaintext[offset..offset + size].copy_from_slice(&bytes[..size]);
        self.stores += 1;
        self.valid.ciphertext = false;
        self.valid.mac = false;
        self.mac = None;
    }

    /// Whether this entry's security persist is complete with respect to
    /// the scheme's early-work demands.
    pub fn persist_complete(&self, required: EarlyWork) -> bool {
        self.valid.satisfies(required)
    }

    /// Appends every tuple field, valid bit, and counter to a checkpoint.
    pub fn encode_into(&self, w: &mut WireWriter) {
        w.u64(self.block.index());
        w.u32(u32::from(self.asid.0));
        w.raw(&self.plaintext);
        w.raw(&self.otp);
        w.raw(&self.ciphertext);
        w.u64(self.counter.major);
        w.u8(self.counter.minor);
        match self.mac {
            Some(d) => {
                w.bool(true);
                w.raw(&d.0);
            }
            None => w.bool(false),
        }
        w.bool(self.valid.otp);
        w.bool(self.valid.ciphertext);
        w.bool(self.valid.counter);
        w.bool(self.valid.bmt);
        w.bool(self.valid.mac);
        w.u64(self.stores);
        w.u64(self.seq);
        w.u64(self.born.raw());
    }

    /// Rebuilds an entry from [`encode_into`](Self::encode_into) bytes.
    ///
    /// # Errors
    ///
    /// Propagates truncation/malformation with the byte offset.
    pub fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let block = BlockAddr(r.u64()?);
        let asid_raw = r.u32()?;
        let asid = Asid(u16::try_from(asid_raw).map_err(|_| r.malformed("ASID exceeds 16 bits"))?);
        let plaintext = r.array::<64>()?;
        let otp = r.array::<64>()?;
        let ciphertext = r.array::<64>()?;
        let counter = SplitCounter {
            major: r.u64()?,
            minor: r.u8()?,
        };
        let mac = if r.bool()? {
            Some(Digest(r.array::<64>()?))
        } else {
            None
        };
        let valid = ValidBits {
            otp: r.bool()?,
            ciphertext: r.bool()?,
            counter: r.bool()?,
            bmt: r.bool()?,
            mac: r.bool()?,
        };
        Ok(Entry {
            block,
            asid,
            plaintext,
            otp,
            ciphertext,
            counter,
            mac,
            valid,
            stores: r.u64()?,
            seq: r.u64()?,
            born: Cycle(r.u64()?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::Scheme;

    fn entry() -> Entry {
        Entry::new(BlockAddr(5), Asid(0), [0u8; 64], 1)
    }

    #[test]
    fn fresh_entry_has_no_valid_fields() {
        let e = entry();
        assert_eq!(e.valid, ValidBits::default());
        assert_eq!(e.stores, 0);
        assert!(
            e.persist_complete(Scheme::Cobcm.early_work()),
            "COBCM demands nothing"
        );
        assert!(!e.persist_complete(Scheme::Obcm.early_work()));
    }

    #[test]
    fn store_updates_plaintext_bytes() {
        let mut e = entry();
        e.apply_store(8, 0x1122_3344_5566_7788, 8);
        assert_eq!(&e.plaintext[8..16], &0x1122_3344_5566_7788u64.to_le_bytes());
        assert_eq!(e.stores, 1);
    }

    #[test]
    fn partial_width_store() {
        let mut e = entry();
        e.apply_store(62, 0xAABB, 2);
        assert_eq!(e.plaintext[62], 0xBB);
        assert_eq!(e.plaintext[63], 0xAA);
    }

    #[test]
    fn store_invalidates_value_dependent_fields_only() {
        let mut e = entry();
        e.valid = ValidBits {
            otp: true,
            ciphertext: true,
            counter: true,
            bmt: true,
            mac: true,
        };
        e.apply_store(0, 1, 8);
        assert!(e.valid.counter, "counter is data-value independent");
        assert!(e.valid.otp, "OTP is data-value independent");
        assert!(e.valid.bmt, "BMT ack is data-value independent");
        assert!(!e.valid.ciphertext, "ciphertext must track the new value");
        assert!(!e.valid.mac, "MAC must track the new value");
    }

    #[test]
    fn satisfies_matches_scheme_demands() {
        let mut v = ValidBits::default();
        assert!(v.satisfies(Scheme::Cobcm.early_work()));
        v.counter = true;
        assert!(v.satisfies(Scheme::Obcm.early_work()));
        assert!(!v.satisfies(Scheme::Bcm.early_work()));
        v.otp = true;
        assert!(v.satisfies(Scheme::Bcm.early_work()));
        v.bmt = true;
        v.ciphertext = true;
        v.mac = true;
        assert!(v.satisfies(Scheme::NoGap.early_work()));
    }

    #[test]
    #[should_panic(expected = "crosses block boundary")]
    fn cross_block_store_panics() {
        entry().apply_store(60, 0, 8);
    }

    #[test]
    #[should_panic(expected = "store size")]
    fn oversized_store_panics() {
        entry().apply_store(0, 0, 9);
    }
}
