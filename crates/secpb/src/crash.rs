//! Crash handling and post-crash recovery (Sections III-B and IV of the
//! paper).
//!
//! On a crash the battery powers two phases: *draining* (SecPB entries
//! flow to the memory controller) and *sec-sync* (the remaining memory-
//! tuple work completes and is flushed to the PM).  The crash observer is
//! kept away from the inconsistent intermediate state by either a
//! [`ObserverPolicy::Blocking`] policy or a [`ObserverPolicy::Warning`]
//! policy.  Application crashes may drain either the whole buffer
//! ([`DrainPolicy::DrainAll`], the paper's choice) or only the faulting
//! process's entries ([`DrainPolicy::DrainProcess`], which requires ASID
//! tags).
//!
//! [`RecoveryReport`] is produced by actually *decrypting* the persisted
//! ciphertext, verifying every block MAC, and rebuilding the BMT to check
//! the persisted root — the functional counterpart of the paper's
//! crash-recoverability invariants.

use secpb_sim::addr::{Asid, BlockAddr};
use secpb_sim::cycle::Cycle;

/// What kind of crash occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashKind {
    /// Power loss: detected, battery drains everything.
    PowerLoss,
    /// Hardware or system-software failure: treated like power loss.
    HardwareFailure,
    /// An application crash (segfault, divide-by-zero, ...); the system
    /// survives and only the SecPB handling differs by [`DrainPolicy`].
    ApplicationCrash(Asid),
}

/// How an application crash drains the SecPB (Section III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DrainPolicy {
    /// Drain every entry regardless of owner — the paper's choice: no
    /// ASID tags needed, and application crashes are rare.
    #[default]
    DrainAll,
    /// Drain only the faulting process's entries (requires ASID tags in
    /// each entry; other processes keep coalescing).
    DrainProcess,
}

/// How the crash observer is kept from seeing inconsistent state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ObserverPolicy {
    /// The observer is blocked until draining and sec-sync complete.
    #[default]
    Blocking,
    /// The observer may look immediately but is warned to wait until the
    /// persistent state reaches crash consistency.
    Warning,
}

/// Work performed on battery power during a crash drain, in units the
/// energy model converts to joules (Table III).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DrainWork {
    /// SecPB entries drained.
    pub entries: u64,
    /// Bytes moved from the SecPB to the memory controller.
    pub bytes_pb_to_mc: u64,
    /// Data/metadata bytes written from the MC to the PM.
    pub bytes_mc_to_pm: u64,
    /// Counter blocks fetched from PM (counter-cache misses during
    /// sec-sync).
    pub counter_fetches: u64,
    /// BMT nodes hashed.
    pub bmt_node_hashes: u64,
    /// BMT nodes fetched from PM.
    pub bmt_node_fetches: u64,
    /// OTPs generated.
    pub otps: u64,
    /// MACs computed.
    pub macs: u64,
    /// Ciphertext XORs (single-cycle; negligible energy, counted anyway).
    pub ciphertexts: u64,
}

/// The outcome of a crash: when each battery-powered phase finished and
/// how much work it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashReport {
    /// The crash kind handled.
    pub kind: CrashKind,
    /// Cycle at which the crash was detected.
    pub at: Cycle,
    /// Cycle at which the SecPB finished draining (the *draining gap*
    /// closed).
    pub drain_complete_at: Cycle,
    /// Cycle at which all security metadata was updated and persisted
    /// (the *sec-sync gap* closed); the observable state is consistent
    /// from here on.
    pub secsync_complete_at: Cycle,
    /// Battery-powered work performed.
    pub work: DrainWork,
}

impl CrashReport {
    /// What an observer looking at the persistent state at `when` is
    /// allowed to see under `policy`.
    pub fn observe(&self, policy: ObserverPolicy, when: Cycle) -> ObserverView {
        if when >= self.secsync_complete_at {
            ObserverView::Consistent
        } else {
            match policy {
                ObserverPolicy::Blocking => ObserverView::Blocked {
                    until: self.secsync_complete_at,
                },
                ObserverPolicy::Warning => ObserverView::Warned {
                    consistent_at: self.secsync_complete_at,
                },
            }
        }
    }
}

/// The observer's view of the post-crash persistent state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObserverView {
    /// Draining and sec-sync are complete; the state is crash consistent.
    Consistent,
    /// Blocking policy: the observer may not look before `until`.
    Blocked {
        /// Cycle at which the state becomes observable.
        until: Cycle,
    },
    /// Warning policy: the observer may look, with a warning that the
    /// state is only consistent from `consistent_at`.
    Warned {
        /// Cycle at which the state becomes consistent.
        consistent_at: Cycle,
    },
}

/// The outcome of post-crash recovery: decryption, MAC verification, and
/// BMT root reconstruction over the entire persisted state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Whether the rebuilt BMT root matches the persisted root register.
    pub root_ok: bool,
    /// Number of data blocks checked.
    pub blocks_checked: u64,
    /// Blocks whose MAC failed verification.
    pub mac_failures: Vec<BlockAddr>,
    /// Blocks whose decrypted plaintext differs from the architecturally
    /// expected post-crash value.
    pub plaintext_mismatches: Vec<BlockAddr>,
}

impl RecoveryReport {
    /// Whether recovery succeeded completely: root verified, every MAC
    /// verified, every block decrypted to the expected plaintext.
    pub fn is_consistent(&self) -> bool {
        self.root_ok && self.mac_failures.is_empty() && self.plaintext_mismatches.is_empty()
    }

    /// Whether integrity verification (MACs + root) passed, regardless of
    /// plaintext expectations (used by tamper tests, where a *detected*
    /// attack means verification must fail).
    pub fn integrity_ok(&self) -> bool {
        self.root_ok && self.mac_failures.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> CrashReport {
        CrashReport {
            kind: CrashKind::PowerLoss,
            at: Cycle(100),
            drain_complete_at: Cycle(500),
            secsync_complete_at: Cycle(900),
            work: DrainWork::default(),
        }
    }

    #[test]
    fn blocking_observer_blocked_until_secsync() {
        let r = report();
        assert_eq!(
            r.observe(ObserverPolicy::Blocking, Cycle(600)),
            ObserverView::Blocked { until: Cycle(900) }
        );
        assert_eq!(
            r.observe(ObserverPolicy::Blocking, Cycle(900)),
            ObserverView::Consistent
        );
    }

    #[test]
    fn warning_observer_is_warned_early() {
        let r = report();
        assert_eq!(
            r.observe(ObserverPolicy::Warning, Cycle(600)),
            ObserverView::Warned {
                consistent_at: Cycle(900)
            }
        );
        assert_eq!(
            r.observe(ObserverPolicy::Warning, Cycle(1000)),
            ObserverView::Consistent
        );
    }

    #[test]
    fn recovery_report_consistency() {
        let mut r = RecoveryReport {
            root_ok: true,
            blocks_checked: 5,
            ..Default::default()
        };
        assert!(r.is_consistent());
        assert!(r.integrity_ok());
        r.plaintext_mismatches.push(BlockAddr(1));
        assert!(!r.is_consistent());
        assert!(
            r.integrity_ok(),
            "plaintext mismatch is not an integrity failure"
        );
        r.mac_failures.push(BlockAddr(2));
        assert!(!r.integrity_ok());
    }

    #[test]
    fn default_policies_match_paper() {
        assert_eq!(DrainPolicy::default(), DrainPolicy::DrainAll);
        assert_eq!(ObserverPolicy::default(), ObserverPolicy::Blocking);
    }
}
