//! Crash handling and post-crash recovery (Sections III-B and IV of the
//! paper).
//!
//! On a crash the battery powers two phases: *draining* (SecPB entries
//! flow to the memory controller) and *sec-sync* (the remaining memory-
//! tuple work completes and is flushed to the PM).  The crash observer is
//! kept away from the inconsistent intermediate state by either a
//! [`ObserverPolicy::Blocking`] policy or a [`ObserverPolicy::Warning`]
//! policy.  Application crashes may drain either the whole buffer
//! ([`DrainPolicy::DrainAll`], the paper's choice) or only the faulting
//! process's entries ([`DrainPolicy::DrainProcess`], which requires ASID
//! tags).
//!
//! [`RecoveryReport`] is produced by actually *decrypting* the persisted
//! ciphertext, verifying every block MAC, and rebuilding the BMT to check
//! the persisted root — the functional counterpart of the paper's
//! crash-recoverability invariants.

use std::fmt;

use secpb_sim::addr::{Asid, BlockAddr};
use secpb_sim::cycle::Cycle;

use crate::policy::PolicyError;
use crate::scheme::Scheme;

/// A rejected system configuration.
///
/// These used to be documented constructor panics (`MultiCoreSystem::new`
/// on zero cores or a bufferless scheme, the coherence controller's
/// zero-core assert, degenerate SecPB geometry).  Surfacing them as
/// values lets the CLI print a friendly message and lets sweeps skip an
/// invalid cell instead of aborting the process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// A multi-core configuration was requested with zero cores.
    ZeroCores,
    /// The scheme keeps no SecPB (`SP` persists at the memory
    /// controller), so a per-core persist-buffer system cannot be built
    /// from it.
    BufferlessScheme(Scheme),
    /// The SecPB was configured with zero entries.
    ZeroSecPbEntries,
    /// Drain watermarks must satisfy `0 <= low <= high <= 1`.
    InvalidWatermarks {
        /// The configured high watermark.
        high: f64,
        /// The configured low watermark.
        low: f64,
    },
    /// The persistence-policy knobs are illegal for this configuration
    /// (depth out of range, forest tree, dependency violation).
    Policy(PolicyError),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroCores => write!(f, "need at least one core"),
            ConfigError::BufferlessScheme(s) => {
                write!(
                    f,
                    "scheme '{s}' keeps no SecPB; pick a persist-buffer scheme"
                )
            }
            ConfigError::ZeroSecPbEntries => write!(f, "SecPB needs at least one entry"),
            ConfigError::InvalidWatermarks { high, low } => write!(
                f,
                "drain watermarks must satisfy 0 <= low <= high <= 1, got low={low} high={high}"
            ),
            ConfigError::Policy(e) => write!(f, "{e}"),
        }
    }
}

impl From<PolicyError> for ConfigError {
    fn from(e: PolicyError) -> Self {
        ConfigError::Policy(e)
    }
}

impl std::error::Error for ConfigError {}

impl ConfigError {
    /// Validates the SecPB geometry knobs shared by every front that
    /// keeps a persist buffer.
    pub fn check_secpb(cfg: &secpb_sim::config::SecPbConfig) -> Result<(), ConfigError> {
        if cfg.entries == 0 {
            return Err(ConfigError::ZeroSecPbEntries);
        }
        let (high, low) = (cfg.high_watermark, cfg.low_watermark);
        if !((0.0..=1.0).contains(&low) && (0.0..=1.0).contains(&high) && low <= high) {
            return Err(ConfigError::InvalidWatermarks { high, low });
        }
        Ok(())
    }
}

/// A structural inconsistency discovered while handling a crash or
/// running recovery.  These used to be panics; the fault-injection
/// engine requires them to surface as values so a storm can distinguish
/// "the model detected a broken invariant" from "the model aborted".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryError {
    /// A block scheduled for draining was not resident in the SecPB.
    MissingPbEntry(BlockAddr),
    /// A block's encryption page had no tracked counter state.
    MissingPage(u64),
    /// A store-buffer entry expected to be present was absent.
    MissingBufferEntry(BlockAddr),
    /// The drain engine reported in-flight work but produced no
    /// completion event.
    DrainEngineInconsistent,
    /// A multi-core SecPB entry was not tracked by the directory.
    UntrackedEntry(BlockAddr),
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::MissingPbEntry(b) => {
                write!(f, "drain target not resident in SecPB: block {}", b.index())
            }
            RecoveryError::MissingPage(p) => write!(f, "no counter state for page {p}"),
            RecoveryError::MissingBufferEntry(b) => {
                write!(f, "store-buffer entry missing for block {}", b.index())
            }
            RecoveryError::DrainEngineInconsistent => {
                write!(f, "drain engine in-flight but produced no completion")
            }
            RecoveryError::UntrackedEntry(b) => {
                write!(f, "SecPB entry untracked by directory: block {}", b.index())
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

/// What kind of crash occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashKind {
    /// Power loss: detected, battery drains everything.
    PowerLoss,
    /// Hardware or system-software failure: treated like power loss.
    HardwareFailure,
    /// An application crash (segfault, divide-by-zero, ...); the system
    /// survives and only the SecPB handling differs by [`DrainPolicy`].
    ApplicationCrash(Asid),
}

/// How an application crash drains the SecPB (Section III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DrainPolicy {
    /// Drain every entry regardless of owner — the paper's choice: no
    /// ASID tags needed, and application crashes are rare.
    #[default]
    DrainAll,
    /// Drain only the faulting process's entries (requires ASID tags in
    /// each entry; other processes keep coalescing).
    DrainProcess,
}

/// How the crash observer is kept from seeing inconsistent state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ObserverPolicy {
    /// The observer is blocked until draining and sec-sync complete.
    #[default]
    Blocking,
    /// The observer may look immediately but is warned to wait until the
    /// persistent state reaches crash consistency.
    Warning,
}

/// Work performed on battery power during a crash drain, in units the
/// energy model converts to joules (Table III).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DrainWork {
    /// SecPB entries drained.
    pub entries: u64,
    /// Bytes moved from the SecPB to the memory controller.
    pub bytes_pb_to_mc: u64,
    /// Data/metadata bytes written from the MC to the PM.
    pub bytes_mc_to_pm: u64,
    /// Counter blocks fetched from PM (counter-cache misses during
    /// sec-sync).
    pub counter_fetches: u64,
    /// BMT nodes hashed.
    pub bmt_node_hashes: u64,
    /// BMT nodes fetched from PM.
    pub bmt_node_fetches: u64,
    /// OTPs generated.
    pub otps: u64,
    /// MACs computed.
    pub macs: u64,
    /// Ciphertext XORs (single-cycle; negligible energy, counted anyway).
    pub ciphertexts: u64,
}

/// The outcome of a crash: when each battery-powered phase finished and
/// how much work it did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashReport {
    /// The crash kind handled.
    pub kind: CrashKind,
    /// Cycle at which the crash was detected.
    pub at: Cycle,
    /// Cycle at which the SecPB finished draining (the *draining gap*
    /// closed).
    pub drain_complete_at: Cycle,
    /// Cycle at which all security metadata was updated and persisted
    /// (the *sec-sync gap* closed); the observable state is consistent
    /// from here on.
    pub secsync_complete_at: Cycle,
    /// Battery-powered work performed.
    pub work: DrainWork,
    /// Blocks that could *not* be drained because the battery budget ran
    /// out (brown-out).  Empty on a fully provisioned battery.  The
    /// durable images of these blocks are stale; recovery classifies
    /// them as [`BlockVerdict::LostStale`], not as corruption.
    pub lost_blocks: Vec<BlockAddr>,
}

impl CrashReport {
    /// Blocks lost to a brown-out (battery exhausted mid-drain).
    pub fn lost_block_count(&self) -> u64 {
        self.lost_blocks.len() as u64
    }

    /// Whether the drain ran to completion (no brown-out truncation).
    pub fn drain_was_complete(&self) -> bool {
        self.lost_blocks.is_empty()
    }
}

impl CrashReport {
    /// What an observer looking at the persistent state at `when` is
    /// allowed to see under `policy`.
    pub fn observe(&self, policy: ObserverPolicy, when: Cycle) -> ObserverView {
        if when >= self.secsync_complete_at {
            ObserverView::Consistent
        } else {
            match policy {
                ObserverPolicy::Blocking => ObserverView::Blocked {
                    until: self.secsync_complete_at,
                },
                ObserverPolicy::Warning => ObserverView::Warned {
                    consistent_at: self.secsync_complete_at,
                },
            }
        }
    }
}

/// The observer's view of the post-crash persistent state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObserverView {
    /// Draining and sec-sync are complete; the state is crash consistent.
    Consistent,
    /// Blocking policy: the observer may not look before `until`.
    Blocked {
        /// Cycle at which the state becomes observable.
        until: Cycle,
    },
    /// Warning policy: the observer may look, with a warning that the
    /// state is only consistent from `consistent_at`.
    Warned {
        /// Cycle at which the state becomes consistent.
        consistent_at: Cycle,
    },
}

/// The per-block verdict recovery assigns after decrypting and
/// verifying a persisted data block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockVerdict {
    /// MAC verified and plaintext matches the architectural expectation.
    Verified,
    /// MAC verification failed — tampering/corruption *detected*.
    MacMismatch,
    /// MAC verified but the plaintext differs from the expectation with
    /// no accounted reason — the dangerous case.
    PlaintextMismatch,
    /// The block was lost to a battery brown-out; its durable image is
    /// legitimately stale and was accounted in
    /// [`CrashReport::lost_blocks`].
    LostStale,
    /// The block was still SecPB-resident at the crash (e.g. a
    /// [`DrainPolicy::DrainProcess`] drain kept other processes'
    /// entries buffered); its durable image is legitimately stale.
    InFlightStale,
}

impl BlockVerdict {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            BlockVerdict::Verified => "verified",
            BlockVerdict::MacMismatch => "mac-mismatch",
            BlockVerdict::PlaintextMismatch => "plaintext-mismatch",
            BlockVerdict::LostStale => "lost-stale",
            BlockVerdict::InFlightStale => "in-flight-stale",
        }
    }
}

/// The outcome of post-crash recovery: decryption, MAC verification, and
/// BMT root reconstruction over the entire persisted state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Whether the rebuilt BMT root matches the persisted root register.
    pub root_ok: bool,
    /// Number of data blocks checked.
    pub blocks_checked: u64,
    /// Blocks whose MAC failed verification.
    pub mac_failures: Vec<BlockAddr>,
    /// Blocks whose decrypted plaintext differs from the architecturally
    /// expected post-crash value *without* an accounted reason.
    pub plaintext_mismatches: Vec<BlockAddr>,
    /// Blocks whose stale durable image is accounted for by a brown-out
    /// (they appear in the crash report's `lost_blocks`).
    pub lost_stale: Vec<BlockAddr>,
    /// Blocks whose stale durable image is accounted for by entries
    /// still resident in the SecPB at the crash.
    pub in_flight_stale: Vec<BlockAddr>,
    /// Per-block verdicts in block-address order, for storm forensics.
    pub verdicts: Vec<(BlockAddr, BlockVerdict)>,
}

impl RecoveryReport {
    /// Whether recovery succeeded completely: root verified, every MAC
    /// verified, every block decrypted to the expected plaintext.
    /// Accounted staleness (`lost_stale`, `in_flight_stale`) does not
    /// break consistency — those blocks are *known* old.
    pub fn is_consistent(&self) -> bool {
        self.root_ok && self.mac_failures.is_empty() && self.plaintext_mismatches.is_empty()
    }

    /// Whether integrity verification (MACs + root) passed, regardless of
    /// plaintext expectations (used by tamper tests, where a *detected*
    /// attack means verification must fail).
    pub fn integrity_ok(&self) -> bool {
        self.root_ok && self.mac_failures.is_empty()
    }
}

/// The storm-level classification of one fault-injection episode
/// (inject → crash → recover → verify).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOutcome {
    /// Integrity verification caught the injected fault (MAC or root
    /// mismatch reported).  The paper's required behaviour.
    DetectedAndRejected,
    /// No fault reached the persistent footprint and recovery verified
    /// everything (or all staleness was accounted).
    Recovered,
    /// A fault (or an unexplained mismatch) slipped past integrity
    /// verification.  Always a test failure.
    SilentCorruption,
}

impl FaultOutcome {
    /// Classifies a recovery report.  `fault_injected` says whether a
    /// corruption actually landed in the persistent footprint; an
    /// injected fault that passes integrity verification is silent
    /// corruption even when the plaintext happens to read back clean —
    /// accepting unauthenticated modified state is the failure.
    pub fn classify(fault_injected: bool, report: &RecoveryReport) -> FaultOutcome {
        if !report.integrity_ok() {
            return FaultOutcome::DetectedAndRejected;
        }
        if fault_injected || !report.plaintext_mismatches.is_empty() {
            FaultOutcome::SilentCorruption
        } else {
            FaultOutcome::Recovered
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            FaultOutcome::DetectedAndRejected => "detected-and-rejected",
            FaultOutcome::Recovered => "recovered",
            FaultOutcome::SilentCorruption => "silent-corruption",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> CrashReport {
        CrashReport {
            kind: CrashKind::PowerLoss,
            at: Cycle(100),
            drain_complete_at: Cycle(500),
            secsync_complete_at: Cycle(900),
            work: DrainWork::default(),
            lost_blocks: Vec::new(),
        }
    }

    #[test]
    fn blocking_observer_blocked_until_secsync() {
        let r = report();
        assert_eq!(
            r.observe(ObserverPolicy::Blocking, Cycle(600)),
            ObserverView::Blocked { until: Cycle(900) }
        );
        assert_eq!(
            r.observe(ObserverPolicy::Blocking, Cycle(900)),
            ObserverView::Consistent
        );
    }

    #[test]
    fn warning_observer_is_warned_early() {
        let r = report();
        assert_eq!(
            r.observe(ObserverPolicy::Warning, Cycle(600)),
            ObserverView::Warned {
                consistent_at: Cycle(900)
            }
        );
        assert_eq!(
            r.observe(ObserverPolicy::Warning, Cycle(1000)),
            ObserverView::Consistent
        );
    }

    #[test]
    fn recovery_report_consistency() {
        let mut r = RecoveryReport {
            root_ok: true,
            blocks_checked: 5,
            ..Default::default()
        };
        assert!(r.is_consistent());
        assert!(r.integrity_ok());
        r.plaintext_mismatches.push(BlockAddr(1));
        assert!(!r.is_consistent());
        assert!(
            r.integrity_ok(),
            "plaintext mismatch is not an integrity failure"
        );
        r.mac_failures.push(BlockAddr(2));
        assert!(!r.integrity_ok());
    }

    #[test]
    fn default_policies_match_paper() {
        assert_eq!(DrainPolicy::default(), DrainPolicy::DrainAll);
        assert_eq!(ObserverPolicy::default(), ObserverPolicy::Blocking);
    }

    #[test]
    fn lost_block_accounting() {
        let mut r = report();
        assert!(r.drain_was_complete());
        assert_eq!(r.lost_block_count(), 0);
        r.lost_blocks.push(BlockAddr(9));
        assert!(!r.drain_was_complete());
        assert_eq!(r.lost_block_count(), 1);
    }

    #[test]
    fn accounted_staleness_keeps_consistency() {
        let r = RecoveryReport {
            root_ok: true,
            blocks_checked: 3,
            lost_stale: vec![BlockAddr(1)],
            in_flight_stale: vec![BlockAddr(2)],
            verdicts: vec![
                (BlockAddr(0), BlockVerdict::Verified),
                (BlockAddr(1), BlockVerdict::LostStale),
                (BlockAddr(2), BlockVerdict::InFlightStale),
            ],
            ..Default::default()
        };
        assert!(r.is_consistent(), "accounted staleness is not corruption");
        assert!(r.integrity_ok());
    }

    #[test]
    fn fault_outcome_classification() {
        let clean = RecoveryReport {
            root_ok: true,
            blocks_checked: 1,
            ..Default::default()
        };
        assert_eq!(
            FaultOutcome::classify(false, &clean),
            FaultOutcome::Recovered
        );
        assert_eq!(
            FaultOutcome::classify(true, &clean),
            FaultOutcome::SilentCorruption,
            "an injected fault that passes integrity is silent corruption"
        );
        let detected = RecoveryReport {
            root_ok: false,
            blocks_checked: 1,
            ..Default::default()
        };
        assert_eq!(
            FaultOutcome::classify(true, &detected),
            FaultOutcome::DetectedAndRejected
        );
        let silent = RecoveryReport {
            root_ok: true,
            blocks_checked: 1,
            plaintext_mismatches: vec![BlockAddr(3)],
            ..Default::default()
        };
        assert_eq!(
            FaultOutcome::classify(false, &silent),
            FaultOutcome::SilentCorruption
        );
    }

    #[test]
    fn config_error_display_and_checks() {
        use secpb_sim::config::SecPbConfig;
        assert!(ConfigError::ZeroCores.to_string().contains("one core"));
        assert!(ConfigError::BufferlessScheme(Scheme::Sp)
            .to_string()
            .contains("no SecPB"));
        assert!(ConfigError::ZeroSecPbEntries
            .to_string()
            .contains("one entry"));
        assert!(ConfigError::InvalidWatermarks {
            high: 0.2,
            low: 0.8
        }
        .to_string()
        .contains("low=0.8"));
        assert_eq!(ConfigError::check_secpb(&SecPbConfig::default()), Ok(()));
        let zero = SecPbConfig {
            entries: 0,
            ..SecPbConfig::default()
        };
        assert_eq!(
            ConfigError::check_secpb(&zero),
            Err(ConfigError::ZeroSecPbEntries)
        );
        let inverted = SecPbConfig {
            high_watermark: 0.2,
            low_watermark: 0.8,
            ..SecPbConfig::default()
        };
        assert!(matches!(
            ConfigError::check_secpb(&inverted),
            Err(ConfigError::InvalidWatermarks { .. })
        ));
    }

    #[test]
    fn recovery_error_display() {
        assert_eq!(
            RecoveryError::MissingPbEntry(BlockAddr(7)).to_string(),
            "drain target not resident in SecPB: block 7"
        );
        assert!(RecoveryError::DrainEngineInconsistent
            .to_string()
            .contains("drain engine"));
        assert!(RecoveryError::MissingPage(3).to_string().contains("page 3"));
        assert!(RecoveryError::MissingBufferEntry(BlockAddr(1))
            .to_string()
            .contains("store-buffer"));
        assert!(RecoveryError::UntrackedEntry(BlockAddr(2))
            .to_string()
            .contains("untracked"));
        assert_eq!(BlockVerdict::LostStale.name(), "lost-stale");
        assert_eq!(FaultOutcome::Recovered.name(), "recovered");
    }
}
