//! The SecPB design spectrum (Section IV, Figure 4 of the paper).
//!
//! Each scheme names the security-metadata steps performed *late* (post
//! crash): the longer the name, the lazier the scheme.  The letters stand
//! for **C**ounter increment, **O**TP generation, **B**MT root update,
//! **C**iphertext generation, and **M**AC generation, reading the
//! dependency chain of Figure 4 from its tail:
//!
//! | Scheme  | Early (at store persist)                       | Late (post crash) |
//! |---------|------------------------------------------------|-------------------|
//! | NoGap   | counter, OTP, BMT, ciphertext, MAC             | —                 |
//! | M       | counter, OTP, BMT, ciphertext                  | MAC               |
//! | CM      | counter, OTP, BMT                              | ciphertext, MAC   |
//! | BCM     | counter, OTP                                   | BMT, …            |
//! | OBCM    | counter                                        | OTP, …            |
//! | COBCM   | — (data write only)                            | everything        |
//!
//! Two baselines complete the evaluated set (Table II): `Bbb`, the
//! insecure battery-backed buffer of Alshboul et al., and `Sp`, strict
//! persistency with the SPoP at the memory controller (PLP, MICRO'20).

use std::fmt;
use std::str::FromStr;

/// Which security-metadata steps a scheme performs *early*, i.e. at store
/// persist time in the SecPB.
///
/// The steps form the dependency chain of Figure 4:
/// `counter → {OTP → ciphertext → MAC, BMT}` — so a legal assignment is a
/// prefix of that chain, which is exactly what the six named schemes are.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EarlyWork {
    /// Fetch and increment the block's split counter.
    pub counter: bool,
    /// Generate the one-time pad.
    pub otp: bool,
    /// Update the BMT from leaf to root.
    pub bmt: bool,
    /// XOR the plaintext with the pad.
    pub ciphertext: bool,
    /// Compute the per-block MAC.
    pub mac: bool,
}

impl EarlyWork {
    /// No early work at all (COBCM / bbb).
    pub const NONE: EarlyWork = EarlyWork {
        counter: false,
        otp: false,
        bmt: false,
        ciphertext: false,
        mac: false,
    };

    /// All metadata generated eagerly (NoGap).
    pub const ALL: EarlyWork = EarlyWork {
        counter: true,
        otp: true,
        bmt: true,
        ciphertext: true,
        mac: true,
    };

    /// Whether the assignment respects the Figure 4 dependency chain
    /// (each early step's producers are also early).
    #[allow(clippy::nonminimal_bool)] // mirrors the Figure 4 edges one-to-one
    pub fn respects_dependencies(&self) -> bool {
        // otp needs counter; bmt needs counter; ciphertext needs otp;
        // mac needs ciphertext.
        (!self.otp || self.counter)
            && (!self.bmt || self.counter)
            && (!self.ciphertext || self.otp)
            && (!self.mac || self.ciphertext)
    }
}

/// An evaluated persistence scheme (Table II of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scheme {
    /// Battery-backed buffer with no security mechanisms (the insecure
    /// baseline every result is normalized to).
    Bbb,
    /// Strict persistency with SPoP at the memory controller (PLP): every
    /// store persists its full memory tuple through the MC before the next
    /// store may persist.  No SecPB.
    Sp,
    /// Only the data write enters the SecPB; all metadata is post-crash.
    Cobcm,
    /// Counter fetched/incremented early; everything else post-crash.
    Obcm,
    /// Counter + OTP early.
    Bcm,
    /// Counter + OTP + BMT root update early.
    Cm,
    /// Counter + OTP + BMT + ciphertext early; only the MAC is post-crash.
    M,
    /// Everything early; the sec-sync gap is eliminated entirely.
    NoGap,
}

impl Scheme {
    /// All schemes in Table II order (baselines first, then laziest to
    /// most eager).
    pub const ALL: [Scheme; 8] = [
        Scheme::Bbb,
        Scheme::Sp,
        Scheme::Cobcm,
        Scheme::Obcm,
        Scheme::Bcm,
        Scheme::Cm,
        Scheme::M,
        Scheme::NoGap,
    ];

    /// The six SecPB schemes (no baselines), laziest first.
    pub const SECPB_SCHEMES: [Scheme; 6] = [
        Scheme::Cobcm,
        Scheme::Obcm,
        Scheme::Bcm,
        Scheme::Cm,
        Scheme::M,
        Scheme::NoGap,
    ];

    /// The early-work assignment of this scheme.
    ///
    /// `Bbb` performs no security work at all; `Sp` performs all of it,
    /// but at the memory controller rather than in a SecPB.
    pub fn early_work(self) -> EarlyWork {
        match self {
            Scheme::Bbb => EarlyWork::NONE,
            Scheme::Sp => EarlyWork::ALL,
            Scheme::Cobcm => EarlyWork::NONE,
            Scheme::Obcm => EarlyWork {
                counter: true,
                ..EarlyWork::NONE
            },
            Scheme::Bcm => EarlyWork {
                counter: true,
                otp: true,
                ..EarlyWork::NONE
            },
            Scheme::Cm => EarlyWork {
                counter: true,
                otp: true,
                bmt: true,
                ..EarlyWork::NONE
            },
            Scheme::M => EarlyWork {
                mac: false,
                ..EarlyWork::ALL
            },
            Scheme::NoGap => EarlyWork::ALL,
        }
    }

    /// The SecPB scheme whose early-work assignment is `ew`, if any.
    ///
    /// Every legal prefix of the Figure 4 chain names exactly one member
    /// of [`Scheme::SECPB_SCHEMES`]; the baselines (`Bbb`, `Sp`) reuse
    /// `NONE`/`ALL` and are deliberately *not* returned here, so the
    /// round trip `scheme → early_work → from_early_work` is the
    /// identity on the six SecPB schemes.
    pub fn from_early_work(ew: EarlyWork) -> Option<Scheme> {
        Scheme::SECPB_SCHEMES
            .into_iter()
            .find(|s| s.early_work() == ew)
    }

    /// Whether this scheme secures memory at all (everything but `Bbb`).
    pub fn is_secure(self) -> bool {
        self != Scheme::Bbb
    }

    /// Whether this scheme uses a SecPB (everything but the baselines).
    pub fn uses_secpb(self) -> bool {
        !matches!(self, Scheme::Sp)
    }

    /// Whether a store's release to the core serializes with the previous
    /// persist's *completion* (Section IV-B: NoGap raises its unblocking
    /// signal only when the full metadata persist finishes).
    pub fn serializes_store_release(self) -> bool {
        matches!(self, Scheme::NoGap)
    }

    /// Whether the scheme pays a second SecPB access on allocation to
    /// check the counter valid bit before unblocking the L1D
    /// (Section VI-B: OBCM's double buffer access).
    pub fn double_buffer_check(self) -> bool {
        matches!(self, Scheme::Obcm)
    }

    /// Bytes of entry state a battery-powered drain moves from the SecPB
    /// to the memory controller per entry: only the fields the scheme
    /// actually populates early (Figure 5's field table).
    pub fn entry_footprint_bytes(self) -> u64 {
        match self {
            Scheme::Bbb => 64,
            Scheme::Cobcm | Scheme::Obcm => 65,
            Scheme::Bcm => 130,
            Scheme::Cm => 131,
            Scheme::M => 196,
            Scheme::NoGap | Scheme::Sp => 260,
        }
    }

    /// The scheme's lowercase display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Bbb => "bbb",
            Scheme::Sp => "sp",
            Scheme::Cobcm => "cobcm",
            Scheme::Obcm => "obcm",
            Scheme::Bcm => "bcm",
            Scheme::Cm => "cm",
            Scheme::M => "m",
            Scheme::NoGap => "nogap",
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown scheme name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSchemeError(String);

impl fmt::Display for ParseSchemeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown scheme name `{}`", self.0)
    }
}

impl std::error::Error for ParseSchemeError {}

impl FromStr for Scheme {
    type Err = ParseSchemeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "bbb" => Ok(Scheme::Bbb),
            "sp" => Ok(Scheme::Sp),
            "cobcm" => Ok(Scheme::Cobcm),
            "obcm" => Ok(Scheme::Obcm),
            "bcm" => Ok(Scheme::Bcm),
            "cm" => Ok(Scheme::Cm),
            "m" => Ok(Scheme::M),
            "nogap" => Ok(Scheme::NoGap),
            other => Err(ParseSchemeError(other.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schemes_are_nested_prefixes() {
        // Each SecPB scheme's early set must contain the previous one's.
        let works: Vec<EarlyWork> = Scheme::SECPB_SCHEMES
            .iter()
            .map(|s| s.early_work())
            .collect();
        let count = |w: &EarlyWork| {
            [w.counter, w.otp, w.bmt, w.ciphertext, w.mac]
                .iter()
                .filter(|&&b| b)
                .count()
        };
        for pair in works.windows(2) {
            assert!(count(&pair[0]) < count(&pair[1]), "{pair:?}");
        }
    }

    #[test]
    fn all_schemes_respect_dependency_chain() {
        for s in Scheme::ALL {
            assert!(
                s.early_work().respects_dependencies(),
                "{s} violates Figure 4"
            );
        }
    }

    #[test]
    fn dependency_checker_catches_violations() {
        let bad = EarlyWork {
            counter: false,
            otp: true,
            ..EarlyWork::NONE
        };
        assert!(!bad.respects_dependencies());
        let bad2 = EarlyWork {
            counter: true,
            otp: true,
            ciphertext: true,
            mac: false,
            bmt: false,
        };
        assert!(bad2.respects_dependencies());
        let bad3 = EarlyWork {
            mac: true,
            ..EarlyWork::NONE
        };
        assert!(!bad3.respects_dependencies());
    }

    #[test]
    fn table_ii_assignments() {
        assert_eq!(Scheme::Cobcm.early_work(), EarlyWork::NONE);
        assert_eq!(
            Scheme::Obcm.early_work(),
            EarlyWork {
                counter: true,
                ..EarlyWork::NONE
            }
        );
        assert!(Scheme::Bcm.early_work().otp && !Scheme::Bcm.early_work().bmt);
        assert!(Scheme::Cm.early_work().bmt && !Scheme::Cm.early_work().ciphertext);
        assert!(Scheme::M.early_work().ciphertext && !Scheme::M.early_work().mac);
        assert_eq!(Scheme::NoGap.early_work(), EarlyWork::ALL);
    }

    #[test]
    fn baselines() {
        assert!(!Scheme::Bbb.is_secure());
        assert!(Scheme::Sp.is_secure());
        assert!(!Scheme::Sp.uses_secpb());
        assert!(Scheme::Cobcm.uses_secpb());
        assert!(
            Scheme::Bbb.uses_secpb(),
            "bbb uses the (insecure) persist buffer"
        );
    }

    #[test]
    fn capability_predicates() {
        assert!(Scheme::NoGap.serializes_store_release());
        assert!(Scheme::ALL
            .iter()
            .all(|s| s.serializes_store_release() == (*s == Scheme::NoGap)));
        assert!(Scheme::Obcm.double_buffer_check());
        assert!(Scheme::ALL
            .iter()
            .all(|s| s.double_buffer_check() == (*s == Scheme::Obcm)));
        // Footprints grow monotonically across the SecPB spectrum.
        let fp: Vec<u64> = Scheme::SECPB_SCHEMES
            .iter()
            .map(|s| s.entry_footprint_bytes())
            .collect();
        for pair in fp.windows(2) {
            assert!(pair[0] <= pair[1], "{fp:?}");
        }
        assert_eq!(Scheme::Bbb.entry_footprint_bytes(), 64);
        assert_eq!(Scheme::NoGap.entry_footprint_bytes(), 260);
    }

    #[test]
    fn parse_round_trips() {
        for s in Scheme::ALL {
            assert_eq!(s.name().parse::<Scheme>().unwrap(), s);
        }
        assert_eq!("NoGap".parse::<Scheme>().unwrap(), Scheme::NoGap);
        assert!("bogus".parse::<Scheme>().is_err());
        let err = "bogus".parse::<Scheme>().unwrap_err();
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Scheme::Cobcm.to_string(), "cobcm");
        assert_eq!(format!("{}", Scheme::NoGap), "nogap");
    }
}
