//! The per-store persist pipeline of the single-core system: SecPB
//! acceptance, early metadata work, background drains, and the SP
//! baseline's store path.
//!
//! The pipeline is driven entirely by the scheme's [`EarlyWork`] flags
//! (Figure 4's dependency chain `counter → {OTP → ciphertext → MAC,
//! BMT}`): each flag that is set runs its step at store-persist time and
//! marks the entry field valid; each flag that is clear leaves the step
//! for drain time (`SecureSystem::flush_entry`) or the post-crash
//! sec-sync.  The only scheme identities consulted are capability
//! predicates on [`Scheme`] (store-release serialization for NoGap, the
//! double buffer access for OBCM, SecPB use at all for SP).

use secpb_crypto::counter::{IncrementOutcome, SplitCounter};
use secpb_crypto::otp::OtpEngine;
use secpb_mem::cache::LineState;
use secpb_mem::hierarchy::HitLevel;
use secpb_mem::metadata::{MetadataCaches, MetadataKind};
use secpb_mem::store::NvmStore;
use secpb_sim::addr::BlockAddr;
use secpb_sim::cycle::Cycle;
use secpb_sim::telemetry::TelemetryEvent;
use secpb_sim::trace::Access;
use secpb_sim::tracer::Phase;

use crate::crash::RecoveryError;
use crate::entry::Entry;
use crate::scheme::EarlyWork;
use crate::system::{Attr, SecureSystem};

#[allow(unused_imports)] // rustdoc link target
use crate::scheme::Scheme;

impl SecureSystem {
    pub(crate) fn do_load(&mut self, access: Access) {
        self.stats.inc(self.h.loads);
        let block = access.addr.block();
        let out = self
            .hierarchy
            .load_traced(block, self.now, &mut self.tracer);
        let mut extra = out.latency.saturating_sub(self.cfg.l1.access_latency);
        match out.hit_level {
            HitLevel::L1 => self.stats.inc(self.h.l1_hits),
            HitLevel::L2 => self.stats.inc(self.h.l2_hits),
            HitLevel::L3 => self.stats.inc(self.h.l3_hits),
            HitLevel::Memory => {
                let done = self.nvm_timing.read(block, self.now);
                extra += done.since(self.now);
                self.stats.inc(self.h.load_misses);
                if self.scheme.is_secure() && !self.cfg.security.speculative_verification {
                    // Blocking verification: decrypt + MAC check before use.
                    extra += self.cfg.security.otp_latency + self.cfg.security.mac_latency;
                    self.stats.inc(self.h.blocking_verifications);
                }
            }
        }
        for wb in out.writebacks {
            self.wpq.enqueue(wb, self.now, &mut self.nvm_timing);
        }
        self.advance(self.cfg.core.load_exposure * extra as f64, Attr::Load);
    }

    pub(crate) fn do_store(&mut self, access: Access) {
        self.stats.inc(self.h.stores);
        // Architectural effect.
        self.domain.apply_store_golden(access);

        if self.scheme.uses_secpb() {
            self.pb_store(access);
        } else {
            self.sp_store(access);
        }
    }

    // ---------------------------------------------------------------
    // SecPB store path
    // ---------------------------------------------------------------

    fn pb_store(&mut self, access: Access) {
        let block = access.addr.block();
        let offset = access.addr.block_offset();
        let size = usize::from(access.size);
        self.hierarchy.store(block, LineState::PersistDirty);

        if self.scheme.serializes_store_release() {
            // NoGap only raises its unblocking signal at the *completion*
            // of the full metadata persist (Section IV-B): the store
            // buffer cannot accept a new store until then, so the
            // previous persist serializes with the core directly.
            let old = self.now;
            self.now = self.now.max(self.pb_busy_until);
            self.attribute(Attr::NogapWait, old);
        }
        let mut release = self.now.max(self.pb_busy_until);
        self.drain_engine.retire(release);
        // The policy's early-step assignment drives the per-store
        // pipeline; `Scheme::early_work` is just its default resolution.
        let ew = self.domain.policy.early;
        let secure = self.scheme.is_secure();
        let pb_lat = self.cfg.secpb.access_latency;

        let accept_end;
        if self.pb.contains(block) {
            // Coalescing hit.
            match self.pb.entry_mut(block) {
                Some(e) => e.apply_store(offset, access.value, size),
                None => self.stats.inc(self.h.anomalies),
            }
            self.pb.note_persist();
            self.stats.inc(self.h.persists);
            accept_end = self.accept_coalesced(block, release + pb_lat, ew, secure);
        } else {
            // Allocation path: wait for a slot if necessary.
            release = self.wait_for_slot(release);
            let base = self.domain.expected_plaintext(block);
            let e = self.pb.allocate(block, access.asid, base);
            e.apply_store(offset, access.value, size);
            e.born = release;
            self.pb.note_persist();
            self.stats.inc(self.h.persists);
            self.stats.inc(self.h.allocations);
            accept_end = self.accept_allocated(block, release, ew, secure);

            if self.pb.above_high_watermark() {
                self.issue_background_drains(accept_end);
            }
        }

        self.pb_busy_until = accept_end;
        self.tracer.span(Phase::StorePersist, release, accept_end);
        self.stats
            .record(self.h.occupancy, self.pb.occupancy() as u64);
        let work = accept_end.since(release + pb_lat);
        self.push_store_buffer(accept_end);
        self.advance(
            self.cfg.core.store_exposure * work as f64,
            Attr::StoreAccept,
        );
    }

    /// Early work on a coalescing hit: value-dependent steps only, unless
    /// the value-independent-coalescing ablation is off.
    fn accept_coalesced(
        &mut self,
        block: BlockAddr,
        start: Cycle,
        ew: EarlyWork,
        secure: bool,
    ) -> Cycle {
        let mut t = start;
        if secure && !self.cfg.security.value_independent_coalescing && ew.counter {
            // Ablation: redo value-independent metadata on every store.
            let (done, ctr) = self.early_counter_increment(block, t);
            t = done;
            if let Some(e) = self.pb.entry_mut(block) {
                e.counter = ctr;
                e.valid.counter = true;
            } else {
                self.stats.inc(self.h.anomalies);
            }
            if ew.otp {
                t = self.early_otp(block, t);
            }
            if ew.bmt {
                t = self.early_bmt_walk(block, t);
            }
        }
        if secure && ew.ciphertext {
            t = self.early_ciphertext(block, t);
        }
        if secure && ew.mac {
            t = self.early_mac(block, t);
        }
        t
    }

    /// Early work on a fresh allocation: the scheme's whole early set,
    /// with the data chain and the BMT walk in parallel.
    fn accept_allocated(
        &mut self,
        block: BlockAddr,
        release: Cycle,
        ew: EarlyWork,
        secure: bool,
    ) -> Cycle {
        let pb_lat = self.cfg.secpb.access_latency;
        let mut t = release + pb_lat;
        if self.scheme.double_buffer_check() {
            // OBCM pays a second SecPB access to check the counter
            // valid bit before unblocking the L1D (Section VI-B).
            t += pb_lat;
        }
        if secure && ew.counter {
            let (done, ctr) = self.early_counter_increment(block, t);
            t = done;
            if let Some(e) = self.pb.entry_mut(block) {
                e.counter = ctr;
                e.valid.counter = true;
            } else {
                self.stats.inc(self.h.anomalies);
            }
        }
        let mut data_done = t;
        if secure && ew.otp {
            data_done = self.early_otp(block, data_done);
            if ew.ciphertext {
                data_done = self.early_ciphertext(block, data_done);
                if ew.mac {
                    data_done = self.early_mac(block, data_done);
                }
            }
        }
        let bmt_done = if secure && ew.bmt {
            self.early_bmt_walk(block, t)
        } else {
            t
        };
        data_done.max(bmt_done)
    }

    fn push_store_buffer(&mut self, accept_end: Cycle) {
        while self.store_buffer.front().is_some_and(|&c| c <= self.now) {
            self.store_buffer.pop_front();
        }
        if self.store_buffer.len() >= self.cfg.core.store_buffer_entries {
            if let Some(oldest) = self.store_buffer.pop_front() {
                let stall = oldest.since(self.now);
                self.stats.add(self.h.sb_stall_cycles, stall);
                let old = self.now;
                self.now = self.now.max(oldest);
                self.attribute(Attr::SbStall, old);
            }
        }
        self.store_buffer.push_back(accept_end);
    }

    /// Blocks until a SecPB slot is available, issuing drains as needed.
    fn wait_for_slot(&mut self, mut release: Cycle) -> Cycle {
        loop {
            let in_flight = self.drain_engine.in_flight(release);
            if self.pb.occupancy() + in_flight < self.cfg.secpb.entries {
                return release;
            }
            match self.drain_engine.next_completion() {
                None => {
                    if !self.issue_drains(release, 1) {
                        // Nothing drainable and nothing in flight: the
                        // buffer cannot make progress — accept the store
                        // rather than deadlock, and flag the anomaly.
                        self.stats.inc(self.h.anomalies);
                        if let Some(sink) = self.stats.sink() {
                            sink.emit(&TelemetryEvent::AnomalyMarker {
                                count: self.stats.value(self.h.anomalies),
                                cycle: release.raw(),
                            });
                        }
                        return release;
                    }
                }
                Some(c) => {
                    self.stats.add(self.h.full_stall_cycles, c.since(release));
                    self.tracer.span(Phase::FullStall, release, c);
                    release = release.max(c);
                    self.drain_engine.retire(release);
                }
            }
        }
    }

    fn issue_background_drains(&mut self, now: Cycle) {
        let target = self.cfg.secpb.low_watermark_entries();
        let excess = self.pb.occupancy().saturating_sub(target);
        if excess > 0 {
            self.drain_burst(now, excess);
        }
    }

    /// Drains the `n` oldest entries as one burst.  Per-entry timing,
    /// stats, and spans run in drain order exactly as `n` calls to
    /// [`drain_one`](Self::drain_one) would; the functional flushes are
    /// handed to [`flush_entries`](Self::flush_entries) so runs of
    /// fully-resolved entries share one multi-lane MAC dispatch.
    fn drain_burst(&mut self, now: Cycle, n: usize) {
        let mut pending: Vec<Entry> = Vec::with_capacity(n);
        for _ in 0..n {
            let Some(block) = self.pb.oldest() else { break };
            let Some(entry) = self.pb.remove(block) else {
                self.stats.inc(self.h.anomalies);
                break;
            };
            let (ii, latency) = self.drain_timing(&entry, now);
            let completion = self.drain_engine.issue(now, ii, latency);
            self.tracer.span(Phase::Drain, now, completion);
            self.stats
                .record(self.h.drain_latency, completion.since(now));
            self.stats
                .record(self.h.entry_lifetime, now.since(entry.born));
            self.stats.record(self.h.writes_per_entry, entry.stores);
            self.stats.inc(self.h.drains);
            pending.push(entry);
        }
        self.flush_entries(pending);
    }

    /// Flushes drained entries in order, batching maximal runs whose
    /// counter and ciphertext are already resolved (no state left to
    /// generate besides the stateless MAC) through the domain's
    /// multi-lane batch kernel; anything else falls back to the
    /// one-entry path at its position in the order.
    fn flush_entries(&mut self, entries: Vec<Entry>) {
        if !self.scheme.is_secure() {
            for entry in entries {
                self.domain.flush_entry(entry, false);
            }
            return;
        }
        let mut ready: Vec<Entry> = Vec::new();
        for entry in entries {
            if entry.valid.counter && entry.valid.ciphertext {
                ready.push(entry);
            } else {
                self.flush_ready_run(&ready);
                ready.clear();
                self.flush_entry(entry);
            }
        }
        self.flush_ready_run(&ready);
    }

    fn flush_ready_run(&mut self, run: &[Entry]) {
        if run.is_empty() {
            return;
        }
        let recs = self.domain.flush_ready_batch(run);
        for (entry, rec) in run.iter().zip(&recs) {
            if rec.mac_generated {
                self.stats.inc(self.h.macs);
            }
            self.stats.inc(self.h.bmt_root_updates);
            self.stats.add(self.h.bmt_node_hashes, rec.tree_hashes);
            if !entry.valid.bmt {
                self.stats.add(self.h.late_bmt_node_hashes, rec.tree_hashes);
            }
        }
    }

    /// Issues up to `n` oldest-first drains; returns whether any issued.
    fn issue_drains(&mut self, now: Cycle, n: usize) -> bool {
        let mut any = false;
        for _ in 0..n {
            let Some(block) = self.pb.oldest() else { break };
            match self.drain_one(block, now) {
                Ok(_) => any = true,
                Err(_) => {
                    // `oldest` said the block was resident but `remove`
                    // disagreed; count it and stop issuing this round.
                    self.stats.inc(self.h.anomalies);
                    break;
                }
            }
        }
        any
    }

    /// Drains one entry: timing through the drain engine, function through
    /// [`flush_entry`](Self::flush_entry).
    pub(crate) fn drain_one(
        &mut self,
        block: BlockAddr,
        now: Cycle,
    ) -> Result<Cycle, RecoveryError> {
        let entry = self
            .pb
            .remove(block)
            .ok_or(RecoveryError::MissingPbEntry(block))?;
        let (ii, latency) = self.drain_timing(&entry, now);
        let completion = self.drain_engine.issue(now, ii, latency);
        self.tracer.span(Phase::Drain, now, completion);
        self.stats
            .record(self.h.drain_latency, completion.since(now));
        self.stats
            .record(self.h.entry_lifetime, now.since(entry.born));
        self.stats.record(self.h.writes_per_entry, entry.stores);
        self.flush_entry(entry);
        self.stats.inc(self.h.drains);
        Ok(completion)
    }

    /// Computes (initiation interval, latency) of draining `entry` at
    /// `now`: the scheme's *late* work plus the PM writes.
    fn drain_timing(&mut self, entry: &Entry, now: Cycle) -> (u64, u64) {
        let block = entry.block;
        let page = NvmStore::page_of(block);
        let sec = &self.cfg.security;
        let pb_lat = self.cfg.secpb.access_latency;
        // The MC-side sec-sync pipeline overlaps drains (PLP-style
        // pipelined tree updates): the initiation interval models the
        // PB read port, with NVM write bandwidth applying backpressure
        // through the WPQ below.
        let ii = 8u64;
        let mut t = now + pb_lat;

        if self.scheme.is_secure() {
            if !entry.valid.counter {
                let md = self.metadata.access(
                    MetadataKind::Counter,
                    page,
                    true,
                    t,
                    &mut self.nvm_timing,
                );
                if !md.hit {
                    self.stats.inc(self.h.counter_misses);
                }
                self.tracer.span(Phase::CounterFetch, t, md.done + 1);
                t = md.done + 1;
            }
            let mut data_t = t;
            if !entry.valid.otp {
                self.tracer
                    .span(Phase::OtpGen, data_t, data_t + sec.otp_latency);
                data_t += sec.otp_latency;
            }
            if !entry.valid.ciphertext {
                data_t += 1;
            }
            if !entry.valid.mac {
                self.tracer
                    .span(Phase::Mac, data_t, data_t + sec.mac_latency);
                data_t += sec.mac_latency;
            }
            let mut bmt_t = t;
            if !entry.valid.bmt {
                let hashes = self.domain.tree.update_cost_hashes(page);
                let mut walk = bmt_t;
                for lvl in 1..=hashes {
                    let idx = (lvl << 32) | (page >> (3 * lvl as u32).min(63));
                    let md = self.metadata.access(
                        MetadataKind::BmtNode,
                        idx,
                        true,
                        walk,
                        &mut self.nvm_timing,
                    );
                    walk = md.done + sec.bmt_hash_latency;
                }
                self.tracer.span(Phase::BmtUpdate, bmt_t, walk);
                bmt_t = walk;
            }
            t = data_t.max(bmt_t);
            // PM writes: data, counter block, MAC block.
            let a1 = self.wpq.enqueue(block, t, &mut self.nvm_timing);
            let a2 = self.wpq.enqueue(
                MetadataCaches::region_block(MetadataKind::Counter, page),
                t,
                &mut self.nvm_timing,
            );
            let a3 = self.wpq.enqueue(
                MetadataCaches::region_block(MetadataKind::Mac, block.index() / 8),
                t,
                &mut self.nvm_timing,
            );
            t = a1.max(a2).max(a3);
        } else {
            // Insecure bbb: just move the data block to the WPQ.
            t = self.wpq.enqueue(block, t, &mut self.nvm_timing);
        }
        (ii, t.since(now))
    }

    // ---------------------------------------------------------------
    // Early metadata work (timing + function)
    // ---------------------------------------------------------------

    /// Fetches and increments the block's counter (timing through the
    /// counter cache; function through the logical counter state).
    fn early_counter_increment(&mut self, block: BlockAddr, t: Cycle) -> (Cycle, SplitCounter) {
        let page = NvmStore::page_of(block);
        let md = self
            .metadata
            .access(MetadataKind::Counter, page, true, t, &mut self.nvm_timing);
        if !md.hit {
            self.stats.inc(self.h.counter_misses);
        }
        self.tracer.span(Phase::CounterFetch, t, md.done + 1);
        let ctr = self.increment_logical(block);
        (md.done + 1, ctr)
    }

    fn early_otp(&mut self, block: BlockAddr, t: Cycle) -> Cycle {
        let Some(e) = self.pb.entry(block) else {
            self.stats.inc(self.h.anomalies);
            return t;
        };
        let ctr = e.counter;
        let pad = self.domain.otp_engine.generate(block.index(), ctr);
        if let Some(e) = self.pb.entry_mut(block) {
            e.otp = pad;
            e.valid.otp = true;
        }
        self.stats.inc(self.h.otps);
        self.tracer
            .span(Phase::OtpGen, t, t + self.cfg.security.otp_latency);
        t + self.cfg.security.otp_latency
    }

    fn early_ciphertext(&mut self, block: BlockAddr, t: Cycle) -> Cycle {
        let Some(e) = self.pb.entry_mut(block) else {
            self.stats.inc(self.h.anomalies);
            return t;
        };
        debug_assert!(e.valid.otp, "ciphertext requires a valid pad (Figure 4)");
        e.ciphertext = OtpEngine::apply_pad(&e.plaintext, &e.otp);
        e.valid.ciphertext = true;
        self.stats.inc(self.h.ciphertexts);
        t + 1
    }

    fn early_mac(&mut self, block: BlockAddr, t: Cycle) -> Cycle {
        let Some(e) = self.pb.entry_mut(block) else {
            self.stats.inc(self.h.anomalies);
            return t;
        };
        debug_assert!(e.valid.ciphertext, "MAC requires the ciphertext (Figure 4)");
        // The modeled MAC unit runs here (stat, span, validity), but the
        // host-side HMAC is deferred to drain: a coalescing rewrite would
        // throw the tag away, and only the tag persisted at drain is
        // architecturally visible.
        e.mac = None;
        e.valid.mac = true;
        self.stats.inc(self.h.macs);
        self.tracer
            .span(Phase::Mac, t, t + self.cfg.security.mac_latency);
        t + self.cfg.security.mac_latency
    }

    /// Walks the BMT from leaf to root for timing (the functional leaf
    /// update happens at drain).  Serialized to one in flight when
    /// configured.
    fn early_bmt_walk(&mut self, block: BlockAddr, t: Cycle) -> Cycle {
        let page = NvmStore::page_of(block);
        let sec = &self.cfg.security;
        let start = if sec.single_inflight_bmt {
            t.max(self.bmt_busy_until)
        } else {
            t
        };
        let hashes = self.domain.tree.update_cost_hashes(page);
        let mut walk = start;
        for lvl in 1..=hashes {
            let idx = (lvl << 32) | (page >> (3 * lvl as u32).min(63));
            let md =
                self.metadata
                    .access(MetadataKind::BmtNode, idx, true, walk, &mut self.nvm_timing);
            walk = md.done + sec.bmt_hash_latency;
        }
        if sec.single_inflight_bmt {
            self.bmt_busy_until = walk;
        }
        self.stats.inc(self.h.early_bmt_walks);
        self.tracer.span(Phase::BmtUpdate, start, walk);
        if let Some(e) = self.pb.entry_mut(block) {
            e.valid.bmt = true;
        }
        walk
    }

    /// Increments the logical counter of `block`, handling page overflow
    /// (re-encryption).
    pub(crate) fn increment_logical(&mut self, block: BlockAddr) -> SplitCounter {
        let page = NvmStore::page_of(block);
        let slot = NvmStore::page_slot_of(block);
        let cb = self.domain.counters.entry(page).or_default();
        let outcome = cb.increment(slot);
        self.stats.inc(self.h.counter_increments);
        if outcome == IncrementOutcome::PageOverflow {
            self.reencrypt_page(page);
        }
        match self.domain.counters.get(&page) {
            Some(cb) => cb.counter_of(slot),
            None => {
                self.stats.inc(self.h.anomalies);
                SplitCounter::default()
            }
        }
    }

    /// Page re-encryption after a minor-counter overflow (Section IV-A
    /// notes SecPB's once-per-dirty-block increments delay this).
    fn reencrypt_page(&mut self, page: u64) {
        self.stats.inc(self.h.page_overflows);
        let old_cb = self.domain.nvm.read_counters(page);
        let Some(new_cb) = self.domain.counters.get(&page).cloned() else {
            self.stats.inc(self.h.anomalies);
            return;
        };
        let blocks: Vec<BlockAddr> = self
            .domain
            .nvm
            .data_blocks()
            .filter(|b| NvmStore::page_of(*b) == page)
            .collect();
        for block in blocks {
            let slot = NvmStore::page_slot_of(block);
            let old_ctr = old_cb.counter_of(slot);
            let new_ctr = new_cb.counter_of(slot);
            let ct = self.domain.nvm.read_data(block);
            let pt = self.domain.otp_engine.decrypt(&ct, block.index(), old_ctr);
            let new_ct = self.domain.otp_engine.encrypt(&pt, block.index(), new_ctr);
            let new_mac = self
                .domain
                .mac_engine
                .compute(&new_ct, block.index(), new_ctr);
            self.domain.nvm.write_data(block, new_ct);
            self.domain.nvm.write_mac(block, new_mac.truncate_u64());
            self.stats.inc(self.h.otps);
            self.stats.inc(self.h.ciphertexts);
            self.stats.inc(self.h.macs);
        }
        // Persist the fresh counter block and fold it into the tree.
        self.domain.nvm.write_counters(page, new_cb.clone());
        let digest = self.domain.counter_digest(page, &new_cb);
        let hashes = self.domain.tree.update_leaf(page, digest);
        self.stats.inc(self.h.bmt_root_updates);
        self.stats.add(self.h.bmt_node_hashes, hashes);
        self.domain.persist_root();
        // Refresh in-flight SecPB entries of the page: their recorded
        // counters are stale after the major bump.
        let resident: Vec<BlockAddr> = self
            .pb
            .iter()
            .filter(|e| NvmStore::page_of(e.block) == page)
            .map(|e| e.block)
            .collect();
        for block in resident {
            let slot = NvmStore::page_slot_of(block);
            let fresh = new_cb.counter_of(slot);
            let Some(e) = self.pb.entry_mut(block) else {
                self.stats.inc(self.h.anomalies);
                continue;
            };
            if e.valid.counter {
                e.counter = fresh;
            }
            e.valid.otp = false;
            e.valid.ciphertext = false;
            e.valid.mac = false;
            e.mac = None;
        }
    }

    // ---------------------------------------------------------------
    // Functional flush (drain completion)
    // ---------------------------------------------------------------

    /// Applies an entry's full memory-tuple update to the durable state:
    /// the single-core front pre-fills the counter through the
    /// overflow-aware [`increment_logical`](Self::increment_logical),
    /// delegates the tuple write to the domain kernel, and translates the
    /// returned [`crate::domain::FlushRecord`] into its typed stats.
    pub(crate) fn flush_entry(&mut self, mut entry: Entry) {
        if !self.scheme.is_secure() {
            self.domain.flush_entry(entry, false);
            return;
        }
        let late_bmt = !entry.valid.bmt;
        if !entry.valid.counter {
            entry.counter = self.increment_logical(entry.block);
            entry.valid.counter = true;
        }
        let rec = self.domain.flush_entry(entry, true);
        if rec.otp_generated {
            self.stats.inc(self.h.otps);
        }
        if rec.ciphertext_generated {
            self.stats.inc(self.h.ciphertexts);
        }
        if rec.mac_generated {
            self.stats.inc(self.h.macs);
        }
        self.stats.inc(self.h.bmt_root_updates);
        self.stats.add(self.h.bmt_node_hashes, rec.tree_hashes);
        if late_bmt {
            // Only schemes that left the BMT update *late* charge these
            // hashes to the drain (battery) budget; eager schemes already
            // paid at store time.
            self.stats.add(self.h.late_bmt_node_hashes, rec.tree_hashes);
        }
    }

    // ---------------------------------------------------------------
    // SP baseline (SPoP at the memory controller, no SecPB)
    // ---------------------------------------------------------------

    fn sp_store(&mut self, access: Access) {
        let block = access.addr.block();
        // Caches hold a clean copy (the store persists through the MC).
        self.hierarchy.store(block, LineState::Clean);
        let release = self.now.max(self.pb_busy_until);
        let sec = self.cfg.security;

        // Counter fetch + increment (per store: no coalescing).
        let (t, ctr) = {
            let page = NvmStore::page_of(block);
            let md = self.metadata.access(
                MetadataKind::Counter,
                page,
                true,
                release,
                &mut self.nvm_timing,
            );
            if !md.hit {
                self.stats.inc(self.h.counter_misses);
            }
            self.tracer.span(Phase::CounterFetch, release, md.done + 1);
            (md.done + 1, self.increment_logical(block))
        };

        // Data-dependent chain and BMT walk in parallel.
        let data_done = t + sec.otp_latency + 1 + sec.mac_latency;
        self.stats.inc(self.h.otps);
        self.stats.inc(self.h.ciphertexts);
        self.stats.inc(self.h.macs);
        self.tracer.span(Phase::OtpGen, t, t + sec.otp_latency);
        self.tracer
            .span(Phase::Mac, t + sec.otp_latency + 1, data_done);
        let bmt_done = self.sp_bmt_walk(block, t);

        let mut done = data_done.max(bmt_done);
        // Persist through the WPQ.
        let page = NvmStore::page_of(block);
        let a1 = self.wpq.enqueue(block, done, &mut self.nvm_timing);
        let a2 = self.wpq.enqueue(
            MetadataCaches::region_block(MetadataKind::Counter, page),
            done,
            &mut self.nvm_timing,
        );
        done = a1.max(a2);

        self.pb_busy_until = done;
        self.stats.inc(self.h.persists);
        self.tracer.span(Phase::StorePersist, release, done);
        self.push_store_buffer(done);
        self.advance(
            self.cfg.core.store_exposure * done.since(release) as f64,
            Attr::StoreAccept,
        );

        // Functional: persist the tuple immediately through the shared
        // kernel.
        let hashes = self.domain.persist_with_counter(block, ctr);
        self.stats.inc(self.h.bmt_root_updates);
        self.stats.add(self.h.bmt_node_hashes, hashes);
    }

    fn sp_bmt_walk(&mut self, block: BlockAddr, t: Cycle) -> Cycle {
        let page = NvmStore::page_of(block);
        let sec = &self.cfg.security;
        let start = if sec.single_inflight_bmt {
            t.max(self.bmt_busy_until)
        } else {
            t
        };
        let hashes = self.domain.tree.update_cost_hashes(page);
        let mut walk = start;
        for lvl in 1..=hashes {
            let idx = (lvl << 32) | (page >> (3 * lvl as u32).min(63));
            let md =
                self.metadata
                    .access(MetadataKind::BmtNode, idx, true, walk, &mut self.nvm_timing);
            walk = md.done + sec.bmt_hash_latency;
        }
        if sec.single_inflight_bmt {
            self.bmt_busy_until = walk;
        }
        self.tracer.span(Phase::BmtUpdate, start, walk);
        walk
    }
}
