//! The unified persist-system facade.
//!
//! The three fronts — [`SecureSystem`] (single-core SecPB with the full
//! timing pipeline), [`EadrSystem`] (whole-hierarchy persistence), and
//! [`MultiCoreSystem`] (per-core SecPBs with directory coherence) —
//! share one security/persistence kernel
//! ([`PersistDomain`](crate::domain::PersistDomain)) but historically
//! exposed three slightly different driving surfaces.  [`PersistSystem`]
//! is the common surface, written once so benches, the fault-injection
//! storm, and the CLI can drive *any* front through `&mut dyn
//! PersistSystem`:
//!
//! * replay — [`step`](PersistSystem::step) /
//!   [`run_trace`](PersistSystem::run_trace) /
//!   [`finish_time`](PersistSystem::finish_time),
//! * exposure — [`occupancy`](PersistSystem::occupancy) /
//!   [`drains_in_flight`](PersistSystem::drains_in_flight),
//! * crash — [`crash`](PersistSystem::crash) /
//!   [`crash_with_budget`](PersistSystem::crash_with_budget), normalised
//!   to `Result<CrashReport, RecoveryError>` for every front,
//! * recovery — [`recover`](PersistSystem::recover) /
//!   [`recover_with`](PersistSystem::recover_with) /
//!   [`resync_lost_golden`](PersistSystem::resync_lost_golden),
//! * observation — [`stats`](PersistSystem::stats) /
//!   [`expected_plaintext`](PersistSystem::expected_plaintext) /
//!   [`nvm_store`](PersistSystem::nvm_store).
//!
//! The fronts' inherent methods keep their richer historical signatures
//! (e.g. the eADR crash returns its [`DrainWork`] directly, the
//! multi-core crash returns a drained-entry count); the trait impls
//! translate those into the common [`CrashReport`] shape without losing
//! the accounting a storm reconciles (drained + lost == occupancy).

use secpb_mem::store::NvmStore;
use secpb_sim::addr::BlockAddr;
use secpb_sim::config::SystemConfig;
use secpb_sim::cycle::Cycle;
use secpb_sim::stats::Stats;
use secpb_sim::telemetry::{TelemetryEvent, TelemetrySink};
use secpb_sim::trace::TraceItem;

use crate::checkpoint::CheckpointError;
use crate::crash::{CrashKind, CrashReport, DrainPolicy, DrainWork, RecoveryError, RecoveryReport};
use crate::eadr::EadrSystem;
use crate::metrics::{counters, RunResult};
use crate::multicore::MultiCoreSystem;
use crate::policy::{CounterLayout, PersistencePolicy, RecoveryCost};
use crate::scheme::Scheme;
use crate::system::SecureSystem;

/// The common driving surface of every persist-system front.
///
/// Dyn-compatible: storms, benches, and the CLI hold a
/// `&mut dyn PersistSystem` and never know which front they drive.
pub trait PersistSystem {
    /// The metadata-persistence scheme the front runs.  The eADR front
    /// has no scheme spectrum (its metadata is always generated at
    /// writeback/crash time) and reports [`Scheme::Bbb`] as a
    /// placeholder, matching its [`RunResult`].
    fn scheme(&self) -> Scheme;

    /// Whether the persisted image is encrypted/MAC'd/tree-protected.
    /// Not derivable from [`scheme`](Self::scheme) alone: the eADR front
    /// is secure despite its placeholder scheme.
    fn secure(&self) -> bool;

    /// The machine configuration.
    fn config(&self) -> &SystemConfig;

    /// Accumulated statistics.
    fn stats(&self) -> &Stats;

    /// Attaches (or with `None` detaches) a live telemetry sink.
    ///
    /// While attached, the front mirrors stat deltas, histogram samples,
    /// spans, and crash/drain/recovery markers into the sink's ring.
    /// Telemetry observes and never steers: a run with a sink attached
    /// is byte-identical to one without.
    fn set_telemetry(&mut self, sink: Option<TelemetrySink>);

    /// The attached telemetry sink, if any.
    fn telemetry(&self) -> Option<&TelemetrySink>;

    /// Model-internal invariant violations observed so far (the storm
    /// fails a cell on any non-zero value).
    fn anomalies(&self) -> u64 {
        self.stats().get(counters::ANOMALIES)
    }

    /// Combined hit/miss/eviction counters of the front's crypto memo
    /// caches (the lazy engine's OTP pad cache and counter-digest memo).
    /// Zero for fronts or modes that attach no memos; purely
    /// observational — memo contents never change any output.
    fn memo_stats(&self) -> secpb_crypto::memo::MemoStats {
        secpb_crypto::memo::MemoStats::default()
    }

    /// Folds all deferred security metadata — dirty integrity-tree paths
    /// and pending counter digests — and persists the root, returning
    /// the analytic hash count charged to the sync.  This is the
    /// epoch-boundary observation point the service plane drains shards
    /// at: under the lazy engine a whole epoch's tree updates fold in
    /// sibling batches (`compute_batch`) and its counter digests
    /// coalesce (`digest_batch`), so the per-store metadata cost
    /// amortizes across the batch.  Fronts whose metadata is generated
    /// at writeback/crash time (eADR, the multi-core event model) have
    /// nothing deferred and return 0.
    fn sync_metadata(&mut self) -> u64 {
        0
    }

    /// Serialises the complete system state into a versioned checkpoint
    /// (see [`checkpoint`](crate::checkpoint) for the wire format and
    /// the restore+replay equivalence contract).  Only the single-core
    /// front implements this; the others return
    /// [`CheckpointError::Unsupported`].
    fn checkpoint(&self) -> Result<Vec<u8>, CheckpointError> {
        Err(CheckpointError::Unsupported)
    }

    /// Overlays a checkpoint taken by [`checkpoint`](Self::checkpoint)
    /// onto this system.  The target must have been constructed with the
    /// identical configuration, scheme, tree kind, and key seed.
    ///
    /// # Errors
    ///
    /// Fails on an unsupported front, header mismatch, or corrupt
    /// payload; after a payload error the target must be discarded.
    fn restore(&mut self, bytes: &[u8]) -> Result<(), CheckpointError> {
        let _ = bytes;
        Err(CheckpointError::Unsupported)
    }

    /// Executes a single trace item.
    fn step(&mut self, item: TraceItem);

    /// Replays a trace slice to completion.
    fn run_trace(&mut self, items: &[TraceItem]) -> RunResult;

    /// The execution time if the trace ended now (outstanding buffered
    /// work included).
    fn finish_time(&self) -> Cycle;

    /// Entries (or dirty lines) currently inside the persistence
    /// domain's volatile staging — the exposure a crash must drain.
    fn occupancy(&self) -> u64;

    /// Whether background drains are in flight (the mid-drain crash
    /// trigger's observation point).  Only the single-core front has a
    /// background drain engine.
    fn drains_in_flight(&self) -> bool {
        false
    }

    /// Handles a crash with a fully provisioned battery.
    fn crash(
        &mut self,
        kind: CrashKind,
        policy: DrainPolicy,
    ) -> Result<CrashReport, RecoveryError> {
        self.crash_with_budget(kind, policy, None)
    }

    /// Handles a crash under a battery budget of at most
    /// `max_drain_entries` drained entries; the rest are lost and
    /// reported in [`CrashReport::lost_blocks`].  Fronts without ASID
    /// tags (eADR, multi-core) treat every kind/policy as a
    /// whole-domain drain.
    fn crash_with_budget(
        &mut self,
        kind: CrashKind,
        policy: DrainPolicy,
        max_drain_entries: Option<u64>,
    ) -> Result<CrashReport, RecoveryError>;

    /// Post-crash recovery over the persisted image.
    fn recover(&self) -> RecoveryReport {
        self.recover_with(&[])
    }

    /// [`recover`](Self::recover) with lost-block accounting.
    fn recover_with(&self, lost: &[BlockAddr]) -> RecoveryReport;

    /// Re-reads the durable image of brown-out-lost blocks back into the
    /// architectural expectation so replay can continue.
    fn resync_lost_golden(&mut self, lost: &[BlockAddr]);

    /// The persistence policy the front runs — early-step assignment
    /// plus durable tree/counter layout.  Fronts without a policy knob
    /// surface report their scheme's default resolution.
    fn policy(&self) -> PersistencePolicy {
        PersistencePolicy::for_scheme(self.scheme())
    }

    /// Exact post-crash recovery accounting under the front's
    /// persistence policy: persisted counter pages and tree-frontier
    /// nodes fetched, node hashes folded to revalidate the root, data
    /// blocks fetched/decrypted/MAC-verified, and the total latency in
    /// cycles.  NVM reads pipeline across banks; crypto units pipeline
    /// at their occupancy (one hash per `bmt_hash_latency`).
    ///
    /// This is the quantity recovery-time work like Anubis (Zubair &
    /// Awad, ISCA'19 — the paper's \[74\]) and the Triad-NVM /
    /// fast-recovery policies trade write traffic against; the
    /// `recovery_sweep` bench promotes it to a swept grid metric.  The
    /// default is the root-only rebuild, derived entirely from
    /// [`config`](Self::config) and [`nvm_store`](Self::nvm_store);
    /// policy-aware fronts override it.
    fn recovery_cost(&self) -> RecoveryCost {
        let nvm = self.nvm_store();
        RecoveryCost::root_only(
            self.config(),
            nvm.counter_pages().count() as u64,
            nvm.data_block_count() as u64,
        )
    }

    /// Estimated post-crash recovery latency in cycles — the `cycles`
    /// field of [`recovery_cost`](Self::recovery_cost).
    fn estimated_recovery_cycles(&self) -> u64 {
        self.recovery_cost().cycles
    }

    /// The architecturally expected plaintext of a block.
    fn expected_plaintext(&self, block: BlockAddr) -> [u8; 64];

    /// The durable state, read-only.
    fn nvm_store(&self) -> &NvmStore;

    /// The durable state, for tamper injection.
    fn nvm_store_mut(&mut self) -> &mut NvmStore;
}

impl PersistSystem for SecureSystem {
    fn scheme(&self) -> Scheme {
        SecureSystem::scheme(self)
    }

    fn secure(&self) -> bool {
        SecureSystem::scheme(self).is_secure()
    }

    fn config(&self) -> &SystemConfig {
        SecureSystem::config(self)
    }

    fn stats(&self) -> &Stats {
        SecureSystem::stats(self)
    }

    fn set_telemetry(&mut self, sink: Option<TelemetrySink>) {
        SecureSystem::set_telemetry(self, sink);
    }

    fn telemetry(&self) -> Option<&TelemetrySink> {
        SecureSystem::telemetry(self)
    }

    fn sync_metadata(&mut self) -> u64 {
        SecureSystem::sync_metadata(self)
    }

    fn checkpoint(&self) -> Result<Vec<u8>, CheckpointError> {
        Ok(self.checkpoint_bytes())
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), CheckpointError> {
        self.restore_bytes(bytes)
    }

    fn step(&mut self, item: TraceItem) {
        SecureSystem::step(self, item);
    }

    fn run_trace(&mut self, items: &[TraceItem]) -> RunResult {
        SecureSystem::run_trace(self, items.iter().copied())
    }

    fn finish_time(&self) -> Cycle {
        SecureSystem::finish_time(self)
    }

    fn occupancy(&self) -> u64 {
        self.persist_buffer().occupancy() as u64
    }

    fn memo_stats(&self) -> secpb_crypto::memo::MemoStats {
        SecureSystem::memo_stats(self)
    }

    fn drains_in_flight(&self) -> bool {
        SecureSystem::drains_in_flight(self)
    }

    fn crash_with_budget(
        &mut self,
        kind: CrashKind,
        policy: DrainPolicy,
        max_drain_entries: Option<u64>,
    ) -> Result<CrashReport, RecoveryError> {
        SecureSystem::crash_with_budget(self, kind, policy, max_drain_entries)
    }

    fn recover_with(&self, lost: &[BlockAddr]) -> RecoveryReport {
        SecureSystem::recover_with(self, lost)
    }

    fn resync_lost_golden(&mut self, lost: &[BlockAddr]) {
        SecureSystem::resync_lost_golden(self, lost);
    }

    fn policy(&self) -> PersistencePolicy {
        SecureSystem::policy(self)
    }

    fn recovery_cost(&self) -> RecoveryCost {
        let cfg = SecureSystem::config(self);
        let nvm = SecureSystem::nvm_store(self);
        let pages = nvm.counter_pages().count() as u64;
        let blocks = nvm.data_block_count() as u64;
        let policy = SecureSystem::policy(self);
        if policy.counters == CounterLayout::Shadow {
            RecoveryCost::fast_recovery(cfg, pages, blocks)
        } else if let Some(frontier) = self.domain.persisted_frontier() {
            RecoveryCost::selective(
                cfg,
                pages,
                blocks,
                frontier.nodes.len() as u64,
                frontier.fold_hashes,
            )
        } else {
            RecoveryCost::root_only(cfg, pages, blocks)
        }
    }

    fn expected_plaintext(&self, block: BlockAddr) -> [u8; 64] {
        SecureSystem::expected_plaintext(self, block)
    }

    fn nvm_store(&self) -> &NvmStore {
        SecureSystem::nvm_store(self)
    }

    fn nvm_store_mut(&mut self) -> &mut NvmStore {
        SecureSystem::nvm_store_mut(self)
    }
}

impl PersistSystem for EadrSystem {
    fn scheme(&self) -> Scheme {
        Scheme::Bbb
    }

    fn secure(&self) -> bool {
        // eADR generates full tuples at writeback/crash; the persisted
        // image is always encrypted and tree-protected.
        true
    }

    fn config(&self) -> &SystemConfig {
        EadrSystem::config(self)
    }

    fn stats(&self) -> &Stats {
        EadrSystem::stats(self)
    }

    fn set_telemetry(&mut self, sink: Option<TelemetrySink>) {
        EadrSystem::set_telemetry(self, sink);
    }

    fn telemetry(&self) -> Option<&TelemetrySink> {
        EadrSystem::telemetry(self)
    }

    fn step(&mut self, item: TraceItem) {
        EadrSystem::step(self, item);
    }

    fn run_trace(&mut self, items: &[TraceItem]) -> RunResult {
        EadrSystem::run_trace(self, items.iter().copied())
    }

    fn finish_time(&self) -> Cycle {
        self.now()
    }

    fn occupancy(&self) -> u64 {
        self.dirty_lines() as u64
    }

    fn memo_stats(&self) -> secpb_crypto::memo::MemoStats {
        EadrSystem::memo_stats(self)
    }

    fn crash_with_budget(
        &mut self,
        kind: CrashKind,
        _policy: DrainPolicy,
        max_drain_entries: Option<u64>,
    ) -> Result<CrashReport, RecoveryError> {
        let at = self.now();
        let (work, lost_blocks) = EadrSystem::crash_with_budget(self, max_drain_entries);
        if let Some(sink) = self.telemetry() {
            sink.emit(&TelemetryEvent::CrashMarker {
                power_loss: !matches!(kind, CrashKind::ApplicationCrash(_)),
                cycle: at.raw(),
            });
            sink.emit(&TelemetryEvent::DrainMarker {
                entries: work.entries,
                cycle: at.raw(),
            });
        }
        // The eADR drain is not cycle-modelled (the whole hierarchy
        // flushes on battery); the gaps close at the crash instant.
        Ok(CrashReport {
            kind,
            at,
            drain_complete_at: at,
            secsync_complete_at: at,
            work,
            lost_blocks,
        })
    }

    fn recover_with(&self, lost: &[BlockAddr]) -> RecoveryReport {
        let report = EadrSystem::recover_with(self, lost);
        if let Some(sink) = self.telemetry() {
            sink.emit(&TelemetryEvent::RecoveryMarker {
                consistent: report.is_consistent(),
                blocks: report.blocks_checked,
                cycle: self.now().raw(),
            });
        }
        report
    }

    fn resync_lost_golden(&mut self, lost: &[BlockAddr]) {
        EadrSystem::resync_lost_golden(self, lost);
    }

    fn expected_plaintext(&self, block: BlockAddr) -> [u8; 64] {
        EadrSystem::expected_plaintext(self, block)
    }

    fn nvm_store(&self) -> &NvmStore {
        EadrSystem::nvm_store(self)
    }

    fn nvm_store_mut(&mut self) -> &mut NvmStore {
        EadrSystem::nvm_store_mut(self)
    }
}

impl PersistSystem for MultiCoreSystem {
    fn scheme(&self) -> Scheme {
        MultiCoreSystem::scheme(self)
    }

    fn secure(&self) -> bool {
        // Only SecPB schemes construct (bufferless `SP` is rejected, and
        // `bbb` still runs the full tuple pipeline in this front).
        true
    }

    fn config(&self) -> &SystemConfig {
        MultiCoreSystem::config(self)
    }

    fn stats(&self) -> &Stats {
        MultiCoreSystem::stats(self)
    }

    fn anomalies(&self) -> u64 {
        self.stats().get("mc.anomalies")
    }

    fn set_telemetry(&mut self, sink: Option<TelemetrySink>) {
        MultiCoreSystem::set_telemetry(self, sink);
    }

    fn telemetry(&self) -> Option<&TelemetrySink> {
        MultiCoreSystem::telemetry(self)
    }

    fn step(&mut self, item: TraceItem) {
        MultiCoreSystem::step(self, item);
    }

    fn run_trace(&mut self, items: &[TraceItem]) -> RunResult {
        MultiCoreSystem::run_trace(self, items.iter().copied())
    }

    fn finish_time(&self) -> Cycle {
        (0..self.cores())
            .map(|c| self.core_time(c))
            .max()
            .unwrap_or(Cycle::ZERO)
    }

    fn occupancy(&self) -> u64 {
        MultiCoreSystem::occupancy(self) as u64
    }

    fn memo_stats(&self) -> secpb_crypto::memo::MemoStats {
        MultiCoreSystem::memo_stats(self)
    }

    fn crash_with_budget(
        &mut self,
        kind: CrashKind,
        _policy: DrainPolicy,
        max_drain_entries: Option<u64>,
    ) -> Result<CrashReport, RecoveryError> {
        let at = PersistSystem::finish_time(self);
        let footprint = MultiCoreSystem::scheme(self).entry_footprint_bytes();
        let (drained, lost_blocks) = MultiCoreSystem::crash_with_budget(self, max_drain_entries)?;
        if let Some(sink) = self.telemetry() {
            sink.emit(&TelemetryEvent::CrashMarker {
                power_loss: !matches!(kind, CrashKind::ApplicationCrash(_)),
                cycle: at.raw(),
            });
            sink.emit(&TelemetryEvent::DrainMarker {
                entries: drained,
                cycle: at.raw(),
            });
        }
        // The event-cost model tracks entry movement, not the per-phase
        // crypto deltas; only the movement fields are populated.
        let work = DrainWork {
            entries: drained,
            bytes_pb_to_mc: drained * footprint,
            ..DrainWork::default()
        };
        Ok(CrashReport {
            kind,
            at,
            drain_complete_at: at,
            secsync_complete_at: at,
            work,
            lost_blocks,
        })
    }

    fn recover_with(&self, lost: &[BlockAddr]) -> RecoveryReport {
        let report = MultiCoreSystem::recover_with(self, lost);
        if let Some(sink) = self.telemetry() {
            sink.emit(&TelemetryEvent::RecoveryMarker {
                consistent: report.is_consistent(),
                blocks: report.blocks_checked,
                cycle: PersistSystem::finish_time(self).raw(),
            });
        }
        report
    }

    fn resync_lost_golden(&mut self, lost: &[BlockAddr]) {
        MultiCoreSystem::resync_lost_golden(self, lost);
    }

    fn expected_plaintext(&self, block: BlockAddr) -> [u8; 64] {
        MultiCoreSystem::expected_plaintext(self, block)
    }

    fn nvm_store(&self) -> &NvmStore {
        MultiCoreSystem::nvm_store(self)
    }

    fn nvm_store_mut(&mut self) -> &mut NvmStore {
        MultiCoreSystem::nvm_store_mut(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secpb_sim::addr::Address;
    use secpb_sim::trace::Access;

    fn store_trace(n: u64) -> Vec<TraceItem> {
        (0..n)
            .map(|i| TraceItem::then(9, Access::store(Address(0x10_0000 + i * 64), i + 1)))
            .collect()
    }

    fn fronts() -> Vec<Box<dyn PersistSystem>> {
        vec![
            Box::new(SecureSystem::new(
                SystemConfig::default(),
                Scheme::Cobcm,
                11,
            )),
            Box::new(EadrSystem::new(SystemConfig::default(), 11)),
            Box::new(MultiCoreSystem::new(SystemConfig::default(), Scheme::Cobcm, 2, 11).unwrap()),
        ]
    }

    #[test]
    fn every_front_replays_crashes_and_recovers_through_dyn() {
        let trace = store_trace(120);
        for mut sys in fronts() {
            let r = sys.run_trace(&trace);
            assert!(r.cycles > 0);
            let report = sys
                .crash(CrashKind::PowerLoss, DrainPolicy::DrainAll)
                .unwrap();
            assert!(report.drain_was_complete());
            let rec = sys.recover();
            assert!(rec.is_consistent(), "front failed clean recovery");
            assert!(rec.blocks_checked > 0);
            assert_eq!(sys.occupancy(), 0, "crash empties the staging domain");
        }
    }

    #[test]
    fn budgeted_crash_accounting_reconciles_for_every_front() {
        let trace = store_trace(200);
        for mut sys in fronts() {
            sys.run_trace(&trace);
            let exposure = sys.occupancy();
            assert!(exposure > 4, "need buffered exposure to truncate");
            let budget = 3u64;
            let report = sys
                .crash_with_budget(CrashKind::PowerLoss, DrainPolicy::DrainAll, Some(budget))
                .unwrap();
            assert_eq!(report.work.entries, budget);
            assert_eq!(
                report.work.entries + report.lost_block_count(),
                exposure,
                "drained + lost must equal pre-crash exposure"
            );
            let rec = sys.recover_with(&report.lost_blocks);
            assert!(rec.is_consistent(), "accounted staleness is not corruption");
            sys.resync_lost_golden(&report.lost_blocks);
            assert!(sys.recover().is_consistent());
        }
    }

    #[test]
    fn tampering_is_detected_through_the_facade_on_secure_fronts() {
        let trace = store_trace(60);
        for mut sys in fronts() {
            sys.run_trace(&trace);
            sys.crash(CrashKind::PowerLoss, DrainPolicy::DrainAll)
                .unwrap();
            assert!(sys.secure());
            let victim = sys.nvm_store().data_blocks().next().unwrap();
            sys.nvm_store_mut().tamper_data(victim, 0, 0);
            assert!(!sys.recover().integrity_ok(), "tamper must be detected");
        }
    }

    #[test]
    fn facade_expected_plaintext_matches_store_stream() {
        let trace = store_trace(10);
        for mut sys in fronts() {
            sys.run_trace(&trace);
            let block = Address(0x10_0000).block();
            assert_eq!(sys.expected_plaintext(block)[..8], 1u64.to_le_bytes());
        }
    }
}
