//! Integrity-tree abstraction: a monolithic Bonsai Merkle Tree or a
//! Bonsai Merkle Forest (for the Figure 9 BMF study), behind one
//! interface the system model drives.

use secpb_crypto::backend::CryptoBackend;
use secpb_crypto::bmf::{BmfMode, BonsaiMerkleForest};
use secpb_crypto::bmt::BonsaiMerkleTree;
use secpb_crypto::sha512::Digest;
use secpb_sim::wire::{WireError, WireReader, WireWriter};

/// Which integrity-tree organisation the system uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TreeKind {
    /// A single full-height BMT (Table I: 8 levels).
    Monolithic,
    /// A BMF with DBMF subtrees (effective height 2).
    Dbmf,
    /// A BMF with SBMF subtrees (effective height 5).
    Sbmf,
}

/// The integrity tree protecting the counter space.
#[derive(Debug, Clone)]
pub enum IntegrityTree {
    /// One full-height tree.
    Monolithic(BonsaiMerkleTree),
    /// A forest with a secure root cache.
    Forest(BonsaiMerkleForest),
}

impl IntegrityTree {
    /// Root-cache entries for the forest variants: the paper pairs BMF
    /// with a 4 KB root cache (64 SHA-512 roots).
    pub const ROOT_CACHE_ENTRIES: usize = 64;

    /// Builds the tree named by `kind` with the given arity/height.
    pub fn new(kind: TreeKind, key: &[u8], arity: usize, levels: u32) -> Self {
        match kind {
            TreeKind::Monolithic => {
                IntegrityTree::Monolithic(BonsaiMerkleTree::new(key, arity, levels))
            }
            TreeKind::Dbmf => IntegrityTree::Forest(BonsaiMerkleForest::new(
                key,
                arity,
                levels,
                BmfMode::Dbmf,
                Self::ROOT_CACHE_ENTRIES,
            )),
            TreeKind::Sbmf => IntegrityTree::Forest(BonsaiMerkleForest::new(
                key,
                arity,
                levels,
                BmfMode::Sbmf,
                Self::ROOT_CACHE_ENTRIES,
            )),
        }
    }

    /// Updates a leaf, returning the number of node hashes performed
    /// (the timing model charges them at the hash latency).
    pub fn update_leaf(&mut self, leaf: u64, digest: Digest) -> u64 {
        match self {
            IntegrityTree::Monolithic(t) => u64::from(t.update_leaf(leaf, digest)),
            IntegrityTree::Forest(f) => f.update_leaf(leaf, digest),
        }
    }

    /// The number of hash levels an update of `leaf` would walk *right
    /// now* (for early-BMT timing): the full height for a monolithic
    /// tree; the subtree height on a root-cache hit, plus the upper-tree
    /// fold-in of the evicted root on a miss, for a forest.
    pub fn update_cost_hashes(&self, leaf: u64) -> u64 {
        match self {
            IntegrityTree::Monolithic(t) => u64::from(t.levels()),
            IntegrityTree::Forest(f) => {
                let subtree = leaf / f.subtree_capacity();
                if f.is_cached(subtree) {
                    u64::from(f.sub_levels())
                } else {
                    u64::from(f.sub_levels()) + u64::from(f.upper_levels())
                }
            }
        }
    }

    /// The root that would be persisted now (for a forest this is only
    /// authoritative after [`sync`](Self::sync)).
    pub fn root(&self) -> Digest {
        match self {
            IntegrityTree::Monolithic(t) => t.root(),
            IntegrityTree::Forest(f) => f.upper_root(),
        }
    }

    /// Switches the tree between eager and lazy folding (see
    /// [`secpb_crypto::bmt`]).  Turning lazy off folds pending work.
    pub fn set_lazy(&mut self, lazy: bool) {
        match self {
            IntegrityTree::Monolithic(t) => t.set_lazy(lazy),
            IntegrityTree::Forest(f) => f.set_lazy(lazy),
        }
    }

    /// Selects the crypto backend for batched lazy folds (byte-identical
    /// across backends).
    pub fn set_backend(&mut self, backend: CryptoBackend) {
        match self {
            IntegrityTree::Monolithic(t) => t.set_backend(backend),
            IntegrityTree::Forest(f) => f.set_backend(backend),
        }
    }

    /// Whether any deferred updates are awaiting a fold.
    pub fn has_pending(&self) -> bool {
        match self {
            IntegrityTree::Monolithic(t) => t.has_pending(),
            IntegrityTree::Forest(f) => f.has_pending(),
        }
    }

    /// Hashes actually performed by lazy folds (performance metric; the
    /// analytic per-update counts are what the stats report).
    pub fn fold_hashes(&self) -> u64 {
        match self {
            IntegrityTree::Monolithic(t) => t.fold_hashes(),
            IntegrityTree::Forest(f) => f.fold_hashes(),
        }
    }

    /// Folds all cached subtree roots into the upper tree (crash drain);
    /// for a monolithic tree this only folds deferred lazy updates.
    ///
    /// Returns the *analytic* hash count — the hashes the modelled
    /// hardware would perform at this point, which for a monolithic tree
    /// is zero because every update was already charged its full walk.
    /// Lazy-fold hashes are a host-side performance artifact and are
    /// reported via [`fold_hashes`](Self::fold_hashes) instead, so stats
    /// and timing stay byte-identical across metadata modes.
    pub fn sync(&mut self) -> u64 {
        match self {
            IntegrityTree::Monolithic(t) => {
                t.fold();
                0
            }
            IntegrityTree::Forest(f) => f.sync_all(),
        }
    }

    /// Total leaf-to-root update walks (Figure 8 metric) — monolithic
    /// trees only; forests report through their own stats.
    pub fn root_updates(&self) -> u64 {
        match self {
            IntegrityTree::Monolithic(t) => t.root_updates(),
            IntegrityTree::Forest(f) => f.stats().cache_hits + f.stats().cache_misses,
        }
    }

    /// The non-default `(index, digest)` nodes of one level, sorted by
    /// index — the durable frontier a Triad-NVM-style policy keeps
    /// online.  `None` for forests, whose subtree roots already play
    /// that role (selective depth is a monolithic-tree policy).
    pub fn level_nodes(&self, level: u32) -> Option<Vec<(u64, Digest)>> {
        match self {
            IntegrityTree::Monolithic(t) => Some(t.level_nodes(level)),
            IntegrityTree::Forest(_) => None,
        }
    }

    /// Recomputes the root from a persisted frontier at `level` (see
    /// [`BonsaiMerkleTree::root_from_level`]); returns the root plus the
    /// node hashes the fold performed.  `None` for forests.
    pub fn root_from_level(&self, level: u32, overlay: &[(u64, Digest)]) -> Option<(Digest, u64)> {
        match self {
            IntegrityTree::Monolithic(t) => Some(t.root_from_level(level, overlay)),
            IntegrityTree::Forest(_) => None,
        }
    }

    /// Appends the tree's dynamic state to a checkpoint.  The variant is
    /// tagged so restore catches a tree-kind mismatch before diving into
    /// the payload.
    pub fn encode_into(&self, w: &mut WireWriter) {
        match self {
            IntegrityTree::Monolithic(t) => {
                w.u8(0);
                t.encode_into(w);
            }
            IntegrityTree::Forest(f) => {
                w.u8(1);
                f.encode_into(w);
            }
        }
    }

    /// Overlays state captured by [`encode_into`](Self::encode_into) onto
    /// a tree built with the same kind, key, and shape.
    ///
    /// # Errors
    ///
    /// Fails if the snapshot's variant or shape disagrees with this
    /// tree's, or on truncation.
    pub fn restore_from(&mut self, r: &mut WireReader<'_>) -> Result<(), WireError> {
        let tag = r.u8()?;
        match (tag, self) {
            (0, IntegrityTree::Monolithic(t)) => t.restore_from(r),
            (1, IntegrityTree::Forest(f)) => f.restore_from(r),
            _ => Err(r.malformed("integrity-tree snapshot kind does not match")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secpb_crypto::sha512::Sha512;

    #[test]
    fn monolithic_update_costs_full_height() {
        let mut t = IntegrityTree::new(TreeKind::Monolithic, b"k", 8, 8);
        assert_eq!(t.update_cost_hashes(0), 8);
        let h = t.update_leaf(0, Sha512::digest(b"x"));
        assert_eq!(h, 8);
        assert_eq!(t.root_updates(), 1);
        assert_eq!(t.sync(), 0);
    }

    #[test]
    fn forest_kinds_have_reduced_heights() {
        let mut d = IntegrityTree::new(TreeKind::Dbmf, b"k", 8, 8);
        let first = d.update_leaf(0, Sha512::digest(b"x"));
        assert_eq!(first, 2, "DBMF miss with empty cache costs subtree height");
        let hit = d.update_leaf(1, Sha512::digest(b"y"));
        assert_eq!(hit, 2);

        let mut s = IntegrityTree::new(TreeKind::Sbmf, b"k", 8, 8);
        assert_eq!(s.update_leaf(0, Sha512::digest(b"x")), 5);
    }

    #[test]
    fn forest_sync_folds_roots() {
        let mut d = IntegrityTree::new(TreeKind::Dbmf, b"k", 8, 8);
        let before = d.root();
        d.update_leaf(0, Sha512::digest(b"x"));
        assert_eq!(d.root(), before, "upper root unchanged until sync");
        let hashes = d.sync();
        assert!(hashes > 0);
        assert_ne!(d.root(), before);
    }

    #[test]
    fn lazy_tree_matches_eager_after_sync() {
        for kind in [TreeKind::Monolithic, TreeKind::Dbmf, TreeKind::Sbmf] {
            let mut eager = IntegrityTree::new(kind, b"k", 8, 8);
            let mut lazy = IntegrityTree::new(kind, b"k", 8, 8);
            lazy.set_lazy(true);
            for i in 0..40u64 {
                let leaf = i * 13 % 96;
                let d = Sha512::digest(&leaf.to_le_bytes());
                assert_eq!(eager.update_leaf(leaf, d), lazy.update_leaf(leaf, d));
            }
            assert_eq!(eager.root_updates(), lazy.root_updates());
            assert_eq!(eager.sync(), lazy.sync());
            assert!(!lazy.has_pending());
            assert_eq!(eager.root(), lazy.root(), "kind {kind:?}");
        }
    }

    #[test]
    fn rebuild_equivalence_for_recovery() {
        // Same leaves => same post-sync root, regardless of update order,
        // which is what recovery relies on.
        let leaves: Vec<(u64, _)> = (0..20u64)
            .map(|i| (i * 37 % 500, Sha512::digest(&[i as u8])))
            .collect();
        let mut a = IntegrityTree::new(TreeKind::Dbmf, b"k", 8, 8);
        let mut b = IntegrityTree::new(TreeKind::Dbmf, b"k", 8, 8);
        for (l, d) in &leaves {
            a.update_leaf(*l, *d);
        }
        for (l, d) in leaves.iter().rev() {
            b.update_leaf(*l, *d);
        }
        a.sync();
        b.sync();
        assert_eq!(a.root(), b.root());
    }
}
