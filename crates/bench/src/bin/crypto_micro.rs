//! Microbenchmarks of the crypto hot path: hash/cipher primitives and
//! the batched fold dispatches, per backend.
//!
//! Usage: `cargo run --release -p secpb-bench --bin crypto_micro [--check]`
//!
//! `--check` is the CI regression guard: it exits non-zero unless the
//! multi-block batched HMAC fold is at least 2x faster than the scalar
//! backend on the BMT sibling-group shape (the speedup the batched fold
//! rewrite exists to deliver).

use std::time::Instant;

use secpb_crypto::backend::CryptoBackend;
use secpb_crypto::bmt::BonsaiMerkleTree;
use secpb_crypto::counter::SplitCounter;
use secpb_crypto::hmac::HmacSha512;
use secpb_crypto::mac::BlockMac;
use secpb_crypto::otp::OtpEngine;
use secpb_crypto::sha512::Sha512;
use secpb_crypto::Aes;

/// Times `op` (called with the iteration index) and returns ns/call.
fn bench(iters: u64, mut op: impl FnMut(u64)) -> f64 {
    // Warm up the instruction cache and any lazily derived tables.
    for i in 0..iters / 10 + 1 {
        op(i);
    }
    let start = Instant::now();
    for i in 0..iters {
        op(i);
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn row(name: &str, ns: f64, per: &str) {
    println!("{name:<34} {ns:>10.1} ns/{per}");
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");

    println!("crypto_micro: primitive and batched-dispatch timings");
    println!("hw-crypto compiled: {}", cfg!(feature = "hw-crypto"));
    println!(
        "hw backend available: {} (auto resolves to {})",
        CryptoBackend::hw_available(),
        CryptoBackend::auto().name()
    );
    println!();

    // ---- hash primitives ----
    let msg64 = [0x5Au8; 64];
    row(
        "sha512_digest_64B",
        bench(20_000, |i| {
            let mut m = msg64;
            m[0] = i as u8;
            std::hint::black_box(Sha512::digest(&m));
        }),
        "digest",
    );
    let hmac = HmacSha512::new(b"bench-key");
    row(
        "hmac_64B",
        bench(20_000, |i| {
            let mut m = msg64;
            m[0] = i as u8;
            std::hint::black_box(hmac.compute(&m));
        }),
        "tag",
    );

    // ---- batched HMAC fold: the BMT sibling-group shape ----
    // One 8-ary node hash is a 512-byte message; a fold level dispatches
    // many of them at once.  Measure per-message cost at batch width 8.
    const LANES: usize = 8;
    const NODE: usize = 512;
    let mut flat = vec![0u8; LANES * NODE];
    for (i, b) in flat.iter_mut().enumerate() {
        *b = (i * 31 % 251) as u8;
    }
    let mut fold_ns = std::collections::BTreeMap::new();
    for backend in CryptoBackend::ALL {
        let mut out = Vec::with_capacity(LANES);
        let ns = bench(2_000, |i| {
            flat[0] = i as u8;
            out.clear();
            hmac.compute_batch(&backend, &flat, NODE, &mut out);
            std::hint::black_box(&out);
        }) / LANES as f64;
        row(
            &format!("hmac_fold_8x512B[{}]", backend.name()),
            ns,
            "message",
        );
        fold_ns.insert(backend.name(), ns);
    }

    // ---- whole-tree fold: dirty-path batching end to end ----
    for backend in CryptoBackend::ALL {
        let ns = bench(200, |i| {
            let mut t = BonsaiMerkleTree::new(b"k", 8, 4);
            t.set_backend(backend);
            t.set_lazy(true);
            for leaf in 0..64u64 {
                t.update_leaf(leaf * 61 % 4096, Sha512::digest(&[leaf as u8, i as u8]));
            }
            std::hint::black_box(t.fold());
        });
        row(
            &format!("bmt_fold_64leaves[{}]", backend.name()),
            ns,
            "fold",
        );
    }

    // ---- cipher primitives ----
    let aes = Aes::new_192(&[7u8; 24]);
    row(
        "aes192_encrypt_block",
        bench(100_000, |i| {
            let mut blk = [0u8; 16];
            blk[0] = i as u8;
            std::hint::black_box(aes.encrypt_block(&blk));
        }),
        "block",
    );
    for backend in CryptoBackend::ALL {
        let mut engine = OtpEngine::new(&[7u8; 24]);
        engine.set_backend(backend);
        let ns = bench(50_000, |i| {
            std::hint::black_box(engine.generate_uncached(i, SplitCounter { major: 1, minor: 2 }));
        });
        row(&format!("otp_generate[{}]", backend.name()), ns, "pad");
    }

    // ---- block MAC: single vs recovery-sweep batch ----
    let mac = BlockMac::new(b"mac-key");
    let ct = [0xA5u8; 64];
    row(
        "block_mac_single",
        bench(20_000, |i| {
            std::hint::black_box(mac.compute(&ct, i, SplitCounter { major: 1, minor: 1 }));
        }),
        "tag",
    );
    let blocks: Vec<([u8; 64], u64, SplitCounter)> = (0..256u64)
        .map(|i| ([i as u8; 64], i, SplitCounter { major: 1, minor: 1 }))
        .collect();
    let refs: Vec<(&[u8; 64], u64, SplitCounter)> =
        blocks.iter().map(|(b, a, c)| (b, *a, *c)).collect();
    for backend in CryptoBackend::ALL {
        let mut m = BlockMac::new(b"mac-key");
        m.set_backend(backend);
        let mut tags = Vec::with_capacity(refs.len());
        let ns = bench(200, |_| {
            tags.clear();
            m.compute_truncated_batch(&refs, &mut tags);
            std::hint::black_box(&tags);
        }) / refs.len() as f64;
        row(&format!("mac_sweep_256[{}]", backend.name()), ns, "block");
    }

    // ---- regression guard ----
    let scalar = fold_ns["scalar"];
    let batched = fold_ns[CryptoBackend::auto().name()].min(fold_ns["multiblock"]);
    let speedup = scalar / batched;
    println!();
    println!("batched fold speedup vs scalar: {speedup:.2}x");
    if check {
        // Without the vectorized kernel (feature off, or no AVX2 on this
        // host) batching is an equivalence feature, not a speedup — there
        // is nothing to guard, so skip rather than fail.
        if !CryptoBackend::simd_hash_available() {
            println!(
                "check skipped: vectorized hash kernel unavailable \
                 (build with --features hw-crypto on an AVX2 host)"
            );
        } else if speedup < 2.0 {
            eprintln!("FAIL: batched fold must be >= 2x faster than scalar (got {speedup:.2}x)");
            std::process::exit(1);
        } else {
            println!("check ok: batched fold >= 2x scalar");
        }
    }
}
