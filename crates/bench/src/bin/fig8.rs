//! Regenerates **Figure 8**: total BMT root updates across SecPB sizes,
//! normalized to `sec_wt` (a secure write-through policy that updates the
//! root once per store).
//!
//! Usage: `cargo run --release -p secpb-bench --bin fig8 [instructions] [--jobs N] [--json out.json]`

use secpb_bench::args::RunnerArgs;
use secpb_bench::experiments::{fig8, DEFAULT_INSTRUCTIONS};
use secpb_bench::report::render_table;

fn main() {
    let args = RunnerArgs::from_env(DEFAULT_INSTRUCTIONS);
    let instructions = args.instructions;
    eprintln!(
        "Figure 8 @ {instructions} instructions/benchmark, {} jobs (CM model)",
        args.jobs
    );
    let study = fig8(instructions, args.jobs);

    let mut headers: Vec<String> = vec!["benchmark".into()];
    headers.extend(study.sizes.iter().map(|s| format!("{s}e")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for (name, vals) in &study.rows {
        let mut cells = vec![name.clone()];
        cells.extend(vals.iter().map(|v| format!("{:.1}%", v * 100.0)));
        rows.push(cells);
    }
    let mut mean = vec!["mean".to_owned()];
    mean.extend(study.averages.iter().map(|v| format!("{:.1}%", v * 100.0)));
    rows.push(mean);
    println!("FIGURE 8: BMT root updates as a fraction of sec_wt's (one per store)");
    println!("{}", render_table(&header_refs, &rows));
    println!("paper anchors: 12.7% at 8 entries, 1.8% at 512 entries");

    args.write_json(&study.to_json());
}
