//! Regenerates **Table IV**: average performance overheads of all SecPB
//! schemes with a 32-entry SecPB, normalized to the insecure bbb baseline.
//!
//! Usage: `cargo run --release -p secpb-bench --bin table4 [instructions] [--jobs N] [--json out.json]`

use secpb_bench::args::RunnerArgs;
use secpb_bench::experiments::{table4, DEFAULT_INSTRUCTIONS};
use secpb_bench::report::{bar_chart, overhead_pct, render_table};

fn main() {
    let args = RunnerArgs::from_env(DEFAULT_INSTRUCTIONS);
    let instructions = args.instructions;
    eprintln!(
        "Table IV @ {instructions} instructions/benchmark, {} jobs (paper: 250M on Gem5)",
        args.jobs
    );
    let study = table4(instructions, args.jobs);

    let paper = [1.3, 1.5, 14.8, 71.3, 73.8, 118.4];
    let rows: Vec<Vec<String>> = study
        .averages
        .iter()
        .zip(paper)
        .map(|((scheme, slowdown), paper_pct)| {
            vec![
                scheme.name().to_owned(),
                overhead_pct(*slowdown),
                format!("{paper_pct}%"),
            ]
        })
        .collect();
    println!("TABLE IV: performance overheads, 32-entry SecPB (geometric mean)");
    println!(
        "{}",
        render_table(&["model", "slowdown (ours)", "slowdown (paper)"], &rows)
    );
    let bars: Vec<(String, f64)> = study
        .averages
        .iter()
        .map(|(s, v)| (s.name().to_owned(), *v))
        .collect();
    println!("normalized execution time (1.0 = bbb):");
    println!("{}", bar_chart(&bars, 48));

    args.write_json(&study.to_json());
}
