//! Eager-vs-lazy metadata-engine equivalence gate (CI smoke).
//!
//! For every scheme, runs a short fuzzed trace through both metadata
//! engines and asserts the observable outputs are identical: the
//! byte-exact grid JSON report, the crash report, the persisted BMT
//! root, the full stats JSON, and the recovery report.  Exits nonzero
//! on the first divergence — this is the cheap standing proof that the
//! lazy engine (deferred BMT folding + pad/digest memoization) never
//! changes a paper-reported number.
//!
//! Usage: `equiv_smoke [instructions]` (default 10_000).

use secpb_bench::experiments::run_benchmark;
use secpb_core::crash::{CrashKind, DrainPolicy};
use secpb_core::scheme::Scheme;
use secpb_core::system::SecureSystem;
use secpb_core::tree::TreeKind;
use secpb_sim::config::{MetadataMode, SystemConfig};
use secpb_workloads::{TraceGenerator, WorkloadProfile};

fn cfg_with(mode: MetadataMode) -> SystemConfig {
    SystemConfig::default().with_metadata_mode(mode)
}

fn main() {
    let instructions: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("instructions must be a number"))
        .unwrap_or(10_000);
    let profile = WorkloadProfile::named("milc").expect("known workload");
    let mut failures = 0u32;

    for scheme in Scheme::ALL {
        // Grid-style report: the bytes the benchmark tables are built from.
        let grid = |mode| {
            run_benchmark(
                &profile,
                scheme,
                cfg_with(mode),
                TreeKind::Monolithic,
                instructions,
            )
            .to_json()
            .to_pretty()
        };
        if grid(MetadataMode::Eager) != grid(MetadataMode::Lazy) {
            eprintln!("FAIL {scheme}: grid JSON diverged between eager and lazy");
            failures += 1;
        }

        // Crash + recovery on a fuzzed trace: roots, reports, stats.
        let run = |mode| {
            let trace = TraceGenerator::new(profile.clone(), 0xE9).generate(instructions);
            let mut sys = SecureSystem::new(cfg_with(mode), scheme, 0xE9);
            sys.run_trace(trace);
            let crash = sys
                .crash(CrashKind::PowerLoss, DrainPolicy::DrainAll)
                .expect("crash drain");
            let root = sys.nvm_store().bmt_root();
            let stats = sys.stats().to_json().to_pretty();
            let recovery = sys.recover();
            (crash, root, stats, recovery)
        };
        let eager = run(MetadataMode::Eager);
        let lazy = run(MetadataMode::Lazy);
        if eager != lazy {
            eprintln!("FAIL {scheme}: crash/recovery observables diverged");
            failures += 1;
        } else if !lazy.3.is_consistent() {
            eprintln!("FAIL {scheme}: recovery inconsistent");
            failures += 1;
        } else {
            println!("ok   {scheme}: eager == lazy (grid JSON, crash, root, stats, recovery)");
        }
    }

    if failures > 0 {
        eprintln!("equivalence smoke: {failures} divergence(s)");
        std::process::exit(1);
    }
    println!("equivalence smoke: all schemes byte-identical across metadata modes");
}
