//! Calibration: prints Table IV-style averages next to the paper's
//! values, plus per-benchmark detail, so model parameters can be tuned.
//!
//! Usage: `cargo run --release -p secpb-bench --bin calibrate [instructions] [--jobs N]`

use secpb_bench::args::RunnerArgs;
use secpb_bench::experiments::{table4, DEFAULT_INSTRUCTIONS};
use secpb_bench::report::{render_table, slowdown_label};
use secpb_core::scheme::Scheme;

/// The paper's Table IV: average slowdowns for a 32-entry SecPB.
const PAPER_TABLE4: [(Scheme, f64); 6] = [
    (Scheme::Cobcm, 1.013),
    (Scheme::Obcm, 1.015),
    (Scheme::Bcm, 1.148),
    (Scheme::Cm, 1.713),
    (Scheme::M, 1.738),
    (Scheme::NoGap, 2.184),
];

fn main() {
    let args = RunnerArgs::from_env(DEFAULT_INSTRUCTIONS);
    let instructions = args.instructions;
    eprintln!(
        "running Table IV calibration at {instructions} instructions per benchmark, {} jobs...",
        args.jobs
    );
    let study = table4(instructions, args.jobs);

    let mut rows = Vec::new();
    for (scheme, paper) in PAPER_TABLE4 {
        let ours = study
            .averages
            .iter()
            .find(|(s, _)| *s == scheme)
            .map(|(_, v)| *v)
            .unwrap();
        rows.push(vec![
            scheme.name().to_owned(),
            slowdown_label(ours),
            slowdown_label(paper),
            format!("{:.2}", ours / paper),
        ]);
    }
    println!(
        "{}",
        render_table(&["model", "measured", "paper", "ratio"], &rows)
    );

    println!("per-benchmark slowdowns (vs bbb):");
    let mut detail = Vec::new();
    for row in &study.rows {
        let mut cells = vec![
            row.name.clone(),
            format!("{:.1}", row.ppti),
            format!("{:.1}", row.nwpe),
        ];
        cells.extend(row.slowdowns.iter().map(|(_, v)| slowdown_label(*v)));
        detail.push(cells);
    }
    let mut headers = vec!["bench", "ppti", "nwpe"];
    headers.extend(study.schemes.iter().map(|s| s.name()));
    println!("{}", render_table(&headers, &detail));
}
