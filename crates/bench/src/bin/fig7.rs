//! Regenerates **Figure 7**: execution time of the CM model across SecPB
//! sizes (8..=512 entries), normalized to a same-size bbb baseline.
//!
//! Usage: `cargo run --release -p secpb-bench --bin fig7 [instructions] [--jobs N] [--json out.json]`

use secpb_bench::args::RunnerArgs;
use secpb_bench::experiments::{fig7, DEFAULT_INSTRUCTIONS};
use secpb_bench::report::render_table;

fn main() {
    let args = RunnerArgs::from_env(DEFAULT_INSTRUCTIONS);
    let instructions = args.instructions;
    eprintln!(
        "Figure 7 @ {instructions} instructions/benchmark, {} jobs (CM model)",
        args.jobs
    );
    let sweep = fig7(instructions, args.jobs);

    let mut headers: Vec<String> = vec!["benchmark".into()];
    headers.extend(sweep.sizes.iter().map(|s| format!("{s}e")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for (name, vals) in &sweep.rows {
        let mut cells = vec![name.clone()];
        cells.extend(vals.iter().map(|v| format!("{v:.3}")));
        rows.push(cells);
    }
    let mut mean = vec!["geomean".to_owned()];
    mean.extend(sweep.averages.iter().map(|v| format!("{v:.3}")));
    rows.push(mean);
    println!("FIGURE 7: CM execution time normalized to bbb, by SecPB size");
    println!("{}", render_table(&header_refs, &rows));
    println!(
        "paper anchors: ~2.12x at 8 entries, ~1.24x at 512 entries; diminishing returns past 32-64"
    );

    args.write_json(&sweep.to_json());
}
