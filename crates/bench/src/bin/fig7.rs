//! Regenerates **Figure 7**: execution time of the CM model across SecPB
//! sizes (8..=512 entries), normalized to a same-size bbb baseline.
//!
//! Usage: `cargo run --release -p secpb-bench --bin fig7 [instructions] [--json out.json]`

use secpb_bench::experiments::{fig7, DEFAULT_INSTRUCTIONS};
use secpb_bench::report::render_table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let instructions = args
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_INSTRUCTIONS);
    eprintln!("Figure 7 @ {instructions} instructions/benchmark (CM model)");
    let sweep = fig7(instructions);

    let mut headers: Vec<String> = vec!["benchmark".into()];
    headers.extend(sweep.sizes.iter().map(|s| format!("{s}e")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for (name, vals) in &sweep.rows {
        let mut cells = vec![name.clone()];
        cells.extend(vals.iter().map(|v| format!("{v:.3}")));
        rows.push(cells);
    }
    let mut mean = vec!["geomean".to_owned()];
    mean.extend(sweep.averages.iter().map(|v| format!("{v:.3}")));
    rows.push(mean);
    println!("FIGURE 7: CM execution time normalized to bbb, by SecPB size");
    println!("{}", render_table(&header_refs, &rows));
    println!(
        "paper anchors: ~2.12x at 8 entries, ~1.24x at 512 entries; diminishing returns past 32-64"
    );

    if let Some(pos) = args.iter().position(|a| a == "--json") {
        let path = args.get(pos + 1).expect("--json needs a path");
        std::fs::write(path, sweep.to_json().to_pretty()).expect("write json");
        eprintln!("wrote {path}");
    }
}
