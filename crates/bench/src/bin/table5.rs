//! Regenerates **Table V**: energy-source size estimates for every scheme
//! with a 32-entry SecPB, compared to secure eADR, bbb, and plain eADR.
//!
//! Usage: `cargo run --release -p secpb-bench --bin table5 [--jobs N] [--json out.json]`
//! (`--jobs` is accepted for a uniform runner surface; the table is
//! analytic, so there is no grid to fan out.)

use secpb_bench::args::RunnerArgs;
use secpb_bench::experiments::table5;
use secpb_bench::report::{mm3, render_table};

fn main() {
    let args = RunnerArgs::from_env(0);
    let rows = table5(32);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.system.clone(),
                mm3(r.volume_mm3.0),
                mm3(r.volume_mm3.1),
                format!("{:.1}%", r.core_area_pct.0),
                format!("{:.1}%", r.core_area_pct.1),
            ]
        })
        .collect();
    println!("TABLE V: energy-source size, 32-entry SecPB (per core)");
    println!(
        "{}",
        render_table(
            &[
                "system",
                "SuperCap mm3",
                "Li-Thin mm3",
                "SuperCap %core",
                "Li-Thin %core"
            ],
            &table
        )
    );
    println!("paper anchors: cobcm 4.89/0.049, bcm 4.72/0.047, nogap 0.28/0.003,");
    println!("               s_eadr 3706/37.06, bbb 0.07/0.001, eadr 149.32/1.490");

    args.write_json(&secpb_bench::experiments::battery_rows_to_json(&rows));
}
