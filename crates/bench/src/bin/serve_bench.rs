//! Load generator for the sharded persist service: aggregate
//! stores/sec at 1/2/4/8 shards, plus the shard-determinism
//! cross-check.
//!
//! Runs the same multi-tenant workload through `secpb_bench::serve` at
//! each shard count, times the wall clock, and reports aggregate
//! stores per second.  After timing, every populated shard of every
//! multi-shard run is re-run **solo** (one shard hosting only that
//! shard's tenants, same seed) and its `ShardOutcome::digest` must
//! match byte-for-byte — the service's determinism contract: a shard's
//! outcome depends only on its tenants and seed, never on shard count,
//! interleaving, or stealing.
//!
//! Usage:
//! `cargo run --release -p secpb-bench --bin serve_bench [instructions]
//!  [--smoke] [--json out.json] [--update-baseline] [--tenants N]
//!  [--epoch N] [--trace NAME=PATH]...`
//!
//! `--smoke` shrinks the run for CI (fewer instructions, shard counts
//! 1/2/4) and additionally validates the report: throughput fields
//! present, and — only where `scaling_valid` — monotone non-degrading
//! aggregate stores/sec with shard count.  On a single-core host the
//! wall-clock ratios say nothing about the architecture, so the report
//! records `scaling_valid: false` (mirroring BENCH_grid.json's
//! `speedup: null` convention) and the monotonicity gate is skipped;
//! the determinism cross-check always runs.
//!
//! The JSON report lands in the temp directory by default;
//! `--update-baseline` writes the checked-in `BENCH_serve.json` and
//! `--json <path>` overrides both.

use std::collections::HashMap;
use std::time::Instant;

use secpb_bench::serve::{
    run_serve, PrivilegeToken, QosClass, ServeConfig, TenantSpec, SERVE_SEED,
};
use secpb_sim::json::Json;
use secpb_sim::pool;
use secpb_workloads::WorkloadProfile;

/// Shard counts exercised by the full benchmark.
const FULL_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Shard counts exercised by `--smoke`.
const SMOKE_COUNTS: [usize; 3] = [1, 2, 4];

/// The fixed tenant population every shard count replays.
fn build_tenants(count: usize, instructions: u64) -> Vec<TenantSpec> {
    let suite = WorkloadProfile::spec_suite();
    let classes = [QosClass::Gold, QosClass::Silver, QosClass::Bronze];
    let token = PrivilegeToken::acquire();
    let mut cfg = ServeConfig::new(1);
    for i in 0..count {
        let profile = suite[i % suite.len()].clone();
        let name = format!("t{i}-{}", profile.name);
        cfg.tenants
            .push(TenantSpec::synthetic(&name, profile, instructions));
        cfg.set_qos(&name, classes[i % classes.len()], &token)
            .expect("tenant just added");
    }
    cfg.tenants
}

fn config_for(shards: usize, tenants: &[TenantSpec], epoch_len: usize) -> ServeConfig {
    let mut cfg = ServeConfig::new(shards);
    cfg.epoch_len = epoch_len;
    cfg.tenants = tenants.to_vec();
    cfg
}

struct CountResult {
    shards: usize,
    workers: usize,
    wall_seconds: f64,
    stores: u64,
    persists: u64,
    stores_per_sec: f64,
    stolen: u64,
    /// `(member names, digest)` for every populated shard.
    digests: Vec<(Vec<String>, String)>,
}

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let smoke = raw.iter().any(|a| a == "--smoke");
    raw.retain(|a| a != "--smoke");
    let update_baseline = raw.iter().any(|a| a == "--update-baseline");
    raw.retain(|a| a != "--update-baseline");
    let mut file_tenants: Vec<(String, String)> = Vec::new();
    while let Some(i) = raw.iter().position(|a| a == "--trace") {
        if i + 1 >= raw.len() {
            eprintln!("error: --trace takes NAME=PATH");
            std::process::exit(2);
        }
        let spec = raw[i + 1].clone();
        raw.drain(i..=i + 1);
        match spec.split_once('=') {
            Some((name, path)) => file_tenants.push((name.to_owned(), path.to_owned())),
            None => {
                eprintln!("error: --trace takes NAME=PATH");
                std::process::exit(2);
            }
        }
    }
    let tenant_count = match raw.iter().position(|a| a == "--tenants") {
        Some(i) => {
            if i + 1 >= raw.len() {
                eprintln!("error: --tenants takes a number");
                std::process::exit(2);
            }
            let n = raw[i + 1].parse::<usize>().unwrap_or_else(|_| {
                eprintln!("error: --tenants takes a number");
                std::process::exit(2);
            });
            raw.drain(i..=i + 1);
            n
        }
        None => 8,
    };
    let epoch_len = match raw.iter().position(|a| a == "--epoch") {
        Some(i) => {
            if i + 1 >= raw.len() {
                eprintln!("error: --epoch takes a number");
                std::process::exit(2);
            }
            let n = raw[i + 1].parse::<usize>().unwrap_or_else(|_| {
                eprintln!("error: --epoch takes a number");
                std::process::exit(2);
            });
            raw.drain(i..=i + 1);
            n
        }
        None => 1024,
    };
    let args = match secpb_bench::args::RunnerArgs::parse(&raw, if smoke { 8_000 } else { 60_000 })
    {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: serve_bench [instructions] [--smoke] [--json out.json] \
                 [--update-baseline] [--tenants N] [--epoch N] [--trace NAME=PATH]..."
            );
            std::process::exit(2);
        }
    };

    let mut tenants = build_tenants(tenant_count, args.instructions);
    for (name, path) in &file_tenants {
        tenants.push(TenantSpec::from_file(name, path));
    }
    let counts: &[usize] = if smoke { &SMOKE_COUNTS } else { &FULL_COUNTS };
    let cores = pool::default_jobs();
    // Wall-clock scaling ratios only mean something with real
    // parallelism under them; on fewer cores than the largest shard
    // count the numbers are still recorded but flagged invalid,
    // mirroring BENCH_grid.json's `speedup: null` convention.
    let scaling_valid = cores >= *counts.last().expect("counts nonempty");
    eprintln!(
        "serve_bench: {} tenants @ {} instructions, epoch {}, shard counts {:?} on {} core(s){}",
        tenants.len(),
        args.instructions,
        epoch_len,
        counts,
        cores,
        if scaling_valid {
            ""
        } else {
            " (scaling_valid: false)"
        }
    );

    // Timing pass: every shard count replays the identical tenant set.
    let mut results: Vec<CountResult> = Vec::with_capacity(counts.len());
    for &shards in counts {
        let cfg = config_for(shards, &tenants, epoch_len);
        let t = Instant::now();
        let out = run_serve(&cfg).unwrap_or_else(|e| {
            eprintln!("serve_bench: {shards}-shard run failed: {e}");
            std::process::exit(1);
        });
        let wall = t.elapsed().as_secs_f64();
        if out.total_anomalies() > 0 || out.total_qos_violations() > 0 || !out.consistent() {
            eprintln!(
                "serve_bench: {shards}-shard run unhealthy: {} anomalies, {} QoS violations, consistent={}",
                out.total_anomalies(),
                out.total_qos_violations(),
                out.consistent()
            );
            std::process::exit(1);
        }
        let stores = out.total_stores();
        let r = CountResult {
            shards,
            workers: cfg.workers,
            wall_seconds: wall,
            stores,
            persists: out.total_persists(),
            stores_per_sec: stores as f64 / wall.max(1e-9),
            stolen: out.pool.stolen,
            digests: out
                .shards
                .iter()
                .filter(|s| !s.tenants.is_empty())
                .map(|s| (s.tenants.clone(), s.digest()))
                .collect(),
        };
        eprintln!(
            "  {shards} shard(s): {:.3} s, {} stores, {:.0} stores/s, {} stolen batches",
            r.wall_seconds, r.stores, r.stores_per_sec, r.stolen
        );
        results.push(r);
    }

    // Determinism cross-check (after timing, so it cannot pollute it):
    // each populated shard's digest must equal a solo re-run of just
    // that shard's tenants.  Solo digests are cached by member list —
    // the same subset appearing at different shard counts must agree
    // with the same reference.
    let by_name: HashMap<&str, &TenantSpec> =
        tenants.iter().map(|t| (t.name.as_str(), t)).collect();
    let mut solo_cache: HashMap<Vec<String>, String> = HashMap::new();
    let mut checked = 0usize;
    for r in &results {
        for (members, digest) in &r.digests {
            let reference = solo_cache.entry(members.clone()).or_insert_with(|| {
                let subset: Vec<TenantSpec> = members
                    .iter()
                    .map(|n| (*by_name.get(n.as_str()).expect("known tenant")).clone())
                    .collect();
                let solo = config_for(1, &subset, epoch_len);
                let out = run_serve(&solo).unwrap_or_else(|e| {
                    eprintln!("serve_bench: solo determinism re-run failed: {e}");
                    std::process::exit(1);
                });
                out.shards[0].digest()
            });
            if digest != reference {
                eprintln!(
                    "DETERMINISM VIOLATION: shard hosting [{}] at {} shards digests {digest}, \
                     solo re-run digests {reference}",
                    members.join(","),
                    r.shards
                );
                std::process::exit(1);
            }
            checked += 1;
        }
    }
    eprintln!(
        "  determinism: {checked} shard outcome(s) across {:?} shards match solo re-runs",
        counts
    );

    // Monotone non-degrading aggregate throughput — only meaningful
    // where the host could actually run the shards in parallel.  A
    // small tolerance absorbs wall-clock noise.
    let mut monotone_ok = true;
    if scaling_valid {
        for pair in results.windows(2) {
            if pair[1].stores_per_sec < pair[0].stores_per_sec * 0.85 {
                monotone_ok = false;
                eprintln!(
                    "THROUGHPUT REGRESSION: {} shards {:.0} stores/s < {} shards {:.0} stores/s",
                    pair[1].shards, pair[1].stores_per_sec, pair[0].shards, pair[0].stores_per_sec
                );
            }
        }
    }

    let per_count = results.iter().map(|r| {
        Json::obj()
            .field("shards", r.shards)
            .field("workers", r.workers)
            .field("wall_seconds", r.wall_seconds)
            .field("stores", r.stores)
            .field("persists", r.persists)
            .field("aggregate_stores_per_sec", r.stores_per_sec)
            .field("stolen_batches", r.stolen)
            .field(
                "shard_digests",
                Json::Arr(
                    r.digests
                        .iter()
                        .map(|(m, d)| {
                            Json::obj()
                                .field("tenants", m.join(","))
                                .field("digest", d.as_str())
                        })
                        .collect(),
                ),
            )
    });
    let payload = Json::obj()
        .field("bench", if smoke { "smoke" } else { "full" })
        .field("tenants", tenants.len())
        .field("instructions_per_tenant", args.instructions)
        .field("epoch_len", epoch_len)
        .field("seed", SERVE_SEED)
        .field("host_cores", cores)
        .field("scaling_valid", scaling_valid)
        .field("monotone_throughput", scaling_valid && monotone_ok)
        .field("determinism_validated", true)
        .field("shard_outcomes_checked", checked)
        .field("results", Json::Arr(per_count.collect()));
    let path = match args.json.as_deref() {
        Some(p) => p.to_owned(),
        None if update_baseline => "BENCH_serve.json".to_owned(),
        None => std::env::temp_dir()
            .join("BENCH_serve.json")
            .to_string_lossy()
            .into_owned(),
    };
    std::fs::write(&path, payload.to_pretty()).expect("write json");
    eprintln!("wrote {path}");

    if smoke {
        // Self-validate the report shape the CI gate depends on.
        let doc = std::fs::read_to_string(&path).expect("read back json");
        let parsed = Json::parse(&doc).expect("report parses");
        for key in [
            "scaling_valid",
            "determinism_validated",
            "monotone_throughput",
            "results",
        ] {
            assert!(parsed.get(key).is_some(), "report missing `{key}`");
        }
    }
    if !monotone_ok {
        std::process::exit(1);
    }
}
