//! Regenerates **Table VI**: supercapacitor/battery capacity for varying
//! SecPB sizes under the COBCM and NoGap models.
//!
//! Usage: `cargo run --release -p secpb-bench --bin table6 [--jobs N] [--json out.json]`
//! (`--jobs` is accepted for a uniform runner surface; the table is
//! analytic, so there is no grid to fan out.)

use secpb_bench::args::RunnerArgs;
use secpb_bench::experiments::table6;
use secpb_bench::report::{mm3, render_table};

fn main() {
    let args = RunnerArgs::from_env(0);
    let rows = table6();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.entries.to_string(),
                mm3(r.cobcm_mm3.0),
                mm3(r.cobcm_mm3.1),
                mm3(r.nogap_mm3.0),
                mm3(r.nogap_mm3.1),
            ]
        })
        .collect();
    println!("TABLE VI: battery capacity (mm3) vs SecPB size");
    println!(
        "{}",
        render_table(
            &[
                "entries",
                "COBCM SuperCap",
                "COBCM Li-Thin",
                "NoGap SuperCap",
                "NoGap Li-Thin"
            ],
            &table
        )
    );
    println!("paper anchors @32: COBCM 4.89/0.049, NoGap 0.28/0.003; @512: COBCM 76.10/0.761, NoGap 4.35/0.044");

    args.write_json(&secpb_bench::experiments::battery_sweep_to_json(&rows));
}
