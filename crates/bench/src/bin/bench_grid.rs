//! Grid-scale wall-clock benchmark of the parallel experiment engine.
//!
//! Runs the same scheme×workload grid serially and with `--jobs N`
//! workers, verifies the two result sets are **identical** (the engine's
//! determinism contract), and reports wall-clock speedup plus per-cell
//! simulated instructions per second.  Writes `BENCH_grid.json`.
//!
//! Usage:
//! `cargo run --release -p secpb-bench --bin bench_grid [instructions] [--jobs N] [--json out.json] [--smoke]`
//!
//! `--smoke` shrinks the grid to 2 workloads × 2 schemes (the CI
//! determinism gate); the default grid is the full Table IV workload
//! suite × all SecPB schemes.  Exits nonzero if parallel results diverge
//! from serial.

use std::time::Instant;

use secpb_bench::experiments::{run_grid, GridCell};
use secpb_core::scheme::Scheme;
use secpb_sim::json::Json;
use secpb_sim::pool;
use secpb_workloads::WorkloadProfile;

fn build_grid(smoke: bool, instructions: u64) -> Vec<GridCell> {
    let (profiles, schemes): (Vec<WorkloadProfile>, Vec<Scheme>) = if smoke {
        (
            ["gamess", "povray"]
                .iter()
                .map(|n| WorkloadProfile::named(n).expect("known"))
                .collect(),
            vec![Scheme::Bbb, Scheme::Cobcm],
        )
    } else {
        (
            WorkloadProfile::spec_suite(),
            std::iter::once(Scheme::Bbb)
                .chain(Scheme::SECPB_SCHEMES)
                .collect(),
        )
    };
    profiles
        .iter()
        .flat_map(|p| {
            schemes
                .iter()
                .map(|&s| GridCell::new(p.clone(), s, instructions))
        })
        .collect()
}

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let smoke = raw.iter().any(|a| a == "--smoke");
    raw.retain(|a| a != "--smoke");
    let args = match secpb_bench::args::RunnerArgs::parse(&raw, 200_000) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("usage: bench_grid [instructions] [--jobs N] [--json out.json] [--smoke]");
            std::process::exit(2);
        }
    };
    let jobs = if args.jobs > 1 {
        args.jobs
    } else {
        pool::default_jobs().max(2)
    };

    let cores = pool::default_jobs();
    let cells = build_grid(smoke, args.instructions);
    eprintln!(
        "grid: {} cells ({}) @ {} instructions, serial vs {jobs} jobs on {cores} core(s)",
        cells.len(),
        if smoke { "smoke" } else { "full" },
        args.instructions
    );
    if cores < 2 {
        eprintln!(
            "note: single-core host — expect no wall-clock speedup, only the determinism check"
        );
    }

    let t0 = Instant::now();
    let serial = run_grid(&cells, 1);
    let serial_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let parallel = run_grid(&cells, jobs);
    let parallel_s = t1.elapsed().as_secs_f64();

    if serial != parallel {
        eprintln!("DETERMINISM VIOLATION: parallel grid results differ from serial");
        std::process::exit(1);
    }

    let speedup = serial_s / parallel_s;
    // Simulated instructions per wall-clock second: every cell simulates
    // warm-up + measurement; count only measured instructions (stable
    // across warm-up policy changes) for a conservative throughput.
    let simulated: u64 = cells.iter().map(|c| c.instructions).sum();
    let serial_ips = simulated as f64 / serial_s;
    let parallel_ips = simulated as f64 / parallel_s;

    println!("cells                 {}", cells.len());
    println!("serial                {serial_s:.3} s ({serial_ips:.0} instr/s)");
    println!("parallel ({jobs} jobs)     {parallel_s:.3} s ({parallel_ips:.0} instr/s)");
    println!("speedup               {speedup:.2}x");
    println!(
        "determinism           parallel == serial ({} cells)",
        cells.len()
    );

    let per_cell = cells.iter().zip(&serial).map(|(c, r)| {
        Json::obj()
            .field("workload", c.profile.name.as_str())
            .field("scheme", c.scheme.name())
            .field("cycles", r.cycles)
            .field("ipc", r.ipc())
    });
    let payload = Json::obj()
        .field("grid", if smoke { "smoke" } else { "full" })
        .field("cells", cells.len())
        .field("instructions_per_cell", args.instructions)
        .field("jobs", jobs)
        .field("host_cores", cores)
        .field("serial_seconds", serial_s)
        .field("parallel_seconds", parallel_s)
        .field("speedup", speedup)
        .field("serial_instructions_per_second", serial_ips)
        .field("parallel_instructions_per_second", parallel_ips)
        .field("deterministic", true)
        .field("results", Json::Arr(per_cell.collect()));
    let path = args.json.as_deref().unwrap_or("BENCH_grid.json");
    std::fs::write(path, payload.to_pretty()).expect("write json");
    eprintln!("wrote {path}");
}
