//! Grid-scale wall-clock benchmark of the parallel experiment engine.
//!
//! Runs the same scheme×workload grid serially (timing each cell) and
//! with `--jobs N` workers, verifies the two result sets are
//! **identical** (the engine's determinism contract), and reports
//! wall-clock speedup plus per-cell simulated instructions per second
//! and host nanoseconds per simulated store.
//!
//! Usage:
//! `cargo run --release -p secpb-bench --bin bench_grid [instructions] [--jobs N] [--json out.json] [--smoke] [--mode eager|lazy] [--backend auto|scalar|multiblock|hw] [--validate-parallel] [--update-baseline]`
//!
//! `--smoke` shrinks the grid to 2 workloads × 2 schemes (the CI
//! determinism gate); the default grid is the full Table IV workload
//! suite × all SecPB schemes.  `--mode` selects the security-metadata
//! engine (default: lazy) and `--backend` pins the crypto backend
//! (default: auto-detect).  Exits nonzero if parallel results diverge
//! from serial.
//!
//! `--telemetry` attaches a live telemetry ring to every serial cell.
//! Because events observe and never steer, the determinism gate then
//! proves something stronger: the telemetered serial grid must still be
//! identical to the plain parallel grid, i.e. watching a cell costs
//! nothing in fidelity.  The report gains ring accounting
//! (`telemetry_events`, `telemetry_dropped`).
//!
//! The JSON report lands in the temp directory by default so routine
//! runs never dirty the working tree; `--update-baseline` writes the
//! checked-in `BENCH_grid.json` instead, and `--json <path>` overrides
//! both.
//!
//! On a single-core host the parallel pass still runs (it is the
//! determinism check), but its wall-clock time says nothing about the
//! engine, so `speedup` is reported as `null` and
//! `parallel_timing_valid` as `false` rather than shipping a
//! misleading sub-1x figure.  `--validate-parallel` makes that posture
//! explicit for 1-core CI: it pins the parallel pass to 2 workers and
//! records `parallel_determinism_validated: true` in the report —
//! determinism is validated even where timing isn't.

use std::time::Instant;

use secpb_bench::experiments::{run_grid, GridCell, TelemetryDigest};
use secpb_core::metrics::counters;
use secpb_core::scheme::Scheme;
use secpb_sim::config::{CryptoBackendKind, MetadataMode, SystemConfig};
use secpb_sim::json::Json;
use secpb_sim::pool;
use secpb_workloads::WorkloadProfile;

fn build_grid(
    smoke: bool,
    instructions: u64,
    mode: MetadataMode,
    backend: CryptoBackendKind,
) -> Vec<GridCell> {
    let (profiles, schemes): (Vec<WorkloadProfile>, Vec<Scheme>) = if smoke {
        (
            ["gamess", "povray"]
                .iter()
                .map(|n| WorkloadProfile::named(n).expect("known"))
                .collect(),
            vec![Scheme::Bbb, Scheme::Cobcm],
        )
    } else {
        (
            WorkloadProfile::spec_suite(),
            std::iter::once(Scheme::Bbb)
                .chain(Scheme::SECPB_SCHEMES)
                .collect(),
        )
    };
    let cfg = SystemConfig::default()
        .with_metadata_mode(mode)
        .with_crypto_backend(backend);
    profiles
        .iter()
        .flat_map(|p| {
            schemes
                .iter()
                .map(|&s| GridCell::new(p.clone(), s, instructions).with_cfg(cfg.clone()))
        })
        .collect()
}

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let smoke = raw.iter().any(|a| a == "--smoke");
    raw.retain(|a| a != "--smoke");
    let update_baseline = raw.iter().any(|a| a == "--update-baseline");
    raw.retain(|a| a != "--update-baseline");
    let telemetry = raw.iter().any(|a| a == "--telemetry");
    raw.retain(|a| a != "--telemetry");
    let validate_parallel = raw.iter().any(|a| a == "--validate-parallel");
    raw.retain(|a| a != "--validate-parallel");
    let backend = match raw.iter().position(|a| a == "--backend") {
        Some(i) => {
            if i + 1 >= raw.len() {
                eprintln!("error: --backend requires a value (auto|scalar|multiblock|hw)");
                std::process::exit(2);
            }
            let parsed = raw[i + 1].parse::<CryptoBackendKind>();
            raw.drain(i..=i + 1);
            match parsed {
                Ok(b) => b,
                Err(msg) => {
                    eprintln!("error: {msg}");
                    std::process::exit(2);
                }
            }
        }
        None => CryptoBackendKind::default(),
    };
    let mode = match raw.iter().position(|a| a == "--mode") {
        Some(i) => {
            if i + 1 >= raw.len() {
                eprintln!("error: --mode requires a value (eager|lazy)");
                std::process::exit(2);
            }
            let parsed = raw[i + 1].parse::<MetadataMode>();
            raw.drain(i..=i + 1);
            match parsed {
                Ok(m) => m,
                Err(msg) => {
                    eprintln!("error: {msg}");
                    std::process::exit(2);
                }
            }
        }
        None => MetadataMode::default(),
    };
    let args = match secpb_bench::args::RunnerArgs::parse(&raw, 200_000) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: bench_grid [instructions] [--jobs N] [--json out.json] [--smoke] \
                 [--mode eager|lazy] [--backend auto|scalar|multiblock|hw] [--telemetry] \
                 [--validate-parallel] [--update-baseline]"
            );
            std::process::exit(2);
        }
    };
    // --validate-parallel pins the worker count to 2: the mode exists so
    // 1-core hosts can still prove the serial/parallel byte-identity
    // contract even though their parallel timing is meaningless.
    let jobs = if validate_parallel {
        2
    } else if args.jobs > 1 {
        args.jobs
    } else {
        pool::default_jobs().max(2)
    };

    let cores = pool::default_jobs();
    let parallel_timing_valid = cores >= 2 && !validate_parallel;
    let cells = build_grid(smoke, args.instructions, mode, backend);
    eprintln!(
        "grid: {} cells ({}) @ {} instructions, {} metadata, {} backend, serial vs {jobs} jobs on {cores} core(s)",
        cells.len(),
        if smoke { "smoke" } else { "full" },
        args.instructions,
        mode.name(),
        backend.name(),
    );
    if !parallel_timing_valid {
        eprintln!(
            "note: parallel pass is determinism-check only ({}); speedup not reported",
            if validate_parallel {
                "--validate-parallel"
            } else {
                "single-core host"
            }
        );
    }

    // Serial pass, timing each cell so per-cell host cost (ns per
    // simulated store) lands in the report alongside the simulated
    // numbers.  Each serial cell is also crash-tested (power loss, full
    // drain, verified recovery) so a cell that persists garbage fails
    // the grid instead of silently reporting timing only.
    let t0 = Instant::now();
    let (serial_checked, cell_seconds): (Vec<_>, Vec<_>) = cells
        .iter()
        .map(|c| {
            let t = Instant::now();
            let (r, check, digest) = if telemetry {
                c.run_with_recovery_telemetered(1 << 16)
            } else {
                let (r, check) = c.run_with_recovery();
                (r, check, TelemetryDigest::default())
            };
            ((r, check, digest), t.elapsed().as_secs_f64())
        })
        .unzip();
    let serial_s = t0.elapsed().as_secs_f64();
    let mut serial = Vec::with_capacity(cells.len());
    let mut recovery = Vec::with_capacity(cells.len());
    let mut digests = Vec::with_capacity(cells.len());
    for (r, check, digest) in serial_checked {
        serial.push(r);
        recovery.push(check);
        digests.push(digest);
    }

    let t1 = Instant::now();
    let parallel = run_grid(&cells, jobs);
    let parallel_s = t1.elapsed().as_secs_f64();

    if serial != parallel {
        if telemetry {
            eprintln!(
                "DETERMINISM VIOLATION: telemetered serial grid differs from plain parallel \
                 (events must observe, never steer)"
            );
        } else {
            eprintln!("DETERMINISM VIOLATION: parallel grid results differ from serial");
        }
        std::process::exit(1);
    }

    let speedup = serial_s / parallel_s;
    // Simulated instructions per wall-clock second: every cell simulates
    // warm-up + measurement; count only measured instructions (stable
    // across warm-up policy changes) for a conservative throughput.
    let simulated: u64 = cells.iter().map(|c| c.instructions).sum();
    let serial_ips = simulated as f64 / serial_s;
    let parallel_ips = simulated as f64 / parallel_s;
    let total_stores: u64 = serial.iter().map(|r| r.stats.get(counters::STORES)).sum();
    let serial_ns_per_store = serial_s * 1e9 / total_stores.max(1) as f64;

    println!("cells                 {}", cells.len());
    println!("metadata mode         {}", mode.name());
    println!("serial                {serial_s:.3} s ({serial_ips:.0} instr/s)");
    println!("serial ns/store       {serial_ns_per_store:.1}");
    if parallel_timing_valid {
        println!("parallel ({jobs} jobs)     {parallel_s:.3} s ({parallel_ips:.0} instr/s)");
        println!("speedup               {speedup:.2}x");
    } else {
        println!("parallel ({jobs} jobs)     n/a (determinism check only)");
    }
    println!(
        "determinism           parallel == serial{} ({} cells)",
        if telemetry { " (telemetered)" } else { "" },
        cells.len()
    );
    let telemetry_events: u64 = digests.iter().map(|d| d.events).sum();
    let telemetry_dropped: u64 = digests.iter().map(|d| d.dropped).sum();
    if telemetry {
        println!("telemetry             {telemetry_events} events, {telemetry_dropped} dropped");
    }

    let recovery_failures: Vec<String> = cells
        .iter()
        .zip(&recovery)
        .filter_map(|(c, check)| {
            check
                .failure
                .as_ref()
                .map(|why| format!("{}/{}: {why}", c.profile.name, c.scheme.name()))
        })
        .collect();
    let recovery_blocks: u64 = recovery.iter().map(|c| c.blocks_checked).sum();
    let recovery_cycles_total: u64 = recovery.iter().map(|c| c.recovery_cycles).sum();
    if recovery_failures.is_empty() {
        println!(
            "recovery              all {} cells consistent ({recovery_blocks} blocks verified, \
             {recovery_cycles_total} est. sweep cycles)",
            cells.len()
        );
    } else {
        for f in &recovery_failures {
            eprintln!("RECOVERY FAILURE: {f}");
        }
    }

    // The recovery curve rides along in every grid report: the same
    // instruction budget swept across persistence policies, so the
    // write-amp vs recovery-latency trade-off is versioned next to the
    // timing it trades against.
    let sweep_cfg = {
        let mut c = secpb_bench::recovery_sweep::SweepConfig::new(0x5EC9_B0A2);
        c.instructions = args.instructions;
        c
    };
    let curve = secpb_bench::recovery_sweep::run_sweep(&sweep_cfg);
    if curve.passed() {
        println!(
            "recovery curve        {} points monotone (fastrec <= triad <= eager-ish <= lazy)",
            curve.points.len()
        );
    } else {
        eprint!("RECOVERY CURVE FAILURE:\n{}", curve.render_text());
    }

    let per_cell = cells
        .iter()
        .zip(serial.iter().zip(&cell_seconds))
        .zip(&recovery)
        .map(|((c, (r, secs)), check)| {
            let stores = r.stats.get(counters::STORES);
            Json::obj()
                .field("workload", c.profile.name.as_str())
                .field("scheme", c.scheme.name())
                .field("cycles", r.cycles)
                .field("ipc", r.ipc())
                .field("ns_per_store", secs * 1e9 / stores.max(1) as f64)
                .field("recovery_ok", check.ok())
                .field("recovery_blocks", check.blocks_checked)
                .field("recovery_cycles", check.recovery_cycles)
                .field(
                    "recovery_failure",
                    match &check.failure {
                        Some(why) => Json::from(why.as_str()),
                        None => Json::Null,
                    },
                )
        });
    let payload = Json::obj()
        .field("grid", if smoke { "smoke" } else { "full" })
        .field("cells", cells.len())
        .field("instructions_per_cell", args.instructions)
        .field("metadata_mode", mode.name())
        .field("crypto_backend", backend.name())
        .field("jobs", jobs)
        .field("host_cores", cores)
        .field("serial_seconds", serial_s)
        .field(
            "parallel_seconds",
            if parallel_timing_valid {
                Json::from(parallel_s)
            } else {
                Json::Null
            },
        )
        .field(
            "speedup",
            if parallel_timing_valid {
                Json::from(speedup)
            } else {
                Json::Null
            },
        )
        .field("parallel_timing_valid", parallel_timing_valid)
        .field("parallel_determinism_validated", true)
        .field("serial_instructions_per_second", serial_ips)
        .field(
            "parallel_instructions_per_second",
            if parallel_timing_valid {
                Json::from(parallel_ips)
            } else {
                Json::Null
            },
        )
        .field("serial_ns_per_store", serial_ns_per_store)
        .field("deterministic", true)
        .field("recovery_ok", recovery_failures.is_empty())
        .field("recovery_blocks_verified", recovery_blocks)
        .field("recovery_cycles_total", recovery_cycles_total)
        .field("telemetry", telemetry)
        .field("telemetry_events", telemetry_events)
        .field("telemetry_dropped", telemetry_dropped)
        .field("recovery_curve", curve.to_json())
        .field("results", Json::Arr(per_cell.collect()));
    // Routine runs must not dirty the working tree: the checked-in
    // baseline is only touched when explicitly asked for.
    let path = match args.json.as_deref() {
        Some(p) => p.to_owned(),
        None if update_baseline => "BENCH_grid.json".to_owned(),
        None => std::env::temp_dir()
            .join("BENCH_grid.json")
            .to_string_lossy()
            .into_owned(),
    };
    std::fs::write(&path, payload.to_pretty()).expect("write json");
    eprintln!("wrote {path}");
    if !recovery_failures.is_empty() {
        eprintln!(
            "bench_grid: {} cell(s) failed recovery checks",
            recovery_failures.len()
        );
        std::process::exit(1);
    }
    if !curve.passed() {
        eprintln!("bench_grid: recovery curve failed (ordering or consistency)");
        std::process::exit(1);
    }
}
