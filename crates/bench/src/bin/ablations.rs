//! Ablation studies for the design choices called out in DESIGN.md §6:
//!
//! 1. the Section IV-A data-value-independent coalescing optimization,
//! 2. single vs pipelined in-flight BMT root updates (early path),
//! 3. drain watermark placement.
//!
//! Usage: `cargo run --release -p secpb-bench --bin ablations [instructions] [--jobs N]`

use secpb_bench::args::RunnerArgs;
use secpb_bench::experiments::{
    ablation_bmt_pipelining, ablation_coalescing, ablation_speculative_verification,
    ablation_watermarks, DEFAULT_INSTRUCTIONS,
};
use secpb_bench::report::{overhead_pct, render_table};
use secpb_core::scheme::Scheme;

fn main() {
    let args = RunnerArgs::from_env(DEFAULT_INSTRUCTIONS / 4);
    let (instructions, jobs) = (args.instructions, args.jobs);
    eprintln!("ablations @ {instructions} instructions/benchmark, {jobs} jobs");

    // 1. Coalescing (most impactful for the eager schemes, Section IV-A).
    let mut rows = Vec::new();
    for scheme in [Scheme::Cm, Scheme::M, Scheme::NoGap] {
        let (on, off) = ablation_coalescing(scheme, instructions, jobs);
        rows.push(vec![
            scheme.name().to_owned(),
            overhead_pct(on),
            overhead_pct(off),
            format!("{:.2}x", off / on),
        ]);
    }
    println!("ABLATION 1: value-independent coalescing (Section IV-A)");
    println!(
        "{}",
        render_table(&["scheme", "with (geomean)", "without", "benefit"], &rows)
    );

    // 2. BMT pipelining on the early path.
    let mut rows = Vec::new();
    for scheme in [Scheme::Cm, Scheme::NoGap] {
        let (single, pipelined) = ablation_bmt_pipelining(scheme, instructions, jobs);
        rows.push(vec![
            scheme.name().to_owned(),
            overhead_pct(single),
            overhead_pct(pipelined),
        ]);
    }
    println!("ABLATION 2: one in-flight BMT update vs pipelined (early path)");
    println!(
        "{}",
        render_table(&["scheme", "single", "pipelined"], &rows)
    );

    // 3. Watermarks (COBCM lives off its drain engine).
    let pairs = [(0.9, 0.75), (0.75, 0.5), (0.5, 0.25)];
    let results = ablation_watermarks(Scheme::Cobcm, &pairs, instructions, jobs);
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|((h, l), v)| vec![format!("{h:.2}/{l:.2}"), overhead_pct(*v)])
        .collect();
    println!("ABLATION 3: drain watermarks (COBCM)");
    println!("{}", render_table(&["high/low", "overhead"], &rows));

    // 4. Speculative vs blocking load verification (Section V-A).
    let mut rows = Vec::new();
    for scheme in [Scheme::Cobcm, Scheme::Cm] {
        let (spec, blocking) = ablation_speculative_verification(scheme, instructions, jobs);
        rows.push(vec![
            scheme.name().to_owned(),
            overhead_pct(spec),
            overhead_pct(blocking),
        ]);
    }
    println!("ABLATION 4: speculative vs blocking load verification");
    println!(
        "{}",
        render_table(&["scheme", "speculative", "blocking"], &rows)
    );
}
