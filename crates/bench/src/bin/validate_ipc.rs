//! Reproduces the paper's **Section VI-B analytical IPC validation**: for
//! the NoGap scheme, the measured IPC should track
//! `1000 / (320·PPTI/NWPE + 40·PPTI)` (gamess: estimate 0.11, Gem5
//! measured 0.13).
//!
//! Usage: `cargo run --release -p secpb-bench --bin validate_ipc [instructions]`

use secpb_bench::analytic::validate;
use secpb_bench::experiments::{run_benchmark, DEFAULT_INSTRUCTIONS};
use secpb_bench::report::render_table;
use secpb_core::scheme::Scheme;
use secpb_core::tree::TreeKind;
use secpb_sim::config::SystemConfig;
use secpb_workloads::WorkloadProfile;

fn main() {
    let instructions = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_INSTRUCTIONS);
    eprintln!("Section VI-B IPC validation @ {instructions} instructions");
    let mut rows = Vec::new();
    for name in WorkloadProfile::SPEC_NAMES {
        let profile = WorkloadProfile::named(name).expect("known");
        let run = run_benchmark(
            &profile,
            Scheme::NoGap,
            SystemConfig::default(),
            TreeKind::Monolithic,
            instructions,
        );
        let (est, measured, ratio) = validate(&run);
        rows.push(vec![
            name.to_owned(),
            format!("{:.1}", run.ppti()),
            format!("{:.1}", run.nwpe()),
            format!("{est:.3}"),
            format!("{measured:.3}"),
            format!("{ratio:.2}"),
        ]);
    }
    println!("Analytical IPC model vs simulator (NoGap):");
    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "ppti",
                "nwpe",
                "est ipc",
                "measured ipc",
                "ratio"
            ],
            &rows
        )
    );
    println!("paper anchor: gamess est 0.11, measured 0.13 (ratio 1.18);");
    println!("measured should exceed the estimate slightly (MAC/BMT overlap).");
}
