//! Developer tool: detailed counters, cycle breakdown, and span phases
//! for one benchmark across every scheme (including the bbb/SP
//! baselines), with optional Chrome-trace and JSON stats export.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p secpb-bench --bin debug_one -- \
//!     [bench] [instructions] [--trace-out trace.json] [--stats-json stats.json]
//! ```
//!
//! `--trace-out` writes a Chrome trace-event document (load it at
//! `chrome://tracing` or in Perfetto); one trace process per scheme, one
//! thread per span phase.  `--stats-json` writes every scheme's cycles,
//! cycle breakdown, counters, and histograms as one JSON document.

use secpb_bench::experiments::{run_benchmark_instrumented, SEED};
use secpb_bench::report::render_table;
use secpb_core::scheme::Scheme;
use secpb_core::tree::TreeKind;
use secpb_sim::config::SystemConfig;
use secpb_sim::json::Json;
use secpb_sim::tracer::{merge_chrome_traces, Phase};
use secpb_workloads::WorkloadProfile;

/// Span-capture buffer per scheme; plenty for the default trace length.
const CAPTURE: usize = 1 << 20;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| panic!("{flag} needs a path"))
            .clone()
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let positional: Vec<&String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .take(2)
        .collect();
    let name = positional
        .first()
        .map_or("povray", |s| s.as_str())
        .to_owned();
    let instructions: u64 = positional
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300_000);
    let trace_out = flag_value(&args, "--trace-out");
    let stats_json = flag_value(&args, "--stats-json");
    let profile = WorkloadProfile::named(&name).expect("known benchmark");
    let _ = SEED;

    let mut traces = Vec::new();
    let mut scheme_dumps = Vec::new();
    for (pid, scheme) in Scheme::ALL.into_iter().enumerate() {
        let (r, sys) = run_benchmark_instrumented(
            &profile,
            scheme,
            SystemConfig::default(),
            TreeKind::Monolithic,
            instructions,
            CAPTURE,
        );
        println!(
            "{:>6}: cycles={:>9} ipc={:.3} ppti={:.1} nwpe={:.1} allocs={} macs={} full_stall={} sb_stall={} ctr_miss={}",
            scheme.name(),
            r.cycles,
            r.ipc(),
            r.ppti(),
            r.nwpe(),
            r.stats.get("secpb.allocations"),
            r.stats.get("crypto.macs"),
            r.stats.get("secpb.full_stall_cycles"),
            r.stats.get("core.sb_stall_cycles"),
            r.stats.get("metadata.counter_misses"),
        );

        // Cycle breakdown: every measured cycle attributed to one bucket.
        let rows: Vec<Vec<String>> = r
            .breakdown
            .entries()
            .iter()
            .map(|(cat, v)| {
                vec![
                    (*cat).to_owned(),
                    v.to_string(),
                    format!("{:.1}%", 100.0 * *v as f64 / r.cycles.max(1) as f64),
                ]
            })
            .collect();
        println!("{}", render_table(&["category", "cycles", "share"], &rows));

        // Span phases (overlapping work, so shares don't sum to 100%).
        let tracer = sys.tracer();
        let rows: Vec<Vec<String>> = Phase::ALL
            .into_iter()
            .filter(|&p| tracer.count(p) > 0)
            .map(|p| {
                vec![
                    p.name().to_owned(),
                    tracer.count(p).to_string(),
                    tracer.cycles(p).to_string(),
                ]
            })
            .collect();
        if !rows.is_empty() {
            println!("{}", render_table(&["phase", "spans", "cycles"], &rows));
        }
        if tracer.dropped() > 0 {
            eprintln!(
                "  ({} spans dropped from the capture buffer)",
                tracer.dropped()
            );
        }

        if trace_out.is_some() {
            traces.push(tracer.chrome_trace(scheme.name(), pid as u32 + 1));
        }
        if stats_json.is_some() {
            scheme_dumps.push(r.to_json());
        }
    }

    if let Some(path) = trace_out {
        std::fs::write(&path, merge_chrome_traces(traces).to_pretty()).expect("write trace");
        eprintln!("wrote {path}");
    }
    if let Some(path) = stats_json {
        let doc = Json::obj()
            .field("benchmark", name.as_str())
            .field("instructions", instructions)
            .field("schemes", Json::Arr(scheme_dumps));
        std::fs::write(&path, doc.to_pretty()).expect("write stats");
        eprintln!("wrote {path}");
    }
}
