//! Developer tool: detailed counters for one benchmark across schemes.
//!
//! Usage: `cargo run --release -p secpb-bench --bin debug_one [bench] [instructions]`

use secpb_bench::experiments::{run_benchmark, SEED};
use secpb_core::scheme::Scheme;
use secpb_core::tree::TreeKind;
use secpb_sim::config::SystemConfig;
use secpb_workloads::WorkloadProfile;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "povray".into());
    let instructions: u64 =
        std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(300_000);
    let profile = WorkloadProfile::named(&name).expect("known benchmark");
    let _ = SEED;
    for scheme in Scheme::ALL {
        let r = run_benchmark(&profile, scheme, SystemConfig::default(), TreeKind::Monolithic, instructions);
        println!(
            "{:>6}: cycles={:>9} ipc={:.3} ppti={:.1} nwpe={:.1} allocs={} macs={} full_stall={} sb_stall={} ctr_miss={}",
            scheme.name(),
            r.cycles,
            r.ipc(),
            r.ppti(),
            r.nwpe(),
            r.stats.get("secpb.allocations"),
            r.stats.get("crypto.macs"),
            r.stats.get("secpb.full_stall_cycles"),
            r.stats.get("core.sb_stall_cycles"),
            r.stats.get("metadata.counter_misses"),
        );
    }
}
