//! Characterizes the 18 synthetic workloads: PPTI, reuse-distance
//! derived coalescing predictions per SecPB size, and the measured NWPE
//! from an actual COBCM run — showing that the analytical reuse profile
//! predicts the simulator's coalescing.
//!
//! Usage: `cargo run --release -p secpb-bench --bin characterize [instructions] [--jobs N]`

use secpb_bench::args::RunnerArgs;
use secpb_bench::experiments::{run_benchmark, DEFAULT_INSTRUCTIONS};
use secpb_bench::report::render_table;
use secpb_core::scheme::Scheme;
use secpb_core::tree::TreeKind;
use secpb_sim::config::SystemConfig;
use secpb_sim::pool;
use secpb_workloads::characterize::ReuseProfile;
use secpb_workloads::{TraceGenerator, WorkloadProfile};

fn main() {
    let args = RunnerArgs::from_env(DEFAULT_INSTRUCTIONS / 5);
    let instructions = args.instructions;
    eprintln!(
        "characterizing @ {instructions} instructions/benchmark, {} jobs",
        args.jobs
    );
    // Each workload's (reuse analysis + COBCM run) is an independent cell.
    let names = WorkloadProfile::SPEC_NAMES;
    let rows = pool::run_indexed(names.len(), args.jobs, |i| {
        let name = names[i];
        let profile = WorkloadProfile::named(name).expect("known");
        let trace = TraceGenerator::new(profile.clone(), 1).generate(instructions);
        let reuse = ReuseProfile::of(&trace, &ReuseProfile::SECPB_BUCKETS);
        let run = run_benchmark(
            &profile,
            Scheme::Cobcm,
            SystemConfig::default(),
            TreeKind::Monolithic,
            instructions,
        );
        vec![
            name.to_owned(),
            format!("{:.1}", run.ppti()),
            format!("{:.0}%", reuse.hit_fraction_within(8) * 100.0),
            format!("{:.0}%", reuse.hit_fraction_within(32) * 100.0),
            format!("{:.0}%", reuse.hit_fraction_within(256) * 100.0),
            format!("{:.1}", reuse.predicted_nwpe(32)),
            format!("{:.1}", run.nwpe()),
        ]
    });
    println!("workload characterization (reuse distances of the store stream):");
    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "ppti",
                "hit<=8",
                "hit<=32",
                "hit<=256",
                "nwpe pred@32",
                "nwpe sim@32"
            ],
            &rows
        )
    );
    println!("prediction uses ideal residency; the simulator's watermark draining");
    println!("shortens effective residency, so simulated NWPE trails the prediction.");
}
