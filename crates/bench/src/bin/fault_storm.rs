//! Crash-storm fault-injection gate (CI + acceptance sweep).
//!
//! Sweeps crash points across all 8 schemes × both metadata engines ×
//! both drain policies, in three passes:
//!
//! 1. **storm** — crash every N stores with a fully provisioned battery,
//!    injecting seed-derived bit flips into ciphertexts, counters, MACs,
//!    and the BMT root at every crash point; every flip must be detected.
//! 2. **brown-out** — the same storm under a battery budgeted at a
//!    fraction of the provisioned worst case; drained + lost must
//!    reconcile exactly against pre-crash occupancy and lost blocks must
//!    be nonzero overall.
//! 3. **mid-drain** — a single crash fired while background drains are
//!    in flight (inside `run_storm`'s sweep).
//!
//! Exits nonzero on any silent corruption, anomaly, accounting mismatch,
//! or panic.  Usage: `fault_storm [--quick] [--seed N] [--json]`.

use secpb_bench::storm::{run_storm, StormConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().expect("--seed takes a number"))
        .unwrap_or(0x5EC9_B0A2);

    let base = if quick {
        StormConfig::quick(seed)
    } else {
        StormConfig::full(seed)
    };

    let mut failures = 0u32;
    let mut passes = Vec::new();

    // Pass 1: fully provisioned battery, flip injection at every crash.
    let storm = run_storm(&base);
    passes.push(("storm", storm));

    // Pass 2: brown-out battery at 25% of the provisioned worst case.
    let brown = run_storm(&base.clone().with_brown_out(0.25));
    if brown.total_lost() == 0 {
        eprintln!("FAIL brown-out: no entries lost under a 25% battery budget");
        failures += 1;
    }
    passes.push(("brown-out", brown));

    for (name, report) in &passes {
        if json {
            println!("{}", report.to_json().to_pretty());
        } else {
            println!("=== {name} pass ===");
            print!("{}", report.render_text());
        }
        if !report.passed() {
            failures += 1;
        }
    }

    let crashes: u64 = passes.iter().map(|(_, r)| r.total_crashes()).sum();
    let flips: u64 = passes.iter().map(|(_, r)| r.total_flips()).sum();
    let lost: u64 = passes.iter().map(|(_, r)| r.total_lost()).sum();
    if failures > 0 {
        eprintln!("fault storm: FAILED ({failures} failing pass(es))");
        std::process::exit(1);
    }
    println!(
        "fault storm: PASS — {crashes} crashes, {flips} flips all detected, \
         {lost} brown-out losses all accounted"
    );
}
