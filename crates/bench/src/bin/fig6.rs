//! Regenerates **Figure 6**: per-benchmark execution time of every SecPB
//! scheme with a 32-entry SecPB, normalized to the bbb baseline.
//!
//! Usage: `cargo run --release -p secpb-bench --bin fig6 [instructions] [--json out.json]`

use secpb_bench::experiments::{fig6, DEFAULT_INSTRUCTIONS};
use secpb_bench::report::render_table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let instructions = args
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_INSTRUCTIONS);
    eprintln!("Figure 6 @ {instructions} instructions/benchmark");
    let study = fig6(instructions);

    let mut headers = vec!["benchmark", "ppti", "nwpe"];
    headers.extend(study.schemes.iter().map(|s| s.name()));
    let mut rows = Vec::new();
    for row in &study.rows {
        let mut cells = vec![
            row.name.clone(),
            format!("{:.1}", row.ppti),
            format!("{:.1}", row.nwpe),
        ];
        cells.extend(row.slowdowns.iter().map(|(_, v)| format!("{v:.3}")));
        rows.push(cells);
    }
    let mut mean = vec!["geomean".to_owned(), String::new(), String::new()];
    mean.extend(study.averages.iter().map(|(_, v)| format!("{v:.3}")));
    rows.push(mean);
    println!("FIGURE 6: execution time normalized to bbb (32-entry SecPB)");
    println!("{}", render_table(&headers, &rows));

    if let Some(pos) = args.iter().position(|a| a == "--json") {
        let path = args.get(pos + 1).expect("--json needs a path");
        std::fs::write(path, study.to_json().to_pretty()).expect("write json");
        eprintln!("wrote {path}");
    }
}
