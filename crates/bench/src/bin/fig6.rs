//! Regenerates **Figure 6**: per-benchmark execution time of every SecPB
//! scheme with a 32-entry SecPB, normalized to the bbb baseline.
//!
//! Usage: `cargo run --release -p secpb-bench --bin fig6 [instructions] [--jobs N] [--json out.json]`

use secpb_bench::args::RunnerArgs;
use secpb_bench::experiments::{fig6, DEFAULT_INSTRUCTIONS};
use secpb_bench::report::render_table;

fn main() {
    let args = RunnerArgs::from_env(DEFAULT_INSTRUCTIONS);
    let instructions = args.instructions;
    eprintln!(
        "Figure 6 @ {instructions} instructions/benchmark, {} jobs",
        args.jobs
    );
    let study = fig6(instructions, args.jobs);

    let mut headers = vec!["benchmark", "ppti", "nwpe"];
    headers.extend(study.schemes.iter().map(|s| s.name()));
    let mut rows = Vec::new();
    for row in &study.rows {
        let mut cells = vec![
            row.name.clone(),
            format!("{:.1}", row.ppti),
            format!("{:.1}", row.nwpe),
        ];
        cells.extend(row.slowdowns.iter().map(|(_, v)| format!("{v:.3}")));
        rows.push(cells);
    }
    let mut mean = vec!["geomean".to_owned(), String::new(), String::new()];
    mean.extend(study.averages.iter().map(|(_, v)| format!("{v:.3}")));
    rows.push(mean);
    println!("FIGURE 6: execution time normalized to bbb (32-entry SecPB)");
    println!("{}", render_table(&headers, &rows));

    args.write_json(&study.to_json());
}
