//! Regenerates **Figure 9**: SecPB's CM model paired with the DBMF and
//! SBMF Bonsai-Merkle-Forest height-reduction mechanisms, against the SP
//! baseline with the same mechanisms.  All normalized to bbb.
//!
//! Usage: `cargo run --release -p secpb-bench --bin fig9 [instructions] [--jobs N] [--json out.json]`

use secpb_bench::args::RunnerArgs;
use secpb_bench::experiments::{fig9, DEFAULT_INSTRUCTIONS};
use secpb_bench::report::{bar_chart, render_table, slowdown_label};

fn main() {
    let args = RunnerArgs::from_env(DEFAULT_INSTRUCTIONS);
    let instructions = args.instructions;
    eprintln!(
        "Figure 9 @ {instructions} instructions/benchmark, {} jobs",
        args.jobs
    );
    let study = fig9(instructions, args.jobs);

    let mut headers: Vec<&str> = vec!["benchmark"];
    headers.extend(study.variants.iter().map(String::as_str));
    let mut rows = Vec::new();
    for (name, vals) in &study.rows {
        let mut cells = vec![name.clone()];
        cells.extend(vals.iter().map(|v| format!("{v:.3}")));
        rows.push(cells);
    }
    let mut mean = vec!["geomean".to_owned()];
    mean.extend(study.averages.iter().map(|v| slowdown_label(*v)));
    rows.push(mean);
    println!("FIGURE 9: BMF study, execution time normalized to bbb");
    println!("{}", render_table(&headers, &rows));
    let bars: Vec<(String, f64)> = study
        .variants
        .iter()
        .cloned()
        .zip(study.averages.iter().copied())
        .collect();
    println!("geomean normalized execution time:");
    println!("{}", bar_chart(&bars, 48));
    println!("paper anchors: sp_dbmf 88.9%, sp_sbmf 3.43x, cm_dbmf 33.3%, cm_sbmf 56.6%");
    println!("expected shape: cm_dbmf < cm_sbmf < sp_dbmf < sp_sbmf");

    args.write_json(&study.to_json());
}
