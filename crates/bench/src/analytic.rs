//! The paper's analytical IPC model (Section VI-B).
//!
//! For NoGap the paper validates its simulator with a back-of-envelope
//! model: with PPTI persists per kilo-instruction and NWPE writes per
//! entry, every `NWPE` writes trigger one 8-level BMT walk
//! (`8 × 40 = 320` cycles) and every write costs one 40-cycle MAC, so
//!
//! ```text
//! IPC ≈ 1000 / (320 · PPTI / NWPE + 40 · PPTI)
//! ```
//!
//! (gamess: `1000 / (320 · 47.4/2.1 + 40 · 47.4) = 0.11`, against a
//! measured `0.13`).  This module reproduces the estimate and compares it
//! against the simulator's measured IPC, which is the `validate_ipc`
//! binary's job.

use secpb_core::metrics::RunResult;

/// The paper's analytical IPC estimate for the NoGap scheme.
///
/// # Panics
///
/// Panics if `nwpe` is not positive.
pub fn nogap_ipc_estimate(ppti: f64, nwpe: f64, bmt_walk_cycles: f64, mac_cycles: f64) -> f64 {
    assert!(nwpe > 0.0, "NWPE must be positive");
    1000.0 / (bmt_walk_cycles * ppti / nwpe + mac_cycles * ppti)
}

/// The default constants from Table I: an 8-level walk at 40 cycles per
/// hash, and a 40-cycle MAC.
pub fn nogap_ipc_estimate_default(ppti: f64, nwpe: f64) -> f64 {
    nogap_ipc_estimate(ppti, nwpe, 320.0, 40.0)
}

/// Compares a measured NoGap run against the analytical estimate,
/// returning `(estimated_ipc, measured_ipc, ratio)`.
pub fn validate(run: &RunResult) -> (f64, f64, f64) {
    let est = nogap_ipc_estimate_default(run.ppti(), run.nwpe().max(1.0));
    let measured = run.ipc();
    (est, measured, measured / est)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_gamess_point() {
        // PPTI 47.4, NWPE 2.1 → IPC ≈ 0.11 (Section VI-B).
        let ipc = nogap_ipc_estimate_default(47.4, 2.1);
        assert!((ipc - 0.11).abs() < 0.005, "got {ipc}");
    }

    #[test]
    fn fewer_persists_higher_ipc() {
        assert!(nogap_ipc_estimate_default(10.0, 2.0) > nogap_ipc_estimate_default(20.0, 2.0));
    }

    #[test]
    fn more_coalescing_higher_ipc() {
        assert!(nogap_ipc_estimate_default(20.0, 8.0) > nogap_ipc_estimate_default(20.0, 2.0));
    }

    #[test]
    #[should_panic(expected = "NWPE")]
    fn zero_nwpe_rejected() {
        nogap_ipc_estimate_default(10.0, 0.0);
    }
}
