//! Plain-text table rendering for the experiment binaries.
//!
//! Every regenerator prints rows shaped like the paper's tables; these
//! helpers keep the columns aligned without pulling in a table crate.

use std::fmt::Write as _;

/// Renders a table with a header row and aligned columns.
///
/// # Example
///
/// ```
/// use secpb_bench::report::render_table;
///
/// let t = render_table(
///     &["model", "slowdown"],
///     &[vec!["cobcm".into(), "1.3%".into()], vec!["nogap".into(), "118.4%".into()]],
/// );
/// assert!(t.contains("cobcm"));
/// assert!(t.lines().count() >= 4);
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged row: {row:?}");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let rule: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    let render_row = |cells: &[String]| -> String {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!(" {c:<w$} "))
            .collect::<Vec<_>>()
            .join("|")
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    let _ = writeln!(out, "{}", render_row(&header_cells));
    let _ = writeln!(out, "{rule}");
    for row in rows {
        let _ = writeln!(out, "{}", render_row(row));
    }
    out
}

/// Formats a slowdown ratio as the paper's overhead percentage
/// (1.713 → `"71.3%"`).
pub fn overhead_pct(slowdown: f64) -> String {
    format!("{:.1}%", (slowdown - 1.0) * 100.0)
}

/// Formats a slowdown as a multiplier when large (18.2×) or a percentage
/// when small, matching how the paper mixes both.
pub fn slowdown_label(slowdown: f64) -> String {
    if slowdown >= 3.0 {
        format!("{slowdown:.1}x")
    } else {
        overhead_pct(slowdown)
    }
}

/// Formats a battery volume in mm³ with sensible precision.
pub fn mm3(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

/// Renders a horizontal ASCII bar chart — the terminal rendition of the
/// paper's figures.
///
/// Bars scale to the largest value; each row shows the label, the bar,
/// and the numeric value.
///
/// # Example
///
/// ```
/// use secpb_bench::report::bar_chart;
///
/// let chart = bar_chart(&[("cobcm".into(), 1.013), ("nogap".into(), 2.184)], 40);
/// assert!(chart.contains("nogap"));
/// ```
pub fn bar_chart(rows: &[(String, f64)], width: usize) -> String {
    let max = rows.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in rows {
        let bar_len = if max > 0.0 {
            ((value / max) * width as f64).round() as usize
        } else {
            0
        };
        let _ = writeln!(
            out,
            " {label:<label_w$} |{} {value:.3}",
            "#".repeat(bar_len)
        );
    }
    out
}

/// Renders a multi-series chart (one bar group per label), used for the
/// size sweeps where each benchmark has one value per SecPB size.
pub fn grouped_chart(series: &[&str], rows: &[(String, Vec<f64>)], width: usize) -> String {
    let max = rows
        .iter()
        .flat_map(|(_, vs)| vs.iter().copied())
        .fold(0.0f64, f64::max);
    let label_w = rows
        .iter()
        .map(|(l, _)| l.len())
        .chain(series.iter().map(|s| s.len()))
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for (label, values) in rows {
        let _ = writeln!(out, " {label}:");
        for (name, value) in series.iter().zip(values) {
            let bar_len = if max > 0.0 {
                ((value / max) * width as f64).round() as usize
            } else {
                0
            };
            let _ = writeln!(
                out,
                "   {name:<label_w$} |{} {value:.3}",
                "#".repeat(bar_len)
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["a", "long_header"],
            &[
                vec!["xxxxx".into(), "1".into()],
                vec!["y".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines the same width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    #[should_panic(expected = "ragged row")]
    fn ragged_rows_rejected() {
        render_table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn overhead_formatting() {
        assert_eq!(overhead_pct(1.013), "1.3%");
        assert_eq!(overhead_pct(2.184), "118.4%");
        assert_eq!(slowdown_label(18.2), "18.2x");
        assert_eq!(slowdown_label(1.148), "14.8%");
    }

    #[test]
    fn mm3_precision() {
        assert_eq!(mm3(3706.0), "3706");
        assert_eq!(mm3(4.89), "4.89");
        assert_eq!(mm3(0.049), "0.049");
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let chart = bar_chart(&[("a".into(), 1.0), ("b".into(), 2.0)], 10);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].matches('#').count(), 5);
        assert_eq!(lines[1].matches('#').count(), 10);
        assert!(lines[1].contains("2.000"));
    }

    #[test]
    fn bar_chart_handles_zero_and_empty() {
        let chart = bar_chart(&[("a".into(), 0.0)], 10);
        assert!(!chart.contains('#'));
        assert_eq!(bar_chart(&[], 10), "");
    }

    #[test]
    fn grouped_chart_lists_series_per_row() {
        let chart = grouped_chart(
            &["8e", "32e"],
            &[
                ("gcc".into(), vec![2.0, 1.0]),
                ("mcf".into(), vec![1.0, 1.0]),
            ],
            8,
        );
        assert!(chart.contains("gcc:"));
        assert!(chart.contains("8e"));
        assert_eq!(chart.lines().count(), 6);
    }
}
