//! Shared command-line parsing for the table/figure binaries.
//!
//! Every runner accepts the same surface:
//!
//! ```text
//! <bin> [instructions] [--jobs N] [--json out.json]
//! ```
//!
//! * `instructions` — positional measurement budget per benchmark,
//! * `--jobs N` — worker threads for the experiment grid (default: the
//!   machine's available parallelism; results are byte-identical for any
//!   value, see `experiments::run_grid`),
//! * `--json PATH` — also dump the machine-readable payload to `PATH`.

use secpb_sim::pool;

/// Parsed arguments common to all experiment runners.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunnerArgs {
    /// Measurement-region instruction budget per benchmark.
    pub instructions: u64,
    /// Worker threads for the experiment grid.
    pub jobs: usize,
    /// Optional JSON output path (`--json PATH`).
    pub json: Option<String>,
}

impl RunnerArgs {
    /// Parses `std::env::args()` with the given default instruction
    /// budget, exiting with a usage message on malformed input.
    pub fn from_env(default_instructions: u64) -> RunnerArgs {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match RunnerArgs::parse(&args, default_instructions) {
            Ok(parsed) => parsed,
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!("usage: <bin> [instructions] [--jobs N] [--json out.json]");
                std::process::exit(2);
            }
        }
    }

    /// Parses an argument slice (testable core of [`RunnerArgs::from_env`]).
    pub fn parse(args: &[String], default_instructions: u64) -> Result<RunnerArgs, String> {
        let mut parsed = RunnerArgs {
            instructions: default_instructions,
            jobs: pool::default_jobs(),
            json: None,
        };
        let mut it = args.iter();
        let mut saw_positional = false;
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--jobs" => {
                    let v = it.next().ok_or("--jobs needs a count")?;
                    parsed.jobs = v
                        .parse::<usize>()
                        .map_err(|_| format!("bad --jobs value {v:?}"))?
                        .max(1);
                }
                "--json" => {
                    let v = it.next().ok_or("--json needs a path")?;
                    parsed.json = Some(v.clone());
                }
                other if !saw_positional && !other.starts_with("--") => {
                    parsed.instructions = other
                        .parse()
                        .map_err(|_| format!("bad instruction count {other:?}"))?;
                    saw_positional = true;
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        Ok(parsed)
    }

    /// Writes the `--json` payload if one was requested.
    pub fn write_json(&self, payload: &secpb_sim::json::Json) {
        if let Some(path) = &self.json {
            std::fs::write(path, payload.to_pretty()).expect("write json");
            eprintln!("wrote {path}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_apply() {
        let a = RunnerArgs::parse(&[], 1_000_000).unwrap();
        assert_eq!(a.instructions, 1_000_000);
        assert_eq!(a.jobs, pool::default_jobs());
        assert_eq!(a.json, None);
    }

    #[test]
    fn full_surface_parses() {
        let a =
            RunnerArgs::parse(&strs(&["250000", "--jobs", "4", "--json", "o.json"]), 7).unwrap();
        assert_eq!(a.instructions, 250_000);
        assert_eq!(a.jobs, 4);
        assert_eq!(a.json.as_deref(), Some("o.json"));
    }

    #[test]
    fn flags_may_precede_the_positional() {
        let a = RunnerArgs::parse(&strs(&["--jobs", "2", "123"]), 7).unwrap();
        assert_eq!(a.instructions, 123);
        assert_eq!(a.jobs, 2);
    }

    #[test]
    fn jobs_zero_clamps_to_one() {
        let a = RunnerArgs::parse(&strs(&["--jobs", "0"]), 7).unwrap();
        assert_eq!(a.jobs, 1);
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(RunnerArgs::parse(&strs(&["abc"]), 7).is_err());
        assert!(RunnerArgs::parse(&strs(&["--jobs"]), 7).is_err());
        assert!(RunnerArgs::parse(&strs(&["--jobs", "x"]), 7).is_err());
        assert!(RunnerArgs::parse(&strs(&["1", "2"]), 7).is_err());
        assert!(RunnerArgs::parse(&strs(&["--frobnicate"]), 7).is_err());
    }
}
