//! # secpb-bench — the experiment harness
//!
//! One regenerator per table and figure of the paper's evaluation
//! (Section VI):
//!
//! | Artifact | Module entry point | Binary |
//! |----------|--------------------|--------|
//! | Table IV — average slowdowns, 32-entry SecPB | [`experiments::table4`] | `table4` |
//! | Figure 6 — per-benchmark execution time | [`experiments::fig6`] | `fig6` |
//! | Table V — battery sizes per scheme | [`experiments::table5`] | `table5` |
//! | Table VI — battery vs SecPB size | [`experiments::table6`] | `table6` |
//! | Figure 7 — execution time vs SecPB size (CM) | [`experiments::fig7`] | `fig7` |
//! | Figure 8 — BMT root updates, normalized to sec_wt | [`experiments::fig8`] | `fig8` |
//! | Figure 9 — BMF study (DBMF/SBMF) | [`experiments::fig9`] | `fig9` |
//! | §VI-B IPC validation (gamess, NoGap) | [`analytic`] | `validate_ipc` |
//! | Recovery-latency vs write-amp curve | [`recovery_sweep`] | `secpb recover-sweep` |
//!
//! The [`report`] module renders results as aligned text tables; each
//! binary also dumps machine-readable JSON next to its table when asked.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod args;
pub mod experiments;
pub mod micro;
pub mod recovery_sweep;
pub mod report;
pub mod serve;
pub mod soak;
pub mod storm;
pub mod watch;
