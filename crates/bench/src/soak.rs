//! Long-horizon soak storms over the fault-tolerant serve plane.
//!
//! A soak run drives the sharded multi-tenant service through a
//! seed-driven schedule of injected mid-epoch shard crashes and
//! brown-outs, then proves **zero silent corruption** two independent
//! ways:
//!
//! 1. **Serve-plane equivalence** — the faulted run's per-shard digests
//!    ([`ShardOutcome::digest`]) must be byte-identical to an
//!    uninterrupted reference run of the same configuration with
//!    crashes disabled (brown-outs stay on in both: shedding is
//!    deterministic and crash-invariant, which the soak also asserts
//!    via shed-count equality).
//! 2. **Restart-storm equivalence** — a single [`SecureSystem`] is run
//!    epoch-by-epoch under a seeded schedule of checkpoints and full
//!    process restarts (fresh system, [`SecureSystem::restore_bytes`],
//!    then journal replay); its final checkpoint bytes must equal a
//!    straight-through run's, byte for byte.
//!
//! The run is also coupled to the [`StartGap`] wear model: every store
//! the faulted service replayed becomes one wear-leveled line write, so
//! a soak reports how much physical movement the storm's write volume
//! implies.
//!
//! [`ShardOutcome::digest`]: crate::serve::ShardOutcome::digest

use std::fmt::Write as _;

use secpb_core::scheme::Scheme;
use secpb_core::system::SecureSystem;
use secpb_core::tree::TreeKind;
use secpb_energy::drain::secpb_drain_energy;
use secpb_mem::wear::StartGap;
use secpb_sim::config::SystemConfig;
use secpb_sim::rng::Rng;
use secpb_sim::trace::TraceItem;
use secpb_workloads::{TraceGenerator, WorkloadProfile};

use crate::serve::{
    run_serve, PrivilegeToken, QosClass, ServeConfig, ServeError, ServeFaultPlan, TenantSpec,
};
use crate::storm::energy_scheme;

/// Soak configuration: a serve shape plus the fault and restart
/// schedules layered on top.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// The service under storm — including its
    /// [`ServeConfig::faults`] plan and checkpoint cadence.
    pub serve: ServeConfig,
    /// Epochs of the single-system restart storm (phase 2).
    pub restart_epochs: usize,
    /// Items per epoch in the restart storm.
    pub restart_epoch_len: usize,
    /// Master seed for the restart/wear schedules (the serve fault plan
    /// carries its own seed).
    pub seed: u64,
    /// The run fails unless at least this many shard crashes actually
    /// fired — a soak that never faults proves nothing.
    pub min_crashes: u64,
    /// Wear-model region size in lines.
    pub wear_lines: u64,
    /// Start-Gap period: one gap move per `psi` writes.
    pub wear_psi: u32,
}

impl SoakConfig {
    /// The storm-shaped service both presets share: `tenants` synthetic
    /// tenants with cycling QoS classes over the SPEC suite, crashes
    /// every `crash_every` stores per shard, and every third epoch
    /// browned out to a budget that sheds bronze (but not silver).
    fn serve_base(seed: u64, tenants: usize, instructions: u64, crash_every: u64) -> ServeConfig {
        let mut cfg = ServeConfig::new(2);
        cfg.epoch_len = 256;
        cfg.telemetry = true;
        cfg.checkpoint_every = 2;
        cfg.seed = seed;
        let suite = WorkloadProfile::spec_suite();
        let classes = [QosClass::Gold, QosClass::Silver, QosClass::Bronze];
        let token = PrivilegeToken::acquire();
        for i in 0..tenants {
            let profile = suite[i % suite.len()].clone();
            let name = format!("s{i}-{}", profile.name);
            cfg.tenants
                .push(TenantSpec::synthetic(&name, profile, instructions));
            cfg.set_qos(&name, classes[i % classes.len()], &token)
                .expect("tenant just added");
        }
        // A budget funding just over half a full drain: bronze sheds,
        // gold and silver keep their slots.
        let budget = 0.6 * secpb_drain_energy(energy_scheme(cfg.scheme), cfg.sys_cfg.secpb.entries);
        cfg.faults = ServeFaultPlan::storm(seed, crash_every, 3, budget);
        cfg
    }

    /// The CI smoke shape: small tenants, a handful of crashes, a short
    /// restart storm.  Finishes in seconds.
    pub fn quick(seed: u64) -> Self {
        SoakConfig {
            serve: SoakConfig::serve_base(seed, 4, 6_000, 40),
            restart_epochs: 6,
            restart_epoch_len: 400,
            seed,
            min_crashes: 4,
            wear_lines: 1 << 10,
            wear_psi: 64,
        }
    }

    /// The long-horizon shape: six fat tenants and a crash schedule
    /// dense enough that at least 100 mid-epoch shard crashes fire.
    pub fn full(seed: u64) -> Self {
        SoakConfig {
            serve: SoakConfig::serve_base(seed, 6, 150_000, 64),
            restart_epochs: 24,
            restart_epoch_len: 1_200,
            seed,
            min_crashes: 100,
            wear_lines: 1 << 14,
            wear_psi: 128,
        }
    }
}

/// Everything one soak run measured and verified.
#[derive(Debug)]
pub struct SoakOutcome {
    /// Mid-epoch shard crashes injected and recovered (pool counter).
    pub crashes: u64,
    /// Shard restores from epoch checkpoints.
    pub restores: u64,
    /// Tenant chunks replayed after those restores.
    pub replayed: u64,
    /// Epoch-parts deferred by brown-outs (faulted run).
    pub shed: u64,
    /// Whether every populated shard's digest matched the uninterrupted
    /// reference run.
    pub digests_match: bool,
    /// Whether the faulted run shed exactly as much as the reference
    /// (shedding must be crash-invariant).
    pub shed_match: bool,
    /// Model-invariant anomalies across both runs (must be 0).
    pub anomalies: u64,
    /// QoS violations across both runs (must be 0).
    pub qos_violations: u64,
    /// Whether every shard's final crash-recovery sweep was consistent.
    pub consistent: bool,
    /// Process restarts performed by the restart storm.
    pub restarts: u64,
    /// Checkpoints taken by the restart storm.
    pub checkpoints: u64,
    /// Whether the restart storm's final state was byte-identical to
    /// the straight-through reference.
    pub restart_equivalent: bool,
    /// Line writes fed to the wear model (one per store replayed).
    pub wear_writes: u64,
    /// Start-Gap line remappings those writes caused.
    pub wear_gap_moves: u64,
    /// The crash floor the run was required to clear.
    pub min_crashes: u64,
}

impl SoakOutcome {
    /// The soak verdict: enough crashes fired, nothing corrupted,
    /// nothing dropped, every equivalence held.
    pub fn converged(&self) -> bool {
        self.crashes >= self.min_crashes
            && self.digests_match
            && self.shed_match
            && self.restart_equivalent
            && self.consistent
            && self.anomalies == 0
            && self.qos_violations == 0
    }

    /// Human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "soak crashes={} (floor {}) restores={} replayed={} shed={}",
            self.crashes, self.min_crashes, self.restores, self.replayed, self.shed
        );
        let _ = writeln!(
            out,
            "serve digests     {}",
            if self.digests_match {
                "match crash-free reference"
            } else {
                "DIVERGED"
            }
        );
        let _ = writeln!(
            out,
            "shed counts       {}",
            if self.shed_match {
                "crash-invariant"
            } else {
                "DIVERGED"
            }
        );
        let _ = writeln!(
            out,
            "restart storm     restarts={} checkpoints={} {}",
            self.restarts,
            self.checkpoints,
            if self.restart_equivalent {
                "byte-identical"
            } else {
                "DIVERGED"
            }
        );
        let _ = writeln!(
            out,
            "wear              writes={} gap_moves={}",
            self.wear_writes, self.wear_gap_moves
        );
        let _ = writeln!(out, "anomalies         {}", self.anomalies);
        let _ = writeln!(out, "qos violations    {}", self.qos_violations);
        let _ = writeln!(out, "consistent        {}", self.consistent);
        let _ = writeln!(out, "converged         {}", self.converged());
        out
    }
}

/// Generates the restart storm's epoch slices (over-generating because
/// the trace generator budgets instructions, not items).
fn storm_epochs(seed: u64, n: usize, len: usize) -> Vec<Vec<TraceItem>> {
    let profile = WorkloadProfile::named("milc").expect("known benchmark");
    let items = TraceGenerator::new(profile, seed).generate((n * len * 16) as u64);
    assert!(items.len() >= n * len, "soak trace too short");
    items[..n * len]
        .chunks(len)
        .map(<[TraceItem]>::to_vec)
        .collect()
}

/// Phase 2: the single-system restart storm.  Returns
/// `(restarts, checkpoints, equivalent)`.
fn restart_storm(cfg: &SoakConfig) -> (u64, u64, bool) {
    let build = || {
        SecureSystem::with_tree(
            SystemConfig::default(),
            Scheme::Cobcm,
            TreeKind::Dbmf,
            cfg.seed,
        )
    };
    let epochs = storm_epochs(cfg.seed, cfg.restart_epochs, cfg.restart_epoch_len);

    // Straight-through reference.
    let mut reference = build();
    for epoch in &epochs {
        reference.run_trace(epoch.iter().copied());
        reference.sync_metadata();
    }
    let reference = reference.checkpoint_bytes();

    // The storm: seeded checkpoints and restarts.  A restart tears the
    // system down completely, restores the last checkpoint into a fresh
    // build, and replays the journaled epochs — the serve plane's
    // recovery protocol, exercised across whole process lifetimes.
    let mut rng = Rng::seed_from(cfg.seed ^ 0x50AC_50AC);
    let mut sys = build();
    let mut checkpoint = sys.checkpoint_bytes();
    let mut journal: Vec<usize> = Vec::new();
    let mut restarts = 0u64;
    let mut checkpoints = 0u64;
    for (i, epoch) in epochs.iter().enumerate() {
        sys.run_trace(epoch.iter().copied());
        sys.sync_metadata();
        journal.push(i);
        if rng.below(3) == 0 {
            checkpoint = sys.checkpoint_bytes();
            journal.clear();
            checkpoints += 1;
        }
        if rng.below(3) == 0 {
            sys = build();
            sys.restore_bytes(&checkpoint)
                .expect("soak checkpoint bytes restore");
            for &j in &journal {
                sys.run_trace(epochs[j].iter().copied());
                sys.sync_metadata();
            }
            restarts += 1;
        }
    }
    (restarts, checkpoints, sys.checkpoint_bytes() == reference)
}

/// Runs the whole soak: the faulted serve storm, its crash-free
/// reference, the restart storm, and the wear coupling.
///
/// # Errors
///
/// Propagates [`ServeError`] from either serve run (the injected faults
/// themselves never error — they are recovered in-flight).
pub fn run_soak(cfg: &SoakConfig) -> Result<SoakOutcome, ServeError> {
    crate::serve::quiet_injected_faults();

    let faulted = run_serve(&cfg.serve)?;
    let mut reference_cfg = cfg.serve.clone();
    reference_cfg.faults = cfg.serve.faults.crash_free();
    let reference = run_serve(&reference_cfg)?;

    let digest_of = |out: &crate::serve::ServeOutcome| {
        out.shards
            .iter()
            .filter(|s| !s.tenants.is_empty())
            .map(|s| (s.tenants.clone(), s.digest()))
            .collect::<Vec<_>>()
    };
    let digests_match = digest_of(&faulted) == digest_of(&reference);
    let shed_match = faulted.total_shed() == reference.total_shed();

    let (restarts, checkpoints, restart_equivalent) = restart_storm(cfg);

    // Wear coupling: every store the faulted service replayed becomes
    // one wear-leveled write to a seeded line address.
    let mut wear = StartGap::new(cfg.wear_lines, cfg.wear_psi);
    let mut rng = Rng::seed_from(cfg.seed ^ 0x5EA2_11FE);
    for _ in 0..faulted.total_stores() {
        wear.on_write(rng.below(cfg.wear_lines));
    }

    Ok(SoakOutcome {
        crashes: faulted.pool.crash_recoveries,
        restores: faulted.total_restored(),
        replayed: faulted.total_replayed(),
        shed: faulted.total_shed(),
        digests_match,
        shed_match,
        anomalies: faulted.total_anomalies() + reference.total_anomalies(),
        qos_violations: faulted.total_qos_violations() + reference.total_qos_violations(),
        consistent: faulted.consistent() && reference.consistent(),
        restarts,
        checkpoints,
        restart_equivalent,
        wear_writes: wear.total_writes(),
        wear_gap_moves: wear.gap_moves(),
        min_crashes: cfg.min_crashes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_soak_converges() {
        let out = run_soak(&SoakConfig::quick(11)).unwrap();
        assert!(out.converged(), "{}", out.render_text());
        assert!(out.crashes >= 4, "{}", out.render_text());
        assert!(out.restarts > 0, "{}", out.render_text());
        assert!(out.shed > 0, "{}", out.render_text());
        assert!(out.wear_gap_moves > 0, "{}", out.render_text());
    }

    #[test]
    fn quick_soak_is_deterministic() {
        let a = run_soak(&SoakConfig::quick(5)).unwrap();
        let b = run_soak(&SoakConfig::quick(5)).unwrap();
        assert_eq!(
            (a.crashes, a.restores, a.replayed, a.shed, a.wear_gap_moves),
            (b.crashes, b.restores, b.replayed, b.shed, b.wear_gap_moves)
        );
        assert!(a.converged() && b.converged());
    }

    #[test]
    fn render_text_carries_the_verdict() {
        let out = run_soak(&SoakConfig::quick(3)).unwrap();
        let text = out.render_text();
        assert!(text.contains("soak crashes="), "{text}");
        assert!(text.contains("converged         true"), "{text}");
    }
}
