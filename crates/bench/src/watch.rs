//! `secpb watch`: live health streaming over any front.
//!
//! Runs a workload on any [`StormFront`] with a telemetry ring attached
//! and, at a fixed simulated-cycle interval, drains the ring into a
//! [`HealthMonitor`] and emits a [`HealthSnapshot`] (JSON-lines) — plus,
//! optionally, an incrementally written Chrome trace fed from the same
//! ring.  A storm-style mode crashes, recovers, and resyncs the front
//! every `crash_every` stores so the snapshot stream shows drains,
//! recovery-cycle estimates, and anomaly counters moving under fire.
//!
//! The watch loop is an *observer* of the same deterministic replay the
//! benches run: telemetry events never steer the simulation, so watching
//! a cell does not change what the cell computes.

use std::io::Write;

use secpb_core::crash::{CrashKind, DrainPolicy};
use secpb_core::facade::PersistSystem;
use secpb_core::metrics::{counters, histograms};
use secpb_core::scheme::Scheme;
use secpb_energy::drain::secpb_drain_energy;
use secpb_sim::config::SystemConfig;
use secpb_sim::telemetry::{
    self, ChromeTraceStream, HealthGauges, HealthMonitor, HealthSnapshot, TelemetryReader,
    DEFAULT_RING_CAPACITY,
};
use secpb_workloads::{TraceGenerator, WorkloadProfile};

use crate::storm::{build_front, energy_scheme, StormFront};

/// Configuration of one watch session.
#[derive(Debug, Clone)]
pub struct WatchConfig {
    /// Which front to run.
    pub front: StormFront,
    /// The metadata-persistence scheme.
    pub scheme: Scheme,
    /// The workload to replay.
    pub profile: WorkloadProfile,
    /// Instruction budget for the replay.
    pub instructions: u64,
    /// Simulated cycles between health snapshots.
    pub interval: u64,
    /// Telemetry ring capacity in events.
    pub ring_capacity: usize,
    /// Storm mode: crash (power loss, full drain), recover, and resync
    /// every this many stores.  `None` replays without crashes.
    pub crash_every: Option<u64>,
    /// Trace and key seed.
    pub seed: u64,
}

impl WatchConfig {
    /// A default session: 200 K instructions, a snapshot every 50 K
    /// cycles, no crashes.
    pub fn new(front: StormFront, scheme: Scheme, profile: WorkloadProfile) -> Self {
        WatchConfig {
            front,
            scheme,
            profile,
            instructions: 200_000,
            interval: 50_000,
            ring_capacity: DEFAULT_RING_CAPACITY,
            crash_every: None,
            seed: 42,
        }
    }

    /// The `--quick` smoke shape: a short storm-style cell (20 K
    /// instructions, a crash every 500 stores) snapshotting every 5 K
    /// cycles — small enough for CI, busy enough that drains, recovery
    /// estimates, and markers all appear in the stream.
    pub fn quick(mut self) -> Self {
        self.instructions = 20_000;
        self.interval = 5_000;
        self.crash_every = Some(500);
        self
    }
}

/// What a watch session produced.
#[derive(Debug)]
pub struct WatchOutcome {
    /// Every snapshot emitted, in order.
    pub snapshots: Vec<HealthSnapshot>,
    /// Total telemetry events absorbed from the ring.
    pub events: u64,
    /// Events the ring dropped (also carried by every snapshot).
    pub dropped: u64,
    /// Crashes injected by storm mode.
    pub crashes: u64,
    /// Final model-invariant anomaly count.
    pub anomalies: u64,
    /// Final simulated cycle.
    pub cycles: u64,
    /// Whether every storm-mode recovery sweep was consistent.
    pub consistent: bool,
}

/// Runs a watch session.
///
/// Snapshots are appended to `snapshot_out` as JSON lines (one
/// [`HealthSnapshot`] wire object per line) as they are taken; span
/// events stream into `trace_out` if given (the caller finishes the
/// Chrome document afterwards, passing [`WatchOutcome::dropped`]).  Both
/// writers are optional so callers can collect snapshots purely from the
/// returned [`WatchOutcome`].
///
/// # Errors
///
/// Returns a message if the front cannot be built, a storm-mode crash
/// drain fails, or a writer fails.
pub fn run_watch<W: Write, T: Write>(
    cfg: &WatchConfig,
    mut snapshot_out: Option<&mut W>,
    mut trace_out: Option<&mut ChromeTraceStream<T>>,
) -> Result<WatchOutcome, String> {
    let mut sys = build_front(cfg.front, SystemConfig::default(), cfg.scheme, cfg.seed)?;
    let (sink, mut reader) = telemetry::channel(cfg.ring_capacity);
    sys.set_telemetry(Some(sink.clone()));
    let mut monitor = HealthMonitor::new();
    let front_name = cfg.front.name();
    let scheme_name = sys.scheme().name();

    let mut generator = TraceGenerator::new(cfg.profile.clone(), cfg.seed);
    let interval = cfg.interval.max(1);
    let mut next_at = interval;
    let mut snapshots: Vec<HealthSnapshot> = Vec::new();
    let mut stores = 0u64;
    let mut crashes = 0u64;
    let mut consistent = true;

    for item in generator.stream(cfg.instructions) {
        let is_store = item.access.is_some_and(|a| a.is_store());
        sys.step(item);
        if is_store {
            stores += 1;
            if let Some(every) = cfg.crash_every {
                if every > 0 && stores.is_multiple_of(every) {
                    let report = sys
                        .crash(CrashKind::PowerLoss, DrainPolicy::DrainAll)
                        .map_err(|e| format!("storm-mode crash drain failed: {e}"))?;
                    let rec = sys.recover_with(&report.lost_blocks);
                    consistent &= rec.is_consistent();
                    sys.resync_lost_golden(&report.lost_blocks);
                    crashes += 1;
                }
            }
        }
        // Drain the ring and snapshot at every interval crossing (a
        // long stall can cross several at once).
        while sys.finish_time().raw() >= next_at {
            emit_snapshot(
                &mut monitor,
                &mut reader,
                sys.as_ref(),
                &front_name,
                scheme_name,
                next_at,
                &mut snapshot_out,
                &mut trace_out,
                &mut snapshots,
            )?;
            next_at += interval;
        }
    }
    // A final snapshot always covers the tail, so even a session shorter
    // than one interval streams at least one snapshot.
    let final_cycle = sys.finish_time().raw();
    emit_snapshot(
        &mut monitor,
        &mut reader,
        sys.as_ref(),
        &front_name,
        scheme_name,
        final_cycle,
        &mut snapshot_out,
        &mut trace_out,
        &mut snapshots,
    )?;

    Ok(WatchOutcome {
        events: monitor.events(),
        dropped: sink.dropped(),
        crashes,
        anomalies: sys.anomalies(),
        cycles: final_cycle,
        consistent,
        snapshots,
    })
}

/// Drains the ring into the monitor (routing spans to the Chrome stream)
/// and emits one snapshot.
#[allow(clippy::too_many_arguments)]
fn emit_snapshot<W: Write, T: Write>(
    monitor: &mut HealthMonitor,
    reader: &mut TelemetryReader,
    sys: &dyn PersistSystem,
    front: &str,
    scheme: &str,
    cycle: u64,
    snapshot_out: &mut Option<&mut W>,
    trace_out: &mut Option<&mut ChromeTraceStream<T>>,
    snapshots: &mut Vec<HealthSnapshot>,
) -> Result<(), String> {
    let mut io_err: Option<std::io::Error> = None;
    monitor.absorb_with(reader, |phase, begin, duration| {
        if io_err.is_none() {
            if let Some(stream) = trace_out.as_deref_mut() {
                if let Err(e) = stream.span(phase, begin, duration) {
                    io_err = Some(e);
                }
            }
        }
    });
    if let Some(e) = io_err {
        return Err(format!("trace stream write failed: {e}"));
    }
    let occupancy = sys.occupancy();
    let memo = sys.memo_stats();
    let gauges = HealthGauges {
        occupancy,
        anomalies: sys.anomalies(),
        nwpe: sys.stats().ratio(counters::PERSISTS, counters::ALLOCATIONS),
        battery_joules: secpb_drain_energy(energy_scheme(sys.scheme()), occupancy as usize),
        recovery_cycles: sys.estimated_recovery_cycles(),
        memo_hits: memo.hits,
        memo_misses: memo.misses,
        memo_evictions: memo.evictions,
        ..HealthGauges::default()
    };
    let snap = monitor.snapshot(
        cycle,
        front,
        scheme,
        sys.stats(),
        &gauges,
        histograms::DRAIN_LATENCY,
        reader.dropped(),
    );
    if let Some(out) = snapshot_out.as_deref_mut() {
        writeln!(out, "{}", snap.to_json()).map_err(|e| format!("snapshot write failed: {e}"))?;
    }
    snapshots.push(snap);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(front: StormFront) -> WatchConfig {
        WatchConfig::new(
            front,
            Scheme::Cobcm,
            WorkloadProfile::named("gamess").unwrap(),
        )
        .quick()
    }

    #[test]
    fn quick_watch_streams_snapshots_with_zero_anomalies() {
        let mut jsonl: Vec<u8> = Vec::new();
        let outcome =
            run_watch::<_, Vec<u8>>(&quick_cfg(StormFront::SecPb), Some(&mut jsonl), None).unwrap();
        assert!(!outcome.snapshots.is_empty(), "must stream >= 1 snapshot");
        assert_eq!(outcome.anomalies, 0);
        assert!(outcome.consistent);
        assert!(outcome.crashes > 0, "quick mode is storm-style");
        assert!(outcome.events > 0, "the ring must carry events");
        let text = String::from_utf8(jsonl).unwrap();
        assert_eq!(
            text.lines().count(),
            outcome.snapshots.len(),
            "one JSON line per snapshot"
        );
        // Snapshots are sequenced, cycle-ordered, and drop-accounted.
        let last = outcome.snapshots.last().unwrap();
        assert_eq!(last.seq, outcome.snapshots.len() as u64);
        assert_eq!(last.dropped, outcome.dropped);
        assert_eq!(last.lossy, outcome.dropped > 0);
        assert!(last.crashes >= outcome.crashes, "markers reach the stream");
        assert_eq!(last.front, "secpb");
    }

    #[test]
    fn watch_drives_every_front() {
        for front in [
            StormFront::SecPb,
            StormFront::Eadr,
            StormFront::MultiCore(2),
        ] {
            let outcome = run_watch::<Vec<u8>, Vec<u8>>(&quick_cfg(front), None, None)
                .unwrap_or_else(|e| panic!("{}: {e}", front.name()));
            assert!(!outcome.snapshots.is_empty(), "{}", front.name());
            assert_eq!(outcome.anomalies, 0, "{}", front.name());
            assert!(outcome.consistent, "{}", front.name());
        }
    }

    #[test]
    fn watching_does_not_steer_the_simulation() {
        // Same replay with and without a crash-free watch: final cycle
        // counts and stats must agree with a bare facade run.
        let cfg = {
            let mut c = quick_cfg(StormFront::SecPb);
            c.crash_every = None;
            c
        };
        let watched = run_watch::<Vec<u8>, Vec<u8>>(&cfg, None, None).unwrap();
        let mut generator = TraceGenerator::new(cfg.profile.clone(), cfg.seed);
        let mut bare =
            build_front(cfg.front, SystemConfig::default(), cfg.scheme, cfg.seed).unwrap();
        for item in generator.stream(cfg.instructions) {
            bare.step(item);
        }
        assert_eq!(watched.cycles, bare.finish_time().raw());
        let last = watched.snapshots.last().unwrap();
        assert_eq!(last.occupancy, bare.occupancy());
        assert_eq!(last.recovery_cycles, bare.estimated_recovery_cycles());
    }

    #[test]
    fn chrome_stream_receives_spans_from_the_ring() {
        let mut trace_buf: Vec<u8> = Vec::new();
        let mut stream = ChromeTraceStream::new(&mut trace_buf, "watch", 0).unwrap();
        let outcome =
            run_watch::<Vec<u8>, _>(&quick_cfg(StormFront::SecPb), None, Some(&mut stream))
                .unwrap();
        stream.finish(outcome.dropped).unwrap();
        let text = String::from_utf8(trace_buf).unwrap();
        let json = secpb_sim::json::Json::parse(&text).expect("streamed trace must parse");
        let events = json.get("traceEvents").unwrap().items();
        assert!(
            events.len() as u64 > 9,
            "metadata plus at least one streamed span"
        );
    }
}
