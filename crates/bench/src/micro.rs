//! A minimal, dependency-free micro-benchmark harness.
//!
//! The `benches/*.rs` targets are `harness = false` binaries built on
//! this module: each calls [`bench()`] (or [`bench_once`] for heavyweight
//! experiment paths) and prints one aligned line per benchmark.  The
//! harness auto-calibrates the batch size so cheap operations are timed
//! over millions of iterations while expensive ones run just a few
//! times, and reports the *best* sample to suppress scheduler noise.
//!
//! This intentionally trades criterion's statistics for zero
//! dependencies: good enough to spot order-of-magnitude regressions and
//! to compare alternatives (e.g. string-keyed vs typed-handle counters
//! in `stats_micro`), not for sub-percent claims.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock time per timed sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(25);
/// Timed samples per benchmark; the best is reported.
const SAMPLES: u32 = 5;

/// Formats a nanosecond figure with a unit that keeps 3-5 digits.
fn human_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Times `f` adaptively and prints one report line.
///
/// Returns the best observed per-iteration cost in nanoseconds so
/// callers can compare benchmarks programmatically (see `stats_micro`).
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) -> f64 {
    // Warm up while estimating the per-iteration cost: grow the batch
    // until one batch takes ~10ms (or the op is clearly expensive).
    let mut iters = 1u64;
    let per_iter_ns = loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed >= Duration::from_millis(10) || iters >= 1 << 24 {
            break (elapsed.as_nanos() as f64 / iters as f64).max(0.01);
        }
        iters *= 8;
    };

    let batch = ((SAMPLE_TARGET.as_nanos() as f64 / per_iter_ns).ceil() as u64).max(1);
    let mut best = f64::INFINITY;
    for _ in 0..SAMPLES {
        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        best = best.min(start.elapsed().as_nanos() as f64 / batch as f64);
    }
    println!(
        "{name:<44} {:>12}/iter   ({batch} iters/sample)",
        human_ns(best)
    );
    best
}

/// Times `f` over a fixed number of single-iteration samples and prints
/// one report line — for experiment paths that take seconds per call,
/// where [`bench()`]'s calibration loop would be wasteful.
pub fn bench_once<T>(name: &str, samples: u32, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    println!(
        "{name:<44} {:>12}/iter   ({samples} samples)",
        human_ns(best)
    );
    best
}
