//! Experiment runners for every table and figure in the paper's
//! evaluation.
//!
//! All timing experiments replay the 18 SPEC-named synthetic workloads
//! (default 1 M instructions each — enough for the statistics to
//! stabilize; the paper's 250 M-instruction SimPoints serve the same
//! purpose on Gem5) and normalize against the insecure `bbb` baseline,
//! exactly as the paper does.  Averages are geometric means, which is the
//! only way the paper's per-benchmark outliers (e.g. gamess at 18× under
//! CM) are consistent with its reported averages.

use secpb_core::crash::{CrashKind, DrainPolicy};
use secpb_core::facade::PersistSystem;
use secpb_core::metrics::{counters, RunResult};
use secpb_core::scheme::Scheme;
use secpb_core::system::SecureSystem;
use secpb_core::tree::TreeKind;
use secpb_energy::battery::BatteryTech;
use secpb_energy::drain::{eadr_energy, secpb_drain_energy, secure_eadr_energy, SchemeKind};
use secpb_sim::config::SystemConfig;
use secpb_sim::fxhash::derive_seed;
use secpb_sim::json::Json;
use secpb_sim::pool;
use secpb_sim::telemetry::{self, TelemetrySink};
use secpb_workloads::{TraceGenerator, WorkloadProfile};

/// Default per-benchmark instruction budget.
pub const DEFAULT_INSTRUCTIONS: u64 = 1_000_000;

/// Maximum warm-up instructions before the measurement region, mirroring
/// the paper's fast-forward to representative SimPoint regions: caches,
/// metadata caches, and working sets are touched before measuring.
/// Short exploratory runs warm proportionally (2× the measured length).
pub const WARMUP_INSTRUCTIONS: u64 = 600_000;

/// The warm-up length used for a given measurement length:
/// `min(WARMUP_INSTRUCTIONS, 2 × instructions)`.
///
/// The contract, including its deliberate asymmetry for tiny exploratory
/// runs:
///
/// * **Short runs** (`instructions < 300_000`) warm *twice* the measured
///   length.  A cold hierarchy inflates the first few thousand cycles; a
///   warm-up shorter than the measurement region would leave quick runs
///   dominated by compulsory misses and mis-rank the schemes.
/// * **At the boundary** (`instructions == 300_000`) both expressions
///   agree at exactly 600 000.
/// * **Long runs** (`instructions > 300_000`) cap at
///   [`WARMUP_INSTRUCTIONS`]: the working sets fit long before that, and
///   warming proportionally forever would double every full-scale
///   experiment for no statistical gain.
///
/// Note the quirk this implies: warm-up as a *fraction* of total work
/// peaks at 2× for every run up to 300 K instructions, then decays — a
/// 50 K-instruction exploratory cell simulates 150 K instructions, while
/// the paper-scale 1 M-instruction cell simulates 1.6 M.
pub fn warmup_for(instructions: u64) -> u64 {
    WARMUP_INSTRUCTIONS.min(instructions * 2)
}

/// Deterministic seed base for all experiments.
pub const SEED: u64 = 0x5EC9_B0A2;

/// The trace seed for a workload: `SEED ⊕ hash(workload)`.
///
/// Depends on the *workload only*, so every scheme — including the `bbb`
/// baseline a slowdown is normalized against — replays the identical
/// instruction stream.  Deriving per-workload (rather than sharing `SEED`
/// verbatim) decorrelates the workloads' random address streams from one
/// another.
pub fn trace_seed(workload: &str) -> u64 {
    derive_seed(SEED, &[workload])
}

/// The per-cell system seed: `SEED ⊕ hash(scheme, workload)`.
///
/// Each grid cell derives its own seed instead of sharing one global RNG,
/// which is what makes cells pure functions of their coordinates: a
/// parallel grid is **byte-identical** to a serial one regardless of
/// worker count or scheduling.  The system seed only derives crypto keys,
/// so it may safely differ between a scheme run and its baseline.
pub fn cell_seed(scheme: Scheme, workload: &str) -> u64 {
    derive_seed(SEED, &[scheme.name(), workload])
}

/// Runs one benchmark under one scheme: warm up, reset measurement,
/// measure.
///
/// Both regions are *streamed* straight from the generator into
/// `run_trace` — no warm-up or measurement `Vec` is ever materialized.
pub fn run_benchmark(
    profile: &WorkloadProfile,
    scheme: Scheme,
    cfg: SystemConfig,
    tree: TreeKind,
    instructions: u64,
) -> RunResult {
    let mut generator = TraceGenerator::new(profile.clone(), trace_seed(&profile.name));
    let mut sys = SecureSystem::with_tree(cfg, scheme, tree, cell_seed(scheme, &profile.name));
    sys.run_trace(generator.stream(warmup_for(instructions)));
    sys.reset_measurement();
    sys.run_trace(generator.stream(instructions))
}

/// Like [`run_benchmark`] but enables span capture for the measurement
/// region and hands back the system so callers can export its tracer,
/// cycle breakdown, and hierarchy statistics (the `debug_one` flow).
pub fn run_benchmark_instrumented(
    profile: &WorkloadProfile,
    scheme: Scheme,
    cfg: SystemConfig,
    tree: TreeKind,
    instructions: u64,
    capture: usize,
) -> (RunResult, SecureSystem) {
    let mut generator = TraceGenerator::new(profile.clone(), trace_seed(&profile.name));
    let mut sys = SecureSystem::with_tree(cfg, scheme, tree, cell_seed(scheme, &profile.name));
    sys.run_trace(generator.stream(warmup_for(instructions)));
    sys.reset_measurement();
    sys.enable_trace_capture(capture);
    let r = sys.run_trace(generator.stream(instructions));
    (r, sys)
}

// ------------------------------------------------------------------
// The deterministic parallel experiment engine
// ------------------------------------------------------------------

/// One cell of an experiment grid: a `(workload, scheme, config, tree,
/// budget)` coordinate whose result is a pure function of its fields.
#[derive(Debug, Clone)]
pub struct GridCell {
    /// The workload to replay.
    pub profile: WorkloadProfile,
    /// The metadata-persistence scheme.
    pub scheme: Scheme,
    /// The system configuration (SecPB size, watermarks, …).
    pub cfg: SystemConfig,
    /// The integrity-tree organisation.
    pub tree: TreeKind,
    /// Measurement-region instruction budget.
    pub instructions: u64,
}

impl GridCell {
    /// A cell with the default configuration and monolithic tree.
    pub fn new(profile: WorkloadProfile, scheme: Scheme, instructions: u64) -> Self {
        GridCell {
            profile,
            scheme,
            cfg: SystemConfig::default(),
            tree: TreeKind::Monolithic,
            instructions,
        }
    }

    /// Replaces the system configuration.
    pub fn with_cfg(mut self, cfg: SystemConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Replaces the tree organisation.
    pub fn with_tree(mut self, tree: TreeKind) -> Self {
        self.tree = tree;
        self
    }

    /// Runs this cell (the pure function the pool fans out).
    pub fn run(&self) -> RunResult {
        run_benchmark(
            &self.profile,
            self.scheme,
            self.cfg.clone(),
            self.tree,
            self.instructions,
        )
    }

    /// Runs this cell and then crash-tests it: power loss, full drain,
    /// and verified recovery over the persisted state.  The returned
    /// [`RunResult`] is byte-identical to [`run`](Self::run)'s; the
    /// [`RecoveryCheck`] carries the cell's recovery verdict so grid
    /// reports can surface failures instead of timing alone.
    pub fn run_with_recovery(&self) -> (RunResult, RecoveryCheck) {
        self.run_checked(None)
    }

    /// [`run_with_recovery`](Self::run_with_recovery) with a live
    /// telemetry ring of `ring_capacity` events attached for the whole
    /// run (warm-up, measurement, crash, recovery).  The ring is drained
    /// after the cell completes and summarized as a [`TelemetryDigest`];
    /// the [`RunResult`] and [`RecoveryCheck`] are byte-identical to the
    /// untelemetered path — events observe, never steer.
    ///
    /// Each call owns a private ring, so pool workers running many cells
    /// concurrently each keep the single-producer contract.
    pub fn run_with_recovery_telemetered(
        &self,
        ring_capacity: usize,
    ) -> (RunResult, RecoveryCheck, TelemetryDigest) {
        let (sink, mut reader) = telemetry::channel(ring_capacity);
        let (result, check) = self.run_checked(Some(sink.clone()));
        let mut events = 0u64;
        while reader.pop().is_some() {
            events += 1;
        }
        (
            result,
            check,
            TelemetryDigest {
                events,
                dropped: sink.dropped(),
            },
        )
    }

    fn run_checked(&self, sink: Option<TelemetrySink>) -> (RunResult, RecoveryCheck) {
        let mut generator =
            TraceGenerator::new(self.profile.clone(), trace_seed(&self.profile.name));
        let mut sys = SecureSystem::with_tree(
            self.cfg.clone(),
            self.scheme,
            self.tree,
            cell_seed(self.scheme, &self.profile.name),
        );
        sys.set_telemetry(sink);
        sys.run_trace(generator.stream(warmup_for(self.instructions)));
        sys.reset_measurement();
        let result = sys.run_trace(generator.stream(self.instructions));
        // The crash check drives the shared facade surface — the same
        // entry points the storm and CLI use for every front.
        let sys: &mut dyn PersistSystem = &mut sys;
        let check = match sys.crash(CrashKind::PowerLoss, DrainPolicy::DrainAll) {
            Err(e) => RecoveryCheck {
                blocks_checked: 0,
                recovery_cycles: 0,
                failure: Some(format!("crash drain failed: {e}")),
            },
            Ok(_) => {
                let rec = sys.recover();
                RecoveryCheck {
                    blocks_checked: rec.blocks_checked,
                    recovery_cycles: sys.estimated_recovery_cycles(),
                    failure: if rec.is_consistent() {
                        None
                    } else {
                        Some(format!(
                            "recovery inconsistent: root_ok={}, mac_failures={}, \
                             plaintext_mismatches={}",
                            rec.root_ok,
                            rec.mac_failures.len(),
                            rec.plaintext_mismatches.len()
                        ))
                    },
                }
            }
        };
        (result, check)
    }
}

/// The crash-recovery verdict of one grid cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryCheck {
    /// Data blocks recovery decrypted and verified.
    pub blocks_checked: u64,
    /// Estimated recovery-sweep latency (cycles) for the cell's
    /// post-crash persisted footprint — the quantity recovery-time work
    /// like Anubis and Triad-NVM optimizes, surfaced per cell so grids
    /// can chart it.  Zero when the crash drain itself failed.
    pub recovery_cycles: u64,
    /// `None` when recovery was fully consistent; otherwise what failed.
    pub failure: Option<String>,
}

impl RecoveryCheck {
    /// Whether the cell recovered consistently.
    pub fn ok(&self) -> bool {
        self.failure.is_none()
    }
}

/// Transport accounting for one telemetered cell run: how many events
/// flowed through the ring and how many the ring had to drop.  Dropped
/// events are reported, never hidden — the no-silent-caps rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TelemetryDigest {
    /// Events drained from the ring after the cell completed.
    pub events: u64,
    /// Events discarded because the ring was full mid-run.
    pub dropped: u64,
}

/// Runs a grid of cells across `jobs` worker threads, returning results
/// in cell order.
///
/// Because every cell seeds its own generator and system from
/// [`cell_seed`]/[`trace_seed`], the output is byte-identical for every
/// `jobs` value — `run_grid(cells, 1)` is the serial engine, and the
/// table/figure runners' reports do not change under `--jobs N`.
pub fn run_grid(cells: &[GridCell], jobs: usize) -> Vec<RunResult> {
    pool::run_indexed(cells.len(), jobs, |i| cells[i].run())
}

/// Geometric mean of a non-empty slice.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of nothing");
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

// ------------------------------------------------------------------
// Table IV + Figure 6
// ------------------------------------------------------------------

/// One benchmark's normalized execution times across all schemes.
#[derive(Debug, Clone)]
pub struct BenchmarkRow {
    /// Benchmark name.
    pub name: String,
    /// `(scheme, slowdown vs bbb)` pairs.
    pub slowdowns: Vec<(Scheme, f64)>,
    /// PPTI measured under the bbb baseline.
    pub ppti: f64,
    /// NWPE measured under the bbb baseline.
    pub nwpe: f64,
}

/// Figure 6 / Table IV data: per-benchmark and average slowdowns.
#[derive(Debug, Clone)]
pub struct SlowdownStudy {
    /// The schemes evaluated, in display order.
    pub schemes: Vec<Scheme>,
    /// One row per benchmark.
    pub rows: Vec<BenchmarkRow>,
    /// Geometric-mean slowdown per scheme (Table IV).
    pub averages: Vec<(Scheme, f64)>,
}

/// Runs the Figure 6 study: all benchmarks, all SecPB schemes, 32-entry
/// SecPB, normalized to bbb, fanned across `jobs` workers.
pub fn fig6(instructions: u64, jobs: usize) -> SlowdownStudy {
    slowdown_study(
        SystemConfig::default(),
        &Scheme::SECPB_SCHEMES,
        instructions,
        jobs,
    )
}

/// Table IV is Figure 6's geometric means (the paper tabulates the same
/// run).
pub fn table4(instructions: u64, jobs: usize) -> SlowdownStudy {
    fig6(instructions, jobs)
}

impl SlowdownStudy {
    /// JSON dump (the bins' `--json` payload).
    pub fn to_json(&self) -> Json {
        let rows = self.rows.iter().map(|r| {
            let slowdowns = self
                .schemes
                .iter()
                .zip(&r.slowdowns)
                .fold(Json::obj(), |o, (s, (_, v))| o.field(s.name(), *v));
            Json::obj()
                .field("name", r.name.as_str())
                .field("ppti", r.ppti)
                .field("nwpe", r.nwpe)
                .field("slowdowns", slowdowns)
        });
        let averages = self
            .averages
            .iter()
            .fold(Json::obj(), |o, (s, v)| o.field(s.name(), *v));
        Json::obj()
            .field("schemes", Json::arr(self.schemes.iter().map(|s| s.name())))
            .field("rows", Json::Arr(rows.collect()))
            .field("averages", averages)
    }
}

/// Generic slowdown study over the SPEC suite, fanned across `jobs`
/// workers.
///
/// The grid is `suite × (bbb baseline + schemes)`, laid out row-major so
/// each benchmark's baseline and scheme cells are adjacent; results come
/// back from [`run_grid`] in that canonical order regardless of `jobs`.
pub fn slowdown_study(
    cfg: SystemConfig,
    schemes: &[Scheme],
    instructions: u64,
    jobs: usize,
) -> SlowdownStudy {
    let suite = WorkloadProfile::spec_suite();
    let stride = 1 + schemes.len();
    let mut cells = Vec::with_capacity(suite.len() * stride);
    for profile in &suite {
        cells.push(GridCell::new(profile.clone(), Scheme::Bbb, instructions).with_cfg(cfg.clone()));
        for &scheme in schemes {
            cells.push(GridCell::new(profile.clone(), scheme, instructions).with_cfg(cfg.clone()));
        }
    }
    let results = run_grid(&cells, jobs);
    let rows: Vec<BenchmarkRow> = suite
        .iter()
        .zip(results.chunks_exact(stride))
        .map(|(profile, chunk)| {
            let base = &chunk[0];
            let slowdowns = schemes
                .iter()
                .zip(&chunk[1..])
                .map(|(&scheme, r)| (scheme, r.slowdown_vs(base)))
                .collect();
            BenchmarkRow {
                name: profile.name.clone(),
                slowdowns,
                ppti: base.ppti(),
                nwpe: base.nwpe(),
            }
        })
        .collect();
    let averages = schemes
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            let vals: Vec<f64> = rows.iter().map(|r| r.slowdowns[i].1).collect();
            (s, geomean(&vals))
        })
        .collect();
    SlowdownStudy {
        schemes: schemes.to_vec(),
        rows,
        averages,
    }
}

// ------------------------------------------------------------------
// Table V — battery sizes
// ------------------------------------------------------------------

/// One row of Table V.
#[derive(Debug, Clone)]
pub struct BatteryRow {
    /// System name (scheme, eADR variant, or baseline).
    pub system: String,
    /// Battery volume in mm³ for (SuperCap, Li-Thin).
    pub volume_mm3: (f64, f64),
    /// Footprint as % of a client-core's area for (SuperCap, Li-Thin).
    pub core_area_pct: (f64, f64),
}

fn battery_row(system: &str, joules: f64) -> BatteryRow {
    BatteryRow {
        system: system.to_owned(),
        volume_mm3: (
            BatteryTech::SuperCap.volume_mm3(joules),
            BatteryTech::LiThin.volume_mm3(joules),
        ),
        core_area_pct: (
            BatteryTech::SuperCap.core_area_ratio_pct(joules),
            BatteryTech::LiThin.core_area_ratio_pct(joules),
        ),
    }
}

impl BatteryRow {
    /// JSON dump of one Table V row.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("system", self.system.as_str())
            .field(
                "volume_mm3",
                Json::obj()
                    .field("supercap", self.volume_mm3.0)
                    .field("li_thin", self.volume_mm3.1),
            )
            .field(
                "core_area_pct",
                Json::obj()
                    .field("supercap", self.core_area_pct.0)
                    .field("li_thin", self.core_area_pct.1),
            )
    }
}

/// JSON dump of the full Table V row set.
pub fn battery_rows_to_json(rows: &[BatteryRow]) -> Json {
    Json::Arr(rows.iter().map(BatteryRow::to_json).collect())
}

/// Table V: battery estimates for every scheme at 32 entries plus the
/// eADR/BBB reference points.
pub fn table5(entries: usize) -> Vec<BatteryRow> {
    let mut rows: Vec<BatteryRow> = [
        SchemeKind::Cobcm,
        SchemeKind::Obcm,
        SchemeKind::Bcm,
        SchemeKind::Cm,
        SchemeKind::M,
        SchemeKind::NoGap,
    ]
    .iter()
    .map(|&s| battery_row(s.name(), secpb_drain_energy(s, entries)))
    .collect();
    rows.push(battery_row("s_eadr", secure_eadr_energy()));
    rows.push(battery_row(
        "bbb",
        secpb_drain_energy(SchemeKind::Bbb, entries),
    ));
    rows.push(battery_row("eadr", eadr_energy()));
    rows
}

// ------------------------------------------------------------------
// Table VI — battery vs SecPB size
// ------------------------------------------------------------------

/// One row of Table VI.
#[derive(Debug, Clone)]
pub struct BatterySweepRow {
    /// SecPB entries.
    pub entries: usize,
    /// COBCM volume (SuperCap, Li-Thin) in mm³.
    pub cobcm_mm3: (f64, f64),
    /// NoGap volume (SuperCap, Li-Thin) in mm³.
    pub nogap_mm3: (f64, f64),
}

impl BatterySweepRow {
    /// JSON dump of one Table VI row.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("entries", self.entries)
            .field(
                "cobcm_mm3",
                Json::obj()
                    .field("supercap", self.cobcm_mm3.0)
                    .field("li_thin", self.cobcm_mm3.1),
            )
            .field(
                "nogap_mm3",
                Json::obj()
                    .field("supercap", self.nogap_mm3.0)
                    .field("li_thin", self.nogap_mm3.1),
            )
    }
}

/// JSON dump of the full Table VI row set.
pub fn battery_sweep_to_json(rows: &[BatterySweepRow]) -> Json {
    Json::Arr(rows.iter().map(BatterySweepRow::to_json).collect())
}

/// Table VI: battery capacity for COBCM and NoGap across SecPB sizes.
pub fn table6() -> Vec<BatterySweepRow> {
    [8usize, 16, 32, 64, 128, 256, 512]
        .iter()
        .map(|&entries| {
            let cobcm = secpb_drain_energy(SchemeKind::Cobcm, entries);
            let nogap = secpb_drain_energy(SchemeKind::NoGap, entries);
            BatterySweepRow {
                entries,
                cobcm_mm3: (
                    BatteryTech::SuperCap.volume_mm3(cobcm),
                    BatteryTech::LiThin.volume_mm3(cobcm),
                ),
                nogap_mm3: (
                    BatteryTech::SuperCap.volume_mm3(nogap),
                    BatteryTech::LiThin.volume_mm3(nogap),
                ),
            }
        })
        .collect()
}

// ------------------------------------------------------------------
// Figure 7 — SecPB size sweep under CM
// ------------------------------------------------------------------

/// Figure 7 data: per-size geometric-mean slowdown (CM model) plus the
/// per-benchmark detail.
#[derive(Debug, Clone)]
pub struct SizeSweep {
    /// SecPB sizes swept.
    pub sizes: Vec<usize>,
    /// Geometric-mean slowdown vs same-size bbb for each size.
    pub averages: Vec<f64>,
    /// Per-benchmark rows: name → slowdown per size.
    pub rows: Vec<(String, Vec<f64>)>,
}

/// Runs the Figure 7 sweep: CM with SecPB sizes 8..=512, fanned across
/// `jobs` workers.  The whole `size × benchmark × {bbb, cm}` grid is one
/// flat fan-out, so every cell of every size runs concurrently.
pub fn fig7(instructions: u64, jobs: usize) -> SizeSweep {
    let sizes = vec![8usize, 16, 32, 64, 128, 256, 512];
    let suite = WorkloadProfile::spec_suite();
    let mut cells = Vec::with_capacity(sizes.len() * suite.len() * 2);
    for &size in &sizes {
        let cfg = SystemConfig::default().with_secpb_entries(size);
        for profile in &suite {
            cells.push(
                GridCell::new(profile.clone(), Scheme::Bbb, instructions).with_cfg(cfg.clone()),
            );
            cells.push(
                GridCell::new(profile.clone(), Scheme::Cm, instructions).with_cfg(cfg.clone()),
            );
        }
    }
    let results = run_grid(&cells, jobs);
    let mut rows: Vec<(String, Vec<f64>)> =
        suite.iter().map(|p| (p.name.clone(), Vec::new())).collect();
    for (si, _) in sizes.iter().enumerate() {
        for (pi, row) in rows.iter_mut().enumerate() {
            let pair = &results[(si * suite.len() + pi) * 2..][..2];
            row.1.push(pair[1].slowdown_vs(&pair[0]));
        }
    }
    let averages = (0..sizes.len())
        .map(|i| geomean(&rows.iter().map(|r| r.1[i]).collect::<Vec<_>>()))
        .collect();
    SizeSweep {
        sizes,
        averages,
        rows,
    }
}

// ------------------------------------------------------------------
// Figure 8 — BMT root updates normalized to sec_wt
// ------------------------------------------------------------------

/// Figure 8 data: BMT root updates per store (sec_wt performs exactly one
/// per store, so this ratio *is* the normalized value) per SecPB size.
#[derive(Debug, Clone)]
pub struct BmtUpdateStudy {
    /// SecPB sizes swept.
    pub sizes: Vec<usize>,
    /// Suite-mean fraction of sec_wt's updates for each size.
    pub averages: Vec<f64>,
    /// Per-benchmark rows.
    pub rows: Vec<(String, Vec<f64>)>,
}

/// Shared JSON shape of the sweep studies: a key axis, per-key averages,
/// and per-benchmark value rows.
fn sweep_to_json(axis: &str, keys: Json, averages: &[f64], rows: &[(String, Vec<f64>)]) -> Json {
    let rows = rows.iter().map(|(name, vals)| {
        Json::obj()
            .field("name", name.as_str())
            .field("values", Json::arr(vals.iter().copied()))
    });
    Json::obj()
        .field(axis, keys)
        .field("averages", Json::arr(averages.iter().copied()))
        .field("rows", Json::Arr(rows.collect()))
}

impl SizeSweep {
    /// JSON dump (Figure 7's `--json` payload).
    pub fn to_json(&self) -> Json {
        sweep_to_json(
            "sizes",
            Json::arr(self.sizes.iter().copied()),
            &self.averages,
            &self.rows,
        )
    }
}

impl BmtUpdateStudy {
    /// JSON dump (Figure 8's `--json` payload).
    pub fn to_json(&self) -> Json {
        sweep_to_json(
            "sizes",
            Json::arr(self.sizes.iter().copied()),
            &self.averages,
            &self.rows,
        )
    }
}

/// Runs the Figure 8 study under the CM model, fanned across `jobs`
/// workers.
pub fn fig8(instructions: u64, jobs: usize) -> BmtUpdateStudy {
    let sizes = vec![8usize, 16, 32, 64, 128, 256, 512];
    let suite = WorkloadProfile::spec_suite();
    let mut cells = Vec::with_capacity(sizes.len() * suite.len());
    for &size in &sizes {
        let cfg = SystemConfig::default().with_secpb_entries(size);
        for profile in &suite {
            cells.push(
                GridCell::new(profile.clone(), Scheme::Cm, instructions).with_cfg(cfg.clone()),
            );
        }
    }
    let results = run_grid(&cells, jobs);
    let mut rows: Vec<(String, Vec<f64>)> =
        suite.iter().map(|p| (p.name.clone(), Vec::new())).collect();
    for (si, _) in sizes.iter().enumerate() {
        for (pi, row) in rows.iter_mut().enumerate() {
            // sec_wt would update the root once per persisted store.
            row.1
                .push(results[si * suite.len() + pi].bmt_updates_per_store());
        }
    }
    let averages = (0..sizes.len())
        .map(|i| {
            let v: Vec<f64> = rows.iter().map(|r| r.1[i]).collect();
            v.iter().sum::<f64>() / v.len() as f64
        })
        .collect();
    BmtUpdateStudy {
        sizes,
        averages,
        rows,
    }
}

// ------------------------------------------------------------------
// Figure 9 — BMF study
// ------------------------------------------------------------------

/// Figure 9 data: slowdowns (vs bbb) of SP and CM paired with DBMF/SBMF.
#[derive(Debug, Clone)]
pub struct BmfStudy {
    /// Variant labels in display order.
    pub variants: Vec<String>,
    /// Geometric-mean slowdown per variant.
    pub averages: Vec<f64>,
    /// Per-benchmark rows.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl BmfStudy {
    /// JSON dump (Figure 9's `--json` payload).
    pub fn to_json(&self) -> Json {
        sweep_to_json(
            "variants",
            Json::arr(self.variants.iter().map(String::as_str)),
            &self.averages,
            &self.rows,
        )
    }
}

/// Runs the Figure 9 study: `sp_dbmf`, `sp_sbmf`, `cm_dbmf`, `cm_sbmf`,
/// fanned across `jobs` workers.
pub fn fig9(instructions: u64, jobs: usize) -> BmfStudy {
    let variants: Vec<(String, Scheme, TreeKind)> = vec![
        ("sp_dbmf".into(), Scheme::Sp, TreeKind::Dbmf),
        ("sp_sbmf".into(), Scheme::Sp, TreeKind::Sbmf),
        ("cm_dbmf".into(), Scheme::Cm, TreeKind::Dbmf),
        ("cm_sbmf".into(), Scheme::Cm, TreeKind::Sbmf),
    ];
    let cfg = SystemConfig::default();
    let suite = WorkloadProfile::spec_suite();
    let stride = 1 + variants.len();
    let mut cells = Vec::with_capacity(suite.len() * stride);
    for profile in &suite {
        cells.push(GridCell::new(profile.clone(), Scheme::Bbb, instructions).with_cfg(cfg.clone()));
        for (_, scheme, tree) in &variants {
            cells.push(
                GridCell::new(profile.clone(), *scheme, instructions)
                    .with_cfg(cfg.clone())
                    .with_tree(*tree),
            );
        }
    }
    let results = run_grid(&cells, jobs);
    let rows: Vec<(String, Vec<f64>)> = suite
        .iter()
        .zip(results.chunks_exact(stride))
        .map(|(profile, chunk)| {
            let base = &chunk[0];
            let vals = chunk[1..].iter().map(|r| r.slowdown_vs(base)).collect();
            (profile.name.clone(), vals)
        })
        .collect();
    let averages = (0..variants.len())
        .map(|i| geomean(&rows.iter().map(|r| r.1[i]).collect::<Vec<_>>()))
        .collect();
    BmfStudy {
        variants: variants.into_iter().map(|(n, _, _)| n).collect(),
        averages,
        rows,
    }
}

// ------------------------------------------------------------------
// Ablations (DESIGN.md §6)
// ------------------------------------------------------------------

/// Ablation: the Section IV-A value-independent coalescing optimization
/// on vs off, for a given scheme.  Returns (on, off) geometric-mean
/// slowdowns vs bbb.
pub fn ablation_coalescing(scheme: Scheme, instructions: u64, jobs: usize) -> (f64, f64) {
    let on = slowdown_study(SystemConfig::default(), &[scheme], instructions, jobs).averages[0].1;
    let off = slowdown_study(
        SystemConfig::default().with_value_independent_coalescing(false),
        &[scheme],
        instructions,
        jobs,
    )
    .averages[0]
        .1;
    (on, off)
}

/// Ablation: single in-flight BMT update vs pipelined, for a given
/// scheme.  Returns (single, pipelined) geometric-mean slowdowns.
pub fn ablation_bmt_pipelining(scheme: Scheme, instructions: u64, jobs: usize) -> (f64, f64) {
    let single =
        slowdown_study(SystemConfig::default(), &[scheme], instructions, jobs).averages[0].1;
    let pipelined = slowdown_study(
        SystemConfig::default().with_pipelined_bmt(true),
        &[scheme],
        instructions,
        jobs,
    )
    .averages[0]
        .1;
    (single, pipelined)
}

/// Ablation: speculative vs blocking load verification (Section V-A
/// assumes speculation).  Returns (speculative, blocking) geometric-mean
/// slowdowns.
pub fn ablation_speculative_verification(
    scheme: Scheme,
    instructions: u64,
    jobs: usize,
) -> (f64, f64) {
    let spec = slowdown_study(SystemConfig::default(), &[scheme], instructions, jobs).averages[0].1;
    let blocking = slowdown_study(
        SystemConfig::default().with_speculative_verification(false),
        &[scheme],
        instructions,
        jobs,
    )
    .averages[0]
        .1;
    (spec, blocking)
}

/// Ablation: watermark placement.  Returns slowdowns for each
/// (high, low) pair.
pub fn ablation_watermarks(
    scheme: Scheme,
    pairs: &[(f64, f64)],
    instructions: u64,
    jobs: usize,
) -> Vec<((f64, f64), f64)> {
    pairs
        .iter()
        .map(|&(h, l)| {
            let s = slowdown_study(
                SystemConfig::default().with_watermarks(h, l),
                &[scheme],
                instructions,
                jobs,
            );
            ((h, l), s.averages[0].1)
        })
        .collect()
}

/// Quick sanity accessor used by tests: stores seen by the bbb baseline.
pub fn baseline_store_count(profile: &WorkloadProfile, instructions: u64) -> u64 {
    run_benchmark(
        profile,
        Scheme::Bbb,
        SystemConfig::default(),
        TreeKind::Monolithic,
        instructions,
    )
    .stats
    .get(counters::STORES)
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUICK: u64 = 60_000;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "geomean of nothing")]
    fn geomean_empty_panics() {
        geomean(&[]);
    }

    #[test]
    fn warmup_contract_at_the_boundary() {
        // Below the crossover: proportional warm-up, 2× the measurement.
        assert_eq!(warmup_for(299_999), 599_998);
        assert_eq!(warmup_for(50_000), 100_000);
        assert_eq!(warmup_for(0), 0);
        // Exactly at the crossover both expressions agree.
        assert_eq!(warmup_for(300_000), 600_000);
        assert_eq!(warmup_for(300_000), WARMUP_INSTRUCTIONS);
        // Above it: capped at the fixed budget.
        assert_eq!(warmup_for(300_001), 600_000);
        assert_eq!(warmup_for(DEFAULT_INSTRUCTIONS), WARMUP_INSTRUCTIONS);
        assert_eq!(warmup_for(u64::MAX / 4), WARMUP_INSTRUCTIONS);
    }

    #[test]
    fn seeds_differ_per_cell_but_traces_are_paired() {
        // System seeds: unique per (scheme, workload) coordinate.
        assert_ne!(
            cell_seed(Scheme::Cm, "gamess"),
            cell_seed(Scheme::Cm, "povray")
        );
        assert_ne!(
            cell_seed(Scheme::Cm, "gamess"),
            cell_seed(Scheme::Bbb, "gamess")
        );
        // Trace seeds: a scheme run and its bbb baseline replay the SAME
        // trace (workload-only derivation), but workloads differ.
        assert_ne!(trace_seed("gamess"), trace_seed("povray"));
        assert_ne!(trace_seed("gamess"), cell_seed(Scheme::Bbb, "gamess"));
    }

    #[test]
    fn grid_results_are_identical_for_any_job_count() {
        let profiles = ["gamess", "povray"];
        let cells: Vec<GridCell> = profiles
            .iter()
            .flat_map(|p| {
                [Scheme::Bbb, Scheme::Cm]
                    .into_iter()
                    .map(|s| GridCell::new(WorkloadProfile::named(p).unwrap(), s, 20_000))
            })
            .collect();
        let serial = run_grid(&cells, 1);
        let parallel = run_grid(&cells, 4);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn table4_scheme_ordering_holds() {
        let study = table4(QUICK, secpb_sim::pool::default_jobs());
        let avg: std::collections::HashMap<Scheme, f64> = study.averages.iter().copied().collect();
        assert!(avg[&Scheme::Cobcm] < avg[&Scheme::Bcm]);
        assert!(avg[&Scheme::Obcm] < avg[&Scheme::Bcm]);
        assert!(avg[&Scheme::Bcm] < avg[&Scheme::Cm]);
        assert!(
            avg[&Scheme::Cm] <= avg[&Scheme::M] * 1.02,
            "CM ≈ M, CM slightly better"
        );
        assert!(avg[&Scheme::M] < avg[&Scheme::NoGap]);
        // COBCM should be near-baseline.
        assert!(
            avg[&Scheme::Cobcm] < 1.4,
            "COBCM average {}",
            avg[&Scheme::Cobcm]
        );
    }

    #[test]
    fn table5_rows_cover_all_systems() {
        let rows = table5(32);
        assert_eq!(rows.len(), 9);
        let find = |n: &str| rows.iter().find(|r| r.system == n).unwrap();
        assert!(find("s_eadr").volume_mm3.0 > 100.0 * find("cobcm").volume_mm3.0);
        assert!(find("nogap").volume_mm3.0 < find("cm").volume_mm3.0);
        assert!(find("bbb").volume_mm3.0 < find("nogap").volume_mm3.0);
    }

    #[test]
    fn table6_monotone_in_entries() {
        let rows = table6();
        assert_eq!(rows.len(), 7);
        for pair in rows.windows(2) {
            assert!(pair[1].cobcm_mm3.0 > pair[0].cobcm_mm3.0);
            assert!(pair[1].nogap_mm3.0 > pair[0].nogap_mm3.0);
        }
        // COBCM always needs the bigger battery.
        for r in &rows {
            assert!(r.cobcm_mm3.0 > r.nogap_mm3.0);
        }
    }
}
