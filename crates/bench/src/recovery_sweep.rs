//! The eager↔lazy↔selective↔fast-recovery curve: write amplification
//! vs recovery latency, swept over persistence policies on a fixed
//! workload.
//!
//! Each point runs the same trace under one policy instantiation,
//! crashes it (power loss, full drain), recovers, and records:
//!
//! * **write amplification** — durable metadata writes per leaf persist
//!   from [`PolicyState`](secpb_core::policy::PolicyState),
//! * **crash-flush cycles** — the sec-sync gap the battery must cover,
//! * **recovery cost** — the exact post-crash sweep accounting from
//!   [`RecoveryCost`],
//! * **total recovery latency** — flush + sweep, the figure of merit
//!   recovery-time work (Anubis, Triad-NVM, Huang & Hua) trades
//!   write traffic against.
//!
//! The curve is monotone for a fixed workload: `fastrec` ≤
//! `triad(full)` ≤ the eager-ish all-early baseline ≤ the fully lazy
//! COBCM baseline — [`SweepReport::passed`] pins the ordering so the
//! trade-off cannot silently invert.

use secpb_core::crash::{CrashKind, DrainPolicy};
use secpb_core::facade::PersistSystem;
use secpb_core::policy::RecoveryCost;
use secpb_core::scheme::Scheme;
use secpb_core::system::SecureSystem;
use secpb_core::tree::TreeKind;
use secpb_sim::config::{MetadataMode, SystemConfig};
use secpb_sim::json::Json;
use secpb_workloads::{TraceGenerator, WorkloadProfile};

/// Sweep parameters: one workload, one instruction budget, one seed.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Measurement-trace instruction budget per point.
    pub instructions: u64,
    /// Master seed for trace generation and keys (shared across points
    /// so every policy sees the identical store stream).
    pub seed: u64,
    /// The fixed workload every point replays.
    pub workload: String,
    /// The security-metadata engine mode.
    pub mode: MetadataMode,
}

impl SweepConfig {
    /// The full sweep: the Table IV `milc` profile at a grid-scale
    /// budget.
    pub fn new(seed: u64) -> Self {
        SweepConfig {
            instructions: 200_000,
            seed,
            workload: "milc".to_string(),
            mode: MetadataMode::Lazy,
        }
    }

    /// A seconds-scale smoke sweep for CI.
    pub fn quick(seed: u64) -> Self {
        SweepConfig {
            instructions: 20_000,
            ..SweepConfig::new(seed)
        }
    }
}

/// One policy instantiation on the curve.
#[derive(Debug, Clone, Copy)]
pub struct SweepFront {
    /// Stable point label (`fastrec`, `triad4`, `nogap`, …).
    pub name: &'static str,
    /// The scheme (early-work assignment) the point runs.
    pub scheme: Scheme,
    /// Triad persistence depth (0 = root-only).
    pub triad_levels: u8,
    /// Whether the fast-recovery shadow layout is on.
    pub shadow: bool,
}

impl SweepFront {
    const fn new(name: &'static str, scheme: Scheme, triad_levels: u8, shadow: bool) -> Self {
        SweepFront {
            name,
            scheme,
            triad_levels,
            shadow,
        }
    }
}

/// The swept policy points, ordered from most write-amplified /
/// fastest-recovering to baseline-lazy.  The first four are the pinned
/// monotone chain; the middle Triad depths chart the knee of the curve.
pub fn sweep_fronts(bmt_levels: u32) -> Vec<SweepFront> {
    let full = bmt_levels.min(u8::MAX as u32) as u8;
    vec![
        SweepFront::new("fastrec", Scheme::NoGap, 0, true),
        SweepFront::new("triad-full", Scheme::NoGap, full, false),
        SweepFront::new("nogap", Scheme::NoGap, 0, false),
        SweepFront::new("cobcm", Scheme::Cobcm, 0, false),
        SweepFront::new("triad4", Scheme::NoGap, 4, false),
        SweepFront::new("triad2", Scheme::NoGap, 2, false),
        SweepFront::new("m", Scheme::M, 0, false),
        SweepFront::new("cm", Scheme::Cm, 0, false),
    ]
}

/// One measured point of the curve.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Point label.
    pub name: String,
    /// Scheme the point ran.
    pub scheme: Scheme,
    /// Durable metadata writes per leaf persist.
    pub write_amplification: f64,
    /// Cycles from crash detection to sec-sync closure (battery work).
    pub crash_flush_cycles: u64,
    /// The policy's exact post-crash sweep accounting.
    pub cost: RecoveryCost,
    /// `crash_flush_cycles + cost.cycles`.
    pub total_recovery_cycles: u64,
    /// Whether post-crash recovery verified consistent.
    pub consistent: bool,
    /// `None` on success, the reason otherwise.
    pub failure: Option<String>,
}

impl SweepPoint {
    fn failed(name: &str, scheme: Scheme, why: String) -> Self {
        SweepPoint {
            name: name.to_string(),
            scheme,
            write_amplification: 0.0,
            crash_flush_cycles: 0,
            cost: RecoveryCost::default(),
            total_recovery_cycles: 0,
            consistent: false,
            failure: Some(why),
        }
    }

    /// JSON object for machine consumption.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("point", self.name.as_str())
            .field("scheme", self.scheme.name())
            .field("write_amplification", self.write_amplification)
            .field("crash_flush_cycles", self.crash_flush_cycles)
            .field("counter_pages_read", self.cost.counter_pages_read)
            .field("tree_nodes_read", self.cost.tree_nodes_read)
            .field("hashes_folded", self.cost.hashes_folded)
            .field("blocks_swept", self.cost.blocks_swept)
            .field("recovery_cycles", self.cost.cycles)
            .field("total_recovery_cycles", self.total_recovery_cycles)
            .field("consistent", self.consistent)
            .field(
                "failure",
                match &self.failure {
                    Some(why) => Json::from(why.as_str()),
                    None => Json::Null,
                },
            )
    }
}

/// The whole curve plus the pinned ordering verdict.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// The workload every point replayed.
    pub workload: String,
    /// Instructions per point.
    pub instructions: u64,
    /// Measured points in [`sweep_fronts`] order.
    pub points: Vec<SweepPoint>,
    /// Ordering violations (empty when the curve is monotone).
    pub violations: Vec<String>,
}

impl SweepReport {
    /// Every point consistent and the fastrec ≤ triad(full) ≤ eager-ish
    /// ≤ lazy ordering intact.
    pub fn passed(&self) -> bool {
        self.violations.is_empty() && self.points.iter().all(|p| p.failure.is_none())
    }

    /// JSON object for machine consumption (embedded in
    /// `BENCH_grid.json` as `recovery_curve`).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("workload", self.workload.as_str())
            .field("instructions", self.instructions)
            .field("passed", self.passed())
            .field(
                "violations",
                Json::arr(self.violations.iter().map(String::as_str)),
            )
            .field(
                "points",
                Json::Arr(self.points.iter().map(SweepPoint::to_json).collect()),
            )
    }

    /// Human-readable table.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "recovery sweep: {} @ {} instructions\n{:<12} {:>8} {:>14} {:>14} {:>14}  ok\n",
            self.workload,
            self.instructions,
            "point",
            "write-amp",
            "flush cycles",
            "sweep cycles",
            "total cycles"
        );
        for p in &self.points {
            out.push_str(&format!(
                "{:<12} {:>8.3} {:>14} {:>14} {:>14}  {}\n",
                p.name,
                p.write_amplification,
                p.crash_flush_cycles,
                p.cost.cycles,
                p.total_recovery_cycles,
                match &p.failure {
                    None => "yes".to_string(),
                    Some(why) => format!("FAILED: {why}"),
                }
            ));
        }
        for v in &self.violations {
            out.push_str(&format!("ORDERING VIOLATION: {v}\n"));
        }
        if self.passed() {
            out.push_str("curve monotone: fastrec <= triad-full <= nogap <= cobcm\n");
        }
        out
    }
}

fn run_point(cfg: &SweepConfig, front: SweepFront) -> SweepPoint {
    let profile = match WorkloadProfile::named(&cfg.workload) {
        Some(p) => p,
        None => {
            return SweepPoint::failed(
                front.name,
                front.scheme,
                format!("unknown workload `{}`", cfg.workload),
            )
        }
    };
    let sys_cfg = SystemConfig::default()
        .with_metadata_mode(cfg.mode)
        .with_triad_levels(front.triad_levels)
        .with_shadow_counters(front.shadow);
    let mut sys = match SecureSystem::build(sys_cfg, front.scheme, TreeKind::Monolithic, cfg.seed) {
        Ok(s) => s,
        Err(e) => {
            return SweepPoint::failed(
                front.name,
                front.scheme,
                format!("invalid configuration: {e}"),
            )
        }
    };
    // Every point replays the identical store stream: same profile, same
    // generator seed — the policy is the only axis that moves.
    let mut generator = TraceGenerator::new(profile, cfg.seed);
    sys.run_trace(generator.stream(cfg.instructions));
    let dyn_sys: &mut dyn PersistSystem = &mut sys;
    let crash = match dyn_sys.crash(CrashKind::PowerLoss, DrainPolicy::DrainAll) {
        Ok(c) => c,
        Err(e) => {
            return SweepPoint::failed(front.name, front.scheme, format!("crash drain failed: {e}"))
        }
    };
    let rec = dyn_sys.recover();
    let cost = dyn_sys.recovery_cost();
    let flush = crash.secsync_complete_at.raw() - crash.at.raw();
    SweepPoint {
        name: front.name.to_string(),
        scheme: front.scheme,
        write_amplification: sys.policy_state().write_amplification(),
        crash_flush_cycles: flush,
        cost,
        total_recovery_cycles: flush + cost.cycles,
        consistent: rec.is_consistent(),
        failure: if rec.is_consistent() {
            None
        } else {
            Some(format!(
                "recovery inconsistent: root_ok={}, mac_failures={}",
                rec.root_ok,
                rec.mac_failures.len()
            ))
        },
    }
}

/// Runs the sweep and checks the monotone ordering of the pinned chain
/// (the first four points of [`sweep_fronts`]): total recovery latency
/// must not decrease from `fastrec` through `triad-full` and the
/// all-early baseline to lazy COBCM.
pub fn run_sweep(cfg: &SweepConfig) -> SweepReport {
    let bmt_levels = SystemConfig::default().security.bmt_levels;
    let points: Vec<SweepPoint> = sweep_fronts(bmt_levels)
        .into_iter()
        .map(|f| run_point(cfg, f))
        .collect();
    let mut violations = Vec::new();
    let chain = ["fastrec", "triad-full", "nogap", "cobcm"];
    for pair in chain.windows(2) {
        let find = |n: &str| points.iter().find(|p| p.name == n);
        if let (Some(a), Some(b)) = (find(pair[0]), find(pair[1])) {
            if a.failure.is_none()
                && b.failure.is_none()
                && a.total_recovery_cycles > b.total_recovery_cycles
            {
                violations.push(format!(
                    "{} ({} cycles) should recover no slower than {} ({} cycles)",
                    pair[1], b.total_recovery_cycles, pair[0], a.total_recovery_cycles
                ));
            }
        }
    }
    SweepReport {
        workload: cfg.workload.clone(),
        instructions: cfg.instructions,
        points,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_is_monotone_and_consistent() {
        let report = run_sweep(&SweepConfig::quick(0x5EC9_B0A2));
        assert!(report.passed(), "{}", report.render_text());
        assert_eq!(report.points.len(), 8);
        // The trade-off is real: fastrec buys its recovery latency with
        // write amplification the baselines do not pay.
        let by_name = |n: &str| report.points.iter().find(|p| p.name == n).unwrap();
        assert!(by_name("fastrec").write_amplification > 1.0);
        assert!(by_name("triad-full").write_amplification > by_name("triad2").write_amplification);
        assert_eq!(by_name("nogap").write_amplification, 1.0);
        assert_eq!(by_name("cobcm").write_amplification, 1.0);
        // And recovery latency orders the other way round.
        assert!(
            by_name("fastrec").cost.cycles <= by_name("triad-full").cost.cycles
                && by_name("triad-full").cost.cycles <= by_name("nogap").cost.cycles
        );
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = run_sweep(&SweepConfig::quick(11)).to_json().to_pretty();
        let b = run_sweep(&SweepConfig::quick(11)).to_json().to_pretty();
        assert_eq!(a, b);
    }

    #[test]
    fn report_renders_every_point() {
        let report = run_sweep(&SweepConfig::quick(3));
        let text = report.render_text();
        for p in &report.points {
            assert!(text.contains(&p.name), "missing {} in\n{text}", p.name);
        }
        let json = report.to_json().to_pretty();
        assert!(json.contains("recovery_cycles"));
    }
}
