//! The sharded multi-tenant persist service: `secpb serve`.
//!
//! Runs N independent [`PersistDomain`]-backed shards side by side, each
//! a full single-core SecPB front, and serves streaming store traces
//! from many concurrent tenants:
//!
//! * **Sharding** — a tenant (and its ASID) maps to a shard by a stable
//!   `derive_seed`-style hash of its name, so placement is a pure
//!   function of the tenant, never of arrival order.
//! * **Ingest** — one client thread per tenant streams its trace in
//!   per-epoch chunks; an assembler folds the concurrently-arriving
//!   chunks into *canonical* per-shard epoch batches (tenants in
//!   shard-local order) and feeds them to the long-lived shard workers
//!   of [`pool::run_sharded`] through bounded ingress queues with
//!   bounded work stealing.
//! * **Epoch-batched drains** — each shard folds its deferred security
//!   metadata once per epoch ([`PersistSystem::sync_metadata`]): the
//!   lazy engine then hashes whole dirty tree levels in sibling batches
//!   and coalesces counter digests, amortizing metadata cost across the
//!   epoch instead of paying it per store.
//! * **QoS** — every tenant carries a [`QosClass`] that bounds how many
//!   trace items it may contribute to any one epoch.  Classes are only
//!   settable through the privileged config path
//!   ([`ServeConfig::set_qos`] + [`PrivilegeToken`]); the data plane
//!   re-checks the bound per epoch and counts violations, which CI
//!   treats as failures.
//! * **Observability** — with telemetry enabled each shard streams
//!   through its own SPSC ring into a per-shard [`HealthMonitor`],
//!   emitting one [`HealthSnapshot`] per epoch.
//!
//! # Determinism
//!
//! A shard's outcome is a pure function of `(its tenants' traces, its
//! shard seed)`.  The shard seed derives from the shard's tenant names
//! (not the shard index or count), epoch batches are assembled in
//! canonical tenant order regardless of chunk arrival, and the pool
//! processes each shard's batches FIFO under an exclusive claim — so the
//! same tenants produce **byte-identical** shard stats and recovery
//! verdicts at any shard count, worker count, interleaving, or steal
//! schedule, with telemetry on or off.  [`ShardOutcome::digest`] pins
//! that contract.
//!
//! # Fault tolerance
//!
//! The serve plane survives its own workers dying mid-epoch.  Every
//! shard checkpoints its full system state
//! ([`PersistSystem::checkpoint`]) every [`ServeConfig::checkpoint_every`]
//! epochs and journals the batches processed since.  A worker panic —
//! injected by a [`ServeFaultPlan`] crash trigger or otherwise — is
//! caught by the pool while the shard claim is still held: the shard
//! restores its last checkpoint, the journal replays in order ahead of
//! all queued work, and because restore-then-replay is byte-identical to
//! the uninterrupted run (the [`checkpoint`] module's contract), the
//! recovered shard digests exactly like one that never crashed.
//! Brown-out epochs degrade gracefully instead: parts whose QoS class
//! the energy budget cannot fund are *deferred* to a later epoch —
//! bronze first, gold never, nothing ever dropped.  Ingress backpressure
//! is bounded: a shard whose queue never frees space turns into a typed
//! [`ServeError::ShardWedged`] instead of an indefinite condvar wait.
//!
//! [`PersistDomain`]: secpb_core::domain::PersistDomain
//! [`checkpoint`]: secpb_core::checkpoint

use std::collections::VecDeque;
use std::sync::mpsc;

use secpb_core::crash::{CrashKind, DrainPolicy};
use secpb_core::facade::PersistSystem;
use secpb_core::metrics::{counters, histograms};
use secpb_core::scheme::Scheme;
use secpb_core::system::SecureSystem;
use secpb_core::tree::TreeKind;
use secpb_energy::drain::secpb_drain_energy;
use secpb_sim::addr::Asid;
use secpb_sim::config::SystemConfig;
use secpb_sim::fault::{BrownOut, CrashTrigger, FaultClock};
use secpb_sim::fxhash::derive_seed;
use secpb_sim::pool::{self, ShardPoolConfig, ShardPoolError, ShardPoolStats};
use secpb_sim::telemetry::{
    self, HealthGauges, HealthMonitor, HealthSnapshot, TelemetryReader, DEFAULT_RING_CAPACITY,
};
use secpb_sim::trace::TraceItem;
use secpb_workloads::{trace_io, TraceGenerator, WorkloadProfile};

use crate::storm::energy_scheme;

/// Deterministic seed base for the service plane (tenant placement and
/// shard key derivation both salt from here).
pub const SERVE_SEED: u64 = 0x5E2B_5EED;

/// Marker prefix of the panics a [`ServeFaultPlan`] crash trigger
/// injects (see [`quiet_injected_faults`]).
const INJECTED_FAULT: &str = "injected shard fault";

/// Why a service run failed.  Typed so callers (the CLI, the soak
/// harness, CI gates) report faults precisely instead of pattern-matching
/// strings.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The configuration is unusable (shard count, tenant set, a fault
    /// plan without checkpointing, a misrouted task).
    Config(String),
    /// A tenant's trace could not be loaded; for malformed SPB1 files
    /// the detail names the item index and byte offset.
    Tenant {
        /// The tenant whose trace failed.
        tenant: String,
        /// I/O or parse detail.
        detail: String,
    },
    /// A shard's ingress queue stayed full past
    /// [`ServeConfig::wedge_timeout_ms`]: its worker is stuck (or
    /// pathologically slow) and the producer refuses to block forever.
    ShardWedged {
        /// The wedged shard.
        shard: usize,
        /// Total milliseconds the producer waited before giving up.
        waited_ms: u64,
    },
    /// Shard workers died with no recovery path (checkpointing disabled,
    /// or a panic inside recovery itself).
    WorkerPanicked {
        /// How many workers died.
        workers: usize,
    },
    /// The final crash drain or recovery sweep of a shard failed.
    CrashCheck {
        /// The failing shard.
        shard: usize,
        /// What went wrong.
        detail: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config(detail) => write!(f, "serve: {detail}"),
            ServeError::Tenant { tenant, detail } => {
                write!(f, "serve: tenant `{tenant}`: {detail}")
            }
            ServeError::ShardWedged { shard, waited_ms } => write!(
                f,
                "serve: shard {shard} ingress wedged: no queue space freed after {waited_ms} ms"
            ),
            ServeError::WorkerPanicked { workers } => write!(
                f,
                "serve: {workers} shard worker(s) panicked beyond recovery"
            ),
            ServeError::CrashCheck { shard, detail } => {
                write!(
                    f,
                    "serve: shard {shard}: final crash drain failed: {detail}"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// One data-plane QoS violation: a tenant's epoch contribution exceeded
/// the quota its class guarantees.  [`run_serve`] records these on the
/// [`ShardOutcome`] (the run itself continues); the CLI turns a non-zero
/// count into a failure naming every violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QosViolation {
    /// The offending tenant.
    pub tenant: String,
    /// Its QoS class.
    pub qos: QosClass,
    /// The epoch whose batch exceeded the bound.
    pub epoch: u64,
    /// Items the tenant placed into that epoch.
    pub items: u64,
    /// The per-epoch quota the class guarantees.
    pub quota: u64,
}

impl std::fmt::Display for QosViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tenant `{}` (qos {}) placed {} items into epoch {}, quota {}",
            self.tenant,
            self.qos.name(),
            self.items,
            self.epoch,
            self.quota
        )
    }
}

/// Seed-driven fault schedule for a service run.  Every decision is a
/// pure function of the plan and each shard's own canonical batch
/// stream, so the same plan over the same tenants injects the same
/// faults at any shard count, worker count, or interleaving.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeFaultPlan {
    /// Plan seed (schedules and victim picks derive from it).
    pub seed: u64,
    /// Mid-epoch crash trigger, evaluated per shard against its own
    /// store stream.  A firing panics the shard worker mid-batch; the
    /// pool catches it, the shard restores its last epoch checkpoint and
    /// replays its journal.  Replayed stores never re-arm the trigger,
    /// so recovery always makes forward progress.
    pub trigger: CrashTrigger,
    /// Every `k`-th epoch batch (per shard) runs under
    /// [`Self::brown_out`]; `0` disables brown-outs.
    pub brown_out_every: u64,
    /// Brown-out severity: the drain-energy budget available during
    /// affected epochs.  Classes the budget cannot fund are shed
    /// bronze-first (work is deferred to a later epoch, never dropped).
    pub brown_out: BrownOut,
}

impl Default for ServeFaultPlan {
    fn default() -> Self {
        ServeFaultPlan::none()
    }
}

impl ServeFaultPlan {
    /// The do-nothing plan: no crashes, no brown-outs.
    pub fn none() -> Self {
        ServeFaultPlan {
            seed: 0,
            trigger: CrashTrigger::Never,
            brown_out_every: 0,
            brown_out: BrownOut::with_budget(f64::INFINITY),
        }
    }

    /// A soak-style schedule: crash every `n` stores per shard, and
    /// every `k`-th epoch browns out to `budget_joules`.
    pub fn storm(seed: u64, every_n_stores: u64, brown_out_every: u64, budget_joules: f64) -> Self {
        ServeFaultPlan {
            seed,
            trigger: CrashTrigger::EveryNthStore(every_n_stores.max(1)),
            brown_out_every,
            brown_out: BrownOut::with_budget(budget_joules),
        }
    }

    /// The same brown-out schedule with crashes disabled — the digest
    /// reference: a faulted run must match this run byte-for-byte.
    pub fn crash_free(&self) -> Self {
        ServeFaultPlan {
            trigger: CrashTrigger::Never,
            ..self.clone()
        }
    }

    /// Whether the plan can fire crashes at all.
    fn crashes(&self) -> bool {
        self.trigger != CrashTrigger::Never
    }
}

/// Installs (once, process-wide) a panic hook that silences the panic
/// reports of *injected* shard faults while forwarding every real panic
/// to the previous hook.  A soak run fires hundreds of injected crashes;
/// without this, each one would spray a backtrace onto stderr even
/// though the pool catches and recovers every single one.
pub fn quiet_injected_faults() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.starts_with(INJECTED_FAULT));
            if !injected {
                prev(info);
            }
        }));
    });
}

/// A tenant's quality-of-service class: how much of an epoch the tenant
/// may occupy on its shard.
///
/// The class caps the trace items a tenant contributes to any single
/// epoch batch, so a heavy tenant cannot starve its shard-mates: within
/// every epoch each unfinished tenant is guaranteed its own quota
/// regardless of what others submit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QosClass {
    /// Full epoch quota.
    Gold,
    /// Half the epoch quota.
    #[default]
    Silver,
    /// A quarter of the epoch quota.
    Bronze,
}

impl QosClass {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            QosClass::Gold => "gold",
            QosClass::Silver => "silver",
            QosClass::Bronze => "bronze",
        }
    }

    /// The per-epoch ingress quota in trace items for a nominal epoch
    /// length (always at least 1, so every tenant makes progress).
    pub fn epoch_quota(self, epoch_len: usize) -> usize {
        let q = match self {
            QosClass::Gold => epoch_len,
            QosClass::Silver => epoch_len / 2,
            QosClass::Bronze => epoch_len / 4,
        };
        q.max(1)
    }
}

/// Capability token for the privileged configuration path.
///
/// QoS classes bound cross-tenant starvation, so letting a tenant pick
/// its own class would be privilege escalation: [`ServeConfig::set_qos`]
/// demands this token, which only the operator assembling the
/// [`ServeConfig`] can mint.  Nothing reachable from the data plane — a
/// [`TenantSpec`], a running service, a trace stream — can construct or
/// obtain one, and a sealed running service exposes no QoS mutation
/// surface at all.
#[derive(Debug)]
pub struct PrivilegeToken {
    _config_time_only: (),
}

impl PrivilegeToken {
    /// Mints the token.  Call this only on the operator/config path,
    /// never on behalf of tenant input.
    pub fn acquire() -> Self {
        PrivilegeToken {
            _config_time_only: (),
        }
    }
}

/// Where a tenant's store trace comes from.
#[derive(Debug, Clone)]
pub enum TenantSource {
    /// Synthetic: the named workload generator, seeded from the tenant
    /// name (same tenant, same trace — at any shard count).
    Synthetic(WorkloadProfile),
    /// Replay of an on-disk `SPB1` trace file (see
    /// [`trace_io::read_trace`]); malformed files fail service startup
    /// with the item index and byte offset.
    File(String),
}

/// One tenant of the service.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Unique tenant name; hashing it places the tenant on a shard.
    pub name: String,
    /// Trace source.
    pub source: TenantSource,
    /// Instruction budget for synthetic tenants (file tenants replay
    /// the whole file).
    pub instructions: u64,
    /// QoS class — private: assigned only via [`ServeConfig::set_qos`].
    qos: QosClass,
}

impl TenantSpec {
    /// A synthetic tenant with the default ([`QosClass::Silver`]) class.
    pub fn synthetic(name: &str, profile: WorkloadProfile, instructions: u64) -> Self {
        TenantSpec {
            name: name.to_owned(),
            source: TenantSource::Synthetic(profile),
            instructions,
            qos: QosClass::default(),
        }
    }

    /// A file-replay tenant with the default class.
    pub fn from_file(name: &str, path: &str) -> Self {
        TenantSpec {
            name: name.to_owned(),
            source: TenantSource::File(path.to_owned()),
            instructions: 0,
            qos: QosClass::default(),
        }
    }

    /// The tenant's QoS class.
    pub fn qos(&self) -> QosClass {
        self.qos
    }
}

/// Service configuration.  Fully determines every shard's outcome.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Shard (persist-domain) count.
    pub shards: usize,
    /// Worker threads driving the shards.
    pub workers: usize,
    /// Nominal epoch length in trace items ([`QosClass::Gold`]'s
    /// per-epoch quota; lower classes get a fraction).
    pub epoch_len: usize,
    /// Per-shard ingress queue bound (epoch batches).
    pub queue_capacity: usize,
    /// Bounded work stealing: max batches a non-owner may take per
    /// claim; 0 pins every shard to its owner.
    pub steal_bound: usize,
    /// Metadata-persistence scheme every shard runs.
    pub scheme: Scheme,
    /// Integrity-tree organisation per shard.  Defaults to the DBMF
    /// forest: its secure root cache is what epoch-boundary syncs fold
    /// in batch, so the epoch drain actually amortizes tree work
    /// (a monolithic BMT charges every update its full walk up front
    /// and syncs are free).
    pub tree: TreeKind,
    /// Machine configuration per shard.
    pub sys_cfg: SystemConfig,
    /// Master seed (shard keys and synthetic tenant traces derive from
    /// it plus stable names — never from shard indices).
    pub seed: u64,
    /// Attach a per-shard telemetry ring and emit one
    /// [`HealthSnapshot`] per epoch.
    pub telemetry: bool,
    /// Ring capacity in events when telemetry is on.
    pub ring_capacity: usize,
    /// Crash (power loss, full drain) and verify recovery of every
    /// shard after the last epoch.
    pub crash_check: bool,
    /// Epochs between shard checkpoints ([`PersistSystem::checkpoint`]);
    /// crash recovery restores the latest one and replays the journal.
    /// `0` disables checkpointing — and with it, crash recovery.
    pub checkpoint_every: u64,
    /// Producer-side bound (milliseconds) on waiting for a full shard
    /// ingress queue before failing with [`ServeError::ShardWedged`];
    /// `0` waits forever.
    pub wedge_timeout_ms: u64,
    /// Fault schedule: injected crashes and brown-outs.
    pub faults: ServeFaultPlan,
    /// The tenants.
    pub tenants: Vec<TenantSpec>,
}

impl ServeConfig {
    /// A service with sane defaults and no tenants yet.
    pub fn new(shards: usize) -> Self {
        ServeConfig {
            shards,
            workers: shards.max(1),
            epoch_len: 1024,
            queue_capacity: 4,
            steal_bound: 2,
            scheme: Scheme::Cobcm,
            tree: TreeKind::Dbmf,
            sys_cfg: SystemConfig::default(),
            seed: SERVE_SEED,
            telemetry: false,
            ring_capacity: DEFAULT_RING_CAPACITY,
            crash_check: true,
            checkpoint_every: 4,
            wedge_timeout_ms: 10_000,
            faults: ServeFaultPlan::none(),
            tenants: Vec::new(),
        }
    }

    /// The CI smoke shape: 2 shards, 4 small synthetic tenants with
    /// mixed QoS classes, telemetry on.
    pub fn quick() -> Self {
        let mut cfg = ServeConfig::new(2);
        cfg.epoch_len = 256;
        cfg.telemetry = true;
        let token = PrivilegeToken::acquire();
        for (i, (bench, qos)) in [
            ("gamess", QosClass::Gold),
            ("milc", QosClass::Silver),
            ("povray", QosClass::Bronze),
            ("hmmer", QosClass::Silver),
        ]
        .iter()
        .enumerate()
        {
            let name = format!("t{i}-{bench}");
            cfg.tenants.push(TenantSpec::synthetic(
                &name,
                WorkloadProfile::named(bench).expect("known benchmark"),
                6_000,
            ));
            cfg.set_qos(&name, *qos, &token).expect("tenant just added");
        }
        cfg
    }

    /// Adds a tenant (with the default QoS class).
    pub fn with_tenant(mut self, tenant: TenantSpec) -> Self {
        self.tenants.push(tenant);
        self
    }

    /// Sets a tenant's QoS class — the privileged path.  The required
    /// [`PrivilegeToken`] keeps this off the data plane: a running
    /// service exposes no equivalent, and tenant-supplied input never
    /// reaches this call.
    ///
    /// # Errors
    ///
    /// Returns the unknown tenant name.
    pub fn set_qos(
        &mut self,
        tenant: &str,
        class: QosClass,
        _privilege: &PrivilegeToken,
    ) -> Result<(), String> {
        match self.tenants.iter_mut().find(|t| t.name == tenant) {
            Some(t) => {
                t.qos = class;
                Ok(())
            }
            None => Err(format!("unknown tenant `{tenant}`")),
        }
    }

    /// The shard a tenant name maps to: a stable hash, independent of
    /// tenant order and of everything but `shards` itself.
    pub fn shard_of(&self, tenant: &str) -> usize {
        (derive_seed(SERVE_SEED, &[tenant]) % self.shards.max(1) as u64) as usize
    }
}

/// Per-tenant accounting of one service run.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// Shard the tenant was placed on.
    pub shard: usize,
    /// Shard-local ASID the tenant's accesses were tagged with.
    pub asid: u16,
    /// QoS class.
    pub qos: QosClass,
    /// Per-epoch item quota derived from the class.
    pub quota: usize,
    /// Trace items the tenant submitted in total.
    pub items: u64,
    /// Stores among those items.
    pub stores: u64,
    /// Epochs the tenant needed to submit its trace (a throttled tenant
    /// spreads the same items over more epochs).
    pub epochs_used: u64,
    /// Largest item count the tenant placed into any single epoch;
    /// bounded by `quota` — the data plane re-checks this.
    pub max_items_in_epoch: u64,
}

/// The outcome of one shard: everything the determinism contract pins.
#[derive(Debug)]
pub struct ShardOutcome {
    /// Shard index.
    pub shard: usize,
    /// Tenant names on this shard, in canonical (config) order.
    pub tenants: Vec<String>,
    /// Epoch batches processed.
    pub epochs: u64,
    /// Trace items replayed.
    pub items: u64,
    /// Stores replayed.
    pub stores: u64,
    /// SecPB-accepted persists (`secpb.persists`).
    pub persists: u64,
    /// Analytic hashes charged to epoch-boundary metadata syncs.
    pub sync_hashes: u64,
    /// Final simulated cycle.
    pub cycles: u64,
    /// Model-invariant anomalies (must be 0).
    pub anomalies: u64,
    /// QoS violations observed by the data-plane re-check (must be 0).
    pub qos_violations: u64,
    /// Every QoS violation with tenant, class, and epoch (empty in a
    /// healthy run).
    pub qos_events: Vec<QosViolation>,
    /// Epoch-parts deferred under brown-out degradation (deferred, never
    /// dropped — flushed before the final crash check).
    pub shed: u64,
    /// Tenant chunks replayed into the shard after crash recoveries.
    pub replayed: u64,
    /// Times the shard was restored from its epoch checkpoint.
    pub restored: u64,
    /// Entries drained by the final crash check (`None` when
    /// [`ServeConfig::crash_check`] is off).
    pub crash_drained: Option<u64>,
    /// Whether the post-crash recovery sweep was consistent (`true`
    /// when the check is off).
    pub recovery_consistent: bool,
    /// Per-epoch health snapshots (empty with telemetry off).
    pub snapshots: Vec<HealthSnapshot>,
    /// Telemetry events dropped by the shard's ring.
    pub telemetry_dropped: u64,
    /// Raw shard statistics.
    pub stats: secpb_sim::stats::Stats,
}

impl ShardOutcome {
    /// A stable hex digest over everything the determinism contract
    /// covers: tenant names, cycles, every stat counter and histogram,
    /// the sync-hash total, and the recovery verdict.  Two runs placing
    /// the same tenants on a shard — at any shard count, worker count,
    /// or interleaving, telemetry on or off — must produce equal
    /// digests.
    ///
    /// The fault-tolerance counters ([`Self::shed`], [`Self::replayed`],
    /// [`Self::restored`]) are deliberately excluded: a shard that
    /// crashed and recovered must digest byte-identically to the
    /// uninterrupted reference run.  (Shed counts are still
    /// crash-invariant — the soak harness asserts their equality
    /// separately.)
    pub fn digest(&self) -> String {
        let mut hasher = secpb_crypto::sha512::Sha512::new();
        for t in &self.tenants {
            hasher.update(t.as_bytes());
            hasher.update(b"\0");
        }
        for v in [
            self.epochs,
            self.items,
            self.stores,
            self.persists,
            self.sync_hashes,
            self.cycles,
            self.anomalies,
            self.qos_violations,
            self.crash_drained.unwrap_or(u64::MAX),
            u64::from(self.recovery_consistent),
        ] {
            hasher.update(&v.to_le_bytes());
        }
        for (name, value) in self.stats.iter() {
            hasher.update(name.as_bytes());
            hasher.update(&value.to_le_bytes());
        }
        for (name, hist) in self.stats.histograms() {
            hasher.update(name.as_bytes());
            for &count in hist.counts() {
                hasher.update(&count.to_le_bytes());
            }
        }
        hasher.finalize().to_hex()
    }
}

/// The outcome of a whole service run.
#[derive(Debug)]
pub struct ServeOutcome {
    /// Per-shard outcomes, indexed by shard (empty shards included).
    pub shards: Vec<ShardOutcome>,
    /// Per-tenant accounting, in config order.
    pub tenants: Vec<TenantReport>,
    /// Pool scheduling stats (steals, queue depths, backpressure).
    pub pool: ShardPoolStats,
}

impl ServeOutcome {
    /// Total stores replayed across all shards.
    pub fn total_stores(&self) -> u64 {
        self.shards.iter().map(|s| s.stores).sum()
    }

    /// Total SecPB-accepted persists across all shards.
    pub fn total_persists(&self) -> u64 {
        self.shards.iter().map(|s| s.persists).sum()
    }

    /// Total model-invariant anomalies (0 in a healthy run).
    pub fn total_anomalies(&self) -> u64 {
        self.shards.iter().map(|s| s.anomalies).sum()
    }

    /// Total QoS violations (0 in a healthy run).
    pub fn total_qos_violations(&self) -> u64 {
        self.shards.iter().map(|s| s.qos_violations).sum()
    }

    /// Whether every shard's recovery sweep was consistent.
    pub fn consistent(&self) -> bool {
        self.shards.iter().all(|s| s.recovery_consistent)
    }

    /// Total epoch-parts deferred by brown-outs.
    pub fn total_shed(&self) -> u64 {
        self.shards.iter().map(|s| s.shed).sum()
    }

    /// Total tenant chunks replayed after crash recoveries.
    pub fn total_replayed(&self) -> u64 {
        self.shards.iter().map(|s| s.replayed).sum()
    }

    /// Total shard restores from epoch checkpoints.
    pub fn total_restored(&self) -> u64 {
        self.shards.iter().map(|s| s.restored).sum()
    }

    /// Every QoS violation across all shards, in shard order.
    pub fn qos_events(&self) -> impl Iterator<Item = &QosViolation> {
        self.shards.iter().flat_map(|s| s.qos_events.iter())
    }
}

/// One epoch batch bound for a shard: the canonical concatenation of
/// its tenants' chunks for that epoch.  `Clone` because processed
/// batches are journaled for crash replay.
#[derive(Clone)]
struct EpochBatch {
    epoch: u64,
    /// `(asid, items)` per contributing tenant, in shard-local order.
    parts: Vec<(u16, Vec<TraceItem>)>,
}

/// A chunk (or end-of-stream) from one client thread.
enum ClientMsg {
    Chunk {
        tenant: usize,
        epoch: u64,
        items: Vec<TraceItem>,
    },
    Finished {
        tenant: usize,
    },
}

/// Per-tenant shard-local bookkeeping for the data-plane QoS re-check,
/// violation reporting, and brown-out shedding.
struct TenantQuota {
    asid: u16,
    name: String,
    qos: QosClass,
    quota: u64,
}

/// Shedding priority: higher ranks are shed first during a brown-out.
fn class_rank(qos: QosClass) -> usize {
    match qos {
        QosClass::Gold => 0,
        QosClass::Silver => 1,
        QosClass::Bronze => 2,
    }
}

/// How deep a brown-out cuts: the lowest class rank that gets *shed*
/// (classes at or past the returned rank are deferred).  The budget is
/// compared against the energy of a full SecPB drain for the scheme: a
/// budget that funds a full drain sheds nothing (rank 3 — past bronze);
/// one that funds at least half sheds bronze only; anything tighter
/// sheds silver too.  Gold is never shed, so every brown-out epoch
/// still makes forward progress.
fn shed_rank_floor(plan: &ServeFaultPlan, scheme: Scheme, secpb_entries: usize) -> usize {
    if plan.brown_out_every == 0 {
        return 3;
    }
    let full = secpb_drain_energy(energy_scheme(scheme), secpb_entries);
    let budget = plan.brown_out.budget_joules;
    if budget >= full {
        3
    } else if budget >= full / 2.0 {
        2
    } else {
        1
    }
}

/// Everything needed to rewind a shard to an epoch boundary: the
/// system's versioned checkpoint bytes plus the shard-level accounting
/// the determinism contract covers.  Telemetry state (monitor, ring
/// reader, emitted snapshots) is deliberately absent — it observes,
/// never steers, so replayed epochs simply re-emit events.
struct ShardCheckpoint {
    sys: Vec<u8>,
    epochs: u64,
    items: u64,
    stores: u64,
    sync_hashes: u64,
    qos_violations: u64,
    qos_events: Vec<QosViolation>,
    deferred: Vec<(u16, Vec<TraceItem>)>,
    shed: u64,
}

/// The state one shard worker owns.
struct ShardState {
    sys: Box<dyn PersistSystem + Send>,
    monitor: HealthMonitor,
    reader: Option<TelemetryReader>,
    front_name: String,
    scheme_name: &'static str,
    /// Shard-local tenant table for the QoS re-check and shedding.
    tenants: Vec<TenantQuota>,
    epochs: u64,
    items: u64,
    stores: u64,
    sync_hashes: u64,
    qos_violations: u64,
    qos_events: Vec<QosViolation>,
    snapshots: Vec<HealthSnapshot>,
    /// Brown-out epoch period from the fault plan (`0` = never).
    brown_out_every: u64,
    /// Lowest class rank shed during a brown-out (see
    /// [`shed_rank_floor`]).
    shed_floor: usize,
    /// Parts deferred by brown-outs, awaiting the next served epoch.
    deferred: Vec<(u16, Vec<TraceItem>)>,
    shed: u64,
    /// Crash trigger clock (`None` = crash injection disabled).
    fault_clock: Option<FaultClock>,
    /// Checkpoint cadence in epochs (`0` = off).
    checkpoint_every: u64,
    checkpoint: Option<ShardCheckpoint>,
    /// Batches processed since the last checkpoint — the replay log.
    journal: Vec<EpochBatch>,
    /// Batches still being replayed after a restore; while non-zero the
    /// crash trigger is disarmed so recovery always makes progress.
    replay_pending: usize,
    replayed: u64,
    restored: u64,
}

impl ShardState {
    /// Folds one epoch batch into the shard: brown-out shedding, the
    /// data-plane QoS re-check, trace replay (with the crash trigger
    /// armed on new ground), the epoch-boundary metadata drain, and —
    /// on cadence — a checkpoint.
    fn process(&mut self, batch: EpochBatch) {
        let replaying = self.replay_pending > 0;
        if replaying {
            self.replay_pending -= 1;
        }
        // The journal must always hold exactly the batches processed
        // since the last checkpoint — replayed batches included, so a
        // second crash during a replay still has a complete log.
        self.journal.push(batch.clone());

        // Brown-out degradation: during an affected epoch, parts whose
        // class the budget cannot fund are deferred — bronze first,
        // never gold, never dropped.  Previously deferred parts re-enter
        // ahead of the epoch's own parts (oldest work first) and are
        // re-deferred if the brown-out persists.
        let browned =
            self.brown_out_every > 0 && (batch.epoch + 1).is_multiple_of(self.brown_out_every);
        let mut parts = Vec::with_capacity(batch.parts.len() + self.deferred.len());
        for (asid, items) in std::mem::take(&mut self.deferred)
            .into_iter()
            .chain(batch.parts)
        {
            let rank = self
                .tenants
                .iter()
                .find(|t| t.asid == asid)
                .map_or(0, |t| class_rank(t.qos));
            if browned && rank >= self.shed_floor {
                self.shed += 1;
                self.deferred.push((asid, items));
            } else {
                parts.push((asid, items));
            }
        }

        let mut epoch_items = 0u64;
        for (asid, items) in &parts {
            // Data-plane QoS re-check: the ingest layer already chunks
            // by quota, so any oversized contribution here is a
            // violated invariant, not a throttling decision.
            match self.tenants.iter().find(|t| t.asid == *asid) {
                Some(t) if items.len() as u64 > t.quota => {
                    self.qos_violations += 1;
                    self.qos_events.push(QosViolation {
                        tenant: t.name.clone(),
                        qos: t.qos,
                        epoch: batch.epoch,
                        items: items.len() as u64,
                        quota: t.quota,
                    });
                }
                Some(_) => {}
                None => self.qos_violations += 1,
            }
            self.replay_items(items, replaying);
            epoch_items += items.len() as u64;
        }
        // The epoch-boundary drain: fold the whole epoch's deferred
        // tree paths and counter digests in one batched observation
        // point.
        self.sync_hashes += self.sys.sync_metadata();
        self.items += epoch_items;
        self.epochs += 1;
        self.snapshot(batch.epoch);
        if self.checkpoint_every > 0 && self.epochs.is_multiple_of(self.checkpoint_every) {
            self.take_checkpoint();
        }
    }

    /// Replays one part's items.  On new ground (not a journal replay)
    /// every completed store advances the crash trigger; a firing dies
    /// mid-epoch *by design* — the pool catches the panic and calls
    /// [`ShardState::recover`] under the held shard claim.
    fn replay_items(&mut self, items: &[TraceItem], replaying: bool) {
        for item in items {
            let is_store = item.access.is_some_and(|a| a.is_store());
            if is_store {
                self.stores += 1;
            }
            self.sys.step(*item);
            if is_store && !replaying {
                if let Some(clock) = self.fault_clock.as_mut() {
                    if clock
                        .observe_store(self.sys.finish_time().raw(), self.sys.drains_in_flight())
                    {
                        panic!(
                            "{INJECTED_FAULT}: store #{} (crash #{})",
                            clock.stores_seen(),
                            clock.crashes_fired()
                        );
                    }
                }
            }
        }
    }

    /// Captures the shard at the current epoch boundary and truncates
    /// the journal: recovery rewinds here and replays forward.  Fronts
    /// without checkpoint support keep the previous capture.
    fn take_checkpoint(&mut self) {
        let Ok(sys) = self.sys.checkpoint() else {
            return;
        };
        self.checkpoint = Some(ShardCheckpoint {
            sys,
            epochs: self.epochs,
            items: self.items,
            stores: self.stores,
            sync_hashes: self.sync_hashes,
            qos_violations: self.qos_violations,
            qos_events: self.qos_events.clone(),
            deferred: self.deferred.clone(),
            shed: self.shed,
        });
        self.journal.clear();
    }

    /// Crash recovery, run by the pool while the shard claim is still
    /// held: rewind to the last checkpoint and hand back the journaled
    /// batches for in-order replay ahead of all queued work.  Panics
    /// (fatally, by design) if the checkpoint bytes fail to restore — a
    /// shard that cannot rewind has no consistent state to serve from.
    fn recover(&mut self) -> Vec<EpochBatch> {
        let cp = self
            .checkpoint
            .as_ref()
            .expect("serve checkpoints every shard at startup");
        self.sys
            .restore(&cp.sys)
            .expect("a shard's own checkpoint bytes restore");
        self.epochs = cp.epochs;
        self.items = cp.items;
        self.stores = cp.stores;
        self.sync_hashes = cp.sync_hashes;
        self.qos_violations = cp.qos_violations;
        self.qos_events = cp.qos_events.clone();
        self.deferred = cp.deferred.clone();
        self.shed = cp.shed;
        let replay = std::mem::take(&mut self.journal);
        self.replay_pending = replay.len();
        self.replayed += replay.iter().map(|b| b.parts.len() as u64).sum::<u64>();
        self.restored += 1;
        replay
    }

    /// Executes any parts still deferred at shutdown as one trailing
    /// synthetic epoch: brown-outs defer, they never drop.  Runs on the
    /// teardown path after the pool — no crash trigger, no shedding.
    fn flush_deferred(&mut self) {
        if self.deferred.is_empty() {
            return;
        }
        let parts = std::mem::take(&mut self.deferred);
        let epoch = self.epochs;
        let mut epoch_items = 0u64;
        for (_, items) in &parts {
            self.replay_items(items, true);
            epoch_items += items.len() as u64;
        }
        self.sync_hashes += self.sys.sync_metadata();
        self.items += epoch_items;
        self.epochs += 1;
        self.snapshot(epoch);
    }

    /// Drains the telemetry ring into the shard monitor and emits one
    /// per-epoch snapshot (no-op with telemetry off).
    fn snapshot(&mut self, _epoch: u64) {
        let Some(reader) = self.reader.as_mut() else {
            return;
        };
        self.monitor.absorb(reader);
        let occupancy = self.sys.occupancy();
        let memo = self.sys.memo_stats();
        let gauges = HealthGauges {
            occupancy,
            anomalies: self.sys.anomalies(),
            nwpe: self
                .sys
                .stats()
                .ratio(counters::PERSISTS, counters::ALLOCATIONS),
            battery_joules: secpb_drain_energy(
                energy_scheme(self.sys.scheme()),
                occupancy as usize,
            ),
            recovery_cycles: self.sys.estimated_recovery_cycles(),
            memo_hits: memo.hits,
            memo_misses: memo.misses,
            memo_evictions: memo.evictions,
            shed_parts: self.shed,
            replayed_chunks: self.replayed,
            restored_shards: self.restored,
        };
        let snap = self.monitor.snapshot(
            self.sys.finish_time().raw(),
            &self.front_name,
            self.scheme_name,
            self.sys.stats(),
            &gauges,
            histograms::DRAIN_LATENCY,
            reader.dropped(),
        );
        self.snapshots.push(snap);
    }
}

/// Loads or generates one tenant's full item stream, ASID-tagged.
fn tenant_items(
    cfg: &ServeConfig,
    spec: &TenantSpec,
    asid: Asid,
) -> Result<Vec<TraceItem>, ServeError> {
    let fail = |path: &str, e: &dyn std::fmt::Display| ServeError::Tenant {
        tenant: spec.name.clone(),
        detail: format!("{path}: {e}"),
    };
    let raw = match &spec.source {
        TenantSource::Synthetic(profile) => {
            let seed = derive_seed(cfg.seed, &[spec.name.as_str()]);
            TraceGenerator::new(profile.clone(), seed).generate(spec.instructions)
        }
        TenantSource::File(path) => {
            let file = std::fs::File::open(path).map_err(|e| fail(path, &e))?;
            trace_io::read_trace(std::io::BufReader::new(file)).map_err(|e| fail(path, &e))?
        }
    };
    Ok(raw
        .into_iter()
        .map(|mut item| {
            if let Some(a) = item.access.as_mut() {
                a.asid = asid;
            }
            item
        })
        .collect())
}

/// Assembles concurrently-arriving client chunks into canonical
/// per-shard epoch batches.
struct Assembler {
    rx: mpsc::Receiver<ClientMsg>,
    /// `tenant index → (shard, shard-local position, asid)`.
    placement: Vec<(usize, usize, u16)>,
    /// Per shard: tenants (global indices) in shard-local order.
    members: Vec<Vec<usize>>,
    /// Per shard: next epoch to emit.
    next_epoch: Vec<u64>,
    /// Per shard: buffered chunks by epoch → shard-local slot.
    buffered: Vec<VecDeque<Vec<Option<Vec<TraceItem>>>>>,
    /// Per tenant: epoch after which the tenant contributes nothing.
    finished_at: Vec<Option<u64>>,
    /// Per tenant: highest epoch chunk received so far.
    last_chunk: Vec<Option<u64>>,
    live_clients: usize,
    /// Ready batches not yet handed out.
    ready: VecDeque<(usize, EpochBatch)>,
}

impl Assembler {
    /// True when every member of `shard`'s epoch `at` slot is resolved:
    /// either a buffered chunk or a tenant known to be finished.
    fn epoch_complete(&self, shard: usize, slot: &[Option<Vec<TraceItem>>], at: u64) -> bool {
        self.members[shard].iter().enumerate().all(|(local, &t)| {
            slot[local].is_some() || self.finished_at[t].is_some_and(|f| f <= at)
        })
    }

    /// Emits every complete epoch at the head of each shard's buffer.
    fn harvest(&mut self) {
        for shard in 0..self.members.len() {
            loop {
                let at = self.next_epoch[shard];
                let Some(slot) = self.buffered[shard].front() else {
                    break;
                };
                if !self.epoch_complete(shard, slot, at) {
                    break;
                }
                let slot = self.buffered[shard].pop_front().expect("front exists");
                let parts: Vec<(u16, Vec<TraceItem>)> = slot
                    .into_iter()
                    .enumerate()
                    .filter_map(|(local, items)| {
                        let tenant = self.members[shard][local];
                        let asid = self.placement[tenant].2;
                        items.filter(|i| !i.is_empty()).map(|i| (asid, i))
                    })
                    .collect();
                self.next_epoch[shard] = at + 1;
                if !parts.is_empty() {
                    self.ready
                        .push_back((shard, EpochBatch { epoch: at, parts }));
                }
            }
        }
    }

    fn absorb(&mut self, msg: ClientMsg) {
        match msg {
            ClientMsg::Chunk {
                tenant,
                epoch,
                items,
            } => {
                let (shard, local, _) = self.placement[tenant];
                self.last_chunk[tenant] = Some(epoch);
                let base = self.next_epoch[shard];
                debug_assert!(epoch >= base, "chunks arrive in epoch order per tenant");
                let offset = (epoch - base) as usize;
                while self.buffered[shard].len() <= offset {
                    let width = self.members[shard].len();
                    self.buffered[shard].push_back(vec![None; width]);
                }
                self.buffered[shard][offset][local] = Some(items);
            }
            ClientMsg::Finished { tenant } => {
                self.finished_at[tenant] = Some(self.last_chunk[tenant].map_or(0, |e| e + 1));
                self.live_clients -= 1;
            }
        }
    }
}

impl Iterator for Assembler {
    type Item = (usize, EpochBatch);

    fn next(&mut self) -> Option<(usize, EpochBatch)> {
        loop {
            if let Some(batch) = self.ready.pop_front() {
                return Some(batch);
            }
            if self.live_clients == 0 {
                // Clients are done: flush any trailing partial epochs.
                self.harvest();
                return self.ready.pop_front();
            }
            match self.rx.recv() {
                Ok(msg) => {
                    self.absorb(msg);
                    self.harvest();
                }
                Err(_) => {
                    self.live_clients = 0;
                }
            }
        }
    }
}

/// Runs the service to completion.
///
/// # Errors
///
/// Fails on an invalid configuration (no tenants, duplicate names, a
/// crash plan without checkpointing), an unreadable or malformed tenant
/// trace file (naming the item index and byte offset), a wedged shard
/// ingress queue, a panicking shard worker beyond recovery, or a failed
/// final crash drain — each as its own [`ServeError`] variant.
pub fn run_serve(cfg: &ServeConfig) -> Result<ServeOutcome, ServeError> {
    if cfg.shards == 0 {
        return Err(ServeError::Config("shard count must be at least 1".into()));
    }
    if cfg.tenants.is_empty() {
        return Err(ServeError::Config("at least one tenant is required".into()));
    }
    for (i, t) in cfg.tenants.iter().enumerate() {
        if cfg.tenants[..i].iter().any(|o| o.name == t.name) {
            return Err(ServeError::Config(format!(
                "duplicate tenant name `{}`",
                t.name
            )));
        }
    }
    if cfg.faults.crashes() && cfg.checkpoint_every == 0 {
        return Err(ServeError::Config(
            "crash injection requires checkpointing (checkpoint_every > 0)".into(),
        ));
    }

    // Placement: tenant → shard by stable name hash; ASID = shard-local
    // position + 1 (0 is reserved), so a shard's ASID map depends only
    // on its own member list.
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); cfg.shards];
    for (i, t) in cfg.tenants.iter().enumerate() {
        members[cfg.shard_of(&t.name)].push(i);
    }
    let mut placement = vec![(0usize, 0usize, 0u16); cfg.tenants.len()];
    for (shard, list) in members.iter().enumerate() {
        for (local, &tenant) in list.iter().enumerate() {
            placement[tenant] = (shard, local, (local + 1) as u16);
        }
    }

    // Load/generate every tenant's ASID-tagged item stream up front so
    // malformed trace files fail service startup, not mid-flight.
    let mut streams: Vec<Vec<TraceItem>> = Vec::with_capacity(cfg.tenants.len());
    for (i, spec) in cfg.tenants.iter().enumerate() {
        streams.push(tenant_items(cfg, spec, Asid(placement[i].2))?);
    }

    // Build the shard fronts.  The key seed derives from the shard's
    // member names — never its index — so a shard hosting the same
    // tenants is byte-identical at any shard count.
    let shed_floor = shed_rank_floor(&cfg.faults, cfg.scheme, cfg.sys_cfg.secpb.entries);
    let mut states: Vec<ShardState> = Vec::with_capacity(cfg.shards);
    for list in &members {
        let names: Vec<&str> = list.iter().map(|&t| cfg.tenants[t].name.as_str()).collect();
        let key_seed = derive_seed(cfg.seed, &names);
        let mut sys: Box<dyn PersistSystem + Send> = Box::new(SecureSystem::with_tree(
            cfg.sys_cfg.clone(),
            cfg.scheme,
            cfg.tree,
            key_seed,
        ));
        let reader = if cfg.telemetry {
            let (sink, reader) = telemetry::channel(cfg.ring_capacity);
            sys.set_telemetry(Some(sink));
            Some(reader)
        } else {
            None
        };
        let scheme_name = sys.scheme().name();
        states.push(ShardState {
            sys,
            monitor: HealthMonitor::new(),
            reader,
            front_name: format!("serve-shard{}", states.len()),
            scheme_name,
            tenants: list
                .iter()
                .map(|&t| TenantQuota {
                    asid: placement[t].2,
                    name: cfg.tenants[t].name.clone(),
                    qos: cfg.tenants[t].qos,
                    quota: cfg.tenants[t].qos.epoch_quota(cfg.epoch_len) as u64,
                })
                .collect(),
            epochs: 0,
            items: 0,
            stores: 0,
            sync_hashes: 0,
            qos_violations: 0,
            qos_events: Vec::new(),
            snapshots: Vec::new(),
            brown_out_every: cfg.faults.brown_out_every,
            shed_floor,
            deferred: Vec::new(),
            shed: 0,
            fault_clock: cfg
                .faults
                .crashes()
                .then(|| FaultClock::new(cfg.faults.trigger)),
            checkpoint_every: cfg.checkpoint_every,
            checkpoint: None,
            journal: Vec::new(),
            replay_pending: 0,
            replayed: 0,
            restored: 0,
        });
    }
    // Epoch-zero checkpoints: recovery always has a rewind point, even
    // for a crash in the very first epoch.
    if cfg.checkpoint_every > 0 {
        for state in &mut states {
            state.take_checkpoint();
        }
    }

    // Clients + assembler + shard pool, all inside one scope: clients
    // stream chunks concurrently, the assembler (on this thread, as the
    // pool's producer) canonicalizes them into epoch batches.
    let (tx, rx) = mpsc::channel::<ClientMsg>();
    let pool_cfg = ShardPoolConfig {
        workers: cfg.workers,
        queue_capacity: cfg.queue_capacity,
        steal_bound: cfg.steal_bound,
        wedge_timeout_ms: cfg.wedge_timeout_ms,
    };
    let quotas: Vec<usize> = cfg
        .tenants
        .iter()
        .map(|t| t.qos.epoch_quota(cfg.epoch_len))
        .collect();

    let (states, pool_stats) = std::thread::scope(|scope| {
        for (tenant, items) in streams.iter().enumerate() {
            let tx = tx.clone();
            let quota = quotas[tenant];
            scope.spawn(move || {
                for (epoch, chunk) in items.chunks(quota.max(1)).enumerate() {
                    if tx
                        .send(ClientMsg::Chunk {
                            tenant,
                            epoch: epoch as u64,
                            items: chunk.to_vec(),
                        })
                        .is_err()
                    {
                        return; // service aborted; stop streaming
                    }
                }
                let _ = tx.send(ClientMsg::Finished { tenant });
            });
        }
        drop(tx);

        let assembler = Assembler {
            rx,
            placement: placement.clone(),
            members: members.clone(),
            next_epoch: vec![0; cfg.shards],
            buffered: (0..cfg.shards).map(|_| VecDeque::new()).collect(),
            finished_at: vec![None; cfg.tenants.len()],
            last_chunk: vec![None; cfg.tenants.len()],
            live_clients: cfg.tenants.len(),
            ready: VecDeque::new(),
        };
        if cfg.checkpoint_every > 0 {
            // Recoverable mode: a panicking shard worker restores the
            // shard's last checkpoint and replays its journal in-order
            // ahead of all queued work.
            pool::run_sharded_recoverable(
                states,
                assembler,
                &pool_cfg,
                |_, state, batch| state.process(batch),
                |_, state| state.recover(),
            )
        } else {
            pool::run_sharded(states, assembler, &pool_cfg, |_, state, batch| {
                state.process(batch)
            })
        }
    })
    .map_err(|e| match e {
        ShardPoolError::Wedged { shard, waited_ms } => ServeError::ShardWedged { shard, waited_ms },
        ShardPoolError::WorkerPanicked { workers } => ServeError::WorkerPanicked { workers },
        e @ ShardPoolError::Misrouted { .. } => ServeError::Config(e.to_string()),
    })?;

    // Tear down: final crash check + outcome assembly.
    let mut shards = Vec::with_capacity(states.len());
    for (shard, mut state) in states.into_iter().enumerate() {
        // Brown-outs defer work, they never drop it: anything still
        // deferred executes now, before the final crash check.
        state.flush_deferred();
        let (crash_drained, recovery_consistent) = if cfg.crash_check {
            let report = state
                .sys
                .crash(CrashKind::PowerLoss, DrainPolicy::DrainAll)
                .map_err(|e| ServeError::CrashCheck {
                    shard,
                    detail: e.to_string(),
                })?;
            let rec = state.sys.recover();
            (Some(report.work.entries), rec.is_consistent())
        } else {
            (None, true)
        };
        // One final ring drain so late events (crash markers) are
        // accounted.
        state.snapshot(state.epochs);
        let dropped = state.reader.as_ref().map_or(0, TelemetryReader::dropped);
        let stats = state.sys.stats().clone();
        shards.push(ShardOutcome {
            shard,
            tenants: members[shard]
                .iter()
                .map(|&t| cfg.tenants[t].name.clone())
                .collect(),
            epochs: state.epochs,
            items: state.items,
            stores: state.stores,
            persists: stats.get(counters::PERSISTS),
            sync_hashes: state.sync_hashes,
            cycles: state.sys.finish_time().raw(),
            anomalies: state.sys.anomalies(),
            qos_violations: state.qos_violations,
            qos_events: std::mem::take(&mut state.qos_events),
            shed: state.shed,
            replayed: state.replayed,
            restored: state.restored,
            crash_drained,
            recovery_consistent,
            snapshots: state.snapshots,
            telemetry_dropped: dropped,
            stats,
        });
    }

    let tenants = cfg
        .tenants
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let (shard, _, asid) = placement[i];
            let quota = quotas[i];
            let items = streams[i].len() as u64;
            let stores = streams[i]
                .iter()
                .filter(|it| it.access.is_some_and(|a| a.is_store()))
                .count() as u64;
            let epochs_used = items.div_ceil(quota.max(1) as u64);
            TenantReport {
                name: spec.name.clone(),
                shard,
                asid,
                qos: spec.qos,
                quota,
                items,
                stores,
                epochs_used,
                max_items_in_epoch: (quota as u64).min(items),
            }
        })
        .collect();

    Ok(ServeOutcome {
        shards,
        tenants,
        pool: pool_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tenant_cfg(shards: usize) -> ServeConfig {
        let mut cfg = ServeConfig::new(shards);
        cfg.epoch_len = 128;
        cfg.tenants = vec![
            TenantSpec::synthetic("alpha", WorkloadProfile::named("gamess").unwrap(), 4_000),
            TenantSpec::synthetic("beta", WorkloadProfile::named("milc").unwrap(), 4_000),
        ];
        cfg
    }

    #[test]
    fn serve_replays_drains_and_recovers() {
        let out = run_serve(&two_tenant_cfg(2)).unwrap();
        assert!(out.total_stores() > 0);
        assert!(out.total_persists() > 0);
        // The DBMF root cache means epoch-boundary syncs fold real
        // deferred tree work — the amortization the service exists for.
        assert!(
            out.shards.iter().any(|s| s.sync_hashes > 0),
            "epoch drains folded no deferred tree work"
        );
        assert_eq!(out.total_anomalies(), 0);
        assert_eq!(out.total_qos_violations(), 0);
        assert!(out.consistent());
        let populated: Vec<_> = out
            .shards
            .iter()
            .filter(|s| !s.tenants.is_empty())
            .collect();
        assert!(!populated.is_empty());
        for s in populated {
            assert!(s.epochs > 0, "shard {} processed no epochs", s.shard);
            assert!(s.crash_drained.is_some());
        }
    }

    #[test]
    fn empty_shards_are_benign() {
        // 8 shards, 2 tenants: most shards stay empty and must not
        // affect the outcome.
        let out = run_serve(&two_tenant_cfg(8)).unwrap();
        assert_eq!(out.shards.len(), 8);
        assert!(out.total_stores() > 0);
        let empty = out.shards.iter().filter(|s| s.tenants.is_empty()).count();
        assert!(empty >= 6);
        for s in out.shards.iter().filter(|s| s.tenants.is_empty()) {
            assert_eq!(s.items, 0);
            assert_eq!(s.epochs, 0);
        }
    }

    #[test]
    fn qos_quota_is_always_at_least_one() {
        assert_eq!(QosClass::Bronze.epoch_quota(1), 1);
        assert_eq!(QosClass::Gold.epoch_quota(0), 1);
        assert_eq!(QosClass::Silver.epoch_quota(100), 50);
        assert_eq!(QosClass::Bronze.epoch_quota(100), 25);
    }

    #[test]
    fn set_qos_requires_known_tenant() {
        let mut cfg = two_tenant_cfg(1);
        let token = PrivilegeToken::acquire();
        assert!(cfg.set_qos("alpha", QosClass::Gold, &token).is_ok());
        assert_eq!(cfg.tenants[0].qos(), QosClass::Gold);
        assert!(cfg.set_qos("nobody", QosClass::Gold, &token).is_err());
    }

    #[test]
    fn duplicate_tenants_are_rejected() {
        let mut cfg = two_tenant_cfg(1);
        cfg.tenants.push(TenantSpec::synthetic(
            "alpha",
            WorkloadProfile::named("gcc").unwrap(),
            100,
        ));
        let err = run_serve(&cfg).unwrap_err();
        assert!(matches!(err, ServeError::Config(_)));
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn crash_injection_without_checkpoints_is_rejected() {
        let mut cfg = two_tenant_cfg(1);
        cfg.checkpoint_every = 0;
        cfg.faults.trigger = CrashTrigger::EveryNthStore(100);
        let err = run_serve(&cfg).unwrap_err();
        assert!(matches!(err, ServeError::Config(_)));
        assert!(err.to_string().contains("checkpoint"));
    }

    #[test]
    fn serve_error_display_names_the_wedged_shard() {
        let e = ServeError::ShardWedged {
            shard: 3,
            waited_ms: 12_000,
        };
        let text = e.to_string();
        assert!(
            text.contains("shard 3") && text.contains("12000 ms"),
            "{text}"
        );
    }

    #[test]
    fn qos_violations_name_tenant_class_and_epoch() {
        // Hand-feed a shard an oversized part to exercise the data-plane
        // re-check (the ingest layer never produces one).
        let mut state = ShardState {
            sys: Box::new(SecureSystem::with_tree(
                SystemConfig::default(),
                Scheme::Cobcm,
                TreeKind::Dbmf,
                1,
            )),
            monitor: HealthMonitor::new(),
            reader: None,
            front_name: "test".into(),
            scheme_name: "cobcm",
            tenants: vec![TenantQuota {
                asid: 1,
                name: "bob".into(),
                qos: QosClass::Bronze,
                quota: 2,
            }],
            epochs: 0,
            items: 0,
            stores: 0,
            sync_hashes: 0,
            qos_violations: 0,
            qos_events: Vec::new(),
            snapshots: Vec::new(),
            brown_out_every: 0,
            shed_floor: 3,
            deferred: Vec::new(),
            shed: 0,
            fault_clock: None,
            checkpoint_every: 0,
            checkpoint: None,
            journal: Vec::new(),
            replay_pending: 0,
            replayed: 0,
            restored: 0,
        };
        let items: Vec<TraceItem> =
            TraceGenerator::new(WorkloadProfile::named("gamess").unwrap(), 7)
                .generate(200)
                .into_iter()
                .take(3)
                .collect();
        assert_eq!(items.len(), 3);
        state.process(EpochBatch {
            epoch: 5,
            parts: vec![(1, items)],
        });
        assert_eq!(state.qos_violations, 1);
        let v = &state.qos_events[0];
        assert_eq!(
            (v.tenant.as_str(), v.qos, v.epoch),
            ("bob", QosClass::Bronze, 5)
        );
        assert_eq!((v.items, v.quota), (3, 2));
        let text = v.to_string();
        assert!(
            text.contains("bob") && text.contains("bronze") && text.contains("epoch 5"),
            "{text}"
        );
    }

    #[test]
    fn injected_crashes_recover_to_the_crash_free_digests() {
        quiet_injected_faults();
        let mut cfg = two_tenant_cfg(2);
        cfg.checkpoint_every = 2;
        cfg.faults = ServeFaultPlan::storm(7, 40, 0, f64::INFINITY);
        let faulted = run_serve(&cfg).unwrap();
        assert!(
            faulted.pool.crash_recoveries > 0,
            "storm fired no crashes: {:?}",
            faulted.pool
        );
        assert!(faulted.total_restored() > 0);
        assert!(faulted.total_replayed() > 0);
        assert!(faulted.consistent());
        assert_eq!(faulted.total_anomalies(), 0);
        assert_eq!(faulted.total_qos_violations(), 0);

        let mut reference = cfg.clone();
        reference.faults = cfg.faults.crash_free();
        let reference = run_serve(&reference).unwrap();
        assert_eq!(reference.pool.crash_recoveries, 0);
        let digests = |o: &ServeOutcome| {
            o.shards
                .iter()
                .filter(|s| !s.tenants.is_empty())
                .map(|s| (s.tenants.clone(), s.digest()))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            digests(&faulted),
            digests(&reference),
            "restored shards diverged from the uninterrupted reference"
        );
    }

    #[test]
    fn brown_outs_shed_bronze_first_and_never_drop_work() {
        let token = PrivilegeToken::acquire();
        let mut cfg = two_tenant_cfg(1);
        cfg.tenants.push(TenantSpec::synthetic(
            "gamma",
            WorkloadProfile::named("povray").unwrap(),
            4_000,
        ));
        cfg.set_qos("alpha", QosClass::Gold, &token).unwrap();
        cfg.set_qos("beta", QosClass::Silver, &token).unwrap();
        cfg.set_qos("gamma", QosClass::Bronze, &token).unwrap();
        // A budget funding just over half a full drain: bronze defers,
        // gold and silver keep their slots.
        let full = secpb_drain_energy(energy_scheme(cfg.scheme), cfg.sys_cfg.secpb.entries);
        cfg.faults = ServeFaultPlan {
            seed: 3,
            trigger: CrashTrigger::Never,
            brown_out_every: 2,
            brown_out: BrownOut::with_budget(full * 0.6),
        };
        let out = run_serve(&cfg).unwrap();
        assert!(out.total_shed() > 0, "brown-outs shed nothing");
        // Deferred, never dropped: every submitted item reached a shard.
        let tenant_items: u64 = out.tenants.iter().map(|t| t.items).sum();
        let shard_items: u64 = out.shards.iter().map(|s| s.items).sum();
        assert_eq!(tenant_items, shard_items);
        assert_eq!(out.total_qos_violations(), 0);
        assert_eq!(out.total_anomalies(), 0);
        assert!(out.consistent());

        // The same brown-outs with crashes layered on top: digests and
        // shed counts must still match the crash-free run exactly.
        quiet_injected_faults();
        let mut crashed = cfg.clone();
        crashed.checkpoint_every = 2;
        crashed.faults.trigger = CrashTrigger::EveryNthStore(60);
        let crashed = run_serve(&crashed).unwrap();
        assert!(crashed.pool.crash_recoveries > 0, "no crashes fired");
        assert_eq!(crashed.total_shed(), out.total_shed());
        assert_eq!(
            crashed
                .shards
                .iter()
                .map(ShardOutcome::digest)
                .collect::<Vec<_>>(),
            out.shards
                .iter()
                .map(ShardOutcome::digest)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn quick_config_smokes() {
        let out = run_serve(&ServeConfig::quick()).unwrap();
        assert!(out.total_stores() > 0);
        assert_eq!(out.total_anomalies(), 0);
        assert_eq!(out.total_qos_violations(), 0);
        assert!(out.consistent());
        // Telemetry is on: populated shards stream snapshots.
        assert!(out
            .shards
            .iter()
            .filter(|s| !s.tenants.is_empty())
            .all(|s| !s.snapshots.is_empty()));
    }
}
