//! Deterministic crash-storm harness: the fault-injection engine that
//! attacks the paper's central claim (the `(C, γ, M, R)` tuple survives
//! power loss at *any* point).
//!
//! A storm replays one trace per `(scheme, metadata-mode, policy)` cell
//! and crashes the *same surviving system* at every trigger point.  At
//! each crash it:
//!
//! 1. drains under an optional battery brown-out budget (converted from
//!    joules to entries by the energy model) and reconciles the exact
//!    drained/lost split against pre-crash occupancy,
//! 2. injects seed-derived single-bit flips into the persisted
//!    ciphertexts, counter blocks, MACs, and BMT root, asserting every
//!    one is *detected* by recovery (a flip that verifies is a
//!    [`FaultOutcome::SilentCorruption`] — a harness failure),
//! 3. reverts each flip (they are self-inverse XORs) and re-verifies the
//!    clean state, then resynchronises any brown-out-lost blocks so the
//!    storm can continue on the surviving durable image.
//!
//! Everything is seed-driven: the same [`StormConfig`] replays the same
//! crashes, victims, and bit positions, so a storm failure is a
//! deterministic reproducer.

use secpb_core::crash::{CrashKind, DrainPolicy, FaultOutcome};
use secpb_core::eadr::EadrSystem;
use secpb_core::facade::PersistSystem;
use secpb_core::multicore::MultiCoreSystem;
use secpb_core::scheme::Scheme;
use secpb_core::system::SecureSystem;
use secpb_core::tree::TreeKind;
use secpb_energy::drain::{entries_within_budget, secpb_drain_energy, SchemeKind};
use secpb_mem::store::NvmStore;
use secpb_sim::addr::{Asid, BlockAddr};
use secpb_sim::config::{MetadataMode, SystemConfig};
use secpb_sim::fault::{pick_victim, BitFlip, CrashTrigger, FaultClock, FlipTarget};
use secpb_sim::json::Json;
use secpb_sim::trace::{TraceItem, TraceSummary};
use secpb_workloads::{TraceGenerator, WorkloadProfile};

/// The energy-model view of a scheme, for brown-out budget conversion.
/// `Sp` persists the full tuple per store like `NoGap`, so it shares
/// NoGap's per-entry footprint (it never buffers entries anyway).
pub fn energy_scheme(scheme: Scheme) -> SchemeKind {
    match scheme {
        Scheme::Bbb => SchemeKind::Bbb,
        Scheme::Cobcm => SchemeKind::Cobcm,
        Scheme::Obcm => SchemeKind::Obcm,
        Scheme::Bcm => SchemeKind::Bcm,
        Scheme::Cm => SchemeKind::Cm,
        Scheme::M => SchemeKind::M,
        Scheme::NoGap | Scheme::Sp => SchemeKind::NoGap,
    }
}

/// Which system front a storm cell drives through the
/// [`PersistSystem`] facade.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StormFront {
    /// The single-core SecPB system with the full timing pipeline.
    SecPb,
    /// The secure-eADR whole-hierarchy system.
    Eadr,
    /// The per-core-SecPB directory-coherence system with this many
    /// cores (trace accesses are fanned out round-robin across them).
    MultiCore(usize),
    /// The SecPB system under Triad-NVM selective persistence: BMT
    /// levels `0..N` are persisted durably; recovery folds the rest
    /// from the level-`N-1` frontier.
    Triad(u8),
    /// The SecPB system under the Huang & Hua fast-recovery layout: a
    /// durable shadow copy of the BMT root makes recovery a single
    /// comparison instead of a rebuild.
    FastRec,
}

impl StormFront {
    /// Deterministic salt discriminant for victim/bit derivation.
    fn salt(self) -> u64 {
        match self {
            StormFront::SecPb => 0,
            StormFront::Eadr => 1,
            StormFront::MultiCore(n) => 2 + n as u64,
            StormFront::Triad(n) => 0x100 + n as u64,
            StormFront::FastRec => 0x200,
        }
    }

    /// The stable front label used by the CLI and every report
    /// (`secpb`, `eadr`, `mc<N>`, `triad<N>`, `fastrec`) — the inverse
    /// of the `FromStr` parse.
    pub fn name(self) -> String {
        match self {
            StormFront::SecPb => "secpb".to_string(),
            StormFront::Eadr => "eadr".to_string(),
            StormFront::MultiCore(n) => format!("mc{n}"),
            StormFront::Triad(n) => format!("triad{n}"),
            StormFront::FastRec => "fastrec".to_string(),
        }
    }
}

impl std::str::FromStr for StormFront {
    type Err = String;

    /// Parses `secpb`, `eadr`, `mc<N>` (e.g. `mc4`), `triad<N>`
    /// (e.g. `triad4`), or `fastrec`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "secpb" => Ok(StormFront::SecPb),
            "eadr" => Ok(StormFront::Eadr),
            "fastrec" => Ok(StormFront::FastRec),
            _ => s
                .strip_prefix("mc")
                .and_then(|n| n.parse::<usize>().ok())
                .map(StormFront::MultiCore)
                .or_else(|| {
                    s.strip_prefix("triad")
                        .and_then(|n| n.parse::<u8>().ok())
                        .map(StormFront::Triad)
                })
                .ok_or_else(|| {
                    format!("unknown front `{s}`; try secpb, eadr, mc<N>, triad<N>, or fastrec")
                }),
        }
    }
}

/// Which crash kind + drain policy a storm cell exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StormPolicy {
    /// Power loss; everything drains ([`DrainPolicy::DrainAll`]).
    PowerLossDrainAll,
    /// Application crash of ASID 0; only its entries drain
    /// ([`DrainPolicy::DrainProcess`]).
    AppCrashDrainProcess,
}

impl StormPolicy {
    /// Both policies, in sweep order.
    pub const ALL: [StormPolicy; 2] = [
        StormPolicy::PowerLossDrainAll,
        StormPolicy::AppCrashDrainProcess,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            StormPolicy::PowerLossDrainAll => "drain-all",
            StormPolicy::AppCrashDrainProcess => "drain-process",
        }
    }

    fn crash_args(self) -> (CrashKind, DrainPolicy) {
        match self {
            StormPolicy::PowerLossDrainAll => (CrashKind::PowerLoss, DrainPolicy::DrainAll),
            StormPolicy::AppCrashDrainProcess => (
                CrashKind::ApplicationCrash(Asid(0)),
                DrainPolicy::DrainProcess,
            ),
        }
    }
}

/// Storm parameters.  Fully determines the run: same config, same
/// faults, same verdicts.
#[derive(Debug, Clone)]
pub struct StormConfig {
    /// Master seed for trace generation, victim picks, and bit positions.
    pub seed: u64,
    /// Workload profile name (see `WorkloadProfile::SPEC_NAMES`).
    pub workload: String,
    /// Starting trace length in instructions (doubled deterministically
    /// until the trace holds at least `min_stores` stores).
    pub instructions: u64,
    /// Minimum stores the storm trace must contain.
    pub min_stores: u64,
    /// Crash every this-many stores.
    pub crash_every: u64,
    /// Bit flips injected (and reverted) at each crash point.
    pub flips_per_crash: u64,
    /// Brown-out battery budget as a fraction of the scheme's provisioned
    /// worst-case drain energy; `None` models a fully provisioned battery.
    pub brown_out_fraction: Option<f64>,
    /// Schemes under storm.
    pub schemes: Vec<Scheme>,
    /// Metadata engines under storm.
    pub modes: Vec<MetadataMode>,
}

impl StormConfig {
    /// The full acceptance-gate storm: every scheme, both metadata
    /// engines, a trace of at least 10k stores.
    pub fn full(seed: u64) -> Self {
        StormConfig {
            seed,
            workload: "milc".to_owned(),
            instructions: 200_000,
            min_stores: 10_000,
            crash_every: 1_000,
            flips_per_crash: 4,
            brown_out_fraction: None,
            schemes: Scheme::ALL.to_vec(),
            modes: vec![MetadataMode::Eager, MetadataMode::Lazy],
        }
    }

    /// A seconds-scale CI smoke with the same coverage axes.
    pub fn quick(seed: u64) -> Self {
        StormConfig {
            instructions: 6_000,
            min_stores: 200,
            crash_every: 64,
            flips_per_crash: 2,
            ..StormConfig::full(seed)
        }
    }

    /// Returns a copy with the given brown-out fraction.
    pub fn with_brown_out(mut self, fraction: f64) -> Self {
        self.brown_out_fraction = Some(fraction);
        self
    }
}

/// The verdict of one storm cell (one scheme × mode × policy × trigger
/// pass over the trace).
#[derive(Debug, Clone)]
pub struct CellReport {
    /// System front under storm.
    pub front: StormFront,
    /// Scheme under storm.
    pub scheme: Scheme,
    /// Metadata engine under storm.
    pub mode: MetadataMode,
    /// Crash kind / drain policy exercised.
    pub policy: StormPolicy,
    /// Trigger description (`every-nth-store` or `mid-drain`).
    pub trigger: &'static str,
    /// Stores replayed.
    pub stores: u64,
    /// Crash points fired.
    pub crashes: u64,
    /// Entries drained across all crashes.
    pub drained: u64,
    /// Entries lost to brown-outs across all crashes.
    pub lost: u64,
    /// Crashes whose battery budget truncated the drain.
    pub brown_out_crashes: u64,
    /// Flips that landed in the persistent footprint.
    pub flips_injected: u64,
    /// Injected flips caught by integrity verification.
    pub flips_detected: u64,
    /// Flips skipped because the target class had no victim (provably
    /// outside the persistent footprint) or the scheme is insecure.
    pub flips_skipped: u64,
    /// Injected flips that recovery accepted — always a failure.
    pub silent_corruptions: u64,
    /// Model-internal invariants broken during the storm (the
    /// `fault.anomalies` counter) — always a failure.
    pub anomalies: u64,
    /// Accounting or sequencing failures detected by the harness itself.
    pub failures: Vec<String>,
}

impl CellReport {
    fn new(
        front: StormFront,
        scheme: Scheme,
        mode: MetadataMode,
        policy: StormPolicy,
        trigger: &'static str,
    ) -> Self {
        CellReport {
            front,
            scheme,
            mode,
            policy,
            trigger,
            stores: 0,
            crashes: 0,
            drained: 0,
            lost: 0,
            brown_out_crashes: 0,
            flips_injected: 0,
            flips_detected: 0,
            flips_skipped: 0,
            silent_corruptions: 0,
            anomalies: 0,
            failures: Vec::new(),
        }
    }

    /// Whether the cell met the storm contract: zero silent corruptions,
    /// zero anomalies, zero harness failures, every injected flip
    /// detected.
    pub fn passed(&self) -> bool {
        self.silent_corruptions == 0
            && self.anomalies == 0
            && self.failures.is_empty()
            && self.flips_detected == self.flips_injected
    }

    /// One-line cell label, e.g. `cobcm/lazy/drain-all/every-nth-store`
    /// (single-core SecPB), `eadr/lazy/drain-all/every-nth-store`, or
    /// `mc4-cobcm/lazy/drain-all/every-nth-store`.
    pub fn label(&self) -> String {
        let mode = match self.mode {
            MetadataMode::Eager => "eager",
            MetadataMode::Lazy => "lazy",
        };
        let head = match self.front {
            StormFront::SecPb => self.scheme.name().to_owned(),
            StormFront::Eadr => "eadr".to_owned(),
            StormFront::MultiCore(n) => format!("mc{n}-{}", self.scheme.name()),
            StormFront::Triad(n) => format!("triad{n}-{}", self.scheme.name()),
            StormFront::FastRec => format!("fastrec-{}", self.scheme.name()),
        };
        format!("{head}/{mode}/{}/{}", self.policy.name(), self.trigger)
    }

    /// JSON object for machine consumption.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("cell", self.label())
            .field("stores", self.stores)
            .field("crashes", self.crashes)
            .field("drained", self.drained)
            .field("lost", self.lost)
            .field("brown_out_crashes", self.brown_out_crashes)
            .field("flips_injected", self.flips_injected)
            .field("flips_detected", self.flips_detected)
            .field("flips_skipped", self.flips_skipped)
            .field("silent_corruptions", self.silent_corruptions)
            .field("anomalies", self.anomalies)
            .field(
                "failures",
                Json::arr(self.failures.iter().map(String::as_str)),
            )
            .field("passed", self.passed())
    }
}

/// The verdict of a whole storm sweep.
#[derive(Debug, Clone, Default)]
pub struct StormReport {
    /// Per-cell verdicts in sweep order.
    pub cells: Vec<CellReport>,
}

impl StormReport {
    /// Whether every cell passed.
    pub fn passed(&self) -> bool {
        self.cells.iter().all(CellReport::passed)
    }

    /// Total crash points fired.
    pub fn total_crashes(&self) -> u64 {
        self.cells.iter().map(|c| c.crashes).sum()
    }

    /// Total flips that landed in persistent state.
    pub fn total_flips(&self) -> u64 {
        self.cells.iter().map(|c| c.flips_injected).sum()
    }

    /// Total entries lost to brown-outs.
    pub fn total_lost(&self) -> u64 {
        self.cells.iter().map(|c| c.lost).sum()
    }

    /// JSON report (`{"cells": [...], "passed": ...}`).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field(
                "cells",
                Json::arr(self.cells.iter().map(CellReport::to_json)),
            )
            .field("total_crashes", self.total_crashes())
            .field("total_flips", self.total_flips())
            .field("total_lost", self.total_lost())
            .field("passed", self.passed())
    }

    /// Aligned text table, one row per cell.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<38} {:>7} {:>7} {:>8} {:>6} {:>6} {:>6} {:>5}\n",
            "cell", "crashes", "drained", "lost", "flips", "caught", "skip", "ok"
        ));
        for c in &self.cells {
            out.push_str(&format!(
                "{:<38} {:>7} {:>7} {:>8} {:>6} {:>6} {:>6} {:>5}\n",
                c.label(),
                c.crashes,
                c.drained,
                c.lost,
                c.flips_injected,
                c.flips_detected,
                c.flips_skipped,
                if c.passed() { "pass" } else { "FAIL" }
            ));
            for f in &c.failures {
                out.push_str(&format!("    failure: {f}\n"));
            }
        }
        out.push_str(&format!(
            "storm: {} cells, {} crashes, {} flips injected, {} entries lost -> {}\n",
            self.cells.len(),
            self.total_crashes(),
            self.total_flips(),
            self.total_lost(),
            if self.passed() { "PASS" } else { "FAIL" }
        ));
        out
    }
}

/// Deterministic per-cell seed salt so different cells attack different
/// victims/bits while staying replayable.
fn cell_salt(front: StormFront, scheme: Scheme, mode: MetadataMode, policy: StormPolicy) -> u64 {
    let s = Scheme::ALL.iter().position(|&x| x == scheme).unwrap_or(0) as u64;
    let m = matches!(mode, MetadataMode::Lazy) as u64;
    let p = matches!(policy, StormPolicy::AppCrashDrainProcess) as u64;
    (front.salt() << 16) ^ (s << 8) ^ (m << 4) ^ (p << 2)
}

/// Applies (or, called again with identical arguments, reverts) one
/// self-inverse bit flip against the NVM store.  Returns a description
/// of the victim, or `None` when the target class has no victim in the
/// persistent footprint.
fn apply_flip(store: &mut NvmStore, flip: BitFlip, seed: u64, injection: u64) -> Option<String> {
    match flip.target {
        FlipTarget::Ciphertext => {
            let mut blocks: Vec<BlockAddr> = store.data_blocks().collect();
            blocks.sort_unstable();
            let victim = blocks[pick_victim(seed, injection, blocks.len())?];
            store
                .tamper_data(victim, flip.byte, flip.bit)
                .then(|| format!("ciphertext {victim} byte {} bit {}", flip.byte, flip.bit))
        }
        FlipTarget::Counter => {
            let mut pages: Vec<u64> = store.counter_pages().collect();
            pages.sort_unstable();
            let victim = pages[pick_victim(seed, injection, pages.len())?];
            store
                .tamper_counters(victim, flip.byte, flip.bit)
                .then(|| format!("counter page {victim} byte {} bit {}", flip.byte, flip.bit))
        }
        FlipTarget::Mac => {
            let mut blocks: Vec<BlockAddr> = store.data_blocks().collect();
            blocks.sort_unstable();
            let victim = blocks[pick_victim(seed, injection, blocks.len())?];
            let bit = ((flip.byte * 8 + flip.bit as usize) % 64) as u8;
            store
                .tamper_mac(victim, bit)
                .then(|| format!("mac of {victim} bit {bit}"))
        }
        FlipTarget::TreeRoot => store
            .tamper_root(flip.byte, flip.bit)
            .then(|| format!("bmt root byte {} bit {}", flip.byte, flip.bit)),
    }
}

/// Generates the storm trace: doubles the instruction count until the
/// trace holds at least `min_stores` stores (deterministic in the seed).
fn storm_trace(cfg: &StormConfig) -> Result<Vec<TraceItem>, String> {
    let profile = WorkloadProfile::named(&cfg.workload)
        .ok_or_else(|| format!("unknown workload `{}`", cfg.workload))?;
    let mut instructions = cfg.instructions.max(1_000);
    for _ in 0..12 {
        let trace = TraceGenerator::new(profile.clone(), cfg.seed).generate(instructions);
        if TraceSummary::of(&trace).stores >= cfg.min_stores {
            return Ok(trace);
        }
        instructions *= 2;
    }
    Err(format!(
        "workload `{}` produced fewer than {} stores even at {} instructions",
        cfg.workload, cfg.min_stores, instructions
    ))
}

/// One crash point: budgeted drain, accounting reconciliation, flip
/// inject/verify/revert cycles, clean re-verification, and golden resync
/// of lost blocks.
fn crash_point(
    sys: &mut dyn PersistSystem,
    cfg: &StormConfig,
    rep: &mut CellReport,
    salt: u64,
    injection: u64,
    budget_entries: Option<u64>,
) {
    let occupancy = sys.occupancy();
    let (kind, policy) = rep.policy.crash_args();
    let report = match sys.crash_with_budget(kind, policy, budget_entries) {
        Ok(r) => r,
        Err(e) => {
            rep.failures.push(format!("crash {injection}: {e}"));
            return;
        }
    };
    rep.crashes += 1;
    rep.drained += report.work.entries;
    rep.lost += report.lost_block_count();
    if report.lost_block_count() > 0 {
        rep.brown_out_crashes += 1;
    }

    // Exact brown-out accounting: the battery drains the oldest
    // min(occupancy, budget) entries and loses the rest — nothing more,
    // nothing less.  (Under drain-process the eligible set is the
    // process's entries, a subset of occupancy.)
    let eligible = report.work.entries + report.lost_block_count();
    if rep.policy == StormPolicy::PowerLossDrainAll && eligible != occupancy {
        rep.failures.push(format!(
            "crash {injection}: drained {} + lost {} != occupancy {occupancy}",
            report.work.entries,
            report.lost_block_count()
        ));
    }
    if let Some(budget) = budget_entries {
        let expected = eligible.min(budget);
        if report.work.entries != expected {
            rep.failures.push(format!(
                "crash {injection}: drained {} entries under a {budget}-entry budget \
                 (expected {expected})",
                report.work.entries
            ));
        }
    }

    let lost = report.lost_blocks.clone();

    // Clean recovery with staleness accounted must verify.
    let clean = sys.recover_with(&lost);
    if FaultOutcome::classify(false, &clean) != FaultOutcome::Recovered {
        rep.failures.push(format!(
            "crash {injection}: clean recovery not consistent (root_ok={}, macs={}, \
             mismatches={})",
            clean.root_ok,
            clean.mac_failures.len(),
            clean.plaintext_mismatches.len()
        ));
        return;
    }

    // Flip storm: inject, demand detection, revert.  Insecure schemes
    // have no integrity metadata to attack, so flips are out of model.
    if sys.secure() {
        for f in 0..cfg.flips_per_crash {
            let idx = injection * cfg.flips_per_crash + f;
            let flip = BitFlip::derive(cfg.seed ^ salt, idx);
            let Some(desc) = apply_flip(sys.nvm_store_mut(), flip, cfg.seed ^ salt, idx) else {
                rep.flips_skipped += 1;
                continue;
            };
            rep.flips_injected += 1;
            let faulty = sys.recover_with(&lost);
            match FaultOutcome::classify(true, &faulty) {
                FaultOutcome::DetectedAndRejected => rep.flips_detected += 1,
                outcome => {
                    rep.silent_corruptions += 1;
                    rep.failures.push(format!(
                        "crash {injection}: flip of {desc} -> {}",
                        outcome.name()
                    ));
                }
            }
            // Self-inverse: the identical tamper restores the bit.
            if apply_flip(sys.nvm_store_mut(), flip, cfg.seed ^ salt, idx).is_none() {
                rep.failures.push(format!(
                    "crash {injection}: could not revert flip of {desc}"
                ));
                return;
            }
        }
        let restored = sys.recover_with(&lost);
        if !restored.is_consistent() {
            rep.failures.push(format!(
                "crash {injection}: state inconsistent after reverting flips"
            ));
            return;
        }
    } else {
        rep.flips_skipped += cfg.flips_per_crash;
    }

    // Brown-out survivors: the application re-reads the (older, verified)
    // durable image before continuing, so the storm's expectations track
    // the truncated state.
    if !lost.is_empty() {
        sys.resync_lost_golden(&lost);
    }
}

/// Builds the system front a storm cell (or the CLI) drives through the
/// facade.  Configuration rejections surface as the typed
/// [`ConfigError`](secpb_core::crash::ConfigError)'s friendly message.
pub fn build_front(
    front: StormFront,
    sys_cfg: SystemConfig,
    scheme: Scheme,
    key_seed: u64,
) -> Result<Box<dyn PersistSystem + Send>, String> {
    match front {
        StormFront::SecPb => Ok(Box::new(SecureSystem::new(sys_cfg, scheme, key_seed))),
        StormFront::Eadr => Ok(Box::new(EadrSystem::new(sys_cfg, key_seed))),
        StormFront::MultiCore(cores) => MultiCoreSystem::new(sys_cfg, scheme, cores, key_seed)
            .map(|m| Box::new(m) as Box<dyn PersistSystem + Send>)
            .map_err(|e| format!("invalid configuration: {e}")),
        StormFront::Triad(levels) => SecureSystem::build(
            sys_cfg.with_triad_levels(levels),
            scheme,
            TreeKind::Monolithic,
            key_seed,
        )
        .map(|s| Box::new(s) as Box<dyn PersistSystem + Send>)
        .map_err(|e| format!("invalid configuration: {e}")),
        StormFront::FastRec => SecureSystem::build(
            sys_cfg.with_shadow_counters(true),
            scheme,
            TreeKind::Monolithic,
            key_seed,
        )
        .map(|s| Box::new(s) as Box<dyn PersistSystem + Send>)
        .map_err(|e| format!("invalid configuration: {e}")),
    }
}

/// Runs one storm cell: replays the trace, crashing at every trigger
/// point on the same surviving system, driven entirely through the
/// [`PersistSystem`] facade.
pub fn run_cell(
    cfg: &StormConfig,
    front: StormFront,
    scheme: Scheme,
    mode: MetadataMode,
    policy: StormPolicy,
    trigger: CrashTrigger,
) -> CellReport {
    let trigger_name = match trigger {
        CrashTrigger::Never => "never",
        CrashTrigger::AtCycle(_) => "at-cycle",
        CrashTrigger::EveryNthStore(_) => "every-nth-store",
        CrashTrigger::MidDrain => "mid-drain",
    };
    let mut rep = CellReport::new(front, scheme, mode, policy, trigger_name);
    let trace = match storm_trace(cfg) {
        Ok(t) => t,
        Err(e) => {
            rep.failures.push(e);
            return rep;
        }
    };
    let salt = cell_salt(front, scheme, mode, policy);
    let sys_cfg = SystemConfig::default().with_metadata_mode(mode);
    let mut sys = match build_front(front, sys_cfg, scheme, cfg.seed ^ salt) {
        Ok(s) => s,
        Err(e) => {
            rep.failures.push(e);
            return rep;
        }
    };
    let mut clock = FaultClock::new(trigger);
    let budget_entries = cfg.brown_out_fraction.map(|fraction| {
        let kind = energy_scheme(scheme);
        let provisioned = secpb_drain_energy(kind, sys.config().secpb.entries);
        entries_within_budget(kind, provisioned * fraction)
    });
    // The multi-core front fans the single-threaded trace out across its
    // cores round-robin, so migrations and remote flushes actually fire.
    let fan_out = match front {
        StormFront::MultiCore(cores) => cores as u16,
        _ => 1,
    };
    let mut access_idx = 0u16;

    for mut item in trace {
        if fan_out > 1 {
            if let Some(a) = &mut item.access {
                a.asid = Asid(access_idx % fan_out);
                access_idx = access_idx.wrapping_add(1);
            }
        }
        sys.step(item);
        if !item.access.is_some_and(|a| a.is_store()) {
            continue;
        }
        rep.stores += 1;
        if !clock.observe_store(sys.finish_time().raw(), sys.drains_in_flight()) {
            continue;
        }
        crash_point(
            sys.as_mut(),
            cfg,
            &mut rep,
            salt,
            clock.crashes_fired() - 1,
            budget_entries,
        );
        if !rep.failures.is_empty() {
            break;
        }
    }

    // Close out: a final full-power crash and clean verification, so the
    // trailing partial window is also covered.
    if rep.failures.is_empty() {
        crash_point(
            sys.as_mut(),
            cfg,
            &mut rep,
            salt,
            clock.crashes_fired(),
            None,
        );
    }
    rep.anomalies = sys.anomalies();
    rep
}

/// Runs the full storm sweep: for every scheme × metadata mode, an
/// every-nth-store crash storm under both drain policies plus a
/// mid-drain single crash under drain-all — all on the single-core
/// front — plus, per metadata mode, an every-nth-store drain-all cell
/// on the eADR and 4-core fronts so every facade implementation faces
/// the same flip storm.
pub fn run_storm(cfg: &StormConfig) -> StormReport {
    let mut report = StormReport::default();
    for &scheme in &cfg.schemes {
        for &mode in &cfg.modes {
            for policy in StormPolicy::ALL {
                report.cells.push(run_cell(
                    cfg,
                    StormFront::SecPb,
                    scheme,
                    mode,
                    policy,
                    CrashTrigger::EveryNthStore(cfg.crash_every),
                ));
            }
            report.cells.push(run_cell(
                cfg,
                StormFront::SecPb,
                scheme,
                mode,
                StormPolicy::PowerLossDrainAll,
                CrashTrigger::MidDrain,
            ));
        }
    }
    for &mode in &cfg.modes {
        for front in [
            StormFront::Eadr,
            StormFront::MultiCore(4),
            StormFront::Triad(4),
            StormFront::FastRec,
        ] {
            report.cells.push(run_cell(
                cfg,
                front,
                Scheme::Cobcm,
                mode,
                StormPolicy::PowerLossDrainAll,
                CrashTrigger::EveryNthStore(cfg.crash_every),
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_storm_single_cell_passes() {
        let cfg = StormConfig::quick(0x5EC9_B0A2);
        let cell = run_cell(
            &cfg,
            StormFront::SecPb,
            Scheme::Cobcm,
            MetadataMode::Eager,
            StormPolicy::PowerLossDrainAll,
            CrashTrigger::EveryNthStore(cfg.crash_every),
        );
        assert!(cell.passed(), "{:?}", cell.failures);
        assert!(cell.crashes > 1, "storm should fire repeatedly");
        assert!(cell.flips_injected > 0);
        assert_eq!(cell.flips_detected, cell.flips_injected);
    }

    #[test]
    fn brown_out_cell_loses_and_accounts() {
        let cfg = StormConfig::quick(7).with_brown_out(0.10);
        let cell = run_cell(
            &cfg,
            StormFront::SecPb,
            Scheme::Cobcm,
            MetadataMode::Eager,
            StormPolicy::PowerLossDrainAll,
            CrashTrigger::EveryNthStore(cfg.crash_every),
        );
        assert!(cell.passed(), "{:?}", cell.failures);
        assert!(cell.lost > 0, "a 10% battery must lose entries");
        assert!(cell.brown_out_crashes > 0);
    }

    #[test]
    fn mid_drain_cell_fires_at_most_once() {
        let cfg = StormConfig::quick(9);
        let cell = run_cell(
            &cfg,
            StormFront::SecPb,
            Scheme::Bcm,
            MetadataMode::Lazy,
            StormPolicy::PowerLossDrainAll,
            CrashTrigger::MidDrain,
        );
        assert!(cell.passed(), "{:?}", cell.failures);
        // The mid-drain trigger plus the close-out crash.
        assert!(cell.crashes <= 2);
    }

    #[test]
    fn insecure_scheme_skips_flips() {
        let cfg = StormConfig::quick(11);
        let cell = run_cell(
            &cfg,
            StormFront::SecPb,
            Scheme::Bbb,
            MetadataMode::Eager,
            StormPolicy::PowerLossDrainAll,
            CrashTrigger::EveryNthStore(cfg.crash_every),
        );
        assert!(cell.passed(), "{:?}", cell.failures);
        assert_eq!(cell.flips_injected, 0);
        assert!(cell.flips_skipped > 0);
    }

    #[test]
    fn eadr_front_cell_passes() {
        let cfg = StormConfig::quick(19);
        let cell = run_cell(
            &cfg,
            StormFront::Eadr,
            Scheme::Cobcm,
            MetadataMode::Eager,
            StormPolicy::PowerLossDrainAll,
            CrashTrigger::EveryNthStore(cfg.crash_every),
        );
        assert!(cell.passed(), "{:?}", cell.failures);
        assert!(cell.crashes > 1);
        assert!(cell.flips_injected > 0, "eADR persists a secure image");
        assert_eq!(cell.flips_detected, cell.flips_injected);
        assert!(cell.label().starts_with("eadr/"));
    }

    #[test]
    fn multicore_front_cell_passes() {
        let cfg = StormConfig::quick(23);
        let cell = run_cell(
            &cfg,
            StormFront::MultiCore(4),
            Scheme::Cobcm,
            MetadataMode::Lazy,
            StormPolicy::PowerLossDrainAll,
            CrashTrigger::EveryNthStore(cfg.crash_every),
        );
        assert!(cell.passed(), "{:?}", cell.failures);
        assert!(cell.crashes > 1);
        assert_eq!(cell.flips_detected, cell.flips_injected);
        assert!(cell.label().starts_with("mc4-cobcm/"));
    }

    #[test]
    fn triad_front_cell_passes() {
        let cfg = StormConfig::quick(31);
        let cell = run_cell(
            &cfg,
            StormFront::Triad(4),
            Scheme::Cobcm,
            MetadataMode::Lazy,
            StormPolicy::PowerLossDrainAll,
            CrashTrigger::EveryNthStore(cfg.crash_every),
        );
        assert!(cell.passed(), "{:?}", cell.failures);
        assert!(cell.crashes > 1);
        assert_eq!(cell.flips_detected, cell.flips_injected);
        assert!(cell.label().starts_with("triad4-cobcm/"));
    }

    #[test]
    fn fastrec_front_cell_passes() {
        let cfg = StormConfig::quick(37);
        let cell = run_cell(
            &cfg,
            StormFront::FastRec,
            Scheme::Cobcm,
            MetadataMode::Lazy,
            StormPolicy::PowerLossDrainAll,
            CrashTrigger::EveryNthStore(cfg.crash_every),
        );
        assert!(cell.passed(), "{:?}", cell.failures);
        assert!(cell.crashes > 1);
        assert_eq!(cell.flips_detected, cell.flips_injected);
        assert!(cell.label().starts_with("fastrec-cobcm/"));
    }

    #[test]
    fn triad_front_depth_beyond_tree_reports_config_error() {
        let cfg = StormConfig::quick(41);
        let cell = run_cell(
            &cfg,
            StormFront::Triad(200),
            Scheme::Cobcm,
            MetadataMode::Eager,
            StormPolicy::PowerLossDrainAll,
            CrashTrigger::Never,
        );
        assert!(!cell.passed());
        assert!(cell.failures[0].contains("depth"), "{:?}", cell.failures);
    }

    #[test]
    fn front_names_round_trip_through_parse() {
        for front in [
            StormFront::SecPb,
            StormFront::Eadr,
            StormFront::MultiCore(4),
            StormFront::Triad(4),
            StormFront::FastRec,
        ] {
            assert_eq!(front.name().parse::<StormFront>(), Ok(front));
        }
        assert!("triadx".parse::<StormFront>().is_err());
    }

    #[test]
    fn bufferless_scheme_on_multicore_front_reports_config_error() {
        let cfg = StormConfig::quick(29);
        let cell = run_cell(
            &cfg,
            StormFront::MultiCore(2),
            Scheme::Sp,
            MetadataMode::Eager,
            StormPolicy::PowerLossDrainAll,
            CrashTrigger::Never,
        );
        assert!(!cell.passed());
        assert!(cell.failures[0].contains("persist-buffer scheme"));
    }

    #[test]
    fn storm_is_deterministic() {
        let cfg = StormConfig {
            schemes: vec![Scheme::Bcm],
            modes: vec![MetadataMode::Eager],
            ..StormConfig::quick(13)
        };
        let a = run_storm(&cfg).to_json().to_pretty();
        let b = run_storm(&cfg).to_json().to_pretty();
        assert_eq!(a, b);
    }

    #[test]
    fn report_renders_and_serializes() {
        let cfg = StormConfig {
            schemes: vec![Scheme::NoGap],
            modes: vec![MetadataMode::Lazy],
            ..StormConfig::quick(17)
        };
        let report = run_storm(&cfg);
        assert!(report.passed(), "{}", report.render_text());
        let text = report.render_text();
        assert!(text.contains("nogap/lazy/drain-all/every-nth-store"));
        assert!(text.contains("PASS"));
        let json = report.to_json();
        assert_eq!(json.get("passed").and_then(Json::as_str), None);
        assert!(json.get("cells").is_some());
    }
}
