//! Criterion microbenchmarks for the cryptographic substrate: the
//! host-side cost of the operations the simulator models at 40 cycles
//! (AES, MAC) and 320 cycles (BMT walk).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use secpb_crypto::aes::Aes;
use secpb_crypto::bmt::BonsaiMerkleTree;
use secpb_crypto::counter::{CounterBlock, SplitCounter};
use secpb_crypto::hmac::HmacSha512;
use secpb_crypto::mac::BlockMac;
use secpb_crypto::otp::OtpEngine;
use secpb_crypto::sha512::Sha512;

fn bench_aes(c: &mut Criterion) {
    let aes = Aes::new_192(&[7u8; 24]);
    let block = [0x5Au8; 16];
    c.bench_function("aes192_encrypt_block", |b| {
        b.iter(|| aes.encrypt_block(black_box(&block)))
    });
    c.bench_function("aes192_decrypt_block", |b| {
        let ct = aes.encrypt_block(&block);
        b.iter(|| aes.decrypt_block(black_box(&ct)))
    });
}

fn bench_sha512(c: &mut Criterion) {
    let data = vec![0xA5u8; 64];
    c.bench_function("sha512_64B", |b| b.iter(|| Sha512::digest(black_box(&data))));
    let big = vec![0xA5u8; 4096];
    c.bench_function("sha512_4KB", |b| b.iter(|| Sha512::digest(black_box(&big))));
}

fn bench_hmac_and_mac(c: &mut Criterion) {
    let hmac = HmacSha512::new(b"bench-key");
    let data = [0x11u8; 64];
    c.bench_function("hmac_sha512_64B", |b| b.iter(|| hmac.compute(black_box(&data))));

    let mac = BlockMac::new(b"bench-key");
    let ctr = SplitCounter { major: 3, minor: 9 };
    c.bench_function("block_mac_compute", |b| {
        b.iter(|| mac.compute(black_box(&data), black_box(0x40), ctr))
    });
}

fn bench_otp(c: &mut Criterion) {
    let engine = OtpEngine::new(&[9u8; 24]);
    let ctr = SplitCounter { major: 1, minor: 2 };
    let data = [0x42u8; 64];
    c.bench_function("otp_generate_64B", |b| {
        b.iter(|| engine.generate(black_box(1234), ctr))
    });
    c.bench_function("otp_encrypt_64B", |b| {
        b.iter(|| engine.encrypt(black_box(&data), black_box(1234), ctr))
    });
}

fn bench_bmt(c: &mut Criterion) {
    c.bench_function("bmt8_update_leaf", |b| {
        let mut tree = BonsaiMerkleTree::new(b"bench", 8, 8);
        let digest = Sha512::digest(b"leaf");
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 4096;
            tree.update_leaf(black_box(i), digest)
        })
    });
    c.bench_function("bmt8_prove_and_verify", |b| {
        let mut tree = BonsaiMerkleTree::new(b"bench", 8, 8);
        let digest = Sha512::digest(b"leaf");
        tree.update_leaf(42, digest);
        b.iter(|| {
            let proof = tree.prove(black_box(42));
            tree.verify_proof(&proof, digest)
        })
    });
}

fn bench_counters(c: &mut Criterion) {
    c.bench_function("counter_block_pack_unpack", |b| {
        let mut cb = CounterBlock::new();
        for i in 0..64 {
            for _ in 0..(i % 11) {
                cb.increment(i);
            }
        }
        b.iter(|| CounterBlock::from_bytes(black_box(&cb.to_bytes())))
    });
}

criterion_group!(
    benches,
    bench_aes,
    bench_sha512,
    bench_hmac_and_mac,
    bench_otp,
    bench_bmt,
    bench_counters
);
criterion_main!(benches);
