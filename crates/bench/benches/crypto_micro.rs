//! Microbenchmarks for the cryptographic substrate: the host-side cost
//! of the operations the simulator models at 40 cycles (AES, MAC) and
//! 320 cycles (BMT walk).

use secpb_bench::micro::{bench, black_box};
use secpb_crypto::aes::Aes;
use secpb_crypto::bmt::BonsaiMerkleTree;
use secpb_crypto::counter::{CounterBlock, SplitCounter};
use secpb_crypto::hmac::HmacSha512;
use secpb_crypto::mac::BlockMac;
use secpb_crypto::memo::DigestMemo;
use secpb_crypto::otp::OtpEngine;
use secpb_crypto::sha512::Sha512;

fn bench_aes() {
    let aes = Aes::new_192(&[7u8; 24]);
    let block = [0x5Au8; 16];
    bench("aes192_encrypt_block", || {
        aes.encrypt_block(black_box(&block))
    });
    let ct = aes.encrypt_block(&block);
    bench("aes192_decrypt_block", || aes.decrypt_block(black_box(&ct)));
}

fn bench_sha512() {
    let data = vec![0xA5u8; 64];
    bench("sha512_64B", || Sha512::digest(black_box(&data)));
    let big = vec![0xA5u8; 4096];
    bench("sha512_4KB", || Sha512::digest(black_box(&big)));
}

fn bench_hmac_and_mac() {
    let hmac = HmacSha512::new(b"bench-key");
    let data = [0x11u8; 64];
    bench("hmac_sha512_64B", || hmac.compute(black_box(&data)));

    let mac = BlockMac::new(b"bench-key");
    let ctr = SplitCounter { major: 3, minor: 9 };
    bench("block_mac_compute", || {
        mac.compute(black_box(&data), black_box(0x40), ctr)
    });
}

fn bench_otp() {
    let engine = OtpEngine::new(&[9u8; 24]);
    let ctr = SplitCounter { major: 1, minor: 2 };
    let data = [0x42u8; 64];
    bench("otp_generate_64B", || engine.generate(black_box(1234), ctr));
    bench("otp_encrypt_64B", || {
        engine.encrypt(black_box(&data), black_box(1234), ctr)
    });
}

fn bench_bmt() {
    let mut tree = BonsaiMerkleTree::new(b"bench", 8, 8);
    let digest = Sha512::digest(b"leaf");
    let mut i = 0u64;
    bench("bmt8_update_leaf", || {
        i = (i + 1) % 4096;
        tree.update_leaf(black_box(i), digest)
    });

    let mut tree = BonsaiMerkleTree::new(b"bench", 8, 8);
    tree.update_leaf(42, digest);
    bench("bmt8_prove_and_verify", || {
        let proof = tree.prove(black_box(42));
        tree.verify_proof(&proof, digest)
    });
}

/// Lazy vs eager metadata engine: N coalescing `update_leaf` calls plus
/// the observation-point fold, against the same N calls folded eagerly.
fn bench_lazy_bmt() {
    const UPDATES: u64 = 64;
    let digest = Sha512::digest(b"leaf");

    let mut eager = BonsaiMerkleTree::new(b"bench", 8, 8);
    bench("bmt8_eager_64_updates", || {
        for i in 0..UPDATES {
            eager.update_leaf(black_box(i % 8), digest);
        }
        eager.root()
    });

    let mut lazy = BonsaiMerkleTree::new(b"bench", 8, 8);
    lazy.set_lazy(true);
    bench("bmt8_lazy_64_updates_fold", || {
        for i in 0..UPDATES {
            lazy.update_leaf(black_box(i % 8), digest);
        }
        lazy.fold();
        lazy.root()
    });
}

/// Pad-cache hit vs miss vs uncached generation, plus the counter-block
/// digest memo — the memoization layer on the simulated-store hot path.
fn bench_memo() {
    let ctr = SplitCounter { major: 4, minor: 7 };

    let uncached = OtpEngine::new(&[9u8; 24]);
    bench("otp_generate_uncached", || {
        uncached.generate(black_box(0x40), ctr)
    });

    let cached = OtpEngine::with_pad_cache(&[9u8; 24], 4096);
    cached.generate(0x40, ctr); // warm the single hot entry
    bench("otp_generate_cache_hit", || {
        cached.generate(black_box(0x40), ctr)
    });

    let mut addr = 0u64;
    bench("otp_generate_cache_miss", || {
        addr += 0x40;
        cached.generate(black_box(addr), ctr)
    });

    let memo = DigestMemo::new(4096);
    let block = [0x3Cu8; 64];
    memo.digest(7, &block);
    bench("digest_memo_hit", || memo.digest(black_box(7), &block));
    let mut key = 0u64;
    bench("digest_memo_miss", || {
        key += 1;
        memo.digest(black_box(key), &block)
    });
}

fn bench_counters() {
    let mut cb = CounterBlock::new();
    for i in 0..64 {
        for _ in 0..(i % 11) {
            cb.increment(i);
        }
    }
    bench("counter_block_pack_unpack", || {
        CounterBlock::from_bytes(black_box(&cb.to_bytes()))
    });
}

fn main() {
    bench_aes();
    bench_sha512();
    bench_hmac_and_mac();
    bench_otp();
    bench_bmt();
    bench_lazy_bmt();
    bench_memo();
    bench_counters();
}
