//! Criterion microbenchmarks for the SecPB core: per-store simulation
//! throughput under each scheme, drain costs, and crash/recovery walks.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use secpb_core::crash::{CrashKind, DrainPolicy};
use secpb_core::scheme::Scheme;
use secpb_core::system::SecureSystem;
use secpb_sim::addr::Address;
use secpb_sim::config::SystemConfig;
use secpb_sim::trace::{Access, TraceItem};
use secpb_workloads::{TraceGenerator, WorkloadProfile};

fn bench_store_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulated_store");
    for scheme in [Scheme::Bbb, Scheme::Cobcm, Scheme::Cm, Scheme::NoGap] {
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.name()),
            &scheme,
            |b, &scheme| {
                let mut sys = SecureSystem::new(SystemConfig::default(), scheme, 1);
                let mut i = 0u64;
                b.iter(|| {
                    i += 1;
                    // 16-block hot set: mostly coalescing hits.
                    let addr = Address(0x10_0000 + (i % 16) * 64);
                    sys.step(black_box(TraceItem::then(9, Access::store(addr, i))));
                })
            },
        );
    }
    group.finish();
}

fn bench_workload_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay_10k_instructions");
    group.sample_size(10);
    for scheme in [Scheme::Bbb, Scheme::Cobcm, Scheme::NoGap] {
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.name()),
            &scheme,
            |b, &scheme| {
                let profile = WorkloadProfile::named("gcc").unwrap();
                b.iter(|| {
                    let trace = TraceGenerator::new(profile.clone(), 3).generate(10_000);
                    let mut sys = SecureSystem::new(SystemConfig::default(), scheme, 3);
                    sys.run_trace(black_box(trace))
                })
            },
        );
    }
    group.finish();
}

fn bench_crash_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("crash_and_recover");
    group.sample_size(10);
    group.bench_function("cobcm_2k_blocks", |b| {
        b.iter(|| {
            let mut sys = SecureSystem::new(SystemConfig::default(), Scheme::Cobcm, 9);
            let trace: Vec<TraceItem> = (0..2000u64)
                .map(|i| TraceItem::then(4, Access::store(Address(0x10_0000 + i * 64), i)))
                .collect();
            sys.run_trace(trace);
            sys.crash(CrashKind::PowerLoss, DrainPolicy::DrainAll);
            let report = sys.recover();
            assert!(report.is_consistent());
            report.blocks_checked
        })
    });
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    c.bench_function("generate_100k_instructions", |b| {
        let profile = WorkloadProfile::named("gamess").unwrap();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            TraceGenerator::new(profile.clone(), seed).generate(100_000).len()
        })
    });
}

criterion_group!(
    benches,
    bench_store_throughput,
    bench_workload_replay,
    bench_crash_recovery,
    bench_trace_generation
);
criterion_main!(benches);
