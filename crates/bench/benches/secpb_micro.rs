//! Microbenchmarks for the SecPB core: per-store simulation throughput
//! under each scheme, drain costs, and crash/recovery walks.

use secpb_bench::micro::{bench, bench_once, black_box};
use secpb_core::crash::{CrashKind, DrainPolicy};
use secpb_core::scheme::Scheme;
use secpb_core::system::SecureSystem;
use secpb_sim::addr::Address;
use secpb_sim::config::SystemConfig;
use secpb_sim::trace::{Access, TraceItem};
use secpb_workloads::{TraceGenerator, WorkloadProfile};

fn bench_store_throughput() {
    for scheme in [Scheme::Bbb, Scheme::Cobcm, Scheme::Cm, Scheme::NoGap] {
        let mut sys = SecureSystem::new(SystemConfig::default(), scheme, 1);
        let mut i = 0u64;
        bench(&format!("simulated_store/{}", scheme.name()), || {
            i += 1;
            // 16-block hot set: mostly coalescing hits.
            let addr = Address(0x10_0000 + (i % 16) * 64);
            sys.step(black_box(TraceItem::then(9, Access::store(addr, i))));
        });
    }
}

fn bench_workload_replay() {
    for scheme in [Scheme::Bbb, Scheme::Cobcm, Scheme::NoGap] {
        let profile = WorkloadProfile::named("gcc").unwrap();
        bench_once(
            &format!("replay_10k_instructions/{}", scheme.name()),
            10,
            || {
                let trace = TraceGenerator::new(profile.clone(), 3).generate(10_000);
                let mut sys = SecureSystem::new(SystemConfig::default(), scheme, 3);
                sys.run_trace(black_box(trace))
            },
        );
    }
}

fn bench_crash_recovery() {
    bench_once("crash_and_recover/cobcm_2k_blocks", 10, || {
        let mut sys = SecureSystem::new(SystemConfig::default(), Scheme::Cobcm, 9);
        let trace: Vec<TraceItem> = (0..2000u64)
            .map(|i| TraceItem::then(4, Access::store(Address(0x10_0000 + i * 64), i)))
            .collect();
        sys.run_trace(trace);
        sys.crash(CrashKind::PowerLoss, DrainPolicy::DrainAll)
            .unwrap();
        let report = sys.recover();
        assert!(report.is_consistent());
        report.blocks_checked
    });
}

fn bench_trace_generation() {
    let profile = WorkloadProfile::named("gamess").unwrap();
    let mut seed = 0u64;
    bench("generate_100k_instructions", || {
        seed += 1;
        TraceGenerator::new(profile.clone(), seed)
            .generate(100_000)
            .len()
    });
    // The streaming path feeds run_trace without materializing a Vec —
    // the delta vs the bench above is the allocation/copy cost saved per
    // experiment cell.
    let mut seed = 0u64;
    bench("stream_100k_instructions", || {
        seed += 1;
        TraceGenerator::new(profile.clone(), seed)
            .stream(100_000)
            .count()
    });
    let mut seed = 0u64;
    bench("replay_streamed_10k/cobcm", || {
        seed += 1;
        let mut generator = TraceGenerator::new(profile.clone(), seed);
        let mut sys = SecureSystem::new(SystemConfig::default(), Scheme::Cobcm, seed);
        sys.run_trace(generator.stream(10_000)).cycles
    });
}

fn bench_grid_engine() {
    use secpb_bench::experiments::{run_grid, GridCell};
    let cells: Vec<GridCell> = ["gamess", "povray", "milc", "soplex"]
        .iter()
        .flat_map(|n| {
            [Scheme::Bbb, Scheme::Cobcm, Scheme::Cm, Scheme::NoGap]
                .into_iter()
                .map(|s| GridCell::new(WorkloadProfile::named(n).unwrap(), s, 20_000))
        })
        .collect();
    let serial_ns = bench_once("grid_16_cells/serial", 3, || run_grid(&cells, 1).len());
    let jobs = secpb_sim::pool::default_jobs();
    let parallel_ns = bench_once(&format!("grid_16_cells/{jobs}_jobs"), 3, || {
        run_grid(&cells, jobs).len()
    });
    println!(
        "\ngrid speedup at {jobs} jobs: {:.2}x",
        serial_ns / parallel_ns.max(0.01)
    );
}

fn main() {
    bench_store_throughput();
    bench_workload_replay();
    bench_crash_recovery();
    bench_trace_generation();
    bench_grid_engine();
}
