//! Microbenchmarks for the memory-system substrate: cache accesses,
//! hierarchy traversals, WPQ and NVM model operations.

use secpb_bench::micro::{bench, black_box};
use secpb_mem::cache::{Cache, LineState};
use secpb_mem::hierarchy::Hierarchy;
use secpb_mem::metadata::{MetadataCaches, MetadataKind};
use secpb_mem::nvm::NvmTiming;
use secpb_mem::wpq::WritePendingQueue;
use secpb_sim::addr::BlockAddr;
use secpb_sim::config::{CacheConfig, NvmConfig, SystemConfig};
use secpb_sim::cycle::Cycle;

fn bench_cache() {
    let mut cache = Cache::new(CacheConfig::new(64 << 10, 8, 64, 2));
    cache.access(BlockAddr(1), LineState::Clean);
    bench("cache_hit_l1_geometry", || {
        cache.access(black_box(BlockAddr(1)), LineState::Clean)
    });

    let mut cache = Cache::new(CacheConfig::new(64 << 10, 8, 64, 2));
    let mut i = 0u64;
    bench("cache_miss_evict_stream", || {
        i += 1;
        cache.access(black_box(BlockAddr(i)), LineState::PersistDirty)
    });
}

fn bench_hierarchy() {
    let mut h = Hierarchy::new(&SystemConfig::default());
    h.load(BlockAddr(7));
    bench("hierarchy_l1_hit_load", || h.load(black_box(BlockAddr(7))));

    let mut h = Hierarchy::new(&SystemConfig::default());
    let mut i = 0u64;
    bench("hierarchy_store_stream", || {
        i += 1;
        h.store(black_box(BlockAddr(i % 100_000)), LineState::PersistDirty)
    });
}

fn bench_nvm_and_wpq() {
    let mut nvm = NvmTiming::new(NvmConfig::default());
    let mut i = 0u64;
    let mut now = Cycle::ZERO;
    bench("nvm_write_timing", || {
        i += 1;
        now += 10;
        nvm.write(black_box(BlockAddr(i)), now)
    });

    let mut nvm = NvmTiming::new(NvmConfig::default());
    let mut wpq = WritePendingQueue::new(32);
    let mut i = 0u64;
    let mut now = Cycle::ZERO;
    bench("wpq_enqueue", || {
        i += 1;
        now += 20;
        wpq.enqueue(black_box(BlockAddr(i)), now, &mut nvm)
    });
}

fn bench_metadata() {
    let cfg = SystemConfig::default();
    let mut nvm = NvmTiming::new(cfg.nvm);
    let mut md = MetadataCaches::new(&cfg);
    md.access(MetadataKind::Counter, 1, true, Cycle::ZERO, &mut nvm);
    let mut now = Cycle::ZERO;
    bench("metadata_counter_hit", || {
        now += 2;
        md.access(MetadataKind::Counter, black_box(1), false, now, &mut nvm)
    });
}

fn main() {
    bench_cache();
    bench_hierarchy();
    bench_nvm_and_wpq();
    bench_metadata();
}
