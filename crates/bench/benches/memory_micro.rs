//! Criterion microbenchmarks for the memory-system substrate: cache
//! accesses, hierarchy traversals, WPQ and NVM model operations.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use secpb_mem::cache::{Cache, LineState};
use secpb_mem::hierarchy::Hierarchy;
use secpb_mem::metadata::{MetadataCaches, MetadataKind};
use secpb_mem::nvm::NvmTiming;
use secpb_mem::wpq::WritePendingQueue;
use secpb_sim::addr::BlockAddr;
use secpb_sim::config::{CacheConfig, NvmConfig, SystemConfig};
use secpb_sim::cycle::Cycle;

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache_hit_l1_geometry", |b| {
        let mut cache = Cache::new(CacheConfig::new(64 << 10, 8, 64, 2));
        cache.access(BlockAddr(1), LineState::Clean);
        b.iter(|| cache.access(black_box(BlockAddr(1)), LineState::Clean))
    });
    c.bench_function("cache_miss_evict_stream", |b| {
        let mut cache = Cache::new(CacheConfig::new(64 << 10, 8, 64, 2));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            cache.access(black_box(BlockAddr(i)), LineState::PersistDirty)
        })
    });
}

fn bench_hierarchy(c: &mut Criterion) {
    c.bench_function("hierarchy_l1_hit_load", |b| {
        let mut h = Hierarchy::new(&SystemConfig::default());
        h.load(BlockAddr(7));
        b.iter(|| h.load(black_box(BlockAddr(7))))
    });
    c.bench_function("hierarchy_store_stream", |b| {
        let mut h = Hierarchy::new(&SystemConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            h.store(black_box(BlockAddr(i % 100_000)), LineState::PersistDirty)
        })
    });
}

fn bench_nvm_and_wpq(c: &mut Criterion) {
    c.bench_function("nvm_write_timing", |b| {
        let mut nvm = NvmTiming::new(NvmConfig::default());
        let mut i = 0u64;
        let mut now = Cycle::ZERO;
        b.iter(|| {
            i += 1;
            now += 10;
            nvm.write(black_box(BlockAddr(i)), now)
        })
    });
    c.bench_function("wpq_enqueue", |b| {
        let mut nvm = NvmTiming::new(NvmConfig::default());
        let mut wpq = WritePendingQueue::new(32);
        let mut i = 0u64;
        let mut now = Cycle::ZERO;
        b.iter(|| {
            i += 1;
            now += 20;
            wpq.enqueue(black_box(BlockAddr(i)), now, &mut nvm)
        })
    });
}

fn bench_metadata(c: &mut Criterion) {
    c.bench_function("metadata_counter_hit", |b| {
        let cfg = SystemConfig::default();
        let mut nvm = NvmTiming::new(cfg.nvm);
        let mut md = MetadataCaches::new(&cfg);
        md.access(MetadataKind::Counter, 1, true, Cycle::ZERO, &mut nvm);
        let mut now = Cycle::ZERO;
        b.iter(|| {
            now += 2;
            md.access(MetadataKind::Counter, black_box(1), false, now, &mut nvm)
        })
    });
}

criterion_group!(benches, bench_cache, bench_hierarchy, bench_nvm_and_wpq, bench_metadata);
criterion_main!(benches);
