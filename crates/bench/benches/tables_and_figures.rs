//! Wrapper over the table/figure regenerators at reduced scale: one
//! benchmark per experiment so `cargo bench` exercises every
//! reproduction path and reports its cost.  (The full-resolution runs
//! are the `table4`/`fig6`/.../`fig9` binaries.)

use secpb_bench::experiments::{fig6, fig7, fig8, fig9, table5, table6};
use secpb_bench::micro::bench_once;
use secpb_sim::pool;

/// Small instruction budget: these benches verify the experiment paths
/// and give a cost estimate, not publication numbers.
const QUICK: u64 = 10_000;

fn main() {
    bench_once("experiments/table4_fig6_quick", 3, || {
        let study = fig6(QUICK, pool::default_jobs());
        assert_eq!(study.rows.len(), 18);
        study.averages.len()
    });

    bench_once("experiments/fig7_size_sweep_quick", 3, || {
        let sweep = fig7(QUICK, pool::default_jobs());
        assert_eq!(sweep.sizes.len(), 7);
        sweep.averages.len()
    });

    bench_once("experiments/fig8_bmt_updates_quick", 3, || {
        let study = fig8(QUICK, pool::default_jobs());
        assert!(study.averages[0] > 0.0);
        study.averages.len()
    });

    bench_once("experiments/fig9_bmf_quick", 3, || {
        let study = fig9(QUICK, pool::default_jobs());
        assert_eq!(study.variants.len(), 4);
        study.averages.len()
    });

    bench_once("experiments/table5_battery", 3, || {
        let rows = table5(32);
        assert_eq!(rows.len(), 9);
        rows.len()
    });

    bench_once("experiments/table6_battery_sweep", 3, || {
        let rows = table6();
        assert_eq!(rows.len(), 7);
        rows.len()
    });
}
