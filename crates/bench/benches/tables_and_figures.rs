//! Criterion wrapper over the table/figure regenerators at reduced scale:
//! one benchmark per experiment so `cargo bench` exercises every
//! reproduction path and reports its cost.  (The full-resolution runs are
//! the `table4`/`fig6`/.../`fig9` binaries.)

use criterion::{criterion_group, criterion_main, Criterion};

use secpb_bench::experiments::{fig6, fig7, fig8, fig9, table5, table6};

/// Small instruction budget: these benches verify the experiment paths
/// and give a cost estimate, not publication numbers.
const QUICK: u64 = 10_000;

fn bench_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);

    group.bench_function("table4_fig6_quick", |b| {
        b.iter(|| {
            let study = fig6(QUICK);
            assert_eq!(study.rows.len(), 18);
            study.averages.len()
        })
    });

    group.bench_function("fig7_size_sweep_quick", |b| {
        b.iter(|| {
            let sweep = fig7(QUICK);
            assert_eq!(sweep.sizes.len(), 7);
            sweep.averages.len()
        })
    });

    group.bench_function("fig8_bmt_updates_quick", |b| {
        b.iter(|| {
            let study = fig8(QUICK);
            assert!(study.averages[0] > 0.0);
            study.averages.len()
        })
    });

    group.bench_function("fig9_bmf_quick", |b| {
        b.iter(|| {
            let study = fig9(QUICK);
            assert_eq!(study.variants.len(), 4);
            study.averages.len()
        })
    });

    group.bench_function("table5_battery", |b| {
        b.iter(|| {
            let rows = table5(32);
            assert_eq!(rows.len(), 9);
            rows.len()
        })
    });

    group.bench_function("table6_battery_sweep", |b| {
        b.iter(|| {
            let rows = table6();
            assert_eq!(rows.len(), 7);
            rows.len()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
