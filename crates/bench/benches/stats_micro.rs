//! Microbenchmarks for the stats registry: the string-keyed slow path
//! (`Stats::bump`, a hash lookup per increment) versus the typed-handle
//! hot path (`Stats::inc`, a direct `Vec` index via a pre-registered
//! [`StatId`]) that the simulator's per-store loop uses, plus the
//! log-2 histogram record path.
//!
//! The printed speedup is the reason the system model registers
//! [`StatId`]s once at construction instead of passing counter names.

use secpb_bench::micro::{bench, black_box};
use secpb_sim::stats::Stats;

fn main() {
    let mut stats = Stats::new();
    let id = stats.counter("bench.typed_counter");
    bench("stats_inc_typed_handle", || stats.inc(black_box(id)));

    let mut stats = Stats::new();
    stats.bump("bench.string_counter");
    let string_ns = bench("stats_bump_string_keyed", || {
        stats.bump(black_box("bench.string_counter"))
    });

    let mut stats = Stats::new();
    let id = stats.counter("bench.typed_counter");
    let typed_ns = bench("stats_add_typed_handle", || stats.add(black_box(id), 3));

    let mut stats = Stats::new();
    let h = stats.histogram_id("bench.histogram");
    let mut v = 0u64;
    bench("stats_record_histogram", || {
        v = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
        stats.record(black_box(h), v >> 48)
    });

    println!(
        "\nstring-keyed bump is {:.1}x the cost of a typed-handle add",
        string_ns / typed_ns.max(0.01)
    );

    bench_hashers();
}

/// SipHash (`std` default) vs the in-repo FxHash on the block-address
/// keyed maps the memory model hammers — the reason the hot-path maps
/// switched to [`secpb_sim::fxhash::FxHashMap`].
fn bench_hashers() {
    use secpb_sim::fxhash::FxHashMap;
    use std::collections::HashMap;

    let keys: Vec<u64> = (0..4096u64).map(|i| i.wrapping_mul(0x9E37) >> 2).collect();

    let mut sip: HashMap<u64, u64> = HashMap::new();
    for &k in &keys {
        sip.insert(k, k);
    }
    let mut i = 0usize;
    let sip_ns = bench("map_lookup/siphash_std", || {
        i = (i + 1) & 4095;
        *sip.get(black_box(&keys[i])).unwrap()
    });

    let mut fx: FxHashMap<u64, u64> = FxHashMap::default();
    for &k in &keys {
        fx.insert(k, k);
    }
    let mut i = 0usize;
    let fx_ns = bench("map_lookup/fxhash", || {
        i = (i + 1) & 4095;
        *fx.get(black_box(&keys[i])).unwrap()
    });

    println!(
        "\nSipHash lookup is {:.1}x the cost of an FxHash lookup",
        sip_ns / fx_ns.max(0.01)
    );
}
