//! SHA-512 (FIPS 180-4).
//!
//! The 80 round constants are the first 64 bits of the fractional parts of
//! the cube roots of the first 80 primes, and the initial hash state is the
//! fractional parts of the square roots of the first 8 primes.  Rather than
//! transcribing 88 magic numbers, this module *derives* them at first use
//! with exact integer arithmetic (a tiny 256-bit helper and binary-search
//! roots), then pins the result with known-answer tests — including the
//! canonical `SHA-512("abc")` vector.

use std::fmt;
use std::sync::OnceLock;

/// Minimal 256-bit unsigned integer (little-endian 64-bit limbs), just big
/// enough to compare `x³` against `p·2¹⁹²` during constant derivation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct U256([u64; 4]);

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Numeric ordering: compare from the most significant limb down.
        self.0.iter().rev().cmp(other.0.iter().rev())
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl U256 {
    fn from_u128(v: u128) -> Self {
        U256([v as u64, (v >> 64) as u64, 0, 0])
    }

    /// `p · 2¹⁹²` for small `p`.
    fn small_shl_192(p: u64) -> Self {
        U256([0, 0, 0, p])
    }

    /// `p · 2¹²⁸` for small `p`.
    fn small_shl_128(p: u64) -> Self {
        U256([0, 0, p, 0])
    }

    fn checked_add(self, other: U256) -> Option<U256> {
        let mut out = [0u64; 4];
        let mut carry = 0u64;
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(&other.0)) {
            let (s1, c1) = a.overflowing_add(*b);
            let (s2, c2) = s1.overflowing_add(carry);
            *o = s2;
            carry = u64::from(c1) + u64::from(c2);
        }
        if carry == 0 {
            Some(U256(out))
        } else {
            None
        }
    }

    fn checked_mul_u64(self, m: u64) -> Option<U256> {
        let mut out = [0u64; 4];
        let mut carry = 0u128;
        for (o, a) in out.iter_mut().zip(&self.0) {
            let prod = u128::from(*a) * u128::from(m) + carry;
            *o = prod as u64;
            carry = prod >> 64;
        }
        if carry == 0 {
            Some(U256(out))
        } else {
            None
        }
    }

    /// Shift left by one whole 64-bit limb.
    fn checked_shl_64(self) -> Option<U256> {
        if self.0[3] != 0 {
            return None;
        }
        Some(U256([0, self.0[0], self.0[1], self.0[2]]))
    }

    fn checked_mul_u128(self, m: u128) -> Option<U256> {
        let lo = self.checked_mul_u64(m as u64)?;
        let hi_m = (m >> 64) as u64;
        if hi_m == 0 {
            return Some(lo);
        }
        let hi = self.checked_mul_u64(hi_m)?.checked_shl_64()?;
        lo.checked_add(hi)
    }
}

/// `x³ ≤ target`, treating overflow of `x³` past 256 bits as "greater".
fn cube_le(x: u128, target: U256) -> bool {
    U256::from_u128(x)
        .checked_mul_u128(x)
        .and_then(|x2| x2.checked_mul_u128(x))
        .is_some_and(|x3| x3 <= target)
}

/// `x² ≤ target`, treating overflow as "greater".
fn square_le(x: u128, target: U256) -> bool {
    U256::from_u128(x)
        .checked_mul_u128(x)
        .is_some_and(|x2| x2 <= target)
}

/// Largest `x` in `[lo, hi)` with `pred(x)` true, assuming `pred` is
/// monotone (true then false).
fn binary_search_max(mut lo: u128, mut hi: u128, pred: impl Fn(u128) -> bool) -> u128 {
    debug_assert!(pred(lo));
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if pred(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// The first `n` primes.
fn primes(n: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(n);
    let mut candidate = 2u64;
    while out.len() < n {
        if !out.iter().any(|&p| candidate.is_multiple_of(p)) {
            out.push(candidate);
        }
        candidate += 1;
    }
    out
}

/// `floor(frac(p^(1/3)) · 2⁶⁴)`: the SHA-512 round-constant recipe.
fn cube_root_frac_bits(p: u64) -> u64 {
    // x = floor(p^(1/3) · 2^64); the low 64 bits are the fractional part
    // because floor(p^(1/3)) < 8 for p <= 409.
    let target = U256::small_shl_192(p);
    let x = binary_search_max(1, 1u128 << 68, |x| cube_le(x, target));
    x as u64
}

/// `floor(frac(sqrt(p)) · 2⁶⁴)`: the SHA-512 initial-state recipe.
fn sqrt_frac_bits(p: u64) -> u64 {
    let target = U256::small_shl_128(p);
    let x = binary_search_max(1, 1u128 << 68, |x| square_le(x, target));
    x as u64
}

/// The 80 round constants and 8 initial hash words, derived once.
pub(crate) fn constants() -> &'static ([u64; 80], [u64; 8]) {
    static CONSTANTS: OnceLock<([u64; 80], [u64; 8])> = OnceLock::new();
    CONSTANTS.get_or_init(|| {
        let ps = primes(80);
        let mut k = [0u64; 80];
        for (k_i, &p) in k.iter_mut().zip(&ps) {
            *k_i = cube_root_frac_bits(p);
        }
        let mut h = [0u64; 8];
        for (h_i, &p) in h.iter_mut().zip(&ps) {
            *h_i = sqrt_frac_bits(p);
        }
        (k, h)
    })
}

/// The SHA-512 initial hash state H⁽⁰⁾.
pub(crate) fn initial_state() -> [u64; 8] {
    constants().1
}

/// Compresses one 128-byte block into `state` (the FIPS 180-4 SHA-512
/// compression function).
pub(crate) fn compress_block(state: &mut [u64; 8], block: &[u8; 128]) {
    let (k, _) = constants();
    let mut w = [0u64; 80];
    for (i, w_i) in w.iter_mut().take(16).enumerate() {
        *w_i = u64::from_be_bytes(block[8 * i..8 * i + 8].try_into().expect("8 bytes"));
    }
    for i in 16..80 {
        let s0 = w[i - 15].rotate_right(1) ^ w[i - 15].rotate_right(8) ^ (w[i - 15] >> 7);
        let s1 = w[i - 2].rotate_right(19) ^ w[i - 2].rotate_right(61) ^ (w[i - 2] >> 6);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..80 {
        let s1 = e.rotate_right(14) ^ e.rotate_right(18) ^ e.rotate_right(41);
        let ch = (e & f) ^ (!e & g);
        let temp1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(k[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(28) ^ a.rotate_right(34) ^ a.rotate_right(39);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let temp2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(temp1);
        d = c;
        c = b;
        b = a;
        a = temp1.wrapping_add(temp2);
    }
    for (s, v) in state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
        *s = s.wrapping_add(v);
    }
}

/// Number of interleaved lanes in [`compress4`].
pub(crate) const LANES: usize = 4;

/// Compresses one independent 128-byte block into each of four states.
///
/// The four compressions are laid out structure-of-arrays (each round
/// variable is a `[u64; 4]` with one element per lane) so every round
/// operation is four independent 64-bit adds/rotates/xors — exactly the
/// shape the auto-vectorizer turns into 256-bit AVX2 lanes, and failing
/// that, four independent dependency chains the out-of-order core can
/// software-pipeline.  Bit-identical to four [`compress_block`] calls.
// Lane loops index several `w` rows at fixed round offsets; iterator
// forms would obscure the SoA shape the auto-vectorizer relies on.
#[allow(clippy::needless_range_loop)]
pub(crate) fn compress4(states: &mut [[u64; 8]; LANES], blocks: [&[u8; 128]; LANES]) {
    let (k, _) = constants();
    // Message schedule, lane-minor: w[i][l] is round i's word for lane l.
    let mut w = [[0u64; LANES]; 80];
    for (i, w_i) in w.iter_mut().take(16).enumerate() {
        for (l, block) in blocks.iter().enumerate() {
            w_i[l] = u64::from_be_bytes(block[8 * i..8 * i + 8].try_into().expect("8 bytes"));
        }
    }
    for i in 16..80 {
        for l in 0..LANES {
            let w15 = w[i - 15][l];
            let w2 = w[i - 2][l];
            let s0 = w15.rotate_right(1) ^ w15.rotate_right(8) ^ (w15 >> 7);
            let s1 = w2.rotate_right(19) ^ w2.rotate_right(61) ^ (w2 >> 6);
            w[i][l] = w[i - 16][l]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7][l])
                .wrapping_add(s1);
        }
    }
    let mut v = [[0u64; LANES]; 8];
    for (r, row) in v.iter_mut().enumerate() {
        for (l, state) in states.iter().enumerate() {
            row[l] = state[r];
        }
    }
    for i in 0..80 {
        for l in 0..LANES {
            let [a, b, c, d, e, f, g, h] = [
                v[0][l], v[1][l], v[2][l], v[3][l], v[4][l], v[5][l], v[6][l], v[7][l],
            ];
            let s1 = e.rotate_right(14) ^ e.rotate_right(18) ^ e.rotate_right(41);
            let ch = (e & f) ^ (!e & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(k[i])
                .wrapping_add(w[i][l]);
            let s0 = a.rotate_right(28) ^ a.rotate_right(34) ^ a.rotate_right(39);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            v[0][l] = temp1.wrapping_add(temp2);
            v[1][l] = a;
            v[2][l] = b;
            v[3][l] = c;
            v[4][l] = d.wrapping_add(temp1);
            v[5][l] = e;
            v[6][l] = f;
            v[7][l] = g;
        }
    }
    for (l, state) in states.iter_mut().enumerate() {
        for (r, row) in v.iter().enumerate() {
            state[r] = state[r].wrapping_add(row[l]);
        }
    }
}

/// A 64-byte SHA-512 digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Digest(pub [u8; 64]);

impl Digest {
    /// The first 8 bytes of the digest as a big-endian integer — the
    /// truncated form stored per block in the MAC metadata space.
    pub fn truncate_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("8 bytes"))
    }

    /// Hex encoding of the digest.
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}…)", &self.to_hex()[..16])
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// An incremental SHA-512 hasher.
///
/// # Example
///
/// ```
/// use secpb_crypto::sha512::Sha512;
///
/// let mut h = Sha512::new();
/// h.update(b"abc");
/// let digest = h.finalize();
/// assert!(digest.to_hex().starts_with("ddaf35a1"));
/// ```
#[derive(Debug, Clone)]
pub struct Sha512 {
    state: [u64; 8],
    buffer: [u8; 128],
    buffered: usize,
    length_bytes: u128,
}

impl Default for Sha512 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha512 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        let (_, h) = constants();
        Sha512 {
            state: *h,
            buffer: [0u8; 128],
            buffered: 0,
            length_bytes: 0,
        }
    }

    /// One-shot convenience: hashes `data` and returns the digest.
    pub fn digest(data: &[u8]) -> Digest {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }

    /// Resumes hashing from a captured compression state that has already
    /// absorbed `prefix_blocks` whole 128-byte blocks (HMAC's cached
    /// post-key-pad midstates).  Bit-identical to hashing the prefix again.
    pub(crate) fn from_midstate(state: [u64; 8], prefix_blocks: u64) -> Self {
        Sha512 {
            state,
            buffer: [0u8; 128],
            buffered: 0,
            length_bytes: u128::from(prefix_blocks) * 128,
        }
    }

    /// Absorbs more input.
    pub fn update(&mut self, mut data: &[u8]) {
        self.length_bytes += data.len() as u128;
        if self.buffered > 0 {
            let take = (128 - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 128 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        while data.len() >= 128 {
            let block: [u8; 128] = data[..128].try_into().expect("128 bytes");
            self.compress(&block);
            data = &data[128..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffered = data.len();
        }
    }

    /// Consumes the hasher and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.length_bytes * 8;
        // Padding: 0x80, zeros, 128-bit big-endian length — written
        // directly into whole blocks rather than byte-at-a-time.
        let buffered = self.buffered;
        self.buffer[buffered] = 0x80;
        if buffered < 112 {
            self.buffer[buffered + 1..112].fill(0);
            self.buffer[112..].copy_from_slice(&bit_len.to_be_bytes());
            let block = self.buffer;
            compress_block(&mut self.state, &block);
        } else {
            self.buffer[buffered + 1..].fill(0);
            let block = self.buffer;
            compress_block(&mut self.state, &block);
            let mut last = [0u8; 128];
            last[112..].copy_from_slice(&bit_len.to_be_bytes());
            compress_block(&mut self.state, &last);
        }
        digest_from_state(&self.state)
    }

    fn compress(&mut self, block: &[u8; 128]) {
        compress_block(&mut self.state, block);
    }
}

/// Serializes a final compression state into a digest.
fn digest_from_state(state: &[u64; 8]) -> Digest {
    let mut out = [0u8; 64];
    for (i, word) in state.iter().enumerate() {
        out[8 * i..8 * i + 8].copy_from_slice(&word.to_be_bytes());
    }
    Digest(out)
}

/// Digests a batch of independent 64-byte messages in one backend
/// dispatch.
///
/// A 64-byte message pads to exactly one 128-byte block (message, `0x80`,
/// zeros, 128-bit length), so the whole batch is a single
/// [`HashBackend::compress_batch`] call — sibling messages ride the
/// multi-lane kernel instead of going one-at-a-time through the streaming
/// hasher.  Bit-identical to [`Sha512::digest`] per message.
///
/// [`HashBackend::compress_batch`]: crate::backend::HashBackend::compress_batch
pub fn digest64_batch(
    backend: &dyn crate::backend::HashBackend,
    msgs: &[&[u8; 64]],
    out: &mut Vec<Digest>,
) {
    let mut blocks: Vec<[u8; 128]> = Vec::with_capacity(msgs.len());
    for msg in msgs {
        let mut block = [0u8; 128];
        block[..64].copy_from_slice(*msg);
        block[64] = 0x80;
        block[112..].copy_from_slice(&(512u128).to_be_bytes());
        blocks.push(block);
    }
    let mut states = vec![initial_state(); msgs.len()];
    let refs: Vec<&[u8; 128]> = blocks.iter().collect();
    backend.compress_batch(&mut states, &refs);
    out.extend(states.iter().map(digest_from_state));
}

/// Serializes a padded SHA-512 tail for a message of `msg.len()` bytes
/// appended to `prefix_blocks` already-absorbed blocks: the message bytes,
/// the 0x80 marker, zeros, and the 128-bit big-endian total bit length,
/// rounded up to whole 128-byte blocks.  Returns the number of bytes
/// written (a multiple of 128).
///
/// # Panics
///
/// Panics (via the slice write) if `out` is shorter than
/// [`padded_tail_len`]`(msg.len())`.
pub(crate) fn write_padded_tail(msg: &[u8], prefix_blocks: u64, out: &mut [u8]) -> usize {
    let total = padded_tail_len(msg.len());
    let bit_len = (u128::from(prefix_blocks) * 128 + msg.len() as u128) * 8;
    out[..msg.len()].copy_from_slice(msg);
    out[msg.len()] = 0x80;
    out[msg.len() + 1..total - 16].fill(0);
    out[total - 16..total].copy_from_slice(&bit_len.to_be_bytes());
    total
}

/// Bytes [`write_padded_tail`] produces for a message of `msg_len` bytes:
/// the smallest multiple of 128 holding `msg_len + 1 + 16` bytes.
pub(crate) fn padded_tail_len(msg_len: usize) -> usize {
    (msg_len + 1 + 16).div_ceil(128) * 128
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_constants_match_fips() {
        let (k, h) = constants();
        // Spot-check against the published FIPS 180-4 values.
        assert_eq!(k[0], 0x428a_2f98_d728_ae22);
        assert_eq!(k[1], 0x7137_4491_23ef_65cd);
        assert_eq!(k[79], 0x6c44_198c_4a47_5817);
        assert_eq!(h[0], 0x6a09_e667_f3bc_c908);
        assert_eq!(h[7], 0x5be0_cd19_137e_2179);
    }

    #[test]
    fn first_80_primes_end_at_409() {
        let p = primes(80);
        assert_eq!(p[0], 2);
        assert_eq!(p[7], 19);
        assert_eq!(p[79], 409);
    }

    #[test]
    fn abc_vector() {
        let d = Sha512::digest(b"abc");
        assert_eq!(
            d.to_hex(),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a\
             2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f"
        );
    }

    #[test]
    fn empty_vector() {
        let d = Sha512::digest(b"");
        assert_eq!(
            d.to_hex(),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce\
             47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e"
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 31 % 251) as u8).collect();
        let one_shot = Sha512::digest(&data);
        for split in [0, 1, 63, 64, 127, 128, 129, 500, 999, 1000] {
            let mut h = Sha512::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), one_shot, "split at {split}");
        }
    }

    #[test]
    fn block_boundary_lengths() {
        // Lengths around the 112-byte padding threshold and 128-byte block.
        for len in [111, 112, 113, 127, 128, 129, 255, 256] {
            let data = vec![0xABu8; len];
            let a = Sha512::digest(&data);
            let mut h = Sha512::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), a, "len {len}");
        }
    }

    #[test]
    fn avalanche() {
        let a = Sha512::digest(b"the quick brown fox");
        let b = Sha512::digest(b"the quick brown foy");
        let differing_bits: u32 =
            a.0.iter()
                .zip(b.0.iter())
                .map(|(x, y)| (x ^ y).count_ones())
                .sum();
        // Expect ~256 of 512 bits to flip; anything above 150 shows strong
        // diffusion.
        assert!(differing_bits > 150, "only {differing_bits} bits differ");
    }

    #[test]
    fn truncate_u64_takes_leading_bytes() {
        let d = Sha512::digest(b"abc");
        assert_eq!(d.truncate_u64(), 0xddaf35a193617aba);
    }

    #[test]
    fn compress4_matches_four_scalar_compressions() {
        let mut blocks = [[0u8; 128]; LANES];
        for (l, block) in blocks.iter_mut().enumerate() {
            for (i, b) in block.iter_mut().enumerate() {
                *b = (i * 7 + l * 131 + 3) as u8;
            }
        }
        let mut scalar = [initial_state(); LANES];
        for (state, block) in scalar.iter_mut().zip(&blocks) {
            compress_block(state, block);
        }
        let mut vector = [initial_state(); LANES];
        compress4(
            &mut vector,
            [&blocks[0], &blocks[1], &blocks[2], &blocks[3]],
        );
        assert_eq!(scalar, vector);
    }

    #[test]
    fn midstate_resumes_exactly() {
        let prefix = [0x5Au8; 128];
        let tail = b"tail bytes";
        let mut whole = Sha512::new();
        whole.update(&prefix);
        whole.update(tail);

        let mut state = initial_state();
        compress_block(&mut state, &prefix);
        let mut resumed = Sha512::from_midstate(state, 1);
        resumed.update(tail);
        assert_eq!(whole.finalize(), resumed.finalize());
    }

    #[test]
    fn padded_tail_matches_streaming_digest() {
        // Hashing (prefix block ‖ msg) via explicit padded-tail blocks must
        // equal the streaming hasher, across the 111/112-byte threshold.
        let prefix = [0x36u8; 128];
        for msg_len in [0usize, 1, 64, 81, 88, 111, 112, 127, 128, 512, 513] {
            let msg: Vec<u8> = (0..msg_len).map(|i| (i * 13 % 251) as u8).collect();
            let mut tail = vec![0u8; padded_tail_len(msg_len)];
            let written = write_padded_tail(&msg, 1, &mut tail);
            assert_eq!(written, tail.len());
            let mut state = initial_state();
            compress_block(&mut state, &prefix);
            for block in tail.chunks_exact(128) {
                compress_block(&mut state, block.try_into().expect("128 bytes"));
            }
            let mut streaming = Sha512::new();
            streaming.update(&prefix);
            streaming.update(&msg);
            let expect = streaming.finalize();
            let mut out = [0u8; 64];
            for (i, word) in state.iter().enumerate() {
                out[8 * i..8 * i + 8].copy_from_slice(&word.to_be_bytes());
            }
            assert_eq!(Digest(out), expect, "msg_len {msg_len}");
        }
    }

    #[test]
    fn digest64_batch_matches_one_shot() {
        use crate::backend::CryptoBackend;
        let msgs: Vec<[u8; 64]> = (0..7u8)
            .map(|i| {
                let mut m = [0u8; 64];
                for (j, b) in m.iter_mut().enumerate() {
                    *b = i.wrapping_mul(37).wrapping_add(j as u8);
                }
                m
            })
            .collect();
        let refs: Vec<&[u8; 64]> = msgs.iter().collect();
        for backend in CryptoBackend::ALL {
            let mut out = Vec::new();
            digest64_batch(&backend, &refs, &mut out);
            assert_eq!(out.len(), msgs.len());
            for (msg, digest) in msgs.iter().zip(&out) {
                assert_eq!(*digest, Sha512::digest(msg), "{backend}");
            }
        }
    }

    #[test]
    fn digest_traits() {
        let d = Sha512::digest(b"x");
        assert_eq!(d.as_ref().len(), 64);
        assert!(format!("{d:?}").starts_with("Digest("));
        assert_eq!(format!("{d}").len(), 128);
    }
}
