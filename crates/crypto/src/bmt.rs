//! Bonsai Merkle Tree (Rogers et al., MICRO'07).
//!
//! A BMT provides freshness for the counter space: leaves are digests of
//! counter blocks, interior nodes hash their children, and the root lives
//! in an on-chip non-volatile register that never leaves the TCB (Section
//! V-A of the paper).  Data blocks themselves are protected by per-block
//! MACs; replaying an old (data, counter, MAC) triple is caught because the
//! stale counter no longer matches the BMT.
//!
//! The tree here is *sparse*: untouched subtrees hash to precomputed
//! per-level default digests, so an 8-level, 8-ary tree covering 16 M
//! encryption pages costs memory proportional only to the pages actually
//! touched.
//!
//! The tree also keeps the two statistics the paper's evaluation leans on:
//! the number of *root updates* (Figure 8) and the number of *node hashes*
//! (the energy model's per-update cost).
//!
//! ## Lazy folding
//!
//! In [lazy mode](BonsaiMerkleTree::set_lazy) an update writes only the
//! leaf digest and records the leaf in a dirty set; the HMAC leaf-to-root
//! walk is deferred until [`fold`](BonsaiMerkleTree::fold) batches every
//! pending path level by level.  N updates under one page coalesce into a
//! single walk and shared interior nodes are hashed once per fold instead
//! of once per update — the PLP-style coalescing the paper's Section IV-A
//! rests on.  The statistics stay *analytic*: `update_leaf` counts the
//! hashes the modeled hardware would perform, identical to eager mode, so
//! Figure 8 and the energy model cannot tell the modes apart.  The hashes
//! a fold actually performs are tracked separately in
//! [`fold_hashes`](BonsaiMerkleTree::fold_hashes).

use secpb_sim::fxhash::FxHashMap;
use secpb_sim::wire::{WireError, WireReader, WireWriter};

use crate::backend::CryptoBackend;
use crate::hmac::HmacSha512;
use crate::sha512::Digest;

/// Default tree arity (children per interior node).
pub const DEFAULT_ARITY: usize = 8;

/// Digests per storage chunk of a [`NodeLevel`] (4 KB of digests).
///
/// A power of two at least as large as any practical arity, so a node's
/// whole sibling group lives in one chunk whenever the arity is a power
/// of two ≤ 64 — the per-level child gather is then a single map lookup
/// plus dense index arithmetic instead of `arity` independent lookups.
const LEVEL_CHUNK: u64 = 64;

/// Sparse-dense storage for one tree level: touched regions are dense
/// 64-digest chunks, untouched regions read as the level's default
/// digest.
///
/// A fully dense array per level would be byte-exact for the top levels
/// but infeasible at the leaves (the paper's 8-level, 8-ary tree covers
/// 16 M leaves), and workloads touch widely separated index bands (store,
/// sequential, and load regions).  Chunking keeps the dense-array index
/// arithmetic on the hot update walk while bounding memory by the
/// *touched* footprint.
#[derive(Debug, Clone)]
struct NodeLevel {
    default: Digest,
    chunks: FxHashMap<u64, Box<[Digest]>>,
}

impl NodeLevel {
    fn new(default: Digest) -> Self {
        NodeLevel {
            default,
            chunks: FxHashMap::default(),
        }
    }

    /// The digest at `index` (the level default if never written).
    #[inline]
    fn get(&self, index: u64) -> Digest {
        match self.chunks.get(&(index / LEVEL_CHUNK)) {
            Some(chunk) => chunk[(index % LEVEL_CHUNK) as usize],
            None => self.default,
        }
    }

    /// Writes the digest at `index`, materializing its chunk on first
    /// touch.
    #[inline]
    fn set(&mut self, index: u64, digest: Digest) {
        let default = self.default;
        let chunk = self
            .chunks
            .entry(index / LEVEL_CHUNK)
            .or_insert_with(|| vec![default; LEVEL_CHUNK as usize].into_boxed_slice());
        chunk[(index % LEVEL_CHUNK) as usize] = digest;
    }

    /// Copies the digests of the contiguous sibling group
    /// `first..first + count` into `out`.
    ///
    /// Fast path: when the group does not straddle a chunk boundary (any
    /// power-of-two arity ≤ [`LEVEL_CHUNK`], since `first` is
    /// arity-aligned), this is one map lookup and a slice copy.
    fn siblings(&self, first: u64, count: usize, out: &mut Vec<Digest>) {
        out.clear();
        let offset = (first % LEVEL_CHUNK) as usize;
        if offset + count <= LEVEL_CHUNK as usize {
            match self.chunks.get(&(first / LEVEL_CHUNK)) {
                Some(chunk) => out.extend_from_slice(&chunk[offset..offset + count]),
                None => out.resize(count, self.default),
            }
        } else {
            out.extend((0..count as u64).map(|c| self.get(first + c)));
        }
    }
}

/// A leaf-to-root authentication path, as produced by
/// [`BonsaiMerkleTree::prove`] and checked by
/// [`BonsaiMerkleTree::verify_proof`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub leaf_index: u64,
    /// For each level from the leaves upward: the digests of all children
    /// of the node's parent (including the node itself at its position).
    pub levels: Vec<Vec<Digest>>,
}

/// A sparse, keyed Bonsai Merkle Tree with an on-chip root register.
///
/// # Example
///
/// ```
/// use secpb_crypto::bmt::BonsaiMerkleTree;
/// use secpb_crypto::sha512::Sha512;
///
/// let mut bmt = BonsaiMerkleTree::new(b"tree-key", 8, 8);
/// let before = bmt.root();
/// bmt.update_leaf(42, Sha512::digest(b"counter block 42"));
/// assert_ne!(bmt.root(), before);
/// assert_eq!(bmt.root_updates(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct BonsaiMerkleTree {
    hasher: HmacSha512,
    /// Multi-lane dispatch target for batched fold hashing.
    backend: CryptoBackend,
    arity: usize,
    levels: u32,
    /// `nodes[l]` holds the written digests at level `l` (0 = leaves) in
    /// chunked sparse-dense storage; absent nodes read as the level's
    /// default digest.
    nodes: Vec<NodeLevel>,
    root: Digest,
    root_updates: u64,
    node_hashes: u64,
    /// Lazy mode: defer the leaf-to-root walk to [`fold`](Self::fold).
    lazy: bool,
    /// Leaves updated since the last fold (may hold duplicates; sorted
    /// and deduplicated at fold time for determinism).
    dirty: Vec<u64>,
    /// Hashes actually performed by folds (performance metric only —
    /// never part of the analytic `node_hashes` statistic).
    fold_hashes: u64,
    /// Number of folds performed.
    folds: u64,
}

impl BonsaiMerkleTree {
    /// Creates a tree of `levels` levels above the leaves with the given
    /// `arity`, covering `arity^levels` leaves.
    ///
    /// The paper's Table I uses an 8-level tree; with arity 8 that covers
    /// 16 M encryption pages (64 GB of protected data at 4 KB pages).
    ///
    /// # Panics
    ///
    /// Panics if `arity < 2` or `levels == 0`.
    pub fn new(key: &[u8], arity: usize, levels: u32) -> Self {
        assert!(arity >= 2, "arity must be at least 2");
        assert!(levels >= 1, "tree needs at least one level");
        let hasher = HmacSha512::new(key);
        // Default digest at the leaf level is the digest of an absent
        // (all-zero) counter block; build parents bottom-up.
        let mut defaults = Vec::with_capacity(levels as usize + 1);
        defaults.push(hasher.compute(&[0u8; 64]));
        for l in 0..levels as usize {
            let child = defaults[l];
            let parts: Vec<&[u8]> = (0..arity).map(|_| child.as_ref()).collect();
            defaults.push(hasher.compute_parts(&parts));
        }
        let root = defaults[levels as usize];
        BonsaiMerkleTree {
            hasher,
            backend: CryptoBackend::default(),
            arity,
            levels,
            nodes: defaults[..levels as usize]
                .iter()
                .map(|&d| NodeLevel::new(d))
                .collect(),
            root,
            root_updates: 0,
            node_hashes: 0,
            lazy: false,
            dirty: Vec::new(),
            fold_hashes: 0,
            folds: 0,
        }
    }

    /// Switches between eager and lazy folding.  Turning lazy *off*
    /// folds any pending updates first, so the tree is always observable
    /// afterwards.
    pub fn set_lazy(&mut self, lazy: bool) {
        if !lazy {
            self.fold();
        }
        self.lazy = lazy;
    }

    /// Whether updates defer their leaf-to-root walk.
    pub fn is_lazy(&self) -> bool {
        self.lazy
    }

    /// Selects the crypto backend used by batched folds.  Every backend
    /// is byte-identical; only the dispatch width differs.
    pub fn set_backend(&mut self, backend: CryptoBackend) {
        self.backend = backend;
    }

    /// The crypto backend batched folds dispatch to.
    pub fn backend(&self) -> CryptoBackend {
        self.backend
    }

    /// Whether any updates are pending a fold.  The root (and any
    /// interior node) is only authoritative when this is `false`.
    pub fn has_pending(&self) -> bool {
        !self.dirty.is_empty()
    }

    /// Hashes actually computed by folds (a pure performance metric:
    /// the analytic [`node_hashes`](Self::node_hashes) statistic is what
    /// the timing/energy models consume).
    pub fn fold_hashes(&self) -> u64 {
        self.fold_hashes
    }

    /// Number of [`fold`](Self::fold) calls that performed work.
    pub fn folds(&self) -> u64 {
        self.folds
    }

    /// Folds every pending leaf update into the tree in one batched,
    /// level-by-level walk: each dirty interior node is hashed exactly
    /// once no matter how many dirty leaves sit beneath it, and all of a
    /// level's parent digests are computed in one multi-lane
    /// [`HmacSha512::compute_batch`] dispatch (every message is the same
    /// `arity * 64`-byte sibling group, gathered straight out of the
    /// chunked `NodeLevel` storage).  Returns the hashes performed
    /// (0 when nothing is pending).  A no-op in eager mode, where updates
    /// fold as they happen.
    pub fn fold(&mut self) -> u64 {
        if self.dirty.is_empty() {
            return 0;
        }
        self.dirty.sort_unstable();
        self.dirty.dedup();
        let mut frontier = std::mem::take(&mut self.dirty);
        let mut scratch: Vec<Digest> = Vec::with_capacity(self.arity);
        let mut flat: Vec<u8> = Vec::new();
        let mut digests: Vec<Digest> = Vec::new();
        let mut hashes = 0u64;
        for level in 0..self.levels as usize {
            // Parents of a sorted frontier are sorted; dedup collapses
            // siblings so shared ancestors hash once.
            let mut parents: Vec<u64> = frontier.iter().map(|&i| i / self.arity as u64).collect();
            parents.dedup();
            flat.clear();
            for &parent in &parents {
                let first_child = parent * self.arity as u64;
                self.nodes[level].siblings(first_child, self.arity, &mut scratch);
                for d in &scratch {
                    flat.extend_from_slice(&d.0);
                }
            }
            digests.clear();
            self.hasher
                .compute_batch(&self.backend, &flat, self.arity * 64, &mut digests);
            hashes += parents.len() as u64;
            for (&parent, &digest) in parents.iter().zip(&digests) {
                if level + 1 == self.levels as usize {
                    self.root = digest;
                } else {
                    self.nodes[level + 1].set(parent, digest);
                }
            }
            frontier = parents;
        }
        self.fold_hashes += hashes;
        self.folds += 1;
        hashes
    }

    /// Number of levels above the leaves.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Children per interior node.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of leaves the tree covers.
    pub fn capacity(&self) -> u64 {
        (self.arity as u64).pow(self.levels)
    }

    /// The current root digest (the paper's non-volatile root register).
    ///
    /// In lazy mode the root is an observation point: callers must
    /// [`fold`](Self::fold) first (debug builds assert this).
    pub fn root(&self) -> Digest {
        debug_assert!(
            self.dirty.is_empty(),
            "lazy BMT observed with pending updates: fold() first"
        );
        self.root
    }

    /// Total leaf-to-root update walks performed (Figure 8's metric).
    pub fn root_updates(&self) -> u64 {
        self.root_updates
    }

    /// Total interior-node hash computations performed (drives the energy
    /// model: one SHA-512 per node per Table III).
    pub fn node_hashes(&self) -> u64 {
        self.node_hashes
    }

    /// Resets the update/hash statistics (e.g. between measurement
    /// regions).
    pub fn reset_stats(&mut self) {
        self.root_updates = 0;
        self.node_hashes = 0;
    }

    fn node_digest(&self, level: usize, index: u64) -> Digest {
        self.nodes[level].get(index)
    }

    /// Writes a new leaf digest and walks the update to the root (eager
    /// mode), or records the leaf for a later [`fold`](Self::fold) (lazy
    /// mode).
    ///
    /// Returns the number of node hashes the modeled hardware performs
    /// (== `levels`), which the timing model multiplies by the per-hash
    /// latency.  The count is *analytic*: it is identical in both modes,
    /// so statistics cannot distinguish them.
    ///
    /// # Panics
    ///
    /// Panics if `leaf_index` is outside the tree's capacity.
    pub fn update_leaf(&mut self, leaf_index: u64, leaf_digest: Digest) -> u32 {
        assert!(
            leaf_index < self.capacity(),
            "leaf {leaf_index} out of range"
        );
        self.nodes[0].set(leaf_index, leaf_digest);
        self.root_updates += 1;
        self.node_hashes += u64::from(self.levels);
        if self.lazy {
            self.dirty.push(leaf_index);
            return self.levels;
        }
        let mut index = leaf_index;
        let mut scratch: Vec<Digest> = Vec::with_capacity(self.arity);
        for level in 0..self.levels as usize {
            let parent = index / self.arity as u64;
            let first_child = parent * self.arity as u64;
            self.nodes[level].siblings(first_child, self.arity, &mut scratch);
            let parts: Vec<&[u8]> = scratch.iter().map(|d| d.as_ref()).collect();
            let parent_digest = self.hasher.compute_parts(&parts);
            if level + 1 == self.levels as usize {
                self.root = parent_digest;
            } else {
                self.nodes[level + 1].set(parent, parent_digest);
            }
            index = parent;
        }
        self.levels
    }

    /// The stored digest of a leaf (default digest if never written).
    pub fn leaf(&self, leaf_index: u64) -> Digest {
        self.node_digest(0, leaf_index)
    }

    /// Produces an authentication path for a leaf.
    ///
    /// An observation point: in lazy mode, [`fold`](Self::fold) first.
    pub fn prove(&self, leaf_index: u64) -> MerkleProof {
        assert!(
            leaf_index < self.capacity(),
            "leaf {leaf_index} out of range"
        );
        debug_assert!(
            self.dirty.is_empty(),
            "lazy BMT observed with pending updates: fold() first"
        );
        let mut levels = Vec::with_capacity(self.levels as usize);
        let mut index = leaf_index;
        for level in 0..self.levels as usize {
            let parent = index / self.arity as u64;
            let first_child = parent * self.arity as u64;
            let children: Vec<Digest> = (0..self.arity as u64)
                .map(|c| self.node_digest(level, first_child + c))
                .collect();
            levels.push(children);
            index = parent;
        }
        MerkleProof { leaf_index, levels }
    }

    /// Verifies an authentication path: the claimed `leaf_digest` must sit
    /// at the right position of the bottom level and hashing upward must
    /// reproduce the current root.
    pub fn verify_proof(&self, proof: &MerkleProof, leaf_digest: Digest) -> bool {
        if proof.levels.len() != self.levels as usize {
            return false;
        }
        let mut index = proof.leaf_index;
        let mut current = leaf_digest;
        for children in &proof.levels {
            if children.len() != self.arity {
                return false;
            }
            let pos = (index % self.arity as u64) as usize;
            if children[pos] != current {
                return false;
            }
            let parts: Vec<&[u8]> = children.iter().map(|d| d.as_ref()).collect();
            current = self.hasher.compute_parts(&parts);
            index /= self.arity as u64;
        }
        current == self.root()
    }

    /// Appends the tree's dynamic state — touched node chunks per level
    /// (sorted by chunk id), root register, statistics, lazy flag, and
    /// the normalized dirty set — to a checkpoint.  The key, arity,
    /// level count, and backend are *not* serialised:
    /// [`restore_from`](Self::restore_from) requires a tree constructed
    /// with the same parameters.  The dirty set is sorted and
    /// deduplicated on encode, which is exactly the normalisation
    /// [`fold`](Self::fold) applies first, so restore + fold is
    /// byte-identical to fold on the original.
    pub fn encode_into(&self, w: &mut WireWriter) {
        w.u32(self.levels);
        w.usize(self.arity);
        for level in &self.nodes {
            let mut chunks: Vec<_> = level.chunks.iter().collect();
            chunks.sort_by_key(|&(id, _)| *id);
            w.usize(chunks.len());
            for (id, chunk) in chunks {
                w.u64(*id);
                for d in chunk.iter() {
                    w.raw(&d.0);
                }
            }
        }
        w.raw(&self.root.0);
        w.u64(self.root_updates);
        w.u64(self.node_hashes);
        w.bool(self.lazy);
        let mut dirty = self.dirty.clone();
        dirty.sort_unstable();
        dirty.dedup();
        w.usize(dirty.len());
        for leaf in dirty {
            w.u64(leaf);
        }
        w.u64(self.fold_hashes);
        w.u64(self.folds);
    }

    /// Overlays state captured by [`encode_into`](Self::encode_into) onto
    /// a tree built with the same key, arity, and level count.
    ///
    /// # Errors
    ///
    /// Fails if the encoded shape disagrees with this tree's, or on
    /// truncation.
    pub fn restore_from(&mut self, r: &mut WireReader<'_>) -> Result<(), WireError> {
        if r.u32()? != self.levels || r.usize()? != self.arity {
            return Err(r.malformed("BMT snapshot shape does not match tree"));
        }
        for level in self.nodes.iter_mut() {
            level.chunks.clear();
            let n = r.seq_len(8 + LEVEL_CHUNK as usize * 64)?;
            for _ in 0..n {
                let id = r.u64()?;
                let mut chunk = vec![level.default; LEVEL_CHUNK as usize].into_boxed_slice();
                for d in chunk.iter_mut() {
                    *d = Digest(r.array::<64>()?);
                }
                level.chunks.insert(id, chunk);
            }
        }
        self.root = Digest(r.array::<64>()?);
        self.root_updates = r.u64()?;
        self.node_hashes = r.u64()?;
        self.lazy = r.bool()?;
        let n = r.seq_len(8)?;
        let mut dirty = Vec::with_capacity(n);
        for _ in 0..n {
            dirty.push(r.u64()?);
        }
        self.dirty = dirty;
        self.fold_hashes = r.u64()?;
        self.folds = r.u64()?;
        Ok(())
    }

    /// The non-default nodes of one level as sorted `(index, digest)`
    /// pairs — the durable frontier a Triad-NVM-style policy persists
    /// when it keeps levels `0..=level` online.
    ///
    /// An observation point: in lazy mode, [`fold`](Self::fold) first.
    ///
    /// # Panics
    ///
    /// Panics if `level >= levels` (the root is not a node level).
    pub fn level_nodes(&self, level: u32) -> Vec<(u64, Digest)> {
        assert!(level < self.levels, "level {level} out of range");
        debug_assert!(
            self.dirty.is_empty(),
            "lazy BMT observed with pending updates: fold() first"
        );
        let lvl = &self.nodes[level as usize];
        let mut chunks: Vec<_> = lvl.chunks.iter().collect();
        chunks.sort_by_key(|&(id, _)| *id);
        let mut out = Vec::new();
        for (id, chunk) in chunks {
            for (off, d) in chunk.iter().enumerate() {
                if *d != lvl.default {
                    out.push((id * LEVEL_CHUNK + off as u64, *d));
                }
            }
        }
        out
    }

    /// Recomputes the root by hashing upward from a persisted frontier at
    /// `level`: `overlay` supplies the non-default `(index, digest)` nodes
    /// of that level (absent indices read as the level default), exactly
    /// the shape [`level_nodes`](Self::level_nodes) produces.  Returns the
    /// root and the number of node hashes the walk performed — the exact
    /// recovery fold cost of a Triad-NVM-style selective-persistence
    /// policy that reconstructs levels `level+1..` at recovery.
    ///
    /// # Panics
    ///
    /// Panics if `level >= levels`.
    pub fn root_from_level(&self, level: u32, overlay: &[(u64, Digest)]) -> (Digest, u64) {
        assert!(level < self.levels, "level {level} out of range");
        let mut cur: Vec<(u64, Digest)> = overlay.to_vec();
        cur.sort_unstable_by_key(|e| e.0);
        cur.dedup_by_key(|e| e.0);
        if cur.is_empty() {
            // All-default frontier: fold one default chain to the root.
            cur.push((0, self.nodes[level as usize].default));
        }
        let mut hashes = 0u64;
        for l in level as usize..self.levels as usize {
            let default = self.nodes[l].default;
            let map: FxHashMap<u64, Digest> = cur.iter().copied().collect();
            let mut parents: Vec<u64> = cur.iter().map(|&(i, _)| i / self.arity as u64).collect();
            parents.dedup();
            let mut next = Vec::with_capacity(parents.len());
            for &parent in &parents {
                let first = parent * self.arity as u64;
                let children: Vec<Digest> = (0..self.arity as u64)
                    .map(|c| map.get(&(first + c)).copied().unwrap_or(default))
                    .collect();
                let parts: Vec<&[u8]> = children.iter().map(|d| d.as_ref()).collect();
                next.push((parent, self.hasher.compute_parts(&parts)));
                hashes += 1;
            }
            cur = next;
        }
        (cur[0].1, hashes)
    }

    /// Rebuilds a tree from scratch over the given `(leaf_index, digest)`
    /// pairs — the post-crash recovery path when the persisted tree nodes
    /// are reconstructed from the persisted counter blocks.
    pub fn rebuild_from_leaves<I>(key: &[u8], arity: usize, levels: u32, leaves: I) -> Self
    where
        I: IntoIterator<Item = (u64, Digest)>,
    {
        let mut tree = Self::new(key, arity, levels);
        for (idx, digest) in leaves {
            tree.update_leaf(idx, digest);
        }
        tree.reset_stats();
        tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha512::Sha512;

    fn tree() -> BonsaiMerkleTree {
        BonsaiMerkleTree::new(b"k", 4, 3)
    }

    #[test]
    fn empty_tree_roots_are_deterministic() {
        let a = BonsaiMerkleTree::new(b"k", 4, 3);
        let b = BonsaiMerkleTree::new(b"k", 4, 3);
        assert_eq!(a.root(), b.root());
        let c = BonsaiMerkleTree::new(b"other", 4, 3);
        assert_ne!(a.root(), c.root());
    }

    #[test]
    fn capacity_is_arity_pow_levels() {
        assert_eq!(tree().capacity(), 64);
        assert_eq!(BonsaiMerkleTree::new(b"k", 8, 8).capacity(), 16_777_216);
    }

    #[test]
    fn update_changes_root_and_counts() {
        let mut t = tree();
        let r0 = t.root();
        let hashes = t.update_leaf(5, Sha512::digest(b"leaf5"));
        assert_eq!(hashes, 3);
        assert_ne!(t.root(), r0);
        assert_eq!(t.root_updates(), 1);
        assert_eq!(t.node_hashes(), 3);
    }

    #[test]
    fn same_leaves_same_root_regardless_of_order() {
        let mut a = tree();
        let mut b = tree();
        let items: Vec<(u64, Digest)> = (0..10)
            .map(|i| (i * 6 % 64, Sha512::digest(&[i as u8])))
            .collect();
        for (i, d) in &items {
            a.update_leaf(*i, *d);
        }
        for (i, d) in items.iter().rev() {
            b.update_leaf(*i, *d);
        }
        assert_eq!(a.root(), b.root());
    }

    #[test]
    fn proof_verifies_and_detects_tampering() {
        let mut t = tree();
        let d = Sha512::digest(b"payload");
        t.update_leaf(17, d);
        let proof = t.prove(17);
        assert!(t.verify_proof(&proof, d));
        assert!(!t.verify_proof(&proof, Sha512::digest(b"other")));
    }

    #[test]
    fn proof_for_default_leaf_verifies() {
        let mut t = tree();
        t.update_leaf(0, Sha512::digest(b"x"));
        let proof = t.prove(63);
        assert!(t.verify_proof(&proof, t.leaf(63)));
    }

    #[test]
    fn stale_proof_fails_after_update() {
        let mut t = tree();
        let d1 = Sha512::digest(b"v1");
        t.update_leaf(3, d1);
        let proof = t.prove(3);
        t.update_leaf(3, Sha512::digest(b"v2"));
        assert!(
            !t.verify_proof(&proof, d1),
            "replayed old state must be rejected"
        );
    }

    #[test]
    fn sibling_update_invalidates_old_proof_root() {
        let mut t = tree();
        let d = Sha512::digest(b"mine");
        t.update_leaf(8, d);
        let proof = t.prove(8);
        t.update_leaf(9, Sha512::digest(b"sibling"));
        // Proof captured before the sibling changed no longer matches root.
        assert!(!t.verify_proof(&proof, d));
        // A fresh proof does.
        assert!(t.verify_proof(&t.prove(8), d));
    }

    #[test]
    fn rebuild_matches_incremental() {
        let mut incr = tree();
        let leaves: Vec<(u64, Digest)> = (0..20)
            .map(|i| (i as u64 * 3 % 64, Sha512::digest(&[i as u8, 1])))
            .collect();
        for (i, d) in &leaves {
            incr.update_leaf(*i, *d);
        }
        let rebuilt = BonsaiMerkleTree::rebuild_from_leaves(b"k", 4, 3, leaves);
        assert_eq!(rebuilt.root(), incr.root());
        assert_eq!(rebuilt.root_updates(), 0, "rebuild resets stats");
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut t = tree();
        t.update_leaf(1, Sha512::digest(b"a"));
        t.reset_stats();
        assert_eq!(t.root_updates(), 0);
        assert_eq!(t.node_hashes(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn update_out_of_range_panics() {
        tree().update_leaf(64, Sha512::digest(b"x"));
    }

    #[test]
    fn lazy_fold_matches_eager_root_and_stats() {
        let mut eager = tree();
        let mut lazy = tree();
        lazy.set_lazy(true);
        let items: Vec<(u64, Digest)> = (0..50)
            .map(|i| (i * 13 % 64, Sha512::digest(&[i as u8, 7])))
            .collect();
        for (i, d) in &items {
            eager.update_leaf(*i, *d);
            lazy.update_leaf(*i, *d);
        }
        assert!(lazy.has_pending());
        // Analytic statistics agree before any fold happens.
        assert_eq!(lazy.root_updates(), eager.root_updates());
        assert_eq!(lazy.node_hashes(), eager.node_hashes());
        let folded = lazy.fold();
        assert!(!lazy.has_pending());
        assert_eq!(lazy.root(), eager.root());
        assert_eq!(lazy.fold_hashes(), folded);
        // Coalescing: the batched fold does strictly less hashing than
        // the eager per-update walks (50 updates over <=50 distinct
        // leaves in a 3-level tree).
        assert!(folded < eager.node_hashes());
        // Interior nodes are byte-identical too: proofs verify cross-tree.
        for (i, _) in &items {
            assert!(eager.verify_proof(&lazy.prove(*i), lazy.leaf(*i)));
        }
    }

    #[test]
    fn fold_is_backend_invariant() {
        let mut eager = tree();
        let items: Vec<(u64, Digest)> = (0..37)
            .map(|i| (i * 11 % 64, Sha512::digest(&[i as u8, 3])))
            .collect();
        for (i, d) in &items {
            eager.update_leaf(*i, *d);
        }
        for backend in CryptoBackend::ALL {
            let mut lazy = tree();
            lazy.set_backend(backend);
            assert_eq!(lazy.backend(), backend);
            lazy.set_lazy(true);
            for (i, d) in &items {
                lazy.update_leaf(*i, *d);
            }
            lazy.fold();
            assert_eq!(lazy.root(), eager.root(), "{}", backend.name());
            for (i, _) in &items {
                assert!(eager.verify_proof(&lazy.prove(*i), lazy.leaf(*i)));
            }
        }
    }

    #[test]
    fn lazy_repeated_updates_coalesce_to_one_walk() {
        let mut t = tree();
        t.set_lazy(true);
        let mut last = Sha512::digest(b"x");
        for i in 0..100u8 {
            last = Sha512::digest(&[i]);
            t.update_leaf(5, last);
        }
        let folded = t.fold();
        assert_eq!(folded, u64::from(t.levels()), "one walk for 100 updates");
        let mut eager = tree();
        eager.update_leaf(5, last);
        assert_eq!(t.root(), eager.root());
    }

    #[test]
    fn fold_is_noop_when_clean() {
        let mut t = tree();
        t.set_lazy(true);
        assert_eq!(t.fold(), 0);
        assert_eq!(t.folds(), 0);
        t.update_leaf(0, Sha512::digest(b"a"));
        assert!(t.fold() > 0);
        assert_eq!(t.folds(), 1);
        assert_eq!(t.fold(), 0, "second fold has nothing to do");
    }

    #[test]
    fn disabling_lazy_folds_pending_work() {
        let mut t = tree();
        t.set_lazy(true);
        t.update_leaf(9, Sha512::digest(b"p"));
        t.set_lazy(false);
        assert!(!t.has_pending());
        assert!(!t.is_lazy());
        let mut eager = tree();
        eager.update_leaf(9, Sha512::digest(b"p"));
        assert_eq!(t.root(), eager.root());
    }

    #[test]
    #[should_panic(expected = "fold() first")]
    #[cfg(debug_assertions)]
    fn lazy_root_observation_without_fold_asserts() {
        let mut t = tree();
        t.set_lazy(true);
        t.update_leaf(0, Sha512::digest(b"a"));
        let _ = t.root();
    }

    #[test]
    fn wire_round_trip_reproduces_tree_and_pending_folds() {
        use secpb_sim::wire::{WireReader, WireWriter};
        let mut t = tree();
        t.set_lazy(true);
        for i in 0..30u64 {
            t.update_leaf(i * 7 % 64, Sha512::digest(&[i as u8, 9]));
        }
        let mut w = WireWriter::new();
        t.encode_into(&mut w);
        let bytes = w.into_bytes();

        let mut restored = tree();
        restored
            .restore_from(&mut WireReader::new(&bytes))
            .expect("restore");
        assert!(restored.is_lazy());
        assert_eq!(restored.root_updates(), t.root_updates());
        // Folding the restored tree matches folding the original: same
        // hash count, same root, same proofs.
        assert_eq!(restored.fold(), t.fold());
        assert_eq!(restored.root(), t.root());
        for i in 0..30u64 {
            let leaf = i * 7 % 64;
            assert!(t.verify_proof(&restored.prove(leaf), restored.leaf(leaf)));
        }

        // Shape mismatch is rejected.
        let mut other = BonsaiMerkleTree::new(b"k", 4, 2);
        assert!(other.restore_from(&mut WireReader::new(&bytes)).is_err());
    }

    #[test]
    fn root_from_level_frontier_reproduces_root() {
        let mut t = tree();
        for i in 0..20u64 {
            t.update_leaf(i * 3 % 64, Sha512::digest(&[i as u8, 5]));
        }
        for level in 0..t.levels() {
            let frontier = t.level_nodes(level);
            let (root, hashes) = t.root_from_level(level, &frontier);
            assert_eq!(root, t.root(), "frontier at level {level}");
            // Higher frontiers fold strictly less.
            assert!(hashes >= u64::from(t.levels() - level));
        }
        // Fold costs shrink as the persisted frontier climbs.
        let costs: Vec<u64> = (0..t.levels())
            .map(|l| t.root_from_level(l, &t.level_nodes(l)).1)
            .collect();
        for pair in costs.windows(2) {
            assert!(pair[0] >= pair[1], "{costs:?}");
        }
    }

    #[test]
    fn root_from_level_empty_overlay_is_default_root() {
        let t = tree();
        let (root, hashes) = t.root_from_level(0, &[]);
        assert_eq!(root, t.root());
        assert_eq!(hashes, u64::from(t.levels()));
        let empty = t.level_nodes(0);
        assert!(empty.is_empty());
    }

    #[test]
    fn level_nodes_round_trip_after_lazy_fold() {
        let mut eager = tree();
        let mut lazy = tree();
        lazy.set_lazy(true);
        for i in 0..30u64 {
            let d = Sha512::digest(&[i as u8, 11]);
            eager.update_leaf(i * 7 % 64, d);
            lazy.update_leaf(i * 7 % 64, d);
        }
        lazy.fold();
        for level in 0..eager.levels() {
            assert_eq!(eager.level_nodes(level), lazy.level_nodes(level));
        }
    }

    #[test]
    fn wrong_shape_proof_rejected() {
        let mut t = tree();
        let d = Sha512::digest(b"x");
        t.update_leaf(0, d);
        let mut proof = t.prove(0);
        proof.levels.pop();
        assert!(!t.verify_proof(&proof, d));
        let mut proof2 = t.prove(0);
        proof2.levels[0].pop();
        assert!(!t.verify_proof(&proof2, d));
    }
}
