//! # secpb-crypto — the secure-memory cryptographic substrate
//!
//! Everything the SecPB architecture needs to *functionally* secure
//! persistent memory, implemented from scratch:
//!
//! * [`aes`] — the AES-128/192/256 block cipher (FIPS 197), with the S-box
//!   derived from the GF(2⁸) inverse + affine transform rather than a
//!   transcribed table,
//! * [`sha512`] — SHA-512 (FIPS 180-4), with the round constants derived
//!   from prime cube roots at start-up,
//! * [`hmac`] — HMAC-SHA-512 (RFC 2104),
//! * [`counter`] — split counters (major + per-block minor) as used by
//!   counter-mode memory encryption (Yan et al., ISCA'06),
//! * [`otp`] — one-time-pad generation and XOR-based counter-mode
//!   encryption of 64-byte memory blocks,
//! * [`mac`] — per-block memory authentication codes binding ciphertext,
//!   address, and counter,
//! * [`memo`] — bounded, deterministic memoization of OTP pads and
//!   counter-block digests (both are data-value-independent),
//! * [`bmt`] — the Bonsai Merkle Tree over counter blocks, with a root
//!   register, leaf-to-root updates, and verification (Rogers et al.,
//!   MICRO'07),
//! * [`bmf`] — Bonsai Merkle Forests (Freij et al., MICRO'21): DBMF/SBMF
//!   height reduction with a persisted root cache, used by the paper's
//!   Figure 9 study.
//!
//! The SecPB paper models crypto units by latency only (40-cycle MAC,
//! 8-level BMT); this crate supplies the *functional* half so that the crash
//! -recovery tests in `secpb-core` can actually decrypt, verify MACs, and
//! check the BMT root after a simulated crash.
//!
//! # Example
//!
//! ```
//! use secpb_crypto::aes::Aes;
//!
//! let key = [0u8; 16];
//! let aes = Aes::new_128(&key);
//! let pt = [0u8; 16];
//! let ct = aes.encrypt_block(&pt);
//! assert_eq!(aes.decrypt_block(&ct), pt);
//! ```

// The only unsafe code in the crate is the `std::arch` AES-NI kernel
// behind the `hw-crypto` feature; default builds stay forbid-clean.
#![cfg_attr(not(feature = "hw-crypto"), forbid(unsafe_code))]
#![cfg_attr(feature = "hw-crypto", deny(unsafe_code))]
#![warn(missing_docs)]

pub mod aes;
pub mod backend;
pub mod bmf;
pub mod bmt;
pub mod counter;
pub mod hmac;
pub mod mac;
pub mod memo;
pub mod otp;
pub mod sgx_tree;
pub mod sha512;
pub mod xts;

pub use aes::Aes;
pub use backend::{CipherBackend, CryptoBackend, HashBackend};
pub use bmt::BonsaiMerkleTree;
pub use counter::{CounterBlock, SplitCounter};
pub use mac::BlockMac;
pub use otp::OtpEngine;
pub use sha512::Sha512;
