//! Bonsai Merkle Forests (Freij et al., MICRO'21), the state-of-the-art
//! BMT height-reduction mechanism the paper pairs with SecPB in its
//! Figure 9 study.
//!
//! A BMF splits the single integrity tree into a forest of subtrees whose
//! roots live in a small secure, persisted *root cache*.  While a subtree's
//! root is cached, updating a leaf only walks the subtree (2 levels for
//! DBMF, 5 for SBMF in the paper's configuration) instead of the full
//! 8-level BMT.  When the root cache evicts a subtree root, it is folded
//! back into the *upper tree* so the full-height root still authenticates
//! everything.
//!
//! The forest exposes the same statistics as [`crate::bmt`]: node hashes
//! (energy) and root updates, plus root-cache hit/miss counts used by the
//! Figure 9 timing model.
//!
//! Forests interact with the persistence-policy layer (DESIGN.md §18)
//! only through the baseline root-only contract: Triad-NVM selective
//! depths and the fast-recovery shadow layout are defined over the
//! *monolithic* BMT's level structure, so `PersistencePolicy` rejects
//! non-baseline tree/counter layouts on DBMF/SBMF organisations with
//! `PolicyError::UnsupportedTree` rather than guessing at a forest
//! frontier.

use std::collections::VecDeque;

use secpb_sim::fxhash::FxHashMap;
use secpb_sim::wire::{WireError, WireReader, WireWriter};

use crate::backend::CryptoBackend;
use crate::bmt::BonsaiMerkleTree;
use crate::sha512::Digest;

/// Which BMF organisation to model (Figure 9 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BmfMode {
    /// Dynamic BMF: subtrees of height 2 (the paper reduces the 8-level
    /// BMT to 2 levels for cached subtrees).
    Dbmf,
    /// Static BMF: subtrees of height 5.
    Sbmf,
}

impl BmfMode {
    /// The effective update height (levels hashed on a root-cache hit).
    pub fn effective_levels(self) -> u32 {
        match self {
            BmfMode::Dbmf => 2,
            BmfMode::Sbmf => 5,
        }
    }
}

/// Statistics of forest activity.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BmfStats {
    /// Leaf updates that found their subtree root cached.
    pub cache_hits: u64,
    /// Leaf updates that missed the root cache.
    pub cache_misses: u64,
    /// Subtree roots folded into the upper tree on eviction.
    pub evictions: u64,
    /// Total node hashes performed (subtree + upper tree).
    pub node_hashes: u64,
}

/// A Bonsai Merkle Forest: a two-tier integrity tree with a bounded secure
/// root cache.
///
/// # Example
///
/// ```
/// use secpb_crypto::bmf::{BmfMode, BonsaiMerkleForest};
/// use secpb_crypto::sha512::Sha512;
///
/// let mut forest = BonsaiMerkleForest::new(b"key", 8, 8, BmfMode::Dbmf, 64);
/// let hashes = forest.update_leaf(1234, Sha512::digest(b"ctr"));
/// // First touch misses the root cache; later updates in the same subtree
/// // hash only the 2 subtree levels.
/// let hashes2 = forest.update_leaf(1235, Sha512::digest(b"ctr2"));
/// assert!(hashes2 <= hashes);
/// assert_eq!(hashes2, 2);
/// ```
#[derive(Debug, Clone)]
pub struct BonsaiMerkleForest {
    key: Vec<u8>,
    arity: usize,
    sub_levels: u32,
    /// Upper tree over subtree roots: `full_levels - sub_levels` levels.
    upper: BonsaiMerkleTree,
    subtrees: FxHashMap<u64, BonsaiMerkleTree>,
    /// Subtree ids whose roots are currently in the secure root cache,
    /// in LRU order (front = oldest).
    cache: VecDeque<u64>,
    cache_capacity: usize,
    stats: BmfStats,
    /// Lazy folding, propagated to the upper tree and every subtree (see
    /// [`crate::bmt`]).  Root-cache bookkeeping (and thus the analytic
    /// hash counts) is identical in both modes; only *when* the HMACs
    /// run differs.
    lazy: bool,
    /// Crypto backend propagated to the upper tree and every subtree.
    backend: CryptoBackend,
}

impl BonsaiMerkleForest {
    /// Creates a forest equivalent to a `full_levels`-level BMT of the
    /// given `arity`, with subtree height from `mode` and a root cache of
    /// `root_cache_entries` roots (the paper uses a 4 KB root cache, i.e.
    /// 64 SHA-512 roots).
    ///
    /// # Panics
    ///
    /// Panics if the mode's subtree height is not below `full_levels`.
    pub fn new(
        key: &[u8],
        arity: usize,
        full_levels: u32,
        mode: BmfMode,
        root_cache_entries: usize,
    ) -> Self {
        let sub_levels = mode.effective_levels();
        assert!(
            sub_levels < full_levels,
            "subtree height {sub_levels} must be below the full tree height {full_levels}"
        );
        assert!(
            root_cache_entries > 0,
            "root cache needs at least one entry"
        );
        let upper = BonsaiMerkleTree::new(key, arity, full_levels - sub_levels);
        BonsaiMerkleForest {
            key: key.to_vec(),
            arity,
            sub_levels,
            upper,
            subtrees: FxHashMap::default(),
            cache: VecDeque::new(),
            cache_capacity: root_cache_entries,
            stats: BmfStats::default(),
            lazy: false,
            backend: CryptoBackend::default(),
        }
    }

    /// Selects the crypto backend for batched folds across the whole
    /// forest (upper tree, existing subtrees, and subtrees yet to be
    /// materialized).
    pub fn set_backend(&mut self, backend: CryptoBackend) {
        self.backend = backend;
        self.upper.set_backend(backend);
        for subtree in self.subtrees.values_mut() {
            subtree.set_backend(backend);
        }
    }

    /// The crypto backend batched folds dispatch to.
    pub fn backend(&self) -> CryptoBackend {
        self.backend
    }

    /// Switches the whole forest (upper tree + subtrees) between eager
    /// and lazy folding.  Turning lazy off folds all pending work.
    pub fn set_lazy(&mut self, lazy: bool) {
        self.lazy = lazy;
        self.upper.set_lazy(lazy);
        for subtree in self.subtrees.values_mut() {
            subtree.set_lazy(lazy);
        }
    }

    /// Whether updates defer their hashing to folds.
    pub fn is_lazy(&self) -> bool {
        self.lazy
    }

    /// Whether any tree in the forest has un-folded updates.
    pub fn has_pending(&self) -> bool {
        self.upper.has_pending() || self.subtrees.values().any(|t| t.has_pending())
    }

    /// Hashes actually performed by folds across the forest (performance
    /// metric; the analytic counts live in [`stats`](Self::stats)).
    pub fn fold_hashes(&self) -> u64 {
        self.upper.fold_hashes()
            + self
                .subtrees
                .values()
                .map(BonsaiMerkleTree::fold_hashes)
                .sum::<u64>()
    }

    /// Leaves per subtree.
    pub fn subtree_capacity(&self) -> u64 {
        (self.arity as u64).pow(self.sub_levels)
    }

    /// Subtree height in levels (the effective update height on a
    /// root-cache hit).
    pub fn sub_levels(&self) -> u32 {
        self.sub_levels
    }

    /// Upper-tree height in levels (walked when an evicted subtree root is
    /// folded in).
    pub fn upper_levels(&self) -> u32 {
        self.upper.levels()
    }

    /// Total leaf capacity (same as the equivalent monolithic BMT).
    pub fn capacity(&self) -> u64 {
        self.subtree_capacity() * self.upper.capacity()
    }

    /// The secure root of the whole forest (upper-tree root).  Note that
    /// the security state also includes the cached subtree roots; both are
    /// battery-backed in the paper's design.
    pub fn upper_root(&self) -> Digest {
        self.upper.root()
    }

    /// Activity statistics.
    pub fn stats(&self) -> BmfStats {
        self.stats
    }

    /// Resets the statistics.
    pub fn reset_stats(&mut self) {
        self.stats = BmfStats::default();
    }

    /// Whether a subtree's root currently sits in the secure root cache.
    pub fn is_cached(&self, subtree: u64) -> bool {
        self.cache.contains(&subtree)
    }

    fn touch_lru(&mut self, subtree: u64) {
        if let Some(pos) = self.cache.iter().position(|&s| s == subtree) {
            self.cache.remove(pos);
        }
        self.cache.push_back(subtree);
    }

    /// Updates a leaf, returning the number of node hashes performed
    /// (the quantity the timing model charges at 40 cycles each).
    ///
    /// # Panics
    ///
    /// Panics if `leaf_index` exceeds [`capacity`](Self::capacity).
    pub fn update_leaf(&mut self, leaf_index: u64, leaf_digest: Digest) -> u64 {
        assert!(
            leaf_index < self.capacity(),
            "leaf {leaf_index} out of range"
        );
        let subtree_id = leaf_index / self.subtree_capacity();
        let local_index = leaf_index % self.subtree_capacity();
        let mut hashes = 0u64;

        if self.is_cached(subtree_id) {
            self.stats.cache_hits += 1;
            self.touch_lru(subtree_id);
        } else {
            self.stats.cache_misses += 1;
            if self.cache.len() == self.cache_capacity {
                // Fold the evicted subtree's root into the upper tree.
                // A lazy victim must materialize its root first; the
                // upper-tree update itself may stay deferred (its
                // analytic cost is the same either way).
                let victim = self.cache.pop_front().expect("cache full");
                let victim_sub = self
                    .subtrees
                    .get_mut(&victim)
                    .expect("cached subtree exists");
                victim_sub.fold();
                let victim_root = victim_sub.root();
                hashes += u64::from(self.upper.update_leaf(victim, victim_root));
                self.stats.evictions += 1;
            }
            self.cache.push_back(subtree_id);
        }

        let arity = self.arity;
        let sub_levels = self.sub_levels;
        let lazy = self.lazy;
        let backend = self.backend;
        let key = self.key.clone();
        let subtree = self.subtrees.entry(subtree_id).or_insert_with(|| {
            let mut t = BonsaiMerkleTree::new(&key, arity, sub_levels);
            t.set_lazy(lazy);
            t.set_backend(backend);
            t
        });
        hashes += u64::from(subtree.update_leaf(local_index, leaf_digest));
        self.stats.node_hashes += hashes;
        hashes
    }

    /// Flushes every cached subtree root into the upper tree — the
    /// crash-drain path, after which [`upper_root`](Self::upper_root)
    /// authenticates the complete state.  Returns hashes performed.
    pub fn sync_all(&mut self) -> u64 {
        let mut hashes = 0u64;
        while let Some(subtree_id) = self.cache.pop_front() {
            let subtree = self.subtrees.get_mut(&subtree_id).expect("cached subtree");
            subtree.fold();
            let root = subtree.root();
            hashes += u64::from(self.upper.update_leaf(subtree_id, root));
        }
        if self.lazy {
            self.upper.fold();
        }
        self.stats.node_hashes += hashes;
        hashes
    }

    /// Appends the forest's dynamic state — upper tree, materialized
    /// subtrees (sorted by id), the root cache in exact LRU order, and
    /// statistics — to a checkpoint.  Key, arity, subtree height, cache
    /// capacity, lazy flag, and backend come from the constructor:
    /// [`restore_from`](Self::restore_from) requires a forest built with
    /// the same parameters.
    pub fn encode_into(&self, w: &mut WireWriter) {
        w.usize(self.arity);
        w.u32(self.sub_levels);
        w.usize(self.cache_capacity);
        self.upper.encode_into(w);
        let mut subtrees: Vec<_> = self.subtrees.iter().collect();
        subtrees.sort_by_key(|&(id, _)| *id);
        w.usize(subtrees.len());
        for (id, subtree) in subtrees {
            w.u64(*id);
            subtree.encode_into(w);
        }
        w.usize(self.cache.len());
        for id in &self.cache {
            w.u64(*id);
        }
        w.u64(self.stats.cache_hits);
        w.u64(self.stats.cache_misses);
        w.u64(self.stats.evictions);
        w.u64(self.stats.node_hashes);
        w.bool(self.lazy);
    }

    /// Overlays state captured by [`encode_into`](Self::encode_into) onto
    /// a forest built with the same key and shape.
    ///
    /// # Errors
    ///
    /// Fails on shape mismatch or truncation.
    pub fn restore_from(&mut self, r: &mut WireReader<'_>) -> Result<(), WireError> {
        if r.usize()? != self.arity
            || r.u32()? != self.sub_levels
            || r.usize()? != self.cache_capacity
        {
            return Err(r.malformed("BMF snapshot shape does not match forest"));
        }
        self.upper.restore_from(r)?;
        let n = r.seq_len(8)?;
        let mut subtrees = FxHashMap::default();
        for _ in 0..n {
            let id = r.u64()?;
            let mut subtree = BonsaiMerkleTree::new(&self.key, self.arity, self.sub_levels);
            subtree.set_backend(self.backend);
            subtree.restore_from(r)?;
            subtrees.insert(id, subtree);
        }
        self.subtrees = subtrees;
        let n = r.seq_len(8)?;
        if n > self.cache_capacity {
            return Err(r.malformed("BMF snapshot root cache exceeds capacity"));
        }
        let mut cache = VecDeque::with_capacity(n);
        for _ in 0..n {
            cache.push_back(r.u64()?);
        }
        self.cache = cache;
        self.stats = BmfStats {
            cache_hits: r.u64()?,
            cache_misses: r.u64()?,
            evictions: r.u64()?,
            node_hashes: r.u64()?,
        };
        self.lazy = r.bool()?;
        Ok(())
    }

    /// Verifies a leaf digest against the forest's secure state (cached
    /// subtree roots plus the upper root).
    pub fn verify_leaf(&self, leaf_index: u64, leaf_digest: Digest) -> bool {
        if leaf_index >= self.capacity() {
            return false;
        }
        let subtree_id = leaf_index / self.subtree_capacity();
        let local_index = leaf_index % self.subtree_capacity();
        match self.subtrees.get(&subtree_id) {
            None => {
                // Never-touched subtree: only the default (zero) leaf
                // verifies.
                let probe = BonsaiMerkleTree::new(&self.key, self.arity, self.sub_levels);
                leaf_digest == probe.leaf(local_index)
            }
            Some(subtree) => {
                let proof = subtree.prove(local_index);
                if !subtree.verify_proof(&proof, leaf_digest) {
                    return false;
                }
                // The subtree root must be vouched for: either directly in
                // the secure cache, or via the upper tree.
                if self.is_cached(subtree_id) {
                    true
                } else {
                    let upper_proof = self.upper.prove(subtree_id);
                    self.upper.verify_proof(&upper_proof, subtree.root())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha512::Sha512;

    fn forest() -> BonsaiMerkleForest {
        // 4-ary, 4 full levels, DBMF (2-level subtrees), 2-entry cache.
        BonsaiMerkleForest::new(b"k", 4, 4, BmfMode::Dbmf, 2)
    }

    #[test]
    fn mode_heights_match_paper() {
        assert_eq!(BmfMode::Dbmf.effective_levels(), 2);
        assert_eq!(BmfMode::Sbmf.effective_levels(), 5);
    }

    #[test]
    fn capacity_matches_monolithic_tree() {
        let f = forest();
        assert_eq!(f.capacity(), 4u64.pow(4));
        assert_eq!(f.subtree_capacity(), 16);
    }

    #[test]
    fn hit_costs_subtree_height_only() {
        let mut f = forest();
        f.update_leaf(0, Sha512::digest(b"a")); // miss
        let hashes = f.update_leaf(1, Sha512::digest(b"b")); // same subtree: hit
        assert_eq!(hashes, 2);
        assert_eq!(f.stats().cache_hits, 1);
        assert_eq!(f.stats().cache_misses, 1);
    }

    #[test]
    fn eviction_folds_root_into_upper_tree() {
        let mut f = forest();
        let upper0 = f.upper_root();
        f.update_leaf(0, Sha512::digest(b"s0")); // subtree 0
        f.update_leaf(16, Sha512::digest(b"s1")); // subtree 1
        assert_eq!(f.upper_root(), upper0, "no eviction yet");
        let hashes = f.update_leaf(32, Sha512::digest(b"s2")); // evicts subtree 0
        assert_eq!(f.stats().evictions, 1);
        // Eviction walks the 2 upper levels plus the 2 subtree levels.
        assert_eq!(hashes, 4);
        assert_ne!(f.upper_root(), upper0);
    }

    #[test]
    fn lru_keeps_recently_used_subtrees() {
        let mut f = forest();
        f.update_leaf(0, Sha512::digest(b"a")); // subtree 0
        f.update_leaf(16, Sha512::digest(b"b")); // subtree 1
        f.update_leaf(1, Sha512::digest(b"c")); // touch subtree 0 again
        f.update_leaf(32, Sha512::digest(b"d")); // should evict subtree 1
        assert!(f.is_cached(0));
        assert!(!f.is_cached(1));
        assert!(f.is_cached(32 / 16));
    }

    #[test]
    fn verify_cached_and_evicted_leaves() {
        let mut f = forest();
        let d0 = Sha512::digest(b"zero");
        f.update_leaf(0, d0);
        assert!(f.verify_leaf(0, d0));
        // Evict subtree 0 by touching two more subtrees.
        f.update_leaf(16, Sha512::digest(b"one"));
        f.update_leaf(32, Sha512::digest(b"two"));
        assert!(!f.is_cached(0));
        assert!(
            f.verify_leaf(0, d0),
            "evicted subtree verifies via upper tree"
        );
        assert!(!f.verify_leaf(0, Sha512::digest(b"forged")));
    }

    #[test]
    fn verify_untouched_leaf_only_default() {
        let f = forest();
        let probe = BonsaiMerkleTree::new(b"k", 4, 2);
        assert!(f.verify_leaf(5, probe.leaf(5)));
        assert!(!f.verify_leaf(5, Sha512::digest(b"not default")));
    }

    #[test]
    fn sync_all_empties_cache() {
        let mut f = forest();
        f.update_leaf(0, Sha512::digest(b"a"));
        f.update_leaf(16, Sha512::digest(b"b"));
        let hashes = f.sync_all();
        assert_eq!(hashes, 2 * 2, "two roots, two upper levels each");
        assert!(!f.is_cached(0));
        assert!(!f.is_cached(1));
        // Everything still verifies via the upper tree.
        assert!(f.verify_leaf(0, Sha512::digest(b"a")));
    }

    #[test]
    fn out_of_range_leaf_fails_verification() {
        let f = forest();
        assert!(!f.verify_leaf(f.capacity(), Sha512::digest(b"x")));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_update_panics() {
        forest().update_leaf(256, Sha512::digest(b"x"));
    }

    #[test]
    fn lazy_forest_matches_eager_after_sync() {
        let mut eager = forest();
        let mut lazy = forest();
        lazy.set_lazy(true);
        // Enough updates to exercise hits, misses, and evictions.
        let pattern: &[u64] = &[0, 1, 16, 2, 32, 17, 0, 48, 33, 1];
        for (i, &leaf) in pattern.iter().enumerate() {
            let d = Sha512::digest(format!("v{i}").as_bytes());
            let he = eager.update_leaf(leaf, d);
            let hl = lazy.update_leaf(leaf, d);
            assert_eq!(he, hl, "analytic hash counts match per update");
        }
        assert_eq!(eager.stats(), lazy.stats());
        let he = eager.sync_all();
        let hl = lazy.sync_all();
        assert_eq!(he, hl);
        assert!(!lazy.has_pending(), "sync folds all deferred work");
        assert_eq!(eager.upper_root(), lazy.upper_root());
    }
    #[test]
    fn lazy_eviction_materializes_victim_root() {
        let mut eager = forest();
        let mut lazy = forest();
        lazy.set_lazy(true);
        // Three subtrees with a 2-entry cache: subtree 0 is evicted while
        // it still has deferred updates; its root must fold first.
        for f in [&mut eager, &mut lazy] {
            f.update_leaf(0, Sha512::digest(b"a"));
            f.update_leaf(1, Sha512::digest(b"b"));
            f.update_leaf(16, Sha512::digest(b"c"));
            f.update_leaf(32, Sha512::digest(b"d"));
        }
        assert_eq!(eager.stats().evictions, 1);
        assert_eq!(eager.stats(), lazy.stats());
        eager.sync_all();
        lazy.sync_all();
        assert_eq!(eager.upper_root(), lazy.upper_root());
    }

    #[test]
    fn lazy_fold_hashes_below_analytic_on_coalescing_trace() {
        let mut lazy = forest();
        lazy.set_lazy(true);
        // Hammer one subtree: analytic charges 2 hashes per update, the
        // fold pays the walk once.
        for i in 0..32u64 {
            lazy.update_leaf(i % 4, Sha512::digest(&i.to_le_bytes()));
        }
        lazy.sync_all();
        assert!(
            lazy.fold_hashes() * 2 <= lazy.stats().node_hashes,
            "fold hashes {} should be at most half the analytic {}",
            lazy.fold_hashes(),
            lazy.stats().node_hashes
        );
    }

    #[test]
    fn lazy_forest_is_backend_invariant() {
        use crate::backend::CryptoBackend;

        let mut reference = forest();
        let pattern: &[u64] = &[0, 1, 16, 2, 32, 17, 0, 48, 33, 1];
        for (i, &leaf) in pattern.iter().enumerate() {
            reference.update_leaf(leaf, Sha512::digest(format!("v{i}").as_bytes()));
        }
        reference.sync_all();
        for backend in CryptoBackend::ALL {
            let mut f = forest();
            f.set_backend(backend);
            assert_eq!(f.backend(), backend);
            f.set_lazy(true);
            for (i, &leaf) in pattern.iter().enumerate() {
                f.update_leaf(leaf, Sha512::digest(format!("v{i}").as_bytes()));
            }
            f.sync_all();
            assert_eq!(f.upper_root(), reference.upper_root(), "{}", backend.name());
        }
    }

    #[test]
    fn wire_round_trip_reproduces_forest_and_lru() {
        use secpb_sim::wire::{WireReader, WireWriter};
        let mut f = forest();
        let pattern: &[u64] = &[0, 1, 16, 2, 32, 17, 0, 48];
        for (i, &leaf) in pattern.iter().enumerate() {
            f.update_leaf(leaf, Sha512::digest(format!("v{i}").as_bytes()));
        }
        let mut w = WireWriter::new();
        f.encode_into(&mut w);
        let bytes = w.into_bytes();

        let mut restored = forest();
        restored
            .restore_from(&mut WireReader::new(&bytes))
            .expect("restore");
        assert_eq!(restored.stats(), f.stats());
        // The LRU order must survive: the next updates evict the same
        // victims and land on identical roots.
        for (i, &leaf) in [33u64, 49, 2, 18].iter().enumerate() {
            let d = Sha512::digest(format!("w{i}").as_bytes());
            assert_eq!(f.update_leaf(leaf, d), restored.update_leaf(leaf, d));
        }
        f.sync_all();
        restored.sync_all();
        assert_eq!(f.upper_root(), restored.upper_root());
        assert_eq!(f.stats(), restored.stats());

        // Shape mismatch is rejected.
        let mut other = BonsaiMerkleForest::new(b"k", 4, 4, BmfMode::Dbmf, 4);
        let mut w2 = WireWriter::new();
        f.encode_into(&mut w2);
        assert!(other
            .restore_from(&mut WireReader::new(&w2.into_bytes()))
            .is_err());
    }

    #[test]
    fn sbmf_mode_works_with_8_levels() {
        let mut f = BonsaiMerkleForest::new(b"k", 2, 8, BmfMode::Sbmf, 4);
        let h = f.update_leaf(0, Sha512::digest(b"x"));
        assert_eq!(
            h, 5,
            "SBMF miss with empty cache hashes only subtree levels"
        );
        let h2 = f.update_leaf(1, Sha512::digest(b"y"));
        assert_eq!(h2, 5);
    }
}
