//! An SGX-MEE-style counter tree (Gueron / Costan-Devadas, cited as
//! \[5\], \[15\] in the paper's Section II-B) — the other major integrity-
//! tree family next to Bonsai Merkle Trees.
//!
//! Where a BMT hashes *digests* upward, a counter tree stores *version
//! counters*: each node holds one counter per child plus an embedded MAC
//! over its counters keyed by its own counter in the parent.  Updating a
//! leaf increments one counter per level and recomputes the MACs along
//! the path; replaying a stale node fails because its embedded MAC was
//! computed under an older parent counter.  The top-level counters live
//! on-chip and are trusted.
//!
//! Included as a substrate for comparison: update cost is the same
//! O(levels), but each level is a short MAC over 64 bytes of counters
//! rather than a hash over 64 bytes of digests, and the freshness
//! argument is counter-based rather than collision-resistance-based.

use secpb_sim::fxhash::FxHashMap;

use crate::backend::CryptoBackend;
use crate::hmac::HmacSha512;
use crate::sha512::Digest;

/// Children per node (matches the 8-ary BMT configuration).
pub const ARITY: usize = 8;

/// One interior node: per-child version counters plus an embedded MAC.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct Node {
    counters: [u64; ARITY],
    mac: u64,
}

/// Length of a node's MAC message: level, index, parent counter, and the
/// `ARITY` child counters, all little-endian u64s.
const NODE_MSG_LEN: usize = 8 * (ARITY + 3);

/// Appends the node-MAC message to `out` (shared between the per-node
/// and the batched fold paths so they stay bit-identical).
fn write_node_msg(
    out: &mut Vec<u8>,
    level: usize,
    index: u64,
    counters: &[u64; ARITY],
    parent_counter: u64,
) {
    out.extend_from_slice(&(level as u64).to_le_bytes());
    out.extend_from_slice(&index.to_le_bytes());
    out.extend_from_slice(&parent_counter.to_le_bytes());
    for c in counters {
        out.extend_from_slice(&c.to_le_bytes());
    }
}

/// An SGX-style counter tree over `ARITY.pow(levels)` leaves.
///
/// # Example
///
/// ```
/// use secpb_crypto::sgx_tree::SgxCounterTree;
///
/// let mut tree = SgxCounterTree::new(b"key", 3);
/// let version = tree.update_leaf(5);
/// assert_eq!(version, 1);
/// assert!(tree.verify_leaf(5, version));
/// assert!(!tree.verify_leaf(5, 2), "future version must not verify");
/// ```
#[derive(Debug, Clone)]
pub struct SgxCounterTree {
    hmac: HmacSha512,
    levels: u32,
    /// `nodes[l]` maps node index at level `l` (0 = leaf-parent level).
    nodes: Vec<FxHashMap<u64, Node>>,
    /// On-chip trusted top-level counters (the "root").
    root: [u64; ARITY],
    updates: u64,
    /// Lazy mode: counter increments stay eager (they are the semantic
    /// state), but embedded-MAC recomputation is deferred to
    /// [`fold`](Self::fold).  A node's MAC depends only on its final
    /// counters and the parent counter, so batching is order-independent.
    lazy: bool,
    /// `(level, node_index)` pairs whose MACs are stale.
    dirty: Vec<(usize, u64)>,
    fold_macs: u64,
    /// Multi-lane dispatch target for batched fold MACs.
    backend: CryptoBackend,
}

impl SgxCounterTree {
    /// Creates a tree with `levels` levels of nodes below the on-chip
    /// root counters, covering `ARITY^levels` leaves.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is zero.
    pub fn new(key: &[u8], levels: u32) -> Self {
        assert!(levels >= 1, "tree needs at least one level");
        SgxCounterTree {
            hmac: HmacSha512::new(key),
            levels,
            nodes: (0..levels).map(|_| FxHashMap::default()).collect(),
            root: [0; ARITY],
            updates: 0,
            lazy: false,
            dirty: Vec::new(),
            fold_macs: 0,
            backend: CryptoBackend::default(),
        }
    }

    /// Selects the crypto backend used by batched folds.
    pub fn set_backend(&mut self, backend: CryptoBackend) {
        self.backend = backend;
    }

    /// The crypto backend batched folds dispatch to.
    pub fn backend(&self) -> CryptoBackend {
        self.backend
    }

    /// Switches between eager per-update MAC recomputation and deferred
    /// batch recomputation.  Turning lazy off folds all pending work.
    pub fn set_lazy(&mut self, lazy: bool) {
        if !lazy {
            self.fold();
        }
        self.lazy = lazy;
    }

    /// Whether MAC recomputation is deferred to folds.
    pub fn is_lazy(&self) -> bool {
        self.lazy
    }

    /// Whether any node MACs are pending recomputation.
    pub fn has_pending(&self) -> bool {
        !self.dirty.is_empty()
    }

    /// MACs actually recomputed by folds (performance metric).
    pub fn fold_macs(&self) -> u64 {
        self.fold_macs
    }

    /// Recomputes every stale embedded MAC.  Repeated updates along a
    /// shared path coalesce: each distinct node is MACed once per fold.
    /// Counter increments are eager, so every dirty MAC depends only on
    /// already-final counters — the whole fold is a single multi-lane
    /// [`HmacSha512::compute_batch`] over equal-length node messages.
    /// Returns the number of MACs computed.
    pub fn fold(&mut self) -> u64 {
        if self.dirty.is_empty() {
            return 0;
        }
        self.dirty.sort_unstable();
        self.dirty.dedup();
        let pending = std::mem::take(&mut self.dirty);
        let mut flat = Vec::with_capacity(pending.len() * NODE_MSG_LEN);
        for &(level, idx) in &pending {
            let parent_counter = self.parent_counter(level, idx);
            let counters = self.nodes[level].get(&idx).expect("dirty node").counters;
            write_node_msg(&mut flat, level, idx, &counters, parent_counter);
        }
        let mut tags: Vec<Digest> = Vec::with_capacity(pending.len());
        self.hmac
            .compute_batch(&self.backend, &flat, NODE_MSG_LEN, &mut tags);
        for (&(level, idx), tag) in pending.iter().zip(&tags) {
            self.nodes[level].get_mut(&idx).expect("present").mac = tag.truncate_u64();
        }
        self.fold_macs += pending.len() as u64;
        pending.len() as u64
    }

    /// Leaves covered.
    pub fn capacity(&self) -> u64 {
        (ARITY as u64).pow(self.levels)
    }

    /// Leaf-to-root update walks performed.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// The trusted top-level counters.
    pub fn root(&self) -> [u64; ARITY] {
        self.root
    }

    fn node_mac(
        &self,
        level: usize,
        index: u64,
        counters: &[u64; ARITY],
        parent_counter: u64,
    ) -> u64 {
        let mut msg = Vec::with_capacity(NODE_MSG_LEN);
        write_node_msg(&mut msg, level, index, counters, parent_counter);
        self.hmac.compute(&msg).truncate_u64()
    }

    /// The counter of `node_index` at `level` as recorded in its parent
    /// (or in the on-chip root for the top level).
    fn parent_counter(&self, level: usize, node_index: u64) -> u64 {
        let slot = (node_index % ARITY as u64) as usize;
        if level + 1 == self.levels as usize {
            self.root[slot]
        } else {
            self.nodes[level + 1]
                .get(&(node_index / ARITY as u64))
                .map(|n| n.counters[slot])
                .unwrap_or(0)
        }
    }

    /// Increments a leaf's version, updating counters and MACs up to the
    /// root.  Returns the leaf's new version.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` exceeds the capacity.
    pub fn update_leaf(&mut self, leaf: u64) -> u64 {
        assert!(leaf < self.capacity(), "leaf {leaf} out of range");
        self.updates += 1;
        // Increment one counter per level, bottom-up.
        let mut child = leaf;
        let mut new_version = 0;
        for level in 0..self.levels as usize {
            let node_index = child / ARITY as u64;
            let slot = (child % ARITY as u64) as usize;
            let node = self.nodes[level].entry(node_index).or_default();
            node.counters[slot] += 1;
            if level == 0 {
                new_version = node.counters[slot];
            }
            child = node_index;
        }
        // Top-level counter (on-chip).
        self.root[(child % ARITY as u64) as usize] += 1;
        if self.lazy {
            // Defer MAC recomputation: record the path and let the next
            // fold MAC each distinct node once.
            let mut idx = leaf / ARITY as u64;
            for level in 0..self.levels as usize {
                self.dirty.push((level, idx));
                idx /= ARITY as u64;
            }
            return new_version;
        }
        // Recompute embedded MACs bottom-up now that every parent counter
        // has its final value.
        let mut idx = leaf / ARITY as u64;
        for level in 0..self.levels as usize {
            let parent_counter = self.parent_counter(level, idx);
            let counters = self.nodes[level].get(&idx).expect("just touched").counters;
            let mac = self.node_mac(level, idx, &counters, parent_counter);
            self.nodes[level].get_mut(&idx).expect("present").mac = mac;
            idx /= ARITY as u64;
        }
        new_version
    }

    /// The current version of a leaf (0 if never updated).
    pub fn leaf_version(&self, leaf: u64) -> u64 {
        let node_index = leaf / ARITY as u64;
        let slot = (leaf % ARITY as u64) as usize;
        self.nodes[0]
            .get(&node_index)
            .map(|n| n.counters[slot])
            .unwrap_or(0)
    }

    /// Verifies that `claimed_version` is the leaf's current version by
    /// walking the path and checking every embedded MAC against the
    /// parent counters, ending at the trusted root.
    pub fn verify_leaf(&self, leaf: u64, claimed_version: u64) -> bool {
        debug_assert!(
            self.dirty.is_empty(),
            "lazy counter tree observed with pending MACs: fold() first"
        );
        if leaf >= self.capacity() {
            return false;
        }
        if self.leaf_version(leaf) != claimed_version {
            return false;
        }
        let mut idx = leaf / ARITY as u64;
        for level in 0..self.levels as usize {
            match self.nodes[level].get(&idx) {
                None => {
                    // Absent node: only valid if nothing beneath was ever
                    // updated, i.e. its counter in the parent is zero.
                    if self.parent_counter(level, idx) != 0 || claimed_version != 0 {
                        return false;
                    }
                }
                Some(node) => {
                    let expected =
                        self.node_mac(level, idx, &node.counters, self.parent_counter(level, idx));
                    if node.mac != expected {
                        return false;
                    }
                }
            }
            idx /= ARITY as u64;
        }
        true
    }

    /// Attack-injection hook: overwrite a node with an older version of
    /// itself (counters + MAC captured earlier).  Used by tests to show
    /// the parent-counter keying defeats node replay.
    pub fn replay_node(&mut self, level: usize, index: u64, counters: [u64; ARITY], mac: u64) {
        self.nodes[level].insert(index, Node { counters, mac });
    }

    /// Snapshot of a node's (counters, mac) for later replay.
    pub fn snapshot_node(&self, level: usize, index: u64) -> Option<([u64; ARITY], u64)> {
        self.nodes[level].get(&index).map(|n| (n.counters, n.mac))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_increment_and_verify() {
        let mut t = SgxCounterTree::new(b"k", 3);
        assert_eq!(t.capacity(), 512);
        assert!(t.verify_leaf(3, 0), "fresh leaves are version 0");
        assert_eq!(t.update_leaf(3), 1);
        assert_eq!(t.update_leaf(3), 2);
        assert!(t.verify_leaf(3, 2));
        assert!(!t.verify_leaf(3, 1), "stale version rejected");
        assert_eq!(t.updates(), 2);
    }

    #[test]
    fn sibling_updates_do_not_disturb_leaf() {
        let mut t = SgxCounterTree::new(b"k", 3);
        t.update_leaf(8);
        t.update_leaf(9);
        t.update_leaf(64);
        assert!(t.verify_leaf(8, 1));
        assert!(t.verify_leaf(9, 1));
        assert!(t.verify_leaf(64, 1));
        assert!(t.verify_leaf(10, 0));
    }

    #[test]
    fn tampered_counter_fails_mac() {
        let mut t = SgxCounterTree::new(b"k", 2);
        t.update_leaf(0);
        let (mut counters, mac) = t.snapshot_node(0, 0).unwrap();
        counters[0] += 5; // forge version without recomputing MAC
        t.replay_node(0, 0, counters, mac);
        assert!(!t.verify_leaf(0, 6));
    }

    #[test]
    fn node_replay_is_defeated_by_parent_counters() {
        let mut t = SgxCounterTree::new(b"k", 2);
        t.update_leaf(0);
        let old = t.snapshot_node(0, 0).unwrap(); // valid at this moment
        t.update_leaf(0); // advances parent counter; old node is now stale
        t.replay_node(0, 0, old.0, old.1);
        assert!(
            !t.verify_leaf(0, 1),
            "old node's MAC was keyed by the old parent counter"
        );
    }

    #[test]
    fn root_counters_track_total_subtree_updates() {
        let mut t = SgxCounterTree::new(b"k", 2);
        for leaf in 0..10u64 {
            t.update_leaf(leaf);
        }
        // Leaves 0..10 sit under top-level subtrees 0 (leaves 0-63).
        assert_eq!(t.root()[0], 10);
    }

    #[test]
    fn out_of_range_leaf_rejected() {
        let t = SgxCounterTree::new(b"k", 1);
        assert!(!t.verify_leaf(t.capacity(), 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_update_panics() {
        SgxCounterTree::new(b"k", 1).update_leaf(8);
    }

    #[test]
    fn lazy_fold_matches_eager_macs() {
        let mut eager = SgxCounterTree::new(b"k", 3);
        let mut lazy = SgxCounterTree::new(b"k", 3);
        lazy.set_lazy(true);
        for leaf in [0u64, 1, 9, 0, 64, 0, 9] {
            assert_eq!(eager.update_leaf(leaf), lazy.update_leaf(leaf));
        }
        assert!(lazy.has_pending());
        lazy.fold();
        assert!(!lazy.has_pending());
        assert_eq!(eager.root(), lazy.root());
        for level in 0..3 {
            for idx in [0u64, 1, 8] {
                assert_eq!(
                    eager.snapshot_node(level, idx),
                    lazy.snapshot_node(level, idx),
                    "node ({level}, {idx})"
                );
            }
        }
        for leaf in [0u64, 1, 9, 64, 2] {
            let v = lazy.leaf_version(leaf);
            assert!(lazy.verify_leaf(leaf, v));
        }
    }

    #[test]
    fn lazy_fold_is_backend_invariant() {
        let mut eager = SgxCounterTree::new(b"k", 3);
        let trace = [0u64, 1, 9, 0, 64, 0, 9, 511, 8];
        for &leaf in &trace {
            eager.update_leaf(leaf);
        }
        for backend in CryptoBackend::ALL {
            let mut lazy = SgxCounterTree::new(b"k", 3);
            lazy.set_backend(backend);
            assert_eq!(lazy.backend(), backend);
            lazy.set_lazy(true);
            for &leaf in &trace {
                lazy.update_leaf(leaf);
            }
            lazy.fold();
            for level in 0..3 {
                for idx in [0u64, 1, 8, 63] {
                    assert_eq!(
                        eager.snapshot_node(level, idx),
                        lazy.snapshot_node(level, idx),
                        "node ({level}, {idx}) under {}",
                        backend.name()
                    );
                }
            }
        }
    }

    #[test]
    fn lazy_coalesces_repeated_path_macs() {
        let mut t = SgxCounterTree::new(b"k", 3);
        t.set_lazy(true);
        for _ in 0..16 {
            t.update_leaf(5);
        }
        let macs = t.fold();
        assert_eq!(macs, 3, "16 updates to one leaf MAC the 3-node path once");
        assert_eq!(t.fold_macs(), 3);
        assert_eq!(t.fold(), 0, "clean tree folds for free");
    }

    #[test]
    fn disabling_lazy_folds_pending_macs() {
        let mut t = SgxCounterTree::new(b"k", 2);
        t.set_lazy(true);
        t.update_leaf(0);
        assert!(t.has_pending());
        t.set_lazy(false);
        assert!(!t.has_pending());
        assert!(t.verify_leaf(0, 1));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "fold() first")]
    fn lazy_verify_without_fold_asserts() {
        let mut t = SgxCounterTree::new(b"k", 2);
        t.set_lazy(true);
        t.update_leaf(0);
        t.verify_leaf(0, 1);
    }

    #[test]
    fn different_keys_disagree_on_macs() {
        let mut a = SgxCounterTree::new(b"k1", 2);
        let mut b = SgxCounterTree::new(b"k2", 2);
        a.update_leaf(0);
        b.update_leaf(0);
        let na = a.snapshot_node(0, 0).unwrap();
        let nb = b.snapshot_node(0, 0).unwrap();
        assert_eq!(na.0, nb.0, "counters agree");
        assert_ne!(na.1, nb.1, "MACs are keyed");
    }
}
