//! Memoization caches for data-value-independent crypto.
//!
//! Two observations from the paper's Section IV-A drive this module: the
//! OTP pad is a pure function of (block address, split counter) and a
//! counter block's integrity digest is a pure function of its 64 bytes —
//! neither depends on the data being stored.  Re-stores to the same block
//! under the same counter, page re-encryption, and post-crash replay all
//! recompute identical values, so caching them cannot change any output.
//!
//! Both caches use interior mutability (`RefCell`/`Cell`): the hot callers
//! (`decrypt` during recovery, pad generation during drains) hold `&self`.
//! They are bounded by deterministic *second-chance (clock) eviction*: a
//! fixed ring of slots, one referenced bit per slot, and a cyclic hand
//! that sweeps past recently-touched entries and replaces the first
//! unreferenced one.  The hand position and referenced bits are a pure
//! function of the access trace, so hit/miss/eviction sequences stay
//! deterministic — a requirement of the engine's determinism contract —
//! while the working set survives capacity pressure that the previous
//! whole-cache epoch reset would have thrown away wholesale.

use std::cell::{Cell, RefCell};
use std::hash::Hash;

use secpb_sim::fxhash::FxHashMap;

use crate::backend::HashBackend;
use crate::counter::SplitCounter;
use crate::otp::Otp;
use crate::sha512::{digest64_batch, Digest, Sha512};

/// Default capacity for pad/digest caches (slots in the clock ring).
pub const DEFAULT_CAPACITY: usize = 4096;

/// Hit/miss/eviction counters shared by both cache types.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute (and then cached the result).
    pub misses: u64,
    /// Entries replaced by the clock hand once the ring was full.
    pub evictions: u64,
}

impl MemoStats {
    /// Field-wise sum, for reporting several caches as one gauge.
    #[must_use]
    pub fn merged(self, other: MemoStats) -> MemoStats {
        MemoStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
        }
    }
}

/// One slot of the clock ring.
#[derive(Debug, Clone)]
struct ClockSlot<K, V> {
    key: K,
    value: V,
    referenced: bool,
}

/// A bounded key→value map with second-chance (clock) replacement.
///
/// Lookups mark the slot referenced; inserts past capacity sweep the
/// cyclic hand, clearing referenced bits until an unreferenced victim is
/// found.  Entirely deterministic: state is a pure function of the
/// operation sequence.
#[derive(Debug, Clone)]
struct ClockCore<K, V> {
    /// Key → slot index.
    map: FxHashMap<K, usize>,
    slots: Vec<ClockSlot<K, V>>,
    hand: usize,
}

impl<K: Copy + Eq + Hash, V> ClockCore<K, V> {
    fn new() -> Self {
        ClockCore {
            map: FxHashMap::default(),
            slots: Vec::new(),
            hand: 0,
        }
    }

    /// Looks up `key`, marking its slot recently used on a hit.
    fn get(&mut self, key: &K) -> Option<&V> {
        let slot = *self.map.get(key)?;
        self.slots[slot].referenced = true;
        Some(&self.slots[slot].value)
    }

    /// Inserts or replaces `key`'s value.  Returns `true` when a
    /// *different* key was evicted to make room.
    fn insert(&mut self, key: K, value: V, capacity: usize) -> bool {
        if let Some(&slot) = self.map.get(&key) {
            // In-place refresh (e.g. a digest memo key re-seen with new
            // bytes): no eviction.
            self.slots[slot].value = value;
            self.slots[slot].referenced = true;
            return false;
        }
        if self.slots.len() < capacity {
            self.map.insert(key, self.slots.len());
            self.slots.push(ClockSlot {
                key,
                value,
                referenced: true,
            });
            return false;
        }
        // Second-chance sweep: clear referenced bits until an
        // unreferenced slot comes under the hand.  Terminates within two
        // revolutions because every cleared slot is unreferenced when the
        // hand returns.
        while self.slots[self.hand].referenced {
            self.slots[self.hand].referenced = false;
            self.hand = (self.hand + 1) % self.slots.len();
        }
        let victim = self.hand;
        self.hand = (victim + 1) % self.slots.len();
        let old = std::mem::replace(
            &mut self.slots[victim],
            ClockSlot {
                key,
                value,
                referenced: true,
            },
        );
        self.map.remove(&old.key);
        self.map.insert(key, victim);
        true
    }

    fn len(&self) -> usize {
        self.slots.len()
    }

    fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.hand = 0;
    }
}

/// A bounded memo of OTP pads keyed by (block address, split counter).
///
/// # Example
///
/// ```
/// use secpb_crypto::counter::SplitCounter;
/// use secpb_crypto::memo::PadCache;
///
/// let cache = PadCache::new(16);
/// let c = SplitCounter { major: 1, minor: 2 };
/// let pad = cache.get_or_insert_with(7, c, || [0xABu8; 64]);
/// let again = cache.get_or_insert_with(7, c, || unreachable!("cached"));
/// assert_eq!(pad, again);
/// assert_eq!(cache.stats().hits, 1);
/// ```
#[derive(Clone)]
pub struct PadCache {
    core: RefCell<ClockCore<(u64, SplitCounter), Otp>>,
    capacity: usize,
    hits: Cell<u64>,
    misses: Cell<u64>,
    evictions: Cell<u64>,
}

impl std::fmt::Debug for PadCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PadCache")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl PadCache {
    /// Creates a cache that clock-evicts once `capacity` slots are live.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "pad cache needs capacity");
        PadCache {
            core: RefCell::new(ClockCore::new()),
            capacity,
            hits: Cell::new(0),
            misses: Cell::new(0),
            evictions: Cell::new(0),
        }
    }

    /// Returns the cached pad for `(block_addr, counter)`, computing and
    /// caching it via `compute` on a miss.
    pub fn get_or_insert_with(
        &self,
        block_addr: u64,
        counter: SplitCounter,
        compute: impl FnOnce() -> Otp,
    ) -> Otp {
        let mut core = self.core.borrow_mut();
        if let Some(pad) = core.get(&(block_addr, counter)) {
            self.hits.set(self.hits.get() + 1);
            return *pad;
        }
        self.misses.set(self.misses.get() + 1);
        let pad = compute();
        if core.insert((block_addr, counter), pad, self.capacity) {
            self.evictions.set(self.evictions.get() + 1);
        }
        pad
    }

    /// Current number of cached pads.
    pub fn len(&self) -> usize {
        self.core.borrow().len()
    }

    /// Whether the cache holds no pads.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss/eviction counters.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
        }
    }

    /// Drops every cached pad (counters are preserved).
    pub fn clear(&self) {
        self.core.borrow_mut().clear();
    }
}

/// A bounded memo of SHA-512 digests of 64-byte counter blocks, keyed by
/// an identifier (e.g. the encryption-page number) and validated against
/// the block bytes so a changed counter block can never return a stale
/// digest.
///
/// # Example
///
/// ```
/// use secpb_crypto::memo::DigestMemo;
/// use secpb_crypto::sha512::Sha512;
///
/// let memo = DigestMemo::new(16);
/// let bytes = [3u8; 64];
/// assert_eq!(memo.digest(9, &bytes), Sha512::digest(&bytes));
/// assert_eq!(memo.digest(9, &bytes), Sha512::digest(&bytes));
/// assert_eq!(memo.stats().hits, 1);
/// ```
#[derive(Clone)]
pub struct DigestMemo {
    core: RefCell<ClockCore<u64, ([u8; 64], Digest)>>,
    capacity: usize,
    hits: Cell<u64>,
    misses: Cell<u64>,
    evictions: Cell<u64>,
}

impl std::fmt::Debug for DigestMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DigestMemo")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl DigestMemo {
    /// Creates a memo that clock-evicts once `capacity` slots are live.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "digest memo needs capacity");
        DigestMemo {
            core: RefCell::new(ClockCore::new()),
            capacity,
            hits: Cell::new(0),
            misses: Cell::new(0),
            evictions: Cell::new(0),
        }
    }

    /// The SHA-512 digest of `bytes`, served from the memo when `key` was
    /// last seen with identical bytes.
    pub fn digest(&self, key: u64, bytes: &[u8; 64]) -> Digest {
        let mut core = self.core.borrow_mut();
        if let Some((stored, digest)) = core.get(&key) {
            if stored == bytes {
                self.hits.set(self.hits.get() + 1);
                return *digest;
            }
        }
        self.misses.set(self.misses.get() + 1);
        let digest = Sha512::digest(bytes);
        if core.insert(key, (*bytes, digest), self.capacity) {
            self.evictions.set(self.evictions.get() + 1);
        }
        digest
    }

    /// Digests a whole batch of `(key, bytes)` items, dispatching every
    /// miss through `backend` in one multi-lane batch.
    ///
    /// Lookups happen in item order (marking hits recently used), then
    /// all missing digests are computed in a single
    /// [`digest64_batch`] dispatch, then inserted in item order.
    /// Per-item values are bit-identical to calling
    /// [`digest`](Self::digest) item by item; hit/miss accounting is too,
    /// unless the same key recurs within one batch (drain bursts never
    /// repeat a key with identical bytes — a re-drained page carries a
    /// changed counter block).
    pub fn digest_batch(
        &self,
        backend: &dyn HashBackend,
        items: &[(u64, [u8; 64])],
        out: &mut Vec<Digest>,
    ) {
        let mut core = self.core.borrow_mut();
        let mut miss_idx: Vec<usize> = Vec::new();
        let base = out.len();
        for (key, bytes) in items {
            if let Some((stored, digest)) = core.get(key) {
                if stored == bytes {
                    self.hits.set(self.hits.get() + 1);
                    out.push(*digest);
                    continue;
                }
            }
            self.misses.set(self.misses.get() + 1);
            miss_idx.push(out.len() - base);
            out.push(Digest([0u8; 64]));
        }
        if miss_idx.is_empty() {
            return;
        }
        let msgs: Vec<&[u8; 64]> = miss_idx.iter().map(|&i| &items[i].1).collect();
        let mut digests = Vec::with_capacity(msgs.len());
        digest64_batch(backend, &msgs, &mut digests);
        for (&i, digest) in miss_idx.iter().zip(&digests) {
            out[base + i] = *digest;
            if core.insert(items[i].0, (items[i].1, *digest), self.capacity) {
                self.evictions.set(self.evictions.get() + 1);
            }
        }
    }

    /// Current number of memoized digests.
    pub fn len(&self) -> usize {
        self.core.borrow().len()
    }

    /// Whether the memo holds no digests.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss/eviction counters.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
        }
    }

    /// Drops every memoized digest (counters are preserved).
    pub fn clear(&self) {
        self.core.borrow_mut().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::CryptoBackend;

    #[test]
    fn pad_cache_hits_after_first_compute() {
        let cache = PadCache::new(8);
        let c = SplitCounter { major: 2, minor: 5 };
        let mut computes = 0;
        for _ in 0..3 {
            cache.get_or_insert_with(42, c, || {
                computes += 1;
                [0x5Au8; 64]
            });
        }
        assert_eq!(computes, 1);
        assert_eq!(
            cache.stats(),
            MemoStats {
                hits: 2,
                misses: 1,
                evictions: 0
            }
        );
    }

    #[test]
    fn pad_cache_distinguishes_counters_and_addresses() {
        let cache = PadCache::new(8);
        let c1 = SplitCounter { major: 1, minor: 0 };
        let c2 = SplitCounter { major: 1, minor: 1 };
        cache.get_or_insert_with(1, c1, || [1u8; 64]);
        let p2 = cache.get_or_insert_with(1, c2, || [2u8; 64]);
        let p3 = cache.get_or_insert_with(2, c1, || [3u8; 64]);
        assert_eq!(p2, [2u8; 64]);
        assert_eq!(p3, [3u8; 64]);
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn pad_cache_clock_evicts_one_entry_at_capacity() {
        let cache = PadCache::new(2);
        let c = SplitCounter::default();
        cache.get_or_insert_with(0, c, || [0u8; 64]);
        cache.get_or_insert_with(1, c, || [1u8; 64]);
        assert_eq!(cache.len(), 2);
        // A third distinct key sweeps the hand (clearing both referenced
        // bits) and replaces exactly one victim — not the whole cache.
        cache.get_or_insert_with(2, c, || [2u8; 64]);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // The survivor and the newcomer still hit...
        cache.get_or_insert_with(1, c, || unreachable!("survivor cached"));
        cache.get_or_insert_with(2, c, || unreachable!("newcomer cached"));
        // ...while the victim recomputes (still correct, just slower).
        let p = cache.get_or_insert_with(0, c, || [0u8; 64]);
        assert_eq!(p, [0u8; 64]);
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn clock_eviction_is_deterministic() {
        // Two caches fed the same access sequence agree on every counter.
        let run = || {
            let cache = PadCache::new(4);
            for i in 0..64u64 {
                let key = (i * 7) % 11;
                let c = SplitCounter::default();
                cache.get_or_insert_with(key, c, || [key as u8; 64]);
            }
            cache.stats()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.evictions > 0, "the sequence must overflow the ring");
    }

    #[test]
    fn digest_memo_matches_sha512() {
        let memo = DigestMemo::new(4);
        let a = [7u8; 64];
        let b = [8u8; 64];
        assert_eq!(memo.digest(1, &a), Sha512::digest(&a));
        assert_eq!(memo.digest(1, &a), Sha512::digest(&a));
        assert_eq!(memo.digest(2, &b), Sha512::digest(&b));
        assert_eq!(memo.stats().hits, 1);
        assert_eq!(memo.stats().misses, 2);
    }

    #[test]
    fn digest_memo_detects_changed_bytes() {
        let memo = DigestMemo::new(4);
        let old = [1u8; 64];
        let mut new = old;
        new[63] = 2;
        memo.digest(5, &old);
        // Same key, different bytes: must recompute, never serve stale —
        // and the in-place refresh is not an eviction.
        assert_eq!(memo.digest(5, &new), Sha512::digest(&new));
        assert_eq!(memo.stats().hits, 0);
        assert_eq!(memo.stats().misses, 2);
        assert_eq!(memo.stats().evictions, 0);
        // And the entry now reflects the new bytes.
        assert_eq!(memo.digest(5, &new), Sha512::digest(&new));
        assert_eq!(memo.stats().hits, 1);
    }

    #[test]
    fn digest_memo_clock_evicts_at_capacity() {
        let memo = DigestMemo::new(2);
        memo.digest(0, &[0u8; 64]);
        memo.digest(1, &[1u8; 64]);
        memo.digest(2, &[2u8; 64]);
        assert_eq!(memo.len(), 2, "one victim replaced, not a full reset");
        assert_eq!(memo.stats().evictions, 1);
    }

    #[test]
    fn digest_batch_matches_item_by_item() {
        let batch = DigestMemo::new(8);
        let serial = DigestMemo::new(8);
        let items: Vec<(u64, [u8; 64])> = (0..6u64).map(|i| (i % 4, [i as u8; 64])).collect();
        // Pre-warm one key so the batch sees a mix of hits and misses.
        batch.digest(1, &[1u8; 64]);
        serial.digest(1, &[1u8; 64]);
        let mut out = Vec::new();
        batch.digest_batch(&CryptoBackend::MultiBlock, &items, &mut out);
        assert_eq!(out.len(), items.len());
        for ((key, bytes), digest) in items.iter().zip(&out) {
            assert_eq!(*digest, Sha512::digest(bytes), "key {key}");
            assert_eq!(serial.digest(*key, bytes), *digest);
        }
        assert_eq!(batch.stats(), serial.stats());
    }

    #[test]
    fn digest_batch_all_hits_dispatches_nothing() {
        let memo = DigestMemo::new(8);
        let items: Vec<(u64, [u8; 64])> = (0..4u64).map(|i| (i, [i as u8; 64])).collect();
        for (key, bytes) in &items {
            memo.digest(*key, bytes);
        }
        let misses_before = memo.stats().misses;
        let mut out = Vec::new();
        memo.digest_batch(&CryptoBackend::Scalar, &items, &mut out);
        assert_eq!(memo.stats().misses, misses_before);
        assert_eq!(memo.stats().hits, items.len() as u64);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_pad_cache_panics() {
        PadCache::new(0);
    }
}
