//! Memoization caches for data-value-independent crypto.
//!
//! Two observations from the paper's Section IV-A drive this module: the
//! OTP pad is a pure function of (block address, split counter) and a
//! counter block's integrity digest is a pure function of its 64 bytes —
//! neither depends on the data being stored.  Re-stores to the same block
//! under the same counter, page re-encryption, and post-crash replay all
//! recompute identical values, so caching them cannot change any output.
//!
//! Both caches use interior mutability (`RefCell`/`Cell`): the hot callers
//! (`decrypt` during recovery, pad generation during drains) hold `&self`.
//! They are bounded deterministically: when a cache reaches capacity it is
//! cleared in one step (an "epoch reset") rather than evicting by any
//! recency order, so hit/miss sequences are a pure function of the access
//! trace — a requirement of the engine's determinism contract.

use std::cell::{Cell, RefCell};

use secpb_sim::fxhash::FxHashMap;

use crate::counter::SplitCounter;
use crate::otp::Otp;
use crate::sha512::{Digest, Sha512};

/// Default capacity for pad/digest caches (entries before an epoch reset).
pub const DEFAULT_CAPACITY: usize = 4096;

/// Hit/miss/reset counters shared by both cache types.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute (and then cached the result).
    pub misses: u64,
    /// Whole-cache clears on reaching capacity.
    pub resets: u64,
}

/// A bounded memo of OTP pads keyed by (block address, split counter).
///
/// # Example
///
/// ```
/// use secpb_crypto::counter::SplitCounter;
/// use secpb_crypto::memo::PadCache;
///
/// let cache = PadCache::new(16);
/// let c = SplitCounter { major: 1, minor: 2 };
/// let pad = cache.get_or_insert_with(7, c, || [0xABu8; 64]);
/// let again = cache.get_or_insert_with(7, c, || unreachable!("cached"));
/// assert_eq!(pad, again);
/// assert_eq!(cache.stats().hits, 1);
/// ```
#[derive(Clone)]
pub struct PadCache {
    map: RefCell<FxHashMap<(u64, SplitCounter), Otp>>,
    capacity: usize,
    hits: Cell<u64>,
    misses: Cell<u64>,
    resets: Cell<u64>,
}

impl std::fmt::Debug for PadCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PadCache")
            .field("len", &self.map.borrow().len())
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl PadCache {
    /// Creates a cache that epoch-resets upon reaching `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "pad cache needs capacity");
        PadCache {
            map: RefCell::new(FxHashMap::default()),
            capacity,
            hits: Cell::new(0),
            misses: Cell::new(0),
            resets: Cell::new(0),
        }
    }

    /// Returns the cached pad for `(block_addr, counter)`, computing and
    /// caching it via `compute` on a miss.
    pub fn get_or_insert_with(
        &self,
        block_addr: u64,
        counter: SplitCounter,
        compute: impl FnOnce() -> Otp,
    ) -> Otp {
        let mut map = self.map.borrow_mut();
        if let Some(pad) = map.get(&(block_addr, counter)) {
            self.hits.set(self.hits.get() + 1);
            return *pad;
        }
        self.misses.set(self.misses.get() + 1);
        if map.len() >= self.capacity {
            map.clear();
            self.resets.set(self.resets.get() + 1);
        }
        let pad = compute();
        map.insert((block_addr, counter), pad);
        pad
    }

    /// Current number of cached pads.
    pub fn len(&self) -> usize {
        self.map.borrow().len()
    }

    /// Whether the cache holds no pads.
    pub fn is_empty(&self) -> bool {
        self.map.borrow().is_empty()
    }

    /// Hit/miss/reset counters.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            resets: self.resets.get(),
        }
    }

    /// Drops every cached pad (counters are preserved).
    pub fn clear(&self) {
        self.map.borrow_mut().clear();
    }
}

/// A bounded memo of SHA-512 digests of 64-byte counter blocks, keyed by
/// an identifier (e.g. the encryption-page number) and validated against
/// the block bytes so a changed counter block can never return a stale
/// digest.
///
/// # Example
///
/// ```
/// use secpb_crypto::memo::DigestMemo;
/// use secpb_crypto::sha512::Sha512;
///
/// let memo = DigestMemo::new(16);
/// let bytes = [3u8; 64];
/// assert_eq!(memo.digest(9, &bytes), Sha512::digest(&bytes));
/// assert_eq!(memo.digest(9, &bytes), Sha512::digest(&bytes));
/// assert_eq!(memo.stats().hits, 1);
/// ```
#[derive(Clone)]
pub struct DigestMemo {
    map: RefCell<FxHashMap<u64, ([u8; 64], Digest)>>,
    capacity: usize,
    hits: Cell<u64>,
    misses: Cell<u64>,
    resets: Cell<u64>,
}

impl std::fmt::Debug for DigestMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DigestMemo")
            .field("len", &self.map.borrow().len())
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl DigestMemo {
    /// Creates a memo that epoch-resets upon reaching `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "digest memo needs capacity");
        DigestMemo {
            map: RefCell::new(FxHashMap::default()),
            capacity,
            hits: Cell::new(0),
            misses: Cell::new(0),
            resets: Cell::new(0),
        }
    }

    /// The SHA-512 digest of `bytes`, served from the memo when `key` was
    /// last seen with identical bytes.
    pub fn digest(&self, key: u64, bytes: &[u8; 64]) -> Digest {
        let mut map = self.map.borrow_mut();
        if let Some((stored, digest)) = map.get(&key) {
            if stored == bytes {
                self.hits.set(self.hits.get() + 1);
                return *digest;
            }
        }
        self.misses.set(self.misses.get() + 1);
        if map.len() >= self.capacity {
            map.clear();
            self.resets.set(self.resets.get() + 1);
        }
        let digest = Sha512::digest(bytes);
        map.insert(key, (*bytes, digest));
        digest
    }

    /// Current number of memoized digests.
    pub fn len(&self) -> usize {
        self.map.borrow().len()
    }

    /// Whether the memo holds no digests.
    pub fn is_empty(&self) -> bool {
        self.map.borrow().is_empty()
    }

    /// Hit/miss/reset counters.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            resets: self.resets.get(),
        }
    }

    /// Drops every memoized digest (counters are preserved).
    pub fn clear(&self) {
        self.map.borrow_mut().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pad_cache_hits_after_first_compute() {
        let cache = PadCache::new(8);
        let c = SplitCounter { major: 2, minor: 5 };
        let mut computes = 0;
        for _ in 0..3 {
            cache.get_or_insert_with(42, c, || {
                computes += 1;
                [0x5Au8; 64]
            });
        }
        assert_eq!(computes, 1);
        assert_eq!(
            cache.stats(),
            MemoStats {
                hits: 2,
                misses: 1,
                resets: 0
            }
        );
    }

    #[test]
    fn pad_cache_distinguishes_counters_and_addresses() {
        let cache = PadCache::new(8);
        let c1 = SplitCounter { major: 1, minor: 0 };
        let c2 = SplitCounter { major: 1, minor: 1 };
        cache.get_or_insert_with(1, c1, || [1u8; 64]);
        let p2 = cache.get_or_insert_with(1, c2, || [2u8; 64]);
        let p3 = cache.get_or_insert_with(2, c1, || [3u8; 64]);
        assert_eq!(p2, [2u8; 64]);
        assert_eq!(p3, [3u8; 64]);
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn pad_cache_epoch_reset_at_capacity() {
        let cache = PadCache::new(2);
        let c = SplitCounter::default();
        cache.get_or_insert_with(0, c, || [0u8; 64]);
        cache.get_or_insert_with(1, c, || [1u8; 64]);
        assert_eq!(cache.len(), 2);
        // Third distinct key clears the map first, then inserts.
        cache.get_or_insert_with(2, c, || [2u8; 64]);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().resets, 1);
        // The evicted entry recomputes (still correct, just slower).
        let p = cache.get_or_insert_with(0, c, || [0u8; 64]);
        assert_eq!(p, [0u8; 64]);
    }

    #[test]
    fn digest_memo_matches_sha512() {
        let memo = DigestMemo::new(4);
        let a = [7u8; 64];
        let b = [8u8; 64];
        assert_eq!(memo.digest(1, &a), Sha512::digest(&a));
        assert_eq!(memo.digest(1, &a), Sha512::digest(&a));
        assert_eq!(memo.digest(2, &b), Sha512::digest(&b));
        assert_eq!(memo.stats().hits, 1);
        assert_eq!(memo.stats().misses, 2);
    }

    #[test]
    fn digest_memo_detects_changed_bytes() {
        let memo = DigestMemo::new(4);
        let old = [1u8; 64];
        let mut new = old;
        new[63] = 2;
        memo.digest(5, &old);
        // Same key, different bytes: must recompute, never serve stale.
        assert_eq!(memo.digest(5, &new), Sha512::digest(&new));
        assert_eq!(memo.stats().hits, 0);
        assert_eq!(memo.stats().misses, 2);
        // And the entry now reflects the new bytes.
        assert_eq!(memo.digest(5, &new), Sha512::digest(&new));
        assert_eq!(memo.stats().hits, 1);
    }

    #[test]
    fn digest_memo_epoch_reset_at_capacity() {
        let memo = DigestMemo::new(2);
        memo.digest(0, &[0u8; 64]);
        memo.digest(1, &[1u8; 64]);
        memo.digest(2, &[2u8; 64]);
        assert_eq!(memo.len(), 1);
        assert_eq!(memo.stats().resets, 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_pad_cache_panics() {
        PadCache::new(0);
    }
}
