//! HMAC-SHA-512 (RFC 2104 / FIPS 198-1).
//!
//! Used by [`crate::mac`] to bind a memory block's ciphertext, address, and
//! counter into a keyed authentication code, and by [`crate::bmt`] as the
//! keyed node hash of the integrity tree.

use crate::sha512::{Digest, Sha512};

const BLOCK_LEN: usize = 128;
const IPAD: u8 = 0x36;
const OPAD: u8 = 0x5c;

/// A keyed HMAC-SHA-512 instance.
///
/// The key schedule (padded inner/outer keys) is computed once at
/// construction so that per-message costs are two SHA-512 passes, mirroring
/// a hardware MAC unit that holds its key in a register.
///
/// # Example
///
/// ```
/// use secpb_crypto::hmac::HmacSha512;
///
/// let mac = HmacSha512::new(b"memory-integrity-key");
/// let tag = mac.compute(b"block contents");
/// assert!(mac.verify(b"block contents", &tag));
/// assert!(!mac.verify(b"tampered contents", &tag));
/// ```
#[derive(Clone)]
pub struct HmacSha512 {
    inner_pad: [u8; BLOCK_LEN],
    outer_pad: [u8; BLOCK_LEN],
}

impl std::fmt::Debug for HmacSha512 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("HmacSha512").finish_non_exhaustive()
    }
}

impl HmacSha512 {
    /// Creates an HMAC instance from an arbitrary-length key.
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = Sha512::digest(key);
            key_block[..64].copy_from_slice(&digest.0);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut inner_pad = [0u8; BLOCK_LEN];
        let mut outer_pad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            inner_pad[i] = key_block[i] ^ IPAD;
            outer_pad[i] = key_block[i] ^ OPAD;
        }
        HmacSha512 {
            inner_pad,
            outer_pad,
        }
    }

    /// Computes the HMAC tag of `message`.
    pub fn compute(&self, message: &[u8]) -> Digest {
        let mut inner = Sha512::new();
        inner.update(&self.inner_pad);
        inner.update(message);
        let inner_digest = inner.finalize();
        let mut outer = Sha512::new();
        outer.update(&self.outer_pad);
        outer.update(&inner_digest.0);
        outer.finalize()
    }

    /// Computes the HMAC over several message parts without concatenating
    /// them (tag equals `compute` of the concatenation).
    pub fn compute_parts(&self, parts: &[&[u8]]) -> Digest {
        let mut inner = Sha512::new();
        inner.update(&self.inner_pad);
        for p in parts {
            inner.update(p);
        }
        let inner_digest = inner.finalize();
        let mut outer = Sha512::new();
        outer.update(&self.outer_pad);
        outer.update(&inner_digest.0);
        outer.finalize()
    }

    /// Verifies `tag` against `message`.
    pub fn verify(&self, message: &[u8], tag: &Digest) -> bool {
        self.compute(message) == *tag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4231_test_case_1() {
        // Key = 0x0b repeated 20 times, data = "Hi There".
        let mac = HmacSha512::new(&[0x0b; 20]);
        let tag = mac.compute(b"Hi There");
        assert_eq!(
            tag.to_hex(),
            "87aa7cdea5ef619d4ff0b4241a1d6cb02379f4e2ce4ec2787ad0b30545e17cde\
             daa833b7d6b8a702038b274eaea3f4e4be9d914eeb61f1702e696c203a126854"
        );
    }

    #[test]
    fn rfc4231_test_case_2() {
        // Key = "Jefe", data = "what do ya want for nothing?".
        let mac = HmacSha512::new(b"Jefe");
        let tag = mac.compute(b"what do ya want for nothing?");
        assert_eq!(
            tag.to_hex(),
            "164b7a7bfcf819e2e395fbe73b56e0a387bd64222e831fd610270cd7ea250554\
             9758bf75c05a994a6d034f65f8f0e6fdcaeab1a34d4a6b4b636e070a38bce737"
        );
    }

    #[test]
    fn long_key_is_hashed_first() {
        let long_key = vec![0x5Au8; 200];
        let mac_long = HmacSha512::new(&long_key);
        let hashed = Sha512::digest(&long_key);
        let mac_hashed = HmacSha512::new(&hashed.0);
        assert_eq!(mac_long.compute(b"m"), mac_hashed.compute(b"m"));
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let mac = HmacSha512::new(b"k");
        let tag = mac.compute(b"hello");
        assert!(mac.verify(b"hello", &tag));
        assert!(!mac.verify(b"hellp", &tag));
        let other = HmacSha512::new(b"k2");
        assert!(!other.verify(b"hello", &tag));
    }

    #[test]
    fn compute_parts_matches_concatenation() {
        let mac = HmacSha512::new(b"key");
        let whole = mac.compute(b"abcdef");
        let parts = mac.compute_parts(&[b"ab", b"cd", b"ef"]);
        assert_eq!(whole, parts);
        let empty_parts = mac.compute_parts(&[]);
        assert_eq!(empty_parts, mac.compute(b""));
    }

    #[test]
    fn debug_hides_key() {
        let mac = HmacSha512::new(&[0x42; 16]);
        let dbg = format!("{mac:?}");
        assert!(!dbg.contains("42"), "pads must not leak: {dbg}");
    }
}
