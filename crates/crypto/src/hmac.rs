//! HMAC-SHA-512 (RFC 2104 / FIPS 198-1).
//!
//! Used by [`crate::mac`] to bind a memory block's ciphertext, address, and
//! counter into a keyed authentication code, and by [`crate::bmt`] as the
//! keyed node hash of the integrity tree.

use crate::backend::HashBackend;
use crate::sha512::{self, Digest, Sha512};

const BLOCK_LEN: usize = 128;
const IPAD: u8 = 0x36;
const OPAD: u8 = 0x5c;

/// A keyed HMAC-SHA-512 instance.
///
/// The key schedule is folded all the way into two SHA-512 *midstates* at
/// construction: the compression states after absorbing the inner
/// (`key ^ ipad`) and outer (`key ^ opad`) pad blocks.  A tag over a short
/// (≤ 111-byte) message then costs exactly two compressions instead of the
/// four a from-scratch HMAC pays — mirroring a hardware MAC unit that
/// holds its key schedule in registers.
///
/// # Example
///
/// ```
/// use secpb_crypto::hmac::HmacSha512;
///
/// let mac = HmacSha512::new(b"memory-integrity-key");
/// let tag = mac.compute(b"block contents");
/// assert!(mac.verify(b"block contents", &tag));
/// assert!(!mac.verify(b"tampered contents", &tag));
/// ```
#[derive(Clone)]
pub struct HmacSha512 {
    /// SHA-512 state after compressing `key ^ ipad`.
    inner_state: [u64; 8],
    /// SHA-512 state after compressing `key ^ opad`.
    outer_state: [u64; 8],
}

impl std::fmt::Debug for HmacSha512 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("HmacSha512").finish_non_exhaustive()
    }
}

impl HmacSha512 {
    /// Creates an HMAC instance from an arbitrary-length key.
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = Sha512::digest(key);
            key_block[..64].copy_from_slice(&digest.0);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut inner_pad = [0u8; BLOCK_LEN];
        let mut outer_pad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            inner_pad[i] = key_block[i] ^ IPAD;
            outer_pad[i] = key_block[i] ^ OPAD;
        }
        let mut inner_state = sha512::initial_state();
        sha512::compress_block(&mut inner_state, &inner_pad);
        let mut outer_state = sha512::initial_state();
        sha512::compress_block(&mut outer_state, &outer_pad);
        HmacSha512 {
            inner_state,
            outer_state,
        }
    }

    /// Computes the HMAC tag of `message`.
    pub fn compute(&self, message: &[u8]) -> Digest {
        let mut inner = Sha512::from_midstate(self.inner_state, 1);
        inner.update(message);
        self.finish_outer(&inner.finalize())
    }

    /// Computes the HMAC over several message parts without concatenating
    /// them (tag equals `compute` of the concatenation).
    pub fn compute_parts(&self, parts: &[&[u8]]) -> Digest {
        let mut inner = Sha512::from_midstate(self.inner_state, 1);
        for p in parts {
            inner.update(p);
        }
        self.finish_outer(&inner.finalize())
    }

    fn finish_outer(&self, inner_digest: &Digest) -> Digest {
        let mut outer = Sha512::from_midstate(self.outer_state, 1);
        outer.update(&inner_digest.0);
        outer.finalize()
    }

    /// Verifies `tag` against `message`.
    pub fn verify(&self, message: &[u8], tag: &Digest) -> bool {
        self.compute(message) == *tag
    }

    /// Computes the tags of `n` equal-length messages packed back-to-back
    /// in `messages` (`messages.len() == n * msg_len`), appending the tags
    /// to `out` in message order.
    ///
    /// Every message advances in lockstep, one padded 128-byte block per
    /// round, so each round is a single [`HashBackend::compress_batch`]
    /// dispatch over all `n` lanes — sibling BMT nodes, SGX-tree node
    /// MACs, and recovery-sweep block MACs all batch through here.
    /// Bit-identical to `n` [`compute`](Self::compute) calls.
    ///
    /// # Panics
    ///
    /// Panics if `msg_len` is zero or does not divide `messages.len()`.
    pub fn compute_batch(
        &self,
        backend: &dyn HashBackend,
        messages: &[u8],
        msg_len: usize,
        out: &mut Vec<Digest>,
    ) {
        assert!(msg_len > 0, "batched messages must be non-empty");
        assert_eq!(
            messages.len() % msg_len,
            0,
            "flat message buffer must be whole messages"
        );
        let n = messages.len() / msg_len;
        if n == 0 {
            return;
        }
        // Inner pass: every lane resumes from the cached post-ipad
        // midstate and absorbs its padded message tail in lockstep.
        let tail_len = sha512::padded_tail_len(msg_len);
        let mut tails = vec![0u8; n * tail_len];
        for (msg, tail) in messages
            .chunks_exact(msg_len)
            .zip(tails.chunks_exact_mut(tail_len))
        {
            sha512::write_padded_tail(msg, 1, tail);
        }
        let mut states = vec![self.inner_state; n];
        let mut round: Vec<&[u8; 128]> = Vec::with_capacity(n);
        for blk in 0..tail_len / 128 {
            round.clear();
            round.extend(tails.chunks_exact(tail_len).map(|tail| {
                let block: &[u8; 128] = tail[blk * 128..(blk + 1) * 128]
                    .try_into()
                    .expect("128 bytes");
                block
            }));
            backend.compress_batch(&mut states, &round);
        }
        // Outer pass: each inner digest is one padded block from the
        // post-opad midstate.
        let mut outer_tails = vec![0u8; n * 128];
        for (state, tail) in states.iter().zip(outer_tails.chunks_exact_mut(128)) {
            let mut inner_digest = [0u8; 64];
            for (i, word) in state.iter().enumerate() {
                inner_digest[8 * i..8 * i + 8].copy_from_slice(&word.to_be_bytes());
            }
            sha512::write_padded_tail(&inner_digest, 1, tail);
        }
        let mut outer_states = vec![self.outer_state; n];
        round.clear();
        let outer_round: Vec<&[u8; 128]> = outer_tails
            .chunks_exact(128)
            .map(|block| {
                let block: &[u8; 128] = block.try_into().expect("128 bytes");
                block
            })
            .collect();
        backend.compress_batch(&mut outer_states, &outer_round);
        out.reserve(n);
        for state in &outer_states {
            let mut tag = [0u8; 64];
            for (i, word) in state.iter().enumerate() {
                tag[8 * i..8 * i + 8].copy_from_slice(&word.to_be_bytes());
            }
            out.push(Digest(tag));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4231_test_case_1() {
        // Key = 0x0b repeated 20 times, data = "Hi There".
        let mac = HmacSha512::new(&[0x0b; 20]);
        let tag = mac.compute(b"Hi There");
        assert_eq!(
            tag.to_hex(),
            "87aa7cdea5ef619d4ff0b4241a1d6cb02379f4e2ce4ec2787ad0b30545e17cde\
             daa833b7d6b8a702038b274eaea3f4e4be9d914eeb61f1702e696c203a126854"
        );
    }

    #[test]
    fn rfc4231_test_case_2() {
        // Key = "Jefe", data = "what do ya want for nothing?".
        let mac = HmacSha512::new(b"Jefe");
        let tag = mac.compute(b"what do ya want for nothing?");
        assert_eq!(
            tag.to_hex(),
            "164b7a7bfcf819e2e395fbe73b56e0a387bd64222e831fd610270cd7ea250554\
             9758bf75c05a994a6d034f65f8f0e6fdcaeab1a34d4a6b4b636e070a38bce737"
        );
    }

    #[test]
    fn long_key_is_hashed_first() {
        let long_key = vec![0x5Au8; 200];
        let mac_long = HmacSha512::new(&long_key);
        let hashed = Sha512::digest(&long_key);
        let mac_hashed = HmacSha512::new(&hashed.0);
        assert_eq!(mac_long.compute(b"m"), mac_hashed.compute(b"m"));
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let mac = HmacSha512::new(b"k");
        let tag = mac.compute(b"hello");
        assert!(mac.verify(b"hello", &tag));
        assert!(!mac.verify(b"hellp", &tag));
        let other = HmacSha512::new(b"k2");
        assert!(!other.verify(b"hello", &tag));
    }

    #[test]
    fn compute_parts_matches_concatenation() {
        let mac = HmacSha512::new(b"key");
        let whole = mac.compute(b"abcdef");
        let parts = mac.compute_parts(&[b"ab", b"cd", b"ef"]);
        assert_eq!(whole, parts);
        let empty_parts = mac.compute_parts(&[]);
        assert_eq!(empty_parts, mac.compute(b""));
    }

    #[test]
    fn compute_batch_matches_singles_across_backends() {
        use crate::backend::CryptoBackend;

        let mac = HmacSha512::new(b"batch-key");
        // Message lengths spanning one and several padded blocks,
        // including the 81-byte block-MAC and 512-byte BMT-node shapes.
        for msg_len in [1usize, 64, 81, 88, 111, 112, 512] {
            for n in [1usize, 3, 4, 5, 9] {
                let flat: Vec<u8> = (0..n * msg_len).map(|i| (i * 17 % 251) as u8).collect();
                let singles: Vec<Digest> =
                    flat.chunks_exact(msg_len).map(|m| mac.compute(m)).collect();
                for backend in CryptoBackend::ALL {
                    let mut batch = Vec::new();
                    mac.compute_batch(&backend, &flat, msg_len, &mut batch);
                    assert_eq!(batch, singles, "len {msg_len} n {n} {}", backend.name());
                }
            }
        }
    }

    #[test]
    fn compute_batch_empty_is_empty() {
        let mac = HmacSha512::new(b"k");
        let mut out = Vec::new();
        mac.compute_batch(&crate::backend::CryptoBackend::MultiBlock, &[], 8, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "whole messages")]
    fn ragged_batch_panics() {
        let mac = HmacSha512::new(b"k");
        let mut out = Vec::new();
        mac.compute_batch(
            &crate::backend::CryptoBackend::Scalar,
            &[0u8; 10],
            4,
            &mut out,
        );
    }

    #[test]
    fn debug_hides_key() {
        let mac = HmacSha512::new(&[0x42; 16]);
        let dbg = format!("{mac:?}");
        assert!(!dbg.contains("42"), "pads must not leak: {dbg}");
    }
}
