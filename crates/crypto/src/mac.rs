//! Per-block memory authentication codes.
//!
//! Each 64-byte memory block carries a MAC binding its *ciphertext*, its
//! *address* (anti-splicing: a block cannot be relocated), and its
//! *encryption counter* (anti-replay in combination with the BMT, which
//! guarantees counter freshness).  This mirrors the memory tuple
//! `(C, γ, M, R)` of the paper's Section III-A.
//!
//! The SecPB entry stores the full 512-bit MAC (`M` field, Table in Fig. 5);
//! the MAC metadata space in PM stores the 64-bit truncation, as is usual
//! for 8-bytes-per-block MAC layouts.

use crate::backend::CryptoBackend;
use crate::counter::SplitCounter;
use crate::hmac::HmacSha512;
use crate::otp::Block;
use crate::sha512::Digest;

/// Length of a block-MAC message: 64 ciphertext bytes, the 8-byte
/// little-endian address, the 8-byte major counter, and the minor byte.
const MAC_MSG_LEN: usize = 64 + 8 + 8 + 1;

/// The keyed per-block MAC engine.
///
/// # Example
///
/// ```
/// use secpb_crypto::mac::BlockMac;
/// use secpb_crypto::counter::SplitCounter;
///
/// let mac = BlockMac::new(b"mac-key");
/// let ct = [0xAAu8; 64];
/// let ctr = SplitCounter { major: 1, minor: 5 };
/// let tag = mac.compute(&ct, 0x40, ctr);
/// assert!(mac.verify(&ct, 0x40, ctr, &tag));
/// ```
#[derive(Debug, Clone)]
pub struct BlockMac {
    hmac: HmacSha512,
    /// Multi-lane dispatch target for batched tag computation.
    backend: CryptoBackend,
}

impl BlockMac {
    /// Creates a MAC engine from a key.
    pub fn new(key: &[u8]) -> Self {
        BlockMac {
            hmac: HmacSha512::new(key),
            backend: CryptoBackend::default(),
        }
    }

    /// Selects the crypto backend used by batched tag computation.
    pub fn set_backend(&mut self, backend: CryptoBackend) {
        self.backend = backend;
    }

    /// The crypto backend batched tag computation dispatches to.
    pub fn backend(&self) -> CryptoBackend {
        self.backend
    }

    /// Computes the MAC of a ciphertext block at `block_addr` with counter
    /// `counter`.
    pub fn compute(&self, ciphertext: &Block, block_addr: u64, counter: SplitCounter) -> Digest {
        self.hmac.compute_parts(&[
            ciphertext,
            &block_addr.to_le_bytes(),
            &counter.major.to_le_bytes(),
            &[counter.minor],
        ])
    }

    /// Verifies a full 512-bit tag.
    pub fn verify(
        &self,
        ciphertext: &Block,
        block_addr: u64,
        counter: SplitCounter,
        tag: &Digest,
    ) -> bool {
        self.compute(ciphertext, block_addr, counter) == *tag
    }

    /// Computes the truncated 64-bit tags of many blocks in one batched,
    /// multi-lane dispatch (the recovery sweep's hot loop), appending
    /// them to `out` in input order.  Bit-identical to per-block
    /// [`compute`](Self::compute) + truncation.
    pub fn compute_truncated_batch(
        &self,
        blocks: &[(&Block, u64, SplitCounter)],
        out: &mut Vec<u64>,
    ) {
        let mut flat = Vec::with_capacity(blocks.len() * MAC_MSG_LEN);
        for (ciphertext, block_addr, counter) in blocks {
            flat.extend_from_slice(&ciphertext[..]);
            flat.extend_from_slice(&block_addr.to_le_bytes());
            flat.extend_from_slice(&counter.major.to_le_bytes());
            flat.push(counter.minor);
        }
        let mut tags: Vec<Digest> = Vec::with_capacity(blocks.len());
        self.hmac
            .compute_batch(&self.backend, &flat, MAC_MSG_LEN, &mut tags);
        out.reserve(tags.len());
        out.extend(tags.iter().map(Digest::truncate_u64));
    }

    /// Verifies against the truncated 64-bit stored form.
    pub fn verify_truncated(
        &self,
        ciphertext: &Block,
        block_addr: u64,
        counter: SplitCounter,
        tag64: u64,
    ) -> bool {
        self.compute(ciphertext, block_addr, counter).truncate_u64() == tag64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac() -> BlockMac {
        BlockMac::new(b"test-mac-key")
    }

    fn ctr(major: u64, minor: u8) -> SplitCounter {
        SplitCounter { major, minor }
    }

    #[test]
    fn accepts_untampered_block() {
        let m = mac();
        let ct = [7u8; 64];
        let tag = m.compute(&ct, 10, ctr(0, 1));
        assert!(m.verify(&ct, 10, ctr(0, 1), &tag));
        assert!(m.verify_truncated(&ct, 10, ctr(0, 1), tag.truncate_u64()));
    }

    #[test]
    fn detects_data_tampering() {
        let m = mac();
        let ct = [7u8; 64];
        let tag = m.compute(&ct, 10, ctr(0, 1));
        let mut tampered = ct;
        tampered[63] ^= 1;
        assert!(!m.verify(&tampered, 10, ctr(0, 1), &tag));
    }

    #[test]
    fn detects_splicing_to_other_address() {
        let m = mac();
        let ct = [7u8; 64];
        let tag = m.compute(&ct, 10, ctr(0, 1));
        assert!(
            !m.verify(&ct, 11, ctr(0, 1), &tag),
            "same data at wrong address must fail"
        );
    }

    #[test]
    fn detects_counter_replay() {
        let m = mac();
        let ct = [7u8; 64];
        let tag_old = m.compute(&ct, 10, ctr(0, 1));
        // After the counter advances, the old tag no longer verifies.
        assert!(!m.verify(&ct, 10, ctr(0, 2), &tag_old));
        assert!(!m.verify(&ct, 10, ctr(1, 1), &tag_old));
    }

    #[test]
    fn address_and_major_do_not_alias() {
        // (addr=1, major=0) and (addr=0, major=1) must produce different
        // tags — a length-prefix-free encoding bug would alias them.
        let m = mac();
        let ct = [0u8; 64];
        let a = m.compute(&ct, 1, ctr(0, 0));
        let b = m.compute(&ct, 0, ctr(1, 0));
        assert_ne!(a, b);
    }

    #[test]
    fn truncated_batch_matches_singles_across_backends() {
        let mut m = mac();
        let blocks: Vec<(Block, u64, SplitCounter)> = (0..9u8)
            .map(|i| ([i; 64], u64::from(i) * 321, ctr(u64::from(i), i)))
            .collect();
        let refs: Vec<(&Block, u64, SplitCounter)> =
            blocks.iter().map(|(b, a, c)| (b, *a, *c)).collect();
        let singles: Vec<u64> = refs
            .iter()
            .map(|(b, a, c)| m.compute(b, *a, *c).truncate_u64())
            .collect();
        for backend in CryptoBackend::ALL {
            m.set_backend(backend);
            assert_eq!(m.backend(), backend);
            let mut batch = Vec::new();
            m.compute_truncated_batch(&refs, &mut batch);
            assert_eq!(batch, singles, "{}", backend.name());
        }
    }

    #[test]
    fn different_keys_disagree() {
        let a = BlockMac::new(b"k1");
        let b = BlockMac::new(b"k2");
        let ct = [1u8; 64];
        assert_ne!(a.compute(&ct, 0, ctr(0, 0)), b.compute(&ct, 0, ctr(0, 0)));
    }
}
