//! One-time-pad generation and counter-mode block encryption.
//!
//! Counter-mode memory encryption (Section II-B of the paper) encrypts a
//! 64-byte block by XOR-ing it with a one-time pad: the AES encryption of a
//! nonce built from the block's *address* (spatial uniqueness) and its
//! *split counter* (temporal uniqueness).  Because the pad depends only on
//! address and counter — not data — it can be precomputed while the data is
//! still being written, which is exactly the property the SecPB schemes
//! exploit (the OTP field `O` in the SecPB entry).

use crate::aes::Aes;
use crate::backend::{CipherBackend, CryptoBackend};
use crate::counter::SplitCounter;
use crate::memo::PadCache;

/// A 64-byte one-time pad.
pub type Otp = [u8; 64];

/// A 64-byte data block (plaintext or ciphertext).
pub type Block = [u8; 64];

/// The counter-mode encryption engine: AES keyed once, generating pads for
/// (address, counter) pairs.
///
/// # Example
///
/// ```
/// use secpb_crypto::otp::OtpEngine;
/// use secpb_crypto::counter::SplitCounter;
///
/// let engine = OtpEngine::new(&[7u8; 24]);
/// let counter = SplitCounter { major: 1, minor: 3 };
/// let plaintext = [0x11u8; 64];
/// let ct = engine.encrypt(&plaintext, 0x1000, counter);
/// assert_ne!(ct, plaintext);
/// assert_eq!(engine.decrypt(&ct, 0x1000, counter), plaintext);
/// ```
#[derive(Debug, Clone)]
pub struct OtpEngine {
    aes: Aes,
    /// Cipher backend: a pad's four AES blocks go out as one batched
    /// dispatch (AES-NI when available, scalar otherwise).
    backend: CryptoBackend,
    /// Optional pad memo: pads are pure functions of (address, counter),
    /// so caching them is output-invariant (see [`crate::memo`]).
    cache: Option<PadCache>,
}

impl OtpEngine {
    /// Creates an engine with an AES-192 key, matching the paper's
    /// Table III energy model (AES-192 for data encryption).  Pads are
    /// recomputed on every call; see
    /// [`with_pad_cache`](Self::with_pad_cache) for the memoized variant.
    pub fn new(key: &[u8; 24]) -> Self {
        OtpEngine {
            aes: Aes::new_192(key),
            backend: CryptoBackend::default(),
            cache: None,
        }
    }

    /// Selects the cipher backend for pad generation.  Byte-identical
    /// across backends; only the dispatch differs.
    pub fn set_backend(&mut self, backend: CryptoBackend) {
        self.backend = backend;
    }

    /// The cipher backend pad generation dispatches to.
    pub fn backend(&self) -> CryptoBackend {
        self.backend
    }

    /// Creates an engine whose pads are memoized in a [`PadCache`] of the
    /// given capacity.
    pub fn with_pad_cache(key: &[u8; 24], capacity: usize) -> Self {
        let mut engine = Self::new(key);
        engine.enable_pad_cache(capacity);
        engine
    }

    /// Attaches (or replaces) a pad cache of the given capacity.
    pub fn enable_pad_cache(&mut self, capacity: usize) {
        self.cache = Some(PadCache::new(capacity));
    }

    /// The attached pad cache, if memoization is enabled.
    pub fn pad_cache(&self) -> Option<&PadCache> {
        self.cache.as_ref()
    }

    /// Generates the 64-byte pad for a block at `block_addr` (a 64-byte
    /// block number) with encryption counter `counter`, consulting the pad
    /// cache when one is attached.
    pub fn generate(&self, block_addr: u64, counter: SplitCounter) -> Otp {
        match &self.cache {
            Some(cache) => cache.get_or_insert_with(block_addr, counter, || {
                self.generate_uncached(block_addr, counter)
            }),
            None => self.generate_uncached(block_addr, counter),
        }
    }

    /// Computes the pad without touching the cache.
    ///
    /// The pad is four AES blocks of `E_k(addr ‖ counter ‖ chunk)`; the
    /// chunk index keeps the four 16-byte pads distinct.
    pub fn generate_uncached(&self, block_addr: u64, counter: SplitCounter) -> Otp {
        let base = counter.nonce_bytes();
        let addr_bytes = block_addr.to_le_bytes();
        let mut blocks = [base; 4];
        for (chunk, nonce) in blocks.iter_mut().enumerate() {
            // Fold the block address into bytes 9..=15 (the counter uses
            // 0..=8) and the chunk index into byte 15's high bits.
            for i in 0..6 {
                nonce[9 + i] ^= addr_bytes[i];
            }
            nonce[15] ^= addr_bytes[6] ^ addr_bytes[7].rotate_left(4) ^ ((chunk as u8) << 1) ^ 1;
        }
        // All four pad blocks go out as one cipher-backend dispatch.
        self.backend.encrypt_batch(&self.aes, &mut blocks);
        let mut pad = [0u8; 64];
        for (chunk, enc) in blocks.iter().enumerate() {
            pad[16 * chunk..16 * (chunk + 1)].copy_from_slice(enc);
        }
        pad
    }

    /// Encrypts a block: `ciphertext = plaintext XOR pad(addr, counter)`.
    pub fn encrypt(&self, plaintext: &Block, block_addr: u64, counter: SplitCounter) -> Block {
        xor(plaintext, &self.generate(block_addr, counter))
    }

    /// Decrypts a block (identical operation to [`encrypt`](Self::encrypt)
    /// — counter mode is an involution given the same pad).
    pub fn decrypt(&self, ciphertext: &Block, block_addr: u64, counter: SplitCounter) -> Block {
        xor(ciphertext, &self.generate(block_addr, counter))
    }

    /// Applies a precomputed pad (the SecPB `Dc = Dp XOR O` step, a
    /// single-cycle operation in hardware per Section IV).
    pub fn apply_pad(data: &Block, pad: &Otp) -> Block {
        xor(data, pad)
    }
}

fn xor(a: &Block, b: &Block) -> Block {
    let mut out = [0u8; 64];
    for i in 0..64 {
        out[i] = a[i] ^ b[i];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> OtpEngine {
        OtpEngine::new(&[0x11; 24])
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let e = engine();
        let mut pt = [0u8; 64];
        for (i, b) in pt.iter_mut().enumerate() {
            *b = (i * 7 % 256) as u8;
        }
        let c = SplitCounter { major: 9, minor: 2 };
        let ct = e.encrypt(&pt, 0xABCD, c);
        assert_eq!(e.decrypt(&ct, 0xABCD, c), pt);
    }

    #[test]
    fn pad_depends_on_address() {
        let e = engine();
        let c = SplitCounter { major: 1, minor: 1 };
        assert_ne!(e.generate(1, c), e.generate(2, c));
    }

    #[test]
    fn pad_depends_on_counter() {
        let e = engine();
        let a = e.generate(5, SplitCounter { major: 1, minor: 1 });
        let b = e.generate(5, SplitCounter { major: 1, minor: 2 });
        let c = e.generate(5, SplitCounter { major: 2, minor: 1 });
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn pad_chunks_are_distinct() {
        let e = engine();
        let pad = e.generate(3, SplitCounter::default());
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(pad[16 * i..16 * i + 16], pad[16 * j..16 * j + 16]);
            }
        }
    }

    #[test]
    fn wrong_counter_garbles_decryption() {
        let e = engine();
        let pt = [0x42u8; 64];
        let good = SplitCounter { major: 4, minor: 4 };
        let stale = SplitCounter { major: 4, minor: 3 };
        let ct = e.encrypt(&pt, 100, good);
        assert_ne!(
            e.decrypt(&ct, 100, stale),
            pt,
            "stale counter must not decrypt"
        );
    }

    #[test]
    fn apply_pad_equals_encrypt() {
        let e = engine();
        let pt = [0x33u8; 64];
        let c = SplitCounter { major: 2, minor: 7 };
        let pad = e.generate(77, c);
        assert_eq!(OtpEngine::apply_pad(&pt, &pad), e.encrypt(&pt, 77, c));
    }

    #[test]
    fn distinct_keys_distinct_pads() {
        let a = OtpEngine::new(&[1; 24]);
        let b = OtpEngine::new(&[2; 24]);
        let c = SplitCounter::default();
        assert_ne!(a.generate(0, c), b.generate(0, c));
    }

    #[test]
    fn cached_pads_equal_uncached_pads() {
        let plain = engine();
        let cached = OtpEngine::with_pad_cache(&[0x11; 24], 8);
        for addr in [0u64, 7, 0x1000] {
            for minor in [0u8, 1, 0x7F] {
                let c = SplitCounter { major: 3, minor };
                assert_eq!(plain.generate(addr, c), cached.generate(addr, c));
                // Second call is a hit and must return the same pad.
                assert_eq!(plain.generate(addr, c), cached.generate(addr, c));
            }
        }
        let stats = cached.pad_cache().expect("cache attached").stats();
        assert_eq!(stats.hits, 9);
        assert_eq!(stats.misses + stats.hits, 18);
    }

    #[test]
    fn pads_are_backend_invariant() {
        let reference = engine();
        for backend in CryptoBackend::ALL {
            let mut e = engine();
            e.set_backend(backend);
            assert_eq!(e.backend(), backend);
            for addr in [0u64, 7, 0x1000, u64::MAX] {
                let c = SplitCounter { major: 5, minor: 9 };
                assert_eq!(
                    e.generate(addr, c),
                    reference.generate(addr, c),
                    "{}",
                    backend.name()
                );
            }
        }
    }

    #[test]
    fn addresses_beyond_48_bits_still_distinguished() {
        let e = engine();
        let c = SplitCounter::default();
        let lo = e.generate(0x0000_0000_0001, c);
        let hi = e.generate(0x1_0000_0000_0001, c);
        assert_ne!(lo, hi);
    }
}
