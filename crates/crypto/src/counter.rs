//! Split counters for counter-mode memory encryption (Yan et al.,
//! ISCA'06), the scheme the paper assumes (Section II-B).
//!
//! One 64-byte *counter block* covers one 4 KB *encryption page*: a shared
//! 64-bit major counter plus sixty-four 7-bit minor counters, one per
//! 64-byte data block.  A block's encryption counter is the (major, minor)
//! pair.  When a minor counter overflows, the major counter is incremented,
//! all minors reset, and the whole page must be re-encrypted — the paper's
//! Section IV-A notes that SecPB's once-per-dirty-block increments delay
//! this overflow.

/// Number of 64-byte data blocks covered by one counter block (one 4 KB
/// encryption page).
pub const BLOCKS_PER_PAGE: usize = 64;

/// Maximum value of a 7-bit minor counter.
pub const MINOR_MAX: u8 = 0x7F;

/// The logical encryption counter of one data block: the page's major
/// counter paired with the block's minor counter.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SplitCounter {
    /// Page-shared major counter.
    pub major: u64,
    /// Per-block 7-bit minor counter.
    pub minor: u8,
}

impl SplitCounter {
    /// Packs the counter into the 16-byte nonce block fed to AES when
    /// generating an OTP (combined with the block address by the caller).
    pub fn nonce_bytes(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.major.to_le_bytes());
        out[8] = self.minor;
        out
    }
}

/// Outcome of incrementing a minor counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IncrementOutcome {
    /// The minor counter advanced normally.
    Advanced,
    /// The minor counter wrapped: the major counter was incremented, all
    /// minors reset, and the caller must re-encrypt the entire page
    /// (every block's effective counter changed).
    PageOverflow,
}

/// A 64-byte counter block covering one encryption page.
///
/// # Example
///
/// ```
/// use secpb_crypto::counter::{CounterBlock, IncrementOutcome};
///
/// let mut cb = CounterBlock::default();
/// assert_eq!(cb.increment(3), IncrementOutcome::Advanced);
/// assert_eq!(cb.counter_of(3).minor, 1);
/// assert_eq!(cb.counter_of(4).minor, 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CounterBlock {
    major: u64,
    minors: [u8; BLOCKS_PER_PAGE],
}

impl Default for CounterBlock {
    fn default() -> Self {
        CounterBlock {
            major: 0,
            minors: [0; BLOCKS_PER_PAGE],
        }
    }
}

impl CounterBlock {
    /// Creates a zeroed counter block.
    pub fn new() -> Self {
        Self::default()
    }

    /// The page-shared major counter.
    pub fn major(&self) -> u64 {
        self.major
    }

    /// The logical counter of block `idx` within the page.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= BLOCKS_PER_PAGE`.
    pub fn counter_of(&self, idx: usize) -> SplitCounter {
        SplitCounter {
            major: self.major,
            minor: self.minors[idx],
        }
    }

    /// Increments block `idx`'s minor counter, handling overflow.
    ///
    /// On overflow, the major counter is incremented and every minor is
    /// reset to zero; the caller must re-encrypt the page.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= BLOCKS_PER_PAGE`.
    pub fn increment(&mut self, idx: usize) -> IncrementOutcome {
        if self.minors[idx] == MINOR_MAX {
            self.major += 1;
            self.minors = [0; BLOCKS_PER_PAGE];
            IncrementOutcome::PageOverflow
        } else {
            self.minors[idx] += 1;
            IncrementOutcome::Advanced
        }
    }

    /// Writes a block's counter into this (persisted-view) counter block.
    ///
    /// Used by the drain path: the persisted counter block is updated with
    /// exactly the counter value the drained entry was encrypted under.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or if the majors disagree — a
    /// major mismatch means a page overflow was not propagated through the
    /// re-encryption path first.
    pub fn set_counter(&mut self, idx: usize, counter: SplitCounter) {
        assert_eq!(
            counter.major, self.major,
            "major counter mismatch: page re-encryption must run before persisting"
        );
        self.minors[idx] = counter.minor;
    }

    /// Serializes to the 64-byte storage format: 8-byte little-endian
    /// major followed by sixty-four 7-bit minors packed into 56 bytes.
    pub fn to_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[..8].copy_from_slice(&self.major.to_le_bytes());
        // Pack 64 x 7 bits = 448 bits into out[8..64].
        let mut bit_pos = 0usize;
        for &m in &self.minors {
            let byte = bit_pos / 8;
            let off = bit_pos % 8;
            let v = u16::from(m & MINOR_MAX) << off;
            out[8 + byte] |= (v & 0xFF) as u8;
            if off > 1 {
                out[8 + byte + 1] |= (v >> 8) as u8;
            }
            bit_pos += 7;
        }
        out
    }

    /// Deserializes from the 64-byte storage format.
    pub fn from_bytes(bytes: &[u8; 64]) -> Self {
        let major = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
        let mut minors = [0u8; BLOCKS_PER_PAGE];
        let mut bit_pos = 0usize;
        for m in &mut minors {
            let byte = bit_pos / 8;
            let off = bit_pos % 8;
            let mut v = u16::from(bytes[8 + byte]) >> off;
            if off > 1 {
                v |= u16::from(bytes[8 + byte + 1]) << (8 - off);
            }
            *m = (v as u8) & MINOR_MAX;
            bit_pos += 7;
        }
        CounterBlock { major, minors }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_block_is_zero() {
        let cb = CounterBlock::new();
        assert_eq!(cb.major(), 0);
        for i in 0..BLOCKS_PER_PAGE {
            assert_eq!(cb.counter_of(i), SplitCounter { major: 0, minor: 0 });
        }
    }

    #[test]
    fn increment_advances_only_target_block() {
        let mut cb = CounterBlock::new();
        assert_eq!(cb.increment(5), IncrementOutcome::Advanced);
        assert_eq!(cb.increment(5), IncrementOutcome::Advanced);
        assert_eq!(cb.counter_of(5).minor, 2);
        assert_eq!(cb.counter_of(6).minor, 0);
    }

    #[test]
    fn overflow_bumps_major_and_resets_page() {
        let mut cb = CounterBlock::new();
        for _ in 0..127 {
            assert_eq!(cb.increment(0), IncrementOutcome::Advanced);
        }
        cb.increment(1); // some other block has history too
        assert_eq!(cb.counter_of(0).minor, MINOR_MAX);
        assert_eq!(cb.increment(0), IncrementOutcome::PageOverflow);
        assert_eq!(cb.major(), 1);
        assert_eq!(cb.counter_of(0).minor, 0);
        assert_eq!(cb.counter_of(1).minor, 0, "all minors reset on overflow");
    }

    #[test]
    fn counters_never_repeat_across_overflow() {
        // The (major, minor) pair must be unique over any increment
        // sequence on one block.
        let mut cb = CounterBlock::new();
        let mut seen = std::collections::HashSet::new();
        assert!(seen.insert(cb.counter_of(2)));
        for _ in 0..300 {
            cb.increment(2);
            assert!(
                seen.insert(cb.counter_of(2)),
                "counter repeated: {:?}",
                cb.counter_of(2)
            );
        }
    }

    #[test]
    fn pack_round_trip() {
        let mut cb = CounterBlock::new();
        for i in 0..BLOCKS_PER_PAGE {
            for _ in 0..(i % 13) {
                cb.increment(i);
            }
        }
        cb.major = 0xDEAD_BEEF_0123_4567;
        let bytes = cb.to_bytes();
        let back = CounterBlock::from_bytes(&bytes);
        assert_eq!(back, cb);
    }

    #[test]
    fn pack_round_trip_extremes() {
        let mut cb = CounterBlock::new();
        for i in 0..BLOCKS_PER_PAGE {
            cb.minors[i] = if i % 2 == 0 { MINOR_MAX } else { 0 };
        }
        let back = CounterBlock::from_bytes(&cb.to_bytes());
        assert_eq!(back, cb);
    }

    #[test]
    fn storage_is_exactly_64_bytes() {
        // 8 bytes major + 56 bytes of packed minors fills the block with
        // no spare bits beyond the last byte.
        let cb = CounterBlock::new();
        assert_eq!(cb.to_bytes().len(), 64);
        // 64 * 7 = 448 bits = exactly 56 bytes.
        assert_eq!(BLOCKS_PER_PAGE * 7, 56 * 8);
    }

    #[test]
    fn nonce_embeds_major_and_minor() {
        let c = SplitCounter {
            major: 0x0102_0304_0506_0708,
            minor: 0x5A,
        };
        let n = c.nonce_bytes();
        assert_eq!(u64::from_le_bytes(n[..8].try_into().unwrap()), c.major);
        assert_eq!(n[8], 0x5A);
        assert_eq!(&n[9..], &[0u8; 7]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_index_panics() {
        CounterBlock::new().counter_of(BLOCKS_PER_PAGE);
    }
}
