//! XTS-AES (IEEE P1619), the direct-encryption alternative the paper's
//! Section II-B contrasts with counter-mode encryption.
//!
//! XTS needs no counters — the ciphertext depends only on (key, address,
//! data) — but that is exactly why SecPB *cannot* use it: the cipher runs
//! over the data itself, so nothing can be precomputed while the store is
//! still in flight, and every coalesced store pays full AES latency on
//! the critical path.  Counter-mode's pad depends only on (address,
//! counter), which is what makes the SecPB `O` field and the OBCM/BCM
//! design points possible.  The [`xts_has_no_precomputable_pad`] test
//! demonstrates the distinction executably.
//!
//! [`xts_has_no_precomputable_pad`]: #xts-vs-counter-mode

use crate::aes::Aes;

/// GF(2¹²⁸) multiplication by α (x), little-endian byte order, modulo
/// x¹²⁸ + x⁷ + x² + x + 1 — the per-unit tweak update of XTS.
fn gf128_mul_alpha(tweak: &mut [u8; 16]) {
    let mut carry = 0u8;
    for byte in tweak.iter_mut() {
        let new_carry = *byte >> 7;
        *byte = (*byte << 1) | carry;
        carry = new_carry;
    }
    if carry != 0 {
        tweak[0] ^= 0x87;
    }
}

/// An XTS-AES-128 cipher for 64-byte memory blocks (four 16-byte units).
///
/// # Example
///
/// ```
/// use secpb_crypto::xts::XtsAes;
///
/// let xts = XtsAes::new(&[1u8; 16], &[2u8; 16]);
/// let pt = [0x33u8; 64];
/// let ct = xts.encrypt_block(&pt, 42);
/// assert_eq!(xts.decrypt_block(&ct, 42), pt);
/// assert_ne!(xts.encrypt_block(&pt, 43), ct, "tweaked by address");
/// ```
#[derive(Debug, Clone)]
pub struct XtsAes {
    data_cipher: Aes,
    tweak_cipher: Aes,
}

impl XtsAes {
    /// Creates an XTS instance from the data key and the tweak key.
    pub fn new(data_key: &[u8; 16], tweak_key: &[u8; 16]) -> Self {
        XtsAes {
            data_cipher: Aes::new_128(data_key),
            tweak_cipher: Aes::new_128(tweak_key),
        }
    }

    fn initial_tweak(&self, block_addr: u64) -> [u8; 16] {
        let mut sector = [0u8; 16];
        sector[..8].copy_from_slice(&block_addr.to_le_bytes());
        self.tweak_cipher.encrypt_block(&sector)
    }

    /// Encrypts a 64-byte block at `block_addr`.
    pub fn encrypt_block(&self, plaintext: &[u8; 64], block_addr: u64) -> [u8; 64] {
        self.process(plaintext, block_addr, true)
    }

    /// Decrypts a 64-byte block at `block_addr`.
    pub fn decrypt_block(&self, ciphertext: &[u8; 64], block_addr: u64) -> [u8; 64] {
        self.process(ciphertext, block_addr, false)
    }

    fn process(&self, input: &[u8; 64], block_addr: u64, encrypt: bool) -> [u8; 64] {
        let mut tweak = self.initial_tweak(block_addr);
        let mut out = [0u8; 64];
        for unit in 0..4 {
            let mut buf = [0u8; 16];
            buf.copy_from_slice(&input[16 * unit..16 * (unit + 1)]);
            for (b, t) in buf.iter_mut().zip(&tweak) {
                *b ^= t;
            }
            let transformed = if encrypt {
                self.data_cipher.encrypt_block(&buf)
            } else {
                self.data_cipher.decrypt_block(&buf)
            };
            for (o, (c, t)) in out[16 * unit..16 * (unit + 1)]
                .iter_mut()
                .zip(transformed.iter().zip(&tweak))
            {
                *o = c ^ t;
            }
            gf128_mul_alpha(&mut tweak);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::SplitCounter;
    use crate::otp::OtpEngine;

    fn xts() -> XtsAes {
        XtsAes::new(&[0x11; 16], &[0x22; 16])
    }

    #[test]
    fn round_trips() {
        let x = xts();
        let mut pt = [0u8; 64];
        for (i, b) in pt.iter_mut().enumerate() {
            *b = (i * 13 % 251) as u8;
        }
        for addr in [0u64, 1, 0xDEAD, u64::MAX >> 8] {
            let ct = x.encrypt_block(&pt, addr);
            assert_eq!(x.decrypt_block(&ct, addr), pt, "addr {addr}");
            assert_ne!(ct, pt);
        }
    }

    #[test]
    fn address_tweak_distinguishes_blocks() {
        let x = xts();
        let pt = [0x42u8; 64];
        assert_ne!(x.encrypt_block(&pt, 1), x.encrypt_block(&pt, 2));
    }

    #[test]
    fn units_within_block_are_distinct() {
        // Four identical plaintext units must encrypt differently (tweak
        // multiplication by alpha per unit).
        let x = xts();
        let pt = [0x5Au8; 64];
        let ct = x.encrypt_block(&pt, 9);
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(ct[16 * i..16 * i + 16], ct[16 * j..16 * j + 16]);
            }
        }
    }

    #[test]
    fn wrong_address_garbles() {
        let x = xts();
        let pt = [7u8; 64];
        let ct = x.encrypt_block(&pt, 5);
        assert_ne!(x.decrypt_block(&ct, 6), pt);
    }

    #[test]
    fn gf128_alpha_is_linear_shift_with_reduction() {
        // 0x80 in the last byte shifts out and reduces by 0x87.
        let mut t = [0u8; 16];
        t[15] = 0x80;
        gf128_mul_alpha(&mut t);
        assert_eq!(t[0], 0x87);
        assert_eq!(&t[1..], &[0u8; 15]);
        // A plain small value just doubles.
        let mut u = [0u8; 16];
        u[0] = 3;
        gf128_mul_alpha(&mut u);
        assert_eq!(u[0], 6);
    }

    /// # XTS vs counter mode
    ///
    /// The structural reason SecPB needs counter mode: a counter-mode pad
    /// is computable *before the data exists* (address + counter only),
    /// while XTS output cannot be precomputed — changing one plaintext
    /// byte changes the whole ciphertext unit.
    #[test]
    fn xts_has_no_precomputable_pad() {
        // Counter mode: pad precomputed, then applied to late-arriving
        // data with a single XOR.
        let engine = OtpEngine::new(&[9u8; 24]);
        let ctr = SplitCounter { major: 1, minor: 1 };
        let pad = engine.generate(77, ctr); // before data exists
        let data_a = [0xAAu8; 64];
        let data_b = [0xBBu8; 64];
        assert_eq!(
            OtpEngine::apply_pad(&data_a, &pad),
            engine.encrypt(&data_a, 77, ctr)
        );
        assert_eq!(
            OtpEngine::apply_pad(&data_b, &pad),
            engine.encrypt(&data_b, 77, ctr)
        );

        // XTS: a one-byte plaintext change avalanches through the unit —
        // there is no data-independent component to precompute.
        let x = xts();
        let mut data_c = data_a;
        data_c[0] ^= 1;
        let ct_a = x.encrypt_block(&data_a, 77);
        let ct_c = x.encrypt_block(&data_c, 77);
        let differing = ct_a[..16]
            .iter()
            .zip(&ct_c[..16])
            .filter(|(a, b)| a != b)
            .count();
        assert!(
            differing > 8,
            "XTS unit must avalanche, {differing} bytes differ"
        );
    }
}
