//! Pluggable crypto backends: scalar, software-pipelined multi-block, and
//! feature-gated hardware (AES-NI) implementations of the hash and cipher
//! hot paths.
//!
//! Every fold of an integrity tree, every recovery-sweep MAC check, and
//! every OTP pad is built from two primitive operations: the SHA-512
//! compression function and the AES block encryption.  Both are
//! *embarrassingly batchable* — sibling nodes of a tree level, the MACs of
//! a recovery chunk, and the four AES blocks of one pad are mutually
//! independent — so the engines dispatch whole batches through the
//! [`HashBackend`] / [`CipherBackend`] traits and let the backend decide
//! how to schedule them:
//!
//! * [`Scalar`] — one block at a time, the reference implementation.
//! * [`MultiBlock`] — four interleaved SHA-512 lanes per dispatch.  With
//!   the `hw-crypto` feature and a runtime-detected AVX2 CPU this runs
//!   the explicit 256-bit `sha512x4` kernel (one ymm register per round
//!   variable, all four lanes at once); otherwise it falls back to
//!   [`sha512`]'s portable structure-of-arrays compression, four
//!   independent dependency chains the out-of-order core can pipeline.
//! * [`HwCrypto`] — `std::arch` AES-NI for the cipher side (compiled in
//!   only with the `hw-crypto` feature and used only when
//!   `is_x86_feature_detected!` confirms the ISA at runtime, falling back
//!   to scalar otherwise).  x86 offers no SHA-512 instruction (SHA-NI
//!   covers SHA-1/SHA-256 only), so the hash side uses the multi-block
//!   schedule — which under the same feature gate is the AVX2 kernel.
//!
//! All three backends are bit-identical by construction; the
//! backend-equivalence suite proves it over fuzzed traces, digests, and
//! whole benchmark grids.

use std::str::FromStr;

use crate::aes::Aes;
use crate::sha512::{self, LANES};

/// A batched SHA-512 compression engine.
///
/// `states[i]` absorbs `blocks[i]` for every `i`; the blocks are
/// independent (different messages), not consecutive blocks of one
/// message, so implementations are free to reorder or interleave them.
pub trait HashBackend {
    /// Stable lowercase backend name (reports, benchmarks).
    fn name(&self) -> &'static str;

    /// Compresses `blocks[i]` into `states[i]` for every lane.
    ///
    /// # Panics
    ///
    /// Panics if `states` and `blocks` have different lengths.
    fn compress_batch(&self, states: &mut [[u64; 8]], blocks: &[&[u8; 128]]);
}

/// A batched AES block-encryption engine over an expanded key schedule.
pub trait CipherBackend {
    /// Stable lowercase backend name (reports, benchmarks).
    fn name(&self) -> &'static str;

    /// Encrypts each 16-byte block in place under `aes`'s key schedule.
    fn encrypt_batch(&self, aes: &Aes, blocks: &mut [[u8; 16]]);

    /// Decrypts each 16-byte block in place under `aes`'s key schedule.
    fn decrypt_batch(&self, aes: &Aes, blocks: &mut [[u8; 16]]);
}

/// The reference backend: one scalar compression / AES block at a time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Scalar;

impl HashBackend for Scalar {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn compress_batch(&self, states: &mut [[u64; 8]], blocks: &[&[u8; 128]]) {
        assert_eq!(states.len(), blocks.len(), "lane count mismatch");
        for (state, block) in states.iter_mut().zip(blocks) {
            sha512::compress_block(state, block);
        }
    }
}

impl CipherBackend for Scalar {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn encrypt_batch(&self, aes: &Aes, blocks: &mut [[u8; 16]]) {
        for block in blocks {
            *block = aes.encrypt_block(block);
        }
    }

    fn decrypt_batch(&self, aes: &Aes, blocks: &mut [[u8; 16]]) {
        for block in blocks {
            *block = aes.decrypt_block(block);
        }
    }
}

/// The software-pipelined backend: four interleaved SHA-512 lanes per
/// dispatch (structure-of-arrays, auto-vectorizable), scalar AES.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MultiBlock;

impl HashBackend for MultiBlock {
    fn name(&self) -> &'static str {
        "multiblock"
    }

    fn compress_batch(&self, states: &mut [[u64; 8]], blocks: &[&[u8; 128]]) {
        assert_eq!(states.len(), blocks.len(), "lane count mismatch");
        let mut i = 0;
        while states.len() - i >= LANES {
            let lane_blocks = [blocks[i], blocks[i + 1], blocks[i + 2], blocks[i + 3]];
            let lane_states: &mut [[u64; 8]; LANES] =
                (&mut states[i..i + LANES]).try_into().expect("4 lanes");
            i += LANES;
            // Prefer the explicit 256-bit kernel: the portable SoA
            // schedule needs 32+ live 64-bit values, which spills on the
            // 16-GPR baseline target, so real vector registers are where
            // the batching pays off.
            #[cfg(all(feature = "hw-crypto", target_arch = "x86_64"))]
            if sha512x4::try_compress4(lane_states, lane_blocks) {
                continue;
            }
            sha512::compress4(lane_states, lane_blocks);
        }
        for (state, block) in states[i..].iter_mut().zip(&blocks[i..]) {
            sha512::compress_block(state, block);
        }
    }
}

impl CipherBackend for MultiBlock {
    fn name(&self) -> &'static str {
        "multiblock"
    }

    fn encrypt_batch(&self, aes: &Aes, blocks: &mut [[u8; 16]]) {
        Scalar.encrypt_batch(aes, blocks);
    }

    fn decrypt_batch(&self, aes: &Aes, blocks: &mut [[u8; 16]]) {
        Scalar.decrypt_batch(aes, blocks);
    }
}

/// The hardware backend: AES-NI cipher when compiled with `hw-crypto` and
/// detected at runtime (scalar fallback otherwise), multi-block hashing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HwCrypto;

impl HashBackend for HwCrypto {
    fn name(&self) -> &'static str {
        "hw"
    }

    fn compress_batch(&self, states: &mut [[u64; 8]], blocks: &[&[u8; 128]]) {
        // No SHA-512 ISA extension exists on x86; the pipelined software
        // schedule *is* the hardware-class hash path.
        MultiBlock.compress_batch(states, blocks);
    }
}

impl CipherBackend for HwCrypto {
    fn name(&self) -> &'static str {
        "hw"
    }

    fn encrypt_batch(&self, aes: &Aes, blocks: &mut [[u8; 16]]) {
        #[cfg(all(feature = "hw-crypto", target_arch = "x86_64"))]
        if aesni::try_encrypt_batch(aes, blocks) {
            return;
        }
        Scalar.encrypt_batch(aes, blocks);
    }

    fn decrypt_batch(&self, aes: &Aes, blocks: &mut [[u8; 16]]) {
        #[cfg(all(feature = "hw-crypto", target_arch = "x86_64"))]
        if aesni::try_decrypt_batch(aes, blocks) {
            return;
        }
        Scalar.decrypt_batch(aes, blocks);
    }
}

/// A copyable backend selector the crypto engines hold and dispatch
/// through — the enum form of the two traits, so engines stay `Copy`-cheap
/// to clone and need no trait objects on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CryptoBackend {
    /// One block at a time (the reference engine).
    Scalar,
    /// Four interleaved SHA-512 lanes per dispatch, scalar AES.
    #[default]
    MultiBlock,
    /// AES-NI cipher (with runtime detection and scalar fallback),
    /// multi-block hashing.
    HwCrypto,
}

impl CryptoBackend {
    /// The best backend available on this host: [`CryptoBackend::HwCrypto`]
    /// when the crate was built with `hw-crypto` *and* the CPU advertises
    /// AES-NI, [`CryptoBackend::MultiBlock`] otherwise.
    pub fn auto() -> Self {
        if Self::hw_available() {
            CryptoBackend::HwCrypto
        } else {
            CryptoBackend::MultiBlock
        }
    }

    /// Whether the hardware cipher path is actually usable here (feature
    /// compiled in and ISA detected at runtime).
    pub fn hw_available() -> bool {
        #[cfg(all(feature = "hw-crypto", target_arch = "x86_64"))]
        {
            aesni::available()
        }
        #[cfg(not(all(feature = "hw-crypto", target_arch = "x86_64")))]
        {
            false
        }
    }

    /// Whether the vectorized multi-block hash kernel is actually usable
    /// here (`hw-crypto` compiled in and AVX2 detected at runtime).  When
    /// `false`, batched dispatches still work but run the portable
    /// schedule, so batching is a correctness/equivalence feature rather
    /// than a speedup — benchmark regression guards key off this.
    pub fn simd_hash_available() -> bool {
        #[cfg(all(feature = "hw-crypto", target_arch = "x86_64"))]
        {
            sha512x4::available()
        }
        #[cfg(not(all(feature = "hw-crypto", target_arch = "x86_64")))]
        {
            false
        }
    }

    /// Stable lowercase name (CLI flags, JSON reports).
    pub fn name(self) -> &'static str {
        match self {
            CryptoBackend::Scalar => HashBackend::name(&Scalar),
            CryptoBackend::MultiBlock => HashBackend::name(&MultiBlock),
            CryptoBackend::HwCrypto => HashBackend::name(&HwCrypto),
        }
    }

    /// Every backend variant, for equivalence sweeps.
    pub const ALL: [CryptoBackend; 3] = [
        CryptoBackend::Scalar,
        CryptoBackend::MultiBlock,
        CryptoBackend::HwCrypto,
    ];
}

impl HashBackend for CryptoBackend {
    fn name(&self) -> &'static str {
        (*self).name()
    }

    fn compress_batch(&self, states: &mut [[u64; 8]], blocks: &[&[u8; 128]]) {
        match self {
            CryptoBackend::Scalar => Scalar.compress_batch(states, blocks),
            CryptoBackend::MultiBlock => MultiBlock.compress_batch(states, blocks),
            CryptoBackend::HwCrypto => HwCrypto.compress_batch(states, blocks),
        }
    }
}

impl CipherBackend for CryptoBackend {
    fn name(&self) -> &'static str {
        (*self).name()
    }

    fn encrypt_batch(&self, aes: &Aes, blocks: &mut [[u8; 16]]) {
        match self {
            CryptoBackend::Scalar => Scalar.encrypt_batch(aes, blocks),
            CryptoBackend::MultiBlock => MultiBlock.encrypt_batch(aes, blocks),
            CryptoBackend::HwCrypto => HwCrypto.encrypt_batch(aes, blocks),
        }
    }

    fn decrypt_batch(&self, aes: &Aes, blocks: &mut [[u8; 16]]) {
        match self {
            CryptoBackend::Scalar => Scalar.decrypt_batch(aes, blocks),
            CryptoBackend::MultiBlock => MultiBlock.decrypt_batch(aes, blocks),
            CryptoBackend::HwCrypto => HwCrypto.decrypt_batch(aes, blocks),
        }
    }
}

impl std::fmt::Display for CryptoBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str((*self).name())
    }
}

impl FromStr for CryptoBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Ok(CryptoBackend::Scalar),
            "multiblock" => Ok(CryptoBackend::MultiBlock),
            "hw" => Ok(CryptoBackend::HwCrypto),
            "auto" => Ok(CryptoBackend::auto()),
            other => Err(format!(
                "unknown crypto backend '{other}' (scalar|multiblock|hw|auto)"
            )),
        }
    }
}

/// The `std::arch` AES-NI kernels — the only unsafe code in the crate,
/// compiled in exclusively under the `hw-crypto` feature and entered only
/// behind a runtime `is_x86_feature_detected!("aes")` check.
#[cfg(all(feature = "hw-crypto", target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod aesni {
    use std::arch::x86_64::{
        __m128i, _mm_aesdec_si128, _mm_aesdeclast_si128, _mm_aesenc_si128, _mm_aesenclast_si128,
        _mm_aesimc_si128, _mm_loadu_si128, _mm_setzero_si128, _mm_storeu_si128, _mm_xor_si128,
    };

    /// Whether the CPU advertises the AES ISA extension.
    pub(super) fn available() -> bool {
        std::arch::is_x86_feature_detected!("aes")
    }

    /// Encrypts the batch through AES-NI if the ISA is present; returns
    /// `false` (untouched blocks) when the caller must fall back.
    pub(super) fn try_encrypt_batch(aes: &crate::aes::Aes, blocks: &mut [[u8; 16]]) -> bool {
        if !available() {
            return false;
        }
        // SAFETY: `available()` just confirmed the `aes` (and implied
        // `sse2`) target features on this CPU.
        unsafe { encrypt_batch(aes.round_keys(), blocks) };
        true
    }

    /// Decrypts the batch through AES-NI if the ISA is present; returns
    /// `false` (untouched blocks) when the caller must fall back.
    pub(super) fn try_decrypt_batch(aes: &crate::aes::Aes, blocks: &mut [[u8; 16]]) -> bool {
        if !available() {
            return false;
        }
        // SAFETY: as in `try_encrypt_batch`.
        unsafe { decrypt_batch(aes.round_keys(), blocks) };
        true
    }

    /// Loads an expanded key schedule into xmm registers (at most 15 round
    /// keys: AES-256).
    #[target_feature(enable = "aes,sse2")]
    unsafe fn load_keys(round_keys: &[[u8; 16]]) -> ([__m128i; 15], usize) {
        let mut keys = [_mm_setzero_si128(); 15];
        for (slot, rk) in keys.iter_mut().zip(round_keys) {
            *slot = _mm_loadu_si128(rk.as_ptr().cast());
        }
        (keys, round_keys.len() - 1)
    }

    /// Encrypts each block in place: `AddRoundKey`, `nr - 1` full
    /// `aesenc` rounds, one `aesenclast`.
    ///
    /// # Safety
    ///
    /// The caller must have verified the `aes` target feature.
    #[target_feature(enable = "aes,sse2")]
    pub(super) unsafe fn encrypt_batch(round_keys: &[[u8; 16]], blocks: &mut [[u8; 16]]) {
        let (keys, nr) = load_keys(round_keys);
        for block in blocks {
            let mut state = _mm_loadu_si128(block.as_ptr().cast());
            state = _mm_xor_si128(state, keys[0]);
            for key in &keys[1..nr] {
                state = _mm_aesenc_si128(state, *key);
            }
            state = _mm_aesenclast_si128(state, keys[nr]);
            _mm_storeu_si128(block.as_mut_ptr().cast(), state);
        }
    }

    /// Decrypts each block in place via the equivalent inverse cipher:
    /// round keys reversed, interior keys through `aesimc`.
    ///
    /// # Safety
    ///
    /// The caller must have verified the `aes` target feature.
    #[target_feature(enable = "aes,sse2")]
    pub(super) unsafe fn decrypt_batch(round_keys: &[[u8; 16]], blocks: &mut [[u8; 16]]) {
        let (keys, nr) = load_keys(round_keys);
        let mut dec = [_mm_setzero_si128(); 15];
        dec[0] = keys[nr];
        for i in 1..nr {
            dec[i] = _mm_aesimc_si128(keys[nr - i]);
        }
        dec[nr] = keys[0];
        for block in blocks {
            let mut state = _mm_loadu_si128(block.as_ptr().cast());
            state = _mm_xor_si128(state, dec[0]);
            for key in &dec[1..nr] {
                state = _mm_aesdec_si128(state, *key);
            }
            state = _mm_aesdeclast_si128(state, dec[nr]);
            _mm_storeu_si128(block.as_mut_ptr().cast(), state);
        }
    }
}

/// The `std::arch` AVX2 four-lane SHA-512 compression kernel — like
/// [`aesni`], unsafe code compiled in only under the `hw-crypto` feature
/// and entered only behind a runtime `is_x86_feature_detected!("avx2")`
/// check.  x86 has no SHA-512 instruction, but one ymm register holds a
/// 64-bit round variable for all four lanes at once, so every round
/// operation of four independent compressions becomes a single vector
/// instruction instead of four spill-prone scalar ones.
#[cfg(all(feature = "hw-crypto", target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod sha512x4 {
    use std::arch::x86_64::{
        _mm256_add_epi64, _mm256_and_si256, _mm256_andnot_si256, _mm256_or_si256,
        _mm256_set1_epi64x, _mm256_setr_epi64x, _mm256_slli_epi64, _mm256_srli_epi64,
        _mm256_storeu_si256, _mm256_xor_si256,
    };

    use crate::sha512::{constants, LANES};

    /// `x >>> n` on each 64-bit lane (AVX2 has no 64-bit rotate, so it is
    /// synthesized from the two shifts).
    macro_rules! rotr {
        ($x:expr, $n:literal) => {
            _mm256_or_si256(
                _mm256_srli_epi64::<$n>($x),
                _mm256_slli_epi64::<{ 64 - $n }>($x),
            )
        };
    }

    /// Whether the CPU advertises AVX2.
    pub(super) fn available() -> bool {
        std::arch::is_x86_feature_detected!("avx2")
    }

    /// Runs the four-lane compression through AVX2 if the ISA is present;
    /// returns `false` (untouched states) when the caller must fall back.
    pub(super) fn try_compress4(
        states: &mut [[u64; 8]; LANES],
        blocks: [&[u8; 128]; LANES],
    ) -> bool {
        if !available() {
            return false;
        }
        // SAFETY: `available()` just confirmed the `avx2` target feature.
        unsafe { compress4(states, blocks) };
        true
    }

    /// Round `i`'s big-endian message word of `block`, as the lane type.
    #[inline(always)]
    fn word(block: &[u8; 128], i: usize) -> i64 {
        u64::from_be_bytes(block[8 * i..8 * i + 8].try_into().expect("8 bytes")) as i64
    }

    /// Four independent SHA-512 compressions, one per 64-bit lane of each
    /// ymm value.  Bit-identical to four scalar `compress_block` calls.
    ///
    /// # Safety
    ///
    /// The caller must have verified the `avx2` target feature.
    #[target_feature(enable = "avx2")]
    unsafe fn compress4(states: &mut [[u64; 8]; LANES], blocks: [&[u8; 128]; LANES]) {
        let (k, _) = constants();
        let mut w = [_mm256_set1_epi64x(0); 80];
        for (i, w_i) in w.iter_mut().take(16).enumerate() {
            *w_i = _mm256_setr_epi64x(
                word(blocks[0], i),
                word(blocks[1], i),
                word(blocks[2], i),
                word(blocks[3], i),
            );
        }
        for i in 16..80 {
            let w15 = w[i - 15];
            let w2 = w[i - 2];
            let s0 = _mm256_xor_si256(
                _mm256_xor_si256(rotr!(w15, 1), rotr!(w15, 8)),
                _mm256_srli_epi64::<7>(w15),
            );
            let s1 = _mm256_xor_si256(
                _mm256_xor_si256(rotr!(w2, 19), rotr!(w2, 61)),
                _mm256_srli_epi64::<6>(w2),
            );
            w[i] = _mm256_add_epi64(
                _mm256_add_epi64(w[i - 16], s0),
                _mm256_add_epi64(w[i - 7], s1),
            );
        }
        let mut v = [_mm256_set1_epi64x(0); 8];
        for (r, row) in v.iter_mut().enumerate() {
            *row = _mm256_setr_epi64x(
                states[0][r] as i64,
                states[1][r] as i64,
                states[2][r] as i64,
                states[3][r] as i64,
            );
        }
        let init = v;
        for (&k_i, &w_i) in k.iter().zip(&w) {
            let [a, b, c, d, e, f, g, h] = v;
            let s1 = _mm256_xor_si256(_mm256_xor_si256(rotr!(e, 14), rotr!(e, 18)), rotr!(e, 41));
            let ch = _mm256_xor_si256(_mm256_and_si256(e, f), _mm256_andnot_si256(e, g));
            let kw = _mm256_add_epi64(_mm256_set1_epi64x(k_i as i64), w_i);
            let temp1 = _mm256_add_epi64(_mm256_add_epi64(h, s1), _mm256_add_epi64(ch, kw));
            let s0 = _mm256_xor_si256(_mm256_xor_si256(rotr!(a, 28), rotr!(a, 34)), rotr!(a, 39));
            let maj = _mm256_xor_si256(
                _mm256_xor_si256(_mm256_and_si256(a, b), _mm256_and_si256(a, c)),
                _mm256_and_si256(b, c),
            );
            let temp2 = _mm256_add_epi64(s0, maj);
            v = [
                _mm256_add_epi64(temp1, temp2),
                a,
                b,
                c,
                _mm256_add_epi64(d, temp1),
                e,
                f,
                g,
            ];
        }
        for (r, (row, row0)) in v.iter().zip(&init).enumerate() {
            let mut lanes = [0u64; LANES];
            _mm256_storeu_si256(lanes.as_mut_ptr().cast(), _mm256_add_epi64(*row0, *row));
            for (l, lane) in lanes.iter().enumerate() {
                states[l][r] = *lane;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha512::{Digest, Sha512};

    fn states_and_blocks(n: usize) -> (Vec<[u64; 8]>, Vec<[u8; 128]>) {
        let states = vec![crate::sha512::initial_state(); n];
        let blocks: Vec<[u8; 128]> = (0..n)
            .map(|i| {
                let mut b = [0u8; 128];
                for (j, byte) in b.iter_mut().enumerate() {
                    *byte = (i * 37 + j * 11 + 5) as u8;
                }
                b
            })
            .collect();
        (states, blocks)
    }

    #[test]
    fn all_backends_compress_identically() {
        for n in [0usize, 1, 3, 4, 5, 8, 13] {
            let (base_states, blocks) = states_and_blocks(n);
            let refs: Vec<&[u8; 128]> = blocks.iter().collect();
            let mut results = Vec::new();
            for backend in CryptoBackend::ALL {
                let mut states = base_states.clone();
                backend.compress_batch(&mut states, &refs);
                results.push(states);
            }
            assert_eq!(results[0], results[1], "scalar vs multiblock, n={n}");
            assert_eq!(results[0], results[2], "scalar vs hw, n={n}");
        }
    }

    #[test]
    fn batch_of_one_matches_one_shot_digest() {
        // A single padded block compressed through the batch API must be
        // the digest of the unpadded message.
        let msg = [0xC3u8; 64];
        let mut tail = [0u8; 128];
        crate::sha512::write_padded_tail(&msg, 0, &mut tail);
        let mut states = vec![crate::sha512::initial_state()];
        CryptoBackend::MultiBlock.compress_batch(&mut states, &[&tail]);
        let mut out = [0u8; 64];
        for (i, word) in states[0].iter().enumerate() {
            out[8 * i..8 * i + 8].copy_from_slice(&word.to_be_bytes());
        }
        assert_eq!(Digest(out), Sha512::digest(&msg));
    }

    #[test]
    fn all_backends_cipher_identically() {
        let aes = Aes::new_192(&[0x3C; 24]);
        let base: Vec<[u8; 16]> = (0..9u8)
            .map(|i| {
                let mut b = [0u8; 16];
                for (j, byte) in b.iter_mut().enumerate() {
                    *byte = i.wrapping_mul(29).wrapping_add(j as u8);
                }
                b
            })
            .collect();
        let mut results = Vec::new();
        for backend in CryptoBackend::ALL {
            let mut blocks = base.clone();
            backend.encrypt_batch(&aes, &mut blocks);
            results.push(blocks.clone());
            backend.decrypt_batch(&aes, &mut blocks);
            assert_eq!(blocks, base, "{} round trip", CipherBackend::name(&backend));
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
        // And the batch path agrees with the scalar single-block API.
        assert_eq!(results[0][0], aes.encrypt_block(&base[0]));
    }

    #[test]
    fn auto_never_picks_scalar() {
        assert_ne!(CryptoBackend::auto(), CryptoBackend::Scalar);
        if !CryptoBackend::hw_available() {
            assert_eq!(CryptoBackend::auto(), CryptoBackend::MultiBlock);
        }
    }

    #[test]
    fn names_and_parsing() {
        assert_eq!(CryptoBackend::Scalar.name(), "scalar");
        assert_eq!(CryptoBackend::MultiBlock.name(), "multiblock");
        assert_eq!(CryptoBackend::HwCrypto.name(), "hw");
        assert_eq!(CryptoBackend::default(), CryptoBackend::MultiBlock);
        for backend in CryptoBackend::ALL {
            assert_eq!(backend.name().parse::<CryptoBackend>(), Ok(backend));
            assert_eq!(backend.to_string(), backend.name());
        }
        assert_eq!("auto".parse::<CryptoBackend>(), Ok(CryptoBackend::auto()));
        assert!("sse9".parse::<CryptoBackend>().is_err());
    }

    #[test]
    #[should_panic(expected = "lane count mismatch")]
    fn mismatched_lanes_panic() {
        let (mut states, blocks) = states_and_blocks(2);
        let refs: Vec<&[u8; 128]> = blocks.iter().take(1).collect();
        CryptoBackend::Scalar.compress_batch(&mut states, &refs);
    }
}
