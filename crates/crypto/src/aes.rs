//! AES-128/192/256 block cipher (FIPS 197).
//!
//! The S-box is derived at construction time from its mathematical
//! definition — the multiplicative inverse in GF(2⁸) modulo the Rijndael
//! polynomial x⁸+x⁴+x³+x+1, followed by the affine transform — rather than
//! from a transcribed 256-entry table, eliminating a whole class of
//! copy-paste errors.  Known-answer tests against the FIPS 197 Appendix C
//! vectors pin the implementation down.
//!
//! This is a *model* cipher for the simulator: correctness and clarity over
//! side-channel resistance (table lookups are not constant-time, which is
//! irrelevant inside a simulation).

use std::fmt;
use std::sync::OnceLock;

/// Multiplication in GF(2⁸) modulo the Rijndael polynomial.
fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80 != 0;
        a <<= 1;
        if hi {
            a ^= 0x1B;
        }
        b >>= 1;
    }
    p
}

/// Multiplicative inverse in GF(2⁸); 0 maps to 0.
fn gf_inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    // a^(2^8 - 2) = a^254 by square-and-multiply.
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u32;
    while exp > 0 {
        if exp & 1 != 0 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        exp >>= 1;
    }
    result
}

/// Per-multiplier GF(2⁸) product tables for the MixColumns coefficients
/// (2, 3 forward; 9, 11, 13, 14 inverse), derived once from [`gf_mul`]
/// so the per-byte column mix is a table lookup instead of an 8-iteration
/// shift-and-reduce loop.
fn mul_tables() -> &'static [[u8; 256]; 6] {
    static TABLES: OnceLock<[[u8; 256]; 6]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut tables = [[0u8; 256]; 6];
        for (table, m) in tables.iter_mut().zip([2u8, 3, 9, 11, 13, 14]) {
            for (i, slot) in table.iter_mut().enumerate() {
                *slot = gf_mul(i as u8, m);
            }
        }
        tables
    })
}

/// The forward and inverse S-boxes, built once.
fn sboxes() -> &'static ([u8; 256], [u8; 256]) {
    static SBOXES: OnceLock<([u8; 256], [u8; 256])> = OnceLock::new();
    SBOXES.get_or_init(|| {
        let mut sbox = [0u8; 256];
        let mut inv = [0u8; 256];
        for (i, slot) in sbox.iter_mut().enumerate() {
            let x = gf_inv(i as u8);
            // Affine transform: b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63.
            let s = x
                ^ x.rotate_left(1)
                ^ x.rotate_left(2)
                ^ x.rotate_left(3)
                ^ x.rotate_left(4)
                ^ 0x63;
            *slot = s;
            inv[s as usize] = i as u8;
        }
        (sbox, inv)
    })
}

/// AES key length variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeySize {
    /// 128-bit key, 10 rounds.
    Aes128,
    /// 192-bit key, 12 rounds. The paper's energy model assumes AES-192
    /// for data encryption (Table III).
    Aes192,
    /// 256-bit key, 14 rounds.
    Aes256,
}

impl KeySize {
    fn key_words(self) -> usize {
        match self {
            KeySize::Aes128 => 4,
            KeySize::Aes192 => 6,
            KeySize::Aes256 => 8,
        }
    }

    /// Number of cipher rounds for this key size.
    pub fn rounds(self) -> usize {
        match self {
            KeySize::Aes128 => 10,
            KeySize::Aes192 => 12,
            KeySize::Aes256 => 14,
        }
    }
}

/// An AES cipher instance with an expanded key schedule.
///
/// # Example
///
/// ```
/// use secpb_crypto::aes::Aes;
///
/// // FIPS 197 Appendix C.1.
/// let key: Vec<u8> = (0..16).collect();
/// let pt: Vec<u8> = (0..16).map(|i| i * 0x11).collect();
/// let aes = Aes::new_128(key[..].try_into().unwrap());
/// let ct = aes.encrypt_block(pt[..].try_into().unwrap());
/// assert_eq!(ct[0], 0x69);
/// ```
#[derive(Clone)]
pub struct Aes {
    round_keys: Vec<[u8; 16]>,
    size: KeySize,
}

impl fmt::Debug for Aes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key material.
        f.debug_struct("Aes")
            .field("size", &self.size)
            .finish_non_exhaustive()
    }
}

impl Aes {
    /// Creates an AES-128 instance.
    pub fn new_128(key: &[u8; 16]) -> Self {
        Self::expand(key, KeySize::Aes128)
    }

    /// Creates an AES-192 instance (the paper's Table III energy model
    /// assumes AES-192 for data encryption).
    pub fn new_192(key: &[u8; 24]) -> Self {
        Self::expand(key, KeySize::Aes192)
    }

    /// Creates an AES-256 instance.
    pub fn new_256(key: &[u8; 32]) -> Self {
        Self::expand(key, KeySize::Aes256)
    }

    /// The key size of this instance.
    pub fn key_size(&self) -> KeySize {
        self.size
    }

    /// The expanded round keys (`rounds + 1` of them) — consumed by the
    /// hardware cipher backend, which replays the same schedule through
    /// AES-NI.
    #[cfg_attr(not(feature = "hw-crypto"), allow(dead_code))]
    pub(crate) fn round_keys(&self) -> &[[u8; 16]] {
        &self.round_keys
    }

    fn expand(key: &[u8], size: KeySize) -> Self {
        let (sbox, _) = sboxes();
        let nk = size.key_words();
        let nr = size.rounds();
        let total_words = 4 * (nr + 1);
        let mut w = vec![[0u8; 4]; total_words];
        for (i, word) in w.iter_mut().take(nk).enumerate() {
            word.copy_from_slice(&key[4 * i..4 * i + 4]);
        }
        let mut rcon = 1u8;
        for i in nk..total_words {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = sbox[*b as usize];
                }
                temp[0] ^= rcon;
                rcon = gf_mul(rcon, 2);
            } else if nk > 6 && i % nk == 4 {
                for b in &mut temp {
                    *b = sbox[*b as usize];
                }
            }
            for j in 0..4 {
                w[i][j] = w[i - nk][j] ^ temp[j];
            }
        }
        let round_keys = w
            .chunks(4)
            .map(|c| {
                let mut rk = [0u8; 16];
                for (i, word) in c.iter().enumerate() {
                    rk[4 * i..4 * i + 4].copy_from_slice(word);
                }
                rk
            })
            .collect();
        Aes { round_keys, size }
    }

    /// Encrypts one 16-byte block.
    pub fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let (sbox, _) = sboxes();
        let nr = self.size.rounds();
        let mut state = *block;
        add_round_key(&mut state, &self.round_keys[0]);
        for round in 1..nr {
            sub_bytes(&mut state, sbox);
            shift_rows(&mut state);
            mix_columns(&mut state);
            add_round_key(&mut state, &self.round_keys[round]);
        }
        sub_bytes(&mut state, sbox);
        shift_rows(&mut state);
        add_round_key(&mut state, &self.round_keys[nr]);
        state
    }

    /// Decrypts one 16-byte block.
    pub fn decrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let (_, inv_sbox) = sboxes();
        let nr = self.size.rounds();
        let mut state = *block;
        add_round_key(&mut state, &self.round_keys[nr]);
        for round in (1..nr).rev() {
            inv_shift_rows(&mut state);
            sub_bytes(&mut state, inv_sbox);
            add_round_key(&mut state, &self.round_keys[round]);
            inv_mix_columns(&mut state);
        }
        inv_shift_rows(&mut state);
        sub_bytes(&mut state, inv_sbox);
        add_round_key(&mut state, &self.round_keys[0]);
        state
    }
}

// State is column-major as in FIPS 197: state[4*c + r] is row r, column c.

fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk) {
        *s ^= k;
    }
}

fn sub_bytes(state: &mut [u8; 16], sbox: &[u8; 256]) {
    for b in state.iter_mut() {
        *b = sbox[*b as usize];
    }
}

fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * c + r] = s[4 * ((c + r) % 4) + r];
        }
    }
}

fn inv_shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * ((c + r) % 4) + r] = s[4 * c + r];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    let [m2, m3, ..] = mul_tables();
    for c in 0..4 {
        let col: [u8; 4] = state[4 * c..4 * c + 4].try_into().expect("4 bytes");
        state[4 * c] = m2[col[0] as usize] ^ m3[col[1] as usize] ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ m2[col[1] as usize] ^ m3[col[2] as usize] ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ m2[col[2] as usize] ^ m3[col[3] as usize];
        state[4 * c + 3] = m3[col[0] as usize] ^ col[1] ^ col[2] ^ m2[col[3] as usize];
    }
}

fn inv_mix_columns(state: &mut [u8; 16]) {
    let [_, _, m9, m11, m13, m14] = mul_tables();
    for c in 0..4 {
        let col: [u8; 4] = state[4 * c..4 * c + 4].try_into().expect("4 bytes");
        state[4 * c] = m14[col[0] as usize]
            ^ m11[col[1] as usize]
            ^ m13[col[2] as usize]
            ^ m9[col[3] as usize];
        state[4 * c + 1] = m9[col[0] as usize]
            ^ m14[col[1] as usize]
            ^ m11[col[2] as usize]
            ^ m13[col[3] as usize];
        state[4 * c + 2] = m13[col[0] as usize]
            ^ m9[col[1] as usize]
            ^ m14[col[2] as usize]
            ^ m11[col[3] as usize];
        state[4 * c + 3] = m11[col[0] as usize]
            ^ m13[col[1] as usize]
            ^ m9[col[2] as usize]
            ^ m14[col[3] as usize];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn sbox_well_known_entries() {
        let (sbox, inv) = sboxes();
        assert_eq!(sbox[0x00], 0x63);
        assert_eq!(sbox[0x01], 0x7c);
        assert_eq!(sbox[0x53], 0xed);
        assert_eq!(sbox[0xff], 0x16);
        assert_eq!(inv[0x63], 0x00);
        // S-box must be a permutation.
        let mut seen = [false; 256];
        for &v in sbox.iter() {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
    }

    #[test]
    fn gf_mul_known_products() {
        assert_eq!(gf_mul(0x57, 0x83), 0xc1); // FIPS 197 §4.2 example
        assert_eq!(gf_mul(0x57, 0x13), 0xfe);
        assert_eq!(gf_mul(1, 0xab), 0xab);
        assert_eq!(gf_mul(0, 0xab), 0);
    }

    #[test]
    fn gf_inv_is_inverse() {
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "a = {a:#x}");
        }
        assert_eq!(gf_inv(0), 0);
    }

    // FIPS 197 Appendix C known-answer tests: plaintext
    // 00112233445566778899aabbccddeeff under the sequential byte keys.
    #[test]
    fn fips197_appendix_c1_aes128() {
        let key: [u8; 16] = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let pt: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let aes = Aes::new_128(&key);
        let ct = aes.encrypt_block(&pt);
        assert_eq!(ct.to_vec(), hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
        assert_eq!(aes.decrypt_block(&ct), pt);
    }

    #[test]
    fn fips197_appendix_c2_aes192() {
        let key: [u8; 24] = hex("000102030405060708090a0b0c0d0e0f1011121314151617")
            .try_into()
            .unwrap();
        let pt: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let aes = Aes::new_192(&key);
        let ct = aes.encrypt_block(&pt);
        assert_eq!(ct.to_vec(), hex("dda97ca4864cdfe06eaf70a0ec0d7191"));
        assert_eq!(aes.decrypt_block(&ct), pt);
    }

    #[test]
    fn fips197_appendix_c3_aes256() {
        let key: [u8; 32] = hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
            .try_into()
            .unwrap();
        let pt: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let aes = Aes::new_256(&key);
        let ct = aes.encrypt_block(&pt);
        assert_eq!(ct.to_vec(), hex("8ea2b7ca516745bfeafc49904b496089"));
        assert_eq!(aes.decrypt_block(&ct), pt);
    }

    #[test]
    fn encrypt_decrypt_round_trip_many() {
        let aes = Aes::new_256(&[0xA5; 32]);
        let mut block = [0u8; 16];
        for i in 0..64u8 {
            block[(i % 16) as usize] ^= i.wrapping_mul(37);
            let ct = aes.encrypt_block(&block);
            assert_ne!(ct, block, "ciphertext must differ from plaintext");
            assert_eq!(aes.decrypt_block(&ct), block);
        }
    }

    #[test]
    fn different_keys_give_different_ciphertexts() {
        let pt = [0x42u8; 16];
        let a = Aes::new_128(&[1; 16]).encrypt_block(&pt);
        let b = Aes::new_128(&[2; 16]).encrypt_block(&pt);
        assert_ne!(a, b);
    }

    #[test]
    fn debug_hides_key_material() {
        let aes = Aes::new_128(&[0x77; 16]);
        let dbg = format!("{aes:?}");
        assert!(dbg.contains("Aes"));
        assert!(
            !dbg.contains("77, 77"),
            "round keys must not leak into Debug output"
        );
    }

    #[test]
    fn key_size_accessors() {
        assert_eq!(KeySize::Aes128.rounds(), 10);
        assert_eq!(KeySize::Aes192.rounds(), 12);
        assert_eq!(KeySize::Aes256.rounds(), 14);
        assert_eq!(Aes::new_192(&[0; 24]).key_size(), KeySize::Aes192);
    }
}
