//! A small deterministic event wheel.
//!
//! The timing model is mostly timestamp-algebraic (each operation computes
//! its completion cycle directly), but the SecPB drain engine and the NVM
//! queues need a place to park "this entry finishes draining at cycle T"
//! events.  [`EventWheel`] is a binary-heap scheduler with a deterministic
//! FIFO tie-break for events scheduled at the same cycle.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::cycle::Cycle;

/// A scheduled event: a payload that becomes due at a cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Scheduled<T> {
    due: Cycle,
    seq: u64,
    payload: T,
}

impl<T: Eq> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (due, seq) pops
        // first.
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T: Eq> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic time-ordered event queue.
///
/// Events scheduled for the same cycle pop in insertion order.
///
/// # Example
///
/// ```
/// use secpb_sim::cycle::Cycle;
/// use secpb_sim::event::EventWheel;
///
/// let mut w = EventWheel::new();
/// w.schedule(Cycle(20), "late");
/// w.schedule(Cycle(10), "early");
/// assert_eq!(w.pop_due(Cycle(15)), Some((Cycle(10), "early")));
/// assert_eq!(w.pop_due(Cycle(15)), None);
/// assert_eq!(w.pop_due(Cycle(25)), Some((Cycle(20), "late")));
/// ```
#[derive(Debug, Clone)]
pub struct EventWheel<T> {
    heap: BinaryHeap<Scheduled<T>>,
    next_seq: u64,
}

impl<T: Eq> Default for EventWheel<T> {
    fn default() -> Self {
        EventWheel {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<T: Eq> EventWheel<T> {
    /// Creates an empty wheel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `payload` to become due at `due`.
    pub fn schedule(&mut self, due: Cycle, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { due, seq, payload });
    }

    /// Pops the earliest event if it is due at or before `now`.
    pub fn pop_due(&mut self, now: Cycle) -> Option<(Cycle, T)> {
        if self.heap.peek().is_some_and(|s| s.due <= now) {
            let s = self.heap.pop().expect("peeked");
            Some((s.due, s.payload))
        } else {
            None
        }
    }

    /// Pops the earliest event unconditionally.
    pub fn pop(&mut self) -> Option<(Cycle, T)> {
        self.heap.pop().map(|s| (s.due, s.payload))
    }

    /// The due time of the earliest event, if any.
    pub fn next_due(&self) -> Option<Cycle> {
        self.heap.peek().map(|s| s.due)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the wheel holds no events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// A deterministic snapshot: every pending `(due, seq, payload)` in
    /// `(due, seq)` order, plus the next sequence number.  Feeding the
    /// snapshot to [`load`](Self::load) reproduces both the pop order of
    /// the pending events and the FIFO tie-break of everything scheduled
    /// afterwards.
    pub fn dump(&self) -> (Vec<(Cycle, u64, T)>, u64)
    where
        T: Clone,
    {
        let mut entries: Vec<(Cycle, u64, T)> = self
            .heap
            .iter()
            .map(|s| (s.due, s.seq, s.payload.clone()))
            .collect();
        entries.sort_by_key(|&(due, seq, _)| (due, seq));
        (entries, self.next_seq)
    }

    /// Rebuilds a wheel from a [`dump`](Self::dump) snapshot, preserving
    /// the original sequence numbers (and therefore tie-break order).
    pub fn load(entries: Vec<(Cycle, u64, T)>, next_seq: u64) -> Self {
        EventWheel {
            heap: entries
                .into_iter()
                .map(|(due, seq, payload)| Scheduled { due, seq, payload })
                .collect(),
            next_seq,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut w = EventWheel::new();
        w.schedule(Cycle(30), 'c');
        w.schedule(Cycle(10), 'a');
        w.schedule(Cycle(20), 'b');
        assert_eq!(w.pop(), Some((Cycle(10), 'a')));
        assert_eq!(w.pop(), Some((Cycle(20), 'b')));
        assert_eq!(w.pop(), Some((Cycle(30), 'c')));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn fifo_tie_break_at_same_cycle() {
        let mut w = EventWheel::new();
        for i in 0..10u32 {
            w.schedule(Cycle(5), i);
        }
        for i in 0..10u32 {
            assert_eq!(w.pop(), Some((Cycle(5), i)));
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let mut w = EventWheel::new();
        w.schedule(Cycle(100), ());
        assert_eq!(w.pop_due(Cycle(99)), None);
        assert_eq!(w.pop_due(Cycle(100)), Some((Cycle(100), ())));
    }

    #[test]
    fn dump_load_preserves_order_and_ties() {
        let mut w = EventWheel::new();
        w.schedule(Cycle(9), 'a');
        w.schedule(Cycle(3), 'b');
        w.schedule(Cycle(3), 'c');
        w.pop(); // consume 'b' so seqs are no longer contiguous
        let (entries, next_seq) = w.dump();
        assert_eq!(entries, vec![(Cycle(3), 2, 'c'), (Cycle(9), 0, 'a')]);
        let mut reloaded = EventWheel::load(entries, next_seq);
        reloaded.schedule(Cycle(3), 'd');
        w.schedule(Cycle(3), 'd');
        for _ in 0..3 {
            assert_eq!(reloaded.pop(), w.pop());
        }
        assert!(reloaded.is_empty());
    }

    #[test]
    fn next_due_and_len() {
        let mut w = EventWheel::new();
        assert!(w.is_empty());
        assert_eq!(w.next_due(), None);
        w.schedule(Cycle(7), 1u8);
        w.schedule(Cycle(3), 2u8);
        assert_eq!(w.next_due(), Some(Cycle(3)));
        assert_eq!(w.len(), 2);
        w.clear();
        assert!(w.is_empty());
    }
}
