//! Deterministic pseudo-random number generation.
//!
//! The model crates (caches, SecPB, recovery) must be reproducible from a
//! seed so that property tests and experiment reruns are stable.  We use
//! xoshiro256** seeded via SplitMix64 — the standard, well-analysed
//! combination — implemented here directly so no crate in the workspace
//! needs the `rand` facade (the workspace builds with zero external
//! dependencies).

/// SplitMix64 step, used to expand a 64-bit seed into xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable xoshiro256** generator.
///
/// # Example
///
/// ```
/// use secpb_sim::rng::Rng;
///
/// let mut a = Rng::seed_from(42);
/// let mut b = Rng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)` via Lemire's multiply-shift.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Fills a byte slice with random data.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        for chunk in out.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng::seed_from(7);
        let mut b = Rng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng::seed_from(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn range_is_inclusive() {
        let mut r = Rng::seed_from(4);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.range(5, 8);
            assert!((5..=8).contains(&v));
            seen_lo |= v == 5;
            seen_hi |= v == 8;
        }
        assert!(seen_lo && seen_hi, "both endpoints should be reachable");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from(5);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::seed_from(6);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = Rng::seed_from(8);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = Rng::seed_from(9);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_panics() {
        Rng::seed_from(1).below(0);
    }
}
